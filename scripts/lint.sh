#!/bin/sh
# Formatting gate for CI: cheap, deterministic checks that need no extra
# tooling beyond a POSIX shell.  ocamlformat is intentionally not required —
# the container image the tests run in does not ship it; if it ever does,
# switch this to `dune build @fmt`.
#
#   - no trailing whitespace in sources, docs, or build files
#   - no tab characters in OCaml sources (the repo indents with spaces)
#   - every non-empty tracked text file ends with a newline (committed JSON
#     expectations included: the CI gates byte-compare freshly generated
#     reports, which the tools always terminate with a newline)
#   - every library module has an interface: a lib/**/*.ml without a
#     matching .mli breaks the repo-wide convention (the build-time Pool
#     backend variants share pool_backend.mli and are allowlisted)
#
# Exits non-zero listing each offending file.

set -eu

cd "$(dirname "$0")/.."

status=0

sources=$(git ls-files '*.ml' '*.mli' '*.md' '*.opam' '*.sh' '*.json' \
  'dune-project' '**/dune' 'dune' '.github/workflows/*.yml' \
  '.github/actions/*/action.yml' | grep -v '^_build/' || true)

for f in $sources; do
  [ -f "$f" ] || continue
  if grep -qn '[ 	]$' "$f"; then
    echo "lint: trailing whitespace in $f:" >&2
    grep -n '[ 	]$' "$f" | head -5 >&2
    status=1
  fi
  case "$f" in
  *.ml | *.mli)
    if grep -qn '	' "$f"; then
      echo "lint: tab character in $f:" >&2
      grep -n '	' "$f" | head -5 >&2
      status=1
    fi
    ;;
  esac
  if [ -s "$f" ] && [ "$(tail -c1 "$f" | wc -l)" -eq 0 ]; then
    echo "lint: missing final newline in $f" >&2
    status=1
  fi
done

for f in $(git ls-files 'lib/**/*.ml' | grep -v '^_build/' || true); do
  case "$f" in
  # Build-time backend selection: both variants are copied to
  # pool_backend.ml and constrained by the shared pool_backend.mli.
  lib/sim/pool_backend_domains.ml | lib/sim/pool_backend_seq.ml) continue ;;
  esac
  if [ ! -f "${f%.ml}.mli" ]; then
    echo "lint: $f has no matching .mli interface" >&2
    status=1
  fi
done

if [ "$status" -eq 0 ]; then
  echo "lint: clean"
fi
exit "$status"
