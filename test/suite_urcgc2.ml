(* Advanced urcgc scenarios: the SAP primitives, transport mounting (h > 1),
   scripted fault injection, and the orphaned-sequence purge — the hardest
   case of Theorem 4.1, where every holder of a message crashes and the
   group must agree to destroy its causal descendants. *)

let node n = Net.Node_id.of_int n

let build ?(n = 4) ?(k = 3) ?silence_limit ?(fault = Net.Fault.reliable)
    ?(seed = 21) () =
  let engine = Sim.Engine.create () in
  let rng = Sim.Rng.create ~seed in
  let fault = Net.Fault.create fault ~rng:(Sim.Rng.split rng) in
  let net = Net.Netsim.create engine ~fault ~rng:(Sim.Rng.split rng) () in
  let config = Urcgc.Config.make ~k ?silence_limit ~n () in
  let cluster = Urcgc.Cluster.create ~config ~net () in
  (engine, net, cluster)

let sap_tests =
  [
    Alcotest.test_case "data_rq confirms and indications fire everywhere"
      `Quick (fun () ->
        let engine, _net, cluster = build () in
        let sap0 = Urcgc.Sap.attach cluster (node 0) in
        let sap2 = Urcgc.Sap.attach cluster (node 2) in
        let confirmed = ref [] in
        let indicated = ref [] in
        Urcgc.Sap.on_data_ind sap2 (fun ~mid ~deps:_ payload ->
            indicated := (mid, payload) :: !indicated);
        Urcgc.Sap.data_rq sap0 "one" ~on_conf:(fun mid ->
            confirmed := mid :: !confirmed);
        Urcgc.Sap.data_rq sap0 "two" ~on_conf:(fun mid ->
            confirmed := mid :: !confirmed);
        Urcgc.Cluster.start cluster;
        Sim.Engine.run engine ~until:(Sim.Ticks.of_rtd 4.0);
        Alcotest.(check int) "both confirmed" 2 (List.length !confirmed);
        Alcotest.(check int) "nothing pending" 0 (Urcgc.Sap.pending_confirms sap0);
        (* Confirm order matches submission order. *)
        (match List.rev !confirmed with
        | [ first; second ] ->
            Alcotest.(check int) "seq 1 first" 1 (Causal.Mid.seq first);
            Alcotest.(check int) "seq 2 second" 2 (Causal.Mid.seq second)
        | _ -> Alcotest.fail "expected two confirms");
        let payloads = List.rev_map snd !indicated in
        Alcotest.(check (list string)) "indications in causal order"
          [ "one"; "two" ] payloads);
    Alcotest.test_case "one message per round service rate" `Quick (fun () ->
        let engine, _net, cluster = build () in
        let sap = Urcgc.Sap.attach cluster (node 1) in
        let conf_times = ref [] in
        for i = 1 to 4 do
          Urcgc.Sap.data_rq sap i ~on_conf:(fun _ ->
              conf_times := Sim.Engine.now engine :: !conf_times)
        done;
        Urcgc.Cluster.start cluster;
        Sim.Engine.run engine ~until:(Sim.Ticks.of_rtd 6.0);
        let times = List.rev_map Sim.Ticks.to_int !conf_times in
        Alcotest.(check int) "all confirmed" 4 (List.length times);
        (* One per round: confirm instants are spaced by >= half an rtd. *)
        let rec spaced = function
          | a :: (b :: _ as rest) ->
              b - a >= Sim.Ticks.per_rtd / 2 && spaced rest
          | _ -> true
        in
        Alcotest.(check bool) "spaced by rounds" true (spaced times));
    Alcotest.test_case "indication exposes the causal label" `Quick (fun () ->
        let engine, _net, cluster = build () in
        let sap0 = Urcgc.Sap.attach cluster (node 0) in
        let sap1 = Urcgc.Sap.attach cluster (node 1) in
        let seen = ref None in
        Urcgc.Sap.data_rq sap0 "root";
        Urcgc.Cluster.start cluster;
        Sim.Engine.run engine ~until:(Sim.Ticks.of_rtd 2.0);
        Urcgc.Sap.on_data_ind sap0 (fun ~mid ~deps payload ->
            if payload = "reply" then seen := Some (mid, deps));
        Urcgc.Sap.data_rq sap1 "reply";
        Sim.Engine.run engine ~until:(Sim.Ticks.of_rtd 4.0);
        match !seen with
        | Some (mid, deps) ->
            Alcotest.(check int) "from p1" 1
              (Net.Node_id.to_int (Causal.Mid.origin mid));
            Alcotest.(check bool) "depends on the root" true
              (List.exists
                 (fun dep -> Net.Node_id.to_int (Causal.Mid.origin dep) = 0)
                 deps)
        | None -> Alcotest.fail "reply never indicated at p0");
  ]

let medium_tests =
  [
    Alcotest.test_case "urcgc over the transport entity delivers atomically"
      `Slow (fun () ->
        let config = Urcgc.Config.make ~k:3 ~n:6 () in
        let load = Workload.Load.make ~rate:0.6 ~total_messages:50 () in
        let scenario =
          Workload.Scenario.make ~name:"transport-all"
            ~mount:(Workload.Scenario.Transport Urcgc.Medium.All)
            ~fault:(Net.Fault.omission_every 80) ~seed:17 ~max_rtd:120.0
            ~config ~load ()
        in
        let report = Workload.Runner.run scenario in
        Alcotest.(check bool) "invariants" true
          (Workload.Checker.ok report.Workload.Runner.verdict);
        Alcotest.(check int) "everything delivered" (50 * 5)
          report.Workload.Runner.delivered_remote);
    Alcotest.test_case "h=all sharply reduces recovery-from-history" `Slow
      (fun () ->
        let run mount =
          let config = Urcgc.Config.make ~k:3 ~n:6 () in
          let load = Workload.Load.make ~rate:0.6 ~total_messages:60 () in
          let scenario =
            Workload.Scenario.make ~name:"mount-cmp" ~mount
              ~fault:(Net.Fault.omission_every 50) ~seed:19 ~max_rtd:150.0
              ~config ~load ()
          in
          Workload.Runner.run scenario
        in
        let datagram = run Workload.Scenario.Datagram in
        let transported =
          run (Workload.Scenario.Transport Urcgc.Medium.All)
        in
        Alcotest.(check bool) "datagram needs recovery" true
          (datagram.Workload.Runner.recovery_msgs > 0);
        Alcotest.(check bool) "transport needs far less" true
          (transported.Workload.Runner.recovery_msgs * 5
          < datagram.Workload.Runner.recovery_msgs));
    Alcotest.test_case "At_least h is clamped to the destination count" `Quick
      (fun () ->
        let engine = Sim.Engine.create () in
        let rng = Sim.Rng.create ~seed:3 in
        let fault =
          Net.Fault.create Net.Fault.reliable ~rng:(Sim.Rng.split rng)
        in
        let transport =
          Net.Transport.create engine ~fault ~rng:(Sim.Rng.split rng) ()
        in
        let medium =
          Urcgc.Medium.of_transport ~h:(Urcgc.Medium.At_least 99) transport
        in
        let got = ref 0 in
        Urcgc.Medium.attach medium (node 0) (fun _ -> ());
        Urcgc.Medium.attach medium (node 1) (fun _ -> incr got);
        let msg =
          Urcgc.Wire.Data
            (Causal.Causal_msg.make
               ~mid:(Causal.Mid.make ~origin:(node 0) ~seq:1)
               ~deps:[] ~payload_size:4 ())
        in
        Urcgc.Medium.multicast medium ~src:(node 0) ~dsts:[| node 1 |] msg;
        Sim.Engine.run engine;
        Alcotest.(check int) "delivered despite h > |dsts|" 1 !got);
  ]

(* The orphaned-sequence purge, end to end.

   p3 generates m1 = (p3,1) and m2 = (p3,2).  A scripted filter loses every
   copy of m1 on the wire, then p3 fail-stops before anyone can recover m1
   from its history.  m2 sits in every survivor's waiting list forever —
   unless the group agrees to destroy it: the coordinators see
   min_waiting(p3) = 2 while max_processed(p3) = 0 among survivors, a gap
   that can never close, and the full-group decision triggers the discard
   (Section 4: "there is nothing else to do but destroy the messages of
   that sequence"). *)
let orphan_tests =
  [
    Alcotest.test_case "orphaned suffix is destroyed by agreement" `Slow
      (fun () ->
        let fault =
          Net.Fault.with_crashes
            [ (node 3, Sim.Ticks.of_int 60) ]
            Net.Fault.reliable
        in
        let engine, net, cluster = build ~k:1 ~fault () in
        (* Lose every copy of (p3, 1) at send time. *)
        Net.Netsim.set_filter net
          (Some
             (fun packet ->
               match packet.Net.Netsim.payload with
               | Urcgc.Wire.Data msg ->
                   not
                     (Causal.Mid.equal msg.Causal.Causal_msg.mid
                        (Causal.Mid.make ~origin:(node 3) ~seq:1))
               | Urcgc.Wire.Request _ | Urcgc.Wire.Decision_pdu _
               | Urcgc.Wire.Recover_req _ | Urcgc.Wire.Recover_reply _ ->
                   true));
        (* Two submissions: m1 goes out (and is lost) in round 0, m2 in
           round 1; p3 crashes at tick 60, between the two rounds'
           broadcasts and before any recovery can reach it. *)
        Urcgc.Cluster.submit cluster (node 3) "m1-lost-forever";
        Urcgc.Cluster.submit cluster (node 3) "m2-orphan";
        Urcgc.Cluster.start cluster;
        Sim.Engine.run engine ~until:(Sim.Ticks.of_rtd 20.0);
        (* The survivors all discarded m2... *)
        let discards = Urcgc.Cluster.discards cluster in
        Alcotest.(check int) "3 survivors discarded" 3 (List.length discards);
        List.iter
          (fun (_, mids, _) ->
            Alcotest.(check bool) "m2 among the discards" true
              (List.exists
                 (fun mid ->
                   Causal.Mid.equal mid
                     (Causal.Mid.make ~origin:(node 3) ~seq:2))
                 mids))
          discards;
        (* ... their waiting lists are empty, nobody processed m2, and the
           group is consistent. *)
        List.iter
          (fun member ->
            (* p3 itself crashed; it processed its own messages before. *)
            if not (Net.Node_id.equal (Urcgc.Member.id member) (node 3)) then begin
              Alcotest.(check int) "waiting empty" 0
                (Urcgc.Member.waiting_length member);
              Alcotest.(check int) "nothing of p3 processed" 0
                (Urcgc.Member.last_processed member (node 3))
            end)
          (Urcgc.Cluster.members cluster);
        let verdict = Workload.Checker.check cluster in
        Alcotest.(check bool) "invariants" true (Workload.Checker.ok verdict));
    Alcotest.test_case
      "no purge while a holder survives: recovery wins instead" `Slow
      (fun () ->
        (* Same loss of m1 on the wire, but p3 stays alive: the survivors
           recover m1 from p3's history and process both messages. *)
        let engine, net, cluster = build ~k:1 () in
        Net.Netsim.set_filter net
          (Some
             (fun packet ->
               match packet.Net.Netsim.payload with
               | Urcgc.Wire.Data msg ->
                   not
                     (Causal.Mid.equal msg.Causal.Causal_msg.mid
                        (Causal.Mid.make ~origin:(node 3) ~seq:1))
               | Urcgc.Wire.Request _ | Urcgc.Wire.Decision_pdu _
               | Urcgc.Wire.Recover_req _ | Urcgc.Wire.Recover_reply _ ->
                   true));
        Urcgc.Cluster.submit cluster (node 3) "m1";
        Urcgc.Cluster.submit cluster (node 3) "m2";
        Urcgc.Cluster.start cluster;
        Sim.Engine.run engine ~until:(Sim.Ticks.of_rtd 20.0);
        Alcotest.(check int) "nothing discarded" 0
          (List.length (Urcgc.Cluster.discards cluster));
        List.iter
          (fun member ->
            Alcotest.(check int) "both processed everywhere" 2
              (Urcgc.Member.last_processed member (node 3)))
          (Urcgc.Cluster.members cluster);
        let verdict = Workload.Checker.check cluster in
        Alcotest.(check bool) "invariants" true (Workload.Checker.ok verdict));
  ]

let filter_tests =
  [
    Alcotest.test_case "set_filter drops selected packets only" `Quick
      (fun () ->
        let engine = Sim.Engine.create () in
        let rng = Sim.Rng.create ~seed:3 in
        let fault =
          Net.Fault.create Net.Fault.reliable ~rng:(Sim.Rng.split rng)
        in
        let net = Net.Netsim.create engine ~fault ~rng:(Sim.Rng.split rng) () in
        let got = ref [] in
        Net.Netsim.attach net (node 1) (fun p ->
            got := p.Net.Netsim.payload :: !got);
        Net.Netsim.set_filter net (Some (fun p -> p.Net.Netsim.payload <> "drop"));
        Net.Netsim.send net ~src:(node 0) ~dst:(node 1) ~kind:Net.Traffic.Data
          ~size:1 "keep";
        Net.Netsim.send net ~src:(node 0) ~dst:(node 1) ~kind:Net.Traffic.Data
          ~size:1 "drop";
        Net.Netsim.set_filter net None;
        Net.Netsim.send net ~src:(node 0) ~dst:(node 1) ~kind:Net.Traffic.Data
          ~size:1 "drop";
        Sim.Engine.run engine;
        (* Arrival order depends on per-packet jitter; compare as sets. *)
        Alcotest.(check (list string)) "filtered" [ "drop"; "keep" ]
          (List.sort compare !got));
  ]

let suite =
  [
    ("urcgc.sap", sap_tests);
    ("urcgc.medium", medium_tests);
    ("urcgc.orphan", orphan_tests);
    ("net.filter", filter_tests);
  ]
