(* Reference model for [Causal.Waiting_list]: the pre-optimization
   implementation, kept verbatim as an executable specification.  It stores
   everything in one [Mid.Map] and recomputes processability / discard
   fixpoints by whole-list scans — O(W) per pop and O(W^2) per discard — so
   it is slow but obviously correct.  [Suite_hotpath] drives it and the
   dependency-indexed production implementation with identical operation
   sequences and requires identical observable behaviour. *)

open Causal

type 'a t = { n : int; mutable messages : 'a Causal_msg.t Mid.Map.t }

let create ~n =
  if n <= 0 then invalid_arg "Waiting_list.create: n must be positive";
  { n; messages = Mid.Map.empty }

let add t msg =
  let mid = msg.Causal_msg.mid in
  if not (Mid.Map.mem mid t.messages) then
    t.messages <- Mid.Map.add mid msg t.messages

let mem t mid = Mid.Map.mem mid t.messages

let remove t mid = t.messages <- Mid.Map.remove mid t.messages

let length t = Mid.Map.cardinal t.messages

let is_empty t = Mid.Map.is_empty t.messages

let oldest t ~origin =
  (* Mids sort by (origin, seq), so the first binding whose origin is at or
     after [origin] belongs to [origin] iff origin has waiting messages. *)
  let from_origin mid = Net.Node_id.compare (Mid.origin mid) origin >= 0 in
  match Mid.Map.find_first_opt from_origin t.messages with
  | Some (mid, _) when Net.Node_id.equal (Mid.origin mid) origin -> Some mid
  | Some _ | None -> None

let oldest_vector t =
  Array.init t.n (fun i -> oldest t ~origin:(Net.Node_id.of_int i))

let take_processable t delivery =
  let found =
    Mid.Map.to_seq t.messages
    |> Seq.find (fun (_, msg) -> Delivery.processable delivery msg)
  in
  match found with
  | None -> None
  | Some (mid, msg) ->
      remove t mid;
      Some msg

let discard_from t ~origin ~seq =
  let root_victim mid =
    Net.Node_id.equal (Mid.origin mid) origin && Mid.seq mid >= seq
  in
  (* Fixpoint: a waiting message is a victim if it is (origin, >= seq) or
     depends on a victim, directly or through the implicit per-origin chain. *)
  let victims = ref Mid.Set.empty in
  Mid.Map.iter
    (fun mid _ -> if root_victim mid then victims := Mid.Set.add mid !victims)
    t.messages;
  let depends_on_victim (msg : _ Causal_msg.t) =
    root_victim msg.mid
    || Mid.Set.exists (fun victim -> Causal_msg.depends_on msg victim) !victims
  in
  let changed = ref true in
  while !changed do
    changed := false;
    Mid.Map.iter
      (fun mid msg ->
        if (not (Mid.Set.mem mid !victims)) && depends_on_victim msg then begin
          victims := Mid.Set.add mid !victims;
          changed := true
        end)
      t.messages
  done;
  let discarded =
    Mid.Map.fold
      (fun mid _ acc -> if Mid.Set.mem mid !victims then mid :: acc else acc)
      t.messages []
  in
  List.iter (remove t) discarded;
  List.rev discarded

let to_list t =
  Mid.Map.fold (fun _ msg acc -> msg :: acc) t.messages [] |> List.rev
