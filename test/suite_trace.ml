(* The typed observability layer: sink semantics (ring buffer, stateless
   null), the deterministic JSONL export (golden fixed-seed run, byte
   identity across runs), the Tracer string shim, and the Metrics
   registry. *)

let t0 = Sim.Ticks.of_int 0
let at n = Sim.Ticks.of_int n
let note ?(source = "test") message = Sim.Trace.Note { source; message }

(* Golden JSONL of the fixed-seed scenario below; regenerable with
     urcgc_sim trace -n 4 -K 2 --rate 1 --messages 3 --seed 5 --max-rtd 30 *)
let golden_lines =
  [
    {|{"t":0,"ev":"rotate","subrun":0,"coordinator":0}|};
    {|{"t":0,"ev":"send","src":1,"dst":0,"pdu":{"kind":"request","sender":1,"subrun":0}}|};
    {|{"t":0,"ev":"send","src":2,"dst":0,"pdu":{"kind":"request","sender":2,"subrun":0}}|};
    {|{"t":0,"ev":"send","src":3,"dst":0,"pdu":{"kind":"request","sender":3,"subrun":0}}|};
    {|{"t":45,"ev":"recv","node":0,"pdu":{"kind":"request","sender":3,"subrun":0}}|};
    {|{"t":46,"ev":"recv","node":0,"pdu":{"kind":"request","sender":2,"subrun":0}}|};
    {|{"t":49,"ev":"recv","node":0,"pdu":{"kind":"request","sender":1,"subrun":0}}|};
    {|{"t":50,"ev":"broadcast","src":0,"dsts":3,"pdu":{"kind":"decision","subrun":0,"coordinator":0,"full_group":true}}|};
    {|{"t":50,"ev":"broadcast","src":0,"dsts":3,"pdu":{"kind":"data","origin":0,"seq":1,"deps":0,"bytes":64}}|};
    {|{"t":50,"ev":"deliver","node":0,"origin":0,"seq":1}|};
    {|{"t":50,"ev":"confirm","node":0,"origin":0,"seq":1}|};
    {|{"t":50,"ev":"broadcast","src":1,"dsts":3,"pdu":{"kind":"data","origin":1,"seq":1,"deps":0,"bytes":64}}|};
    {|{"t":50,"ev":"deliver","node":1,"origin":1,"seq":1}|};
    {|{"t":50,"ev":"confirm","node":1,"origin":1,"seq":1}|};
    {|{"t":50,"ev":"broadcast","src":2,"dsts":3,"pdu":{"kind":"data","origin":2,"seq":1,"deps":0,"bytes":64}}|};
    {|{"t":50,"ev":"deliver","node":2,"origin":2,"seq":1}|};
    {|{"t":50,"ev":"confirm","node":2,"origin":2,"seq":1}|};
    {|{"t":91,"ev":"recv","node":2,"pdu":{"kind":"data","origin":1,"seq":1,"deps":0,"bytes":64}}|};
    {|{"t":91,"ev":"deliver","node":2,"origin":1,"seq":1}|};
    {|{"t":93,"ev":"recv","node":3,"pdu":{"kind":"data","origin":0,"seq":1,"deps":0,"bytes":64}}|};
    {|{"t":93,"ev":"deliver","node":3,"origin":0,"seq":1}|};
    {|{"t":95,"ev":"recv","node":1,"pdu":{"kind":"data","origin":0,"seq":1,"deps":0,"bytes":64}}|};
    {|{"t":95,"ev":"deliver","node":1,"origin":0,"seq":1}|};
    {|{"t":96,"ev":"recv","node":3,"pdu":{"kind":"data","origin":1,"seq":1,"deps":0,"bytes":64}}|};
    {|{"t":96,"ev":"deliver","node":3,"origin":1,"seq":1}|};
    {|{"t":97,"ev":"recv","node":2,"pdu":{"kind":"data","origin":0,"seq":1,"deps":0,"bytes":64}}|};
    {|{"t":97,"ev":"deliver","node":2,"origin":0,"seq":1}|};
    {|{"t":97,"ev":"recv","node":3,"pdu":{"kind":"data","origin":2,"seq":1,"deps":0,"bytes":64}}|};
    {|{"t":97,"ev":"deliver","node":3,"origin":2,"seq":1}|};
    {|{"t":98,"ev":"recv","node":2,"pdu":{"kind":"decision","subrun":0,"coordinator":0,"full_group":true}}|};
    {|{"t":98,"ev":"recv","node":1,"pdu":{"kind":"data","origin":2,"seq":1,"deps":0,"bytes":64}}|};
    {|{"t":98,"ev":"deliver","node":1,"origin":2,"seq":1}|};
    {|{"t":99,"ev":"recv","node":1,"pdu":{"kind":"decision","subrun":0,"coordinator":0,"full_group":true}}|};
    {|{"t":99,"ev":"recv","node":3,"pdu":{"kind":"decision","subrun":0,"coordinator":0,"full_group":true}}|};
    {|{"t":99,"ev":"recv","node":0,"pdu":{"kind":"data","origin":1,"seq":1,"deps":0,"bytes":64}}|};
    {|{"t":99,"ev":"deliver","node":0,"origin":1,"seq":1}|};
    {|{"t":99,"ev":"recv","node":0,"pdu":{"kind":"data","origin":2,"seq":1,"deps":0,"bytes":64}}|};
    {|{"t":99,"ev":"deliver","node":0,"origin":2,"seq":1}|};
    {|{"t":100,"ev":"rotate","subrun":1,"coordinator":1}|};
    {|{"t":100,"ev":"send","src":0,"dst":1,"pdu":{"kind":"request","sender":0,"subrun":1}}|};
    {|{"t":100,"ev":"send","src":2,"dst":1,"pdu":{"kind":"request","sender":2,"subrun":1}}|};
    {|{"t":100,"ev":"send","src":3,"dst":1,"pdu":{"kind":"request","sender":3,"subrun":1}}|};
  ]

let golden_scenario () =
  Workload.Scenario.make ~name:"golden" ~seed:5 ~max_rtd:30.0
    ~config:(Urcgc.Config.make ~k:2 ~n:4 ())
    ~load:(Workload.Load.make ~rate:1.0 ~total_messages:3 ())
    ()

let trace_jsonl scenario =
  let trace = Sim.Trace.unbounded () in
  let (_ : Workload.Runner.report) =
    Workload.Runner.run ~tracer:trace scenario
  in
  List.map Sim.Trace.json_of_record (Sim.Trace.records trace)

let sink_tests =
  [
    Alcotest.test_case "ring buffer keeps the newest records" `Quick (fun () ->
        let t = Sim.Trace.create ~capacity:3 () in
        for i = 1 to 10 do
          Sim.Trace.emit t ~time:(at i) (note (string_of_int i))
        done;
        Alcotest.(check int) "total counts drops" 10 (Sim.Trace.count t);
        let kept =
          List.map
            (fun r -> Sim.Trace.event_message r.Sim.Trace.event)
            (Sim.Trace.records t)
        in
        Alcotest.(check (list string)) "last three" [ "8"; "9"; "10" ] kept);
    Alcotest.test_case "create rejects capacity < 1" `Quick (fun () ->
        Alcotest.check_raises "zero"
          (Invalid_argument "Trace.create: capacity must be positive")
          (fun () -> ignore (Sim.Trace.create ~capacity:0 ()));
        Alcotest.check_raises "negative"
          (Invalid_argument "Trace.create: capacity must be positive")
          (fun () -> ignore (Sim.Trace.create ~capacity:(-3) ())));
    Alcotest.test_case "count tallies all emissions, retained only the kept"
      `Quick (fun () ->
        let t = Sim.Trace.create ~capacity:3 () in
        Alcotest.(check int) "retained when empty" 0 (Sim.Trace.retained t);
        for i = 1 to 10 do
          Sim.Trace.emit t ~time:(at i) (note (string_of_int i))
        done;
        Alcotest.(check int) "count" 10 (Sim.Trace.count t);
        Alcotest.(check int) "retained" 3 (Sim.Trace.retained t);
        Alcotest.(check int)
          "retained = records length" (List.length (Sim.Trace.records t))
          (Sim.Trace.retained t);
        let u = Sim.Trace.unbounded () in
        for i = 1 to 10 do
          Sim.Trace.emit u ~time:(at i) (note (string_of_int i))
        done;
        Alcotest.(check int) "unbounded retains all" 10 (Sim.Trace.retained u));
    Alcotest.test_case "traffic class and stage names round-trip" `Quick
      (fun () ->
        List.iter
          (fun class_ ->
            let name = Sim.Trace.Traffic_class.to_string class_ in
            match Sim.Trace.Traffic_class.of_string name with
            | Some back when back = class_ -> ()
            | _ -> Alcotest.failf "traffic class %s does not round-trip" name)
          Sim.Trace.Traffic_class.all;
        Alcotest.(check int)
          "four classes" 4
          (List.length Sim.Trace.Traffic_class.all);
        Alcotest.(check bool)
          "unknown class rejected" true
          (Sim.Trace.Traffic_class.of_string "gossip" = None);
        List.iter
          (fun stage ->
            let name = Sim.Trace.stage_to_string stage in
            match Sim.Trace.stage_of_string name with
            | Some back when back = stage -> ()
            | _ -> Alcotest.failf "stage %s does not round-trip" name)
          [
            Sim.Trace.On_send; Sim.Trace.On_link; Sim.Trace.On_recv;
            Sim.Trace.On_filter;
          ];
        Alcotest.(check bool)
          "unknown stage rejected" true
          (Sim.Trace.stage_of_string "wire" = None));
    Alcotest.test_case "null retains nothing, ever" `Quick (fun () ->
        (* Regression: Tracer.null used to be a shared mutable record, so
           every user of the "disabled" tracer aliased one global queue.
           The null sink is now a stateless constructor: emitting to it
           cannot retain, and no two uses can observe each other. *)
        let null_a = Sim.Trace.null and null_b = Sim.Trace.null in
        for i = 1 to 1000 do
          Sim.Trace.emit null_a ~time:(at i) (note "discard me")
        done;
        Alcotest.(check bool) "disabled" false (Sim.Trace.enabled null_a);
        Alcotest.(check int) "count a" 0 (Sim.Trace.count null_a);
        Alcotest.(check int) "count b" 0 (Sim.Trace.count null_b);
        Alcotest.(check bool) "no records" true (Sim.Trace.records null_a = []);
        Alcotest.(check bool)
          "find sees nothing" true
          (Sim.Trace.find null_a ~f:(fun _ -> true) = None));
    Alcotest.test_case "tracer shim null never retains either" `Quick (fun () ->
        Sim.Tracer.emit Sim.Tracer.null ~time:t0 ~source:"x" "dropped";
        Sim.Tracer.emitf Sim.Tracer.null ~time:t0 ~source:"x" "%d-%s" 3 "y";
        Alcotest.(check int) "count" 0 (Sim.Tracer.count Sim.Tracer.null);
        Alcotest.(check bool)
          "events empty" true
          (Sim.Tracer.events Sim.Tracer.null = []));
    Alcotest.test_case "shim round-trips strings through Note events" `Quick
      (fun () ->
        let t = Sim.Tracer.create () in
        Sim.Tracer.emit t ~time:(at 7) ~source:"n3" "hello";
        Sim.Tracer.emitf t ~time:(at 8) ~source:"net" "x=%d" 42;
        match Sim.Tracer.events t with
        | [ a; b ] ->
            Alcotest.(check string) "source a" "n3" a.Sim.Tracer.source;
            Alcotest.(check string) "message a" "hello" a.Sim.Tracer.message;
            Alcotest.(check string) "message b" "x=42" b.Sim.Tracer.message
        | events ->
            Alcotest.failf "expected 2 events, got %d" (List.length events));
    Alcotest.test_case "shim renders typed events as strings" `Quick (fun () ->
        let t = Sim.Trace.create () in
        Sim.Trace.emit t ~time:(at 5)
          (Sim.Trace.Deliver { node = 2; mid = { origin = 1; seq = 4 } });
        Sim.Trace.emit t ~time:(at 6)
          (Sim.Trace.Rotate { subrun = 3; coordinator = 1 });
        match Sim.Tracer.events t with
        | [ d; r ] ->
            Alcotest.(check string) "deliver source" "n2" d.Sim.Tracer.source;
            Alcotest.(check string)
              "deliver message" "processed n1#4" d.Sim.Tracer.message;
            Alcotest.(check string) "rotate source" "group" r.Sim.Tracer.source;
            Alcotest.(check string)
              "rotate message" "subrun 3 coordinator is n1" r.Sim.Tracer.message
        | events ->
            Alcotest.failf "expected 2 events, got %d" (List.length events));
  ]

let jsonl_tests =
  [
    Alcotest.test_case "record serialization is exact" `Quick (fun () ->
        let json event = Sim.Trace.json_of_record { time = at 12; event } in
        Alcotest.(check string)
          "drop"
          {|{"t":12,"ev":"drop","src":0,"dst":3,"kind":"data","stage":"link"}|}
          (json
             (Sim.Trace.Drop
                {
                  src = 0;
                  dst = 3;
                  kind = Sim.Trace.Traffic_class.Data;
                  stage = Sim.Trace.On_link;
                }));
        Alcotest.(check string)
          "wait_add"
          {|{"t":12,"ev":"wait_add","node":1,"origin":2,"seq":9,"depth":4}|}
          (json
             (Sim.Trace.Wait_add
                { node = 1; mid = { origin = 2; seq = 9 }; depth = 4 }));
        Alcotest.(check string)
          "wait_discard"
          {|{"t":12,"ev":"wait_discard","node":1,"mids":[[2,9],[3,1]]}|}
          (json
             (Sim.Trace.Wait_discard
                {
                  node = 1;
                  mids = [ { origin = 2; seq = 9 }; { origin = 3; seq = 1 } ];
                }));
        Alcotest.(check string)
          "crash" {|{"t":12,"ev":"crash","node":2}|}
          (json (Sim.Trace.Crash { node = 2 })));
    Alcotest.test_case "note strings are JSON-escaped" `Quick (fun () ->
        Alcotest.(check string)
          "escapes"
          {|{"t":1,"ev":"note","source":"a\"b","message":"line\nbreak\\and\ttab\u0001"}|}
          (Sim.Trace.json_of_record
             {
               time = at 1;
               event =
                 Sim.Trace.Note
                   { source = "a\"b"; message = "line\nbreak\\and\ttab\x01" };
             }));
    Alcotest.test_case "fixed-seed run matches the golden JSONL" `Quick
      (fun () ->
        let lines = trace_jsonl (golden_scenario ()) in
        Alcotest.(check int)
          "line count" (List.length golden_lines) (List.length lines);
        List.iteri
          (fun i (expected, got) ->
            Alcotest.(check string) (Printf.sprintf "line %d" i) expected got)
          (List.combine golden_lines lines));
    Alcotest.test_case "two runs serialize byte-identically" `Quick (fun () ->
        let a = trace_jsonl (golden_scenario ()) in
        let b = trace_jsonl (golden_scenario ()) in
        Alcotest.(check (list string)) "byte-identical" a b);
    Alcotest.test_case "tracing does not perturb the run" `Quick (fun () ->
        let quiet = Workload.Runner.run (golden_scenario ()) in
        let traced =
          Workload.Runner.run
            ~tracer:(Sim.Trace.unbounded ())
            (golden_scenario ())
        in
        Alcotest.(check int)
          "same deliveries" quiet.Workload.Runner.delivered_remote
          traced.Workload.Runner.delivered_remote;
        Alcotest.(check int)
          "same traffic" quiet.Workload.Runner.control_msgs
          traced.Workload.Runner.control_msgs);
    Alcotest.test_case "faults show up as crash and staged drop events" `Quick
      (fun () ->
        let scenario =
          Workload.Scenario.make ~name:"faulty" ~seed:11 ~max_rtd:40.0
            ~fault:
              (Net.Fault.with_crashes
                 [ (Net.Node_id.of_int 2, Sim.Ticks.of_int 101) ]
                 { Net.Fault.reliable with Net.Fault.link_loss = 0.05 })
            ~config:(Urcgc.Config.make ~k:2 ~n:5 ())
            ~load:(Workload.Load.make ~rate:0.8 ~total_messages:30 ())
            ()
        in
        let trace = Sim.Trace.unbounded () in
        let (_ : Workload.Runner.report) =
          Workload.Runner.run ~tracer:trace scenario
        in
        let crash =
          Sim.Trace.find trace ~f:(fun r ->
              match r.Sim.Trace.event with
              | Sim.Trace.Crash { node } -> node = 2
              | _ -> false)
        in
        (match crash with
        | Some r ->
            Alcotest.(check int) "crash at its scheduled tick" 101
              (Sim.Ticks.to_int r.Sim.Trace.time)
        | None -> Alcotest.fail "no crash event for node 2");
        let link_drop =
          Sim.Trace.find trace ~f:(fun r ->
              match r.Sim.Trace.event with
              | Sim.Trace.Drop { stage = Sim.Trace.On_link; _ } -> true
              | _ -> false)
        in
        Alcotest.(check bool) "some link drop traced" true (link_drop <> None));
  ]

let metrics_tests =
  [
    Alcotest.test_case "counters, gauges, histograms" `Quick (fun () ->
        let m = Sim.Metrics.create () in
        Sim.Metrics.incr m "a";
        Sim.Metrics.incr m "a";
        Sim.Metrics.incr ~by:3 m "b";
        Sim.Metrics.set_gauge m "g" 5;
        Sim.Metrics.set_gauge m "g" 2;
        Sim.Metrics.observe m "h" 1.5;
        Sim.Metrics.observe m "h" 2.5;
        Alcotest.(check int) "counter a" 2 (Sim.Metrics.counter m "a");
        Alcotest.(check int) "counter b" 3 (Sim.Metrics.counter m "b");
        Alcotest.(check int) "unknown counter" 0 (Sim.Metrics.counter m "zzz");
        Alcotest.(check (option int))
          "gauge last" (Some 2)
          (Sim.Metrics.gauge_last m "g");
        Alcotest.(check (option int))
          "gauge peak" (Some 5)
          (Sim.Metrics.gauge_peak m "g");
        (match Sim.Metrics.histogram m "h" with
        | None -> Alcotest.fail "histogram missing"
        | Some s ->
            Alcotest.(check int) "count" 2 s.Sim.Metrics.count;
            Alcotest.(check (float 1e-9)) "mean" 2.0 s.Sim.Metrics.mean;
            Alcotest.(check (float 1e-9)) "p50" 1.5 s.Sim.Metrics.p50;
            Alcotest.(check (float 1e-9)) "p95" 2.5 s.Sim.Metrics.p95);
        Alcotest.(check string)
          "deterministic JSON, names sorted"
          ({|{"counters":{"a":2,"b":3},"gauges":{"g":{"last":2,"peak":5}},|}
          ^ {|"histograms":{"h":{"count":2,"mean":2,"min":1.5,"max":2.5,"p50":1.5,"p95":2.5}}}|}
          )
          (Sim.Metrics.to_json m));
    Alcotest.test_case "nearest-rank quantiles" `Quick (fun () ->
        let m = Sim.Metrics.create () in
        for i = 1 to 10 do
          Sim.Metrics.observe m "h" (float_of_int i)
        done;
        match Sim.Metrics.histogram m "h" with
        | None -> Alcotest.fail "histogram missing"
        | Some s ->
            Alcotest.(check (float 1e-9)) "min" 1.0 s.Sim.Metrics.min;
            Alcotest.(check (float 1e-9)) "max" 10.0 s.Sim.Metrics.max;
            Alcotest.(check (float 1e-9)) "mean" 5.5 s.Sim.Metrics.mean;
            Alcotest.(check (float 1e-9)) "p50" 5.0 s.Sim.Metrics.p50;
            Alcotest.(check (float 1e-9)) "p95" 10.0 s.Sim.Metrics.p95);
    Alcotest.test_case "empty registry renders empty sections" `Quick
      (fun () ->
        let m = Sim.Metrics.create () in
        Alcotest.(check string)
          "json" {|{"counters":{},"gauges":{},"histograms":{}}|}
          (Sim.Metrics.to_json m);
        Alcotest.(check bool) "enabled" true (Sim.Metrics.enabled m);
        Alcotest.(check bool)
          "no histogram" true
          (Sim.Metrics.histogram m "h" = None));
    Alcotest.test_case "single-sample histogram is its every statistic" `Quick
      (fun () ->
        let m = Sim.Metrics.create () in
        Sim.Metrics.observe m "h" 4.25;
        match Sim.Metrics.histogram m "h" with
        | None -> Alcotest.fail "histogram missing"
        | Some s ->
            Alcotest.(check int) "count" 1 s.Sim.Metrics.count;
            Alcotest.(check (float 1e-9)) "mean" 4.25 s.Sim.Metrics.mean;
            Alcotest.(check (float 1e-9)) "min" 4.25 s.Sim.Metrics.min;
            Alcotest.(check (float 1e-9)) "max" 4.25 s.Sim.Metrics.max;
            Alcotest.(check (float 1e-9)) "p50" 4.25 s.Sim.Metrics.p50;
            Alcotest.(check (float 1e-9)) "p95" 4.25 s.Sim.Metrics.p95);
    Alcotest.test_case "nearest-rank boundaries on 20 samples" `Quick
      (fun () ->
        (* rank(q) = ceil(q * count): p50 is the 10th of 20 ordered samples
           and p95 the 19th — one off either end, where rounding errors in a
           quantile implementation first show. *)
        let m = Sim.Metrics.create () in
        for i = 20 downto 1 do
          Sim.Metrics.observe m "h" (float_of_int i)
        done;
        match Sim.Metrics.histogram m "h" with
        | None -> Alcotest.fail "histogram missing"
        | Some s ->
            Alcotest.(check (float 1e-9)) "p50" 10.0 s.Sim.Metrics.p50;
            Alcotest.(check (float 1e-9)) "p95" 19.0 s.Sim.Metrics.p95);
    Alcotest.test_case "null registry records nothing" `Quick (fun () ->
        let m = Sim.Metrics.null in
        Sim.Metrics.incr m "a";
        Sim.Metrics.set_gauge m "g" 5;
        Sim.Metrics.observe m "h" 1.0;
        Alcotest.(check bool) "disabled" false (Sim.Metrics.enabled m);
        Alcotest.(check int) "counter" 0 (Sim.Metrics.counter m "a");
        Alcotest.(check (option int))
          "gauge" None (Sim.Metrics.gauge_last m "g");
        Alcotest.(check bool)
          "histogram" true
          (Sim.Metrics.histogram m "h" = None);
        Alcotest.(check string) "json" "{}" (Sim.Metrics.to_json m));
    Alcotest.test_case "a run populates the catalogue" `Quick (fun () ->
        let metrics = Sim.Metrics.create () in
        let report = Workload.Runner.run ~metrics (golden_scenario ()) in
        Alcotest.(check int)
          "generated counter agrees with the report"
          report.Workload.Runner.generated
          (Sim.Metrics.counter metrics "messages.generated");
        Alcotest.(check int)
          "remote deliveries agree" report.Workload.Runner.delivered_remote
          (Sim.Metrics.counter metrics "deliveries.remote");
        Alcotest.(check bool)
          "history gauge sampled" true
          (Sim.Metrics.gauge_peak metrics "history.occupancy" <> None);
        match Sim.Metrics.histogram metrics "delivery.latency_rtd" with
        | None -> Alcotest.fail "latency histogram missing"
        | Some s ->
            Alcotest.(check int)
              "one latency sample per remote delivery"
              report.Workload.Runner.delivered_remote s.Sim.Metrics.count);
  ]

let suite =
  [
    ("trace.sink", sink_tests);
    ("trace.jsonl", jsonl_tests);
    ("trace.metrics", metrics_tests);
  ]
