(* Tests for the binary wire codec: the encoded length of every PDU must be
   exactly Wire.body_size (Table 1's byte accounting is measured from these
   formulas), roundtrips must be lossless, and hostile input must be
   rejected with Error, never an exception. *)

let node n = Net.Node_id.of_int n
let mid o s = Causal.Mid.make ~origin:(node o) ~seq:s

let payload = Urcgc.Wire_codec.string_payload

let msg ?(deps = []) o s text =
  Causal.Causal_msg.make ~mid:(mid o s) ~deps ~payload_size:(String.length text)
    text

let sample_decision n =
  {
    Urcgc.Decision.subrun = 7;
    coordinator = node (n - 1);
    full_group = true;
    stable = Array.init n (fun i -> i * 3);
    max_processed = Array.init n (fun i -> (i * 5) + 1);
    most_updated = Array.init n (fun i -> node ((i + 1) mod n));
    min_waiting = Array.init n (fun i -> if i mod 2 = 0 then 0 else i);
    attempts = Array.init n (fun i -> i mod 3);
    alive = Array.init n (fun i -> i mod 4 <> 3);
    heard = Array.init n (fun i -> i mod 2 = 0);
    acc_stable = Array.init n (fun i -> if i = 0 then max_int else i);
    acc_min_waiting = Array.init n (fun i -> i);
  }

let sample_request n =
  {
    Urcgc.Wire.sender = node 2;
    subrun = 9;
    last_processed = Array.init n (fun i -> i * 2);
    waiting =
      Array.init n (fun i -> if i mod 3 = 0 then Some (mid i (i + 1)) else None);
    prev_decision = sample_decision n;
  }

let bodies n : string Urcgc.Wire.body list =
  [
    Urcgc.Wire.Data (msg 1 4 "hello world");
    Urcgc.Wire.Data (msg ~deps:[ mid 0 2; mid 2 9 ] 1 5 "");
    Urcgc.Wire.Request (sample_request n);
    Urcgc.Wire.Decision_pdu (sample_decision n);
    Urcgc.Wire.Recover_req
      { requester = node 0; origin = node 3; from_seq = 4; to_seq = 19 };
    Urcgc.Wire.Recover_reply
      {
        responder = node 1;
        messages = [ msg 3 1 "a"; msg ~deps:[ mid 3 1 ] 3 2 "bb" ];
      };
  ]

let bytes_t =
  Alcotest.testable
    (fun ppf b -> Format.fprintf ppf "%d bytes" (Bytes.length b))
    Bytes.equal

let roundtrip body =
  let raw = Urcgc.Wire_codec.encode_body payload body in
  match Urcgc.Wire_codec.decode_body payload ~n:5 raw with
  | Error e -> Alcotest.failf "decode failed: %s" e
  | Ok decoded ->
      let again = Urcgc.Wire_codec.encode_body payload decoded in
      Alcotest.(check bytes_t) "re-encoding is identical" raw again

let size_tests =
  [
    Alcotest.test_case "encoded length equals Wire.body_size for every PDU"
      `Quick (fun () ->
        List.iter
          (fun body ->
            let raw = Urcgc.Wire_codec.encode_body payload body in
            Alcotest.(check int)
              (Format.asprintf "%a" Urcgc.Wire.pp_body body)
              (Urcgc.Wire.body_size body) (Bytes.length raw))
          (bodies 5));
    Alcotest.test_case "decision codec matches Decision.encoded_size" `Quick
      (fun () ->
        List.iter
          (fun n ->
            let d = sample_decision n in
            Alcotest.(check int)
              (Printf.sprintf "n=%d" n)
              (Urcgc.Decision.encoded_size d)
              (Bytes.length (Urcgc.Wire_codec.encode_decision d)))
          [ 1; 5; 8; 15; 40 ]);
    Alcotest.test_case "payload_size lies are rejected at encode time" `Quick
      (fun () ->
        let lying =
          Causal.Causal_msg.make ~mid:(mid 0 1) ~deps:[] ~payload_size:99
            "short"
        in
        Alcotest.(check bool) "raises" true
          (try
             ignore (Urcgc.Wire_codec.encode_body payload (Urcgc.Wire.Data lying));
             false
           with Invalid_argument _ -> true));
  ]

let roundtrip_tests =
  [
    Alcotest.test_case "every PDU kind roundtrips losslessly" `Quick (fun () ->
        List.iter roundtrip (bodies 5));
    Alcotest.test_case "decision fields survive the roundtrip" `Quick (fun () ->
        let d = sample_decision 7 in
        let raw = Urcgc.Wire_codec.encode_decision d in
        match
          Urcgc.Wire_codec.decode_decision ~n:7 (Net.Bytebuf.Reader.of_bytes raw)
        with
        | Error e -> Alcotest.failf "decode: %s" e
        | Ok d' ->
            Alcotest.(check int) "subrun" d.Urcgc.Decision.subrun
              d'.Urcgc.Decision.subrun;
            Alcotest.(check bool) "full_group" d.Urcgc.Decision.full_group
              d'.Urcgc.Decision.full_group;
            Alcotest.(check (array int)) "stable" d.Urcgc.Decision.stable
              d'.Urcgc.Decision.stable;
            Alcotest.(check (array int)) "acc_stable (sentinel)"
              d.Urcgc.Decision.acc_stable d'.Urcgc.Decision.acc_stable;
            Alcotest.(check (array bool)) "alive" d.Urcgc.Decision.alive
              d'.Urcgc.Decision.alive;
            Alcotest.(check (array bool)) "heard" d.Urcgc.Decision.heard
              d'.Urcgc.Decision.heard);
  ]

let hostile_tests =
  [
    Alcotest.test_case "unknown tag is an error" `Quick (fun () ->
        match
          Urcgc.Wire_codec.decode_body payload ~n:5 (Bytes.make 4 '\xee')
        with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "accepted garbage");
    Alcotest.test_case "truncated input is an error" `Quick (fun () ->
        let raw =
          Urcgc.Wire_codec.encode_body payload
            (Urcgc.Wire.Decision_pdu (sample_decision 5))
        in
        let truncated = Bytes.sub raw 0 (Bytes.length raw - 3) in
        match Urcgc.Wire_codec.decode_body payload ~n:5 truncated with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "accepted truncated input");
    Alcotest.test_case "trailing bytes are an error" `Quick (fun () ->
        let raw =
          Urcgc.Wire_codec.encode_body payload (Urcgc.Wire.Data (msg 0 1 "x"))
        in
        let padded = Bytes.cat raw (Bytes.make 2 '\x00') in
        match Urcgc.Wire_codec.decode_body payload ~n:5 padded with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "accepted trailing bytes");
    Alcotest.test_case "zero sequence number is rejected" `Quick (fun () ->
        (* Hand-craft a data PDU with seq = 0. *)
        let w = Net.Bytebuf.Writer.create () in
        Net.Bytebuf.Writer.u8 w 1;
        Net.Bytebuf.Writer.u24 w 0;
        Net.Bytebuf.Writer.u32 w 0;
        Net.Bytebuf.Writer.u16 w 0;
        Net.Bytebuf.Writer.u16 w 0;
        match
          Urcgc.Wire_codec.decode_body payload ~n:5
            (Net.Bytebuf.Writer.contents w)
        with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "accepted seq 0");
    Alcotest.test_case "empty input is an error" `Quick (fun () ->
        match Urcgc.Wire_codec.decode_body payload ~n:5 Bytes.empty with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "accepted empty input");
  ]

let bytebuf_tests =
  [
    Alcotest.test_case "integers roundtrip at width boundaries" `Quick
      (fun () ->
        let w = Net.Bytebuf.Writer.create () in
        Net.Bytebuf.Writer.u8 w 255;
        Net.Bytebuf.Writer.u16 w 65535;
        Net.Bytebuf.Writer.u24 w 0xFFFFFF;
        Net.Bytebuf.Writer.u32 w 0xFFFFFFFF;
        let r = Net.Bytebuf.Reader.of_bytes (Net.Bytebuf.Writer.contents w) in
        let ok v = match v with Ok x -> x | Error e -> Alcotest.fail e in
        Alcotest.(check int) "u8" 255 (ok (Net.Bytebuf.Reader.u8 r));
        Alcotest.(check int) "u16" 65535 (ok (Net.Bytebuf.Reader.u16 r));
        Alcotest.(check int) "u24" 0xFFFFFF (ok (Net.Bytebuf.Reader.u24 r));
        Alcotest.(check int) "u32" 0xFFFFFFFF (ok (Net.Bytebuf.Reader.u32 r)));
    Alcotest.test_case "writer rejects out-of-range" `Quick (fun () ->
        let w = Net.Bytebuf.Writer.create () in
        Alcotest.(check bool) "u8 256" true
          (try
             Net.Bytebuf.Writer.u8 w 256;
             false
           with Invalid_argument _ -> true);
        Alcotest.(check bool) "negative" true
          (try
             Net.Bytebuf.Writer.u16 w (-1);
             false
           with Invalid_argument _ -> true));
    Alcotest.test_case "bitmap roundtrips odd sizes" `Quick (fun () ->
        List.iter
          (fun n ->
            let flags = Array.init n (fun i -> i mod 3 = 0) in
            let w = Net.Bytebuf.Writer.create () in
            Net.Bytebuf.Writer.bitmap w flags;
            Alcotest.(check int) "packed size" ((n + 7) / 8)
              (Net.Bytebuf.Writer.length w);
            let r =
              Net.Bytebuf.Reader.of_bytes (Net.Bytebuf.Writer.contents w)
            in
            match Net.Bytebuf.Reader.bitmap r n with
            | Ok flags' -> Alcotest.(check (array bool)) "flags" flags flags'
            | Error e -> Alcotest.fail e)
          [ 1; 7; 8; 9; 15; 40 ]);
    (let encode w i =
       (* A representative mixed-width frame, parameterized so successive
          encodes into a reused writer produce different bytes. *)
       Net.Bytebuf.Writer.u8 w (i land 0xFF);
       Net.Bytebuf.Writer.u16 w (i * 7);
       Net.Bytebuf.Writer.u24 w (i * 131);
       Net.Bytebuf.Writer.u32 w (i * 65537);
       Net.Bytebuf.Writer.bytes w (Bytes.make 5 (Char.chr (97 + (i mod 26))));
       Net.Bytebuf.Writer.bitmap w (Array.init 11 (fun b -> (b + i) mod 2 = 0));
       Net.Bytebuf.Writer.contents w
     in
     Alcotest.test_case "clear/reset-then-encode matches a fresh writer"
       `Quick (fun () ->
         let reused = Net.Bytebuf.Writer.create ~capacity:8 () in
         for i = 0 to 40 do
           (* Alternate both reuse flavours across iterations. *)
           if i mod 2 = 0 then Net.Bytebuf.Writer.clear reused
           else Net.Bytebuf.Writer.reset reused;
           let fresh = Net.Bytebuf.Writer.create () in
           let expected = encode fresh i in
           let got = encode reused i in
           Alcotest.(check bool)
             (Printf.sprintf "frame %d identical" i)
             true
             (Bytes.equal expected got)
         done));
    Alcotest.test_case "clear and reset empty the writer" `Quick (fun () ->
        let w = Net.Bytebuf.Writer.create () in
        Net.Bytebuf.Writer.u32 w 0xDEADBEEF;
        Alcotest.(check int) "filled" 4 (Net.Bytebuf.Writer.length w);
        Net.Bytebuf.Writer.clear w;
        Alcotest.(check int) "cleared" 0 (Net.Bytebuf.Writer.length w);
        Alcotest.(check int) "empty contents" 0
          (Bytes.length (Net.Bytebuf.Writer.contents w));
        Net.Bytebuf.Writer.u8 w 7;
        Net.Bytebuf.Writer.reset w;
        Alcotest.(check int) "reset" 0 (Net.Bytebuf.Writer.length w));
  ]

(* Property: arbitrary generated bodies have encoded length = body_size and
   roundtrip to identical bytes. *)
let codec_property =
  let gen =
    QCheck.Gen.(
      let n = 5 in
      let mid_gen =
        map2 (fun o s -> mid o (s + 1)) (int_bound (n - 1)) (int_bound 50)
      in
      let data_gen =
        map2
          (fun m text ->
            (* at most one dep per origin, none on the message's own origin
               at or past its seq: build from distinct other origins *)
            let deps =
              List.filteri
                (fun i _ -> i mod 2 = 0)
                (List.init (Net.Node_id.to_int (Causal.Mid.origin m)) (fun o ->
                     mid o 1))
            in
            Urcgc.Wire.Data
              (Causal.Causal_msg.make ~mid:m ~deps
                 ~payload_size:(String.length text) text))
          mid_gen (string_size (int_bound 32))
      in
      let recover_gen =
        map2
          (fun a b ->
            Urcgc.Wire.Recover_req
              {
                requester = node (a mod n);
                origin = node (b mod n);
                from_seq = a + 1;
                to_seq = a + b + 1;
              })
          small_nat small_nat
      in
      oneof [ data_gen; recover_gen ])
  in
  QCheck.Test.make ~name:"codec: length = body_size and lossless roundtrip"
    ~count:300
    (QCheck.make
       ~print:(fun body -> Format.asprintf "%a" Urcgc.Wire.pp_body body)
       gen)
    (fun body ->
      let raw = Urcgc.Wire_codec.encode_body payload body in
      Bytes.length raw = Urcgc.Wire.body_size body
      &&
      match Urcgc.Wire_codec.decode_body payload ~n:5 raw with
      | Ok decoded ->
          Bytes.equal raw (Urcgc.Wire_codec.encode_body payload decoded)
      | Error _ -> false)

let suite =
  [
    ("codec.sizes", size_tests);
    ("codec.roundtrip", roundtrip_tests @ [ QCheck_alcotest.to_alcotest codec_property ]);
    ("codec.hostile", hostile_tests);
    ("codec.bytebuf", bytebuf_tests);
  ]
