(* The urcgc_sim binary's exit-code contract, exercised end-to-end on the
   built executable:

     0    verdict OK
     1    verdict failure (safety/liveness violation found)
     2    malformed input caught by spec validation (Invalid_argument)
     124  command-line parse error (cmdliner)

   The test stanza depends on ../bin/urcgc_sim.exe and runs from
   _build/default/test/, so the relative path below is stable. *)

let exe = Filename.concat Filename.parent_dir_name "bin/urcgc_sim.exe"

let run_cli args =
  Sys.command (Printf.sprintf "%s %s >/dev/null 2>&1" exe args)

let check_exit label expected args =
  Alcotest.test_case label `Quick (fun () ->
      Alcotest.(check int)
        (Printf.sprintf "%s: exit code of %S" label args)
        expected (run_cli args))

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let with_temp_file f =
  let path = Filename.temp_file "urcgc_trace" ".jsonl" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ()) (fun () -> f path)

let tests =
  [
    check_exit "run rejects an empty group with exit 2" 2 "run -n 0";
    check_exit "trace rejects an empty group with exit 2" 2 "trace -n 0";
    check_exit "replay rejects a negative silencing count with exit 2" 2
      "replay -n 5 --silenced=-2";
    check_exit "replay rejects an out-of-range rate with exit 2" 2
      "replay -n 5 --rate 7";
    check_exit "campaign rejects a negative budget with exit 2" 2
      "campaign --budget=-3";
    check_exit "unknown flags are a parse error (124)" 124 "run --nonsense";
    check_exit "a healthy tiny campaign exits 0" 0
      "campaign --budget 1 --seed 1";
    check_exit "campaign --metrics leaves the verdict untouched" 0
      "campaign --metrics --budget 1 --seed 1";
    Alcotest.test_case "a replayed violation exits 1" `Slow (fun () ->
        (* A known failing reproducer: silencing 2 of 3 every subrun is
           beyond the t = (n-1)/2 budget, and under this seed the group
           dissolves entirely — the last member departs with a solo view,
           which the primary-partition clause flags. *)
        Alcotest.(check int)
          "verdict failure" 1
          (run_cli
             "replay -n 3 -K 2 --rate 0.5 --messages 6 --silenced 2 \
              --max-rtd 60 --seed 1"));
    Alcotest.test_case "trace --out is byte-identical across runs" `Slow
      (fun () ->
        with_temp_file (fun out_a ->
            with_temp_file (fun out_b ->
                let cmd out =
                  Printf.sprintf
                    "trace -n 4 -K 2 --rate 1 --messages 3 --seed 5 \
                     --max-rtd 30 --out %s"
                    (Filename.quote out)
                in
                Alcotest.(check int) "first run ok" 0 (run_cli (cmd out_a));
                Alcotest.(check int) "second run ok" 0 (run_cli (cmd out_b));
                let a = read_file out_a and b = read_file out_b in
                Alcotest.(check bool) "non-empty" true (String.length a > 0);
                Alcotest.(check string) "byte-identical JSONL" a b)));
    check_exit "analyze on a missing file exits 2" 2 "analyze /nonexistent.jsonl";
    Alcotest.test_case "analyze on a malformed line exits 2" `Quick (fun () ->
        with_temp_file (fun path ->
            let oc = open_out path in
            output_string oc "{\"t\":0,\"ev\":\"mystery\"}\n";
            close_out oc;
            Alcotest.(check int)
              "schema violation" 2
              (run_cli (Printf.sprintf "analyze %s" (Filename.quote path)))));
    Alcotest.test_case "trace | analyze: clean verdict, deterministic exports"
      `Slow (fun () ->
        with_temp_file (fun trace_path ->
            with_temp_file (fun report_a ->
                with_temp_file (fun report_b ->
                    with_temp_file (fun perf_a ->
                        with_temp_file (fun perf_b ->
                            Alcotest.(check int)
                              "trace ok" 0
                              (run_cli
                                 (Printf.sprintf
                                    "trace -n 4 -K 2 --rate 1 --messages 3 \
                                     --seed 5 --max-rtd 30 --metrics --out %s"
                                    (Filename.quote trace_path)));
                            let analyze report perf =
                              run_cli
                                (Printf.sprintf
                                   "analyze %s --out %s --perfetto %s"
                                   (Filename.quote trace_path)
                                   (Filename.quote report)
                                   (Filename.quote perf))
                            in
                            Alcotest.(check int)
                              "clean verdict" 0 (analyze report_a perf_a);
                            Alcotest.(check int)
                              "second pass" 0 (analyze report_b perf_b);
                            let a = read_file report_a in
                            Alcotest.(check bool)
                              "verdict embedded" true
                              (Astring_contains.contains a {|"ok":true|});
                            Alcotest.(check string)
                              "report deterministic" a (read_file report_b);
                            Alcotest.(check string)
                              "perfetto deterministic" (read_file perf_a)
                              (read_file perf_b)))))));
    check_exit "campaign --analyze leaves a healthy verdict untouched" 0
      "campaign --analyze --budget 1 --seed 1";
  ]

let suite = [ ("cli.exit-codes", tests) ]
