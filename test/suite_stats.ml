(* Tests for the statistics toolkit and the paper's analytic formulas. *)

let summary_tests =
  [
    Alcotest.test_case "empty sample" `Quick (fun () ->
        let s = Stats.Summary.of_list [] in
        Alcotest.(check int) "count" 0 s.Stats.Summary.count;
        Alcotest.(check (float 1e-9)) "mean" 0.0 s.Stats.Summary.mean);
    Alcotest.test_case "mean, min, max, stddev" `Quick (fun () ->
        let s = Stats.Summary.of_list [ 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 ] in
        Alcotest.(check (float 1e-9)) "mean" 5.0 s.Stats.Summary.mean;
        Alcotest.(check (float 1e-9)) "sd" 2.0 s.Stats.Summary.stddev;
        Alcotest.(check (float 1e-9)) "min" 2.0 s.Stats.Summary.min;
        Alcotest.(check (float 1e-9)) "max" 9.0 s.Stats.Summary.max);
    Alcotest.test_case "percentiles interpolate" `Quick (fun () ->
        let sorted = [| 10.0; 20.0; 30.0; 40.0 |] in
        Alcotest.(check (float 1e-9)) "p50" 25.0
          (Stats.Summary.percentile sorted 0.5);
        Alcotest.(check (float 1e-9)) "p0" 10.0
          (Stats.Summary.percentile sorted 0.0);
        Alcotest.(check (float 1e-9)) "p100" 40.0
          (Stats.Summary.percentile sorted 1.0));
    Alcotest.test_case "percentile validates input" `Quick (fun () ->
        Alcotest.check_raises "empty"
          (Invalid_argument "Summary.percentile: empty sample") (fun () ->
            ignore (Stats.Summary.percentile [||] 0.5));
        Alcotest.check_raises "q"
          (Invalid_argument "Summary.percentile: q out of range") (fun () ->
            ignore (Stats.Summary.percentile [| 1.0 |] 1.5)));
    Alcotest.test_case "of_ints" `Quick (fun () ->
        let s = Stats.Summary.of_ints [ 1; 2; 3 ] in
        Alcotest.(check (float 1e-9)) "mean" 2.0 s.Stats.Summary.mean);
    Alcotest.test_case "single sample pins every percentile" `Quick (fun () ->
        let s = Stats.Summary.of_list [ 42.0 ] in
        Alcotest.(check (float 1e-9)) "p50" 42.0 s.Stats.Summary.p50;
        Alcotest.(check (float 1e-9)) "p95" 42.0 s.Stats.Summary.p95;
        Alcotest.(check (float 1e-9)) "p99" 42.0 s.Stats.Summary.p99;
        Alcotest.(check (float 1e-9)) "min" 42.0 s.Stats.Summary.min;
        Alcotest.(check (float 1e-9)) "max" 42.0 s.Stats.Summary.max);
    Alcotest.test_case "all-ties sample collapses to the tied value" `Quick
      (fun () ->
        let s = Stats.Summary.of_list [ 7.0; 7.0; 7.0; 7.0; 7.0 ] in
        Alcotest.(check (float 1e-9)) "p50" 7.0 s.Stats.Summary.p50;
        Alcotest.(check (float 1e-9)) "p95" 7.0 s.Stats.Summary.p95;
        Alcotest.(check (float 1e-9)) "stddev" 0.0 s.Stats.Summary.stddev);
  ]

(* Properties the percentile estimator must satisfy on any sample: results
   stay inside [min, max], q is monotone, and a constant sample is a fixed
   point regardless of q or length. *)
let percentile_properties =
  let nonempty =
    QCheck.(list_of_size Gen.(int_range 1 50) (float_range 0.0 1e6))
  in
  let quantile = QCheck.float_range 0.0 1.0 in
  [
    QCheck.Test.make ~name:"percentile stays within [min, max]" ~count:300
      QCheck.(pair nonempty quantile)
      (fun (xs, q) ->
        let sorted = Array.of_list (List.sort compare xs) in
        let p = Stats.Summary.percentile sorted q in
        p >= sorted.(0) && p <= sorted.(Array.length sorted - 1));
    QCheck.Test.make ~name:"percentile is monotone in q" ~count:300
      QCheck.(triple nonempty quantile quantile)
      (fun (xs, qa, qb) ->
        let sorted = Array.of_list (List.sort compare xs) in
        let lo = Float.min qa qb and hi = Float.max qa qb in
        Stats.Summary.percentile sorted lo
        <= Stats.Summary.percentile sorted hi);
    QCheck.Test.make ~name:"constant samples are a percentile fixed point"
      ~count:300
      QCheck.(triple (int_range 1 50) (float_range 0.0 1e6) quantile)
      (fun (len, v, q) ->
        let sorted = Array.make len v in
        Float.abs (Stats.Summary.percentile sorted q -. v) <= 1e-9);
  ]

let series_tests =
  [
    Alcotest.test_case "y_at exact lookup" `Quick (fun () ->
        let s = Stats.Series.make ~label:"t" [ (1.0, 10.0); (2.0, 20.0) ] in
        Alcotest.(check (option (float 1e-9))) "hit" (Some 20.0)
          (Stats.Series.y_at s 2.0);
        Alcotest.(check (option (float 1e-9))) "miss" None
          (Stats.Series.y_at s 3.0));
    Alcotest.test_case "y_max and map_y" `Quick (fun () ->
        let s = Stats.Series.of_ints ~label:"t" [ (0, 3); (1, 7); (2, 5) ] in
        Alcotest.(check (float 1e-9)) "max" 7.0 (Stats.Series.y_max s);
        let doubled = Stats.Series.map_y s ~f:(fun y -> 2.0 *. y) in
        Alcotest.(check (float 1e-9)) "max doubled" 14.0
          (Stats.Series.y_max doubled));
    Alcotest.test_case "pp_table renders aligned rows" `Quick (fun () ->
        let a = Stats.Series.of_ints ~label:"a" [ (0, 1); (1, 2) ] in
        let b = Stats.Series.of_ints ~label:"b" [ (0, 3) ] in
        let out = Format.asprintf "%a" Stats.Series.pp_table [ a; b ] in
        Alcotest.(check bool) "has header" true
          (String.length out > 0
          &&
          let lines = String.split_on_char '\n' out in
          List.length lines >= 3);
        (* the hole in series b renders as '-' *)
        Alcotest.(check bool) "hole marked" true
          (String.contains out '-'));
    Alcotest.test_case "ascii_plot does not crash on edge inputs" `Quick
      (fun () ->
        let empty = Stats.Series.make ~label:"e" [] in
        let single = Stats.Series.make ~label:"s" [ (1.0, 1.0) ] in
        ignore (Format.asprintf "%a" (Stats.Series.ascii_plot ~width:20 ~height:5) [ empty ]);
        ignore
          (Format.asprintf "%a" (Stats.Series.ascii_plot ~width:20 ~height:5) [ single ]));
  ]

let table_tests =
  [
    Alcotest.test_case "renders aligned cells" `Quick (fun () ->
        let t =
          Stats.Table.create
            ~columns:[ ("name", Stats.Table.Left); ("value", Stats.Table.Right) ]
        in
        Stats.Table.add_row t [ "alpha"; "1" ];
        Stats.Table.add_rule t;
        Stats.Table.add_row t [ "b"; "100" ];
        let out = Format.asprintf "%a" Stats.Table.pp t in
        Alcotest.(check bool) "contains alpha" true
          (Astring_contains.contains out "alpha");
        Alcotest.(check bool) "right aligned value" true
          (Astring_contains.contains out "|     1 |"));
    Alcotest.test_case "rejects wrong arity" `Quick (fun () ->
        let t = Stats.Table.create ~columns:[ ("a", Stats.Table.Left) ] in
        Alcotest.check_raises "arity"
          (Invalid_argument "Table.add_row: cell count mismatch") (fun () ->
            Stats.Table.add_row t [ "x"; "y" ]));
    Alcotest.test_case "cell formatting" `Quick (fun () ->
        Alcotest.(check string) "int" "42" (Stats.Table.cell_int 42);
        Alcotest.(check string) "float" "3.14"
          (Stats.Table.cell_float ~decimals:2 3.14159));
  ]

let analytic_tests =
  [
    Alcotest.test_case "Table 1 formulas at the paper's n=15, K=3" `Quick
      (fun () ->
        Alcotest.(check int) "urcgc reliable msgs" 28
          (Stats.Analytic.urcgc_control_msgs_reliable ~n:15);
        Alcotest.(check int) "cbcast reliable msgs" 16
          (Stats.Analytic.cbcast_control_msgs_reliable ~n:15);
        Alcotest.(check int) "cbcast reliable size" 64
          (Stats.Analytic.cbcast_msg_size_reliable ~n:15);
        Alcotest.(check int) "cbcast flush size" 56
          (Stats.Analytic.cbcast_flush_size ~n:15);
        Alcotest.(check int) "urcgc crash msgs (f=0)" 168
          (Stats.Analytic.urcgc_control_msgs_crash ~n:15 ~k:3 ~f:0);
        Alcotest.(check int) "cbcast crash msgs (f=0)" 84
          (Stats.Analytic.cbcast_control_msgs_crash ~n:15 ~k:3 ~f:0));
    Alcotest.test_case "Figure 5 slopes" `Quick (fun () ->
        (* urcgc: 2K + f — slope 1 in f.  CBCAST: K(5f+6) — slope 5K. *)
        let u0 = Stats.Analytic.urcgc_recovery_time ~k:3 ~f:0 in
        let u1 = Stats.Analytic.urcgc_recovery_time ~k:3 ~f:1 in
        let c0 = Stats.Analytic.cbcast_recovery_time ~k:3 ~f:0 in
        let c1 = Stats.Analytic.cbcast_recovery_time ~k:3 ~f:1 in
        Alcotest.(check int) "urcgc slope 1" 1 (u1 - u0);
        Alcotest.(check int) "cbcast slope 5K" 15 (c1 - c0);
        Alcotest.(check int) "urcgc f=0 is 2K" 6 u0;
        Alcotest.(check int) "cbcast f=0 is 6K" 18 c0);
    Alcotest.test_case "history bounds" `Quick (fun () ->
        Alcotest.(check int) "reliable 2n" 80
          (Stats.Analytic.urcgc_history_bound_reliable ~n:40);
        Alcotest.(check int) "faulty 2(2K+f)n" 560
          (Stats.Analytic.urcgc_history_bound ~n:40 ~k:3 ~f:1));
    Alcotest.test_case "a urcgc control message fits an IP datagram at n=15"
      `Quick (fun () ->
        let d = Urcgc.Decision.initial ~n:15 in
        let r =
          {
            Urcgc.Wire.sender = Net.Node_id.of_int 1;
            subrun = 0;
            last_processed = Array.make 15 0;
            waiting = Array.make 15 None;
            prev_decision = d;
          }
        in
        Alcotest.(check bool) "request fits" true
          (Urcgc.Wire.request_size r <= Stats.Analytic.ip_min_datagram);
        Alcotest.(check bool) "decision fits" true
          (4 + Urcgc.Decision.encoded_size d <= Stats.Analytic.ip_min_datagram));
    Alcotest.test_case "a urcgc control message fits an Ethernet frame at n=40"
      `Quick (fun () ->
        let d = Urcgc.Decision.initial ~n:40 in
        Alcotest.(check bool) "fits" true
          (4 + Urcgc.Decision.encoded_size d
          <= Stats.Analytic.ethernet_max_payload));
  ]

let suite =
  [
    ( "stats.summary",
      summary_tests
      @ List.map QCheck_alcotest.to_alcotest percentile_properties );
    ("stats.series", series_tests);
    ("stats.table", table_tests);
    ("stats.analytic", analytic_tests);
  ]
