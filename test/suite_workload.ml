(* Tests for the workload layer: load model, scenarios, the invariant
   checker's ability to actually detect violations, and runner plumbing. *)

let node n = Net.Node_id.of_int n

let load_tests =
  [
    Alcotest.test_case "defaults" `Quick (fun () ->
        let l = Workload.Load.make ~rate:0.5 () in
        Alcotest.(check (option int)) "no cap" None l.Workload.Load.total_messages;
        Alcotest.(check int) "payload" 64 l.Workload.Load.payload_size);
    Alcotest.test_case "rate validation" `Quick (fun () ->
        Alcotest.check_raises "over 1"
          (Invalid_argument "Load.make: rate must be in [0,1]") (fun () ->
            ignore (Workload.Load.make ~rate:1.5 ()));
        Alcotest.check_raises "negative"
          (Invalid_argument "Load.make: rate must be in [0,1]") (fun () ->
            ignore (Workload.Load.make ~rate:(-0.1) ())));
  ]

let scenario_tests =
  [
    Alcotest.test_case "crash_at_subrun adds a fail-stop just into the subrun"
      `Quick (fun () ->
        let config = Urcgc.Config.make ~n:4 () in
        let load = Workload.Load.make ~rate:0.5 () in
        let s = Workload.Scenario.make ~config ~load () in
        let s = Workload.Scenario.crash_at_subrun s (node 2) ~subrun:5 in
        match s.Workload.Scenario.fault.Net.Fault.crashes with
        | [ (who, at) ] ->
            Alcotest.(check int) "node" 2 (Net.Node_id.to_int who);
            Alcotest.(check int) "time" 501 (Sim.Ticks.to_int at)
        | _ -> Alcotest.fail "expected one crash");
    Alcotest.test_case "validation" `Quick (fun () ->
        let config = Urcgc.Config.make ~n:4 () in
        let load = Workload.Load.make ~rate:0.5 () in
        Alcotest.check_raises "max_rtd"
          (Invalid_argument "Scenario.make: max_rtd must be positive")
          (fun () ->
            ignore (Workload.Scenario.make ~max_rtd:0.0 ~config ~load ())));
  ]

(* The checker must detect violations, not just bless good runs.  We verify
   it against hand-built delivery logs by replaying through its own replay
   logic via a real cluster whose records we cannot forge — so instead we
   test the primitive it is built on. *)
let checker_tests =
  [
    Alcotest.test_case "clean run passes all checks" `Quick (fun () ->
        let config = Urcgc.Config.make ~n:4 ~k:2 () in
        let load = Workload.Load.make ~rate:0.5 ~total_messages:20 () in
        let scenario =
          Workload.Scenario.make ~name:"clean" ~config ~load ~seed:3 ()
        in
        let report = Workload.Runner.run scenario in
        Alcotest.(check bool) "ok" true
          (Workload.Checker.ok report.Workload.Runner.verdict));
    Alcotest.test_case "verdict pretty-prints" `Quick (fun () ->
        let v =
          {
            Workload.Checker.causal_ok = false;
            atomicity_ok = true;
            zombie_ok = true;
            views_ok = true;
            partition_ok = true;
            violations = [ "synthetic violation" ];
          }
        in
        let out = Format.asprintf "%a" Workload.Checker.pp v in
        Alcotest.(check bool) "mentions it" true
          (Astring_contains.contains out "synthetic violation");
        Alcotest.(check bool) "not ok" false (Workload.Checker.ok v));
  ]

let runner_tests =
  [
    Alcotest.test_case "senders restriction is honored" `Slow (fun () ->
        let config = Urcgc.Config.make ~n:5 ~k:2 () in
        let load =
          Workload.Load.make ~rate:1.0 ~total_messages:20
            ~senders:[ node 1 ] ()
        in
        let scenario =
          Workload.Scenario.make ~name:"single-sender" ~config ~load ~seed:5 ()
        in
        let report = Workload.Runner.run scenario in
        Alcotest.(check bool) "ok" true
          (Workload.Checker.ok report.Workload.Runner.verdict);
        Alcotest.(check int) "only 20" 20 report.Workload.Runner.generated;
        (* every message processed by the 4 other members *)
        Alcotest.(check int) "80 remote" 80
          report.Workload.Runner.delivered_remote);
    Alcotest.test_case "own-chain deps maximize concurrency" `Slow (fun () ->
        let config = Urcgc.Config.make ~n:5 ~k:2 () in
        let load =
          Workload.Load.make ~rate:0.8 ~total_messages:40
            ~deps_mode:Workload.Load.Own_chain ()
        in
        let scenario =
          Workload.Scenario.make ~name:"own-chain" ~config ~load ~seed:5 ()
        in
        let report = Workload.Runner.run scenario in
        Alcotest.(check bool) "ok" true
          (Workload.Checker.ok report.Workload.Runner.verdict));
    Alcotest.test_case "random frontier deps stay valid" `Slow (fun () ->
        let config = Urcgc.Config.make ~n:5 ~k:2 () in
        let load =
          Workload.Load.make ~rate:0.8 ~total_messages:40
            ~deps_mode:(Workload.Load.Random_frontier 0.5) ()
        in
        let scenario =
          Workload.Scenario.make ~name:"random-deps" ~config ~load ~seed:6 ()
        in
        let report = Workload.Runner.run scenario in
        Alcotest.(check bool) "ok" true
          (Workload.Checker.ok report.Workload.Runner.verdict));
    Alcotest.test_case "history series is sampled every round" `Slow (fun () ->
        let config = Urcgc.Config.make ~n:4 ~k:2 () in
        let load = Workload.Load.make ~rate:0.5 ~total_messages:10 () in
        let scenario =
          Workload.Scenario.make ~name:"series" ~config ~load ~seed:7 ()
        in
        let report = Workload.Runner.run scenario in
        Alcotest.(check bool) "nonempty" true
          (List.length report.Workload.Runner.history_series > 0);
        let rounds = List.map fst report.Workload.Runner.history_series in
        Alcotest.(check (list int)) "consecutive rounds"
          (List.init (List.length rounds) Fun.id)
          rounds);
  ]

let suite =
  [
    ("workload.load", load_tests);
    ("workload.scenario", scenario_tests);
    ("workload.checker", checker_tests);
    ("workload.runner", runner_tests);
  ]
