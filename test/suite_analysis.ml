(* The offline trace analyzer: strict JSONL parsing (round-trip against the
   golden fixture, schema rejections), the trace-level invariant oracle on
   hand-built violating histories, truncation tolerance, deterministic
   exports, and the cross-validation property: on randomized campaign runs —
   fault-injected and over-budget included — the oracle's verdict must agree
   with the live checker's, run by run. *)

let at n = Sim.Ticks.of_int n
let r t event = { Sim.Trace.time = at t; event }

let data ~origin ~seq ~deps =
  Sim.Trace.Data { origin; seq; deps; bytes = 8 }

let bcast t ~src ~origin ~seq ~deps =
  r t (Sim.Trace.Broadcast { src; dsts = 3; pdu = data ~origin ~seq ~deps })

let deliver t node (origin, seq) =
  r t (Sim.Trace.Deliver { node; mid = { Sim.Trace.origin; seq } })

let check_verdict ~name expected (v : Sim.Analysis.verdict) =
  let causal, amo, atomicity, zombie = expected in
  Alcotest.(check bool) (name ^ ": causal") causal v.Sim.Analysis.causal_ok;
  Alcotest.(check bool)
    (name ^ ": at-most-once") amo v.Sim.Analysis.at_most_once_ok;
  Alcotest.(check bool)
    (name ^ ": atomicity") atomicity v.Sim.Analysis.atomicity_ok;
  Alcotest.(check bool) (name ^ ": zombie") zombie v.Sim.Analysis.zombie_ok

let analyze ?n records = Sim.Analysis.analyze ?n ~complete:true records

let contains = Astring_contains.contains

(* Two messages, both processed everywhere: the baseline every violation
   test below is a one-event mutation of. *)
let clean_history =
  [
    bcast 10 ~src:0 ~origin:0 ~seq:1 ~deps:0;
    deliver 10 0 (0, 1);
    bcast 12 ~src:1 ~origin:1 ~seq:1 ~deps:1;
    deliver 12 1 (1, 1);
    deliver 20 1 (0, 1);
    deliver 22 0 (1, 1);
  ]

let oracle_tests =
  [
    Alcotest.test_case "clean history passes every check" `Quick (fun () ->
        let a = analyze ~n:2 clean_history in
        check_verdict ~name:"clean" (true, true, true, true)
          a.Sim.Analysis.verdict;
        Alcotest.(check (list string))
          "no violations" [] a.Sim.Analysis.verdict.Sim.Analysis.violations);
    Alcotest.test_case "duplicate processing violates at-most-once" `Quick
      (fun () ->
        let a =
          analyze ~n:2 (clean_history @ [ deliver 30 1 (0, 1) ])
        in
        check_verdict ~name:"dup" (true, false, true, true)
          a.Sim.Analysis.verdict;
        Alcotest.(check bool)
          "names the event" true
          (List.exists
             (fun v -> contains v "(0,1)")
             a.Sim.Analysis.verdict.Sim.Analysis.violations));
    Alcotest.test_case "a gap in an origin chain violates causal order" `Quick
      (fun () ->
        let a =
          analyze ~n:2
            [
              bcast 10 ~src:0 ~origin:0 ~seq:1 ~deps:0;
              deliver 10 0 (0, 1);
              bcast 12 ~src:0 ~origin:0 ~seq:2 ~deps:1;
              deliver 12 0 (0, 2);
              bcast 14 ~src:0 ~origin:0 ~seq:3 ~deps:1;
              deliver 14 0 (0, 3);
              (* Node 1 starts the chain correctly, then skips seq 2. *)
              deliver 20 1 (0, 1);
              deliver 21 1 (0, 3);
            ]
        in
        check_verdict ~name:"gap" (false, true, false, true)
          a.Sim.Analysis.verdict;
        Alcotest.(check bool)
          "says out of order" true
          (List.exists
             (fun v -> contains v "out of order")
             a.Sim.Analysis.verdict.Sim.Analysis.violations));
    Alcotest.test_case
      "processing ahead of a frontier dependency violates causal order" `Quick
      (fun () ->
        (* (1,1) is labelled with the full frontier, which includes (0,1);
           node 2 processes (1,1) first.  Chain contiguity alone cannot see
           this — only the vector check can. *)
        let a =
          analyze ~n:3
            [
              bcast 10 ~src:0 ~origin:0 ~seq:1 ~deps:0;
              deliver 10 0 (0, 1);
              deliver 11 1 (0, 1);
              bcast 12 ~src:1 ~origin:1 ~seq:1 ~deps:1;
              deliver 12 1 (1, 1);
              deliver 20 2 (1, 1);
              deliver 21 2 (0, 1);
              deliver 25 0 (1, 1);
            ]
        in
        check_verdict ~name:"frontier" (false, true, true, true)
          a.Sim.Analysis.verdict;
        Alcotest.(check bool)
          "names the predecessor" true
          (List.exists
             (fun v -> contains v "causal predecessor (0,1)")
             a.Sim.Analysis.verdict.Sim.Analysis.violations));
    Alcotest.test_case "survivors with different sets violate atomicity" `Quick
      (fun () ->
        let a =
          analyze ~n:2
            (clean_history
            @ [
                bcast 30 ~src:0 ~origin:0 ~seq:2 ~deps:2;
                deliver 30 0 (0, 2);
                (* never processed at node 1 *)
              ])
        in
        check_verdict ~name:"atomicity" (true, true, false, true)
          a.Sim.Analysis.verdict);
    Alcotest.test_case "a crashed process is exempt from atomicity" `Quick
      (fun () ->
        let a =
          analyze ~n:2
            (clean_history
            @ [
                bcast 30 ~src:0 ~origin:0 ~seq:2 ~deps:2;
                deliver 30 0 (0, 2);
                r 40 (Sim.Trace.Crash { node = 1 });
              ])
        in
        check_verdict ~name:"crash-exempt" (true, true, true, true)
          a.Sim.Analysis.verdict;
        Alcotest.(check (list int)) "crashed" [ 1 ] a.Sim.Analysis.crashed);
    Alcotest.test_case "a survivor processing a discarded message is a zombie"
      `Quick (fun () ->
        let a =
          analyze ~n:2
            (clean_history
            @ [
                r 30
                  (Sim.Trace.Wait_discard
                     { node = 0; mids = [ { Sim.Trace.origin = 1; seq = 1 } ] });
              ])
        in
        (* Both survivors processed (1,1), which agreement later discarded. *)
        check_verdict ~name:"zombie" (true, true, true, false)
          a.Sim.Analysis.verdict);
    Alcotest.test_case "group size is inferred from the highest index" `Quick
      (fun () ->
        let a = Sim.Analysis.analyze ~complete:true clean_history in
        Alcotest.(check int) "n" 2 a.Sim.Analysis.nodes;
        let b = Sim.Analysis.analyze ~n:5 ~complete:true clean_history in
        Alcotest.(check int) "explicit n wins" 5 b.Sim.Analysis.nodes;
        (* The three silent members never processed anything. *)
        Alcotest.(check bool)
          "silent members break atomicity" false
          b.Sim.Analysis.verdict.Sim.Analysis.atomicity_ok);
  ]

let truncation_tests =
  [
    Alcotest.test_case "a suffix window reports coverage, not violations"
      `Quick (fun () ->
        (* Mid-chain deliveries with no broadcast in sight: a ring that
           dropped the prefix.  Autodetection must flag it and the oracle
           must not invent chain-gap or atomicity violations. *)
        let records =
          [
            deliver 500 0 (0, 7);
            deliver 501 1 (0, 7);
            deliver 510 0 (0, 8);
          ]
        in
        let a = Sim.Analysis.analyze ~n:2 records in
        Alcotest.(check bool)
          "detected as truncated" false a.Sim.Analysis.coverage.Sim.Analysis.complete;
        check_verdict ~name:"window" (true, true, true, true)
          a.Sim.Analysis.verdict;
        Alcotest.(check bool)
          "atomicity skipped" true
          (List.exists
             (fun s -> contains s "atomicity")
             a.Sim.Analysis.verdict.Sim.Analysis.skipped);
        Alcotest.(check int)
          "pre-window mids counted" 2
          a.Sim.Analysis.coverage.Sim.Analysis.pre_window_mids;
        (* A real gap inside the window is still a violation. *)
        let b = Sim.Analysis.analyze ~n:2 (records @ [ deliver 520 0 (0, 11) ]) in
        Alcotest.(check bool)
          "in-window gap still caught" false
          b.Sim.Analysis.verdict.Sim.Analysis.causal_ok);
    Alcotest.test_case "a complete trace is autodetected" `Quick (fun () ->
        let lines = Suite_trace.trace_jsonl (Suite_trace.golden_scenario ()) in
        match Sim.Analysis.parse_jsonl lines with
        | Error msg -> Alcotest.fail msg
        | Ok (records, _) ->
            let a = Sim.Analysis.analyze records in
            Alcotest.(check bool)
              "complete" true a.Sim.Analysis.coverage.Sim.Analysis.complete;
            Alcotest.(check int)
              "no pre-window mids" 0
              a.Sim.Analysis.coverage.Sim.Analysis.pre_window_mids);
  ]

let parser_tests =
  [
    Alcotest.test_case "golden JSONL round-trips through the parser" `Quick
      (fun () ->
        List.iter
          (fun line ->
            match Sim.Analysis.parse_line line with
            | Error msg -> Alcotest.failf "%s: %s" line msg
            | Ok record ->
                Alcotest.(check string)
                  "re-serializes byte-identically" line
                  (Sim.Trace.json_of_record record))
          Suite_trace.golden_lines);
    Alcotest.test_case "schema violations are rejected" `Quick (fun () ->
        let rejects reason line =
          match Sim.Analysis.parse_line line with
          | Ok _ -> Alcotest.failf "accepted %s: %s" reason line
          | Error _ -> ()
        in
        rejects "unknown event" {|{"t":1,"ev":"teleport","node":1}|};
        rejects "unknown pdu kind"
          {|{"t":1,"ev":"recv","node":0,"pdu":{"kind":"gossip","origin":0}}|};
        rejects "unknown drop kind"
          {|{"t":1,"ev":"drop","src":0,"dst":1,"kind":"magic","stage":"link"}|};
        rejects "unknown drop stage"
          {|{"t":1,"ev":"drop","src":0,"dst":1,"kind":"data","stage":"wire"}|};
        rejects "extra field" {|{"t":1,"ev":"crash","node":2,"extra":1}|};
        rejects "missing field" {|{"t":1,"ev":"deliver","node":1,"origin":2}|};
        rejects "reordered fields"
          {|{"t":1,"ev":"deliver","origin":2,"node":1,"seq":3}|};
        rejects "negative index" {|{"t":1,"ev":"crash","node":-2}|};
        rejects "float tick" {|{"t":1.5,"ev":"crash","node":2}|};
        rejects "trailing garbage" {|{"t":1,"ev":"crash","node":2} extra|};
        rejects "not an object" {|[1,2,3]|};
        rejects "bare metrics is not an event" {|{"metrics":{}}|});
    Alcotest.test_case "positioned errors carry the line number" `Quick
      (fun () ->
        match
          Sim.Analysis.parse_jsonl
            [ {|{"t":0,"ev":"rotate","subrun":0,"coordinator":0}|}; "{oops" ]
        with
        | Ok _ -> Alcotest.fail "accepted malformed line"
        | Error msg ->
            Alcotest.(check bool) "line 2 named" true (contains msg "line 2"));
    Alcotest.test_case "a trailing metrics line is returned verbatim" `Quick
      (fun () ->
        let metrics = {|{"metrics":{"counters":{},"gauges":{},"histograms":{}}}|} in
        match
          Sim.Analysis.parse_jsonl
            [ {|{"t":0,"ev":"rotate","subrun":0,"coordinator":0}|}; metrics ]
        with
        | Error msg -> Alcotest.fail msg
        | Ok (records, metrics_json) ->
            Alcotest.(check int) "one record" 1 (List.length records);
            Alcotest.(check (option string))
              "metrics verbatim" (Some metrics) metrics_json);
    Alcotest.test_case "events after the metrics line are rejected" `Quick
      (fun () ->
        match
          Sim.Analysis.parse_jsonl
            [
              {|{"metrics":{}}|};
              {|{"t":0,"ev":"rotate","subrun":0,"coordinator":0}|};
            ]
        with
        | Ok _ -> Alcotest.fail "accepted trailing events"
        | Error msg ->
            Alcotest.(check bool)
              "diagnosed" true
              (contains msg "after the metrics line"));
  ]

let dist_tests =
  [
    Alcotest.test_case "empty distribution is all zeros" `Quick (fun () ->
        let d = Sim.Analysis.dist_of_ticks [] in
        Alcotest.(check int) "count" 0 d.Sim.Analysis.count;
        Alcotest.(check (float 0.0)) "mean" 0.0 d.Sim.Analysis.mean;
        Alcotest.(check (float 0.0)) "p95" 0.0 d.Sim.Analysis.p95);
    Alcotest.test_case "single sample is every quantile" `Quick (fun () ->
        let d = Sim.Analysis.dist_of_ticks [ 7 ] in
        Alcotest.(check int) "count" 1 d.Sim.Analysis.count;
        Alcotest.(check (float 1e-9)) "min" 7.0 d.Sim.Analysis.min;
        Alcotest.(check (float 1e-9)) "max" 7.0 d.Sim.Analysis.max;
        Alcotest.(check (float 1e-9)) "p50" 7.0 d.Sim.Analysis.p50;
        Alcotest.(check (float 1e-9)) "p95" 7.0 d.Sim.Analysis.p95);
    Alcotest.test_case "nearest-rank boundaries on 20 samples" `Quick (fun () ->
        let d = Sim.Analysis.dist_of_ticks (List.init 20 (fun i -> i + 1)) in
        (* rank(0.50 * 20) = 10th, rank(0.95 * 20) = 19th *)
        Alcotest.(check (float 1e-9)) "p50" 10.0 d.Sim.Analysis.p50;
        Alcotest.(check (float 1e-9)) "p95" 19.0 d.Sim.Analysis.p95);
  ]

let export_tests =
  [
    Alcotest.test_case "analysis report is byte-deterministic" `Quick (fun () ->
        let report_of_run () =
          let lines = Suite_trace.trace_jsonl (Suite_trace.golden_scenario ()) in
          match Sim.Analysis.parse_jsonl lines with
          | Error msg -> Alcotest.fail msg
          | Ok (records, _) ->
              Sim.Analysis.report_json (Sim.Analysis.analyze records)
        in
        let a = report_of_run () and b = report_of_run () in
        Alcotest.(check string) "identical" a b;
        Alcotest.(check bool) "verdict ok" true (contains a {|"ok":true|});
        Alcotest.(check bool)
          "has latency distribution" true
          (contains a {|"latency_rtd":{"count":9|}));
    Alcotest.test_case "report is valid JSON under the strict parser" `Quick
      (fun () ->
        let a = analyze ~n:2 clean_history in
        match Sim.Json.parse (Sim.Analysis.report_json a) with
        | Error msg -> Alcotest.fail msg
        | Ok json ->
            Alcotest.(check bool)
              "has a verdict object" true
              (Sim.Json.member "verdict" json <> None));
    Alcotest.test_case "perfetto export is valid JSON with per-node tracks"
      `Quick (fun () ->
        let lines = Suite_trace.trace_jsonl (Suite_trace.golden_scenario ()) in
        match Sim.Analysis.parse_jsonl lines with
        | Error msg -> Alcotest.fail msg
        | Ok (records, _) -> (
            let out = Sim.Analysis.perfetto_json records in
            match Sim.Json.parse out with
            | Error msg -> Alcotest.failf "invalid perfetto JSON: %s" msg
            | Ok json -> (
                match Sim.Json.member "traceEvents" json with
                | Some (Sim.Json.List events) ->
                    let phases =
                      List.filter_map
                        (fun e ->
                          match Sim.Json.member "ph" e with
                          | Some (Sim.Json.Str ph) -> Some ph
                          | _ -> None)
                        events
                    in
                    Alcotest.(check int)
                      "every event has a phase" (List.length events)
                      (List.length phases);
                    (* 4 node tracks + net + group + process name. *)
                    Alcotest.(check int)
                      "metadata records" 7
                      (List.length (List.filter (fun p -> p = "M") phases));
                    Alcotest.(check bool)
                      "some complete spans" true
                      (List.exists (fun p -> p = "X") phases);
                    Alcotest.(check bool)
                      "some instants" true
                      (List.exists (fun p -> p = "i") phases)
                | _ -> Alcotest.fail "no traceEvents array")));
    Alcotest.test_case "perfetto export is byte-deterministic" `Quick (fun () ->
        let once () =
          Sim.Analysis.perfetto_json
            (match
               Sim.Analysis.parse_jsonl
                 (Suite_trace.trace_jsonl (Suite_trace.golden_scenario ()))
             with
            | Ok (records, _) -> records
            | Error msg -> Alcotest.fail msg)
        in
        Alcotest.(check string) "identical" (once ()) (once ()));
  ]

(* The cross-validation property: for randomized campaign configurations —
   including crash/omission/loss injection and over-budget silencing — the
   trace oracle must agree with the live checker bit by bit.  A disagreement
   fails with the seed and spec printed, so it replays with
   [urcgc_sim replay ... --analyze]. *)
let agreement_property ~over_budget ~budget ~seed () =
  let rng = Sim.Rng.create ~seed in
  for index = 0 to budget - 1 do
    let spec = Workload.Campaign.generate ~over_budget rng in
    let run_seed = Sim.Rng.derive ~seed index in
    let scenario =
      Workload.Campaign.scenario_of_spec ~name:"oracle-prop" ~seed:run_seed
        spec
    in
    let result = Workload.Analyzer.run_scenario scenario in
    let checker = result.Workload.Analyzer.report.Workload.Runner.verdict in
    let oracle = result.Workload.Analyzer.analysis.Sim.Analysis.verdict in
    if not (Workload.Analyzer.agrees checker oracle) then
      Alcotest.failf
        "oracle disagreement at run %d (seed %d): %a@.%a" index run_seed
        Workload.Campaign.pp_spec spec Workload.Analyzer.pp_disagreement
        (checker, oracle)
  done

let property_tests =
  [
    Alcotest.test_case "oracle agrees with the checker (within budget)" `Slow
      (agreement_property ~over_budget:false ~budget:100 ~seed:2024);
    Alcotest.test_case "oracle agrees with the checker (over budget)" `Slow
      (agreement_property ~over_budget:true ~budget:30 ~seed:2025);
    Alcotest.test_case "campaign embeds agreement bits under --analyze" `Quick
      (fun () ->
        let campaign =
          Workload.Campaign.run ~shrink_failures:false ~with_analysis:true
            ~budget:3 ~seed:7 ()
        in
        List.iter
          (fun r ->
            Alcotest.(check (option bool))
              "agrees" (Some true) r.Workload.Campaign.oracle_agrees;
            Alcotest.(check bool)
              "analysis embedded" true
              (r.Workload.Campaign.analysis <> None))
          campaign.Workload.Campaign.runs;
        Alcotest.(check bool)
          "report json carries it" true
          (contains
             (Workload.Campaign.to_json campaign)
             {|"oracle_agrees":true|}));
  ]

let suite =
  [
    ("analysis.oracle", oracle_tests);
    ("analysis.truncation", truncation_tests);
    ("analysis.parser", parser_tests);
    ("analysis.dist", dist_tests);
    ("analysis.export", export_tests);
    ("analysis.property", property_tests);
  ]
