(* Reference copy of the list-building [Urcgc.Member] implementation as it
   stood before the sink-based action emission rewrite.  The randomized
   equivalence suite in suite_hotpath.ml drives both this and the production
   member with identical operation sequences and asserts the action streams
   and observable state match — the same oracle pattern as
   waiting_list_reference.ml.  Apart from the [Urcgc.] qualifications and
   dropped profiling probes, the protocol logic is verbatim. *)

open Urcgc

type 'a action = 'a Member.action

type 'a submission = {
  payload : 'a;
  deps : Causal.Mid.t list option;
  size : int;
}

type 'a t = {
  id : Net.Node_id.t;
  config : Config.t;
  delivery : Causal.Delivery.t;
  history : 'a Causal.History.t;
  waiting : 'a Causal.Waiting_list.t;
  view : Causal.Group_view.t;
  sap : 'a submission Queue.t;
  mutable decision : Decision.t;
  mutable decision_seen_this_subrun : bool;
  mutable next_seq : int;
  mutable silence : int;
  mutable recovery_stalled : int;
  mutable recovery_baseline : int;
  mutable pending_requests : Wire.request list;
  mutable coordinator_for : int option;
  mutable left : Member.reason option;
  mutable flow_blocked : bool;
  mutable subrun : int;
}

let create config id =
  let n = config.Config.n in
  {
    id;
    config;
    delivery = Causal.Delivery.create ~n;
    history = Causal.History.create ~n;
    waiting = Causal.Waiting_list.create ~n;
    view = Causal.Group_view.create ~n;
    sap = Queue.create ();
    decision = Decision.initial ~n;
    decision_seen_this_subrun = false;
    next_seq = 1;
    silence = 0;
    recovery_stalled = 0;
    recovery_baseline = 0;
    pending_requests = [];
    coordinator_for = None;
    left = None;
    flow_blocked = false;
    subrun = -1;
  }

let active t = t.left = None
let history_length t = Causal.History.length t.history
let waiting_length t = Causal.Waiting_list.length t.waiting
let processed_count t = Causal.Delivery.count t.delivery
let last_processed t origin = Causal.Delivery.last_processed t.delivery origin
let left_reason t = t.left
let sap_backlog t = Queue.length t.sap

let submit ?deps ?size t payload =
  let size = Option.value size ~default:t.config.Config.payload_size in
  Queue.push { payload; deps; size } t.sap

let leave t reason =
  t.left <- Some reason;
  [ Member.Left reason ]

(* -- message processing ---------------------------------------------- *)

let process_one t msg =
  Causal.Delivery.mark t.delivery msg.Causal.Causal_msg.mid;
  Causal.History.store t.history msg;
  Member.Processed msg

let process_cascade_rev t msg =
  let actions = ref [ process_one t msg ] in
  let rec drain () =
    match Causal.Waiting_list.take_processable t.waiting t.delivery with
    | None -> ()
    | Some unblocked ->
        actions := process_one t unblocked :: !actions;
        drain ()
  in
  drain ();
  !actions

let process_cascade t msg = List.rev (process_cascade_rev t msg)

let receive_data t msg =
  let mid = msg.Causal.Causal_msg.mid in
  if Causal.Delivery.processed t.delivery mid then []
  else if Causal.Delivery.processable t.delivery msg then process_cascade t msg
  else begin
    Causal.Waiting_list.add t.waiting msg;
    [ Member.Queued (mid, Causal.Waiting_list.length t.waiting) ]
  end

(* -- data generation --------------------------------------------------- *)

let frontier t =
  let deps = ref [] in
  for j = t.config.Config.n - 1 downto 0 do
    let origin = Net.Node_id.of_int j in
    if not (Net.Node_id.equal origin t.id) then begin
      let seq = Causal.Delivery.last_processed t.delivery origin in
      if seq > 0 then deps := Causal.Mid.make ~origin ~seq :: !deps
    end
  done;
  !deps

let update_flow_control t =
  match t.config.Config.flow_threshold with
  | None -> ()
  | Some threshold -> t.flow_blocked <- Causal.History.length t.history >= threshold

let generate_data t =
  update_flow_control t;
  if t.flow_blocked || Queue.is_empty t.sap then []
  else begin
    let { payload; deps; size } = Queue.pop t.sap in
    let deps =
      match deps with
      | Some deps ->
          List.iter
            (fun dep ->
              if not (Causal.Delivery.processed t.delivery dep) then
                invalid_arg
                  (Format.asprintf
                     "Member.generate_data: explicit dependency %a not yet \
                      processed locally"
                     Causal.Mid.pp dep))
            deps;
          deps
      | None -> frontier t
    in
    let mid = Causal.Mid.make ~origin:t.id ~seq:t.next_seq in
    t.next_seq <- t.next_seq + 1;
    let msg = Causal.Causal_msg.make ~mid ~deps ~payload_size:size payload in
    let processed_rev = process_cascade_rev t msg in
    Member.Broadcast (Wire.Data msg)
    :: List.rev (Member.Confirmed mid :: processed_rev)
  end

(* -- decisions --------------------------------------------------------- *)

let purge_history t (d : Decision.t) =
  for j = 0 to t.config.Config.n - 1 do
    ignore
      (Causal.History.purge_upto t.history ~origin:(Net.Node_id.of_int j)
         ~seq:d.stable.(j))
  done

let purge_orphans t (d : Decision.t) =
  let discarded = ref [] in
  for j = 0 to t.config.Config.n - 1 do
    if
      (not d.alive.(j))
      && d.min_waiting.(j) > 0
      && d.min_waiting.(j) - d.max_processed.(j) > 1
    then begin
      let origin = Net.Node_id.of_int j in
      let mids =
        Causal.Waiting_list.discard_from t.waiting ~origin
          ~seq:(d.max_processed.(j) + 1)
      in
      discarded := List.rev_append mids !discarded
    end
  done;
  match !discarded with [] -> [] | mids -> [ Member.Discarded (List.rev mids) ]

let adopt_decision t ~evidence d =
  if not (Decision.newer d ~than:t.decision) then []
  else begin
    t.decision <- d;
    if evidence || t.config.Config.n = 1 then begin
      t.decision_seen_this_subrun <- true;
      t.silence <- 0
    end;
    Causal.Group_view.set_alive_array t.view d.Decision.alive;
    if not d.Decision.alive.(Net.Node_id.to_int t.id) then
      leave t Member.Declared_crashed
    else if t.config.Config.n > 1 && Causal.Group_view.cardinal t.view <= 1
    then leave t Member.Partitioned
    else if d.Decision.full_group then begin
      purge_history t d;
      purge_orphans t d
    end
    else []
  end

(* -- recovery ---------------------------------------------------------- *)

let recovery_requests t =
  let d = t.decision in
  let gaps = ref [] in
  for j = t.config.Config.n - 1 downto 0 do
    let origin = Net.Node_id.of_int j in
    let mine = Causal.Delivery.last_processed t.delivery origin in
    if d.Decision.max_processed.(j) > mine then begin
      let target = d.Decision.most_updated.(j) in
      if not (Net.Node_id.equal target t.id) then
        gaps :=
          Member.Send
            ( target,
              Wire.Recover_req
                {
                  requester = t.id;
                  origin;
                  from_seq = mine + 1;
                  to_seq = d.Decision.max_processed.(j);
                } )
          :: !gaps
    end
  done;
  !gaps

let track_recovery_progress t requests =
  if requests = [] then begin
    t.recovery_stalled <- 0;
    t.recovery_baseline <- Causal.Delivery.count t.delivery;
    []
  end
  else begin
    let count = Causal.Delivery.count t.delivery in
    if count > t.recovery_baseline then t.recovery_stalled <- 0
    else t.recovery_stalled <- t.recovery_stalled + 1;
    t.recovery_baseline <- count;
    if t.recovery_stalled >= t.config.Config.r then
      leave t Member.Recovery_exhausted
    else []
  end

(* -- round hooks ------------------------------------------------------- *)

let my_request t ~subrun =
  {
    Wire.sender = t.id;
    subrun;
    last_processed = Causal.Delivery.vector t.delivery;
    waiting = Causal.Waiting_list.oldest_vector t.waiting;
    prev_decision = t.decision;
  }

let begin_subrun t ~subrun =
  if not (active t) then []
  else begin
    if t.subrun >= 0 && not t.decision_seen_this_subrun then
      t.silence <- t.silence + 1;
    t.subrun <- subrun;
    t.decision_seen_this_subrun <- false;
    if t.silence >= t.config.Config.silence_limit then
      leave t Member.Decision_silence
    else begin
      let coordinator =
        Coordinator.rotation
          ~alive:(Causal.Group_view.alive_array t.view)
          ~subrun
      in
      let request = my_request t ~subrun in
      let request_actions =
        if Net.Node_id.equal coordinator t.id then begin
          t.coordinator_for <- Some subrun;
          t.pending_requests <- [ request ];
          []
        end
        else begin
          t.coordinator_for <- None;
          t.pending_requests <- [];
          [ Member.Send (coordinator, Wire.Request request) ]
        end
      in
      let recovery = recovery_requests t in
      let left = track_recovery_progress t recovery in
      if left <> [] then left
      else request_actions @ recovery @ generate_data t
    end
  end

let mid_subrun t ~subrun =
  if not (active t) then []
  else begin
    let decision_actions =
      match t.coordinator_for with
      | Some s when s = subrun ->
          let requests = t.pending_requests in
          t.pending_requests <- [];
          t.coordinator_for <- None;
          let prev = Coordinator.merge_prev t.decision requests in
          let d =
            Coordinator.compute ~config:t.config ~subrun ~coordinator:t.id
              ~prev ~requests
          in
          let evidence =
            List.exists
              (fun (r : Wire.request) ->
                not (Net.Node_id.equal r.Wire.sender t.id))
              requests
          in
          let local = adopt_decision t ~evidence d in
          if active t then Member.Broadcast (Wire.Decision_pdu d) :: local
          else local
      | Some _ | None -> []
    in
    if active t then decision_actions @ generate_data t else decision_actions
  end

(* -- PDU handler ------------------------------------------------------- *)

let handle_recover_req t { Wire.requester; origin; from_seq; to_seq } =
  let to_seq = min to_seq (from_seq + 63) in
  let messages = Causal.History.range t.history ~origin ~lo:from_seq ~hi:to_seq in
  if messages = [] then []
  else
    [ Member.Send (requester, Wire.Recover_reply { responder = t.id; messages }) ]

let handle t body =
  if not (active t) then []
  else
    match body with
    | Wire.Data msg -> receive_data t msg
    | Wire.Request r ->
        (match t.coordinator_for with
        | Some s when s = r.Wire.subrun ->
            let already =
              List.exists
                (fun (q : Wire.request) -> Net.Node_id.equal q.sender r.sender)
                t.pending_requests
            in
            if not already then t.pending_requests <- r :: t.pending_requests
        | Some _ | None -> ());
        []
    | Wire.Decision_pdu d ->
        adopt_decision t
          ~evidence:(not (Net.Node_id.equal d.Decision.coordinator t.id))
          d
    | Wire.Recover_req req -> handle_recover_req t req
    | Wire.Recover_reply { messages; _ } ->
        List.concat_map (receive_data t) messages
