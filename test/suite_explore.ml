(* The bounded schedule explorer: the generic Sim.Explore search driver,
   the Workload.Explore harness, pruning soundness against brute force,
   byte-stable committed expectations, and rediscovery of campaign-found
   failures. *)

module E = Sim.Explore
module WE = Workload.Explore

(* ---- Sim.Explore: the generic driver ---------------------------------- *)

(* A synthetic harness with a static shape: three choice points of arities
   2, 3, 2 — 12 schedules. *)
let static_harness ctx =
  let a = E.Ctx.choose ~arity:2 ~label:(fun () -> "a") ctx in
  let b = E.Ctx.choose ~arity:3 ~label:(fun () -> "b") ctx in
  let c = E.Ctx.choose ~arity:2 ~label:(fun () -> "c") ctx in
  (100 * a) + (10 * b) + c

let driver_tests =
  [
    Alcotest.test_case "enumerates the full static tree" `Quick (fun () ->
        let seen = ref [] in
        let stats =
          E.explore static_harness ~on_schedule:(fun ~schedule:_ r ->
              seen := r :: !seen)
        in
        Alcotest.(check int) "explored" 12 stats.E.explored;
        Alcotest.(check int) "pruned" 0 stats.E.pruned;
        Alcotest.(check int) "total" 12 stats.E.total;
        Alcotest.(check int) "max_depth" 3 stats.E.max_depth;
        Alcotest.(check bool) "truncated" false stats.E.truncated;
        let sorted = List.sort compare !seen in
        Alcotest.(check int) "distinct results" 12
          (List.length (List.sort_uniq compare sorted)));
    Alcotest.test_case "dynamic tree shape follows earlier choices" `Quick
      (fun () ->
        (* The second choice point exists only on branch a = 1; schedules
           are [0] and [1; 0], [1; 1]. *)
        let harness ctx =
          let a = E.Ctx.choose ~arity:2 ~label:(fun () -> "a") ctx in
          if a = 0 then 0
          else 10 + E.Ctx.choose ~arity:2 ~label:(fun () -> "b") ctx
        in
        let schedules = ref [] in
        let stats =
          E.explore harness ~on_schedule:(fun ~schedule _ ->
              schedules := schedule :: !schedules)
        in
        Alcotest.(check int) "explored" 3 stats.E.explored;
        Alcotest.(check (list (list int)))
          "schedules in depth-first order"
          [ [ 0 ]; [ 1; 0 ]; [ 1; 1 ] ]
          (List.rev !schedules));
    Alcotest.test_case "allowed prunes branches and counts them" `Quick
      (fun () ->
        let harness ctx =
          E.Ctx.choose ~arity:4
            ~allowed:(fun i -> i mod 2 = 0)
            ~label:(fun () -> "even only")
            ctx
        in
        let stats = E.explore harness ~on_schedule:(fun ~schedule:_ _ -> ()) in
        Alcotest.(check int) "explored" 2 stats.E.explored;
        Alcotest.(check int) "pruned" 2 stats.E.pruned;
        Alcotest.(check int) "total" 4 stats.E.total);
    Alcotest.test_case "prune:false ignores allowed" `Quick (fun () ->
        let harness ctx =
          E.Ctx.choose ~arity:4
            ~allowed:(fun i -> i = 0)
            ~label:(fun () -> "first only")
            ctx
        in
        let stats =
          E.explore ~prune:false harness ~on_schedule:(fun ~schedule:_ _ -> ())
        in
        Alcotest.(check int) "explored" 4 stats.E.explored;
        Alcotest.(check int) "pruned" 0 stats.E.pruned);
    Alcotest.test_case "empty allowed set still explores alternative 0" `Quick
      (fun () ->
        let harness ctx =
          E.Ctx.choose ~arity:3
            ~allowed:(fun _ -> false)
            ~label:(fun () -> "none")
            ctx
        in
        let results = ref [] in
        let stats =
          E.explore harness ~on_schedule:(fun ~schedule:_ r ->
              results := r :: !results)
        in
        Alcotest.(check int) "explored" 1 stats.E.explored;
        Alcotest.(check int) "pruned" 2 stats.E.pruned;
        Alcotest.(check (list int)) "took alternative 0" [ 0 ] !results);
    Alcotest.test_case "max_schedules truncates" `Quick (fun () ->
        let stats =
          E.explore ~max_schedules:5 static_harness
            ~on_schedule:(fun ~schedule:_ _ -> ())
        in
        Alcotest.(check int) "explored" 5 stats.E.explored;
        Alcotest.(check bool) "truncated" true stats.E.truncated);
    Alcotest.test_case "replay follows the schedule and logs labels" `Quick
      (fun () ->
        let result, steps = E.replay static_harness ~schedule:[ 1; 2; 0 ] in
        Alcotest.(check int) "result" 120 result;
        Alcotest.(check (list string))
          "labels"
          [ "a"; "b"; "c" ]
          (List.map (fun s -> s.E.label) steps);
        Alcotest.(check (list int))
          "chosen" [ 1; 2; 0 ]
          (List.map (fun s -> s.E.chosen) steps);
        Alcotest.(check (list int))
          "arities" [ 2; 3; 2 ]
          (List.map (fun s -> s.E.arity) steps));
    Alcotest.test_case "replay rejects out-of-arity choices" `Quick (fun () ->
        Alcotest.check_raises "choice 3 of arity 3"
          (Invalid_argument
             "Explore.replay: choice 3 at depth 1 is outside arity 3")
          (fun () -> ignore (E.replay static_harness ~schedule:[ 0; 3; 0 ])));
    Alcotest.test_case "replay rejects too-short schedules" `Quick (fun () ->
        Alcotest.check_raises "schedule of 2 for 3 choice points"
          (Invalid_argument
             "Explore.replay: schedule has 2 choices but the harness asked \
              for more")
          (fun () -> ignore (E.replay static_harness ~schedule:[ 0; 1 ])));
    Alcotest.test_case "nondeterministic harness is rejected" `Quick (fun () ->
        (* Arity of the first choice point changes between executions. *)
        let calls = ref 0 in
        let harness ctx =
          incr calls;
          let arity = if !calls <= 1 then 2 else 3 in
          ignore (E.Ctx.choose ~arity ~label:(fun () -> "unstable") ctx);
          ignore (E.Ctx.choose ~arity:2 ~label:(fun () -> "tail") ctx)
        in
        Alcotest.check_raises "arity drift"
          (Invalid_argument
             "Explore: nondeterministic harness (arity 2 became 3 at depth 0)")
          (fun () ->
            ignore (E.explore harness ~on_schedule:(fun ~schedule:_ _ -> ()))));
  ]

(* ---- Workload.Explore: harness basics --------------------------------- *)

let config_tests =
  [
    Alcotest.test_case "validate rejects an oversized message program" `Quick
      (fun () ->
        Alcotest.check_raises "messages > n * window"
          (Invalid_argument
             "Explore: the message program (7 messages) must fit the window \
              (at most n * window = 6)")
          (fun () -> ignore (WE.config ~n:3 ~messages:7 ~window_subruns:2 ())));
    Alcotest.test_case "validate rejects a horizon inside the window" `Quick
      (fun () ->
        Alcotest.check_raises "horizon = window"
          (Invalid_argument
             "Explore: horizon (2 subruns) must exceed the window (2)")
          (fun () ->
            ignore (WE.config ~n:3 ~window_subruns:2 ~horizon_subruns:2 ())));
    Alcotest.test_case "fault-free n=3 verifies clean with the oracle" `Quick
      (fun () ->
        let report = WE.explore (WE.config ~n:3 ()) in
        Alcotest.(check bool) "ok" true (WE.ok report);
        Alcotest.(check int) "no violating schedule" 0
          report.WE.schedules_with_violations;
        Alcotest.(check bool) "pruning active" true (report.WE.stats.E.pruned > 0);
        Alcotest.(check bool)
          "pruned < total" true
          (report.WE.stats.E.pruned < report.WE.stats.E.total);
        Alcotest.(check int)
          "oracle saw every schedule" report.WE.stats.E.explored
          report.WE.oracle_checked;
        Alcotest.(check int) "oracle agrees" 0 report.WE.oracle_disagreements);
    Alcotest.test_case "exploration is deterministic" `Quick (fun () ->
        let c = WE.config ~n:3 ~crash_choices:true ~with_oracle:false () in
        let a = WE.to_json (WE.explore c) in
        let b = WE.to_json (WE.explore c) in
        Alcotest.(check string) "byte-identical reports" a b);
    Alcotest.test_case "beyond-budget silencing yields a replayable \
                        counterexample" `Quick (fun () ->
        (* n = 3 tolerates t = 1 failures per subrun; silencing 2 must
           break atomicity/liveness, and the reported counterexample must
           reproduce exactly the violations the search recorded. *)
        let c = WE.config ~n:3 ~silenced:2 ~with_oracle:false () in
        let report = WE.explore c in
        Alcotest.(check bool) "found violations" true
          (report.WE.schedules_with_violations > 0);
        match report.WE.counterexample with
        | None -> Alcotest.fail "no counterexample reported"
        | Some cx ->
            let result, steps = WE.replay c ~schedule:cx.WE.cx_schedule in
            Alcotest.(check (list string))
              "replay reproduces the violations" cx.WE.cx_violations
              result.WE.violations;
            Alcotest.(check int)
              "decision log covers the schedule"
              (List.length cx.WE.cx_schedule)
              (List.length steps));
  ]

(* ---- pruning soundness: pruned = brute force on the violation set ------ *)

let explore_everything ~prune c =
  let report = WE.explore ~prune ~max_schedules:1_000_000 c in
  Alcotest.(check bool)
    "tiny config fully enumerated" false report.WE.stats.E.truncated;
  report

let check_sound c =
  let pruned = explore_everything ~prune:true c in
  let brute = explore_everything ~prune:false c in
  (* Identical violation behavior... *)
  Alcotest.(check (list string))
    "same distinct violation set" brute.WE.distinct_violations
    pruned.WE.distinct_violations;
  Alcotest.(check bool)
    "violations found iff brute force finds them"
    (brute.WE.schedules_with_violations > 0)
    (pruned.WE.schedules_with_violations > 0);
  (* ... from a genuinely smaller search. *)
  Alcotest.(check bool)
    "pruned run explores no more schedules" true
    (pruned.WE.stats.E.explored <= brute.WE.stats.E.explored);
  Alcotest.(check bool)
    "total is a lower bound on the raw space" true
    (pruned.WE.stats.E.total <= brute.WE.stats.E.explored)

(* Random tiny configurations: every axis of nondeterminism switched on and
   off, small enough that brute force stays in the thousands. *)
let tiny_config_gen =
  QCheck.Gen.(
    int_range 2 3 >>= fun n ->
    int_range 1 2 >>= fun k ->
    int_bound n >>= fun messages ->
    bool >>= fun crash_choices ->
    oneofl [ 0; 3 ] >>= fun omission_choices ->
    int_bound (min 1 (n - 1)) >>= fun silenced ->
    return
      (WE.config ~n ~k ~messages ~crash_choices ~omission_choices ~silenced
         ~with_oracle:false ()))

let pp_tiny c =
  Printf.sprintf "n=%d k=%d messages=%d crash=%b omission=%d silenced=%d"
    c.WE.n c.WE.k c.WE.messages c.WE.crash_choices c.WE.omission_choices
    c.WE.silenced

let soundness_property =
  QCheck.Test.make ~count:8 ~name:"pruned and brute-force agree on violations"
    (QCheck.make ~print:pp_tiny tiny_config_gen)
    (fun c ->
      check_sound c;
      true)

(* ---- committed expectations stay byte-stable --------------------------- *)

let read_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let contents = really_input_string ic len in
  close_in ic;
  contents

let expectation_tests =
  let check_expectation name c =
    Alcotest.test_case (Printf.sprintf "expectation %s" name) `Quick (fun () ->
        let report = WE.explore c in
        Alcotest.(check bool) "zero violations, not truncated" true (WE.ok report);
        Alcotest.(check bool) "pruning active" true (report.WE.stats.E.pruned > 0);
        Alcotest.(check string)
          "byte-identical to the committed report"
          (read_file (Filename.concat "expect" name))
          (WE.to_json report ^ "\n"))
  in
  [
    check_expectation "explore_n3_w2_crash.json"
      (WE.config ~n:3 ~messages:6 ~window_subruns:2 ~crash_choices:true ());
    check_expectation "explore_n4_w1.json" (WE.config ~n:4 ());
    (* Within-budget persistent silencing (t = 1 for n = 3): clean since the
       solo-view zombie fix; previously this very sweep surfaced schedules
       where the silenced node outlived its expulsion. *)
    check_expectation "explore_n3_w2_s1.json"
      (WE.config ~n:3 ~messages:6 ~window_subruns:2 ~silenced:1 ());
  ]

(* ---- campaign-found failures are rediscovered -------------------------- *)

let rediscovery_tests =
  [
    Alcotest.test_case "of_campaign_spec refuses probabilistic faults" `Quick
      (fun () ->
        let spec =
          {
            Workload.Campaign.n = 5;
            k = 2;
            rate = 0.5;
            messages = 10;
            send_omission = 0.01;
            recv_omission = 0.;
            link_loss = 0.;
            silenced_per_subrun = 0;
            crashes = [];
            max_rtd = 60.;
          }
        in
        Alcotest.(check bool)
          "unmappable" true
          (WE.of_campaign_spec spec = None));
    Alcotest.test_case "campaign reproducer is rediscovered by the explorer"
      `Slow (fun () ->
        (* A pinned over-budget campaign whose first run fails and shrinks
           to a burst-only reproducer (seed 1: n=5 k=4 silenced=3, no
           probabilistic faults — the shrinker preserves the over-budget
           class, so the burst stays beyond t = 2).  Mapping it onto the
           explorer's bounded model must rediscover a violation. *)
        let campaign =
          Workload.Campaign.run ~over_budget:true ~shrink_failures:true
            ~budget:1 ~seed:1 ()
        in
        let failing =
          List.filter
            (fun r -> not r.Workload.Campaign.outcome.Workload.Campaign.ok)
            campaign.Workload.Campaign.runs
        in
        Alcotest.(check bool) "campaign found a failure" true (failing <> []);
        let rediscovered =
          List.exists
            (fun r ->
              match r.Workload.Campaign.shrunk with
              | None -> false
              | Some s -> (
                  match
                    WE.of_campaign_spec s.Workload.Campaign.shrunk_spec
                  with
                  | None -> false
                  | Some c ->
                      let report =
                        WE.explore ~max_schedules:2_000
                          { c with WE.with_oracle = false }
                      in
                      report.WE.schedules_with_violations > 0))
            failing
        in
        Alcotest.(check bool)
          "explorer rediscovers the shrunk failure" true rediscovered);
  ]

(* ---- regression: the solo-view zombie -------------------------------- *)

let regression_tests =
  [
    Alcotest.test_case "the minimal zombie schedule now departs cleanly" `Quick
      (fun () ->
        (* Schedule [0;0;0;0] on n=3/silenced=1 is the minimal reproducer of
           the solo-view zombie: p0 is silenced every subrun, the survivors
           expel it, and before the evidence gate its own solo decisions
           kept resetting its silence counter forever.  Pin the fixed
           behaviour: p0 departs (decision silence, or partitioned if its
           view collapses first), no clause fires, and the trace oracle
           agrees. *)
        let c = WE.config ~n:3 ~silenced:1 () in
        let result, _steps = WE.replay c ~schedule:[ 0; 0; 0; 0 ] in
        Alcotest.(check (list string)) "no violations" [] result.WE.violations;
        Alcotest.(check (option bool)) "oracle agrees" (Some true)
          result.WE.oracle_agrees;
        let departed_reason =
          List.assoc_opt 0 result.WE.departures
        in
        (match departed_reason with
        | Some ("decision silence" | "partitioned (solo view)") -> ()
        | Some other ->
            Alcotest.failf "p0 departed for an unexpected reason: %s" other
        | None -> Alcotest.fail "the silenced node never departed"));
    Alcotest.test_case "window-mode silencing explores clean too" `Quick
      (fun () ->
        (* The weaker adversary (silencing stops at the window edge) is a
           strict subset of persistent silencing: it must also be clean
           within budget. *)
        let c =
          WE.config ~n:3 ~silenced:1 ~silence_mode:WE.Window
            ~with_oracle:false ()
        in
        let report = WE.explore c in
        Alcotest.(check bool) "ok" true (WE.ok report);
        Alcotest.(check int) "no violating schedule" 0
          report.WE.schedules_with_violations);
  ]

let suite =
  [
    ("explore.driver", driver_tests);
    ("explore.harness", config_tests);
    ("explore.regression", regression_tests);
    ( "explore.soundness",
      List.map QCheck_alcotest.to_alcotest [ soundness_property ] );
    ("explore.expectations", expectation_tests);
    ("explore.rediscovery", rediscovery_tests);
  ]
