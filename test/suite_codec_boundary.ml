(* The protocol running over its own wire format: every PDU is encoded to
   bytes and decoded again in flight.  A full scenario over this boundary
   must behave exactly like the direct run (the simulator is deterministic,
   so "exactly" means identical delivery logs). *)

let node n = Net.Node_id.of_int n

let run_cluster ~with_codec ~fault_spec ~seed =
  let n = 6 and k = 3 in
  let engine = Sim.Engine.create () in
  let rng = Sim.Rng.create ~seed in
  let fault = Net.Fault.create fault_spec ~rng:(Sim.Rng.split rng) in
  let net = Net.Netsim.create engine ~fault ~rng:(Sim.Rng.split rng) () in
  let medium =
    let base = Urcgc.Medium.of_netsim net in
    if with_codec then
      Urcgc.Medium.with_codec Urcgc.Wire_codec.string_payload base
    else base
  in
  let config = Urcgc.Config.make ~k ~n () in
  let cluster = Urcgc.Cluster.create_with_medium ~config ~medium () in
  let produced = ref 0 in
  Urcgc.Cluster.on_round cluster (fun ~round:_ ->
      List.iter
        (fun nd ->
          if !produced < 40 && Sim.Rng.bool rng 0.5 then begin
            incr produced;
            (* String payloads whose length always matches the declared
               payload size. *)
            let text = Printf.sprintf "message-%04d" !produced in
            Urcgc.Cluster.submit ~size:(String.length text) cluster nd text
          end)
        (Net.Node_id.group n));
  Urcgc.Cluster.start cluster;
  Sim.Engine.run engine ~until:(Sim.Ticks.of_rtd 40.0);
  List.map
    (fun { Urcgc.Cluster.node; msg; at } ->
      ( Net.Node_id.to_int node,
        Format.asprintf "%a" Causal.Mid.pp msg.Causal.Causal_msg.mid,
        msg.Causal.Causal_msg.payload,
        Sim.Ticks.to_int at ))
    (Urcgc.Cluster.deliveries cluster)

let tests =
  [
    Alcotest.test_case
      "a reliable run over the codec boundary is byte-for-byte identical"
      `Slow (fun () ->
        let direct =
          run_cluster ~with_codec:false ~fault_spec:Net.Fault.reliable ~seed:3
        in
        let boundary =
          run_cluster ~with_codec:true ~fault_spec:Net.Fault.reliable ~seed:3
        in
        Alcotest.(check int) "same delivery count" (List.length direct)
          (List.length boundary);
        Alcotest.(check bool) "identical logs" true (direct = boundary));
    Alcotest.test_case
      "a faulty run (crash + omission) over the codec boundary is identical"
      `Slow (fun () ->
        let fault_spec =
          Net.Fault.with_crashes
            [ (node 2, Sim.Ticks.of_int 401) ]
            (Net.Fault.omission_every 120)
        in
        let direct = run_cluster ~with_codec:false ~fault_spec ~seed:8 in
        let boundary = run_cluster ~with_codec:true ~fault_spec ~seed:8 in
        Alcotest.(check bool) "identical logs" true (direct = boundary);
        Alcotest.(check bool) "nontrivial run" true (List.length direct > 100));
  ]

(* -- decode-error cases: short and oversized buffers --------------------

   Every frame type must reject truncation (any strict prefix of a valid
   encoding) and trailing garbage with Error, never Ok on partial data.
   The recover-reply case is the nasty one: its payload is a list of
   self-delimiting data messages, so a buffer cut exactly at a message
   boundary used to decode Ok with silently fewer messages. *)

let mid_ o s = Causal.Mid.make ~origin:(Net.Node_id.of_int o) ~seq:s

let msg_ ?(deps = []) o s text =
  Causal.Causal_msg.make ~mid:(mid_ o s) ~deps ~payload_size:(String.length text)
    text

let sample_bodies n : (string * string Urcgc.Wire.body) list =
  [
    ("data", Urcgc.Wire.Data (msg_ ~deps:[ mid_ 0 2 ] 1 5 "payload"));
    ( "request",
      Urcgc.Wire.Request
        {
          Urcgc.Wire.sender = node 2;
          subrun = 3;
          last_processed = Array.init n (fun i -> i);
          waiting = Array.init n (fun _ -> None);
          prev_decision = Urcgc.Decision.initial ~n;
        } );
    ("decision", Urcgc.Wire.Decision_pdu (Urcgc.Decision.initial ~n));
    ( "recover_req",
      Urcgc.Wire.Recover_req
        { requester = node 0; origin = node 3; from_seq = 4; to_seq = 19 } );
    ( "recover_reply",
      Urcgc.Wire.Recover_reply
        {
          responder = node 1;
          messages = [ msg_ 3 1 "a"; msg_ ~deps:[ mid_ 3 1 ] 3 2 "bb" ];
        } );
  ]

let decode_error_tests =
  let n = 6 in
  let payload = Urcgc.Wire_codec.string_payload in
  let decodes_ok raw =
    match Urcgc.Wire_codec.decode_body payload ~n raw with
    | Ok _ -> true
    | Error _ -> false
  in
  List.concat_map
    (fun (name, body) ->
      let raw = Urcgc.Wire_codec.encode_body payload body in
      [
        Alcotest.test_case
          (Printf.sprintf "%s rejects every strict prefix" name)
          `Quick
          (fun () ->
            Alcotest.(check bool) "full buffer decodes" true (decodes_ok raw);
            for len = 0 to Bytes.length raw - 1 do
              if decodes_ok (Bytes.sub raw 0 len) then
                Alcotest.failf "prefix of %d/%d bytes decoded Ok" len
                  (Bytes.length raw)
            done);
        Alcotest.test_case
          (Printf.sprintf "%s rejects a trailing byte" name)
          `Quick
          (fun () ->
            let oversized = Bytes.extend raw 0 1 in
            Bytes.set oversized (Bytes.length raw) '\x00';
            Alcotest.(check bool) "oversized rejected" false
              (decodes_ok oversized));
      ])
    (sample_bodies n)
  @ [
      Alcotest.test_case
        "recover_reply truncated at a message boundary is an error" `Quick
        (fun () ->
          let payload = Urcgc.Wire_codec.string_payload in
          let one = msg_ 3 1 "a" in
          let two = msg_ ~deps:[ mid_ 3 1 ] 3 2 "bb" in
          let full =
            Urcgc.Wire_codec.encode_body payload
              (Urcgc.Wire.Recover_reply
                 { responder = node 1; messages = [ one; two ] })
          in
          let only_first =
            Urcgc.Wire_codec.encode_body payload
              (Urcgc.Wire.Recover_reply
                 { responder = node 1; messages = [ one ] })
          in
          (* Cut the two-message reply exactly where the one-message reply
             ends: a clean inter-message boundary, not mid-field. *)
          let cut = Bytes.sub full 0 (Bytes.length only_first) in
          match Urcgc.Wire_codec.decode_body payload ~n:6 cut with
          | Ok _ -> Alcotest.fail "boundary-truncated reply decoded Ok"
          | Error reason ->
              Alcotest.(check bool)
                (Printf.sprintf "diagnosis mentions truncation: %S" reason)
                true
                (Astring_contains.contains reason "truncated"));
      Alcotest.test_case "recover_reply round-trips through the new framing"
        `Quick (fun () ->
          let payload = Urcgc.Wire_codec.string_payload in
          let messages = [ msg_ 3 1 "a"; msg_ ~deps:[ mid_ 3 1 ] 3 2 "bb" ] in
          let body =
            Urcgc.Wire.Recover_reply { responder = node 1; messages }
          in
          let raw = Urcgc.Wire_codec.encode_body payload body in
          Alcotest.(check int)
            "encoded length still matches Wire.body_size"
            (Urcgc.Wire.body_size body)
            (Bytes.length raw);
          match Urcgc.Wire_codec.decode_body payload ~n:6 raw with
          | Ok (Urcgc.Wire.Recover_reply { responder; messages = decoded }) ->
              Alcotest.(check int) "responder" 1 (Net.Node_id.to_int responder);
              Alcotest.(check int) "count" 2 (List.length decoded)
          | Ok _ -> Alcotest.fail "decoded to a different body"
          | Error reason -> Alcotest.failf "round-trip failed: %s" reason);
    ]

(* -- dependency-frame edges: empty and the u16 count boundary ------------ *)

let dep_frame_tests =
  let payload = Urcgc.Wire_codec.string_payload in
  [
    Alcotest.test_case "empty-deps data frame round-trips" `Quick (fun () ->
        let body = Urcgc.Wire.Data (msg_ 1 1 "solo") in
        let raw = Urcgc.Wire_codec.encode_body payload body in
        Alcotest.(check int) "length matches Wire.body_size"
          (Urcgc.Wire.body_size body)
          (Bytes.length raw);
        match Urcgc.Wire_codec.decode_body payload ~n:6 raw with
        | Ok (Urcgc.Wire.Data msg) ->
            Alcotest.(check int) "no deps" 0
              (Array.length msg.Causal.Causal_msg.deps);
            Alcotest.(check string) "payload" "solo"
              msg.Causal.Causal_msg.payload
        | Ok _ -> Alcotest.fail "decoded to a different body"
        | Error reason -> Alcotest.failf "round-trip failed: %s" reason);
    Alcotest.test_case "65535 deps (u16 max) round-trips" `Slow (fun () ->
        (* Distinct origins, as the causal model requires: origin o depends
           on at most one outstanding message. *)
        let deps = Array.init 65535 (fun o -> mid_ o 1) in
        let msg =
          Causal.Causal_msg.of_sorted_deps
            ~mid:(mid_ 70000 1) ~deps ~payload_size:1 "x"
        in
        let raw = Urcgc.Wire_codec.encode_body payload (Urcgc.Wire.Data msg) in
        match Urcgc.Wire_codec.decode_body payload ~n:6 raw with
        | Ok (Urcgc.Wire.Data decoded) ->
            Alcotest.(check int) "all deps back" 65535
              (Array.length decoded.Causal.Causal_msg.deps);
            Alcotest.(check bool) "deps identical" true
              (decoded.Causal.Causal_msg.deps = deps)
        | Ok _ -> Alcotest.fail "decoded to a different body"
        | Error reason -> Alcotest.failf "round-trip failed: %s" reason);
    Alcotest.test_case "65536 deps do not fit the u16 count field" `Slow
      (fun () ->
        let deps = Array.init 65536 (fun o -> mid_ o 1) in
        let msg =
          Causal.Causal_msg.of_sorted_deps
            ~mid:(mid_ 70000 1) ~deps ~payload_size:1 "x"
        in
        match Urcgc.Wire_codec.encode_body payload (Urcgc.Wire.Data msg) with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "overflowing dep count encoded without error");
    Alcotest.test_case "an out-of-order dep frame decodes to Error" `Quick
      (fun () ->
        (* Deps sorted descending on the wire: the encoder never produces
           this, so the decoder must flag it rather than re-sort. *)
        let good =
          Urcgc.Wire_codec.encode_body payload
            (Urcgc.Wire.Data (msg_ ~deps:[ mid_ 0 1; mid_ 2 1 ] 1 5 "x"))
        in
        (* Swap the two 8-byte dep records in place (they start right after
           the 12-byte data header). *)
        let swapped = Bytes.copy good in
        Bytes.blit good 12 swapped 20 8;
        Bytes.blit good 20 swapped 12 8;
        match Urcgc.Wire_codec.decode_body payload ~n:6 swapped with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "unsorted dep frame decoded Ok");
  ]

let suite =
  [
    ("codec.boundary", tests);
    ("codec.decode_errors", decode_error_tests);
    ("codec.dep_frames", dep_frame_tests);
  ]
