(* Tests for the causal data structures: mids, messages, delivery tracker,
   history, waiting list, group view. *)

let node n = Net.Node_id.of_int n
let mid o s = Causal.Mid.make ~origin:(node o) ~seq:s

let msg ?(deps = []) o s =
  Causal.Causal_msg.make ~mid:(mid o s) ~deps ~payload_size:8 (o, s)

let mid_testable = Alcotest.testable Causal.Mid.pp Causal.Mid.equal

let mid_tests =
  [
    Alcotest.test_case "seq must be positive" `Quick (fun () ->
        Alcotest.check_raises "zero" (Invalid_argument "Mid.make: seq must be >= 1")
          (fun () -> ignore (mid 0 0)));
    Alcotest.test_case "ordering is origin-major" `Quick (fun () ->
        Alcotest.(check bool) "p0#9 < p1#1" true
          (Causal.Mid.compare (mid 0 9) (mid 1 1) < 0);
        Alcotest.(check bool) "p1#1 < p1#2" true
          (Causal.Mid.compare (mid 1 1) (mid 1 2) < 0));
    Alcotest.test_case "predecessor and successor" `Quick (fun () ->
        Alcotest.(check (option mid_testable)) "pred of #1" None
          (Causal.Mid.predecessor (mid 3 1));
        Alcotest.(check (option mid_testable)) "pred of #5" (Some (mid 3 4))
          (Causal.Mid.predecessor (mid 3 5));
        Alcotest.(check mid_testable) "succ" (mid 3 6)
          (Causal.Mid.successor (mid 3 5)));
    Alcotest.test_case "encoded size" `Quick (fun () ->
        Alcotest.(check int) "8 bytes" 8 Causal.Mid.encoded_size);
  ]

let causal_msg_tests =
  [
    Alcotest.test_case "deps are sorted and deduplicated" `Quick (fun () ->
        let m = msg ~deps:[ mid 2 1; mid 1 4; mid 2 1 ] 0 1 in
        Alcotest.(check (list mid_testable)) "sorted" [ mid 1 4; mid 2 1 ]
          (Array.to_list m.Causal.Causal_msg.deps));
    Alcotest.test_case "rejects two deps of the same origin" `Quick (fun () ->
        Alcotest.check_raises "dup origin"
          (Invalid_argument "Causal_msg.make: two dependencies share an origin")
          (fun () -> ignore (msg ~deps:[ mid 2 1; mid 2 3 ] 0 1)));
    Alcotest.test_case "rejects self or future dependency" `Quick (fun () ->
        Alcotest.check_raises "self"
          (Invalid_argument
             "Causal_msg.make: dependency on self or a later message")
          (fun () -> ignore (msg ~deps:[ mid 0 1 ] 0 1)));
    Alcotest.test_case "accepts dependency on own earlier message" `Quick
      (fun () ->
        let m = msg ~deps:[ mid 0 2 ] 0 5 in
        Alcotest.(check int) "1 dep" 1 (Array.length m.Causal.Causal_msg.deps));
    Alcotest.test_case "encoded size counts header, deps, payload" `Quick
      (fun () ->
        let m = msg ~deps:[ mid 1 1; mid 2 1 ] 0 1 in
        Alcotest.(check int) "size"
          (Causal.Causal_msg.header_size + (2 * 8) + 8)
          (Causal.Causal_msg.encoded_size m));
    Alcotest.test_case "depends_on: explicit and implicit chain" `Quick
      (fun () ->
        let m = msg ~deps:[ mid 1 3 ] 0 5 in
        Alcotest.(check bool) "explicit" true
          (Causal.Causal_msg.depends_on m (mid 1 3));
        Alcotest.(check bool) "implicit chain" true
          (Causal.Causal_msg.depends_on m (mid 0 4));
        Alcotest.(check bool) "not later" false
          (Causal.Causal_msg.depends_on m (mid 0 6));
        Alcotest.(check bool) "unrelated" false
          (Causal.Causal_msg.depends_on m (mid 2 1)));
    Alcotest.test_case "rejects negative payload size" `Quick (fun () ->
        Alcotest.check_raises "neg"
          (Invalid_argument "Causal_msg.make: negative payload size") (fun () ->
            ignore
              (Causal.Causal_msg.make ~mid:(mid 0 1) ~deps:[] ~payload_size:(-1)
                 ())));
  ]

let delivery_tests =
  [
    Alcotest.test_case "fresh tracker has processed nothing" `Quick (fun () ->
        let d = Causal.Delivery.create ~n:3 in
        Alcotest.(check int) "zero" 0 (Causal.Delivery.last_processed d (node 0));
        Alcotest.(check bool) "not processed" false
          (Causal.Delivery.processed d (mid 0 1));
        Alcotest.(check int) "count" 0 (Causal.Delivery.count d));
    Alcotest.test_case "mark advances the chain" `Quick (fun () ->
        let d = Causal.Delivery.create ~n:3 in
        Causal.Delivery.mark d (mid 1 1);
        Causal.Delivery.mark d (mid 1 2);
        Alcotest.(check int) "2" 2 (Causal.Delivery.last_processed d (node 1));
        Alcotest.(check bool) "processed" true
          (Causal.Delivery.processed d (mid 1 1)));
    Alcotest.test_case "mark refuses out-of-order" `Quick (fun () ->
        let d = Causal.Delivery.create ~n:3 in
        Alcotest.check_raises "gap"
          (Invalid_argument "Delivery.mark: out-of-order processing") (fun () ->
            Causal.Delivery.mark d (mid 1 2)));
    Alcotest.test_case "processable requires chain and deps" `Quick (fun () ->
        let d = Causal.Delivery.create ~n:3 in
        Alcotest.(check bool) "root ok" true
          (Causal.Delivery.processable d (msg 1 1));
        Alcotest.(check bool) "gap not ok" false
          (Causal.Delivery.processable d (msg 1 2));
        let dependent = msg ~deps:[ mid 2 1 ] 1 1 in
        Alcotest.(check bool) "dep missing" false
          (Causal.Delivery.processable d dependent);
        Causal.Delivery.mark d (mid 2 1);
        Alcotest.(check bool) "dep satisfied" true
          (Causal.Delivery.processable d dependent));
    Alcotest.test_case "missing reports gap and unprocessed deps" `Quick
      (fun () ->
        let d = Causal.Delivery.create ~n:3 in
        let m = msg ~deps:[ mid 2 1 ] 1 3 in
        Alcotest.(check (list mid_testable)) "both" [ mid 1 1; mid 2 1 ]
          (Causal.Delivery.missing d m);
        Causal.Delivery.mark d (mid 1 1);
        Causal.Delivery.mark d (mid 1 2);
        Causal.Delivery.mark d (mid 2 1);
        Alcotest.(check (list mid_testable)) "none" []
          (Causal.Delivery.missing d m));
    Alcotest.test_case "force_skip_to only advances" `Quick (fun () ->
        let d = Causal.Delivery.create ~n:3 in
        Causal.Delivery.force_skip_to d ~origin:(node 1) ~seq:5;
        Alcotest.(check int) "5" 5 (Causal.Delivery.last_processed d (node 1));
        Causal.Delivery.force_skip_to d ~origin:(node 1) ~seq:3;
        Alcotest.(check int) "still 5" 5
          (Causal.Delivery.last_processed d (node 1)));
    Alcotest.test_case "vector is a copy" `Quick (fun () ->
        let d = Causal.Delivery.create ~n:2 in
        let v = Causal.Delivery.vector d in
        v.(0) <- 99;
        Alcotest.(check int) "unchanged" 0
          (Causal.Delivery.last_processed d (node 0)));
  ]

let history_tests =
  [
    Alcotest.test_case "store and find" `Quick (fun () ->
        let h = Causal.History.create ~n:3 in
        Causal.History.store h (msg 1 1);
        Alcotest.(check bool) "mem" true (Causal.History.mem h (mid 1 1));
        Alcotest.(check bool) "found" true
          (Causal.History.find h (mid 1 1) <> None);
        Alcotest.(check int) "len" 1 (Causal.History.length h));
    Alcotest.test_case "store is idempotent" `Quick (fun () ->
        let h = Causal.History.create ~n:3 in
        Causal.History.store h (msg 1 1);
        Causal.History.store h (msg 1 1);
        Alcotest.(check int) "1" 1 (Causal.History.length h));
    Alcotest.test_case "range returns ordered slice, skipping gaps" `Quick
      (fun () ->
        let h = Causal.History.create ~n:3 in
        List.iter (fun s -> Causal.History.store h (msg 1 s)) [ 1; 2; 4; 5 ];
        let seqs =
          List.map
            (fun m -> Causal.Mid.seq m.Causal.Causal_msg.mid)
            (Causal.History.range h ~origin:(node 1) ~lo:2 ~hi:5)
        in
        Alcotest.(check (list int)) "2,4,5" [ 2; 4; 5 ] seqs);
    Alcotest.test_case "purge_upto removes a prefix" `Quick (fun () ->
        let h = Causal.History.create ~n:3 in
        List.iter (fun s -> Causal.History.store h (msg 1 s)) [ 1; 2; 3; 4 ];
        let removed = Causal.History.purge_upto h ~origin:(node 1) ~seq:2 in
        Alcotest.(check int) "2 removed" 2 removed;
        Alcotest.(check int) "2 left" 2 (Causal.History.length h);
        Alcotest.(check bool) "3 still there" true
          (Causal.History.mem h (mid 1 3)));
    Alcotest.test_case "per-entry length and max_seq" `Quick (fun () ->
        let h = Causal.History.create ~n:3 in
        Causal.History.store h (msg 0 1);
        Causal.History.store h (msg 1 1);
        Causal.History.store h (msg 1 7);
        Alcotest.(check int) "entry 1" 2 (Causal.History.entry_length h (node 1));
        Alcotest.(check int) "max 7" 7 (Causal.History.max_seq h ~origin:(node 1));
        Alcotest.(check int) "empty entry" 0
          (Causal.History.max_seq h ~origin:(node 2)));
    Alcotest.test_case "fold visits everything" `Quick (fun () ->
        let h = Causal.History.create ~n:3 in
        List.iter (Causal.History.store h) [ msg 0 1; msg 1 1; msg 2 1 ];
        let count = Causal.History.fold h ~init:0 ~f:(fun acc _ -> acc + 1) in
        Alcotest.(check int) "3" 3 count);
  ]

let waiting_tests =
  [
    Alcotest.test_case "oldest per origin" `Quick (fun () ->
        let w = Causal.Waiting_list.create ~n:3 in
        Causal.Waiting_list.add w (msg 1 5);
        Causal.Waiting_list.add w (msg 1 3);
        Causal.Waiting_list.add w (msg 2 7);
        Alcotest.(check (option mid_testable)) "p1 oldest" (Some (mid 1 3))
          (Causal.Waiting_list.oldest w ~origin:(node 1));
        Alcotest.(check (option mid_testable)) "p0 none" None
          (Causal.Waiting_list.oldest w ~origin:(node 0));
        let v = Causal.Waiting_list.oldest_vector w in
        Alcotest.(check (option mid_testable)) "vector p2" (Some (mid 2 7)) v.(2));
    Alcotest.test_case "oldest finds the first message of an origin" `Quick
      (fun () ->
        (* Regression: the probe used to be Mid.make ~seq:1, baking the
           numbering base into the lookup.  The seq-1 (minimum-sequence)
           message of each origin must itself be found, and an origin whose
           neighbors have waiting messages must still report None. *)
        let w = Causal.Waiting_list.create ~n:4 in
        Causal.Waiting_list.add w (msg 0 1);
        Causal.Waiting_list.add w (msg 2 1);
        Causal.Waiting_list.add w (msg 2 2);
        Alcotest.(check (option mid_testable)) "p0 first message"
          (Some (mid 0 1))
          (Causal.Waiting_list.oldest w ~origin:(node 0));
        Alcotest.(check (option mid_testable)) "p1 none between neighbors" None
          (Causal.Waiting_list.oldest w ~origin:(node 1));
        Alcotest.(check (option mid_testable)) "p2 seq 1 beats seq 2"
          (Some (mid 2 1))
          (Causal.Waiting_list.oldest w ~origin:(node 2));
        Alcotest.(check (option mid_testable)) "p3 past the last origin" None
          (Causal.Waiting_list.oldest w ~origin:(node 3)));
    Alcotest.test_case "take_processable respects dependencies" `Quick (fun () ->
        let w = Causal.Waiting_list.create ~n:3 in
        let d = Causal.Delivery.create ~n:3 in
        Causal.Waiting_list.add w (msg 1 2);
        Alcotest.(check bool) "nothing ready" true
          (Causal.Waiting_list.take_processable w d = None);
        Causal.Delivery.mark d (mid 1 1);
        (match Causal.Waiting_list.take_processable w d with
        | Some m ->
            Alcotest.(check mid_testable) "1#2" (mid 1 2) m.Causal.Causal_msg.mid
        | None -> Alcotest.fail "expected a processable message");
        Alcotest.(check bool) "removed" true (Causal.Waiting_list.is_empty w));
    Alcotest.test_case "discard_from removes transitive dependents" `Quick
      (fun () ->
        let w = Causal.Waiting_list.create ~n:4 in
        (* waiting: p1#2 (root victim), p1#3 (chain), p2#4 depends on p1#3,
           p3#9 depends on p2#4, p0#7 unrelated *)
        Causal.Waiting_list.add w (msg 1 2);
        Causal.Waiting_list.add w (msg 1 3);
        Causal.Waiting_list.add w (msg ~deps:[ mid 1 3 ] 2 4);
        Causal.Waiting_list.add w (msg ~deps:[ mid 2 4 ] 3 9);
        Causal.Waiting_list.add w (msg 0 7);
        let discarded =
          Causal.Waiting_list.discard_from w ~origin:(node 1) ~seq:2
        in
        Alcotest.(check int) "4 victims" 4 (List.length discarded);
        Alcotest.(check int) "1 survivor" 1 (Causal.Waiting_list.length w);
        Alcotest.(check bool) "unrelated kept" true
          (Causal.Waiting_list.mem w (mid 0 7)));
    Alcotest.test_case "add is idempotent, remove works" `Quick (fun () ->
        let w = Causal.Waiting_list.create ~n:2 in
        Causal.Waiting_list.add w (msg 1 1);
        Causal.Waiting_list.add w (msg 1 1);
        Alcotest.(check int) "1" 1 (Causal.Waiting_list.length w);
        Causal.Waiting_list.remove w (mid 1 1);
        Alcotest.(check bool) "empty" true (Causal.Waiting_list.is_empty w));
    Alcotest.test_case "to_list is in mid order" `Quick (fun () ->
        let w = Causal.Waiting_list.create ~n:3 in
        Causal.Waiting_list.add w (msg 2 1);
        Causal.Waiting_list.add w (msg 0 5);
        Causal.Waiting_list.add w (msg 2 2);
        let mids =
          List.map
            (fun m -> m.Causal.Causal_msg.mid)
            (Causal.Waiting_list.to_list w)
        in
        Alcotest.(check (list mid_testable)) "sorted"
          [ mid 0 5; mid 2 1; mid 2 2 ]
          mids);
  ]

let group_view_tests =
  [
    Alcotest.test_case "starts with everyone alive" `Quick (fun () ->
        let v = Causal.Group_view.create ~n:4 in
        Alcotest.(check int) "4" 4 (Causal.Group_view.cardinal v);
        Alcotest.(check bool) "alive" true (Causal.Group_view.alive v (node 3)));
    Alcotest.test_case "remove shrinks, idempotent" `Quick (fun () ->
        let v = Causal.Group_view.create ~n:4 in
        Causal.Group_view.remove v (node 1);
        Causal.Group_view.remove v (node 1);
        Alcotest.(check int) "3" 3 (Causal.Group_view.cardinal v);
        Alcotest.(check (list int)) "members" [ 0; 2; 3 ]
          (List.map Net.Node_id.to_int (Causal.Group_view.members v)));
    Alcotest.test_case "set_alive_array never resurrects" `Quick (fun () ->
        let v = Causal.Group_view.create ~n:3 in
        Causal.Group_view.remove v (node 0);
        Causal.Group_view.set_alive_array v [| true; false; true |];
        Alcotest.(check bool) "p0 still dead" false
          (Causal.Group_view.alive v (node 0));
        Alcotest.(check bool) "p1 removed" false
          (Causal.Group_view.alive v (node 1));
        Alcotest.(check bool) "p2 alive" true (Causal.Group_view.alive v (node 2)));
    Alcotest.test_case "copy is independent" `Quick (fun () ->
        let v = Causal.Group_view.create ~n:2 in
        let w = Causal.Group_view.copy v in
        Causal.Group_view.remove w (node 0);
        Alcotest.(check bool) "original intact" true
          (Causal.Group_view.alive v (node 0));
        Alcotest.(check bool) "views differ" false (Causal.Group_view.equal v w));
  ]

(* Property: discard_from leaves no waiting message that depends on a
   discarded one. *)
let waiting_discard_property =
  QCheck.Test.make ~name:"waiting_list discard closes dependencies" ~count:200
    QCheck.(small_list (pair (int_bound 3) (int_bound 8)))
    (fun raw ->
      let w = Causal.Waiting_list.create ~n:4 in
      (* Build messages with deterministic deps on earlier listed ones. *)
      let seen = Hashtbl.create 16 in
      List.iter
        (fun (o, s) ->
          let s = s + 1 in
          if not (Hashtbl.mem seen (o, s)) then begin
            Hashtbl.replace seen (o, s) ();
            let deps =
              Hashtbl.fold
                (fun (o', s') () acc ->
                  if o' <> o && (o' + s') mod 3 = 0 then
                    Causal.Mid.make ~origin:(node o') ~seq:s' :: acc
                  else acc)
                seen []
              (* keep at most one dep per origin *)
              |> List.sort_uniq Causal.Mid.compare
              |> List.fold_left
                   (fun (used, acc) m ->
                     let o' = Net.Node_id.to_int (Causal.Mid.origin m) in
                     if List.mem o' used then (used, acc)
                     else (o' :: used, m :: acc))
                   ([], [])
              |> snd
            in
            Causal.Waiting_list.add w
              (Causal.Causal_msg.make
                 ~mid:(Causal.Mid.make ~origin:(node o) ~seq:s)
                 ~deps ~payload_size:0 ())
          end)
        raw;
      let discarded = Causal.Waiting_list.discard_from w ~origin:(node 0) ~seq:1 in
      let discarded_set =
        List.fold_left
          (fun acc m -> Causal.Mid.Set.add m acc)
          Causal.Mid.Set.empty discarded
      in
      List.for_all
        (fun m ->
          not
            (Causal.Mid.Set.exists
               (fun victim -> Causal.Causal_msg.depends_on m victim)
               discarded_set))
        (Causal.Waiting_list.to_list w))

let suite =
  [
    ("causal.mid", mid_tests);
    ("causal.msg", causal_msg_tests);
    ("causal.delivery", delivery_tests);
    ("causal.history", history_tests);
    ( "causal.waiting",
      waiting_tests @ [ QCheck_alcotest.to_alcotest waiting_discard_property ] );
    ("causal.group_view", group_view_tests);
  ]
