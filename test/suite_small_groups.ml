(* Degenerate group sizes and flow-control hysteresis: the corners where
   vector-indexed protocols usually break. *)

let node n = Net.Node_id.of_int n

let run ?(n = 2) ?(k = 2) ?(rate = 0.6) ?(messages = 20) ?flow_threshold
    ?(fault = Net.Fault.reliable) ?(seed = 42) () =
  let config = Urcgc.Config.make ~k ?flow_threshold ~n () in
  let load = Workload.Load.make ~rate ~total_messages:messages () in
  let scenario =
    Workload.Scenario.make ~name:"small" ~fault ~seed ~max_rtd:120.0 ~config
      ~load ()
  in
  Workload.Runner.run scenario

let small_group_tests =
  [
    Alcotest.test_case "a singleton group talks to itself" `Quick (fun () ->
        let report = run ~n:1 ~k:1 ~messages:10 () in
        Alcotest.(check bool) "invariants" true
          (Workload.Checker.ok report.Workload.Runner.verdict);
        Alcotest.(check int) "generated all" 10 report.Workload.Runner.generated;
        (* Nothing is remote in a singleton group. *)
        Alcotest.(check int) "no remote deliveries" 0
          report.Workload.Runner.delivered_remote);
    Alcotest.test_case "a pair group works" `Quick (fun () ->
        let report = run ~n:2 () in
        Alcotest.(check bool) "invariants" true
          (Workload.Checker.ok report.Workload.Runner.verdict);
        Alcotest.(check int) "all cross-delivered" 20
          report.Workload.Runner.delivered_remote);
    Alcotest.test_case "a pair group fails safe after one crash" `Quick
      (fun () ->
        (* n = 2 tolerates t = (n-1)/2 = 0 crashes, so one crash is beyond
           budget and the survivor must NOT soldier on alone: after K
           unanswered attempts it expels the crashed peer, finds itself in
           a solo view, and departs [Partitioned] instead of
           self-coordinating forever (its own decisions are not evidence of
           another live process).  The departure is flagged as the liveness
           cost of the beyond-budget crash — but every safety clause holds,
           and nothing is processed after it leaves. *)
        let fault =
          Net.Fault.with_crashes
            [ (node 1, Sim.Ticks.of_int 150) ]
            Net.Fault.reliable
        in
        let report = run ~n:2 ~fault () in
        let v = report.Workload.Runner.verdict in
        Alcotest.(check bool) "safety holds" true
          (v.Workload.Checker.causal_ok && v.Workload.Checker.atomicity_ok
         && v.Workload.Checker.zombie_ok && v.Workload.Checker.views_ok);
        Alcotest.(check bool) "partition loss is flagged" false
          v.Workload.Checker.partition_ok;
        Alcotest.(check bool) "kept generating before departing" true
          (report.Workload.Runner.generated > 0);
        match report.Workload.Runner.departures with
        | [ d ] ->
            Alcotest.(check bool) "the survivor departed" true
              (Net.Node_id.equal d.Urcgc.Cluster.who (node 0));
            Alcotest.(check string) "with a solo view" "partitioned (solo view)"
              (Urcgc.Member.reason_to_string d.Urcgc.Cluster.why)
        | ds ->
            Alcotest.failf "expected exactly the survivor's departure, got %d"
              (List.length ds));
    Alcotest.test_case "n = 3 with omissions" `Quick (fun () ->
        let report =
          run ~n:3 ~fault:(Net.Fault.omission_every 60) ~messages:40 ()
        in
        Alcotest.(check bool) "invariants" true
          (Workload.Checker.ok report.Workload.Runner.verdict));
  ]

let flow_tests =
  [
    Alcotest.test_case "flow control resumes after the history is purged"
      `Quick (fun () ->
        (* Threshold 4 with a fast group: generation must block and unblock
           repeatedly, and still everything flows through. *)
        let report =
          run ~n:3 ~k:2 ~rate:1.0 ~messages:30 ~flow_threshold:(Some 4) ()
        in
        Alcotest.(check bool) "invariants" true
          (Workload.Checker.ok report.Workload.Runner.verdict);
        Alcotest.(check int) "everything eventually generated" 30
          report.Workload.Runner.generated;
        Alcotest.(check int) "everything delivered" 60
          report.Workload.Runner.delivered_remote;
        Alcotest.(check bool) "the bound held (with one subrun of slack)" true
          (report.Workload.Runner.history_peak <= 4 + 6));
    Alcotest.test_case "member flow flag toggles off below the threshold"
      `Quick (fun () ->
        let config = Urcgc.Config.make ~n:3 ~k:2 ~flow_threshold:(Some 2) () in
        let m : string Urcgc.Member.t =
          Urcgc.Member.create config (node 1)
        in
        let mid o s = Causal.Mid.make ~origin:(node o) ~seq:s in
        List.iter
          (fun s ->
            ignore
              (Urcgc.Member.handle m
                 (Urcgc.Wire.Data
                    (Causal.Causal_msg.make ~mid:(mid 0 s) ~deps:[]
                       ~payload_size:1 "x"))))
          [ 1; 2 ];
        Urcgc.Member.submit m "blocked";
        ignore (Urcgc.Member.begin_subrun m ~subrun:0);
        Alcotest.(check bool) "blocked at threshold" true
          (Urcgc.Member.flow_blocked m);
        (* A full-group decision purges the history; the next round must
           unblock and send. *)
        let d0 = Urcgc.Decision.initial ~n:3 in
        let d =
          {
            d0 with
            Urcgc.Decision.subrun = 0;
            full_group = true;
            stable = [| 2; 0; 0 |];
          }
        in
        ignore (Urcgc.Member.handle m (Urcgc.Wire.Decision_pdu d));
        let actions = Urcgc.Member.mid_subrun m ~subrun:0 in
        Alcotest.(check bool) "unblocked and sent" true
          (List.exists
             (function
               | Urcgc.Member.Broadcast (Urcgc.Wire.Data _) -> true
               | _ -> false)
             actions);
        Alcotest.(check bool) "flag cleared" false (Urcgc.Member.flow_blocked m));
  ]

let suite =
  [ ("urcgc.small_groups", small_group_tests); ("urcgc.flow", flow_tests) ]
