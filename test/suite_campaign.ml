(* The randomized fault-campaign harness: determinism, within-budget
   cleanliness, over-budget failure search, shrinking, and the Net.Fault
   spec edge cases the campaign generator leans on. *)

let fault_edge_tests =
  [
    Alcotest.test_case "omission_every rejects k = 0" `Quick (fun () ->
        Alcotest.check_raises "k = 0"
          (Invalid_argument "Fault.omission_every: k must be positive")
          (fun () -> ignore (Net.Fault.omission_every 0)));
    Alcotest.test_case "omission_every rejects negative k" `Quick (fun () ->
        Alcotest.check_raises "k = -5"
          (Invalid_argument "Fault.omission_every: k must be positive")
          (fun () -> ignore (Net.Fault.omission_every (-5))));
    Alcotest.test_case "with_subrun_silence rejects count = population" `Quick
      (fun () ->
        Alcotest.check_raises "count = population"
          (Invalid_argument
             "Fault.with_subrun_silence: count must be in [0, population)")
          (fun () ->
            ignore
              (Net.Fault.with_subrun_silence ~count:7 ~population:7
                 Net.Fault.reliable)));
    Alcotest.test_case "with_subrun_silence rejects count > population" `Quick
      (fun () ->
        Alcotest.check_raises "count > population"
          (Invalid_argument
             "Fault.with_subrun_silence: count must be in [0, population)")
          (fun () ->
            ignore
              (Net.Fault.with_subrun_silence ~count:9 ~population:7
                 Net.Fault.reliable)));
    Alcotest.test_case "with_subrun_silence rejects negative count" `Quick
      (fun () ->
        Alcotest.check_raises "count = -1"
          (Invalid_argument
             "Fault.with_subrun_silence: count must be in [0, population)")
          (fun () ->
            ignore
              (Net.Fault.with_subrun_silence ~count:(-1) ~population:7
                 Net.Fault.reliable)));
    Alcotest.test_case "with_subrun_silence accepts count = population - 1"
      `Quick (fun () ->
        let spec =
          Net.Fault.with_subrun_silence ~count:6 ~population:7
            Net.Fault.reliable
        in
        Alcotest.(check int) "count" 6 spec.Net.Fault.silenced_per_subrun;
        Alcotest.(check int) "population" 7 spec.Net.Fault.population);
    Alcotest.test_case "json_of_spec is canonical" `Quick (fun () ->
        let spec =
          Net.Fault.with_crashes
            [ (Net.Node_id.of_int 3, Sim.Ticks.of_int 501) ]
            (Net.Fault.with_subrun_silence ~count:2 ~population:9
               (Net.Fault.omission_every 500))
        in
        Alcotest.(check string)
          "fixed serialization"
          "{\"crashes\":[[3,501]],\"send_omission\":0.001,\"recv_omission\":0.001,\"link_loss\":0,\"silenced_per_subrun\":2,\"population\":9}"
          (Net.Fault.json_of_spec spec))
  ]

let derive_tests =
  [
    Alcotest.test_case "Rng.derive is deterministic and non-negative" `Quick
      (fun () ->
        List.iter
          (fun index ->
            let a = Sim.Rng.derive ~seed:1 index in
            let b = Sim.Rng.derive ~seed:1 index in
            Alcotest.(check int) "stable" a b;
            Alcotest.(check bool) "non-negative" true (a >= 0))
          [ 0; 1; 2; 17; 1000 ]);
    Alcotest.test_case "Rng.derive separates runs and seeds" `Quick (fun () ->
        let seeds =
          List.concat_map
            (fun seed -> List.init 50 (fun i -> Sim.Rng.derive ~seed i))
            [ 1; 2; 3 ]
        in
        Alcotest.(check int)
          "all distinct"
          (List.length seeds)
          (List.length (List.sort_uniq compare seeds)));
  ]

let campaign_tests =
  [
    Alcotest.test_case "same seed produces byte-identical JSON reports" `Quick
      (fun () ->
        let report () =
          Workload.Campaign.to_json
            (Workload.Campaign.run ~budget:6 ~seed:1 ())
        in
        Alcotest.(check string) "byte-identical" (report ()) (report ()));
    Alcotest.test_case "different seeds draw different sweeps" `Quick
      (fun () ->
        let json seed =
          Workload.Campaign.to_json (Workload.Campaign.run ~budget:4 ~seed ())
        in
        Alcotest.(check bool) "differ" false (json 1 = json 2));
    Alcotest.test_case "within-budget campaign is all-OK" `Slow (fun () ->
        let campaign = Workload.Campaign.run ~budget:25 ~seed:1 () in
        Alcotest.(check int) "no failures" 0 campaign.Workload.Campaign.failed;
        List.iter
          (fun r ->
            Alcotest.(check bool)
              "spec within budget" true
              (Workload.Campaign.within_budget r.Workload.Campaign.spec))
          campaign.Workload.Campaign.runs);
    Alcotest.test_case
      "forcing silenced_per_subrun > t finds a failure and shrinks it" `Slow
      (fun () ->
        let campaign =
          Workload.Campaign.run ~over_budget:true ~budget:2 ~seed:42 ()
        in
        List.iter
          (fun r ->
            Alcotest.(check bool)
              "burst beyond the bound" true
              (r.Workload.Campaign.spec.Workload.Campaign.silenced_per_subrun
              > Workload.Campaign.resilience r.Workload.Campaign.spec))
          campaign.Workload.Campaign.runs;
        Alcotest.(check bool)
          "found a failing verdict" true
          (campaign.Workload.Campaign.failed > 0);
        let failing =
          List.find
            (fun r -> not r.Workload.Campaign.outcome.Workload.Campaign.ok)
            campaign.Workload.Campaign.runs
        in
        match failing.Workload.Campaign.shrunk with
        | None -> Alcotest.fail "failing run was not shrunk"
        | Some s ->
            Alcotest.(check bool)
              "reproducer is no larger" true
              (s.Workload.Campaign.shrunk_spec.Workload.Campaign.messages
              <= failing.Workload.Campaign.spec.Workload.Campaign.messages);
            (* The minimal reproducer must replay to a failure under the
               recorded run seed — the repro command's contract. *)
            let outcome, _report =
              Workload.Campaign.execute ~seed:failing.Workload.Campaign.seed
                s.Workload.Campaign.shrunk_spec
            in
            Alcotest.(check bool)
              "shrunk spec still fails" false
              outcome.Workload.Campaign.ok;
            Alcotest.(check bool)
              "shrunk verdict is recorded" false
              (s.Workload.Campaign.shrunk_violations = []));
    Alcotest.test_case "campaign with metrics embeds the per-run registry"
      `Quick (fun () ->
        let plain =
          Workload.Campaign.to_json (Workload.Campaign.run ~budget:2 ~seed:3 ())
        in
        let with_metrics =
          Workload.Campaign.to_json
            (Workload.Campaign.run ~with_metrics:true ~budget:2 ~seed:3 ())
        in
        Alcotest.(check bool)
          "plain report has no metrics key" false
          (Astring_contains.contains plain "\"metrics\"");
        (* Schema: every run object carries a metrics object with the three
           sections and the headline series the issue names. *)
        List.iter
          (fun fragment ->
            Alcotest.(check bool)
              (Printf.sprintf "report contains %S" fragment)
              true
              (Astring_contains.contains with_metrics fragment))
          [
            "\"metrics\":{\"counters\":{";
            "\"gauges\":{";
            "\"histograms\":{";
            "\"net.retransmissions\":";
            "\"waiting.depth\":{\"last\":";
            "\"history.occupancy\":{\"last\":";
            "\"delivery.latency_rtd\":{\"count\":";
          ];
        (* Metrics must not perturb the sweep itself: stripping is not
           practical textually, but the campaign verdict counts must agree. *)
        let a = Workload.Campaign.run ~budget:2 ~seed:3 () in
        let b = Workload.Campaign.run ~with_metrics:true ~budget:2 ~seed:3 () in
        Alcotest.(check int)
          "same failure count" a.Workload.Campaign.failed
          b.Workload.Campaign.failed;
        Alcotest.(check bool)
          "with-metrics report is deterministic" true
          (with_metrics
          = Workload.Campaign.to_json
              (Workload.Campaign.run ~with_metrics:true ~budget:2 ~seed:3 ())));
    Alcotest.test_case
      "metrics+analysis campaign at -j 4 is byte-identical to -j 1" `Slow
      (fun () ->
        (* The per-run Sim.Metrics registry and Sim.Trace sink are created
           inside the parallel region; this pins that no shared mutable
           state leaks between workers on either Pool backend. *)
        let json jobs =
          Workload.Campaign.to_json
            (Workload.Campaign.run ~with_metrics:true ~with_analysis:true
               ~jobs ~budget:4 ~seed:3 ())
        in
        let sequential = json 1 in
        Alcotest.(check string) "-j 2" sequential (json 2);
        Alcotest.(check string) "-j 4" sequential (json 4);
        Alcotest.(check string) "-j 0 (detected cores)" sequential (json 0));
    Alcotest.test_case "over-budget shrinking at -j 3 matches -j 1" `Slow
      (fun () ->
        (* Speculative parallel candidate evaluation must reach the exact
           spec, violations, and step count of the sequential shrinker. *)
        let campaign jobs =
          Workload.Campaign.to_json
            (Workload.Campaign.run ~over_budget:true ~jobs ~budget:2 ~seed:42
               ())
        in
        Alcotest.(check string) "same reports" (campaign 1) (campaign 3);
        let failing =
          List.find
            (fun r -> not r.Workload.Campaign.outcome.Workload.Campaign.ok)
            (Workload.Campaign.run ~over_budget:true ~shrink_failures:false
               ~budget:2 ~seed:42 ())
              .Workload.Campaign.runs
        in
        let shrunk jobs =
          Workload.Campaign.shrink ~jobs ~seed:failing.Workload.Campaign.seed
            failing.Workload.Campaign.spec failing.Workload.Campaign.outcome
        in
        let a = shrunk 1 and b = shrunk 4 in
        Alcotest.(check bool)
          "same shrunk spec" true
          (a.Workload.Campaign.shrunk_spec = b.Workload.Campaign.shrunk_spec);
        Alcotest.(check int)
          "same recorded steps" a.Workload.Campaign.shrink_steps
          b.Workload.Campaign.shrink_steps;
        Alcotest.(check (list string))
          "same violations" a.Workload.Campaign.shrunk_violations
          b.Workload.Campaign.shrunk_violations);
    Alcotest.test_case "validate_spec rejects malformed CLI input" `Quick
      (fun () ->
        let base =
          {
            Workload.Campaign.n = 5;
            k = 3;
            rate = 0.5;
            messages = 10;
            send_omission = 0.0;
            recv_omission = 0.0;
            link_loss = 0.0;
            silenced_per_subrun = 0;
            crashes = [];
            max_rtd = 60.0;
          }
        in
        Workload.Campaign.validate_spec base;
        let rejects label spec =
          match Workload.Campaign.validate_spec spec with
          | () -> Alcotest.failf "%s: accepted" label
          | exception Invalid_argument _ -> ()
        in
        rejects "n = 0" { base with n = 0 };
        rejects "k = 0" { base with k = 0 };
        rejects "rate > 1" { base with rate = 7.0 };
        rejects "rate < 0" { base with rate = -0.1 };
        rejects "negative cap" { base with messages = -1 };
        rejects "send-omission > 1" { base with send_omission = 1.5 };
        rejects "recv-omission < 0" { base with recv_omission = -0.2 };
        rejects "link-loss > 1" { base with link_loss = 2.0 };
        rejects "negative silenced" { base with silenced_per_subrun = -2 };
        rejects "silenced = n" { base with silenced_per_subrun = 5 };
        rejects "crash node out of group" { base with crashes = [ (9, 1) ] };
        rejects "crash at negative subrun" { base with crashes = [ (1, -1) ] };
        rejects "zero time cap" { base with max_rtd = 0.0 });
    Alcotest.test_case "repro command round-trips the spec shape" `Quick
      (fun () ->
        let spec =
          {
            Workload.Campaign.n = 7;
            k = 3;
            rate = 0.4;
            messages = 30;
            send_omission = 0.001;
            recv_omission = 0.0;
            link_loss = 0.002;
            silenced_per_subrun = 2;
            crashes = [ (3, 5) ];
            max_rtd = 120.0;
          }
        in
        let cmd = Workload.Campaign.repro_command ~seed:99 spec in
        List.iter
          (fun fragment ->
            Alcotest.(check bool)
              (Printf.sprintf "contains %S" fragment)
              true
              (Astring_contains.contains cmd fragment))
          [
            "urcgc_sim replay";
            "-n 7";
            "-K 3";
            "--messages 30";
            "--silenced 2";
            "--crash 3@5";
            "--send-omission 0.001";
            "--link-loss 0.002";
            "--seed 99";
          ]);
  ]

let suite =
  [
    ("campaign:fault-edges", fault_edge_tests);
    ("campaign:derive", derive_tests);
    ("campaign", campaign_tests);
  ]
