let () =
  Alcotest.run "urcgc-repro"
    (Suite_sim.suite @ Suite_net.suite @ Suite_causal.suite @ Suite_urcgc.suite @ Suite_urcgc2.suite @ Suite_urgc.suite
    @ Suite_cbcast.suite @ Suite_baselines2.suite @ Suite_psync.suite @ Suite_stats.suite
    @ Suite_pool.suite @ Suite_workload.suite @ Suite_props.suite @ Suite_codec.suite @ Suite_cb_codec.suite @ Suite_ps_codec.suite @ Suite_tw_codec.suite @ Suite_codec_boundary.suite @ Suite_small_groups.suite @ Suite_fragmentation.suite @ Suite_determinism.suite @ Suite_stress.suite @ Suite_groups.suite @ Suite_edge.suite @ Suite_resilience.suite @ Suite_campaign.suite @ Suite_trace.suite @ Suite_analysis.suite @ Suite_cli.suite @ Suite_fuzz.suite @ Suite_hotpath.suite @ Suite_explore.suite @ Suite_prof.suite)
