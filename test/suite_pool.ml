(* Sim.Pool: the work scheduler behind parallel campaigns.  The contract is
   backend-independent — identical results at any job count, exceptions
   propagate, edge cases behave — so the same assertions pin the domains
   backend on OCaml 5 and the sequential fallback on 4.14. *)

let f_reference i = (i * i) + (3 * i) + 1

let map_tests =
  [
    Alcotest.test_case "map matches the sequential result at any job count"
      `Quick (fun () ->
        let tasks = 37 in
        let expected = Array.init tasks f_reference in
        List.iter
          (fun jobs ->
            Alcotest.(check (array int))
              (Printf.sprintf "jobs=%d" jobs)
              expected
              (Sim.Pool.map ~jobs f_reference tasks))
          [ 0; 1; 2; 3; 8 ]);
    Alcotest.test_case "backends agree on a larger index space" `Quick
      (fun () ->
        (* Each task derives a value through the deterministic RNG, the same
           shape of work a campaign run does. *)
        let work i =
          let rng = Sim.Rng.create ~seed:(Sim.Rng.derive ~seed:11 i) in
          Sim.Rng.int rng 1_000_000
        in
        Alcotest.(check (array int))
          "jobs=4 = jobs=1"
          (Sim.Pool.map ~jobs:1 work 200)
          (Sim.Pool.map ~jobs:4 work 200));
    Alcotest.test_case "tasks = 0 yields an empty array, f never called"
      `Quick (fun () ->
        let calls = ref 0 in
        let f i =
          incr calls;
          i
        in
        List.iter
          (fun jobs ->
            Alcotest.(check (array int))
              (Printf.sprintf "jobs=%d" jobs)
              [||]
              (Sim.Pool.map ~jobs f 0))
          [ 0; 1; 4 ];
        Alcotest.(check int) "no calls" 0 !calls);
    Alcotest.test_case "jobs greater than tasks is clamped" `Quick (fun () ->
        Alcotest.(check (array int))
          "3 tasks, 16 jobs" [| 0; 10; 20 |]
          (Sim.Pool.map ~jobs:16 (fun i -> 10 * i) 3));
    Alcotest.test_case "single task runs on the caller" `Quick (fun () ->
        Alcotest.(check (array int))
          "1 task" [| 42 |]
          (Sim.Pool.map ~jobs:8 (fun _ -> 42) 1));
    Alcotest.test_case "jobs = 1 evaluates in index order" `Quick (fun () ->
        let order = ref [] in
        ignore
          (Sim.Pool.map ~jobs:1
             (fun i ->
               order := i :: !order;
               i)
             5);
        Alcotest.(check (list int)) "in order" [ 0; 1; 2; 3; 4 ]
          (List.rev !order));
    Alcotest.test_case "every index is evaluated exactly once" `Quick
      (fun () ->
        let tasks = 64 in
        let counts = Array.make tasks 0 in
        (* Concurrent increments would race on the domains backend, so count
           via the returned array instead: each slot carries its index. *)
        let result = Sim.Pool.map ~jobs:4 (fun i -> i) tasks in
        Array.iter (fun i -> counts.(i) <- counts.(i) + 1) result;
        Array.iteri
          (fun i c ->
            if c <> 1 then
              Alcotest.failf "index %d evaluated %d times in the merge" i c)
          counts);
  ]

let error_tests =
  [
    Alcotest.test_case "exception in a worker propagates" `Quick (fun () ->
        List.iter
          (fun jobs ->
            Alcotest.check_raises
              (Printf.sprintf "jobs=%d" jobs)
              (Failure "boom")
              (fun () ->
                ignore
                  (Sim.Pool.map ~jobs
                     (fun i -> if i = 5 then failwith "boom" else i)
                     8)))
          [ 1; 2; 8 ]);
    Alcotest.test_case "all-failing tasks still raise" `Quick (fun () ->
        Alcotest.check_raises "jobs=4" (Failure "boom") (fun () ->
            ignore (Sim.Pool.map ~jobs:4 (fun _ -> failwith "boom") 16)));
    Alcotest.test_case "negative tasks and jobs are rejected" `Quick (fun () ->
        Alcotest.check_raises "tasks = -1"
          (Invalid_argument "Pool.map: negative task count") (fun () ->
            ignore (Sim.Pool.map ~jobs:1 (fun i -> i) (-1)));
        Alcotest.check_raises "jobs = -2"
          (Invalid_argument "Pool.map: negative job count") (fun () ->
            ignore (Sim.Pool.map ~jobs:(-2) (fun i -> i) 4)));
    Alcotest.test_case "default_jobs is positive" `Quick (fun () ->
        Alcotest.(check bool) "positive" true (Sim.Pool.default_jobs () >= 1);
        (* The sequential backend always reports one worker. *)
        if not Sim.Pool.available then
          Alcotest.(check int) "sequential = 1" 1 (Sim.Pool.default_jobs ()));
  ]

let suite = [ ("sim.pool", map_tests @ error_tests) ]
