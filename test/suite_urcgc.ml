(* Tests for the urcgc protocol: configuration, the pure coordinator, the
   member state machine, and end-to-end cluster scenarios with failure
   injection. *)

let node n = Net.Node_id.of_int n
let mid o s = Causal.Mid.make ~origin:(node o) ~seq:s

let config_tests =
  [
    Alcotest.test_case "defaults" `Quick (fun () ->
        let c = Urcgc.Config.make ~n:15 () in
        Alcotest.(check int) "k" 3 c.Urcgc.Config.k;
        Alcotest.(check int) "r > 2k" 10 c.Urcgc.Config.r;
        Alcotest.(check int) "silence 2k" 6 c.Urcgc.Config.silence_limit);
    Alcotest.test_case "resilience is (n-1)/2" `Quick (fun () ->
        Alcotest.(check int) "15 -> 7" 7
          (Urcgc.Config.resilience (Urcgc.Config.make ~n:15 ()));
        Alcotest.(check int) "4 -> 1" 1
          (Urcgc.Config.resilience (Urcgc.Config.make ~n:4 ())));
    Alcotest.test_case "validation" `Quick (fun () ->
        Alcotest.check_raises "n" (Invalid_argument "Config.make: n must be positive")
          (fun () -> ignore (Urcgc.Config.make ~n:0 ()));
        Alcotest.check_raises "r <= k"
          (Invalid_argument "Config.make: r must exceed k") (fun () ->
            ignore (Urcgc.Config.make ~n:3 ~k:5 ~r:4 ()));
        Alcotest.check_raises "flow"
          (Invalid_argument "Config.make: flow threshold must be positive")
          (fun () ->
            ignore (Urcgc.Config.make ~n:3 ~flow_threshold:(Some 0) ())));
  ]

let decision_tests =
  [
    Alcotest.test_case "initial decision" `Quick (fun () ->
        let d = Decisions.initial 4 in
        Alcotest.(check int) "subrun -1" (-1) d.Urcgc.Decision.subrun;
        Alcotest.(check bool) "nobody heard" false
          (Array.exists Fun.id d.Urcgc.Decision.heard);
        Alcotest.(check int) "4 alive" 4
          (List.length (Urcgc.Decision.alive_members d)));
    Alcotest.test_case "newer compares subruns" `Quick (fun () ->
        let d0 = Decisions.initial 4 in
        let d1 = { d0 with Urcgc.Decision.subrun = 3 } in
        Alcotest.(check bool) "newer" true (Urcgc.Decision.newer d1 ~than:d0);
        Alcotest.(check bool) "not newer" false (Urcgc.Decision.newer d0 ~than:d1));
    Alcotest.test_case "encoded size grows linearly in n" `Quick (fun () ->
        let s15 = Urcgc.Decision.encoded_size (Decisions.initial 15) in
        let s30 = Urcgc.Decision.encoded_size (Decisions.initial 30) in
        Alcotest.(check bool) "monotone" true (s30 > s15);
        (* the paper's point: a decision for n=15 fits an IP datagram *)
        Alcotest.(check bool) "fits 576B for n=15" true
          (s15 <= Stats.Analytic.ip_min_datagram));
  ]

(* -- pure coordinator --------------------------------------------------- *)

let request ~sender ~subrun ?(last = [||]) ?(waiting = [])
    ?(prev = Decisions.initial 4) n =
  let last_processed =
    if Array.length last = n then Array.copy last else Array.make n 0
  in
  let waiting_arr = Array.make n None in
  List.iter
    (fun (o, s) -> waiting_arr.(o) <- Some (mid o s))
    waiting;
  {
    Urcgc.Wire.sender = node sender;
    subrun;
    last_processed;
    waiting = waiting_arr;
    prev_decision = prev;
  }

let coordinator_tests =
  let config = Urcgc.Config.make ~n:4 ~k:2 () in
  [
    Alcotest.test_case "rotation cycles over alive processes" `Quick (fun () ->
        let alive = [| true; true; true; true |] in
        Alcotest.(check int) "s0" 0
          (Net.Node_id.to_int (Urcgc.Coordinator.rotation ~alive ~subrun:0));
        Alcotest.(check int) "s5" 1
          (Net.Node_id.to_int (Urcgc.Coordinator.rotation ~alive ~subrun:5));
        let alive = [| true; false; true; true |] in
        Alcotest.(check int) "skips dead" 2
          (Net.Node_id.to_int (Urcgc.Coordinator.rotation ~alive ~subrun:1)));
    Alcotest.test_case "rotation requires a live process" `Quick (fun () ->
        Alcotest.check_raises "empty"
          (Invalid_argument "Coordinator.rotation: no process alive") (fun () ->
            ignore
              (Urcgc.Coordinator.rotation ~alive:[| false; false |] ~subrun:0)));
    Alcotest.test_case "full group decision advances stability" `Quick (fun () ->
        let last = [| 5; 5; 5; 5 |] in
        let requests =
          List.init 4 (fun i -> request ~sender:i ~subrun:0 ~last 4)
        in
        let d =
          Urcgc.Coordinator.compute ~config ~subrun:0 ~coordinator:(node 0)
            ~prev:(Decisions.initial 4) ~requests
        in
        Alcotest.(check bool) "full" true d.Urcgc.Decision.full_group;
        Alcotest.(check (array int)) "stable" [| 5; 5; 5; 5 |]
          d.Urcgc.Decision.stable);
    Alcotest.test_case "stable is the minimum across processes" `Quick
      (fun () ->
        let requests =
          [
            request ~sender:0 ~subrun:0 ~last:[| 5; 2; 0; 1 |] 4;
            request ~sender:1 ~subrun:0 ~last:[| 3; 4; 0; 2 |] 4;
            request ~sender:2 ~subrun:0 ~last:[| 4; 3; 0; 9 |] 4;
            request ~sender:3 ~subrun:0 ~last:[| 9; 9; 0; 9 |] 4;
          ]
        in
        let d =
          Urcgc.Coordinator.compute ~config ~subrun:0 ~coordinator:(node 0)
            ~prev:(Decisions.initial 4) ~requests
        in
        Alcotest.(check (array int)) "min" [| 3; 2; 0; 1 |] d.Urcgc.Decision.stable);
    Alcotest.test_case "partial coverage defers stability to a later subrun"
      `Quick (fun () ->
        let prev = Decisions.initial 4 in
        (* Subrun 0: only p0, p1 heard. *)
        let d0 =
          Urcgc.Coordinator.compute ~config ~subrun:0 ~coordinator:(node 0)
            ~prev
            ~requests:
              [
                request ~sender:0 ~subrun:0 ~last:[| 4; 4; 4; 4 |] 4;
                request ~sender:1 ~subrun:0 ~last:[| 4; 4; 4; 4 |] 4;
              ]
        in
        Alcotest.(check bool) "not full" false d0.Urcgc.Decision.full_group;
        Alcotest.(check (array int)) "stable unchanged" [| 0; 0; 0; 0 |]
          d0.Urcgc.Decision.stable;
        (* Subrun 1: p2, p3 heard; cycle closes. *)
        let d1 =
          Urcgc.Coordinator.compute ~config ~subrun:1 ~coordinator:(node 1)
            ~prev:d0
            ~requests:
              [
                request ~sender:2 ~subrun:1 ~last:[| 5; 5; 5; 5 |] 4;
                request ~sender:3 ~subrun:1 ~last:[| 5; 5; 5; 5 |] 4;
              ]
        in
        Alcotest.(check bool) "full now" true d1.Urcgc.Decision.full_group;
        Alcotest.(check (array int)) "stable at min over cycle" [| 4; 4; 4; 4 |]
          d1.Urcgc.Decision.stable);
    Alcotest.test_case "silent process accumulates attempts, crashes at K"
      `Quick (fun () ->
        let prev = ref (Decisions.initial 4) in
        for s = 0 to 1 do
          prev :=
            Urcgc.Coordinator.compute ~config ~subrun:s ~coordinator:(node 0)
              ~prev:!prev
              ~requests:
                [
                  request ~sender:0 ~subrun:s 4;
                  request ~sender:1 ~subrun:s 4;
                  request ~sender:2 ~subrun:s 4;
                ]
        done;
        (* K = 2: after two silent subruns p3 is declared crashed. *)
        Alcotest.(check int) "attempts" 2 !prev.Urcgc.Decision.attempts.(3);
        Alcotest.(check bool) "crashed" false !prev.Urcgc.Decision.alive.(3));
    Alcotest.test_case "attempts reset when the process reappears" `Quick
      (fun () ->
        let prev =
          Urcgc.Coordinator.compute ~config ~subrun:0 ~coordinator:(node 0)
            ~prev:(Decisions.initial 4)
            ~requests:
              [
                request ~sender:0 ~subrun:0 4;
                request ~sender:1 ~subrun:0 4;
                request ~sender:2 ~subrun:0 4;
              ]
        in
        Alcotest.(check int) "one attempt" 1 prev.Urcgc.Decision.attempts.(3);
        let d =
          Urcgc.Coordinator.compute ~config ~subrun:1 ~coordinator:(node 1)
            ~prev
            ~requests:[ request ~sender:3 ~subrun:1 4 ]
        in
        Alcotest.(check int) "reset" 0 d.Urcgc.Decision.attempts.(3);
        Alcotest.(check bool) "alive" true d.Urcgc.Decision.alive.(3));
    Alcotest.test_case "max_processed tracks the most updated process" `Quick
      (fun () ->
        let d =
          Urcgc.Coordinator.compute ~config ~subrun:0 ~coordinator:(node 0)
            ~prev:(Decisions.initial 4)
            ~requests:
              [
                request ~sender:0 ~subrun:0 ~last:[| 2; 0; 0; 0 |] 4;
                request ~sender:1 ~subrun:0 ~last:[| 7; 3; 0; 0 |] 4;
              ]
        in
        Alcotest.(check int) "max for origin 0" 7 d.Urcgc.Decision.max_processed.(0);
        Alcotest.(check int) "holder is p1" 1
          (Net.Node_id.to_int d.Urcgc.Decision.most_updated.(0)));
    Alcotest.test_case "holder crash resets max_processed to live knowledge"
      `Quick (fun () ->
        (* p1 is most updated for origin 0, then goes silent for K subruns. *)
        let prev =
          Urcgc.Coordinator.compute ~config ~subrun:0 ~coordinator:(node 0)
            ~prev:(Decisions.initial 4)
            ~requests:
              [
                request ~sender:0 ~subrun:0 ~last:[| 2; 0; 0; 0 |] 4;
                request ~sender:1 ~subrun:0 ~last:[| 7; 3; 0; 0 |] 4;
                request ~sender:2 ~subrun:0 4;
                request ~sender:3 ~subrun:0 4;
              ]
        in
        let prev = ref prev in
        for s = 1 to 2 do
          prev :=
            Urcgc.Coordinator.compute ~config ~subrun:s ~coordinator:(node (s mod 4))
              ~prev:!prev
              ~requests:
                [
                  request ~sender:0 ~subrun:s ~last:[| 3; 1; 0; 0 |] 4;
                  request ~sender:2 ~subrun:s ~last:[| 2; 1; 0; 0 |] 4;
                  request ~sender:3 ~subrun:s ~last:[| 2; 1; 0; 0 |] 4;
                ]
        done;
        Alcotest.(check bool) "p1 declared crashed" false
          !prev.Urcgc.Decision.alive.(1);
        Alcotest.(check int) "max rebuilt from live processes" 3
          !prev.Urcgc.Decision.max_processed.(0));
    Alcotest.test_case "min_waiting published on full coverage" `Quick (fun () ->
        let d =
          Urcgc.Coordinator.compute ~config ~subrun:0 ~coordinator:(node 0)
            ~prev:(Decisions.initial 4)
            ~requests:
              [
                request ~sender:0 ~subrun:0 ~waiting:[ (1, 5) ] 4;
                request ~sender:1 ~subrun:0 ~waiting:[ (1, 3) ] 4;
                request ~sender:2 ~subrun:0 4;
                request ~sender:3 ~subrun:0 4;
              ]
        in
        Alcotest.(check bool) "full" true d.Urcgc.Decision.full_group;
        Alcotest.(check int) "min 3" 3 d.Urcgc.Decision.min_waiting.(1);
        Alcotest.(check int) "none for origin 2" 0 d.Urcgc.Decision.min_waiting.(2));
    Alcotest.test_case "merge_prev picks the most recent piggybacked decision"
      `Quick (fun () ->
        let d0 = Decisions.initial 4 in
        let d5 = { d0 with Urcgc.Decision.subrun = 5 } in
        let d3 = { d0 with Urcgc.Decision.subrun = 3 } in
        let merged =
          Urcgc.Coordinator.merge_prev d3
            [
              request ~sender:0 ~subrun:6 ~prev:d0 4;
              request ~sender:1 ~subrun:6 ~prev:d5 4;
            ]
        in
        Alcotest.(check int) "subrun 5" 5 merged.Urcgc.Decision.subrun);
  ]

(* -- member unit behaviour ---------------------------------------------- *)

let find_map f actions = List.find_map f actions

let sent_request actions =
  find_map
    (function
      | Urcgc.Member.Send (dst, Urcgc.Wire.Request r) -> Some (dst, r)
      | _ -> None)
    actions

let member_tests =
  let config = Urcgc.Config.make ~n:3 ~k:2 () in
  [
    Alcotest.test_case "begin_subrun sends the request to the coordinator"
      `Quick (fun () ->
        let m : unit Urcgc.Member.t = Urcgc.Member.create config (node 1) in
        let actions = Urcgc.Member.begin_subrun m ~subrun:0 in
        match sent_request actions with
        | Some (dst, r) ->
            Alcotest.(check int) "to p0" 0 (Net.Node_id.to_int dst);
            Alcotest.(check int) "subrun" 0 r.Urcgc.Wire.subrun
        | None -> Alcotest.fail "no request emitted");
    Alcotest.test_case "coordinator keeps its own request locally" `Quick
      (fun () ->
        let m : unit Urcgc.Member.t = Urcgc.Member.create config (node 0) in
        let actions = Urcgc.Member.begin_subrun m ~subrun:0 in
        Alcotest.(check bool) "no self-send" true (sent_request actions = None));
    Alcotest.test_case "coordinator broadcasts a decision at mid-subrun" `Quick
      (fun () ->
        let m : unit Urcgc.Member.t = Urcgc.Member.create config (node 0) in
        ignore (Urcgc.Member.begin_subrun m ~subrun:0);
        let actions = Urcgc.Member.mid_subrun m ~subrun:0 in
        let decision =
          find_map
            (function
              | Urcgc.Member.Broadcast (Urcgc.Wire.Decision_pdu d) -> Some d
              | _ -> None)
            actions
        in
        match decision with
        | Some d -> Alcotest.(check int) "subrun 0" 0 d.Urcgc.Decision.subrun
        | None -> Alcotest.fail "no decision broadcast");
    Alcotest.test_case "submit then round: data broadcast + confirm + process"
      `Quick (fun () ->
        let m = Urcgc.Member.create config (node 1) in
        Urcgc.Member.submit m "hello";
        let actions = Urcgc.Member.begin_subrun m ~subrun:0 in
        let has f = List.exists f actions in
        Alcotest.(check bool) "broadcast" true
          (has (function
            | Urcgc.Member.Broadcast (Urcgc.Wire.Data _) -> true
            | _ -> false));
        Alcotest.(check bool) "confirmed" true
          (has (function Urcgc.Member.Confirmed _ -> true | _ -> false));
        Alcotest.(check bool) "processed locally" true
          (has (function Urcgc.Member.Processed _ -> true | _ -> false));
        Alcotest.(check int) "own chain advanced" 1
          (Urcgc.Member.last_processed m (node 1)));
    Alcotest.test_case "one message per round, rest stays queued" `Quick
      (fun () ->
        let m = Urcgc.Member.create config (node 1) in
        Urcgc.Member.submit m "a";
        Urcgc.Member.submit m "b";
        ignore (Urcgc.Member.begin_subrun m ~subrun:0);
        Alcotest.(check int) "backlog 1" 1 (Urcgc.Member.sap_backlog m);
        ignore (Urcgc.Member.mid_subrun m ~subrun:0);
        Alcotest.(check int) "backlog 0" 0 (Urcgc.Member.sap_backlog m));
    Alcotest.test_case "data with missing deps goes to the waiting list" `Quick
      (fun () ->
        let m : string Urcgc.Member.t = Urcgc.Member.create config (node 1) in
        let msg2 =
          Causal.Causal_msg.make ~mid:(mid 0 2) ~deps:[] ~payload_size:4 "x"
        in
        let actions = Urcgc.Member.handle m (Urcgc.Wire.Data msg2) in
        (match actions with
        | [ Urcgc.Member.Queued (queued_mid, depth) ] ->
            Alcotest.(check bool)
              "queued mid" true
              (Causal.Mid.equal queued_mid (mid 0 2));
            Alcotest.(check int) "depth after add" 1 depth
        | _ -> Alcotest.fail "expected a single Queued action");
        Alcotest.(check int) "waiting" 1 (Urcgc.Member.waiting_length m);
        (* The gap fills: both process in order. *)
        let msg1 =
          Causal.Causal_msg.make ~mid:(mid 0 1) ~deps:[] ~payload_size:4 "y"
        in
        let actions = Urcgc.Member.handle m (Urcgc.Wire.Data msg1) in
        let processed =
          List.filter_map
            (function
              | Urcgc.Member.Processed p -> Some (Causal.Mid.seq p.Causal.Causal_msg.mid)
              | _ -> None)
            actions
        in
        Alcotest.(check (list int)) "1 then 2" [ 1; 2 ] processed;
        Alcotest.(check int) "waiting empty" 0 (Urcgc.Member.waiting_length m));
    Alcotest.test_case "duplicate data is ignored" `Quick (fun () ->
        let m : string Urcgc.Member.t = Urcgc.Member.create config (node 1) in
        let msg1 =
          Causal.Causal_msg.make ~mid:(mid 0 1) ~deps:[] ~payload_size:4 "y"
        in
        ignore (Urcgc.Member.handle m (Urcgc.Wire.Data msg1));
        let actions = Urcgc.Member.handle m (Urcgc.Wire.Data msg1) in
        Alcotest.(check int) "nothing" 0 (List.length actions);
        Alcotest.(check int) "processed once" 1 (Urcgc.Member.processed_count m));
    Alcotest.test_case "suicide on a decision that declares us crashed" `Quick
      (fun () ->
        let m : unit Urcgc.Member.t = Urcgc.Member.create config (node 1) in
        let d0 = Decisions.initial 3 in
        let d =
          {
            d0 with
            Urcgc.Decision.subrun = 0;
            alive = [| true; false; true |];
          }
        in
        let actions = Urcgc.Member.handle m (Urcgc.Wire.Decision_pdu d) in
        Alcotest.(check bool) "left" true
          (List.exists
             (function
               | Urcgc.Member.Left Urcgc.Member.Declared_crashed -> true
               | _ -> false)
             actions);
        Alcotest.(check bool) "inactive" false (Urcgc.Member.active m));
    Alcotest.test_case "full-group decision purges the history" `Quick
      (fun () ->
        let m : string Urcgc.Member.t = Urcgc.Member.create config (node 1) in
        List.iter
          (fun s ->
            ignore
              (Urcgc.Member.handle m
                 (Urcgc.Wire.Data
                    (Causal.Causal_msg.make ~mid:(mid 0 s) ~deps:[]
                       ~payload_size:4 "m"))))
          [ 1; 2; 3 ];
        Alcotest.(check int) "3 in history" 3 (Urcgc.Member.history_length m);
        let d0 = Decisions.initial 3 in
        let d =
          {
            d0 with
            Urcgc.Decision.subrun = 0;
            full_group = true;
            stable = [| 2; 0; 0 |];
          }
        in
        ignore (Urcgc.Member.handle m (Urcgc.Wire.Decision_pdu d));
        Alcotest.(check int) "purged to 1" 1 (Urcgc.Member.history_length m));
    Alcotest.test_case "stale decision does not regress state" `Quick (fun () ->
        let m : unit Urcgc.Member.t = Urcgc.Member.create config (node 1) in
        let d0 = Decisions.initial 3 in
        let newer = { d0 with Urcgc.Decision.subrun = 5 } in
        let older = { d0 with Urcgc.Decision.subrun = 2 } in
        ignore (Urcgc.Member.handle m (Urcgc.Wire.Decision_pdu newer));
        ignore (Urcgc.Member.handle m (Urcgc.Wire.Decision_pdu older));
        Alcotest.(check int) "kept newer" 5
          (Urcgc.Member.latest_decision m).Urcgc.Decision.subrun);
    Alcotest.test_case "recovery request targets the most updated process"
      `Quick (fun () ->
        let m : unit Urcgc.Member.t = Urcgc.Member.create config (node 1) in
        let d0 = Decisions.initial 3 in
        let d =
          {
            d0 with
            Urcgc.Decision.subrun = 0;
            max_processed = [| 4; 0; 0 |];
            most_updated = [| node 2; node 1; node 2 |];
          }
        in
        ignore (Urcgc.Member.handle m (Urcgc.Wire.Decision_pdu d));
        let actions = Urcgc.Member.begin_subrun m ~subrun:1 in
        let recover =
          find_map
            (function
              | Urcgc.Member.Send (dst, Urcgc.Wire.Recover_req r) ->
                  Some (dst, r)
              | _ -> None)
            actions
        in
        match recover with
        | Some (dst, r) ->
            Alcotest.(check int) "to p2" 2 (Net.Node_id.to_int dst);
            Alcotest.(check int) "from 1" 1 r.Urcgc.Wire.from_seq;
            Alcotest.(check int) "to 4" 4 r.Urcgc.Wire.to_seq
        | None -> Alcotest.fail "no recovery request");
    Alcotest.test_case "recover_req answered from history" `Quick (fun () ->
        let m : string Urcgc.Member.t = Urcgc.Member.create config (node 2) in
        List.iter
          (fun s ->
            ignore
              (Urcgc.Member.handle m
                 (Urcgc.Wire.Data
                    (Causal.Causal_msg.make ~mid:(mid 0 s) ~deps:[]
                       ~payload_size:4 "m"))))
          [ 1; 2; 3 ];
        let actions =
          Urcgc.Member.handle m
            (Urcgc.Wire.Recover_req
               { requester = node 1; origin = node 0; from_seq = 2; to_seq = 3 })
        in
        match
          find_map
            (function
              | Urcgc.Member.Send (dst, Urcgc.Wire.Recover_reply r) ->
                  Some (dst, r)
              | _ -> None)
            actions
        with
        | Some (dst, reply) ->
            Alcotest.(check int) "to requester" 1 (Net.Node_id.to_int dst);
            Alcotest.(check int) "2 messages" 2
              (List.length reply.Urcgc.Wire.messages)
        | None -> Alcotest.fail "no recover reply");
    Alcotest.test_case "prolonged decision silence makes the process leave"
      `Quick (fun () ->
        let m : unit Urcgc.Member.t = Urcgc.Member.create config (node 1) in
        (* silence_limit = 2k = 4 subruns without any decision *)
        let left = ref false in
        for s = 0 to 5 do
          let actions = Urcgc.Member.begin_subrun m ~subrun:s in
          if
            List.exists
              (function
                | Urcgc.Member.Left Urcgc.Member.Decision_silence -> true
                | _ -> false)
              actions
          then left := true
        done;
        Alcotest.(check bool) "left" true !left);
    Alcotest.test_case "self-issued decisions never reset the silence clock"
      `Quick (fun () ->
        (* A decision the process coordinated alone is not evidence of any
           other live process: feeding one per subrun must not postpone the
           [Decision_silence] departure by a single subrun. *)
        let m : unit Urcgc.Member.t = Urcgc.Member.create config (node 1) in
        let self_decision subrun =
          { (Decisions.initial 3) with Urcgc.Decision.subrun;
            coordinator = node 1 }
        in
        let left_at = ref None in
        let s = ref 0 in
        while Urcgc.Member.active m && !s <= 6 do
          let actions = Urcgc.Member.begin_subrun m ~subrun:!s in
          if
            List.exists
              (function
                | Urcgc.Member.Left Urcgc.Member.Decision_silence -> true
                | _ -> false)
              actions
          then left_at := Some !s
          else
            ignore
              (Urcgc.Member.handle m
                 (Urcgc.Wire.Decision_pdu (self_decision !s)));
          incr s
        done;
        (* silence_limit = 2k = 4: the counter first increments at subrun 1
           (subrun 0 is the very first) and reaches the limit at subrun 4. *)
        Alcotest.(check (option int)) "left at exactly silence_limit" (Some 4)
          !left_at);
    Alcotest.test_case "peer-issued decisions do reset the silence clock"
      `Quick (fun () ->
        let m : unit Urcgc.Member.t = Urcgc.Member.create config (node 2) in
        let peer_decision subrun =
          { (Decisions.initial 3) with Urcgc.Decision.subrun;
            coordinator = node 0 }
        in
        for s = 0 to 7 do
          let actions = Urcgc.Member.begin_subrun m ~subrun:s in
          Alcotest.(check bool)
            (Printf.sprintf "still active at subrun %d" s)
            false
            (List.exists
               (function Urcgc.Member.Left _ -> true | _ -> false)
               actions);
          ignore
            (Urcgc.Member.handle m (Urcgc.Wire.Decision_pdu (peer_decision s)))
        done;
        Alcotest.(check bool) "active past 2x the limit" true
          (Urcgc.Member.active m));
    Alcotest.test_case "coordinating alone is not evidence of life" `Quick
      (fun () ->
        (* p1 coordinates subrun 1 with no pending peer requests: the
           decision it computes aggregates only its own state and must not
           touch the silence counter. *)
        let m : unit Urcgc.Member.t = Urcgc.Member.create config (node 1) in
        let left_at = ref None in
        let s = ref 0 in
        while Urcgc.Member.active m && !s <= 6 do
          let actions = Urcgc.Member.begin_subrun m ~subrun:!s in
          if
            List.exists
              (function
                | Urcgc.Member.Left Urcgc.Member.Decision_silence -> true
                | _ -> false)
              actions
          then left_at := Some !s
          else if !s = 1 then ignore (Urcgc.Member.mid_subrun m ~subrun:1);
          incr s
        done;
        Alcotest.(check (option int)) "solo coordination bought no time"
          (Some 4) !left_at);
    Alcotest.test_case "aggregating a peer's request is evidence of life"
      `Quick (fun () ->
        (* Same schedule as above, but p0's request reaches p1 before it
           coordinates subrun 1: the decision now proves another process is
           alive, so the counter resets and departure moves out to subrun
           1 + 1 + silence_limit = 6. *)
        let m : unit Urcgc.Member.t = Urcgc.Member.create config (node 1) in
        let left_at = ref None in
        let s = ref 0 in
        while Urcgc.Member.active m && !s <= 8 do
          let actions = Urcgc.Member.begin_subrun m ~subrun:!s in
          if
            List.exists
              (function
                | Urcgc.Member.Left Urcgc.Member.Decision_silence -> true
                | _ -> false)
              actions
          then left_at := Some !s
          else if !s = 1 then begin
            ignore
              (Urcgc.Member.handle m
                 (Urcgc.Wire.Request (request ~sender:0 ~subrun:1 ~prev:(Decisions.initial 3) 3)));
            ignore (Urcgc.Member.mid_subrun m ~subrun:1)
          end;
          incr s
        done;
        Alcotest.(check (option int)) "the peer request reset the clock"
          (Some 6) !left_at);
    Alcotest.test_case "a solo view departs as partitioned" `Quick (fun () ->
        (* Primary-partition discipline: adopting a view that contains only
           yourself (while n > 1) means the rest of the group is gone or
           unreachable — depart instead of self-coordinating. *)
        let m : unit Urcgc.Member.t = Urcgc.Member.create config (node 1) in
        ignore (Urcgc.Member.begin_subrun m ~subrun:0);
        let solo =
          { (Decisions.initial 3) with Urcgc.Decision.subrun = 0;
            coordinator = node 0; alive = [| false; true; false |] }
        in
        let actions = Urcgc.Member.handle m (Urcgc.Wire.Decision_pdu solo) in
        Alcotest.(check bool) "left partitioned" true
          (List.exists
             (function
               | Urcgc.Member.Left Urcgc.Member.Partitioned -> true
               | _ -> false)
             actions);
        Alcotest.(check bool) "inactive" false (Urcgc.Member.active m);
        (* The trace oracle in [Sim.Analysis] matches this string verbatim:
           keep them in lock step. *)
        match Urcgc.Member.left_reason m with
        | Some r ->
            Alcotest.(check string) "reason string" "partitioned (solo view)"
              (Urcgc.Member.reason_to_string r)
        | None -> Alcotest.fail "no departure recorded");
    Alcotest.test_case "generation emits broadcast, cascade order, confirm"
      `Quick (fun () ->
        (* Pins the exact emission order of [generate_data]: the broadcast
           first, then every [Processed] in causal processing order (own
           message, then the waiting messages it unblocked), and the
           [Confirmed] last — the order the rev-accumulating cascade must
           preserve. *)
        let m : string Urcgc.Member.t = Urcgc.Member.create config (node 1) in
        (* p0#1 depends on our not-yet-sent p1#1: it waits. *)
        let blocked =
          Causal.Causal_msg.make ~mid:(mid 0 1) ~deps:[ mid 1 1 ]
            ~payload_size:4 "x"
        in
        ignore (Urcgc.Member.handle m (Urcgc.Wire.Data blocked));
        Alcotest.(check int) "waiting" 1 (Urcgc.Member.waiting_length m);
        Urcgc.Member.submit m "mine";
        let actions = Urcgc.Member.begin_subrun m ~subrun:0 in
        let data_order =
          List.filter_map
            (function
              | Urcgc.Member.Broadcast (Urcgc.Wire.Data d) ->
                  Some ("broadcast", d.Causal.Causal_msg.mid)
              | Urcgc.Member.Processed p ->
                  Some ("processed", p.Causal.Causal_msg.mid)
              | Urcgc.Member.Confirmed c -> Some ("confirmed", c)
              | _ -> None)
            actions
        in
        let expected =
          [
            ("broadcast", mid 1 1);
            ("processed", mid 1 1);
            ("processed", mid 0 1);
            ("confirmed", mid 1 1);
          ]
        in
        Alcotest.(check (list (pair string (testable Causal.Mid.pp Causal.Mid.equal))))
          "emission order" expected data_order);
    Alcotest.test_case "orphan discards come out origin-ascending" `Quick
      (fun () ->
        (* Pins the discard emission order of [purge_orphans]: one
           [Discarded] action, origins ascending, each origin's mids in
           waiting order. *)
        let config = Urcgc.Config.make ~n:4 ~k:2 () in
        let m : string Urcgc.Member.t = Urcgc.Member.create config (node 1) in
        List.iter
          (fun (o, s) ->
            ignore
              (Urcgc.Member.handle m
                 (Urcgc.Wire.Data
                    (Causal.Causal_msg.make ~mid:(mid o s) ~deps:[]
                       ~payload_size:4 "w"))))
          [ (2, 2); (0, 2); (0, 3) ];
        Alcotest.(check int) "three waiting" 3 (Urcgc.Member.waiting_length m);
        (* Full-group decision: p0 and p2 are gone, nobody processed their
           seq 1, and messages from seq 2 up are waiting — orphans. *)
        let d0 = Decisions.initial 4 in
        let d =
          {
            d0 with
            Urcgc.Decision.subrun = 0;
            coordinator = node 3;
            full_group = true;
            alive = [| false; true; false; true |];
            min_waiting = [| 2; 0; 2; 0 |];
          }
        in
        let actions = Urcgc.Member.handle m (Urcgc.Wire.Decision_pdu d) in
        let discards =
          List.filter_map
            (function Urcgc.Member.Discarded mids -> Some mids | _ -> None)
            actions
        in
        match discards with
        | [ mids ] ->
            Alcotest.(check (list (testable Causal.Mid.pp Causal.Mid.equal)))
              "origins ascending, waiting order within"
              [ mid 0 2; mid 0 3; mid 2 2 ]
              mids
        | _ -> Alcotest.fail "expected exactly one Discarded action");
    Alcotest.test_case "flow control blocks generation at the threshold" `Quick
      (fun () ->
        let config = Urcgc.Config.make ~n:3 ~k:2 ~flow_threshold:(Some 2) () in
        let m = Urcgc.Member.create config (node 1) in
        List.iter
          (fun s ->
            ignore
              (Urcgc.Member.handle m
                 (Urcgc.Wire.Data
                    (Causal.Causal_msg.make ~mid:(mid 0 s) ~deps:[]
                       ~payload_size:4 "m"))))
          [ 1; 2 ];
        Urcgc.Member.submit m "blocked";
        let actions = Urcgc.Member.begin_subrun m ~subrun:0 in
        Alcotest.(check bool) "no data broadcast" false
          (List.exists
             (function
               | Urcgc.Member.Broadcast (Urcgc.Wire.Data _) -> true
               | _ -> false)
             actions);
        Alcotest.(check bool) "flow blocked" true (Urcgc.Member.flow_blocked m);
        Alcotest.(check int) "still queued" 1 (Urcgc.Member.sap_backlog m));
    Alcotest.test_case "explicit unprocessed dependency is rejected" `Quick
      (fun () ->
        let m = Urcgc.Member.create config (node 1) in
        Urcgc.Member.submit ~deps:[ mid 0 3 ] m "bad";
        Alcotest.(check bool) "raises" true
          (try
             ignore (Urcgc.Member.begin_subrun m ~subrun:0);
             false
           with Invalid_argument _ -> true));
  ]

(* -- end-to-end scenarios ------------------------------------------------ *)

let run ?(n = 6) ?(k = 3) ?(rate = 0.5) ?(messages = 60) ?flow_threshold
    ?(fault = Net.Fault.reliable) ?(seed = 42) ?(max_rtd = 200.0) () =
  let config = Urcgc.Config.make ~k ?flow_threshold ~n () in
  let load = Workload.Load.make ~rate ~total_messages:messages () in
  let scenario =
    Workload.Scenario.make ~name:"test" ~fault ~seed ~max_rtd ~config ~load ()
  in
  Workload.Runner.run scenario

let crash_spec crashes =
  Net.Fault.with_crashes
    (List.map
       (fun (i, subrun) ->
         (node i, Sim.Ticks.of_int ((subrun * Sim.Ticks.per_rtd) + 1)))
       crashes)
    Net.Fault.reliable

let check_verdict report =
  let v = report.Workload.Runner.verdict in
  if not (Workload.Checker.ok v) then
    Alcotest.failf "invariants violated: %s"
      (String.concat "; " v.Workload.Checker.violations)

let e2e_tests =
  [
    Alcotest.test_case "reliable run: everything delivered in causal order"
      `Slow (fun () ->
        let report = run () in
        check_verdict report;
        Alcotest.(check int) "all generated" 60 report.Workload.Runner.generated;
        Alcotest.(check int) "delivered everywhere" (60 * 5)
          report.Workload.Runner.delivered_remote;
        Alcotest.(check bool) "D >= 1/2 rtd... roughly one-way latency" true
          (Workload.Runner.mean_delay_rtd report >= 0.35));
    Alcotest.test_case "deterministic: same seed, same outcome" `Slow (fun () ->
        let a = run ~seed:7 () and b = run ~seed:7 () in
        Alcotest.(check int) "generated" a.Workload.Runner.generated
          b.Workload.Runner.generated;
        Alcotest.(check int) "control msgs" a.Workload.Runner.control_msgs
          b.Workload.Runner.control_msgs;
        Alcotest.(check (float 1e-12)) "delay"
          (Workload.Runner.mean_delay_rtd a)
          (Workload.Runner.mean_delay_rtd b));
    Alcotest.test_case "different seeds differ" `Slow (fun () ->
        let a = run ~seed:7 () and b = run ~seed:8 () in
        Alcotest.(check bool) "some difference" true
          (a.Workload.Runner.control_bytes <> b.Workload.Runner.control_bytes
          || Workload.Runner.mean_delay_rtd a <> Workload.Runner.mean_delay_rtd b));
    Alcotest.test_case "control traffic matches 2(n-1) per subrun" `Slow
      (fun () ->
        let report = run ~n:8 () in
        check_verdict report;
        let per_subrun = Workload.Runner.control_msgs_per_subrun report in
        let expected =
          float_of_int (Stats.Analytic.urcgc_control_msgs_reliable ~n:8)
        in
        Alcotest.(check bool) "within 15%" true
          (Float.abs (per_subrun -. expected) /. expected < 0.15));
    Alcotest.test_case "server crash: survivors stay consistent, no delay hit"
      `Slow (fun () ->
        let report = run ~fault:(crash_spec [ (2, 4) ]) () in
        check_verdict report;
        Alcotest.(check bool) "delay still low" true
          (Workload.Runner.mean_delay_rtd report < 0.6);
        Alcotest.(check bool) "no survivor left the group" true
          (report.Workload.Runner.departures = []));
    Alcotest.test_case "two crashes including a coordinator" `Slow (fun () ->
        (* p0 coordinates subrun 0, 6, 12...; crash it right before one. *)
        let report = run ~fault:(crash_spec [ (0, 5); (3, 7) ]) () in
        check_verdict report);
    Alcotest.test_case "omission failures: recovery kicks in, order holds"
      `Slow (fun () ->
        let report =
          run ~fault:(Net.Fault.omission_every 100) ~messages:100 ()
        in
        check_verdict report;
        Alcotest.(check bool) "recovery traffic present" true
          (report.Workload.Runner.recovery_msgs > 0));
    Alcotest.test_case "general omission: crash + loss together" `Slow
      (fun () ->
        let fault =
          Net.Fault.with_crashes
            [ (node 1, Sim.Ticks.of_int 401) ]
            (Net.Fault.omission_every 200)
        in
        let report = run ~fault ~messages:80 () in
        check_verdict report);
    Alcotest.test_case "flow control bounds the history" `Slow (fun () ->
        let n = 6 in
        let report =
          run ~n ~rate:1.0 ~messages:200 ~flow_threshold:(Some (8 * n))
            ~fault:(crash_spec [ (1, 2) ])
            ()
        in
        check_verdict report;
        (* One subrun of slack: generation happens before cleaning. *)
        Alcotest.(check bool) "bounded by threshold + slack" true
          (report.Workload.Runner.history_peak <= (8 * n) + (2 * n)));
    Alcotest.test_case "history stays near 2n without failures" `Slow (fun () ->
        (* The paper's Figure 6 assumption: up to one message per round is
           generated group-wide, and then "no more than 2n messages are
           stored in the history". *)
        let report = run ~n:8 ~rate:0.125 ~messages:60 () in
        check_verdict report;
        Alcotest.(check bool) "history peak within 2n" true
          (report.Workload.Runner.history_peak
          <= Stats.Analytic.urcgc_history_bound_reliable ~n:8));
    Alcotest.test_case "crashed process's unseen tail is not required" `Slow
      (fun () ->
        (* p2 generates alone and crashes mid-run; survivors must converge. *)
        let config = Urcgc.Config.make ~k:2 ~n:5 () in
        let load =
          Workload.Load.make ~rate:1.0 ~total_messages:30
            ~senders:[ node 2 ] ()
        in
        let scenario =
          Workload.Scenario.make ~name:"orphan" ~fault:(crash_spec [ (2, 5) ])
            ~seed:11 ~max_rtd:120.0 ~config ~load ()
        in
        let report = Workload.Runner.run scenario in
        check_verdict report);
  ]

(* Random-scenario property: invariants hold across seeds, fault mixes,
   mountings (datagram / transport), and the codec boundary. *)
let e2e_property =
  QCheck.Test.make ~name:"urcgc invariants hold on random scenarios" ~count:15
    QCheck.(
      pair
        (quad (int_range 3 8) (int_range 1 1_000_000) (int_bound 2) (int_bound 1))
        (pair (int_bound 2) QCheck.bool))
    (fun ((n, seed, crashes, omission), (mount_pick, codec_boundary)) ->
      let fault =
        let base =
          if omission = 1 then Net.Fault.omission_every 150
          else Net.Fault.reliable
        in
        let rng = Sim.Rng.create ~seed:(seed + 1) in
        let crash_list =
          List.init (min crashes (n - 2)) (fun i ->
              ( node (Sim.Rng.int rng n),
                Sim.Ticks.of_int (((i + 3) * Sim.Ticks.per_rtd) + 1) ))
        in
        Net.Fault.with_crashes crash_list base
      in
      let mount =
        match mount_pick with
        | 0 -> Workload.Scenario.Datagram
        | 1 -> Workload.Scenario.Transport Urcgc.Medium.All
        | _ -> Workload.Scenario.Transport (Urcgc.Medium.At_least (max 1 (n / 2)))
      in
      let config = Urcgc.Config.make ~k:3 ~n () in
      let load = Workload.Load.make ~rate:0.6 ~total_messages:40 () in
      let scenario =
        Workload.Scenario.make ~name:"prop" ~fault ~mount ~codec_boundary ~seed
          ~max_rtd:150.0 ~config ~load ()
      in
      let report = Workload.Runner.run scenario in
      Workload.Checker.ok report.Workload.Runner.verdict)

let suite =
  [
    ("urcgc.config", config_tests);
    ("urcgc.decision", decision_tests);
    ("urcgc.coordinator", coordinator_tests);
    ("urcgc.member", member_tests);
    ("urcgc.e2e", e2e_tests @ [ QCheck_alcotest.to_alcotest e2e_property ]);
  ]
