(* Sim.Prof unit tests plus the non-interference contract on the built
   binary: enabling --profile must not change a single byte of any
   simulation output (campaign/explore JSON, trace JSONL), and the
   structural report for a fixed-seed campaign must be byte-stable —
   pinned against a committed expectation that CI also compares across
   compiler versions. *)

let exe = Filename.concat Filename.parent_dir_name "bin/urcgc_sim.exe"

let run_cli args =
  Sys.command (Printf.sprintf "%s %s >/dev/null 2>&1" exe args)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let with_temp_file f =
  let path = Filename.temp_file "urcgc_prof" ".json" in
  Fun.protect
    ~finally:(fun () ->
      List.iter
        (fun p -> try Sys.remove p with Sys_error _ -> ())
        [ path; path ^ ".structural"; path ^ ".folded" ])
    (fun () -> f path)

let rec find_span name (s : Sim.Prof.stat) =
  if s.Sim.Prof.name = name then Some s
  else List.find_map (find_span name) s.Sim.Prof.children

(* -- unit tests on the profiler itself ---------------------------------- *)

let unit_tests =
  [
    Alcotest.test_case "disabled probes are no-ops" `Quick (fun () ->
        Alcotest.(check bool) "off by default" false (Sim.Prof.enabled ());
        (* None of these may raise or leave state behind while disabled. *)
        Sim.Prof.enter "ghost";
        Sim.Prof.exit ();
        Sim.Prof.exit ();
        Sim.Prof.count ~by:7 "ghost_counter";
        Alcotest.(check int) "span passes value through" 3
          (Sim.Prof.span "ghost" (fun () -> 3));
        Alcotest.check_raises "capture without enable"
          (Invalid_argument "Prof.capture: profiler is not enabled") (fun () ->
            ignore (Sim.Prof.capture ())));
    Alcotest.test_case "nesting builds the tree, counts accumulate" `Quick
      (fun () ->
        Sim.Prof.enable ();
        for _ = 1 to 3 do
          Sim.Prof.enter "outer";
          Sim.Prof.enter "inner";
          Sim.Prof.exit ();
          Sim.Prof.enter "inner";
          Sim.Prof.exit ();
          Sim.Prof.exit ()
        done;
        let report = Sim.Prof.capture () in
        Alcotest.(check bool) "capture disables" false (Sim.Prof.enabled ());
        let root = Sim.Prof.root report in
        Alcotest.(check string) "root name" "root" root.Sim.Prof.name;
        let outer =
          match find_span "outer" root with
          | Some s -> s
          | None -> Alcotest.fail "outer span missing"
        in
        let inner =
          match find_span "inner" outer with
          | Some s -> s
          | None -> Alcotest.fail "inner span missing"
        in
        Alcotest.(check int) "outer count" 3 outer.Sim.Prof.count;
        Alcotest.(check int) "inner count" 6 inner.Sim.Prof.count;
        Alcotest.(check int) "inner latency samples" 6
          inner.Sim.Prof.latency.Stats.Summary.count;
        Alcotest.(check bool) "self <= total" true
          (outer.Sim.Prof.self_ns <= outer.Sim.Prof.total_ns +. 1e-6);
        Alcotest.(check bool) "coverage within [0, 1]" true
          (let c = Sim.Prof.coverage report in
           c >= 0.0 && c <= 1.0));
    Alcotest.test_case "same name under one parent shares a node" `Quick
      (fun () ->
        Sim.Prof.enable ();
        Sim.Prof.span "phase" (fun () -> ());
        Sim.Prof.span "phase" (fun () -> ());
        let report = Sim.Prof.capture () in
        let root = Sim.Prof.root report in
        Alcotest.(check int) "one child" 1
          (List.length root.Sim.Prof.children);
        Alcotest.(check int) "merged count" 2
          (List.hd root.Sim.Prof.children).Sim.Prof.count);
    Alcotest.test_case "unbalanced probes raise" `Quick (fun () ->
        Sim.Prof.enable ();
        Sim.Prof.enter "left_open";
        Alcotest.check_raises "capture names the open span"
          (Invalid_argument
             "Prof.capture: unbalanced spans still open: root > left_open")
          (fun () -> ignore (Sim.Prof.capture ()));
        Sim.Prof.disable ();
        Sim.Prof.enable ();
        Alcotest.check_raises "exit with only the root open"
          (Invalid_argument "Prof.exit: no open span (unbalanced probe)")
          (fun () -> Sim.Prof.exit ());
        Sim.Prof.disable ());
    Alcotest.test_case "span closes on exception" `Quick (fun () ->
        Sim.Prof.enable ();
        (try Sim.Prof.span "boom" (fun () -> failwith "boom")
         with Failure _ -> ());
        (* The span must have been closed: capture succeeds. *)
        let report = Sim.Prof.capture () in
        Alcotest.(check bool) "boom recorded" true
          (find_span "boom" (Sim.Prof.root report) <> None));
    Alcotest.test_case "counters attach to the current span, sorted" `Quick
      (fun () ->
        Sim.Prof.enable ();
        Sim.Prof.span "work" (fun () ->
            Sim.Prof.count "zeta";
            Sim.Prof.count ~by:4 "alpha";
            Sim.Prof.count ~by:2 "zeta");
        let report = Sim.Prof.capture () in
        let work =
          match find_span "work" (Sim.Prof.root report) with
          | Some s -> s
          | None -> Alcotest.fail "work span missing"
        in
        Alcotest.(check (list (pair string int)))
          "sorted counters"
          [ ("alpha", 4); ("zeta", 3) ]
          work.Sim.Prof.counters);
    Alcotest.test_case "exports carry the schemas and folded stacks" `Quick
      (fun () ->
        Sim.Prof.enable ();
        Sim.Prof.span "a" (fun () -> Sim.Prof.span "b" (fun () -> ()));
        let report = Sim.Prof.capture () in
        let json = Sim.Prof.report_json report in
        let structural = Sim.Prof.structural_json report in
        Alcotest.(check bool) "report schema" true
          (Astring_contains.contains json {|"schema":"urcgc.prof/1"|});
        Alcotest.(check bool) "structural schema" true
          (Astring_contains.contains structural
             {|"schema":"urcgc.prof.structural/1"|});
        Alcotest.(check bool) "structural has no times" true
          (not (Astring_contains.contains structural "ns"));
        (match Sim.Json.parse json with
        | Ok _ -> ()
        | Error e -> Alcotest.fail ("report_json unparsable: " ^ e));
        let folded = Sim.Prof.folded report in
        Alcotest.(check bool) "nested path present" true
          (Astring_contains.contains folded "root;a;b ");
        String.split_on_char '\n' folded
        |> List.filter (fun l -> l <> "")
        |> List.iter (fun line ->
               match String.rindex_opt line ' ' with
               | None -> Alcotest.fail ("folded line has no value: " ^ line)
               | Some i ->
                   let v =
                     String.sub line (i + 1) (String.length line - i - 1)
                   in
                   Alcotest.(check bool)
                     ("integer self-ns in " ^ line)
                     true
                     (int_of_string_opt v <> None)));
  ]

(* -- non-interference on the built binary -------------------------------- *)

let profile_cli_tests =
  [
    Alcotest.test_case "campaign JSON is byte-identical with --profile" `Slow
      (fun () ->
        with_temp_file (fun plain ->
            with_temp_file (fun profiled ->
                with_temp_file (fun prof ->
                    Alcotest.(check int) "plain run" 0
                      (run_cli
                         (Printf.sprintf
                            "campaign --budget 5 --seed 1 --out %s"
                            (Filename.quote plain)));
                    Alcotest.(check int) "profiled run" 0
                      (run_cli
                         (Printf.sprintf
                            "campaign --budget 5 --seed 1 --out %s --profile \
                             %s"
                            (Filename.quote profiled) (Filename.quote prof)));
                    Alcotest.(check string) "campaign JSON unchanged"
                      (read_file plain) (read_file profiled);
                    let report = read_file prof in
                    Alcotest.(check bool) "profile report written" true
                      (Astring_contains.contains report
                         {|"schema":"urcgc.prof/1"|});
                    Alcotest.(check bool) "campaign spans present" true
                      (Astring_contains.contains report {|"campaign.run"|})))));
    Alcotest.test_case "explore JSON is byte-identical with --profile" `Slow
      (fun () ->
        with_temp_file (fun plain ->
            with_temp_file (fun profiled ->
                with_temp_file (fun prof ->
                    let base = "explore -n 3 --messages 2 --max-schedules 200" in
                    Alcotest.(check int) "plain run" 0
                      (run_cli
                         (Printf.sprintf "%s --out %s" base
                            (Filename.quote plain)));
                    Alcotest.(check int) "profiled run" 0
                      (run_cli
                         (Printf.sprintf "%s --out %s --profile %s" base
                            (Filename.quote profiled) (Filename.quote prof)));
                    Alcotest.(check string) "explore JSON unchanged"
                      (read_file plain) (read_file profiled);
                    Alcotest.(check bool) "pruning counter attributed" true
                      (Astring_contains.contains (read_file prof)
                         {|"schedules_explored"|})))));
    Alcotest.test_case "trace JSONL is byte-identical with --profile" `Slow
      (fun () ->
        with_temp_file (fun plain ->
            with_temp_file (fun profiled ->
                with_temp_file (fun prof ->
                    let base =
                      "trace -n 4 -K 2 --rate 1 --messages 3 --seed 5 \
                       --max-rtd 30"
                    in
                    Alcotest.(check int) "plain run" 0
                      (run_cli
                         (Printf.sprintf "%s --out %s" base
                            (Filename.quote plain)));
                    Alcotest.(check int) "profiled run" 0
                      (run_cli
                         (Printf.sprintf "%s --out %s --profile %s" base
                            (Filename.quote profiled) (Filename.quote prof)));
                    Alcotest.(check string) "trace JSONL unchanged"
                      (read_file plain) (read_file profiled)))));
    Alcotest.test_case
      "structural report matches the committed expectation" `Slow (fun () ->
        with_temp_file (fun out ->
            with_temp_file (fun prof ->
                Alcotest.(check int) "profiled campaign" 0
                  (run_cli
                     (Printf.sprintf
                        "campaign --budget 5 --seed 1 --out %s --profile %s"
                        (Filename.quote out) (Filename.quote prof)));
                Alcotest.(check string) "structural report pinned"
                  (read_file
                     (Filename.concat "expect"
                        "profile_campaign_structural.json"))
                  (read_file (prof ^ ".structural")))));
    Alcotest.test_case "profiled campaign run is self-consistent" `Slow
      (fun () ->
        with_temp_file (fun out ->
            with_temp_file (fun prof ->
                Alcotest.(check int) "profiled campaign" 0
                  (run_cli
                     (Printf.sprintf
                        "campaign --budget 5 --seed 1 --out %s --profile %s"
                        (Filename.quote out) (Filename.quote prof)));
                let folded = read_file (prof ^ ".folded") in
                Alcotest.(check bool) "folded stacks non-empty" true
                  (String.length folded > 0);
                Alcotest.(check bool) "member spans in folded output" true
                  (Astring_contains.contains folded "member."))));
  ]

let suite =
  [ ("prof.unit", unit_tests); ("prof.cli", profile_cli_tests) ]
