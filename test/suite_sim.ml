(* Tests for the simulation kernel: time, heap, rng, engine, tracer. *)

let ticks_tests =
  let open Sim.Ticks in
  [
    Alcotest.test_case "per_rtd is even" `Quick (fun () ->
        Alcotest.(check int) "even" 0 (per_rtd mod 2));
    Alcotest.test_case "round is half an rtd" `Quick (fun () ->
        Alcotest.(check int) "half" per_rtd (2 * to_int round));
    Alcotest.test_case "subrun is one rtd" `Quick (fun () ->
        Alcotest.(check int) "rtd" per_rtd (to_int subrun));
    Alcotest.test_case "of_rtd/to_rtd roundtrip" `Quick (fun () ->
        Alcotest.(check (float 1e-9)) "3.5" 3.5 (to_rtd (of_rtd 3.5)));
    Alcotest.test_case "of_int rejects negatives" `Quick (fun () ->
        Alcotest.check_raises "negative" (Invalid_argument "Ticks.of_int: negative")
          (fun () -> ignore (of_int (-1))));
    Alcotest.test_case "add and diff" `Quick (fun () ->
        let a = of_int 30 and b = of_int 12 in
        Alcotest.(check int) "add" 42 (to_int (add a b));
        Alcotest.(check int) "diff" 18 (to_int (diff a b)));
    Alcotest.test_case "diff refuses negative result" `Quick (fun () ->
        Alcotest.check_raises "negative"
          (Invalid_argument "Ticks.diff: negative result") (fun () ->
            ignore (diff (of_int 1) (of_int 2))));
    Alcotest.test_case "mul" `Quick (fun () ->
        Alcotest.(check int) "mul" 500 (to_int (mul (of_int 100) 5)));
    Alcotest.test_case "comparisons" `Quick (fun () ->
        Alcotest.(check bool) "lt" true (of_int 1 < of_int 2);
        Alcotest.(check bool) "le" true (of_int 2 <= of_int 2);
        Alcotest.(check bool) "ge" true (of_int 2 >= of_int 2);
        Alcotest.(check bool) "eq" true (equal (of_int 7) (of_int 7)));
  ]

let heap_tests =
  [
    Alcotest.test_case "empty heap" `Quick (fun () ->
        let h : int Sim.Heap.t = Sim.Heap.create () in
        Alcotest.(check bool) "empty" true (Sim.Heap.is_empty h);
        Alcotest.(check (option unit)) "no peek" None
          (Option.map (fun _ -> ()) (Sim.Heap.peek h));
        Alcotest.(check (option unit)) "no pop" None
          (Option.map (fun _ -> ()) (Sim.Heap.pop h)));
    Alcotest.test_case "pops in time order" `Quick (fun () ->
        let h = Sim.Heap.create () in
        List.iteri
          (fun i time ->
            Sim.Heap.push h ~time:(Sim.Ticks.of_int time) ~seq:i time)
          [ 30; 10; 20; 5; 25 ];
        let order = ref [] in
        let rec drain () =
          match Sim.Heap.pop h with
          | None -> ()
          | Some (_, _, v) ->
              order := v :: !order;
              drain ()
        in
        drain ();
        Alcotest.(check (list int)) "sorted" [ 5; 10; 20; 25; 30 ]
          (List.rev !order));
    Alcotest.test_case "equal times break ties by seq" `Quick (fun () ->
        let h = Sim.Heap.create () in
        List.iteri
          (fun i v -> Sim.Heap.push h ~time:(Sim.Ticks.of_int 7) ~seq:i v)
          [ "a"; "b"; "c" ];
        let pop () =
          match Sim.Heap.pop h with Some (_, _, v) -> v | None -> "?"
        in
        (* bind explicitly: list literals evaluate right to left *)
        let first = pop () in
        let second = pop () in
        let third = pop () in
        Alcotest.(check (list string)) "fifo at same time" [ "a"; "b"; "c" ]
          [ first; second; third ]);
    Alcotest.test_case "length tracks push/pop" `Quick (fun () ->
        let h = Sim.Heap.create () in
        for i = 1 to 100 do
          Sim.Heap.push h ~time:(Sim.Ticks.of_int (i mod 10)) ~seq:i i
        done;
        Alcotest.(check int) "100" 100 (Sim.Heap.length h);
        ignore (Sim.Heap.pop h);
        Alcotest.(check int) "99" 99 (Sim.Heap.length h);
        Sim.Heap.clear h;
        Alcotest.(check int) "0" 0 (Sim.Heap.length h));
    Alcotest.test_case "push after clear keeps working in order" `Quick
      (fun () ->
        let h = Sim.Heap.create () in
        for i = 1 to 50 do
          Sim.Heap.push h ~time:(Sim.Ticks.of_int i) ~seq:i i
        done;
        Sim.Heap.clear h;
        Alcotest.(check bool) "empty after clear" true (Sim.Heap.is_empty h);
        Alcotest.(check (option unit)) "no peek" None
          (Option.map (fun _ -> ()) (Sim.Heap.peek h));
        List.iteri
          (fun i time ->
            Sim.Heap.push h ~time:(Sim.Ticks.of_int time) ~seq:i time)
          [ 9; 3; 7; 1; 5 ];
        let rec drain acc =
          match Sim.Heap.pop h with
          | None -> List.rev acc
          | Some (_, _, v) -> drain (v :: acc)
        in
        Alcotest.(check (list int)) "sorted after clear" [ 1; 3; 5; 7; 9 ]
          (drain []));
    Alcotest.test_case "clear and pop release stored entries" `Quick (fun () ->
        (* The backing array survives clear (capacity is kept), but the
           entries must not: anything pushed is unreachable afterwards. *)
        let h = Sim.Heap.create () in
        let count = 12 in
        let weak = Weak.create (2 * count) in
        for i = 0 to count - 1 do
          let v = Bytes.make 32 (Char.chr (65 + (i mod 26))) in
          Weak.set weak i (Some v);
          Sim.Heap.push h ~time:(Sim.Ticks.of_int i) ~seq:i v
        done;
        Sim.Heap.clear h;
        Gc.full_major ();
        for i = 0 to count - 1 do
          Alcotest.(check bool)
            (Printf.sprintf "cleared entry %d released" i)
            false (Weak.check weak i)
        done;
        (* Same for pop: a drained heap keeps no reference to its values. *)
        for i = 0 to count - 1 do
          let v = Bytes.make 32 (Char.chr (97 + (i mod 26))) in
          Weak.set weak (count + i) (Some v);
          Sim.Heap.push h ~time:(Sim.Ticks.of_int i) ~seq:i v
        done;
        while not (Sim.Heap.is_empty h) do
          ignore (Sim.Heap.pop h)
        done;
        Gc.full_major ();
        for i = 0 to count - 1 do
          Alcotest.(check bool)
            (Printf.sprintf "popped entry %d released" i)
            false
            (Weak.check weak (count + i))
        done);
  ]

let heap_property =
  QCheck.Test.make ~name:"heap pops nondecreasing times" ~count:200
    QCheck.(list (pair small_nat small_nat))
    (fun pairs ->
      let h = Sim.Heap.create () in
      List.iteri
        (fun i (t, v) -> Sim.Heap.push h ~time:(Sim.Ticks.of_int t) ~seq:i v)
        pairs;
      let rec drain last acc =
        match Sim.Heap.pop h with
        | None -> acc
        | Some (time, _, _) ->
            let t = Sim.Ticks.to_int time in
            if t < last then false else drain t acc
      in
      drain min_int true)

let rng_tests =
  [
    Alcotest.test_case "deterministic for equal seeds" `Quick (fun () ->
        let a = Sim.Rng.create ~seed:7 and b = Sim.Rng.create ~seed:7 in
        for _ = 1 to 100 do
          Alcotest.(check int) "same" (Sim.Rng.int a 1000) (Sim.Rng.int b 1000)
        done);
    Alcotest.test_case "different seeds diverge" `Quick (fun () ->
        let a = Sim.Rng.create ~seed:1 and b = Sim.Rng.create ~seed:2 in
        let sa = List.init 16 (fun _ -> Sim.Rng.int a 1_000_000) in
        let sb = List.init 16 (fun _ -> Sim.Rng.int b 1_000_000) in
        Alcotest.(check bool) "diverge" true (sa <> sb));
    Alcotest.test_case "split yields independent stream" `Quick (fun () ->
        let a = Sim.Rng.create ~seed:7 in
        let c = Sim.Rng.split a in
        let sa = List.init 16 (fun _ -> Sim.Rng.int a 1_000_000) in
        let sc = List.init 16 (fun _ -> Sim.Rng.int c 1_000_000) in
        Alcotest.(check bool) "diverge" true (sa <> sc));
    Alcotest.test_case "int respects bound" `Quick (fun () ->
        let rng = Sim.Rng.create ~seed:3 in
        for _ = 1 to 10_000 do
          let v = Sim.Rng.int rng 17 in
          Alcotest.(check bool) "in range" true (v >= 0 && v < 17)
        done);
    Alcotest.test_case "int rejects non-positive bound" `Quick (fun () ->
        let rng = Sim.Rng.create ~seed:3 in
        Alcotest.check_raises "zero"
          (Invalid_argument "Rng.int: bound must be positive") (fun () ->
            ignore (Sim.Rng.int rng 0)));
    Alcotest.test_case "float in [0, bound)" `Quick (fun () ->
        let rng = Sim.Rng.create ~seed:5 in
        for _ = 1 to 10_000 do
          let v = Sim.Rng.float rng 2.5 in
          Alcotest.(check bool) "in range" true (v >= 0.0 && v < 2.5)
        done);
    Alcotest.test_case "bernoulli edge cases" `Quick (fun () ->
        let rng = Sim.Rng.create ~seed:5 in
        Alcotest.(check bool) "p=0" false (Sim.Rng.bool rng 0.0);
        Alcotest.(check bool) "p=1" true (Sim.Rng.bool rng 1.0));
    Alcotest.test_case "bernoulli frequency near p" `Quick (fun () ->
        let rng = Sim.Rng.create ~seed:11 in
        let hits = ref 0 in
        let trials = 100_000 in
        for _ = 1 to trials do
          if Sim.Rng.bool rng 0.3 then incr hits
        done;
        let freq = float_of_int !hits /. float_of_int trials in
        Alcotest.(check bool) "within 2%" true (Float.abs (freq -. 0.3) < 0.02));
    Alcotest.test_case "pick uniform choice" `Quick (fun () ->
        let rng = Sim.Rng.create ~seed:13 in
        let arr = [| 1; 2; 3 |] in
        for _ = 1 to 100 do
          let v = Sim.Rng.pick rng arr in
          Alcotest.(check bool) "member" true (List.mem v [ 1; 2; 3 ])
        done);
    Alcotest.test_case "shuffle keeps multiset" `Quick (fun () ->
        let rng = Sim.Rng.create ~seed:17 in
        let arr = Array.init 50 Fun.id in
        Sim.Rng.shuffle rng arr;
        let sorted = Array.copy arr in
        Array.sort compare sorted;
        Alcotest.(check (array int)) "permutation" (Array.init 50 Fun.id) sorted);
    Alcotest.test_case "exponential positive, near mean" `Quick (fun () ->
        let rng = Sim.Rng.create ~seed:19 in
        let sum = ref 0.0 in
        let trials = 50_000 in
        for _ = 1 to trials do
          let v = Sim.Rng.exponential rng ~mean:4.0 in
          Alcotest.(check bool) "nonneg" true (v >= 0.0);
          sum := !sum +. v
        done;
        let mean = !sum /. float_of_int trials in
        Alcotest.(check bool) "mean near 4" true (Float.abs (mean -. 4.0) < 0.2));
    Alcotest.test_case "geometric at p=1 is 0" `Quick (fun () ->
        let rng = Sim.Rng.create ~seed:23 in
        Alcotest.(check int) "0" 0 (Sim.Rng.geometric rng ~p:1.0));
    Alcotest.test_case "limb arithmetic matches Int64 splitmix64" `Quick
      (fun () ->
        (* The production Rng carries its 64-bit state as two unboxed
           32-bit halves (allocation-free draws); this boxed Int64 oracle
           is the original formulation.  Their streams must be bit-equal
           for every draw shape, or every fixed-seed simulation output
           shifts. *)
        let module Ref = struct
          type t = { mutable state : int64 }

          let golden_gamma = 0x9E3779B97F4A7C15L

          let mix z =
            let z =
              Int64.(
                mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L)
            in
            let z =
              Int64.(
                mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL)
            in
            Int64.(logxor z (shift_right_logical z 31))

          let create ~seed = { state = mix (Int64.of_int seed) }

          let int64 t =
            t.state <- Int64.add t.state golden_gamma;
            mix t.state

          let int t bound =
            let mask = Int64.max_int in
            let rec draw () =
              let v = Int64.to_int (Int64.logand (int64 t) mask) in
              let r = v mod bound in
              if v - r + (bound - 1) < 0 then draw () else r
            in
            draw ()

          let float t bound =
            let bits = Int64.shift_right_logical (int64 t) 11 in
            Int64.to_float bits /. 9007199254740992.0 *. bound
        end in
        List.iter
          (fun seed ->
            let a = Sim.Rng.create ~seed in
            let b = Ref.create ~seed in
            for _ = 1 to 200 do
              Alcotest.(check int64)
                "raw" (Ref.int64 b) (Sim.Rng.int64 a)
            done;
            for bound = 1 to 50 do
              Alcotest.(check int)
                "bounded" (Ref.int b bound) (Sim.Rng.int a bound)
            done;
            for _ = 1 to 200 do
              Alcotest.(check (float 0.0))
                "float" (Ref.float b 1.0) (Sim.Rng.float a 1.0)
            done)
          [ 0; 1; 7; 42; 123456789; max_int; min_int; -1 ]);
  ]

let engine_tests =
  [
    Alcotest.test_case "runs events in time order" `Quick (fun () ->
        let engine = Sim.Engine.create () in
        let log = ref [] in
        let at t v =
          ignore
            (Sim.Engine.schedule engine ~at:(Sim.Ticks.of_int t) (fun () ->
                 log := v :: !log))
        in
        at 30 "c";
        at 10 "a";
        at 20 "b";
        Sim.Engine.run engine;
        Alcotest.(check (list string)) "order" [ "a"; "b"; "c" ] (List.rev !log));
    Alcotest.test_case "same-time events run in scheduling order" `Quick
      (fun () ->
        let engine = Sim.Engine.create () in
        let log = ref [] in
        List.iter
          (fun v ->
            ignore
              (Sim.Engine.schedule engine ~at:(Sim.Ticks.of_int 5) (fun () ->
                   log := v :: !log)))
          [ 1; 2; 3; 4 ];
        Sim.Engine.run engine;
        Alcotest.(check (list int)) "fifo" [ 1; 2; 3; 4 ] (List.rev !log));
    Alcotest.test_case "now advances to event time" `Quick (fun () ->
        let engine = Sim.Engine.create () in
        let seen = ref (-1) in
        ignore
          (Sim.Engine.schedule engine ~at:(Sim.Ticks.of_int 42) (fun () ->
               seen := Sim.Ticks.to_int (Sim.Engine.now engine)));
        Sim.Engine.run engine;
        Alcotest.(check int) "42" 42 !seen);
    Alcotest.test_case "cannot schedule in the past" `Quick (fun () ->
        let engine = Sim.Engine.create () in
        ignore (Sim.Engine.schedule engine ~at:(Sim.Ticks.of_int 10) (fun () -> ()));
        Sim.Engine.run engine;
        Alcotest.check_raises "past"
          (Invalid_argument "Engine.schedule: event in the past") (fun () ->
            ignore
              (Sim.Engine.schedule engine ~at:(Sim.Ticks.of_int 5) (fun () -> ()))));
    Alcotest.test_case "cancel prevents execution" `Quick (fun () ->
        let engine = Sim.Engine.create () in
        let fired = ref false in
        let handle =
          Sim.Engine.schedule engine ~at:(Sim.Ticks.of_int 10) (fun () ->
              fired := true)
        in
        Sim.Engine.cancel handle;
        Sim.Engine.run engine;
        Alcotest.(check bool) "not fired" false !fired);
    Alcotest.test_case "run ~until leaves later events queued" `Quick (fun () ->
        let engine = Sim.Engine.create () in
        let fired = ref [] in
        let at t =
          ignore
            (Sim.Engine.schedule engine ~at:(Sim.Ticks.of_int t) (fun () ->
                 fired := t :: !fired))
        in
        at 10;
        at 90;
        Sim.Engine.run engine ~until:(Sim.Ticks.of_int 50);
        Alcotest.(check (list int)) "only early" [ 10 ] (List.rev !fired);
        Alcotest.(check int) "clock at limit" 50
          (Sim.Ticks.to_int (Sim.Engine.now engine));
        Alcotest.(check int) "one pending" 1 (Sim.Engine.pending engine);
        Sim.Engine.run engine;
        Alcotest.(check (list int)) "rest runs" [ 10; 90 ] (List.rev !fired));
    Alcotest.test_case "events can schedule events" `Quick (fun () ->
        let engine = Sim.Engine.create () in
        let count = ref 0 in
        let rec chain n =
          if n > 0 then
            ignore
              (Sim.Engine.schedule_after engine ~delay:(Sim.Ticks.of_int 1)
                 (fun () ->
                   incr count;
                   chain (n - 1)))
        in
        chain 10;
        Sim.Engine.run engine;
        Alcotest.(check int) "10 links" 10 !count;
        Alcotest.(check int) "clock 10" 10
          (Sim.Ticks.to_int (Sim.Engine.now engine)));
    Alcotest.test_case "stop interrupts run" `Quick (fun () ->
        let engine = Sim.Engine.create () in
        let count = ref 0 in
        for i = 1 to 10 do
          ignore
            (Sim.Engine.schedule engine ~at:(Sim.Ticks.of_int i) (fun () ->
                 incr count;
                 if !count = 3 then Sim.Engine.stop engine))
        done;
        Sim.Engine.run engine;
        Alcotest.(check int) "stopped at 3" 3 !count);
    Alcotest.test_case "step returns false when empty" `Quick (fun () ->
        let engine = Sim.Engine.create () in
        Alcotest.(check bool) "empty" false (Sim.Engine.step engine));
  ]

let tracer_tests =
  [
    Alcotest.test_case "emit and read back" `Quick (fun () ->
        let tracer = Sim.Tracer.create () in
        Sim.Tracer.emit tracer ~time:(Sim.Ticks.of_int 5) ~source:"p0" "hello";
        Sim.Tracer.emitf tracer ~time:(Sim.Ticks.of_int 6) ~source:"p1" "%d+%d"
          1 2;
        let events = Sim.Tracer.events tracer in
        Alcotest.(check int) "2 events" 2 (List.length events);
        Alcotest.(check string) "fmt" "1+2"
          (List.nth events 1).Sim.Tracer.message);
    Alcotest.test_case "capacity bounds retention" `Quick (fun () ->
        let tracer = Sim.Tracer.create ~capacity:3 () in
        for i = 1 to 10 do
          Sim.Tracer.emit tracer ~time:(Sim.Ticks.of_int i) ~source:"s"
            (string_of_int i)
        done;
        let events = Sim.Tracer.events tracer in
        Alcotest.(check int) "3 retained" 3 (List.length events);
        Alcotest.(check int) "10 total" 10 (Sim.Tracer.count tracer);
        Alcotest.(check string) "oldest dropped" "8"
          (List.hd events).Sim.Tracer.message);
    Alcotest.test_case "null tracer discards" `Quick (fun () ->
        Sim.Tracer.emit Sim.Tracer.null ~time:Sim.Ticks.zero ~source:"s" "x";
        Alcotest.(check int) "nothing" 0 (Sim.Tracer.count Sim.Tracer.null));
    Alcotest.test_case "find" `Quick (fun () ->
        let tracer = Sim.Tracer.create () in
        Sim.Tracer.emit tracer ~time:Sim.Ticks.zero ~source:"a" "one";
        Sim.Tracer.emit tracer ~time:Sim.Ticks.zero ~source:"b" "two";
        let found =
          Sim.Tracer.find tracer ~f:(fun e -> e.Sim.Tracer.source = "b")
        in
        Alcotest.(check (option string)) "two" (Some "two")
          (Option.map (fun e -> e.Sim.Tracer.message) found));
  ]

let suite =
  [
    ("sim.ticks", ticks_tests);
    ("sim.heap", heap_tests @ [ QCheck_alcotest.to_alcotest heap_property ]);
    ("sim.rng", rng_tests);
    ("sim.engine", engine_tests);
    ("sim.tracer", tracer_tests);
  ]
