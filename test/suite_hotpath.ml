(* Tests for the optimized delivery hot path (dependency-indexed waiting
   list, dense history rings):

   - History purge regression tests, including purging at exactly the
     highest stored seq (a case the pre-optimization code mishandled with a
     dead match arm);
   - the incrementally maintained per-origin oldest against brute-force
     recomputation from [to_list];
   - a randomized equivalence property driving [Waiting_list_reference]
     (the old O(W)-scan implementation, kept as an executable spec) and the
     production [Causal.Waiting_list] with identical operation sequences. *)

let node n = Net.Node_id.of_int n
let mid o s = Causal.Mid.make ~origin:(node o) ~seq:s

let msg ?(deps = []) o s =
  Causal.Causal_msg.make ~mid:(mid o s) ~deps ~payload_size:8 (o, s)

let mid_testable = Alcotest.testable Causal.Mid.pp Causal.Mid.equal

(* -- history purge regressions ------------------------------------------ *)

let history_tests =
  [
    Alcotest.test_case "purge at exactly the highest stored seq" `Quick
      (fun () ->
        let h = Causal.History.create ~n:2 in
        for s = 1 to 5 do
          Causal.History.store h (msg 0 s)
        done;
        Alcotest.(check int) "removed all five" 5
          (Causal.History.purge_upto h ~origin:(node 0) ~seq:5);
        Alcotest.(check bool) "seq 5 gone" false
          (Causal.History.mem h (mid 0 5));
        Alcotest.(check int) "origin empty" 0
          (Causal.History.entry_length h (node 0));
        Alcotest.(check int) "history empty" 0 (Causal.History.length h));
    Alcotest.test_case "purge at an interior seq keeps the suffix" `Quick
      (fun () ->
        let h = Causal.History.create ~n:2 in
        for s = 1 to 5 do
          Causal.History.store h (msg 0 s)
        done;
        Alcotest.(check int) "removed prefix" 3
          (Causal.History.purge_upto h ~origin:(node 0) ~seq:3);
        Alcotest.(check bool) "seq 3 gone" false
          (Causal.History.mem h (mid 0 3));
        Alcotest.(check bool) "seq 4 kept" true
          (Causal.History.mem h (mid 0 4));
        Alcotest.(check int) "max_seq unchanged" 5
          (Causal.History.max_seq h ~origin:(node 0));
        Alcotest.(check int) "two left" 2
          (Causal.History.entry_length h (node 0)));
    Alcotest.test_case "purge counts only stored slots in a sparse window"
      `Quick (fun () ->
        let h = Causal.History.create ~n:2 in
        List.iter (fun s -> Causal.History.store h (msg 0 s)) [ 1; 4; 7 ];
        Alcotest.(check int) "two of the first four seqs stored" 2
          (Causal.History.purge_upto h ~origin:(node 0) ~seq:4);
        Alcotest.(check bool) "seq 7 kept" true
          (Causal.History.mem h (mid 0 7));
        Alcotest.(check int) "one left" 1
          (Causal.History.entry_length h (node 0)));
    Alcotest.test_case "store after a full purge restarts the window" `Quick
      (fun () ->
        let h = Causal.History.create ~n:2 in
        for s = 1 to 3 do
          Causal.History.store h (msg 0 s)
        done;
        ignore (Causal.History.purge_upto h ~origin:(node 0) ~seq:3);
        Causal.History.store h (msg 0 9);
        Alcotest.(check bool) "seq 9 stored" true
          (Causal.History.mem h (mid 0 9));
        Alcotest.(check int) "max_seq follows" 9
          (Causal.History.max_seq h ~origin:(node 0));
        Alcotest.(check (list mid_testable)) "range sees only seq 9"
          [ mid 0 9 ]
          (List.map
             (fun m -> m.Causal.Causal_msg.mid)
             (Causal.History.range h ~origin:(node 0) ~lo:1 ~hi:20)));
  ]

(* -- incremental oldest vs brute force ---------------------------------- *)

let brute_oldest_vector wl ~n =
  let waiting = Causal.Waiting_list.to_list wl in
  Array.init n (fun o ->
      List.fold_left
        (fun acc m ->
          let mid = m.Causal.Causal_msg.mid in
          if Net.Node_id.to_int (Causal.Mid.origin mid) <> o then acc
          else
            match acc with
            | Some best when Causal.Mid.seq best <= Causal.Mid.seq mid -> acc
            | Some _ | None -> Some mid)
        None waiting)

let check_oldest_matches_brute ~ctx wl ~n =
  let fast = Causal.Waiting_list.oldest_vector wl in
  let brute = brute_oldest_vector wl ~n in
  for o = 0 to n - 1 do
    Alcotest.(check (option mid_testable))
      (Printf.sprintf "%s: oldest of origin %d" ctx o)
      brute.(o) fast.(o)
  done

let oldest_tests =
  [
    Alcotest.test_case "incremental oldest matches brute force" `Quick
      (fun () ->
        let n = 4 in
        let rng = Random.State.make [| 0x01de57 |] in
        let wl = Causal.Waiting_list.create ~n in
        let delivery = Causal.Delivery.create ~n in
        for step = 1 to 400 do
          let ctx = Printf.sprintf "step %d" step in
          (match Random.State.int rng 100 with
          | r when r < 55 ->
              let o = Random.State.int rng n in
              Causal.Waiting_list.add wl
                (msg o (1 + Random.State.int rng 10))
          | r when r < 70 ->
              Causal.Waiting_list.remove wl
                (mid (Random.State.int rng n) (1 + Random.State.int rng 10))
          | r when r < 85 ->
              ignore
                (Causal.Waiting_list.discard_from wl
                   ~origin:(node (Random.State.int rng n))
                   ~seq:(1 + Random.State.int rng 10))
          | _ -> (
              match Causal.Waiting_list.take_processable wl delivery with
              | Some m -> Causal.Delivery.mark delivery m.Causal.Causal_msg.mid
              | None -> ()));
          check_oldest_matches_brute ~ctx wl ~n
        done);
  ]

(* -- randomized equivalence against the reference model ------------------ *)

let equivalence_runs = 120
let equivalence_ops = 60

let run_equivalence seed =
  let n = 4 in
  let max_seq = 12 in
  let rng = Random.State.make [| 0x5eed; seed |] in
  let reference = Waiting_list_reference.create ~n in
  let wl = Causal.Waiting_list.create ~n in
  let delivery = Causal.Delivery.create ~n in
  (* Alcotest prints this message on failure, so the failing seed is always
     recoverable: rerun [run_equivalence seed] alone to shrink by hand. *)
  let fail fmt =
    Format.kasprintf
      (fun detail ->
        Alcotest.failf "equivalence mismatch (failing seed %d): %s" seed
          detail)
      fmt
  in
  let rand_origin () = Random.State.int rng n in
  let rand_seq () = 1 + Random.State.int rng max_seq in
  let rand_msg () =
    let o = rand_origin () and s = rand_seq () in
    let deps =
      List.filter_map
        (fun o' ->
          if o' = o || Random.State.int rng 4 > 0 then None
          else Some (mid o' (rand_seq ())))
        (List.init n Fun.id)
    in
    msg ~deps o s
  in
  let mids_of l = List.map (fun m -> m.Causal.Causal_msg.mid) l in
  let check_state () =
    let la = Waiting_list_reference.length reference in
    let lb = Causal.Waiting_list.length wl in
    if la <> lb then fail "length %d (reference) vs %d" la lb;
    let ta = mids_of (Waiting_list_reference.to_list reference) in
    let tb = mids_of (Causal.Waiting_list.to_list wl) in
    if not (List.equal Causal.Mid.equal ta tb) then
      fail "to_list [%a] (reference) vs [%a]"
        (Format.pp_print_list Causal.Mid.pp)
        ta
        (Format.pp_print_list Causal.Mid.pp)
        tb;
    let va = Waiting_list_reference.oldest_vector reference in
    let vb = Causal.Waiting_list.oldest_vector wl in
    for o = 0 to n - 1 do
      if not (Option.equal Causal.Mid.equal va.(o) vb.(o)) then
        fail "oldest_vector origin %d: %a (reference) vs %a" o
          (Format.pp_print_option Causal.Mid.pp)
          va.(o)
          (Format.pp_print_option Causal.Mid.pp)
          vb.(o)
    done
  in
  for _op = 1 to equivalence_ops do
    (match Random.State.int rng 100 with
    | r when r < 40 ->
        let m = rand_msg () in
        Waiting_list_reference.add reference m;
        Causal.Waiting_list.add wl m
    | r when r < 50 ->
        let victim = mid (rand_origin ()) (rand_seq ()) in
        let ma = Waiting_list_reference.mem reference victim in
        let mb = Causal.Waiting_list.mem wl victim in
        if ma <> mb then fail "mem %a: %b (reference) vs %b" Causal.Mid.pp victim ma mb;
        Waiting_list_reference.remove reference victim;
        Causal.Waiting_list.remove wl victim
    | r when r < 65 ->
        let origin = node (rand_origin ()) and seq = rand_seq () in
        let da = Waiting_list_reference.discard_from reference ~origin ~seq in
        let db = Causal.Waiting_list.discard_from wl ~origin ~seq in
        if not (List.equal Causal.Mid.equal da db) then
          fail "discard_from (%a,%d): [%a] (reference) vs [%a]" Net.Node_id.pp
            origin seq
            (Format.pp_print_list Causal.Mid.pp)
            da
            (Format.pp_print_list Causal.Mid.pp)
            db
    | r when r < 90 ->
        let rec drain () =
          let a = Waiting_list_reference.take_processable reference delivery in
          let b = Causal.Waiting_list.take_processable wl delivery in
          match (a, b) with
          | None, None -> ()
          | Some ma, Some mb
            when Causal.Mid.equal ma.Causal.Causal_msg.mid
                   mb.Causal.Causal_msg.mid ->
              Causal.Delivery.mark delivery ma.Causal.Causal_msg.mid;
              drain ()
          | a, b ->
              let pp ppf = function
                | None -> Format.pp_print_string ppf "None"
                | Some m -> Causal.Mid.pp ppf m.Causal.Causal_msg.mid
              in
              fail "take_processable %a (reference) vs %a" pp a pp b
        in
        drain ()
    | _ ->
        (* Shared delivery state jumps ahead without processing, exercising
           the optimized list's lazy resynchronization. *)
        Causal.Delivery.force_skip_to delivery
          ~origin:(node (rand_origin ()))
          ~seq:(rand_seq ()));
    check_state ()
  done

let equivalence_tests =
  [
    Alcotest.test_case
      (Printf.sprintf "waiting list equals reference model (%d randomized runs)"
         equivalence_runs)
      `Quick
      (fun () ->
        for seed = 0 to equivalence_runs - 1 do
          run_equivalence seed
        done);
  ]

(* -- member equivalence: sink emission vs the list-building reference ----

   [Member_reference] is the pre-sink implementation kept verbatim as an
   executable spec.  A lockstep twin of every node runs under both
   implementations; every operation must produce identical action streams
   (polymorphic equality covers the full PDU payloads, dependency arrays
   included) and identical observable state.  The "network" is a queue of
   in-flight bodies with random delivery order and random drops, so
   recovery, decisions and departures are all exercised. *)

let member_equivalence_runs = 40
let member_equivalence_ops = 90

let run_member_equivalence seed =
  let n = 4 in
  let config = Urcgc.Config.make ~n () in
  let rng = Random.State.make [| 0xd0c5; seed |] in
  let prod = Array.init n (fun i -> Urcgc.Member.create config (node i)) in
  let refm = Array.init n (fun i -> Member_reference.create config (node i)) in
  let inflight = ref [] in
  let payload = ref 0 in
  let subrun = ref 0 in
  let mid_phase = ref false in
  let fail fmt =
    Format.kasprintf
      (fun detail ->
        Alcotest.failf "member equivalence mismatch (failing seed %d): %s"
          seed detail)
      fmt
  in
  let check_actions ctx i (pa : int Urcgc.Member.action list) ra =
    if pa <> ra then fail "%s: node %d action streams differ" ctx i
  in
  let check_state ctx i =
    let p = prod.(i) and r = refm.(i) in
    if Urcgc.Member.active p <> Member_reference.active r then
      fail "%s: node %d active" ctx i;
    if Urcgc.Member.left_reason p <> Member_reference.left_reason r then
      fail "%s: node %d left_reason" ctx i;
    if Urcgc.Member.history_length p <> Member_reference.history_length r then
      fail "%s: node %d history_length" ctx i;
    if Urcgc.Member.waiting_length p <> Member_reference.waiting_length r then
      fail "%s: node %d waiting_length" ctx i;
    if Urcgc.Member.processed_count p <> Member_reference.processed_count r
    then fail "%s: node %d processed_count" ctx i;
    if Urcgc.Member.sap_backlog p <> Member_reference.sap_backlog r then
      fail "%s: node %d sap_backlog" ctx i;
    for o = 0 to n - 1 do
      if
        Urcgc.Member.last_processed p (node o)
        <> Member_reference.last_processed r (node o)
      then fail "%s: node %d last_processed of %d" ctx i o
    done
  in
  let route i actions =
    List.iter
      (fun action ->
        match action with
        | Urcgc.Member.Broadcast body ->
            for j = 0 to n - 1 do
              if j <> i then inflight := !inflight @ [ (j, body) ]
            done
        | Urcgc.Member.Send (dst, body) ->
            inflight := !inflight @ [ (Net.Node_id.to_int dst, body) ]
        | Urcgc.Member.Processed _ | Urcgc.Member.Confirmed _
        | Urcgc.Member.Queued _ | Urcgc.Member.Discarded _
        | Urcgc.Member.Left _ ->
            ())
      actions
  in
  let remove_nth k l = List.filteri (fun j _ -> j <> k) l in
  for step = 1 to member_equivalence_ops do
    let ctx = Printf.sprintf "step %d" step in
    (match Random.State.int rng 100 with
    | r when r < 15 ->
        let i = Random.State.int rng n in
        incr payload;
        Urcgc.Member.submit prod.(i) !payload;
        Member_reference.submit refm.(i) !payload
    | r when r < 40 ->
        (* One half-round across every node, alternating begin/mid. *)
        for i = 0 to n - 1 do
          let pa, ra =
            if !mid_phase then
              ( Urcgc.Member.mid_subrun prod.(i) ~subrun:!subrun,
                Member_reference.mid_subrun refm.(i) ~subrun:!subrun )
            else
              ( Urcgc.Member.begin_subrun prod.(i) ~subrun:!subrun,
                Member_reference.begin_subrun refm.(i) ~subrun:!subrun )
          in
          check_actions ctx i pa ra;
          route i pa
        done;
        if !mid_phase then incr subrun;
        mid_phase := not !mid_phase
    | r when r < 85 -> (
        match !inflight with
        | [] -> ()
        | l ->
            let k = Random.State.int rng (List.length l) in
            let dst, body = List.nth l k in
            inflight := remove_nth k l;
            let pa = Urcgc.Member.handle prod.(dst) body in
            let ra = Member_reference.handle refm.(dst) body in
            check_actions ctx dst pa ra;
            route dst pa)
    | _ -> (
        (* Lose one in-flight copy: recovery-from-history territory. *)
        match !inflight with
        | [] -> ()
        | l -> inflight := remove_nth (Random.State.int rng (List.length l)) l));
    for i = 0 to n - 1 do
      check_state ctx i
    done
  done

let member_equivalence_tests =
  [
    Alcotest.test_case
      (Printf.sprintf "member equals reference model (%d randomized runs)"
         member_equivalence_runs)
      `Quick
      (fun () ->
        for seed = 0 to member_equivalence_runs - 1 do
          run_member_equivalence seed
        done);
  ]

let suite =
  [
    ("hotpath.history", history_tests);
    ("hotpath.oldest", oldest_tests);
    ("hotpath.equivalence", equivalence_tests);
    ("hotpath.member_equivalence", member_equivalence_tests);
  ]
