(* Hot-path benchmarks of the delivery-critical data structures, with a
   tracked JSON baseline.

     dune exec bench/main.exe -- hotpath
     dune exec bench/main.exe -- hotpath --quick --out BENCH_hotpath.json
     dune exec bench/main.exe -- hotpath --quick --check BENCH_hotpath.json

   Four structure-level scenarios (waiting-list drain, discard cascade,
   history store+purge, history range) are sized to expose super-linear
   behaviour — a quadratic waiting-list scan is ~100x slower at W = 2048 —
   plus a full simulated subrun at n in {8, 15, 40, 128} as the end-to-end
   sanity point.  Every sample reports wall-clock and GC minor words per
   logical operation, so allocation regressions surface alongside time.

   `--check FILE` compares the fresh run against a committed baseline and
   fails (exit 1) if any operation regressed more than 5x: a loose bound
   that catches an accidental return to O(W^2) behaviour, not scheduler
   noise.  See docs/PERF.md for the methodology. *)

let node = Net.Node_id.of_int

let msg ?(deps = []) ~origin ~seq () =
  let mid = Causal.Mid.make ~origin:(node origin) ~seq in
  Causal.Causal_msg.make ~mid ~deps ~payload_size:8 ()

(* -- measurement -------------------------------------------------------- *)

type sample = {
  name : string;
  ops : int;  (* logical operations per repetition *)
  reps : int;
  ns_per_op : float;
  minor_words_per_op : float;
}

let measure ~quick ~name ~ops f =
  f ();
  (* Warm-up above also sanity-checks the scenario (each [f] asserts its own
     cascade/purge counts).  Repetitions target ~0.25 s per benchmark. *)
  let reps =
    if quick then 2
    else begin
      let t0 = Unix.gettimeofday () in
      f ();
      let dt = Unix.gettimeofday () -. t0 in
      if dt <= 1e-9 then 100 else max 1 (min 100 (int_of_float (0.25 /. dt)))
    end
  in
  Gc.full_major ();
  let s0 = Gc.quick_stat () in
  let t0 = Unix.gettimeofday () in
  for _ = 1 to reps do
    f ()
  done;
  let t1 = Unix.gettimeofday () in
  let s1 = Gc.quick_stat () in
  let total = float_of_int (reps * ops) in
  {
    name;
    ops;
    reps;
    ns_per_op = (t1 -. t0) *. 1e9 /. total;
    minor_words_per_op = (s1.Gc.minor_words -. s0.Gc.minor_words) /. total;
  }

(* -- scenarios ---------------------------------------------------------- *)

(* Origin 0 holds [w] permanently blocked messages (their seq-1 predecessor
   never arrives) sitting *before* origin 1 in mid order; origin 1's chain
   of [w] messages then unblocks in cascade.  An implementation that rescans
   the whole list per pop pays O(w) per drained message here. *)
let waiting_drain ~w () =
  let wl = Causal.Waiting_list.create ~n:2 in
  for s = 2 to w + 1 do
    Causal.Waiting_list.add wl (msg ~origin:0 ~seq:s ())
  done;
  for s = 2 to w + 1 do
    Causal.Waiting_list.add wl (msg ~origin:1 ~seq:s ())
  done;
  let d = Causal.Delivery.create ~n:2 in
  Causal.Delivery.mark d (Causal.Mid.make ~origin:(node 1) ~seq:1);
  let drained = ref 0 in
  let rec drain () =
    match Causal.Waiting_list.take_processable wl d with
    | Some m ->
        Causal.Delivery.mark d m.Causal.Causal_msg.mid;
        incr drained;
        drain ()
    | None -> ()
  in
  drain ();
  if !drained <> w then failwith "hotpath: waiting_drain cascade broke"

(* A w-deep explicit dependency chain across 8 origins: discarding the chain
   root must transitively discard every waiting message. *)
let discard_cascade ~w () =
  let wl = Causal.Waiting_list.create ~n:8 in
  let prev = ref None in
  for i = 0 to w - 1 do
    let deps = match !prev with None -> [] | Some mid -> [ mid ] in
    let m = msg ~origin:(i mod 8) ~seq:((i / 8) + 2) ~deps () in
    Causal.Waiting_list.add wl m;
    prev := Some m.Causal.Causal_msg.mid
  done;
  let discarded = Causal.Waiting_list.discard_from wl ~origin:(node 0) ~seq:2 in
  if List.length discarded <> w then
    failwith "hotpath: discard_cascade count broke"

let history_store_purge ~w () =
  let h = Causal.History.create ~n:8 in
  for o = 0 to 7 do
    for s = 1 to w do
      Causal.History.store h (msg ~origin:o ~seq:s ())
    done
  done;
  let removed = ref 0 in
  for o = 0 to 7 do
    removed := !removed + Causal.History.purge_upto h ~origin:(node o) ~seq:w
  done;
  if !removed <> 8 * w then failwith "hotpath: history purge count broke"

let history_range ~w =
  let h = Causal.History.create ~n:8 in
  for o = 0 to 7 do
    for s = 1 to w do
      Causal.History.store h (msg ~origin:o ~seq:s ())
    done
  done;
  let lo = w / 4 and hi = 3 * w / 4 in
  let expect = hi - lo + 1 in
  fun () ->
    for o = 0 to 7 do
      let msgs = Causal.History.range h ~origin:(node o) ~lo ~hi in
      if List.length msgs <> expect then
        failwith "hotpath: history range count broke"
    done

let oldest_vector ~w =
  let n = 8 in
  let wl = Causal.Waiting_list.create ~n in
  for i = 0 to w - 1 do
    Causal.Waiting_list.add wl (msg ~origin:(i mod n) ~seq:((i / n) + 2) ())
  done;
  fun () ->
    let v = Causal.Waiting_list.oldest_vector wl in
    for o = 0 to n - 1 do
      match v.(o) with
      | Some mid when Causal.Mid.seq mid = 2 -> ()
      | Some _ | None -> failwith "hotpath: oldest_vector broke"
    done

let subrun ~n () =
  let config = Urcgc.Config.make ~n () in
  let engine = Sim.Engine.create () in
  let rng = Sim.Rng.create ~seed:1 in
  let fault = Net.Fault.create Net.Fault.reliable ~rng:(Sim.Rng.split rng) in
  let net = Net.Netsim.create engine ~fault ~rng:(Sim.Rng.split rng) () in
  let cluster = Urcgc.Cluster.create ~config ~net () in
  List.iter (fun node -> Urcgc.Cluster.submit cluster node 0) (Net.Node_id.group n);
  Urcgc.Cluster.start cluster;
  Sim.Engine.run engine ~until:(Sim.Ticks.of_int Sim.Ticks.per_rtd)

let run_all ~quick =
  let m = measure ~quick in
  [
    m ~name:"waiting_drain_w128" ~ops:128 (waiting_drain ~w:128);
    m ~name:"waiting_drain_w512" ~ops:512 (waiting_drain ~w:512);
    m ~name:"waiting_drain_w2048" ~ops:2048 (waiting_drain ~w:2048);
    m ~name:"discard_cascade_w128" ~ops:128 (discard_cascade ~w:128);
    m ~name:"discard_cascade_w512" ~ops:512 (discard_cascade ~w:512);
    m ~name:"discard_cascade_w2048" ~ops:2048 (discard_cascade ~w:2048);
    m ~name:"history_store_purge_w256" ~ops:(8 * 256) (history_store_purge ~w:256);
    m ~name:"history_store_purge_w2048" ~ops:(8 * 2048)
      (history_store_purge ~w:2048);
    m ~name:"history_range_w2048" ~ops:(8 * 1025) (history_range ~w:2048);
    m ~name:"oldest_vector_w512" ~ops:1 (oldest_vector ~w:512);
    m ~name:"subrun_n8" ~ops:8 (subrun ~n:8);
    m ~name:"subrun_n15" ~ops:15 (subrun ~n:15);
    m ~name:"subrun_n40" ~ops:40 (subrun ~n:40);
    m ~name:"subrun_n128" ~ops:128 (subrun ~n:128);
    m ~name:"subrun_n256" ~ops:256 (subrun ~n:256);
    m ~name:"subrun_n512" ~ops:512 (subrun ~n:512);
  ]

(* -- JSON export and baseline check ------------------------------------- *)

let json_of_samples ~quick samples =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\"schema\":\"urcgc.bench.hotpath/1\",";
  Buffer.add_string buf
    (Printf.sprintf "\"quick\":%b,\"results\":[" quick);
  List.iteri
    (fun i s ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf
           "{\"name\":\"%s\",\"ops\":%d,\"reps\":%d,\"ns_per_op\":%.2f,\"minor_words_per_op\":%.2f}"
           s.name s.ops s.reps s.ns_per_op s.minor_words_per_op))
    samples;
  Buffer.add_string buf "]}\n";
  Buffer.contents buf

let baseline_ns path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let raw = really_input_string ic len in
  close_in ic;
  let number = function
    | Some (Sim.Json.Int v) -> Some (float_of_int v)
    | Some (Sim.Json.Float v) -> Some v
    | Some _ | None -> None
  in
  match Sim.Json.parse raw with
  | Error e -> Error (Printf.sprintf "%s: %s" path e)
  | Ok json -> (
      match Sim.Json.member "results" json with
      | Some (Sim.Json.List rows) ->
          let entry row =
            match
              (Sim.Json.member "name" row, number (Sim.Json.member "ns_per_op" row))
            with
            | Some (Sim.Json.Str name), Some ns ->
                Some (name, (ns, number (Sim.Json.member "minor_words_per_op" row)))
            | _ -> None
          in
          Ok (List.filter_map entry rows)
      | Some _ | None -> Error (Printf.sprintf "%s: no results array" path))

let check_against ~path ~baseline samples =
  match baseline with
  | Error e ->
      Format.printf "  baseline check: %s@." e;
      false
  | Ok baseline ->
      let tolerance = 5.0 in
      (* Allocation per op is near-deterministic (no scheduler in the loop),
         so the minor-words gate is much tighter than the wall-clock one:
         it exists to catch a reintroduced per-message list or closure, not
         noise.  A small absolute slack absorbs GC-stat granularity on the
         scenarios that allocate almost nothing. *)
      let mw_tolerance = 1.5 in
      let mw_slack = 32.0 in
      let failures =
        List.concat_map
          (fun s ->
            match List.assoc_opt s.name baseline with
            | None -> []
            | Some (base_ns, base_mw) ->
                let time =
                  if s.ns_per_op <= tolerance *. base_ns then []
                  else
                    [
                      Printf.sprintf
                        "%s: %.0f ns/op vs baseline %.0f ns/op (> %.0fx)"
                        s.name s.ns_per_op base_ns tolerance;
                    ]
                in
                let words =
                  match base_mw with
                  | None -> []
                  | Some base_mw
                    when s.minor_words_per_op
                         <= (mw_tolerance *. base_mw) +. mw_slack ->
                      []
                  | Some base_mw ->
                      [
                        Printf.sprintf
                          "%s: %.0f mw/op vs baseline %.0f mw/op (> %.1fx + \
                           %.0f)"
                          s.name s.minor_words_per_op base_mw mw_tolerance
                          mw_slack;
                      ]
                in
                time @ words)
          samples
      in
      List.iter (fun line -> Format.printf "  REGRESSION %s@." line) failures;
      if failures = [] then
        Format.printf
          "  baseline check: all ops within %.0fx time and %.1fx allocation \
           of %s@."
          tolerance mw_tolerance path;
      failures = []

(* One profiled n=128 subrun: span-level time/allocation attribution of the
   end-to-end scenario the `subrun_*` rows measure.  Writes the canonical
   JSON report plus `.structural` and `.folded` siblings, exactly like the
   CLI's --profile. *)
let write_profile path =
  Sim.Prof.enable ();
  subrun ~n:128 ();
  let report = Sim.Prof.capture () in
  let write_file p contents =
    let oc = open_out_bin p in
    output_string oc contents;
    close_out oc
  in
  write_file path (Sim.Prof.report_json report);
  write_file (path ^ ".structural") (Sim.Prof.structural_json report);
  write_file (path ^ ".folded") (Sim.Prof.folded report);
  Format.printf "  wrote %s (+ .structural, .folded)@." path;
  Format.eprintf "%a@." Sim.Prof.pp_summary report

let run ?(quick = false) ?out ?check ?profile () =
  Format.printf "@.== Hot-path benchmarks (delivery-critical structures) ==@.@.";
  if quick then Format.printf "  (quick mode: 2 repetitions per benchmark)@.";
  (* Read the committed baseline up front: `--out` may overwrite the same
     path the check compares against. *)
  let baseline = Option.map (fun path -> (path, baseline_ns path)) check in
  let samples = run_all ~quick in
  Format.printf "  %-28s %6s %6s %14s %10s@." "benchmark" "ops" "reps"
    "ns/op" "mw/op";
  List.iter
    (fun s ->
      Format.printf "  %-28s %6d %6d %14.1f %10.2f@." s.name s.ops s.reps
        s.ns_per_op s.minor_words_per_op)
    samples;
  (match out with
  | None -> ()
  | Some path ->
      let oc = open_out_bin path in
      output_string oc (json_of_samples ~quick samples);
      close_out oc;
      Format.printf "  wrote %s@." path);
  Option.iter write_profile profile;
  match baseline with
  | None -> ()
  | Some (path, baseline) ->
      if not (check_against ~path ~baseline samples) then exit 1
