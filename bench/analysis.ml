(* Offline trace-analysis experiment: the message-lifecycle view of a
   representative faulty run, plus the analyzer's own cost.

   The per-message spans quantify what the paper argues qualitatively in
   Sections 4-5: messages spend bounded time on the waiting list, stability
   lags processing by under a round, and recovery traffic concentrates
   around the crash window.  The throughput figure at the end keeps the
   analyzer honest as traces grow. *)

let spec =
  {
    Workload.Campaign.n = 9;
    k = 3;
    rate = 0.6;
    messages = 120;
    send_omission = 0.002;
    recv_omission = 0.002;
    link_loss = 0.001;
    silenced_per_subrun = 1;
    crashes = [ (2, 4) ];
    max_rtd = 300.0;
  }

let run () =
  Format.printf "@.== Offline trace analysis ==@.@.";
  let tracer = Sim.Trace.unbounded () in
  let _outcome, report = Workload.Campaign.execute ~tracer ~seed:42 spec in
  let records = Sim.Trace.records tracer in
  let analysis = Sim.Analysis.analyze ~n:spec.Workload.Campaign.n records in
  Format.printf "%a@.@." Sim.Analysis.pp_summary analysis;
  Format.printf "checker-vs-oracle agreement: %b@."
    (Workload.Analyzer.agrees report.Workload.Runner.verdict
       analysis.Sim.Analysis.verdict);
  (* Analyzer cost on this trace: full JSONL round-trip plus analysis. *)
  let lines = List.map Sim.Trace.json_of_record records in
  let t0 = Sys.time () in
  let rounds = 20 in
  for _ = 1 to rounds do
    match Sim.Analysis.parse_jsonl lines with
    | Ok (parsed, _) ->
        ignore (Sim.Analysis.report_json (Sim.Analysis.analyze parsed))
    | Error msg -> failwith msg
  done;
  let elapsed = Sys.time () -. t0 in
  Format.printf
    "analyzer throughput: %d events parsed+analyzed+reported in %.1f ms/round \
     (%.0f events/s)@."
    (List.length records)
    (elapsed /. float_of_int rounds *. 1000.0)
    (float_of_int (List.length records * rounds) /. elapsed)
