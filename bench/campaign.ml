(* Randomized fault-campaign sweep (the correctness backbone later scaling
   work is validated against).

   Two fixed-seed campaigns: one drawn within the resilience budget
   t = (n-1)/2, where every verdict must come back OK, and one with the
   per-subrun silencing forced beyond t, where the harness is expected to
   find safety violations and shrink each to a minimal reproducer. *)

let run () =
  Format.printf "@.== Randomized fault campaign ==@.@.";
  let within = Workload.Campaign.run ~budget:40 ~seed:42 () in
  Format.printf "-- within the t = (n-1)/2 budget --@.%a@.@."
    Workload.Campaign.pp_summary within;
  let over = Workload.Campaign.run ~over_budget:true ~budget:15 ~seed:42 () in
  Format.printf "-- silencing forced beyond t --@.%a@.@."
    Workload.Campaign.pp_summary over;
  let shrunk_sizes =
    List.filter_map
      (fun r ->
        Option.map
          (fun s ->
            ( r.Workload.Campaign.spec.Workload.Campaign.messages,
              s.Workload.Campaign.shrunk_spec.Workload.Campaign.messages ))
          r.Workload.Campaign.shrunk)
      over.Workload.Campaign.runs
  in
  Format.printf "shape checks:@.";
  Format.printf "  within-budget campaign is all-OK: %b@."
    (within.Workload.Campaign.failed = 0);
  Format.printf "  over-budget campaign finds failures: %b@."
    (over.Workload.Campaign.failed > 0);
  Format.printf
    "  every shrunk reproducer is no larger than its original: %b@."
    (List.for_all (fun (orig, shrunk) -> shrunk <= orig) shrunk_sizes);
  (* Metrics registry of one representative faulty run: the depth/occupancy
     and latency figures scaling work optimizes against. *)
  let spec =
    {
      Workload.Campaign.n = 15;
      k = 3;
      rate = 0.5;
      messages = 120;
      send_omission = 0.001;
      recv_omission = 0.001;
      link_loss = 0.0;
      silenced_per_subrun = 1;
      crashes = [ (3, 4) ];
      max_rtd = 300.0;
    }
  in
  let metrics = Sim.Metrics.create () in
  let _outcome, _report = Workload.Campaign.execute ~metrics ~seed:42 spec in
  Format.printf "@.-- metrics (n=15, omission 1/1000, 1 silenced, 1 crash) --@.%a@."
    Sim.Metrics.pp metrics
