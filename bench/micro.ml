(* Bechamel micro-benchmarks of the hot paths backing each experiment:
   history maintenance, the coordinator decision, vector-clock operations,
   and a complete simulated subrun. *)

open Bechamel
open Toolkit

let node n = Net.Node_id.of_int n

let bench_history =
  Test.make ~name:"history store+purge (64 msgs)"
    (Staged.stage (fun () ->
         let h = Causal.History.create ~n:8 in
         for s = 1 to 64 do
           let origin = node (s mod 8) in
           let mid = Causal.Mid.make ~origin ~seq:((s / 8) + 1) in
           Causal.History.store h
             (Causal.Causal_msg.make ~mid ~deps:[] ~payload_size:16 ())
         done;
         for i = 0 to 7 do
           ignore (Causal.History.purge_upto h ~origin:(node i) ~seq:4)
         done))

let bench_decision =
  let config = Urcgc.Config.make ~n:15 () in
  let prev = Urcgc.Decision.initial ~n:15 in
  let requests =
    List.init 15 (fun i ->
        {
          Urcgc.Wire.sender = node i;
          subrun = 0;
          last_processed = Array.make 15 ((i * 3) mod 7);
          waiting = Array.make 15 None;
          prev_decision = prev;
        })
  in
  Test.make ~name:"coordinator decision (n=15)"
    (Staged.stage (fun () ->
         ignore
           (Urcgc.Coordinator.compute ~config ~subrun:0 ~coordinator:(node 0)
              ~prev ~requests)))

let bench_vclock =
  Test.make ~name:"vclock merge+deliverable (n=40)"
    (Staged.stage (fun () ->
         let a = Cbcast.Vclock.create ~n:40 in
         let b = Cbcast.Vclock.create ~n:40 in
         for i = 0 to 39 do
           if i mod 2 = 0 then Cbcast.Vclock.tick b (node i)
         done;
         Cbcast.Vclock.merge a b;
         ignore (Cbcast.Vclock.deliverable ~msg_vt:b ~from:(node 0) ~local:a)))

let bench_subrun =
  Test.make ~name:"one full urcgc subrun (n=15)"
    (Staged.stage (fun () ->
         let config = Urcgc.Config.make ~n:15 () in
         let engine = Sim.Engine.create () in
         let rng = Sim.Rng.create ~seed:1 in
         let fault =
           Net.Fault.create Net.Fault.reliable ~rng:(Sim.Rng.split rng)
         in
         let net = Net.Netsim.create engine ~fault ~rng:(Sim.Rng.split rng) () in
         let cluster = Urcgc.Cluster.create ~config ~net () in
         List.iter
           (fun n -> Urcgc.Cluster.submit cluster n 0)
           (Net.Node_id.group 15);
         Urcgc.Cluster.start cluster;
         Sim.Engine.run engine ~until:(Sim.Ticks.of_int Sim.Ticks.per_rtd)))

let bench_waiting =
  Test.make ~name:"waiting list churn (32 msgs)"
    (Staged.stage (fun () ->
         let w = Causal.Waiting_list.create ~n:4 in
         let d = Causal.Delivery.create ~n:4 in
         for s = 32 downto 1 do
           let mid = Causal.Mid.make ~origin:(node 1) ~seq:s in
           Causal.Waiting_list.add w
             (Causal.Causal_msg.make ~mid ~deps:[] ~payload_size:8 ())
         done;
         let rec drain () =
           match Causal.Waiting_list.take_processable w d with
           | Some msg ->
               Causal.Delivery.mark d msg.Causal.Causal_msg.mid;
               drain ()
           | None -> ()
         in
         drain ()))

(* One synthetic 38-byte frame per iteration, 64 frames per run: the
   fresh-writer variant allocates a new Buffer.t per frame (what the wire
   codecs did before Writer.clear existed); the reused variant encodes
   into one writer cleared between frames.  The minor-words column is the
   point of the comparison. *)
let encode_frame w i =
  Net.Bytebuf.Writer.u8 w (i land 0xFF);
  Net.Bytebuf.Writer.u16 w (i * 7 land 0xFFFF);
  Net.Bytebuf.Writer.u24 w (i * 131 land 0xFFFFFF);
  Net.Bytebuf.Writer.u32 w (i * 65537);
  Net.Bytebuf.Writer.bytes w (Bytes.make 24 'x');
  Net.Bytebuf.Writer.bitmap w (Array.make 16 (i land 1 = 0));
  Net.Bytebuf.Writer.contents w

let bench_writer_fresh =
  Test.make ~name:"codec frames, fresh writer (64 frames)"
    (Staged.stage (fun () ->
         for i = 1 to 64 do
           let w = Net.Bytebuf.Writer.create () in
           ignore (encode_frame w i)
         done))

let bench_writer_reused =
  Test.make ~name:"codec frames, reused writer (64 frames)"
    (Staged.stage
       (let w = Net.Bytebuf.Writer.create () in
        fun () ->
          for i = 1 to 64 do
            Net.Bytebuf.Writer.clear w;
            ignore (encode_frame w i)
          done))

(* Direct allocation assertion, not a Bechamel estimate: encoding a full
   request PDU through the pooled-writer entry point must allocate well
   under half of what per-call fresh writers do, or the Medium.with_codec
   pooling has silently regressed.  Exits non-zero on failure so CI can
   gate on it. *)
let assert_pooled_encode_allocates_less () =
  let payload = Urcgc.Wire_codec.string_payload in
  let n = 15 in
  let body =
    Urcgc.Wire.Request
      {
        Urcgc.Wire.sender = node 0;
        subrun = 3;
        last_processed = Array.make n 5;
        waiting = Array.make n None;
        prev_decision = Urcgc.Decision.initial ~n;
      }
  in
  let rounds = 1000 in
  (* Warm both paths once so neither measurement pays first-call costs. *)
  ignore (Urcgc.Wire_codec.encode_body payload body);
  let fresh_words =
    let before = Gc.minor_words () in
    for _ = 1 to rounds do
      ignore (Urcgc.Wire_codec.encode_body payload body)
    done;
    Gc.minor_words () -. before
  in
  let pooled_words =
    let w = Net.Bytebuf.Writer.create () in
    ignore (Urcgc.Wire_codec.encode_body_into w payload body);
    let before = Gc.minor_words () in
    for _ = 1 to rounds do
      ignore (Urcgc.Wire_codec.encode_body_into w payload body)
    done;
    Gc.minor_words () -. before
  in
  Format.printf
    "  %-36s %12.0f mw pooled %12.0f mw fresh (%d frames)@."
    "pooled codec writer assertion" pooled_words fresh_words rounds;
  if pooled_words >= fresh_words /. 2. then begin
    Format.printf
      "  FAIL: pooled encode_body_into should allocate < half of fresh \
       encode_body@.";
    exit 1
  end

let benchmarks =
  [
    bench_history;
    bench_decision;
    bench_vclock;
    bench_subrun;
    bench_waiting;
    bench_writer_fresh;
    bench_writer_reused;
  ]

let run () =
  Format.printf "@.== Micro-benchmarks (Bechamel) ==@.@.";
  assert_pooled_encode_allocates_less ();
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  (* Wall-clock and GC minor words per run: allocation regressions on the
     hot paths surface here alongside time (see docs/PERF.md). *)
  let instances = Instance.[ monotonic_clock; minor_allocated ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.25) ~kde:(Some 1000) ()
  in
  let estimate stats instance =
    let table = Analyze.all ols instance stats in
    let acc = ref [] in
    Hashtbl.iter
      (fun name ols_result ->
        match Analyze.OLS.estimates ols_result with
        | Some [ v ] -> acc := (name, v) :: !acc
        | Some _ | None -> ())
      table;
    !acc
  in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances test in
      let times = estimate results Instance.monotonic_clock in
      let words = estimate results Instance.minor_allocated in
      List.iter
        (fun (name, time_ns) ->
          match List.assoc_opt name words with
          | Some mw ->
              Format.printf "  %-36s %12.0f ns/run %12.0f mw/run@." name
                time_ns mw
          | None -> Format.printf "  %-36s %12.0f ns/run@." name time_ns)
        times)
    benchmarks
