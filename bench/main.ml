(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation section (Section 6).

     dune exec bench/main.exe            # everything
     dune exec bench/main.exe -- fig4    # one experiment
     dune exec bench/main.exe -- fig5 table1 fig6a fig6b micro
*)

(* Options consumed by the baseline-tracked experiments `hotpath`,
   `campaign-throughput` and `profile-overhead` (ignored by the others):
   --quick, --out FILE, --check FILE. *)
type baseline_opts = {
  mutable quick : bool;
  mutable out : string option;
  mutable check : string option;
  mutable profile : string option;
}

let baseline_opts = { quick = false; out = None; check = None; profile = None }

let run_hotpath () =
  Hotpath.run ~quick:baseline_opts.quick ?out:baseline_opts.out
    ?check:baseline_opts.check ?profile:baseline_opts.profile ()

let run_campaign_throughput () =
  Campaign_throughput.run ~quick:baseline_opts.quick ?out:baseline_opts.out
    ?check:baseline_opts.check ()

let run_profile_overhead () =
  Profile_overhead.run ~quick:baseline_opts.quick ?out:baseline_opts.out
    ?check:baseline_opts.check ()

let experiments =
  [
    ("fig4", "Figure 4: mean end-to-end delay vs offered load", Fig4.run);
    ("fig5", "Figure 5: recovery time vs coordinator crashes", Fig5.run);
    ("table1", "Table 1: control message count and size", Table1.run);
    ("fig6a", "Figure 6a: history length vs time", Fig6.run_a_only);
    ("fig6b", "Figure 6b: history under flow control", Fig6.run_b_only);
    ("ablation", "Ablations: transport mounting, causal-label density", Ablation.run);
    ("ordering", "Total (urgc) vs causal (urcgc) ordering service", Ordering.run);
    ("resilience", "Resilience sweep across the t=(n-1)/2 budget", Resilience.run);
    ("timing", "Latency sweep across the round-synchrony boundary", Timing.run);
    ("scale", "Control-plane cost vs group size", Scale.run);
    ("service", "Service-rate ceiling: one message per process per round", Service.run);
    ("campaign", "Randomized fault campaign within and beyond the t budget", Campaign.run);
    ("analysis", "Offline trace analysis of a representative faulty run", Analysis.run);
    ("explore", "Bounded schedule explorer throughput (schedules/sec)", Explore.run);
    ("micro", "Bechamel micro-benchmarks", Micro.run);
    ("hotpath", "Hot-path benchmarks with tracked JSON baseline", run_hotpath);
    ( "campaign-throughput",
      "Campaign runs/sec at -j 1/2/4/8 with tracked JSON baseline",
      run_campaign_throughput );
    ( "profile-overhead",
      "Sim.Prof probe cost on the subrun hot path, off and on",
      run_profile_overhead );
  ]

let () =
  let args =
    match Array.to_list Sys.argv with _ :: rest -> rest | [] -> []
  in
  let args = List.filter (fun a -> a <> "--") args in
  let rec strip_opts = function
    | [] -> []
    | "--quick" :: rest ->
        baseline_opts.quick <- true;
        strip_opts rest
    | "--out" :: path :: rest ->
        baseline_opts.out <- Some path;
        strip_opts rest
    | "--check" :: path :: rest ->
        baseline_opts.check <- Some path;
        strip_opts rest
    | "--profile" :: path :: rest ->
        baseline_opts.profile <- Some path;
        strip_opts rest
    | arg :: rest -> arg :: strip_opts rest
  in
  let args = strip_opts args in
  match args with
  | [] ->
      (* Full sweep: fig6 a) and b) share the expensive faulty runs. *)
      Fig4.run ();
      Fig5.run ();
      Table1.run ();
      Fig6.run ();
      Ablation.run ();
      Ordering.run ();
      Resilience.run ();
      Timing.run ();
      Scale.run ();
      Service.run ();
      Campaign.run ();
      Analysis.run ();
      Micro.run ();
      run_hotpath ();
      run_campaign_throughput ()
  | names ->
      List.iter
        (fun name ->
          match List.find_opt (fun (key, _, _) -> key = name) experiments with
          | Some (_, _, run) -> run ()
          | None ->
              Format.eprintf "unknown experiment %S; available:@." name;
              List.iter
                (fun (key, doc, _) -> Format.eprintf "  %-8s %s@." key doc)
                experiments;
              exit 2)
        names
