(* Bounded schedule explorer throughput: schedules/sec on the pinned
   exhaustive configurations and on a larger crash-enumeration sweep, with
   and without the commutativity pruning and the per-schedule trace oracle.
   The explorer re-executes the whole protocol stack once per schedule, so
   this doubles as an end-to-end hot-path measurement of cluster setup,
   round execution, and the checker. *)

let time_explore name c ~prune =
  let start = Unix.gettimeofday () in
  let report = Workload.Explore.explore ~prune c in
  let elapsed = Unix.gettimeofday () -. start in
  let stats = report.Workload.Explore.stats in
  let explored = stats.Sim.Explore.explored in
  Format.printf
    "  %-28s %8d explored %8d pruned %s  %7.2fs  %9.0f schedules/sec@." name
    explored stats.Sim.Explore.pruned
    (if Workload.Explore.ok report then "clean " else "DIRTY ")
    elapsed
    (float_of_int explored /. elapsed);
  report

let run () =
  Format.printf "@.== Bounded schedule explorer throughput ==@.@.";
  Format.printf "-- pinned exhaustive configurations (the CI gates) --@.";
  let n3 =
    Workload.Explore.config ~n:3 ~messages:6 ~window_subruns:2
      ~crash_choices:true ()
  in
  let n4 = Workload.Explore.config ~n:4 () in
  ignore (time_explore "n3 w2 crash+oracle" n3 ~prune:true);
  ignore (time_explore "n4 w1 oracle" n4 ~prune:true);
  Format.printf "@.-- oracle and pruning cost on the same spaces --@.";
  let no_oracle c = { c with Workload.Explore.with_oracle = false } in
  let pruned = time_explore "n3 w2 crash" (no_oracle n3) ~prune:true in
  let brute = time_explore "n3 w2 crash brute" (no_oracle n3) ~prune:false in
  ignore (time_explore "n4 w1" (no_oracle n4) ~prune:true);
  Format.printf "@.-- larger sweep: n=4, crash enumeration --@.";
  let big =
    Workload.Explore.config ~n:4 ~crash_choices:true ~with_oracle:false ()
  in
  ignore (time_explore "n4 w1 crash" big ~prune:true);
  Format.printf "@.shape checks:@.";
  Format.printf "  pruned and brute-force agree on the violation set: %b@."
    (pruned.Workload.Explore.distinct_violations
    = brute.Workload.Explore.distinct_violations);
  Format.printf "  pruning shrinks the explored space: %b@."
    (pruned.Workload.Explore.stats.Sim.Explore.explored
    < brute.Workload.Explore.stats.Sim.Explore.explored)
