(* Profiler overhead on the end-to-end subrun hot path.

     dune exec bench/main.exe -- profile-overhead
     dune exec bench/main.exe -- profile-overhead --check BENCH_hotpath.json

   The Sim.Prof probes stay compiled into every hot path (member phases,
   engine dispatch, netsim delivery, runner callbacks), so the disabled
   mode must be provably cheap: one [!Sim.Prof.on] load and branch per
   probe site.  This bench measures the same [subrun ~n] scenario the
   hotpath baseline tracks, in two interleaved arms:

   - disabled: probes present, profiler off — the cost every normal run
     pays.  Compared against the committed BENCH_hotpath.json numbers
     (recorded by the same methodology) under `--check`; the expected
     delta is under 2%, and the gate allows 15% for timer noise on
     shared CI machines.
   - enabled: full span recording with GC deltas and latency samples —
     the cost of running with `--profile`.  Reported for scale, never
     gated: profiling overhead is a price the user opts into.

   Arms alternate block-by-block and each arm keeps its best block, so a
   background-load spike hits both arms rather than biasing one. *)

type sample = {
  name : string;
  ops : int;
  reps : int;  (* per block *)
  disabled_ns : float;
  enabled_ns : float;
  spans : int;  (* distinct spans in the enabled arm's capture *)
}

let time_block f reps =
  Gc.full_major ();
  let t0 = Unix.gettimeofday () in
  for _ = 1 to reps do
    f ()
  done;
  Unix.gettimeofday () -. t0

let count_spans report =
  let rec go acc (s : Sim.Prof.stat) =
    List.fold_left go (acc + 1) s.Sim.Prof.children
  in
  go 0 (Sim.Prof.root report)

let measure ~quick ~n =
  let f = Hotpath.subrun ~n in
  f ();
  (* Size repetitions so one block costs ~0.1 s, then alternate arms. *)
  let reps =
    if quick then 2
    else begin
      let t0 = Unix.gettimeofday () in
      f ();
      let dt = Unix.gettimeofday () -. t0 in
      if dt <= 1e-9 then 50 else max 1 (min 50 (int_of_float (0.1 /. dt)))
    end
  in
  let blocks = if quick then 1 else 5 in
  let disabled = ref infinity and enabled = ref infinity in
  let spans = ref 0 in
  for _ = 1 to blocks do
    let dt = time_block f reps in
    if dt < !disabled then disabled := dt;
    Sim.Prof.enable ();
    let dt = time_block f reps in
    let report = Sim.Prof.capture () in
    spans := count_spans report;
    if dt < !enabled then enabled := dt
  done;
  let per_op best = best *. 1e9 /. float_of_int (reps * n) in
  {
    name = Printf.sprintf "subrun_n%d" n;
    ops = n;
    reps;
    disabled_ns = per_op !disabled;
    enabled_ns = per_op !enabled;
    spans = !spans;
  }

let sizes = [ 8; 15; 40; 128 ]

let enabled_pct s = 100. *. ((s.enabled_ns /. s.disabled_ns) -. 1.)

(* -- JSON export and baseline check ------------------------------------- *)

let json_of_samples ~quick samples =
  let buf = Buffer.create 512 in
  Printf.bprintf buf
    "{\"schema\":\"urcgc.bench.profile_overhead/1\",\"quick\":%b,\"results\":["
    quick;
  List.iteri
    (fun i s ->
      if i > 0 then Buffer.add_char buf ',';
      Printf.bprintf buf
        "{\"name\":\"%s\",\"ops\":%d,\"reps\":%d,\"disabled_ns_per_op\":%.2f,\"enabled_ns_per_op\":%.2f,\"enabled_overhead_pct\":%.1f,\"spans\":%d}"
        s.name s.ops s.reps s.disabled_ns s.enabled_ns (enabled_pct s) s.spans)
    samples;
  Buffer.add_string buf "]}\n";
  Buffer.contents buf

(* Gate: probes-compiled-in-but-disabled must stay within [tolerance] of
   the committed hotpath numbers for the same scenarios.  The real probe
   cost is a load+branch (<2%); the headroom absorbs timer noise. *)
let check_against ~path ~baseline samples =
  match baseline with
  | Error e ->
      Format.printf "  baseline check: %s@." e;
      false
  | Ok baseline ->
      let tolerance = 1.15 in
      let failures =
        List.filter_map
          (fun s ->
            match List.assoc_opt s.name baseline with
            | None -> None
            | Some (base, _) when s.disabled_ns <= tolerance *. base -> None
            | Some (base, _) -> Some (s.name, base, s.disabled_ns))
          samples
      in
      List.iter
        (fun (name, base, got) ->
          Format.printf
            "  REGRESSION %s: %.0f ns/op disabled vs baseline %.0f ns/op \
             (> +%.0f%%)@."
            name got base (100. *. (tolerance -. 1.)))
        failures;
      if failures = [] then
        Format.printf
          "  baseline check: disabled-mode within +%.0f%% of %s@."
          (100. *. (tolerance -. 1.))
          path;
      failures = []

let run ?(quick = false) ?out ?check () =
  Format.printf "@.== Profiler overhead (probes on the subrun hot path) ==@.@.";
  if quick then
    Format.printf "  (quick mode: 1 block of 2 repetitions per size)@.";
  let baseline = Option.map (fun path -> (path, Hotpath.baseline_ns path)) check in
  let samples = List.map (fun n -> measure ~quick ~n) sizes in
  Format.printf "  %-12s %6s %12s %12s %10s %6s@." "scenario" "reps"
    "off ns/op" "on ns/op" "on cost" "spans";
  List.iter
    (fun s ->
      Format.printf "  %-12s %6d %12.1f %12.1f %9.1f%% %6d@." s.name s.reps
        s.disabled_ns s.enabled_ns (enabled_pct s) s.spans)
    samples;
  (match baseline with
  | Some (_, Ok baseline) ->
      List.iter
        (fun s ->
          match List.assoc_opt s.name baseline with
          | None -> ()
          | Some (base, _) ->
              Format.printf
                "  %-12s disabled vs committed baseline: %+.1f%%@." s.name
                (100. *. ((s.disabled_ns /. base) -. 1.)))
        samples
  | Some (_, Error _) | None -> ());
  (match out with
  | None -> ()
  | Some path ->
      let oc = open_out_bin path in
      output_string oc (json_of_samples ~quick samples);
      close_out oc;
      Format.printf "  wrote %s@." path);
  match baseline with
  | None -> ()
  | Some (path, baseline) ->
      if not (check_against ~path ~baseline samples) then exit 1
