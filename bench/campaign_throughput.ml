(* Campaign sweep throughput across worker counts, with a tracked JSON
   baseline.

     dune exec bench/main.exe -- campaign-throughput
     dune exec bench/main.exe -- campaign-throughput --quick --out BENCH_campaign_throughput.json
     dune exec bench/main.exe -- campaign-throughput --quick --check BENCH_campaign_throughput.json

   One fixed-seed standard sweep (the shape the CI smoke campaign runs) is
   executed at -j 1/2/4/8 and timed wall-clock; the figure of merit is
   runs/sec, the quantity that bounds how much of a failure envelope a
   wall-clock hour can probe.  Every parallel sweep's JSON report is
   byte-compared against the -j 1 report, so the bench doubles as an
   end-to-end determinism check.

   `--check FILE` fails (exit 1) if any job count's runs/sec regressed more
   than 10x against the committed baseline — loose enough to survive a slow
   CI machine or a single-core container (where all job counts collapse to
   ~1x speedup), tight enough to catch the parallel path serializing on an
   accidental lock or a return to quadratic per-run cost. *)

let job_counts = [ 1; 2; 4; 8 ]

type sample = { jobs : int; runs_per_sec : float; speedup : float }

(* On a single-core machine every multi-job row is oversubscribed: its
   throughput measures the scheduler fighting the machine, not the
   scheduler.  Such rows are marked [degraded] in the JSON report and
   excluded from the baseline regression check. *)
let degraded ~cores s = cores = 1 && s.jobs > 1

let sweep ~budget ~jobs =
  Workload.Campaign.to_json
    (Workload.Campaign.run ~jobs ~budget ~seed:1 ())

let measure ~reps ~budget ~jobs =
  let best = ref infinity in
  let json = ref "" in
  for _ = 1 to reps do
    let t0 = Unix.gettimeofday () in
    let j = sweep ~budget ~jobs in
    let dt = Unix.gettimeofday () -. t0 in
    if dt < !best then best := dt;
    json := j
  done;
  (float_of_int budget /. Float.max !best 1e-9, !json)

let run_all ~quick =
  let budget = if quick then 30 else 200 in
  let reps = if quick then 1 else 3 in
  let reference = ref "" in
  let samples =
    List.map
      (fun jobs ->
        let runs_per_sec, json = measure ~reps ~budget ~jobs in
        if jobs = 1 then reference := json
        else if json <> !reference then
          failwith
            (Printf.sprintf
               "campaign-throughput: -j %d report differs from -j 1" jobs);
        { jobs; runs_per_sec; speedup = 0.0 })
      job_counts
  in
  let base =
    match samples with s :: _ -> s.runs_per_sec | [] -> assert false
  in
  (budget, List.map (fun s -> { s with speedup = s.runs_per_sec /. base }) samples)

(* -- JSON export and baseline check ------------------------------------- *)

let json_of_samples ~quick ~budget ~cores samples =
  let buf = Buffer.create 512 in
  Printf.bprintf buf
    "{\"schema\":\"urcgc.bench.campaign_throughput/1\",\"quick\":%b,\"budget\":%d,\"parallel_backend\":%b,\"detected_cores\":%d,\"results\":["
    quick budget Sim.Pool.available cores;
  List.iteri
    (fun i s ->
      if i > 0 then Buffer.add_char buf ',';
      Printf.bprintf buf
        "{\"jobs\":%d,\"runs_per_sec\":%.1f,\"speedup\":%.2f%s}" s.jobs
        s.runs_per_sec s.speedup
        (if degraded ~cores s then ",\"degraded\":true" else ""))
    samples;
  Buffer.add_string buf "]}\n";
  Buffer.contents buf

let baseline_runs_per_sec path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let raw = really_input_string ic len in
  close_in ic;
  match Sim.Json.parse raw with
  | Error e -> Error (Printf.sprintf "%s: %s" path e)
  | Ok json -> (
      match Sim.Json.member "results" json with
      | Some (Sim.Json.List rows) ->
          let entry row =
            match
              (Sim.Json.member "jobs" row, Sim.Json.member "runs_per_sec" row)
            with
            | Some (Sim.Json.Int jobs), Some (Sim.Json.Float rps) ->
                Some (jobs, rps)
            | Some (Sim.Json.Int jobs), Some (Sim.Json.Int rps) ->
                Some (jobs, float_of_int rps)
            | _ -> None
          in
          Ok (List.filter_map entry rows)
      | Some _ | None -> Error (Printf.sprintf "%s: no results array" path))

let check_against ~path ~baseline ~cores samples =
  match baseline with
  | Error e ->
      Format.printf "  baseline check: %s@." e;
      false
  | Ok baseline ->
      let tolerance = 10.0 in
      let checked = List.filter (fun s -> not (degraded ~cores s)) samples in
      if List.length checked < List.length samples then
        Format.printf
          "  (single core detected: multi-job rows are degraded and excluded \
           from the regression check)@.";
      let failures =
        List.filter_map
          (fun s ->
            match List.assoc_opt s.jobs baseline with
            | None -> None
            | Some base when s.runs_per_sec *. tolerance >= base -> None
            | Some base -> Some (s.jobs, base, s.runs_per_sec))
          checked
      in
      List.iter
        (fun (jobs, base, got) ->
          Format.printf
            "  REGRESSION -j %d: %.1f runs/sec vs baseline %.1f (> %.0fx \
             slower)@."
            jobs got base tolerance)
        failures;
      if failures = [] then
        Format.printf "  baseline check: all job counts within %.0fx of %s@."
          tolerance path;
      failures = []

let run ?(quick = false) ?out ?check () =
  Format.printf "@.== Campaign throughput (parallel sweep scheduler) ==@.@.";
  Format.printf "  parallel backend: %s; detected cores: %d@."
    (if Sim.Pool.available then "domains" else "sequential fallback")
    (Sim.Pool.default_jobs ());
  let cores = Sim.Pool.default_jobs () in
  let max_jobs = List.fold_left max 1 job_counts in
  if cores < max_jobs then
    Format.printf
      "  *** WARNING: only %d core(s) detected but sweeping up to -j %d.@.\
      \  *** Oversubscribed job counts will show ~1x (or worse) speedup; do@.\
      \  *** NOT read those rows as a scheduler regression, and do not@.\
      \  *** refresh the committed baseline from this machine.@."
      cores max_jobs;
  if quick then Format.printf "  (quick mode: budget 30, 1 repetition)@.";
  Sim.Pool.reset_stats ();
  let baseline = Option.map (fun path -> (path, baseline_runs_per_sec path)) check in
  let budget, samples = run_all ~quick in
  Format.printf "  %-8s %14s %10s@." "jobs" "runs/sec" "speedup";
  List.iter
    (fun s ->
      Format.printf "  -j %-5d %14.1f %9.2fx%s@." s.jobs s.runs_per_sec
        s.speedup
        (if degraded ~cores s then "  (degraded: single core)" else ""))
    samples;
  Format.printf "  (all -j reports byte-identical to -j 1; budget %d, seed 1)@."
    budget;
  (* Per-domain pool counters across the whole sweep: tasks and steal
     attempts localize a load-balance problem to a domain; busy/idle split
     shows whether a low speedup is starvation or oversubscription. *)
  let pool_registry = Sim.Metrics.create () in
  Sim.Pool.record_metrics pool_registry;
  Format.printf "@[<v 2>  pool counters (all job counts pooled):@ %a@]@."
    Sim.Metrics.pp pool_registry;
  (match out with
  | None -> ()
  | Some path ->
      let oc = open_out_bin path in
      output_string oc (json_of_samples ~quick ~budget ~cores samples);
      close_out oc;
      Format.printf "  wrote %s@." path);
  match baseline with
  | None -> ()
  | Some (path, baseline) ->
      if not (check_against ~path ~baseline ~cores samples) then exit 1
