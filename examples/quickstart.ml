(* Quickstart: a five-process group exchanging causally related messages.

   Run with:  dune exec examples/quickstart.exe

   It builds a simulated group, submits a short conversation in which some
   messages causally depend on others, runs the simulation, and prints what
   each process processed, in order — demonstrating that every process sees
   causally related messages in the same order while unrelated ones may
   interleave freely. *)

let n = 5

let () =
  (* 1. Simulation substrate: engine, deterministic randomness, a reliable
        network. *)
  let engine = Sim.Engine.create () in
  let rng = Sim.Rng.create ~seed:7 in
  let fault = Net.Fault.create Net.Fault.reliable ~rng:(Sim.Rng.split rng) in
  let net = Net.Netsim.create engine ~fault ~rng:(Sim.Rng.split rng) () in

  (* 2. The urcgc group: n processes, default K = 3. *)
  let config = Urcgc.Config.make ~n () in
  let cluster = Urcgc.Cluster.create ~config ~net () in
  Urcgc.Cluster.start cluster;

  let p i = Net.Node_id.of_int i in

  (* 3. The conversation.  Every submission is labelled with the sender's
        causal frontier by default; we let two processes speak first and a
        third react to what it processed. *)
  Urcgc.Cluster.submit cluster (p 0) "p0: here is the design sketch";
  Urcgc.Cluster.submit cluster (p 1) "p1: meanwhile, unrelated status ping";
  (* Give the first messages a round-trip to arrive everywhere... *)
  Sim.Engine.run engine ~until:(Sim.Ticks.of_rtd 2.0);
  (* ...then react: this message causally follows everything p2 processed,
     including both messages above. *)
  Urcgc.Cluster.submit cluster (p 2) "p2: sketch looks good, shipping it";
  Sim.Engine.run engine ~until:(Sim.Ticks.of_rtd 4.0);

  (* 4. What happened, per process. *)
  Format.printf "== processing order at each site ==@.";
  List.iter
    (fun node ->
      Format.printf "%a:@." Net.Node_id.pp node;
      List.iter
        (fun { Urcgc.Cluster.node = at; msg; _ } ->
          if Net.Node_id.equal at node then
            Format.printf "   %a %s@." Causal.Mid.pp msg.Causal.Causal_msg.mid
              msg.payload)
        (Urcgc.Cluster.deliveries cluster))
    (Net.Node_id.group n);

  (* 5. The causal guarantee, stated and checked: p2's reaction lists the
        earlier messages among its dependencies and is processed after them
        at every site. *)
  let reaction =
    List.find
      (fun (g : _ Urcgc.Cluster.generation) ->
        Net.Node_id.equal (Causal.Mid.origin g.mid) (p 2))
      (Urcgc.Cluster.generations cluster)
  in
  let deps_of_reaction =
    List.concat_map
      (fun { Urcgc.Cluster.msg; _ } ->
        if Causal.Mid.equal msg.Causal.Causal_msg.mid reaction.mid then
          Array.to_list msg.Causal.Causal_msg.deps
        else [])
      (Urcgc.Cluster.deliveries cluster)
    |> List.sort_uniq Causal.Mid.compare
  in
  Format.printf "@.p2's reaction %a causally depends on: %a@." Causal.Mid.pp
    reaction.mid
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       Causal.Mid.pp)
    deps_of_reaction;
  Format.printf
    "every process processed those dependencies before the reaction.@."
