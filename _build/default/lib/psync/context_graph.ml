type mid = { sender : Net.Node_id.t; seq : int }

let mid_compare a b =
  let c = Net.Node_id.compare a.sender b.sender in
  if c <> 0 then c else Int.compare a.seq b.seq

let pp_mid ppf { sender; seq } = Format.fprintf ppf "%a~%d" Net.Node_id.pp sender seq

module Mid_map = Map.Make (struct
  type t = mid

  let compare = mid_compare
end)

type 'a node = {
  mid : mid;
  preds : mid list;
  payload : 'a;
  payload_size : int;
}

type 'a t = {
  mutable nodes : 'a node Mid_map.t;  (* attached *)
  mutable leaf_set : unit Mid_map.t;
  mutable waiting : 'a node Mid_map.t;  (* pending: some predecessor missing *)
}

let create () =
  { nodes = Mid_map.empty; leaf_set = Mid_map.empty; waiting = Mid_map.empty }

let mem t mid = Mid_map.mem mid t.nodes

let attached t = Mid_map.cardinal t.nodes

let leaves t = List.map fst (Mid_map.bindings t.leaf_set)

let missing_preds t node =
  List.filter (fun mid -> not (mem t mid)) node.preds

let attach_now t node =
  t.nodes <- Mid_map.add node.mid node t.nodes;
  List.iter
    (fun pred -> t.leaf_set <- Mid_map.remove pred t.leaf_set)
    node.preds;
  t.leaf_set <- Mid_map.add node.mid () t.leaf_set

let attach t node =
  if mem t node.mid then Ok []
  else
    match missing_preds t node with
    | _ :: _ as missing ->
        if not (Mid_map.mem node.mid t.waiting) then
          t.waiting <- Mid_map.add node.mid node t.waiting;
        Error missing
    | [] ->
        attach_now t node;
        let attached_nodes = ref [ node ] in
        (* Attaching one node can unblock pending successors; iterate to a
           fixpoint in deterministic mid order. *)
        let progress = ref true in
        while !progress do
          progress := false;
          let ready =
            Mid_map.filter (fun _ n -> missing_preds t n = []) t.waiting
          in
          Mid_map.iter
            (fun mid n ->
              t.waiting <- Mid_map.remove mid t.waiting;
              attach_now t n;
              attached_nodes := n :: !attached_nodes;
              progress := true)
            ready
        done;
        Ok (List.rev !attached_nodes)

let pending t = Mid_map.cardinal t.waiting

let pending_drop_newest t bound =
  let excess = pending t - bound in
  if excess <= 0 then []
  else begin
    let dropped = ref [] in
    for _ = 1 to excess do
      match Mid_map.max_binding_opt t.waiting with
      | None -> ()
      | Some (mid, _) ->
          t.waiting <- Mid_map.remove mid t.waiting;
          dropped := mid :: !dropped
    done;
    !dropped
  end

let find t mid = Mid_map.find_opt mid t.nodes
