module W = Net.Bytebuf.Writer
module R = Net.Bytebuf.Reader

let ( let* ) = Net.Bytebuf.( let* )

let tag_msg = 1
let tag_retrans_req = 2
let tag_retrans_reply = 3
let tag_keepalive = 4
let tag_mask_out = 5
let tag_mask_ack = 6
let tag_mask_done = 7

(* mid: sender u32 | seq u32 — 8 bytes, as Wire's size model assumes. *)
let write_mid w (mid : Context_graph.mid) =
  W.u32 w (Net.Node_id.to_int mid.sender);
  W.u32 w mid.seq

let read_mid r =
  let* sender = R.u32 r in
  let* seq = R.u32 r in
  if seq < 1 then Error "psync mid: seq must be >= 1"
  else Ok { Context_graph.sender = Net.Node_id.of_int sender; seq }

(* node: tag u8 | sender u24 | seq u32 | pred count u16 | payload len u16
   | preds (8 each) | payload.  Total = 8 + 8 |preds| + 4 + payload
   = Wire.node_size. *)
let write_node payload w (node : 'a Context_graph.node) =
  let body = payload.Net.Bytebuf.encode node.payload in
  if Bytes.length body <> node.payload_size then
    invalid_arg
      (Printf.sprintf
         "Ps_codec: declared payload_size %d but the payload encodes to %d"
         node.payload_size (Bytes.length body));
  W.u8 w tag_msg;
  W.u24 w (Net.Node_id.to_int node.mid.sender);
  W.u32 w node.mid.seq;
  W.u16 w (List.length node.preds);
  W.u16 w (Bytes.length body);
  List.iter (write_mid w) node.preds;
  W.bytes w body

let read_node payload r =
  let* sender = R.u24 r in
  let* seq = R.u32 r in
  let* pred_count = R.u16 r in
  let* payload_len = R.u16 r in
  if seq < 1 then Error "psync msg: seq must be >= 1"
  else begin
    let rec read_preds k acc =
      if k = 0 then Ok (List.rev acc)
      else
        let* mid = read_mid r in
        read_preds (k - 1) (mid :: acc)
    in
    let* preds = read_preds pred_count [] in
    let* raw = R.bytes r payload_len in
    let* value = payload.Net.Bytebuf.decode raw in
    Ok
      {
        Context_graph.mid = { sender = Net.Node_id.of_int sender; seq };
        preds;
        payload = value;
        payload_size = payload_len;
      }
  end

let encode_body payload body =
  let w = W.create () in
  (match body with
  | Wire.Msg node -> write_node payload w node
  | Wire.Retrans_req { requester; wanted } ->
      W.u8 w tag_retrans_req;
      W.u24 w (Net.Node_id.to_int requester);
      write_mid w wanted
  | Wire.Retrans_reply node ->
      W.u8 w tag_retrans_reply;
      W.u24 w 0;
      write_node payload w node
  | Wire.Keepalive ->
      W.u8 w tag_keepalive;
      W.u24 w 0;
      W.u32 w 0
  | Wire.Mask_out { target; initiator } ->
      W.u8 w tag_mask_out;
      W.u24 w (Net.Node_id.to_int initiator);
      W.u32 w (Net.Node_id.to_int target);
      W.u32 w 0
  | Wire.Mask_ack { target } ->
      W.u8 w tag_mask_ack;
      W.u24 w 0;
      W.u32 w (Net.Node_id.to_int target)
  | Wire.Mask_done { target } ->
      W.u8 w tag_mask_done;
      W.u24 w 0;
      W.u32 w (Net.Node_id.to_int target));
  let raw = W.contents w in
  let expected = Wire.body_size body in
  if Bytes.length raw <> expected then
    invalid_arg
      (Printf.sprintf "Ps_codec: encoded %d bytes, size model says %d"
         (Bytes.length raw) expected);
  raw

let decode_body payload raw =
  let r = R.of_bytes raw in
  let* tag = R.u8 r in
  if tag = tag_msg then
    let* node = read_node payload r in
    let* () = R.expect_end r in
    Ok (Wire.Msg node)
  else if tag = tag_retrans_req then begin
    let* requester = R.u24 r in
    let* wanted = read_mid r in
    let* () = R.expect_end r in
    Ok (Wire.Retrans_req { requester = Net.Node_id.of_int requester; wanted })
  end
  else if tag = tag_retrans_reply then begin
    let* _pad = R.u24 r in
    let* inner_tag = R.u8 r in
    if inner_tag <> tag_msg then Error "retrans-reply: expected a message"
    else
      let* node = read_node payload r in
      let* () = R.expect_end r in
      Ok (Wire.Retrans_reply node)
  end
  else if tag = tag_keepalive then begin
    let* _pad = R.u24 r in
    let* _reserved = R.u32 r in
    let* () = R.expect_end r in
    Ok Wire.Keepalive
  end
  else if tag = tag_mask_out then begin
    let* initiator = R.u24 r in
    let* target = R.u32 r in
    let* _reserved = R.u32 r in
    let* () = R.expect_end r in
    Ok
      (Wire.Mask_out
         {
           target = Net.Node_id.of_int target;
           initiator = Net.Node_id.of_int initiator;
         })
  end
  else if tag = tag_mask_ack then begin
    let* _pad = R.u24 r in
    let* target = R.u32 r in
    let* () = R.expect_end r in
    Ok (Wire.Mask_ack { target = Net.Node_id.of_int target })
  end
  else if tag = tag_mask_done then begin
    let* _pad = R.u24 r in
    let* target = R.u32 r in
    let* () = R.expect_end r in
    Ok (Wire.Mask_done { target = Net.Node_id.of_int target })
  end
  else Error (Printf.sprintf "unknown psync tag %d" tag)
