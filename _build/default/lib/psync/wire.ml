type 'a body =
  | Msg of 'a Context_graph.node
  | Retrans_req of { requester : Net.Node_id.t; wanted : Context_graph.mid }
  | Retrans_reply of 'a Context_graph.node
  | Keepalive
  | Mask_out of { target : Net.Node_id.t; initiator : Net.Node_id.t }
  | Mask_ack of { target : Net.Node_id.t }
  | Mask_done of { target : Net.Node_id.t }

let node_size (n : 'a Context_graph.node) =
  8 + (8 * List.length n.preds) + 4 + n.payload_size

let body_size = function
  | Msg n -> node_size n
  | Retrans_req _ -> 12
  | Retrans_reply n -> 4 + node_size n
  | Keepalive -> 8
  | Mask_out _ -> 12
  | Mask_ack _ -> 8
  | Mask_done _ -> 8

let kind = function
  | Msg _ -> Net.Traffic.Data
  | Retrans_req _ | Retrans_reply _ -> Net.Traffic.Recovery
  | Keepalive | Mask_out _ | Mask_ack _ | Mask_done _ -> Net.Traffic.Control

let pp_body ppf = function
  | Msg n -> Format.fprintf ppf "msg %a" Context_graph.pp_mid n.Context_graph.mid
  | Retrans_req { wanted; _ } ->
      Format.fprintf ppf "retrans-req %a" Context_graph.pp_mid wanted
  | Retrans_reply n ->
      Format.fprintf ppf "retrans-reply %a" Context_graph.pp_mid n.Context_graph.mid
  | Keepalive -> Format.pp_print_string ppf "keepalive"
  | Mask_out { target; _ } ->
      Format.fprintf ppf "mask-out %a" Net.Node_id.pp target
  | Mask_ack { target } -> Format.fprintf ppf "mask-ack %a" Net.Node_id.pp target
  | Mask_done { target } ->
      Format.fprintf ppf "mask-done %a" Net.Node_id.pp target
