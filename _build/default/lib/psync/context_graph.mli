(** The Psync context graph [PBS89].

    A conversation is a DAG of messages: each message carries the identifiers
    of the messages it directly follows (the leaves of the sender's view of
    the graph at send time).  A message can be attached — and hence shown to
    the application — only when all of its predecessors are attached, which
    yields causal ordering by construction. *)

type mid = { sender : Net.Node_id.t; seq : int }

val mid_compare : mid -> mid -> int
val pp_mid : Format.formatter -> mid -> unit

type 'a node = {
  mid : mid;
  preds : mid list;  (** direct predecessors in the conversation *)
  payload : 'a;
  payload_size : int;
}

type 'a t

val create : unit -> 'a t

val mem : 'a t -> mid -> bool

val attached : 'a t -> int
(** Number of messages attached to the graph. *)

val leaves : 'a t -> mid list
(** Current leaves (messages without attached successors), in mid order —
    what a new message of this participant will list as predecessors. *)

val missing_preds : 'a t -> 'a node -> mid list
(** Predecessors of [node] not yet attached. *)

val attach : 'a t -> 'a node -> ('a node list, mid list) result
(** Attach the node if all predecessors are present: returns the list of
    nodes attached by this call, in causal order — the node itself plus any
    pending successors it unblocked.  Otherwise returns the missing mids and
    parks the node in the pending set. *)

val pending : 'a t -> int

val pending_drop_newest : 'a t -> int -> mid list
(** Flow control: drop pending messages beyond the given bound, newest mids
    first; returns what was dropped.  Dropping re-creates omission failures,
    as the paper notes about Psync. *)

val find : 'a t -> mid -> 'a node option
(** An attached node, for retransmission. *)
