(** PDUs of the Psync baseline [PBS89]. *)

type 'a body =
  | Msg of 'a Context_graph.node
      (** a conversation message carrying its direct predecessors *)
  | Retrans_req of { requester : Net.Node_id.t; wanted : Context_graph.mid }
  | Retrans_reply of 'a Context_graph.node
  | Keepalive
  | Mask_out of { target : Net.Node_id.t; initiator : Net.Node_id.t }
  | Mask_ack of { target : Net.Node_id.t }
  | Mask_done of { target : Net.Node_id.t }

val body_size : 'a body -> int

val kind : 'a body -> Net.Traffic.kind

val pp_body : Format.formatter -> 'a body -> unit
