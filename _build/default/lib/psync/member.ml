type 'a action =
  | Multicast of 'a Wire.body
  | Unicast of Net.Node_id.t * 'a Wire.body
  | Delivered of 'a Context_graph.node
  | Masked of Net.Node_id.t
  | Dropped of Context_graph.mid list

type 'a submission = { payload : 'a; size : int }

type mask_state = {
  m_target : Net.Node_id.t;
  mutable m_awaiting : Net.Node_id.Set.t;  (* initiator side *)
  m_initiator : Net.Node_id.t;
  m_deadline : int;
}

type 'a t = {
  id : Net.Node_id.t;
  n : int;
  k : int;
  graph : 'a Context_graph.t;
  participants : bool array;
  mutable next_seq : int;
  mutable mask : mask_state option;
  last_heard : int array;
  (* one retransmission request per missing mid per subrun; rotate the target
     when attempts accumulate *)
  retrans : (Context_graph.mid, int) Hashtbl.t;
  sap : 'a submission Queue.t;
  pending_bound : int option;
  mutable masked_out : bool;
  mutable last_data_subrun : int;
  mutable last_keepalive_subrun : int;
  default_payload_size : int;
}

let create ?pending_bound ~n ~k id =
  if n <= 0 then invalid_arg "Member.create: n must be positive";
  if k <= 0 then invalid_arg "Member.create: k must be positive";
  {
    id;
    n;
    k;
    graph = Context_graph.create ();
    participants = Array.make n true;
    next_seq = 1;
    mask = None;
    last_heard = Array.make n 0;
    retrans = Hashtbl.create 64;
    sap = Queue.create ();
    pending_bound;
    masked_out = false;
    last_data_subrun = -1;
    last_keepalive_subrun = -1;
    default_payload_size = 64;
  }

let id t = t.id
let active t = not t.masked_out
let masking t = t.mask <> None
let participants t = Array.copy t.participants
let pending t = Context_graph.pending t.graph
let attached t = Context_graph.attached t.graph
let sap_backlog t = Queue.length t.sap

let submit ?size t payload =
  let size = Option.value size ~default:t.default_payload_size in
  Queue.push { payload; size } t.sap

let me t = Net.Node_id.to_int t.id

let leader t =
  let rec scan i =
    if i >= t.n then None
    else if t.participants.(i) then Some (Net.Node_id.of_int i)
    else scan (i + 1)
  in
  scan 0

(* -- attach + bookkeeping ---------------------------------------------- *)

let note_missing t missing =
  List.iter
    (fun mid ->
      if not (Hashtbl.mem t.retrans mid) then Hashtbl.replace t.retrans mid 0)
    missing

let integrate t node =
  match Context_graph.attach t.graph node with
  | Ok attached ->
      List.iter
        (fun (n : 'a Context_graph.node) -> Hashtbl.remove t.retrans n.mid)
        attached;
      List.map (fun n -> Delivered n) attached
  | Error missing ->
      note_missing t missing;
      []

let flow_control t =
  match t.pending_bound with
  | None -> []
  | Some bound -> (
      match Context_graph.pending_drop_newest t.graph bound with
      | [] -> []
      | dropped ->
          (* What was dropped may be requested again later; forget the
             retransmission state of mids nothing references anymore. *)
          [ Dropped dropped ])

(* -- mask_out ---------------------------------------------------------- *)

let apply_mask t target =
  t.participants.(Net.Node_id.to_int target) <- false;
  t.mask <- None;
  if Net.Node_id.equal target t.id then t.masked_out <- true

let begin_mask t ~subrun target =
  let awaiting = ref Net.Node_id.Set.empty in
  Array.iteri
    (fun i participant ->
      if participant && i <> me t && i <> Net.Node_id.to_int target then
        awaiting := Net.Node_id.Set.add (Net.Node_id.of_int i) !awaiting)
    t.participants;
  t.mask <-
    Some
      {
        m_target = target;
        m_awaiting = !awaiting;
        m_initiator = t.id;
        m_deadline = subrun + t.k;
      };
  [ Multicast (Wire.Mask_out { target; initiator = t.id }) ]

let finish_mask t target =
  apply_mask t target;
  [ Multicast (Wire.Mask_done { target }); Masked target ]

(* -- round hook -------------------------------------------------------- *)

let generate t ~subrun =
  if t.masked_out || masking t || Queue.is_empty t.sap then []
  else begin
    t.last_data_subrun <- subrun;
    let { payload; size } = Queue.pop t.sap in
    let node =
      {
        Context_graph.mid = { sender = t.id; seq = t.next_seq };
        preds = Context_graph.leaves t.graph;
        payload;
        payload_size = size;
      }
    in
    t.next_seq <- t.next_seq + 1;
    let delivered = integrate t node in
    Multicast (Wire.Msg node) :: delivered
  end

let retransmission_requests t ~subrun =
  ignore subrun;
  Hashtbl.fold
    (fun mid attempts acc ->
      Hashtbl.replace t.retrans mid (attempts + 1);
      let sender = mid.Context_graph.sender in
      (* Ask the original sender while it is still a participant; then rotate
         over the surviving participants. *)
      let target =
        if
          t.participants.(Net.Node_id.to_int sender)
          && attempts < t.k
        then Some sender
        else begin
          let rec rotate i steps =
            if steps >= t.n then None
            else if t.participants.(i) && i <> me t then
              Some (Net.Node_id.of_int i)
            else rotate ((i + 1) mod t.n) (steps + 1)
          in
          rotate (attempts mod t.n) 0
        end
      in
      match target with
      | Some target when not (Net.Node_id.equal target t.id) ->
          Unicast (target, Wire.Retrans_req { requester = t.id; wanted = mid })
          :: acc
      | Some _ | None -> acc)
    t.retrans []

let detect_failures t ~subrun =
  if subrun <= t.k then []
  else begin
    let suspects = ref [] in
    Array.iteri
      (fun i participant ->
        if participant && i <> me t && subrun - t.last_heard.(i) >= t.k then
          suspects := Net.Node_id.of_int i :: !suspects)
      t.participants;
    !suspects
  end

let on_round t ~subrun =
  if t.masked_out then []
  else begin
    let mask_actions =
      match t.mask with
      | Some m
        when Net.Node_id.equal m.m_initiator t.id && subrun >= m.m_deadline ->
          (* Non-ackers are silently tolerated: apply the mask anyway (they
             will learn from Mask_done or be masked next). *)
          finish_mask t m.m_target
      | Some m
        when (not (Net.Node_id.equal m.m_initiator t.id))
             && subrun >= m.m_deadline + t.k ->
          (* Initiator vanished: unblock and let the detector try again. *)
          t.mask <- None;
          []
      | Some _ -> []
      | None -> (
          match detect_failures t ~subrun with
          | [] -> []
          | suspect :: _ -> (
              match leader t with
              | Some l when Net.Node_id.equal l t.id ->
                  begin_mask t ~subrun suspect
              | Some l when Net.Node_id.equal l suspect ->
                  (* The leader itself is the suspect: next participant
                     initiates. *)
                  let rec next i =
                    if i >= t.n then None
                    else if
                      t.participants.(i)
                      && not (Net.Node_id.equal (Net.Node_id.of_int i) suspect)
                    then Some (Net.Node_id.of_int i)
                    else next (i + 1)
                  in
                  (match next 0 with
                  | Some me_candidate when Net.Node_id.equal me_candidate t.id ->
                      begin_mask t ~subrun suspect
                  | Some _ | None -> [])
              | Some _ | None -> []))
    in
    let keepalive =
      if
        (not (masking t))
        && t.last_data_subrun < subrun - 1
        && t.last_keepalive_subrun < subrun
      then begin
        t.last_keepalive_subrun <- subrun;
        [ Multicast Wire.Keepalive ]
      end
      else []
    in
    mask_actions @ keepalive @ retransmission_requests t ~subrun
    @ generate t ~subrun @ flow_control t
  end

(* -- PDU handler ------------------------------------------------------- *)

let handle t ~subrun ~from body =
  if t.masked_out then []
  else begin
    t.last_heard.(Net.Node_id.to_int from) <- subrun;
    match body with
    | Wire.Msg node | Wire.Retrans_reply node ->
        let delivered = integrate t node in
        delivered @ flow_control t
    | Wire.Keepalive -> []
    | Wire.Retrans_req { requester; wanted } -> (
        match Context_graph.find t.graph wanted with
        | Some node -> [ Unicast (requester, Wire.Retrans_reply node) ]
        | None -> [])
    | Wire.Mask_out { target; initiator } ->
        if Net.Node_id.equal target t.id then begin
          (* Excluded: leave the conversation. *)
          t.masked_out <- true;
          []
        end
        else begin
          (match t.mask with
          | None ->
              t.mask <-
                Some
                  {
                    m_target = target;
                    m_awaiting = Net.Node_id.Set.empty;
                    m_initiator = initiator;
                    m_deadline = subrun + t.k;
                  }
          | Some _ -> ());
          [ Unicast (initiator, Wire.Mask_ack { target }) ]
        end
    | Wire.Mask_ack { target } -> (
        match t.mask with
        | Some m
          when Net.Node_id.equal m.m_initiator t.id
               && Net.Node_id.equal m.m_target target ->
            m.m_awaiting <- Net.Node_id.Set.remove from m.m_awaiting;
            if Net.Node_id.Set.is_empty m.m_awaiting then finish_mask t target
            else []
        | Some _ | None -> [])
    | Wire.Mask_done { target } ->
        if Net.Node_id.equal target t.id then begin
          t.masked_out <- true;
          []
        end
        else begin
          apply_mask t target;
          [ Masked target ]
        end
  end
