lib/psync/cluster.mli: Context_graph Member Net Sim Wire
