lib/psync/wire.ml: Context_graph Format List Net
