lib/psync/cluster.ml: Array Context_graph Format List Member Net Sim Wire
