lib/psync/context_graph.ml: Format Int List Map Net
