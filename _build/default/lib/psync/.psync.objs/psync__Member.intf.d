lib/psync/member.mli: Context_graph Net Wire
