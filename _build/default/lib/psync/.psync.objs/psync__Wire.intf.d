lib/psync/wire.mli: Context_graph Format Net
