lib/psync/context_graph.mli: Format Net
