lib/psync/ps_codec.ml: Bytes Context_graph List Net Printf Wire
