lib/psync/ps_codec.mli: Net Wire
