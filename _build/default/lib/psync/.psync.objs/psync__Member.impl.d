lib/psync/member.ml: Array Context_graph Hashtbl List Net Option Queue Wire
