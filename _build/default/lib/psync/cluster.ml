type 'a delivery = {
  node : Net.Node_id.t;
  msg : 'a Context_graph.node;
  at : Sim.Ticks.t;
}

type 'a t = {
  n : int;
  net : 'a Wire.body Net.Netsim.t;
  tracer : Sim.Tracer.t;
  members : 'a Member.t array;
  mutable round : int;
  mutable started : bool;
  mutable round_callbacks : (round:int -> unit) list;
  mutable deliveries : 'a delivery list;
  mutable generations : (Context_graph.mid * Sim.Ticks.t) list;
  mutable masked : (Net.Node_id.t * Net.Node_id.t * Sim.Ticks.t) list;
  mutable dropped : int;
}

let engine t = Net.Netsim.engine t.net
let now t = Sim.Engine.now (engine t)
let crashed t node = Net.Fault.crashed (Net.Netsim.fault t.net) ~now:(now t) node

let dsts_of t member =
  let self = Member.id member in
  let participants = Member.participants member in
  let dsts = ref [] in
  for i = t.n - 1 downto 0 do
    if participants.(i) && i <> Net.Node_id.to_int self then
      dsts := Net.Node_id.of_int i :: !dsts
  done;
  !dsts

let execute t member action =
  let self = Member.id member in
  match action with
  | Member.Multicast body ->
      (match body with
      | Wire.Msg node ->
          t.generations <- (node.Context_graph.mid, now t) :: t.generations
      | Wire.Retrans_req _ | Wire.Retrans_reply _ | Wire.Keepalive
      | Wire.Mask_out _ | Wire.Mask_ack _ | Wire.Mask_done _ ->
          ());
      Net.Netsim.multicast t.net ~src:self ~dsts:(dsts_of t member)
        ~kind:(Wire.kind body) ~size:(Wire.body_size body) body
  | Member.Unicast (dst, body) ->
      Net.Netsim.send t.net ~src:self ~dst ~kind:(Wire.kind body)
        ~size:(Wire.body_size body) body
  | Member.Delivered msg ->
      t.deliveries <- { node = self; msg; at = now t } :: t.deliveries
  | Member.Masked target ->
      t.masked <- (self, target, now t) :: t.masked;
      Sim.Tracer.emitf t.tracer ~time:(now t)
        ~source:(Format.asprintf "%a" Net.Node_id.pp self)
        "masked out %a" Net.Node_id.pp target
  | Member.Dropped mids -> t.dropped <- t.dropped + List.length mids

let execute_all t member actions = List.iter (execute t member) actions

let create ?(tracer = Sim.Tracer.null) ?pending_bound ~n ~k ~net () =
  let members =
    Array.init n (fun i -> Member.create ?pending_bound ~n ~k (Net.Node_id.of_int i))
  in
  let t =
    {
      n;
      net;
      tracer;
      members;
      round = 0;
      started = false;
      round_callbacks = [];
      deliveries = [];
      generations = [];
      masked = [];
      dropped = 0;
    }
  in
  Array.iter
    (fun member ->
      Net.Netsim.attach net (Member.id member)
        (fun (packet : _ Net.Netsim.packet) ->
          if not (crashed t (Member.id member)) then
            execute_all t member
              (Member.handle member ~subrun:(t.round / 2) ~from:packet.src
                 packet.payload)))
    members;
  t

let run_round t =
  let subrun = t.round / 2 in
  Array.iter
    (fun member ->
      if not (crashed t (Member.id member)) then
        execute_all t member (Member.on_round member ~subrun))
    t.members;
  t.round <- t.round + 1;
  List.iter
    (fun callback -> callback ~round:(t.round - 1))
    (List.rev t.round_callbacks)

let start t =
  if t.started then invalid_arg "Cluster.start: already started";
  t.started <- true;
  let rec tick () =
    run_round t;
    ignore (Sim.Engine.schedule_after (engine t) ~delay:Sim.Ticks.round tick)
  in
  ignore (Sim.Engine.schedule_after (engine t) ~delay:Sim.Ticks.zero tick)

let submit ?size t node payload =
  Member.submit ?size t.members.(Net.Node_id.to_int node) payload

let member t node = t.members.(Net.Node_id.to_int node)
let members t = Array.to_list t.members

let on_round t callback = t.round_callbacks <- callback :: t.round_callbacks

let deliveries t = List.rev t.deliveries
let generations t = List.rev t.generations
let masked t = List.rev t.masked
let dropped t = t.dropped
let subrun t = t.round / 2

let active_members t =
  Array.to_list t.members
  |> List.filter_map (fun member ->
         let node = Member.id member in
         if Member.active member && not (crashed t node) then Some node
         else None)

let quiescent t =
  let actives =
    Array.to_list t.members
    |> List.filter (fun member ->
           Member.active member && not (crashed t (Member.id member)))
  in
  match actives with
  | [] -> true
  | first :: rest ->
      List.for_all
        (fun member ->
          Member.sap_backlog member = 0
          && Member.pending member = 0
          && not (Member.masking member))
        actives
      && List.for_all
           (fun member -> Member.attached member = Member.attached first)
           rest
