(** A Psync conversation bound to the simulator.

    Psync mounts directly on the datagram subnetwork and repairs loss itself
    with retransmission requests, so the cluster uses {!Net.Netsim} without a
    transport entity. *)

type 'a delivery = {
  node : Net.Node_id.t;
  msg : 'a Context_graph.node;
  at : Sim.Ticks.t;
}

type 'a t

val create :
  ?tracer:Sim.Tracer.t ->
  ?pending_bound:int ->
  n:int ->
  k:int ->
  net:'a Wire.body Net.Netsim.t ->
  unit ->
  'a t

val start : 'a t -> unit

val submit : ?size:int -> 'a t -> Net.Node_id.t -> 'a -> unit

val member : 'a t -> Net.Node_id.t -> 'a Member.t
val members : 'a t -> 'a Member.t list

val on_round : 'a t -> (round:int -> unit) -> unit

val deliveries : 'a t -> 'a delivery list
val generations : 'a t -> (Context_graph.mid * Sim.Ticks.t) list
val masked : 'a t -> (Net.Node_id.t * Net.Node_id.t * Sim.Ticks.t) list
(** (who observed, who was masked, when). *)

val dropped : 'a t -> int
(** Pending messages truncated by flow control, across all members. *)

val subrun : 'a t -> int

val active_members : 'a t -> Net.Node_id.t list

val quiescent : 'a t -> bool
