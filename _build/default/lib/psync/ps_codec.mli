(** Binary codec for the Psync PDUs; encoded lengths equal
    {!Wire.body_size}, decoding is total (hostile input yields [Error]). *)

val encode_body : 'a Net.Bytebuf.codec -> 'a Wire.body -> bytes
(** Raises [Invalid_argument] when a field exceeds its wire width or a
    payload encoding disagrees with the node's declared [payload_size]. *)

val decode_body :
  'a Net.Bytebuf.codec -> bytes -> ('a Wire.body, string) result
