(** Per-process Psync participant.

    Psync provides causal group multicast through the conversation
    abstraction: messages are attached to a shared context graph and an
    application sees a message only after all its predecessors.  Loss is
    repaired by NACK-style retransmission requests; crashed participants are
    excluded with the specialized [mask_out] operation, which — as the paper
    points out — must be run all over again at every failure and blocks new
    message generation while the group agrees.  Flow control truncates the
    pending set beyond a bound, deliberately re-introducing omissions. *)

type 'a action =
  | Multicast of 'a Wire.body
  | Unicast of Net.Node_id.t * 'a Wire.body
  | Delivered of 'a Context_graph.node
  | Masked of Net.Node_id.t  (** the group agreed to exclude this process *)
  | Dropped of Context_graph.mid list  (** flow-control truncation *)

type 'a t

val create : ?pending_bound:int -> n:int -> k:int -> Net.Node_id.t -> 'a t

val id : 'a t -> Net.Node_id.t
val active : 'a t -> bool
(** False once this process was masked out of the conversation. *)

val masking : 'a t -> bool
(** A mask_out agreement is in progress: generation is blocked. *)

val participants : 'a t -> bool array
val pending : 'a t -> int
val attached : 'a t -> int
val sap_backlog : 'a t -> int

val submit : ?size:int -> 'a t -> 'a -> unit

val on_round : 'a t -> subrun:int -> 'a action list

val handle :
  'a t -> subrun:int -> from:Net.Node_id.t -> 'a Wire.body -> 'a action list
