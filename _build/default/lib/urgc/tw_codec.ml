module W = Net.Bytebuf.Writer
module R = Net.Bytebuf.Reader

let ( let* ) = Net.Bytebuf.( let* )

let tag_data = 1
let tag_request = 2
let tag_decision = 3
let tag_recover_req = 4
let tag_recover_reply = 5

let u32_sentinel = 0xFFFFFFFF

let write_mid w mid =
  W.u32 w (Net.Node_id.to_int (Causal.Mid.origin mid));
  W.u32 w (Causal.Mid.seq mid)

let read_mid r =
  let* origin = R.u32 r in
  let* seq = R.u32 r in
  if seq < 1 then Error "mid: seq must be >= 1"
  else Ok (Causal.Mid.make ~origin:(Net.Node_id.of_int origin) ~seq)

(* data: tag u8 | origin u24 | seq u32 | payload len u16 | pad u16 | payload
   — 8 + 4 + payload = Total_wire.data_size. *)
let write_data payload w (d : 'a Total_wire.data) =
  let body = payload.Net.Bytebuf.encode d.payload in
  if Bytes.length body <> d.payload_size then
    invalid_arg "Tw_codec: payload encoding disagrees with payload_size";
  W.u8 w tag_data;
  W.u24 w (Net.Node_id.to_int (Causal.Mid.origin d.mid));
  W.u32 w (Causal.Mid.seq d.mid);
  W.u16 w (Bytes.length body);
  W.u16 w 0;
  W.bytes w body

let read_data payload r =
  let* origin = R.u24 r in
  let* seq = R.u32 r in
  let* payload_len = R.u16 r in
  let* _pad = R.u16 r in
  if seq < 1 then Error "data: seq must be >= 1"
  else
    let* raw = R.bytes r payload_len in
    let* value = payload.Net.Bytebuf.decode raw in
    Ok
      {
        Total_wire.mid =
          Causal.Mid.make ~origin:(Net.Node_id.of_int origin) ~seq;
        payload = value;
        payload_size = payload_len;
      }

(* decision: subrun+1 u32 | coordinator u32 | next_seq u32 | first u32 |
   stable u32 | flags u8 | window count... wait — the size model is
   17 + 8 |assignments| + 6n + 2 ceil(n/8); encode to match exactly:
     (4+4+4+4+4+1) = 21?  Total_decision.encoded_size =
     4+4+4+4+4+1 + 8 w + 2n + 4n + 2 bitmaps.  *)
let write_decision w (d : Total_decision.t) =
  W.u32 w (d.subrun + 1);
  W.u32 w (Net.Node_id.to_int d.coordinator);
  W.u32 w d.next_seq;
  W.u32 w d.first_assigned;
  W.u32 w d.stable_seq;
  W.u8 w (if d.full_group then 1 else 0);
  Array.iter (write_mid w) d.assignments;
  Array.iter (W.u16 w) d.attempts;
  Array.iter
    (fun v -> W.u32 w (if v = max_int then u32_sentinel else v))
    d.acc_processed;
  W.bitmap w d.alive;
  W.bitmap w d.heard

let read_vec r n read_one =
  let rec loop k acc =
    if k = 0 then Ok (Array.of_list (List.rev acc))
    else
      let* v = read_one r in
      loop (k - 1) (v :: acc)
  in
  loop n []

let read_decision ~n r =
  let* subrun_plus1 = R.u32 r in
  let* coordinator = R.u32 r in
  let* next_seq = R.u32 r in
  let* first_assigned = R.u32 r in
  let* stable_seq = R.u32 r in
  let* flags = R.u8 r in
  let window = next_seq - first_assigned in
  if window < 0 then Error "decision: negative assignment window"
  else
    let* assignments = read_vec r window read_mid in
    let* attempts = read_vec r n R.u16 in
    let* acc_raw = read_vec r n R.u32 in
    let* alive = R.bitmap r n in
    let* heard = R.bitmap r n in
    Ok
      {
        Total_decision.subrun = subrun_plus1 - 1;
        coordinator = Net.Node_id.of_int coordinator;
        next_seq;
        first_assigned;
        assignments;
        stable_seq;
        full_group = flags land 1 <> 0;
        attempts;
        alive;
        heard;
        acc_processed =
          Array.map (fun v -> if v = u32_sentinel then max_int else v) acc_raw;
      }

(* request: tag u8 | sender u16 | pad u8 | subrun u32 | processed u32 |
   unsequenced count... size model: 4 + 4 + 4 + 8 |unsequenced| + decision
   — count derives from total? No: unsequenced count must be explicit.
   The size model allots 4+4+4 = 12 fixed bytes: tag u8 | sender u16 |
   count u8?? count can exceed 255... use: tag u8 | sender u24 | subrun u32
   | processed u16 | count u16.  processed u16 caps at 65535 messages —
   acceptable for simulation but enforce. *)
let write_request w (r : Total_wire.request) =
  W.u8 w tag_request;
  W.u24 w (Net.Node_id.to_int r.sender);
  W.u32 w r.subrun;
  W.u16 w r.processed_upto;
  W.u16 w (List.length r.unsequenced);
  List.iter (write_mid w) r.unsequenced;
  write_decision w r.prev_decision

let read_request ~n r =
  let* sender = R.u24 r in
  let* subrun = R.u32 r in
  let* processed_upto = R.u16 r in
  let* count = R.u16 r in
  let rec read_mids k acc =
    if k = 0 then Ok (List.rev acc)
    else
      let* mid = read_mid r in
      read_mids (k - 1) (mid :: acc)
  in
  let* unsequenced = read_mids count [] in
  let* prev_decision = read_decision ~n r in
  Ok
    {
      Total_wire.sender = Net.Node_id.of_int sender;
      subrun;
      unsequenced;
      processed_upto;
      prev_decision;
    }

let encode_body payload body =
  let w = W.create () in
  (match body with
  | Total_wire.Data d -> write_data payload w d
  | Total_wire.Request r -> write_request w r
  | Total_wire.Decision_pdu d ->
      W.u8 w tag_decision;
      W.u24 w 0;
      write_decision w d
  | Total_wire.Recover_req { requester; from_seq; to_seq } ->
      W.u8 w tag_recover_req;
      W.u24 w (Net.Node_id.to_int requester);
      W.u32 w from_seq;
      W.u32 w to_seq;
      W.u32 w 0
  | Total_wire.Recover_reply { responder; messages } ->
      W.u8 w tag_recover_reply;
      W.u24 w (Net.Node_id.to_int responder);
      W.u32 w (List.length messages);
      List.iter
        (fun (seq, d) ->
          W.u32 w seq;
          write_data payload w d)
        messages);
  let raw = W.contents w in
  let expected = Total_wire.body_size body in
  if Bytes.length raw <> expected then
    invalid_arg
      (Printf.sprintf "Tw_codec: encoded %d bytes, size model says %d"
         (Bytes.length raw) expected);
  raw

let decode_body payload ~n raw =
  let r = R.of_bytes raw in
  let* tag = R.u8 r in
  if tag = tag_data then
    let* d = read_data payload r in
    let* () = R.expect_end r in
    Ok (Total_wire.Data d)
  else if tag = tag_request then
    let* request = read_request ~n r in
    let* () = R.expect_end r in
    Ok (Total_wire.Request request)
  else if tag = tag_decision then begin
    let* _pad = R.u24 r in
    let* d = read_decision ~n r in
    let* () = R.expect_end r in
    Ok (Total_wire.Decision_pdu d)
  end
  else if tag = tag_recover_req then begin
    let* requester = R.u24 r in
    let* from_seq = R.u32 r in
    let* to_seq = R.u32 r in
    let* _reserved = R.u32 r in
    let* () = R.expect_end r in
    Ok
      (Total_wire.Recover_req
         { requester = Net.Node_id.of_int requester; from_seq; to_seq })
  end
  else if tag = tag_recover_reply then begin
    let* responder = R.u24 r in
    let* count = R.u32 r in
    let rec read_messages k acc =
      if k = 0 then Ok (List.rev acc)
      else
        let* seq = R.u32 r in
        let* inner_tag = R.u8 r in
        if inner_tag <> tag_data then Error "recover-reply: expected data"
        else
          let* d = read_data payload r in
          read_messages (k - 1) ((seq, d) :: acc)
    in
    let* messages = read_messages count [] in
    let* () = R.expect_end r in
    Ok
      (Total_wire.Recover_reply
         { responder = Net.Node_id.of_int responder; messages })
  end
  else Error (Printf.sprintf "unknown urgc tag %d" tag)
