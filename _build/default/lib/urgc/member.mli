(** Per-process entity of the total-order companion algorithm (urgc).

    Same round/subrun skeleton as {!Urcgc.Member}, but a message may only be
    processed once a coordinator decision has bound it to the next global
    sequence number — including the sender's own messages.  That extra
    sequencing round is the service-time price of total ordering that the
    paper's Section 2 contrasts with the causal service. *)

type reason = Declared_crashed | Decision_silence

val reason_to_string : reason -> string

type 'a action =
  | Broadcast of 'a Total_wire.body
  | Send of Net.Node_id.t * 'a Total_wire.body
  | Processed of int * 'a Total_wire.data
      (** (global sequence, message): processed here, in sequence order *)
  | Left of reason

type 'a t

val create :
  ?silence_limit:int -> n:int -> k:int -> Net.Node_id.t -> 'a t
(** [silence_limit] defaults to [2k]. *)

val id : 'a t -> Net.Node_id.t
val active : 'a t -> bool
val processed_upto : 'a t -> int
val pool_size : 'a t -> int
(** Messages received but not yet processed (unsequenced or out of order). *)

val history_length : 'a t -> int
val latest_decision : 'a t -> Total_decision.t
val sap_backlog : 'a t -> int

val submit : ?size:int -> 'a t -> 'a -> unit

val begin_subrun : 'a t -> subrun:int -> 'a action list
val mid_subrun : 'a t -> subrun:int -> 'a action list
val handle : 'a t -> 'a Total_wire.body -> 'a action list
