(** A urgc (total-order) group bound to the simulator — the mirror of
    {!Urcgc.Cluster} for the companion algorithm. *)

type 'a delivery = {
  node : Net.Node_id.t;
  seq : int;  (** the agreed global sequence number *)
  data : 'a Total_wire.data;
  at : Sim.Ticks.t;
}

type 'a t

val create :
  ?tracer:Sim.Tracer.t ->
  ?silence_limit:int ->
  n:int ->
  k:int ->
  net:'a Total_wire.body Net.Netsim.t ->
  unit ->
  'a t

val start : 'a t -> unit

val submit : ?size:int -> 'a t -> Net.Node_id.t -> 'a -> unit

val member : 'a t -> Net.Node_id.t -> 'a Member.t
val members : 'a t -> 'a Member.t list

val on_round : 'a t -> (round:int -> unit) -> unit

val deliveries : 'a t -> 'a delivery list
val generations : 'a t -> (Causal.Mid.t * Sim.Ticks.t) list
val departures : 'a t -> (Net.Node_id.t * Member.reason * Sim.Ticks.t) list

val subrun : 'a t -> int

val active_members : 'a t -> Net.Node_id.t list

val quiescent : 'a t -> bool

val total_order_ok : 'a t -> bool
(** The URGC clause: every active process processed the same sequence of
    messages, in the same (global) order — checked on the event log. *)
