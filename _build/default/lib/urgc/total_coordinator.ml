let merge_prev prev requests =
  List.fold_left
    (fun best (r : Total_wire.request) ->
      if Total_decision.newer r.prev_decision ~than:best then r.prev_decision
      else best)
    prev requests

let compute ~n ~k ~subrun ~coordinator ~prev ~requests =
  let got_request = Array.make n false in
  List.iter
    (fun (r : Total_wire.request) ->
      got_request.(Net.Node_id.to_int r.sender) <- true)
    requests;
  (* Membership: identical rule to urcgc. *)
  let attempts = Array.copy prev.Total_decision.attempts in
  let alive = Array.copy prev.Total_decision.alive in
  for i = 0 to n - 1 do
    if alive.(i) then
      if got_request.(i) then attempts.(i) <- 0
      else begin
        attempts.(i) <- attempts.(i) + 1;
        if attempts.(i) >= k then alive.(i) <- false
      end
  done;
  (* Sequencing: append every reported mid not already in the window, in
     deterministic mid order.  Mids below the window were processed by every
     active process, so no live process reports them as unsequenced. *)
  let fresh =
    List.concat_map (fun (r : Total_wire.request) -> r.Total_wire.unsequenced)
      requests
    |> List.sort_uniq Causal.Mid.compare
    |> List.filter (fun mid -> not (Total_decision.is_assigned prev mid))
  in
  let assignments = Array.append prev.assignments (Array.of_list fresh) in
  let next_seq = prev.next_seq + List.length fresh in
  (* Stability: accumulate the per-process processed_upto over the heard
     cycle; on full coverage the minimum becomes the stable cut and the
     window head is trimmed. *)
  let heard = Array.copy prev.Total_decision.heard in
  let acc_processed = Array.copy prev.Total_decision.acc_processed in
  List.iter
    (fun (r : Total_wire.request) ->
      let i = Net.Node_id.to_int r.sender in
      heard.(i) <- true;
      if r.processed_upto < acc_processed.(i) then
        acc_processed.(i) <- r.processed_upto)
    requests;
  let full_group =
    let covered = ref true in
    for i = 0 to n - 1 do
      if alive.(i) && not heard.(i) then covered := false
    done;
    !covered
  in
  if full_group then begin
    let stable_seq =
      Array.to_seqi acc_processed
      |> Seq.fold_left
           (fun acc (i, v) -> if alive.(i) && v < acc then v else acc)
           max_int
    in
    let stable_seq =
      if stable_seq = max_int then prev.stable_seq
      else max prev.stable_seq stable_seq
    in
    (* Trim the window below the stable cut. *)
    let drop = max 0 (stable_seq + 1 - prev.first_assigned) in
    let drop = min drop (Array.length assignments) in
    let assignments = Array.sub assignments drop (Array.length assignments - drop) in
    let first_assigned = prev.first_assigned + drop in
    (* Restart the accumulator empty (see Urcgc.Coordinator: re-seeding
       with this subrun's values would keep stability one subrun stale). *)
    let heard' = Array.make n false in
    let acc' = Array.make n max_int in
    {
      Total_decision.subrun;
      coordinator;
      next_seq;
      first_assigned;
      assignments;
      stable_seq;
      full_group = true;
      attempts;
      alive;
      heard = heard';
      acc_processed = acc';
    }
  end
  else
    {
      Total_decision.subrun;
      coordinator;
      next_seq;
      first_assigned = prev.first_assigned;
      assignments;
      stable_seq = prev.stable_seq;
      full_group = false;
      attempts;
      alive;
      heard;
      acc_processed;
    }
