lib/urgc/member.ml: Array Causal Hashtbl List Net Option Queue Total_coordinator Total_decision Total_wire Urcgc
