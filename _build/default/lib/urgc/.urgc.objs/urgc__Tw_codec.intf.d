lib/urgc/tw_codec.mli: Net Total_wire
