lib/urgc/cluster.ml: Array Causal Format Hashtbl List Member Net Option Sim Total_decision Total_wire
