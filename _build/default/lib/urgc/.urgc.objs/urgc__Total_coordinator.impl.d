lib/urgc/total_coordinator.ml: Array Causal List Net Seq Total_decision Total_wire
