lib/urgc/total_wire.ml: Causal Format List Net Total_decision
