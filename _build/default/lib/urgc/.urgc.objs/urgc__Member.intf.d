lib/urgc/member.mli: Net Total_decision Total_wire
