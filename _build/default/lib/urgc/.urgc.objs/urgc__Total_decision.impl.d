lib/urgc/total_decision.ml: Array Causal Format Net
