lib/urgc/cluster.mli: Causal Member Net Sim Total_wire
