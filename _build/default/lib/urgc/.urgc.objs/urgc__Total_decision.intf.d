lib/urgc/total_decision.mli: Causal Format Net
