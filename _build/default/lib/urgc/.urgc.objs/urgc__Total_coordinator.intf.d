lib/urgc/total_coordinator.mli: Net Total_decision Total_wire
