lib/urgc/total_wire.mli: Causal Format Net Total_decision
