lib/urgc/tw_codec.ml: Array Bytes Causal List Net Printf Total_decision Total_wire
