(** Binary codec for the urgc (total-order) PDUs; encoded lengths equal
    {!Total_wire.body_size}, decoding is total. *)

val encode_body : 'a Net.Bytebuf.codec -> 'a Total_wire.body -> bytes
(** Raises [Invalid_argument] when a field exceeds its wire width or a
    payload encoding disagrees with the declared [payload_size]. *)

val decode_body :
  'a Net.Bytebuf.codec -> n:int -> bytes -> ('a Total_wire.body, string) result
