(** PDUs of the urgc companion algorithm [APR93] — the authors' solution to
    the Uniform Reliable Group Communication problem with {e total} ordering,
    which Section 2 of the paper contrasts with urcgc's causal service.

    The structure mirrors urcgc (rounds, subruns, rotating coordinator,
    piggybacked decisions) but the coordinator's decision {e assigns} the
    processing order instead of checking an application-supplied one: "all
    the members of G consistently decide on the same progressive order to
    process messages". *)

type 'a data = {
  mid : Causal.Mid.t;  (** origin + origin-local sequence number *)
  payload : 'a;
  payload_size : int;
}

type request = {
  sender : Net.Node_id.t;
  subrun : int;
  unsequenced : Causal.Mid.t list;
      (** received data messages not yet given a global order *)
  processed_upto : int;  (** highest global sequence processed *)
  prev_decision : Total_decision.t;
}

type 'a body =
  | Data of 'a data
  | Request of request
  | Decision_pdu of Total_decision.t
  | Recover_req of { requester : Net.Node_id.t; from_seq : int; to_seq : int }
  | Recover_reply of { responder : Net.Node_id.t; messages : (int * 'a data) list }

val data_size : 'a data -> int
val body_size : 'a body -> int
val kind : 'a body -> Net.Traffic.kind
val pp_body : Format.formatter -> 'a body -> unit
