type 'a delivery = {
  node : Net.Node_id.t;
  seq : int;
  data : 'a Total_wire.data;
  at : Sim.Ticks.t;
}

type 'a t = {
  n : int;
  net : 'a Total_wire.body Net.Netsim.t;
  tracer : Sim.Tracer.t;
  members : 'a Member.t array;
  mutable round : int;
  mutable started : bool;
  mutable round_callbacks : (round:int -> unit) list;
  mutable deliveries : 'a delivery list;
  mutable generations : (Causal.Mid.t * Sim.Ticks.t) list;
  mutable departures : (Net.Node_id.t * Member.reason * Sim.Ticks.t) list;
}

let engine t = Net.Netsim.engine t.net
let now t = Sim.Engine.now (engine t)
let crashed t node = Net.Fault.crashed (Net.Netsim.fault t.net) ~now:(now t) node

let alive_dsts t member =
  let d = Member.latest_decision member in
  let self = Member.id member in
  let dsts = ref [] in
  for i = t.n - 1 downto 0 do
    if d.Total_decision.alive.(i) && i <> Net.Node_id.to_int self then
      dsts := Net.Node_id.of_int i :: !dsts
  done;
  !dsts

let execute t member action =
  let self = Member.id member in
  match action with
  | Member.Broadcast body ->
      (match body with
      | Total_wire.Data data ->
          t.generations <- (data.Total_wire.mid, now t) :: t.generations
      | Total_wire.Request _ | Total_wire.Decision_pdu _
      | Total_wire.Recover_req _ | Total_wire.Recover_reply _ ->
          ());
      Net.Netsim.multicast t.net ~src:self ~dsts:(alive_dsts t member)
        ~kind:(Total_wire.kind body) ~size:(Total_wire.body_size body) body
  | Member.Send (dst, body) ->
      Net.Netsim.send t.net ~src:self ~dst ~kind:(Total_wire.kind body)
        ~size:(Total_wire.body_size body) body
  | Member.Processed (seq, data) ->
      t.deliveries <- { node = self; seq; data; at = now t } :: t.deliveries
  | Member.Left why ->
      t.departures <- (self, why, now t) :: t.departures;
      Sim.Tracer.emitf t.tracer ~time:(now t)
        ~source:(Format.asprintf "%a" Net.Node_id.pp self)
        "left the group: %s"
        (Member.reason_to_string why)

let execute_all t member actions = List.iter (execute t member) actions

let create ?(tracer = Sim.Tracer.null) ?silence_limit ~n ~k ~net () =
  let members =
    Array.init n (fun i -> Member.create ?silence_limit ~n ~k (Net.Node_id.of_int i))
  in
  let t =
    {
      n;
      net;
      tracer;
      members;
      round = 0;
      started = false;
      round_callbacks = [];
      deliveries = [];
      generations = [];
      departures = [];
    }
  in
  Array.iter
    (fun member ->
      Net.Netsim.attach net (Member.id member)
        (fun (packet : _ Net.Netsim.packet) ->
          if not (crashed t (Member.id member)) then
            execute_all t member (Member.handle member packet.payload)))
    members;
  t

let run_round t =
  let subrun = t.round / 2 in
  Array.iter
    (fun member ->
      if not (crashed t (Member.id member)) then
        let actions =
          if t.round mod 2 = 0 then Member.begin_subrun member ~subrun
          else Member.mid_subrun member ~subrun
        in
        execute_all t member actions)
    t.members;
  t.round <- t.round + 1;
  List.iter
    (fun callback -> callback ~round:(t.round - 1))
    (List.rev t.round_callbacks)

let start t =
  if t.started then invalid_arg "Cluster.start: already started";
  t.started <- true;
  let rec tick () =
    run_round t;
    ignore (Sim.Engine.schedule_after (engine t) ~delay:Sim.Ticks.round tick)
  in
  ignore (Sim.Engine.schedule_after (engine t) ~delay:Sim.Ticks.zero tick)

let submit ?size t node payload =
  Member.submit ?size t.members.(Net.Node_id.to_int node) payload

let member t node = t.members.(Net.Node_id.to_int node)
let members t = Array.to_list t.members

let on_round t callback = t.round_callbacks <- callback :: t.round_callbacks

let deliveries t = List.rev t.deliveries
let generations t = List.rev t.generations
let departures t = List.rev t.departures
let subrun t = t.round / 2

let active_members t =
  Array.to_list t.members
  |> List.filter_map (fun member ->
         let node = Member.id member in
         if Member.active member && not (crashed t node) then Some node
         else None)

let quiescent t =
  let actives =
    Array.to_list t.members
    |> List.filter (fun member ->
           Member.active member && not (crashed t (Member.id member)))
  in
  match actives with
  | [] -> true
  | first :: rest ->
      List.for_all
        (fun member ->
          Member.sap_backlog member = 0 && Member.pool_size member = 0)
        actives
      && List.for_all
           (fun member ->
             Member.processed_upto member = Member.processed_upto first)
           rest

let total_order_ok t =
  (* Rebuild each active process's processing log and compare: they must be
     prefix-compatible and, at quiescence, identical. *)
  let actives = Net.Node_id.Set.of_list (active_members t) in
  let logs = Hashtbl.create 16 in
  List.iter
    (fun { node; seq; data; _ } ->
      if Net.Node_id.Set.mem node actives then begin
        let log = Option.value ~default:[] (Hashtbl.find_opt logs node) in
        Hashtbl.replace logs node ((seq, data.Total_wire.mid) :: log)
      end)
    (List.rev t.deliveries);
  let ordered =
    Hashtbl.fold (fun _ log acc -> List.rev log :: acc) logs []
  in
  match ordered with
  | [] -> true
  | first :: rest ->
      (* Sequence numbers must be 1..len gap-free and bind the same mids at
         every process. *)
      let well_formed log =
        List.for_all2
          (fun expected (seq, _) -> expected = seq)
          (List.init (List.length log) (fun i -> i + 1))
          log
      in
      let rec prefix_equal a b =
        match (a, b) with
        | [], _ | _, [] -> true
        | (sa, ma) :: ta, (sb, mb) :: tb ->
            sa = sb && Causal.Mid.equal ma mb && prefix_equal ta tb
      in
      List.for_all well_formed ordered
      && List.for_all (fun log -> prefix_equal first log) rest
