(** The urgc coordinator's decision: the global processing order.

    [assignments] is the recent window of (global sequence -> message id)
    bindings; [first_assigned] is the sequence number of its head.  The
    window is cumulative over recent subruns so a process that missed one
    decision learns the bindings from the next (the same circulation
    resilience as urcgc's decisions); bindings below the group's stable
    point are dropped from the window. *)

type t = {
  subrun : int;
  coordinator : Net.Node_id.t;
  next_seq : int;  (** first unassigned global sequence number *)
  first_assigned : int;  (** global seq of [assignments]'s head; >= 1 *)
  assignments : Causal.Mid.t array;  (** window of assigned mids *)
  stable_seq : int;  (** all actives processed up to here; history cut *)
  full_group : bool;
  attempts : int array;
  alive : bool array;
  heard : bool array;
  acc_processed : int array;  (** per-process processed_upto this cycle *)
}

val initial : n:int -> t

val newer : t -> than:t -> bool

val assignment : t -> int -> Causal.Mid.t option
(** [assignment d seq] is the mid bound to global sequence [seq], if the
    window covers it. *)

val is_assigned : t -> Causal.Mid.t -> bool
(** The mid appears in the current window. *)

val encoded_size : t -> int

val pp : Format.formatter -> t -> unit
