type t = {
  subrun : int;
  coordinator : Net.Node_id.t;
  next_seq : int;
  first_assigned : int;
  assignments : Causal.Mid.t array;
  stable_seq : int;
  full_group : bool;
  attempts : int array;
  alive : bool array;
  heard : bool array;
  acc_processed : int array;
}

let initial ~n =
  if n <= 0 then invalid_arg "Total_decision.initial: n must be positive";
  {
    subrun = -1;
    coordinator = Net.Node_id.of_int 0;
    next_seq = 1;
    first_assigned = 1;
    assignments = [||];
    stable_seq = 0;
    full_group = false;
    attempts = Array.make n 0;
    alive = Array.make n true;
    heard = Array.make n false;
    acc_processed = Array.make n max_int;
  }

let newer t ~than = t.subrun > than.subrun

let assignment t seq =
  let index = seq - t.first_assigned in
  if seq >= t.first_assigned && index < Array.length t.assignments then
    Some t.assignments.(index)
  else None

let is_assigned t mid = Array.exists (Causal.Mid.equal mid) t.assignments

let encoded_size t =
  let n = Array.length t.attempts in
  let bitmap = (n + 7) / 8 in
  (* subrun, coordinator, next_seq, first_assigned, stable_seq, flags *)
  4 + 4 + 4 + 4 + 4 + 1
  (* the assignment window: one mid each *)
  + (Causal.Mid.encoded_size * Array.length t.assignments)
  (* attempts + acc_processed *)
  + (2 * n) + (4 * n)
  (* alive + heard bitmaps *)
  + (2 * bitmap)

let pp ppf t =
  Format.fprintf ppf
    "@[<v 2>total-decision{subrun=%d; coord=%a; next=%d; window=%d@%d; \
     stable=%d; full=%b}@]"
    t.subrun Net.Node_id.pp t.coordinator t.next_seq
    (Array.length t.assignments)
    t.first_assigned t.stable_seq t.full_group
