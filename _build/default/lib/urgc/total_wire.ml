type 'a data = {
  mid : Causal.Mid.t;
  payload : 'a;
  payload_size : int;
}

type request = {
  sender : Net.Node_id.t;
  subrun : int;
  unsequenced : Causal.Mid.t list;
  processed_upto : int;
  prev_decision : Total_decision.t;
}

type 'a body =
  | Data of 'a data
  | Request of request
  | Decision_pdu of Total_decision.t
  | Recover_req of { requester : Net.Node_id.t; from_seq : int; to_seq : int }
  | Recover_reply of { responder : Net.Node_id.t; messages : (int * 'a data) list }

let data_size d = Causal.Mid.encoded_size + 4 + d.payload_size

let body_size = function
  | Data d -> data_size d
  | Request r ->
      4 + 4 + 4
      + (Causal.Mid.encoded_size * List.length r.unsequenced)
      + Total_decision.encoded_size r.prev_decision
  | Decision_pdu d -> 4 + Total_decision.encoded_size d
  | Recover_req _ -> 16
  | Recover_reply { messages; _ } ->
      8 + List.fold_left (fun acc (_, d) -> acc + 4 + data_size d) 0 messages

let kind = function
  | Data _ -> Net.Traffic.Data
  | Request _ | Decision_pdu _ -> Net.Traffic.Control
  | Recover_req _ | Recover_reply _ -> Net.Traffic.Recovery

let pp_body ppf = function
  | Data d -> Format.fprintf ppf "data %a" Causal.Mid.pp d.mid
  | Request r ->
      Format.fprintf ppf "request from %a (subrun %d, %d unsequenced)"
        Net.Node_id.pp r.sender r.subrun
        (List.length r.unsequenced)
  | Decision_pdu d -> Total_decision.pp ppf d
  | Recover_req { from_seq; to_seq; _ } ->
      Format.fprintf ppf "recover-req seq %d..%d" from_seq to_seq
  | Recover_reply { messages; _ } ->
      Format.fprintf ppf "recover-reply (%d msgs)" (List.length messages)
