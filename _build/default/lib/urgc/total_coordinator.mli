(** Pure decision making for the total-order companion algorithm.

    Same rotating-coordinator skeleton as {!Urcgc.Coordinator}, but the
    decision {e assigns} the global processing order: every message id
    reported as unsequenced is appended to the assignment window in a
    deterministic order. *)

val compute :
  n:int ->
  k:int ->
  subrun:int ->
  coordinator:Net.Node_id.t ->
  prev:Total_decision.t ->
  requests:Total_wire.request list ->
  Total_decision.t

val merge_prev :
  Total_decision.t -> Total_wire.request list -> Total_decision.t
