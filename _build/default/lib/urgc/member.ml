type reason = Declared_crashed | Decision_silence

let reason_to_string = function
  | Declared_crashed -> "declared crashed (suicide)"
  | Decision_silence -> "decision silence"

type 'a action =
  | Broadcast of 'a Total_wire.body
  | Send of Net.Node_id.t * 'a Total_wire.body
  | Processed of int * 'a Total_wire.data
  | Left of reason

type 'a submission = { payload : 'a; size : int }

module Mid_map = Causal.Mid.Map

type 'a t = {
  id : Net.Node_id.t;
  n : int;
  k : int;
  silence_limit : int;
  mutable pool : 'a Total_wire.data Mid_map.t;  (* received, unprocessed *)
  mutable processed_upto : int;
  history : (int, 'a Total_wire.data) Hashtbl.t;  (* by global sequence *)
  mutable decision : Total_decision.t;
  mutable decision_seen_this_subrun : bool;
  mutable silence : int;
  mutable next_seq : int;  (* own mid counter *)
  mutable pending_requests : Total_wire.request list;
  mutable coordinator_for : int option;
  mutable left : reason option;
  sap : 'a submission Queue.t;
  mutable subrun : int;
  default_payload_size : int;
}

let create ?silence_limit ~n ~k id =
  if n <= 0 then invalid_arg "Member.create: n must be positive";
  if k <= 0 then invalid_arg "Member.create: k must be positive";
  {
    id;
    n;
    k;
    silence_limit = Option.value silence_limit ~default:(2 * k);
    pool = Mid_map.empty;
    processed_upto = 0;
    history = Hashtbl.create 256;
    decision = Total_decision.initial ~n;
    decision_seen_this_subrun = false;
    silence = 0;
    next_seq = 1;
    pending_requests = [];
    coordinator_for = None;
    left = None;
    sap = Queue.create ();
    subrun = -1;
    default_payload_size = 64;
  }

let id t = t.id
let active t = t.left = None
let processed_upto t = t.processed_upto
let pool_size t = Mid_map.cardinal t.pool
let history_length t = Hashtbl.length t.history
let latest_decision t = t.decision
let sap_backlog t = Queue.length t.sap

let submit ?size t payload =
  let size = Option.value size ~default:t.default_payload_size in
  Queue.push { payload; size } t.sap

let leave t reason =
  t.left <- Some reason;
  [ Left reason ]

(* Process, in global order, every sequenced message we hold. *)
let drain t =
  let actions = ref [] in
  let continue = ref true in
  while !continue do
    let seq = t.processed_upto + 1 in
    match Total_decision.assignment t.decision seq with
    | None -> continue := false
    | Some mid -> (
        match Mid_map.find_opt mid t.pool with
        | None -> continue := false
        | Some data ->
            t.pool <- Mid_map.remove mid t.pool;
            t.processed_upto <- seq;
            Hashtbl.replace t.history seq data;
            actions := Processed (seq, data) :: !actions)
  done;
  List.rev !actions

let gc_history t =
  let stable = t.decision.Total_decision.stable_seq in
  let victims =
    Hashtbl.fold (fun seq _ acc -> if seq <= stable then seq :: acc else acc)
      t.history []
  in
  List.iter (Hashtbl.remove t.history) victims

let adopt_decision t d =
  if not (Total_decision.newer d ~than:t.decision) then []
  else begin
    t.decision <- d;
    t.decision_seen_this_subrun <- true;
    t.silence <- 0;
    if not d.Total_decision.alive.(Net.Node_id.to_int t.id) then
      leave t Declared_crashed
    else begin
      gc_history t;
      drain t
    end
  end

let unsequenced t =
  Mid_map.fold
    (fun mid _ acc ->
      if Total_decision.is_assigned t.decision mid then acc else mid :: acc)
    t.pool []
  |> List.rev

let my_request t ~subrun =
  {
    Total_wire.sender = t.id;
    subrun;
    unsequenced = unsequenced t;
    processed_upto = t.processed_upto;
    prev_decision = t.decision;
  }

let generate_data t =
  if Queue.is_empty t.sap then []
  else begin
    let { payload; size } = Queue.pop t.sap in
    let mid = Causal.Mid.make ~origin:t.id ~seq:t.next_seq in
    t.next_seq <- t.next_seq + 1;
    let data = { Total_wire.mid; payload; payload_size = size } in
    (* Unlike urcgc, the sender cannot process its own message yet: it needs
       the global order first. *)
    t.pool <- Mid_map.add mid data t.pool;
    [ Broadcast (Total_wire.Data data) ]
  end

(* Recovery: assigned-but-missing data below the decision's frontier. *)
let recovery_requests t =
  let d = t.decision in
  let target_seq = min (t.processed_upto + 64) (d.Total_decision.next_seq - 1) in
  if target_seq <= t.processed_upto then []
  else begin
    (* Is the very next message missing its data (rather than unassigned)? *)
    match Total_decision.assignment d (t.processed_upto + 1) with
    | Some mid when not (Mid_map.mem mid t.pool) ->
        let responder = d.Total_decision.coordinator in
        if Net.Node_id.equal responder t.id then []
        else
          [
            Send
              ( responder,
                Total_wire.Recover_req
                  {
                    requester = t.id;
                    from_seq = t.processed_upto + 1;
                    to_seq = target_seq;
                  } );
          ]
    | Some _ | None -> []
  end

let begin_subrun t ~subrun =
  if not (active t) then []
  else begin
    if t.subrun >= 0 && not t.decision_seen_this_subrun then
      t.silence <- t.silence + 1;
    t.subrun <- subrun;
    t.decision_seen_this_subrun <- false;
    if t.silence >= t.silence_limit then leave t Decision_silence
    else begin
      let coordinator =
        Urcgc.Coordinator.rotation ~alive:t.decision.Total_decision.alive
          ~subrun
      in
      let request = my_request t ~subrun in
      let request_actions =
        if Net.Node_id.equal coordinator t.id then begin
          t.coordinator_for <- Some subrun;
          t.pending_requests <- [ request ];
          []
        end
        else begin
          t.coordinator_for <- None;
          t.pending_requests <- [];
          [ Send (coordinator, Total_wire.Request request) ]
        end
      in
      request_actions @ recovery_requests t @ generate_data t
    end
  end

let mid_subrun t ~subrun =
  if not (active t) then []
  else begin
    let decision_actions =
      match t.coordinator_for with
      | Some s when s = subrun ->
          let requests = t.pending_requests in
          t.pending_requests <- [];
          t.coordinator_for <- None;
          let prev = Total_coordinator.merge_prev t.decision requests in
          let d =
            Total_coordinator.compute ~n:t.n ~k:t.k ~subrun ~coordinator:t.id
              ~prev ~requests
          in
          let local = adopt_decision t d in
          if active t then Broadcast (Total_wire.Decision_pdu d) :: local
          else local
      | Some _ | None -> []
    in
    if active t then decision_actions @ generate_data t else decision_actions
  end

let handle t body =
  if not (active t) then []
  else
    match body with
    | Total_wire.Data data ->
        let seq_of_mid mid =
          (* Already processed?  Look the mid up in the window below our
             processed point via the decision. *)
          let rec scan seq =
            if seq > t.processed_upto then false
            else
              match Total_decision.assignment t.decision seq with
              | Some m when Causal.Mid.equal m mid -> true
              | Some _ | None -> scan (seq + 1)
          in
          scan (max 1 (t.decision.Total_decision.first_assigned))
        in
        if Mid_map.mem data.mid t.pool || seq_of_mid data.Total_wire.mid then []
        else begin
          t.pool <- Mid_map.add data.Total_wire.mid data t.pool;
          drain t
        end
    | Total_wire.Request r ->
        (match t.coordinator_for with
        | Some s when s = r.Total_wire.subrun ->
            let already =
              List.exists
                (fun (q : Total_wire.request) ->
                  Net.Node_id.equal q.sender r.sender)
                t.pending_requests
            in
            if not already then t.pending_requests <- r :: t.pending_requests
        | Some _ | None -> ());
        []
    | Total_wire.Decision_pdu d -> adopt_decision t d
    | Total_wire.Recover_req { requester; from_seq; to_seq } ->
        let messages =
          List.filter_map
            (fun seq ->
              match Hashtbl.find_opt t.history seq with
              | Some data -> Some (seq, data)
              | None -> None)
            (List.init (max 0 (to_seq - from_seq + 1)) (fun i -> from_seq + i))
        in
        if messages = [] then []
        else
          [
            Send
              (requester, Total_wire.Recover_reply { responder = t.id; messages });
          ]
    | Total_wire.Recover_reply { messages; _ } ->
        List.iter
          (fun (seq, data) ->
            (* Racing replies can carry already-processed sequences; the
               sequence number makes the duplicate check exact. *)
            if
              seq > t.processed_upto
              && not (Mid_map.mem data.Total_wire.mid t.pool)
            then t.pool <- Mid_map.add data.Total_wire.mid data t.pool)
          messages;
        drain t
