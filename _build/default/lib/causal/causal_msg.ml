type 'a t = {
  mid : Mid.t;
  deps : Mid.t list;
  payload : 'a;
  payload_size : int;
}

let header_size = Mid.encoded_size + 2 + 2

let validate_deps mid deps =
  let rec check = function
    | [] | [ _ ] -> ()
    | a :: (b :: _ as rest) ->
        if Net.Node_id.equal (Mid.origin a) (Mid.origin b) then
          invalid_arg "Causal_msg.make: two dependencies share an origin";
        check rest
  in
  check deps;
  List.iter
    (fun dep ->
      if
        Net.Node_id.equal (Mid.origin dep) (Mid.origin mid)
        && Mid.seq dep >= Mid.seq mid
      then invalid_arg "Causal_msg.make: dependency on self or a later message")
    deps

let make ~mid ~deps ~payload_size payload =
  if payload_size < 0 then invalid_arg "Causal_msg.make: negative payload size";
  let deps = List.sort_uniq Mid.compare deps in
  validate_deps mid deps;
  { mid; deps; payload; payload_size }

let encoded_size t =
  header_size + (Mid.encoded_size * List.length t.deps) + t.payload_size

let depends_on t m =
  List.exists (Mid.equal m) t.deps
  || (Net.Node_id.equal (Mid.origin t.mid) (Mid.origin m)
     && Mid.seq m < Mid.seq t.mid)

let pp ppf t =
  Format.fprintf ppf "%a<-[%a]" Mid.pp t.mid
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
       Mid.pp)
    t.deps
