module Int_map = Map.Make (Int)

type 'a t = { entries : 'a Causal_msg.t Int_map.t array; mutable total : int }

let create ~n =
  if n <= 0 then invalid_arg "History.create: n must be positive";
  { entries = Array.make n Int_map.empty; total = 0 }

let index mid = Net.Node_id.to_int (Mid.origin mid)

let mem t mid = Int_map.mem (Mid.seq mid) t.entries.(index mid)

let store t msg =
  let mid = msg.Causal_msg.mid in
  if not (mem t mid) then begin
    let i = index mid in
    t.entries.(i) <- Int_map.add (Mid.seq mid) msg t.entries.(i);
    t.total <- t.total + 1
  end

let find t mid = Int_map.find_opt (Mid.seq mid) t.entries.(index mid)

let range t ~origin ~lo ~hi =
  let entry = t.entries.(Net.Node_id.to_int origin) in
  let rec collect seq acc =
    if seq < lo then acc
    else
      let acc =
        match Int_map.find_opt seq entry with
        | Some msg -> msg :: acc
        | None -> acc
      in
      collect (seq - 1) acc
  in
  collect hi []

let purge_upto t ~origin ~seq =
  let i = Net.Node_id.to_int origin in
  let below, at, above = Int_map.split seq t.entries.(i) in
  let keep = match at with None -> above | Some _ -> above in
  let removed = Int_map.cardinal below + if at = None then 0 else 1 in
  t.entries.(i) <- keep;
  t.total <- t.total - removed;
  removed

let length t = t.total

let entry_length t origin =
  Int_map.cardinal t.entries.(Net.Node_id.to_int origin)

let max_seq t ~origin =
  match Int_map.max_binding_opt t.entries.(Net.Node_id.to_int origin) with
  | None -> 0
  | Some (seq, _) -> seq

let fold t ~init ~f =
  Array.fold_left
    (fun acc entry -> Int_map.fold (fun _ msg acc -> f acc msg) entry acc)
    init t.entries
