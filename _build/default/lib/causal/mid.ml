type t = { origin : Net.Node_id.t; seq : int }

let make ~origin ~seq =
  if seq < 1 then invalid_arg "Mid.make: seq must be >= 1";
  { origin; seq }

let origin t = t.origin
let seq t = t.seq

let compare a b =
  let c = Net.Node_id.compare a.origin b.origin in
  if c <> 0 then c else Int.compare a.seq b.seq

let equal a b = compare a b = 0

let predecessor t = if t.seq = 1 then None else Some { t with seq = t.seq - 1 }

let successor t = { t with seq = t.seq + 1 }

let encoded_size = 8

let pp ppf t = Format.fprintf ppf "%a#%d" Net.Node_id.pp t.origin t.seq

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Set = Set.Make (Ord)
module Map = Map.Make (Ord)
