(** Tracker of processed messages: the paper's [last_processed] vector.

    Under the intermediate interpretation of causality each origin's messages
    form a chain, so what a process has processed of origin [j] is always a
    prefix [1 .. last_processed.(j)].  A message is processable exactly when
    it is the next of its origin's chain and all its explicit dependencies
    have been processed (Section 4: "a process q may process a received
    message msg only if it already processed all the messages that causally
    precede it"). *)

type t

val create : n:int -> t
(** All-zero vector: nothing processed. *)

val n : t -> int

val last_processed : t -> Net.Node_id.t -> int

val vector : t -> int array
(** A copy of the whole [last_processed] vector (index = origin). *)

val processed : t -> Mid.t -> bool

val processable : t -> 'a Causal_msg.t -> bool
(** True iff [msg.mid.seq = last_processed(origin) + 1] and every dependency
    is processed. *)

val missing : t -> 'a Causal_msg.t -> Mid.t list
(** The causal predecessors still unprocessed: the next-in-chain message of
    the origin if there is a gap, plus every unprocessed explicit
    dependency. Empty iff [processable]. *)

val mark : t -> Mid.t -> unit
(** Records processing.  Raises [Invalid_argument] if the mid is not the next
    of its origin's chain (out-of-order processing would violate Uniform
    Ordering). *)

val force_skip_to : t -> origin:Net.Node_id.t -> seq:int -> unit
(** Advances origin's chain pointer without processing, used when the group
    agrees to destroy an orphaned sequence suffix and restart from a later
    point.  No-op if already past [seq]. *)

val count : t -> int
(** Total messages processed. *)

val pp : Format.formatter -> t -> unit
