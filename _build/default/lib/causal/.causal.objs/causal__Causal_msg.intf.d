lib/causal/causal_msg.mli: Format Mid
