lib/causal/mid.mli: Format Map Net Set
