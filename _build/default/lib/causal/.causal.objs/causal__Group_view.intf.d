lib/causal/group_view.mli: Format Net
