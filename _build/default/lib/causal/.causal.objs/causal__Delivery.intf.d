lib/causal/delivery.mli: Causal_msg Format Mid Net
