lib/causal/history.ml: Array Causal_msg Int Map Mid Net
