lib/causal/causal_msg.ml: Format List Mid Net
