lib/causal/group_view.ml: Array Format Net
