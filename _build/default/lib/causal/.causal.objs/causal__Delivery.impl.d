lib/causal/delivery.ml: Array Causal_msg Format List Mid Net
