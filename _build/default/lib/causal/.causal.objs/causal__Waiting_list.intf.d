lib/causal/waiting_list.mli: Causal_msg Delivery Mid Net
