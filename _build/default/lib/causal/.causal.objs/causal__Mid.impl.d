lib/causal/mid.ml: Format Int Map Net Set
