lib/causal/history.mli: Causal_msg Mid Net
