lib/causal/waiting_list.ml: Array Causal_msg Delivery List Mid Net Seq
