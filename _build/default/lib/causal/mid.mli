(** Message identifiers.

    A [mid] uniquely identifies a message: the originating process and a
    progressive sequence number within that process's causal sequence
    (Section 4: "it assigns to msg a progressive order").  Sequence numbers
    start at 1; 0 denotes "nothing processed yet" in [last_processed]
    vectors. *)

type t = { origin : Net.Node_id.t; seq : int }

val make : origin:Net.Node_id.t -> seq:int -> t
(** Raises [Invalid_argument] if [seq < 1]. *)

val origin : t -> Net.Node_id.t
val seq : t -> int

val compare : t -> t -> int
(** Orders by origin then sequence number. *)

val equal : t -> t -> bool

val predecessor : t -> t option
(** The previous message of the same origin's sequence; [None] for the root
    (seq 1). *)

val successor : t -> t

val encoded_size : int
(** Bytes a mid occupies on the wire (4-byte origin + 4-byte seq). *)

val pp : Format.formatter -> t -> unit
(** Prints as [p3#7]. *)

module Set : Set.S with type elt = t
module Map : Map.S with type key = t
