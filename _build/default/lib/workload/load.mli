(** Offered-load model.

    Processes generate messages at round boundaries; the offered load is the
    per-process probability of submitting a new message at each round —
    1.0 saturates the paper's maximum service rate of one message per round
    per process. *)

type deps_mode =
  | Frontier
      (** a message depends on the last processed message of every other
          origin — the densest labelling (temporal causality) *)
  | Own_chain
      (** no explicit dependencies: sequences are fully concurrent and only
          the per-origin chains order messages *)
  | Random_frontier of float
      (** each frontier entry is kept with the given probability — models
          applications that declare only the significant dependencies *)

type t = {
  rate : float;  (** per-process submission probability per round *)
  total_messages : int option;  (** global cap on generated messages *)
  payload_size : int;
  deps_mode : deps_mode;
  senders : Net.Node_id.t list option;  (** [None] = everybody *)
}

val make :
  ?total_messages:int ->
  ?payload_size:int ->
  ?deps_mode:deps_mode ->
  ?senders:Net.Node_id.t list ->
  rate:float ->
  unit ->
  t
(** Defaults: no cap, 64-byte payloads, [Frontier], all processes.
    Raises [Invalid_argument] if [rate] is outside [0, 1]. *)

val pp : Format.formatter -> t -> unit
