type report = {
  name : string;
  generated : int;
  delivered_remote : int;
  delay : Stats.Summary.t;
  completion_rtd : float;
  subruns : int;
  control_msgs : int;
  recovery_msgs : int;
  data_msgs : int;
  pending_peak : int;
  dropped : int;
  masked : int;
  causal_ok : bool;
  violations : string list;
}

(* Causal order under Psync: a message may be delivered only after every one
   of its direct predecessors was delivered at the same node. *)
let check_causal deliveries violations =
  let seen = Hashtbl.create 1024 in
  let ok = ref true in
  List.iter
    (fun { Psync.Cluster.node; msg; at } ->
      let missing =
        List.filter
          (fun pred -> not (Hashtbl.mem seen (node, pred)))
          msg.Psync.Context_graph.preds
      in
      if missing <> [] then begin
        ok := false;
        violations :=
          Format.asprintf "%a delivered %a before %d predecessor(s) at %a"
            Net.Node_id.pp node Psync.Context_graph.pp_mid
            msg.Psync.Context_graph.mid (List.length missing) Sim.Ticks.pp at
          :: !violations
      end;
      Hashtbl.replace seen (node, msg.Psync.Context_graph.mid) ())
    deliveries;
  !ok

let run ?tracer ?(name = "psync") ?pending_bound ~n ~k ~load ~fault ~seed
    ~max_rtd () =
  let engine = Sim.Engine.create () in
  let rng = Sim.Rng.create ~seed in
  let fault = Net.Fault.create fault ~rng:(Sim.Rng.split rng) in
  let net = Net.Netsim.create engine ~fault ~rng:(Sim.Rng.split rng) () in
  let cluster = Psync.Cluster.create ?tracer ?pending_bound ~n ~k ~net () in
  let senders =
    match load.Load.senders with
    | Some senders -> senders
    | None -> Net.Node_id.group n
  in
  let produced = ref 0 in
  let cap_reached () =
    match load.Load.total_messages with
    | None -> false
    | Some cap -> !produced >= cap
  in
  Psync.Cluster.on_round cluster (fun ~round:_ ->
      List.iter
        (fun node ->
          if (not (cap_reached ())) && Sim.Rng.bool rng load.Load.rate then begin
            let member = Psync.Cluster.member cluster node in
            if Psync.Member.active member then begin
              incr produced;
              Psync.Cluster.submit ~size:load.Load.payload_size cluster node
                !produced
            end
          end)
        senders);
  let pending_peak = ref 0 in
  Psync.Cluster.on_round cluster (fun ~round:_ ->
      List.iter
        (fun member ->
          if Psync.Member.active member then
            pending_peak := max !pending_peak (Psync.Member.pending member))
        (Psync.Cluster.members cluster));
  Psync.Cluster.start cluster;
  let max_ticks = Sim.Ticks.of_rtd max_rtd in
  let rtd = Sim.Ticks.of_int Sim.Ticks.per_rtd in
  let rec advance () =
    let now = Sim.Engine.now engine in
    if Sim.Ticks.(now >= max_ticks) then ()
    else begin
      let target = Sim.Ticks.add now rtd in
      let target = if Sim.Ticks.(max_ticks < target) then max_ticks else target in
      Sim.Engine.run engine ~until:target;
      if cap_reached () && Psync.Cluster.quiescent cluster then ()
      else advance ()
    end
  in
  advance ();
  let deliveries = Psync.Cluster.deliveries cluster in
  let sent_at = Hashtbl.create 256 in
  List.iter
    (fun (mid, at) -> Hashtbl.replace sent_at mid at)
    (Psync.Cluster.generations cluster);
  let remote =
    List.filter
      (fun { Psync.Cluster.node; msg; _ } ->
        not (Net.Node_id.equal node msg.Psync.Context_graph.mid.sender))
      deliveries
  in
  let delays =
    List.filter_map
      (fun { Psync.Cluster.msg; at; _ } ->
        match Hashtbl.find_opt sent_at msg.Psync.Context_graph.mid with
        | None -> None
        | Some t0 -> Some (Sim.Ticks.to_rtd (Sim.Ticks.diff at t0)))
      remote
  in
  let completion_rtd =
    List.fold_left
      (fun acc (d : _ Psync.Cluster.delivery) ->
        Float.max acc (Sim.Ticks.to_rtd d.at))
      0.0 deliveries
  in
  let violations = ref [] in
  let causal_ok = check_causal deliveries violations in
  let traffic = Net.Netsim.traffic net in
  {
    name;
    generated = List.length (Psync.Cluster.generations cluster);
    delivered_remote = List.length remote;
    delay = Stats.Summary.of_list delays;
    completion_rtd;
    subruns = Psync.Cluster.subrun cluster;
    control_msgs = Net.Traffic.count traffic Net.Traffic.Control;
    recovery_msgs = Net.Traffic.count traffic Net.Traffic.Recovery;
    data_msgs = Net.Traffic.count traffic Net.Traffic.Data;
    pending_peak = !pending_peak;
    dropped = Psync.Cluster.dropped cluster;
    masked = List.length (Psync.Cluster.masked cluster);
    causal_ok;
    violations = List.rev !violations;
  }

let mean_delay_rtd report =
  if report.delay.Stats.Summary.count = 0 then 0.0
  else report.delay.Stats.Summary.mean

let pp_report ppf r =
  Format.fprintf ppf
    "@[<v 2>%s:@ generated=%d delivered_remote=%d@ mean delay=%.3f rtd@ \
     completion=%.1f rtd@ control=%d recovery=%d data=%d@ pending peak=%d \
     dropped=%d masked=%d@ causal=%b@]"
    r.name r.generated r.delivered_remote (mean_delay_rtd r) r.completion_rtd
    r.control_msgs r.recovery_msgs r.data_msgs r.pending_peak r.dropped
    r.masked r.causal_ok
