type report = {
  name : string;
  generated : int;
  delivered_remote : int;
  delay : Stats.Summary.t;
  completion_rtd : float;
  subruns : int;
  control_msgs : int;
  control_bytes : int;
  control_mean_size : float;
  control_max_size : int;
  data_msgs : int;
  ack_msgs : int;
  unstable_peak : int;
  view_changes : int;
  flush_time_rtd : float;
  causal_ok : bool;
  atomicity_ok : bool;
  violations : string list;
}

(* Replay the delivery log and verify CBCAST's own causal condition. *)
let check_causal n deliveries violations =
  let locals = Hashtbl.create 16 in
  let local node =
    match Hashtbl.find_opt locals node with
    | Some vt -> vt
    | None ->
        let vt = Cbcast.Vclock.create ~n in
        Hashtbl.replace locals node vt;
        vt
  in
  let ok = ref true in
  List.iter
    (fun { Cbcast.Cluster.node; data; at } ->
      let vt = local node in
      if
        Cbcast.Vclock.deliverable ~msg_vt:data.Cbcast.Cb_wire.vt
          ~from:data.Cbcast.Cb_wire.sender ~local:vt
      then Cbcast.Vclock.tick vt data.Cbcast.Cb_wire.sender
      else begin
        ok := false;
        violations :=
          Format.asprintf "%a delivered %a#%d out of causal order at %a"
            Net.Node_id.pp node Net.Node_id.pp data.Cbcast.Cb_wire.sender
            (Cbcast.Cb_wire.seq data) Sim.Ticks.pp at
          :: !violations;
        Cbcast.Vclock.merge vt data.Cbcast.Cb_wire.vt
      end)
    deliveries;
  !ok

let check_atomicity actives deliveries violations =
  let sets = Hashtbl.create 16 in
  List.iter (fun node -> Hashtbl.replace sets node []) actives;
  List.iter
    (fun { Cbcast.Cluster.node; data; _ } ->
      match Hashtbl.find_opt sets node with
      | None -> ()
      | Some acc ->
          Hashtbl.replace sets node
            ((Net.Node_id.to_int data.Cbcast.Cb_wire.sender, Cbcast.Cb_wire.seq data)
            :: acc))
    deliveries;
  match actives with
  | [] -> true
  | first :: rest ->
      let norm node = List.sort_uniq compare (Hashtbl.find sets node) in
      let reference = norm first in
      let ok = ref true in
      List.iter
        (fun node ->
          if norm node <> reference then begin
            ok := false;
            violations :=
              Format.asprintf "cbcast atomicity: %a and %a delivered \
                               different message sets"
                Net.Node_id.pp first Net.Node_id.pp node
              :: !violations
          end)
        rest;
      !ok

let run ?tracer ?(name = "cbcast") ~n ~k ~load ~fault ~seed ~max_rtd () =
  let engine = Sim.Engine.create () in
  let rng = Sim.Rng.create ~seed in
  let fault = Net.Fault.create fault ~rng:(Sim.Rng.split rng) in
  let cluster =
    Cbcast.Cluster.create ?tracer ~n ~k ~engine ~fault ~rng:(Sim.Rng.split rng) ()
  in
  let senders =
    match load.Load.senders with
    | Some senders -> senders
    | None -> Net.Node_id.group n
  in
  let produced = ref 0 in
  let cap_reached () =
    match load.Load.total_messages with
    | None -> false
    | Some cap -> !produced >= cap
  in
  Cbcast.Cluster.on_round cluster (fun ~round:_ ->
      List.iter
        (fun node ->
          if (not (cap_reached ())) && Sim.Rng.bool rng load.Load.rate then begin
            let member = Cbcast.Cluster.member cluster node in
            if Cbcast.Member.active member then begin
              incr produced;
              Cbcast.Cluster.submit ~size:load.Load.payload_size cluster node
                !produced
            end
          end)
        senders);
  let unstable_peak = ref 0 in
  Cbcast.Cluster.on_round cluster (fun ~round:_ ->
      List.iter
        (fun member ->
          if Cbcast.Member.active member then
            unstable_peak := max !unstable_peak (Cbcast.Member.unstable member))
        (Cbcast.Cluster.members cluster));
  Cbcast.Cluster.start cluster;
  let max_ticks = Sim.Ticks.of_rtd max_rtd in
  let rtd = Sim.Ticks.of_int Sim.Ticks.per_rtd in
  let rec advance () =
    let now = Sim.Engine.now engine in
    if Sim.Ticks.(now >= max_ticks) then ()
    else begin
      let target = Sim.Ticks.add now rtd in
      let target = if Sim.Ticks.(max_ticks < target) then max_ticks else target in
      Sim.Engine.run engine ~until:target;
      if cap_reached () && Cbcast.Cluster.quiescent cluster then ()
      else advance ()
    end
  in
  advance ();
  let deliveries = Cbcast.Cluster.deliveries cluster in
  let generations = Cbcast.Cluster.generations cluster in
  let sent_at = Hashtbl.create 256 in
  List.iter
    (fun (sender, seq, at) ->
      Hashtbl.replace sent_at (Net.Node_id.to_int sender, seq) at)
    generations;
  let remote =
    List.filter
      (fun { Cbcast.Cluster.node; data; _ } ->
        not (Net.Node_id.equal node data.Cbcast.Cb_wire.sender))
      deliveries
  in
  let delays =
    List.filter_map
      (fun { Cbcast.Cluster.data; at; _ } ->
        match
          Hashtbl.find_opt sent_at
            (Net.Node_id.to_int data.Cbcast.Cb_wire.sender, Cbcast.Cb_wire.seq data)
        with
        | None -> None
        | Some t0 -> Some (Sim.Ticks.to_rtd (Sim.Ticks.diff at t0)))
      remote
  in
  let completion_rtd =
    List.fold_left
      (fun acc (d : _ Cbcast.Cluster.delivery) ->
        Float.max acc (Sim.Ticks.to_rtd d.at))
      0.0 deliveries
  in
  let flush_time_rtd =
    match (Cbcast.Cluster.flush_starts cluster, Cbcast.Cluster.view_changes cluster) with
    | [], _ -> 0.0
    | starts, [] ->
        (* A flush began but never completed within the run. *)
        let first =
          List.fold_left
            (fun acc (_, _, at) -> Float.min acc (Sim.Ticks.to_rtd at))
            infinity starts
        in
        Sim.Ticks.to_rtd (Sim.Engine.now engine) -. first
    | starts, changes ->
        let first =
          List.fold_left
            (fun acc (_, _, at) -> Float.min acc (Sim.Ticks.to_rtd at))
            infinity starts
        in
        let last =
          List.fold_left
            (fun acc { Cbcast.Cluster.at; _ } -> Float.max acc (Sim.Ticks.to_rtd at))
            0.0 changes
        in
        Float.max 0.0 (last -. first)
  in
  let actives = Cbcast.Cluster.active_members cluster in
  let violations = ref [] in
  let causal_ok = check_causal n deliveries violations in
  let atomicity_ok = check_atomicity actives deliveries violations in
  let traffic = Cbcast.Cluster.traffic cluster in
  {
    name;
    generated = List.length generations;
    delivered_remote = List.length remote;
    delay = Stats.Summary.of_list delays;
    completion_rtd;
    subruns = Cbcast.Cluster.subrun cluster;
    control_msgs = Net.Traffic.count traffic Net.Traffic.Control;
    control_bytes = Net.Traffic.bytes traffic Net.Traffic.Control;
    control_mean_size = Net.Traffic.mean_size traffic Net.Traffic.Control;
    control_max_size = Net.Traffic.max_size traffic Net.Traffic.Control;
    data_msgs = Net.Traffic.count traffic Net.Traffic.Data;
    ack_msgs = Net.Traffic.count traffic Net.Traffic.Ack;
    unstable_peak = !unstable_peak;
    view_changes =
      List.length
        (List.sort_uniq compare
           (List.map
              (fun { Cbcast.Cluster.view_id; _ } -> view_id)
              (Cbcast.Cluster.view_changes cluster)));
    flush_time_rtd;
    causal_ok;
    atomicity_ok;
    violations = List.rev !violations;
  }

let mean_delay_rtd report =
  if report.delay.Stats.Summary.count = 0 then 0.0
  else report.delay.Stats.Summary.mean

let pp_report ppf r =
  Format.fprintf ppf
    "@[<v 2>%s:@ generated=%d delivered_remote=%d@ mean delay=%.3f rtd@ \
     completion=%.1f rtd@ control: %d msgs, mean %.0f B, max %d B; acks=%d@ \
     unstable peak=%d@ view changes=%d flush time=%.1f rtd@ causal=%b \
     atomic=%b@]"
    r.name r.generated r.delivered_remote (mean_delay_rtd r) r.completion_rtd
    r.control_msgs r.control_mean_size r.control_max_size r.ack_msgs
    r.unstable_peak r.view_changes r.flush_time_rtd r.causal_ok r.atomicity_ok
