(** Experiment runner for the Psync baseline. *)

type report = {
  name : string;
  generated : int;
  delivered_remote : int;
  delay : Stats.Summary.t;  (** end-to-end delay in rtd *)
  completion_rtd : float;
  subruns : int;
  control_msgs : int;
  recovery_msgs : int;
  data_msgs : int;
  pending_peak : int;
  dropped : int;  (** pending messages truncated by Psync's flow control *)
  masked : int;  (** mask_out agreements observed *)
  causal_ok : bool;
  violations : string list;
}

val run :
  ?tracer:Sim.Tracer.t ->
  ?name:string ->
  ?pending_bound:int ->
  n:int ->
  k:int ->
  load:Load.t ->
  fault:Net.Fault.spec ->
  seed:int ->
  max_rtd:float ->
  unit ->
  report

val mean_delay_rtd : report -> float

val pp_report : Format.formatter -> report -> unit
