(** Post-run verification of the URCGC correctness clauses (Definition 3.2).

    The checker replays the recorded processing events and verifies:
    - {b causal ordering}: at every process, every processed message was
      processable at the moment it was processed (its origin chain was
      gap-free and all explicit dependencies already processed);
    - {b uniform atomicity} among survivors: all processes active at the end
      of the run processed exactly the same set of messages;
    - {b no zombie processing}: a message discarded by group agreement was
      never processed by a surviving process;
    - {b view agreement}: all surviving processes hold the same group view
      (Section 4, assumption 4). *)

type verdict = {
  causal_ok : bool;
  atomicity_ok : bool;
  violations : string list;  (** human-readable description of each failure *)
}

val ok : verdict -> bool

val check : 'a Urcgc.Cluster.t -> verdict

val pp : Format.formatter -> verdict -> unit
