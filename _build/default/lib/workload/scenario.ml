type mount = Datagram | Transport of Urcgc.Medium.h_policy

type t = {
  name : string;
  config : Urcgc.Config.t;
  load : Load.t;
  fault : Net.Fault.spec;
  mount : mount;
  latency : Net.Netsim.latency option;
  codec_boundary : bool;
  seed : int;
  max_rtd : float;
  drain_rtd : float;
}

let make ?(name = "scenario") ?(fault = Net.Fault.reliable) ?(mount = Datagram)
    ?latency ?(codec_boundary = false) ?(seed = 42) ?(max_rtd = 400.0)
    ?(drain_rtd = 60.0) ~config ~load () =
  if max_rtd <= 0.0 then invalid_arg "Scenario.make: max_rtd must be positive";
  if drain_rtd < 0.0 then invalid_arg "Scenario.make: negative drain_rtd";
  {
    name;
    config;
    load;
    fault;
    mount;
    latency;
    codec_boundary;
    seed;
    max_rtd;
    drain_rtd;
  }

let crash_at_subrun t node ~subrun =
  if subrun < 0 then invalid_arg "Scenario.crash_at_subrun: negative subrun";
  let time = Sim.Ticks.of_int ((subrun * Sim.Ticks.per_rtd) + 1) in
  { t with fault = { t.fault with crashes = (node, time) :: t.fault.crashes } }

let pp ppf t =
  Format.fprintf ppf "@[<v 2>%s:@ config=%a@ load=%a@ seed=%d@]" t.name
    Urcgc.Config.pp t.config Load.pp t.load t.seed
