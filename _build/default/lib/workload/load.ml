type deps_mode = Frontier | Own_chain | Random_frontier of float

type t = {
  rate : float;
  total_messages : int option;
  payload_size : int;
  deps_mode : deps_mode;
  senders : Net.Node_id.t list option;
}

let make ?total_messages ?(payload_size = 64) ?(deps_mode = Frontier) ?senders
    ~rate () =
  if rate < 0.0 || rate > 1.0 then invalid_arg "Load.make: rate must be in [0,1]";
  if payload_size < 0 then invalid_arg "Load.make: negative payload size";
  (match total_messages with
  | Some cap when cap < 0 -> invalid_arg "Load.make: negative message cap"
  | Some _ | None -> ());
  { rate; total_messages; payload_size; deps_mode; senders }

let pp ppf t =
  Format.fprintf ppf "{rate=%.2f; cap=%a; payload=%dB}" t.rate
    (Format.pp_print_option
       ~none:(fun ppf () -> Format.pp_print_string ppf "none")
       Format.pp_print_int)
    t.total_messages t.payload_size
