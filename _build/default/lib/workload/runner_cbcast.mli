(** Experiment runner for the CBCAST baseline, mirroring {!Runner} so the
    benchmark harness can print urcgc and CBCAST rows side by side. *)

type report = {
  name : string;
  generated : int;
  delivered_remote : int;
  delay : Stats.Summary.t;  (** end-to-end delay in rtd *)
  completion_rtd : float;
  subruns : int;
  control_msgs : int;
  control_bytes : int;
  control_mean_size : float;
  control_max_size : int;
  data_msgs : int;
  ack_msgs : int;
  unstable_peak : int;  (** CBCAST's history analogue *)
  view_changes : int;
  flush_time_rtd : float;
      (** total simulated time between the first flush start and the last
          view installation — the paper's T for CBCAST (Figure 5) *)
  causal_ok : bool;
  atomicity_ok : bool;
  violations : string list;
}

val run :
  ?tracer:Sim.Tracer.t ->
  ?name:string ->
  n:int ->
  k:int ->
  load:Load.t ->
  fault:Net.Fault.spec ->
  seed:int ->
  max_rtd:float ->
  unit ->
  report

val mean_delay_rtd : report -> float

val pp_report : Format.formatter -> report -> unit
