lib/workload/checker.ml: Causal Format Hashtbl List Net Sim Urcgc
