lib/workload/checker.mli: Format Urcgc
