lib/workload/load.mli: Format Net
