lib/workload/runner.mli: Checker Format Scenario Sim Stats Urcgc
