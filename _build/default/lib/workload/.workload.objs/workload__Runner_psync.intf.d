lib/workload/runner_psync.mli: Format Load Net Sim Stats
