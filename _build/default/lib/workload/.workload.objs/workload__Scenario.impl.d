lib/workload/scenario.ml: Format Load Net Sim Urcgc
