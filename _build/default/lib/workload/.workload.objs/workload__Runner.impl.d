lib/workload/runner.ml: Bytes Causal Checker Float Format Int64 List Load Net Scenario Sim Stats Urcgc
