lib/workload/runner_cbcast.mli: Format Load Net Sim Stats
