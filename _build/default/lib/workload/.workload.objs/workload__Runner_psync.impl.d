lib/workload/runner_psync.ml: Float Format Hashtbl List Load Net Psync Sim Stats
