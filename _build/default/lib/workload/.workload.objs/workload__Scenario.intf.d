lib/workload/scenario.mli: Format Load Net Urcgc
