lib/workload/runner_cbcast.ml: Cbcast Float Format Hashtbl List Load Net Sim Stats
