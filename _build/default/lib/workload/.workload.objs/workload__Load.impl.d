lib/workload/load.ml: Format Net
