(** A complete experiment description: group, protocol parameters, workload,
    failures, seed, and run length.  A scenario plus a seed determines a run
    exactly. *)

type mount =
  | Datagram
      (** urcgc directly over the datagram subnetwork — the paper's [h = 1]
          evaluated configuration *)
  | Transport of Urcgc.Medium.h_policy
      (** over the Section 5 transport entity, retransmitting until the
          given number of destinations acknowledged *)

type t = {
  name : string;
  config : Urcgc.Config.t;
  load : Load.t;
  fault : Net.Fault.spec;
  mount : mount;
  latency : Net.Netsim.latency option;
      (** one-way latency model; [None] = the default (0.40–0.49 rtd) *)
  codec_boundary : bool;
      (** when true every PDU crosses the binary codec in flight (requires
          the runner's payload type to encode losslessly) *)
  seed : int;
  max_rtd : float;
      (** hard cap on simulated time; the runner may stop earlier once the
          workload is exhausted and the group is quiescent *)
  drain_rtd : float;
      (** extra time granted after the last submission before declaring a
          run stuck (bounds the paper's recovery windows) *)
}

val make :
  ?name:string ->
  ?fault:Net.Fault.spec ->
  ?mount:mount ->
  ?latency:Net.Netsim.latency ->
  ?codec_boundary:bool ->
  ?seed:int ->
  ?max_rtd:float ->
  ?drain_rtd:float ->
  config:Urcgc.Config.t ->
  load:Load.t ->
  unit ->
  t
(** Defaults: reliable network, [Datagram] mounting, seed 42,
    [max_rtd = 400], [drain_rtd = 60]. *)

val crash_at_subrun : t -> Net.Node_id.t -> subrun:int -> t
(** Adds a fail-stop of the given process at the start of the given subrun
    (plus a tick, so the process still acts in earlier subruns). *)

val pp : Format.formatter -> t -> unit
