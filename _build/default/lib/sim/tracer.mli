(** Structured trace of simulation events.

    A tracer is an optional sink that components write human-readable events
    to; it is used by the examples to narrate runs and by tests to assert on
    behaviour without coupling to internal state. *)

type t

type event = { time : Ticks.t; source : string; message : string }

val create : ?capacity:int -> unit -> t
(** [capacity] bounds the number of retained events (default 65536); older
    events are dropped first. *)

val null : t
(** A tracer that discards everything. *)

val emit : t -> time:Ticks.t -> source:string -> string -> unit

val emitf :
  t -> time:Ticks.t -> source:string -> ('a, Format.formatter, unit, unit) format4 -> 'a

val events : t -> event list
(** Retained events, oldest first. *)

val count : t -> int
(** Total number of events emitted, including dropped ones. *)

val find : t -> f:(event -> bool) -> event option

val pp_event : Format.formatter -> event -> unit

val dump : Format.formatter -> t -> unit
