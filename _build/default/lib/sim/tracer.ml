type event = { time : Ticks.t; source : string; message : string }

type t = {
  enabled : bool;
  capacity : int;
  mutable total : int;
  queue : event Queue.t;
}

let create ?(capacity = 65536) () =
  { enabled = true; capacity; total = 0; queue = Queue.create () }

let null = { enabled = false; capacity = 0; total = 0; queue = Queue.create () }

let emit t ~time ~source message =
  if t.enabled then begin
    t.total <- t.total + 1;
    Queue.push { time; source; message } t.queue;
    if Queue.length t.queue > t.capacity then ignore (Queue.pop t.queue)
  end

let emitf t ~time ~source fmt =
  Format.kasprintf (fun message -> emit t ~time ~source message) fmt

let events t = List.of_seq (Queue.to_seq t.queue)

let count t = t.total

let find t ~f = Seq.find f (Queue.to_seq t.queue)

let pp_event ppf { time; source; message } =
  Format.fprintf ppf "[%a] %-12s %s" Ticks.pp time source message

let dump ppf t =
  Queue.iter (fun e -> Format.fprintf ppf "%a@." pp_event e) t.queue
