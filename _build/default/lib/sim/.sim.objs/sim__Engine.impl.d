lib/sim/engine.ml: Heap Ticks
