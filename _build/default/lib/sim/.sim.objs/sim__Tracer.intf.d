lib/sim/tracer.mli: Format Ticks
