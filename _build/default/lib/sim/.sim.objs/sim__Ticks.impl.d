lib/sim/ticks.ml: Float Format Int
