lib/sim/heap.ml: Array Ticks
