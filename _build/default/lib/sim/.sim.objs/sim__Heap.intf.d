lib/sim/heap.mli: Ticks
