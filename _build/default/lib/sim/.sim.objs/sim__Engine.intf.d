lib/sim/engine.mli: Ticks
