lib/sim/ticks.mli: Format
