lib/sim/rng.mli:
