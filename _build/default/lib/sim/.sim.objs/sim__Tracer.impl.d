lib/sim/tracer.ml: Format List Queue Seq Ticks
