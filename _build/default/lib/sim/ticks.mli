(** Simulated time.

    Time is counted in integer [ticks]; by convention [per_rtd] ticks make one
    round-trip delay ([rtd]), the time unit the paper reports results in.  One
    protocol round is half an rtd and one subrun is a full rtd. *)

type t = private int

val zero : t

val of_int : int -> t
(** [of_int n] is [n] ticks.  Raises [Invalid_argument] if [n < 0]. *)

val to_int : t -> int

val per_rtd : int
(** Number of ticks in one round-trip delay (100). *)

val of_rtd : float -> t
(** [of_rtd x] is the tick count closest to [x] round-trip delays. *)

val to_rtd : t -> float
(** [to_rtd t] expresses [t] in round-trip delays. *)

val round : t
(** Duration of one protocol round: half an rtd. *)

val subrun : t
(** Duration of one subrun: one rtd (two rounds). *)

val add : t -> t -> t
val diff : t -> t -> t
(** [diff a b] is [a - b].  Raises [Invalid_argument] if negative. *)

val mul : t -> int -> t
val compare : t -> t -> int
val equal : t -> t -> bool
val ( <= ) : t -> t -> bool
val ( < ) : t -> t -> bool
val ( >= ) : t -> t -> bool

val pp : Format.formatter -> t -> unit
(** Prints as a decimal number of rtds, e.g. [3.50rtd]. *)
