type 'a entry = { time : Ticks.t; seq : int; value : 'a }

type 'a t = { mutable data : 'a entry array; mutable size : int }

let create () = { data = [||]; size = 0 }

let length t = t.size

let is_empty t = t.size = 0

let entry_lt a b =
  let c = Ticks.compare a.time b.time in
  if c <> 0 then c < 0 else a.seq < b.seq

let grow t =
  let cap = Array.length t.data in
  let new_cap = if cap = 0 then 16 else cap * 2 in
  (* The dummy cell is only reachable below [size], so it is never read. *)
  let dummy = t.data.(0) in
  let data = Array.make new_cap dummy in
  Array.blit t.data 0 data 0 t.size;
  t.data <- data

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if entry_lt t.data.(i) t.data.(parent) then begin
      let tmp = t.data.(i) in
      t.data.(i) <- t.data.(parent);
      t.data.(parent) <- tmp;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.size && entry_lt t.data.(l) t.data.(!smallest) then smallest := l;
  if r < t.size && entry_lt t.data.(r) t.data.(!smallest) then smallest := r;
  if !smallest <> i then begin
    let tmp = t.data.(i) in
    t.data.(i) <- t.data.(!smallest);
    t.data.(!smallest) <- tmp;
    sift_down t !smallest
  end

let push t ~time ~seq value =
  let entry = { time; seq; value } in
  if t.size = 0 && Array.length t.data = 0 then t.data <- Array.make 16 entry;
  if t.size = Array.length t.data then grow t;
  t.data.(t.size) <- entry;
  t.size <- t.size + 1;
  sift_up t (t.size - 1)

let peek t =
  if t.size = 0 then None
  else
    let e = t.data.(0) in
    Some (e.time, e.seq, e.value)

let pop t =
  if t.size = 0 then None
  else begin
    let e = t.data.(0) in
    t.size <- t.size - 1;
    if t.size > 0 then begin
      t.data.(0) <- t.data.(t.size);
      sift_down t 0
    end;
    Some (e.time, e.seq, e.value)
  end

let clear t =
  t.size <- 0;
  t.data <- [||]
