type t = int

let zero = 0

let of_int n =
  if n < 0 then invalid_arg "Ticks.of_int: negative" else n

let to_int t = t

let per_rtd = 100

let of_rtd x =
  if x < 0.0 then invalid_arg "Ticks.of_rtd: negative"
  else int_of_float (Float.round (x *. float_of_int per_rtd))

let to_rtd t = float_of_int t /. float_of_int per_rtd

let round = per_rtd / 2

let subrun = per_rtd

let add a b = a + b

let diff a b =
  if a < b then invalid_arg "Ticks.diff: negative result" else a - b

let mul t k =
  if k < 0 then invalid_arg "Ticks.mul: negative factor" else t * k

let compare = Int.compare
let equal = Int.equal
let ( <= ) (a : t) (b : t) = a <= b
let ( < ) (a : t) (b : t) = a < b
let ( >= ) (a : t) (b : t) = a >= b

let pp ppf t = Format.fprintf ppf "%.2frtd" (to_rtd t)
