(** Diffusion groups (Section 3).

    "The algorithm we present may apply [...] to diffusion groups, by
    multicasting messages to the full set of server and client processes."

    A diffusion client is a passive receiver outside the peer group: it
    gets every data message and every coordinator decision the servers
    multicast, processes data in causal order with the same waiting-list
    machinery as a member, recovers misses from the servers' histories
    (point-to-point, like any member), and applies the group's orphan-purge
    agreements — but it never sends requests, never coordinates, and does
    not count toward group decisions. *)

type 'a client

type 'a t

val attach_clients :
  'a Urcgc.Cluster.t ->
  net:'a Urcgc.Wire.body Net.Netsim.t ->
  client_ids:Net.Node_id.t list ->
  'a t
(** Registers the clients on the network and extends the servers' multicasts
    to them.  Client ids must be outside the group's [0, n) range and not
    already attached to [net].  Call before [Urcgc.Cluster.start]. *)

val clients : 'a t -> 'a client list

val client : 'a t -> Net.Node_id.t -> 'a client
(** Raises [Not_found] for an unknown id. *)

val client_id : 'a client -> Net.Node_id.t

val processed : 'a client -> (Causal.Mid.t * 'a) list
(** Everything the client processed, in its causal processing order. *)

val processed_count : 'a client -> int
val waiting_length : 'a client -> int
val last_processed : 'a client -> Net.Node_id.t -> int
