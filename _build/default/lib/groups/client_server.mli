(** Client-server groups (Section 3).

    "The algorithm we present may apply to client server groups, through a
    proper management of the reply messages."

    Clients are outside the peer group.  A client addresses its request to
    one server; the server multicasts it through urcgc (so every server
    processes every request, uniformly and in causal order) and sends the
    reply to the client when the request message has been {e processed}
    locally — i.e. once the group has accepted it and its causal
    predecessors.  If the contacted server dies before replying, the client
    times out and reissues the request to another server; servers detect
    the duplicate by its client-assigned request id and reply without
    re-multicasting.

    Failover semantics are at-least-once: if the first server multicast the
    request and then crashed before replying, the reissued copy is a new
    group message, so the group may process the request body twice (under
    two different mids).  The client-assigned request id makes server-side
    deduplication — and idempotent application handlers — possible, which is
    the "proper management" the paper alludes to. *)

type 'a request = {
  client : Net.Node_id.t;
  request_id : int;
  body : 'a;
}

type 'a t
(** The service: a urcgc group whose payload type is ['a request]. *)

type 'a client_handle

val create :
  'a request Urcgc.Cluster.t ->
  net:'a request Urcgc.Wire.body Net.Netsim.t ->
  unit ->
  'a t
(** Wires reply management into the cluster.  Call before
    [Urcgc.Cluster.start]. *)

val connect :
  'a t -> client_id:Net.Node_id.t -> ?retry_subruns:int -> server:Net.Node_id.t ->
  unit -> 'a client_handle
(** Registers a client on the network.  [retry_subruns] (default 4) is how
    long the client waits for a reply before reissuing the request to the
    next server.  The client id must be outside the group range. *)

val submit : 'a client_handle -> 'a -> int
(** Sends a request; returns its request id.  The reply arrives
    asynchronously — poll {!replies}. *)

val replies : 'a client_handle -> (int * Net.Node_id.t) list
(** (request id, replying server), in arrival order. *)

val outstanding : 'a client_handle -> int

val retries : 'a client_handle -> int
(** Requests reissued to another server after a timeout. *)
