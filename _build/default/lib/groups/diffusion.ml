type 'a client = {
  id : Net.Node_id.t;
  n : int;
  delivery : Causal.Delivery.t;
  waiting : 'a Causal.Waiting_list.t;
  mutable decision : Urcgc.Decision.t;
  mutable log : (Causal.Mid.t * 'a) list;  (* newest first *)
}

(* Client recovery cannot be served from the members' protocol history: a
   message becomes stable — and is purged — once every *group member*
   processed it, and diffusion clients are outside the group.  Each server
   therefore keeps a bounded retention buffer of recently processed
   messages, and answers client recovery requests from it over a dedicated
   edge network. *)
type 'a edge_msg =
  | Fetch of { client : Net.Node_id.t; origin : Net.Node_id.t; from_seq : int; to_seq : int }
  | Fetched of 'a Causal.Causal_msg.t list

type 'a t = {
  net : 'a Urcgc.Wire.body Net.Netsim.t;
  edge : 'a edge_msg Net.Netsim.t;
  retention : (int, 'a Causal.History.t) Hashtbl.t;
  by_id : (Net.Node_id.t, 'a client) Hashtbl.t;
  order : 'a client list;
}

let process_ready c =
  let rec drain () =
    match Causal.Waiting_list.take_processable c.waiting c.delivery with
    | None -> ()
    | Some msg ->
        Causal.Delivery.mark c.delivery msg.Causal.Causal_msg.mid;
        c.log <- (msg.Causal.Causal_msg.mid, msg.payload) :: c.log;
        drain ()
  in
  drain ()

let receive_data c msg =
  let mid = msg.Causal.Causal_msg.mid in
  if not (Causal.Delivery.processed c.delivery mid) then begin
    Causal.Waiting_list.add c.waiting msg;
    process_ready c
  end

let adopt_decision c (d : Urcgc.Decision.t) =
  if Urcgc.Decision.newer d ~than:c.decision then begin
    c.decision <- d;
    (* Orphan purges agreed by the group apply to clients too: the waiting
       messages can never be processed anywhere. *)
    if d.full_group then
      for j = 0 to c.n - 1 do
        if
          (not d.alive.(j))
          && d.min_waiting.(j) > 0
          && d.min_waiting.(j) - d.max_processed.(j) > 1
        then
          ignore
            (Causal.Waiting_list.discard_from c.waiting
               ~origin:(Net.Node_id.of_int j)
               ~seq:(d.max_processed.(j) + 1))
      done
  end

let handle c body =
  match body with
  | Urcgc.Wire.Data msg -> receive_data c msg
  | Urcgc.Wire.Decision_pdu d -> adopt_decision c d
  | Urcgc.Wire.Recover_reply _ | Urcgc.Wire.Request _ | Urcgc.Wire.Recover_req _
    ->
      ()

(* Once per subrun: if the decisions say some server processed more than we
   did, fetch the gap from the most updated server's retention buffer. *)
let client_recovery t c =
  let d = c.decision in
  for j = 0 to c.n - 1 do
    let origin = Net.Node_id.of_int j in
    let mine = Causal.Delivery.last_processed c.delivery origin in
    if d.Urcgc.Decision.max_processed.(j) > mine then begin
      let target = d.Urcgc.Decision.most_updated.(j) in
      Net.Netsim.send t.edge ~src:c.id ~dst:target ~kind:Net.Traffic.Recovery
        ~size:24
        (Fetch
           {
             client = c.id;
             origin;
             from_seq = mine + 1;
             to_seq = d.Urcgc.Decision.max_processed.(j);
           })
    end
  done

let serve_fetch t server (packet : 'a edge_msg Net.Netsim.packet) =
  match packet.payload with
  | Fetched _ -> ()
  | Fetch { client; origin; from_seq; to_seq } -> (
      match Hashtbl.find_opt t.retention (Net.Node_id.to_int server) with
      | None -> ()
      | Some retained ->
          let to_seq = min to_seq (from_seq + 63) in
          let messages =
            Causal.History.range retained ~origin ~lo:from_seq ~hi:to_seq
          in
          if messages <> [] then begin
            let size =
              List.fold_left
                (fun acc msg -> acc + Causal.Causal_msg.encoded_size msg)
                8 messages
            in
            Net.Netsim.send t.edge ~src:server ~dst:client
              ~kind:Net.Traffic.Recovery ~size (Fetched messages)
          end)

let attach_clients cluster ~net ~client_ids =
  let n = (Urcgc.Cluster.config cluster).Urcgc.Config.n in
  List.iter
    (fun id ->
      if Net.Node_id.to_int id < n then
        invalid_arg "Diffusion.attach_clients: client id inside the group range")
    client_ids;
  let by_id = Hashtbl.create 8 in
  let order =
    List.map
      (fun id ->
        let c =
          {
            id;
            n;
            delivery = Causal.Delivery.create ~n;
            waiting = Causal.Waiting_list.create ~n;
            decision = Urcgc.Decision.initial ~n;
            log = [];
          }
        in
        Hashtbl.replace by_id id c;
        c)
      client_ids
  in
  let edge =
    Net.Netsim.create (Net.Netsim.engine net) ~fault:(Net.Netsim.fault net)
      ~rng:(Sim.Rng.create ~seed:4242) ()
  in
  let t = { net; edge; retention = Hashtbl.create 8; by_id; order } in
  List.iter
    (fun c ->
      Net.Netsim.attach net c.id (fun (packet : _ Net.Netsim.packet) ->
          handle c packet.payload);
      Net.Netsim.attach edge c.id (fun (packet : _ Net.Netsim.packet) ->
          match packet.Net.Netsim.payload with
          | Fetched messages -> List.iter (receive_data c) messages
          | Fetch _ -> ()))
    order;
  List.iter
    (fun server ->
      Hashtbl.replace t.retention (Net.Node_id.to_int server)
        (Causal.History.create ~n);
      Net.Netsim.attach edge server (serve_fetch t server))
    (Net.Node_id.group n);
  (* Every processed message enters the server's retention buffer; a bounded
     tail per origin is kept (clients lagging further have lost the stream). *)
  Urcgc.Cluster.on_delivery cluster (fun { Urcgc.Cluster.node; msg; _ } ->
      match Hashtbl.find_opt t.retention (Net.Node_id.to_int node) with
      | None -> ()
      | Some retained ->
          Causal.History.store retained msg;
          let origin = Causal.Mid.origin msg.Causal.Causal_msg.mid in
          let newest = Causal.History.max_seq retained ~origin in
          ignore
            (Causal.History.purge_upto retained ~origin ~seq:(newest - 256)));
  Urcgc.Cluster.add_broadcast_targets cluster client_ids;
  Urcgc.Cluster.on_round cluster (fun ~round ->
      if round mod 2 = 0 then List.iter (client_recovery t) order);
  t

let clients t = t.order

let client t id = Hashtbl.find t.by_id id

let client_id c = c.id

let processed c = List.rev c.log

let processed_count c = Causal.Delivery.count c.delivery

let waiting_length c = Causal.Waiting_list.length c.waiting

let last_processed c origin = Causal.Delivery.last_processed c.delivery origin
