type 'a request = {
  client : Net.Node_id.t;
  request_id : int;
  body : 'a;
}

(* Client <-> server edge traffic travels on its own datagram network (same
   engine, same fault model) so its payload type stays independent of the
   group's.  Sizes are nominal: the edge is not part of the paper's
   network-load accounting. *)
type 'a edge_msg =
  | Incoming of 'a request
  | Reply of { request_id : int; server : Net.Node_id.t }

let edge_size = 80

type 'a client_handle = {
  client_id : Net.Node_id.t;
  edge : 'a edge_msg Net.Netsim.t;
  retry_subruns : int;
  mutable server : Net.Node_id.t;
  mutable next_request_id : int;
  mutable pending : (int * 'a * int) list;  (* id, body, subruns waited *)
  mutable replies : (int * Net.Node_id.t) list;  (* newest first *)
  mutable retries : int;
}

type 'a t = {
  cluster : 'a request Urcgc.Cluster.t;
  edge : 'a edge_msg Net.Netsim.t;
  n : int;
  (* per server: requests it owes a reply for, and requests already
     processed by the group *)
  owned : (int, (int * int, unit) Hashtbl.t) Hashtbl.t;  (* server -> set *)
  processed : (int, (int * int, unit) Hashtbl.t) Hashtbl.t;
  mutable handles : 'a client_handle list;
}

let table_for map key =
  match Hashtbl.find_opt map key with
  | Some t -> t
  | None ->
      let t = Hashtbl.create 32 in
      Hashtbl.replace map key t;
      t

let key_of (r : 'a request) = (Net.Node_id.to_int r.client, r.request_id)

let send_reply t ~server ~client ~request_id =
  Net.Netsim.send t.edge ~src:server ~dst:client ~kind:Net.Traffic.Control
    ~size:edge_size
    (Reply { request_id; server })

let server_handler t server (packet : 'a edge_msg Net.Netsim.packet) =
  match packet.payload with
  | Reply _ -> ()
  | Incoming request ->
      let sid = Net.Node_id.to_int server in
      let owned = table_for t.owned sid in
      let processed = table_for t.processed sid in
      let key = key_of request in
      if Hashtbl.mem processed key then
        (* Duplicate of an already-accepted request: reply again without
           re-multicasting. *)
        send_reply t ~server ~client:request.client ~request_id:request.request_id
      else if not (Hashtbl.mem owned key) then begin
        Hashtbl.replace owned key ();
        Urcgc.Cluster.submit t.cluster server request
      end

let create cluster ~net () =
  let n = (Urcgc.Cluster.config cluster).Urcgc.Config.n in
  let engine = Net.Netsim.engine net in
  let fault = Net.Netsim.fault net in
  let edge =
    Net.Netsim.create engine ~fault ~rng:(Sim.Rng.create ~seed:929) ()
  in
  let t =
    {
      cluster;
      edge;
      n;
      owned = Hashtbl.create 8;
      processed = Hashtbl.create 8;
      handles = [];
    }
  in
  (* Servers listen on the edge network under their group ids. *)
  List.iter
    (fun server -> Net.Netsim.attach edge server (server_handler t server))
    (Net.Node_id.group n);
  (* Reply when an owned request has been processed locally. *)
  Urcgc.Cluster.on_delivery cluster (fun { Urcgc.Cluster.node; msg; _ } ->
      let request = msg.Causal.Causal_msg.payload in
      let sid = Net.Node_id.to_int node in
      let key = key_of request in
      Hashtbl.replace (table_for t.processed sid) key ();
      if Hashtbl.mem (table_for t.owned sid) key then
        send_reply t ~server:node ~client:request.client
          ~request_id:request.request_id);
  (* Client timeouts: reissue to the next server after retry_subruns. *)
  Urcgc.Cluster.on_round cluster (fun ~round ->
      if round mod 2 = 1 then
        List.iter
          (fun handle ->
            handle.pending <-
              List.map
                (fun (id, body, waited) ->
                  let waited = waited + 1 in
                  if waited >= handle.retry_subruns then begin
                    handle.retries <- handle.retries + 1;
                    handle.server <-
                      Net.Node_id.of_int
                        ((Net.Node_id.to_int handle.server + 1) mod t.n);
                    Net.Netsim.send t.edge ~src:handle.client_id
                      ~dst:handle.server ~kind:Net.Traffic.Control
                      ~size:edge_size
                      (Incoming
                         {
                           client = handle.client_id;
                           request_id = id;
                           body;
                         });
                    (id, body, 0)
                  end
                  else (id, body, waited))
                handle.pending)
          t.handles);
  t

let client_handler handle (packet : 'a edge_msg Net.Netsim.packet) =
  match packet.payload with
  | Incoming _ -> ()
  | Reply { request_id; server } ->
      if List.exists (fun (id, _, _) -> id = request_id) handle.pending then begin
        handle.pending <-
          List.filter (fun (id, _, _) -> id <> request_id) handle.pending;
        handle.replies <- (request_id, server) :: handle.replies
      end

let connect t ~client_id ?(retry_subruns = 4) ~server () =
  if Net.Node_id.to_int client_id < t.n then
    invalid_arg "Client_server.connect: client id inside the group range";
  let handle =
    {
      client_id;
      edge = t.edge;
      retry_subruns;
      server;
      next_request_id = 1;
      pending = [];
      replies = [];
      retries = 0;
    }
  in
  Net.Netsim.attach t.edge client_id (client_handler handle);
  t.handles <- handle :: t.handles;
  handle

let submit handle body =
  let id = handle.next_request_id in
  handle.next_request_id <- id + 1;
  handle.pending <- (id, body, 0) :: handle.pending;
  Net.Netsim.send handle.edge ~src:handle.client_id ~dst:handle.server
    ~kind:Net.Traffic.Control ~size:edge_size
    (Incoming { client = handle.client_id; request_id = id; body });
  id

let replies handle = List.rev handle.replies

let outstanding handle = List.length handle.pending

let retries handle = handle.retries
