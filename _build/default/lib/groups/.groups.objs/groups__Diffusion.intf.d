lib/groups/diffusion.mli: Causal Net Urcgc
