lib/groups/diffusion.ml: Array Causal Hashtbl List Net Sim Urcgc
