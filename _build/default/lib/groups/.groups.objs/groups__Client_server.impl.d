lib/groups/client_server.ml: Causal Hashtbl List Net Sim Urcgc
