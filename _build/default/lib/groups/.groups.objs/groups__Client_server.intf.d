lib/groups/client_server.mli: Net Urcgc
