module W = Net.Bytebuf.Writer
module R = Net.Bytebuf.Reader

let ( let* ) = Net.Bytebuf.( let* )

let tag_data = 1
let tag_heartbeat = 2
let tag_token = 3
let tag_stability = 4
let tag_suspect = 5
let tag_flush_req = 6
let tag_flush_unstable = 7
let tag_new_view = 8

let write_vclock w vt = Array.iter (W.u32 w) (Vclock.to_array vt)

let read_vclock ~n r =
  let rec loop k acc =
    if k = 0 then Ok (Vclock.of_array (Array.of_list (List.rev acc)))
    else
      let* v = R.u32 r in
      loop (k - 1) (v :: acc)
  in
  loop n []

(* Data: tag u8 | sender u24 | view u32 | vt | payload-to-end. *)
let write_data_fields payload w (d : 'a Cb_wire.data) =
  W.u8 w tag_data;
  W.u24 w (Net.Node_id.to_int d.sender);
  W.u32 w d.view_id;
  write_vclock w d.vt;
  W.bytes w (payload.Net.Bytebuf.encode d.payload)

let read_data_fields payload ~n ~payload_len r =
  let* sender = R.u24 r in
  let* view_id = R.u32 r in
  let* vt = read_vclock ~n r in
  let* raw = R.bytes r payload_len in
  let* value = payload.Net.Bytebuf.decode raw in
  Ok
    {
      Cb_wire.sender = Net.Node_id.of_int sender;
      view_id;
      vt;
      payload = value;
      payload_size = payload_len;
    }

(* Inner retransmitted messages: count u16, then (length u16 | data). *)
let write_msgs payload w msgs =
  W.u16 w (List.length msgs);
  List.iter
    (fun (d : 'a Cb_wire.data) ->
      W.u16 w (Cb_wire.data_size d);
      write_data_fields payload w d)
    msgs

let read_msgs payload ~n r =
  let* count = R.u16 r in
  let rec loop k acc =
    if k = 0 then Ok (List.rev acc)
    else
      let* len = R.u16 r in
      let* tag = R.u8 r in
      if tag <> tag_data then Error "flush: expected a data message"
      else begin
        (* data_size = 8 + 4n + payload *)
        let payload_len = len - 8 - (4 * n) in
        if payload_len < 0 then Error "flush: message length too small"
        else
          let* d = read_data_fields payload ~n ~payload_len r in
          loop (k - 1) (d :: acc)
      end
  in
  loop count []

(* Flush header: tag u8 | who u24 | view u32 | members bitmap, zero-padded to
   Cb_wire.flush_header n = max (4(n-1)) (8 + ceil(n/8)). *)
let flush_header_size n = max (4 * (n - 1)) (8 + ((n + 7) / 8))

let write_flush_header w ~tag ~who ~view_id ~members =
  let n = Array.length members in
  W.u8 w tag;
  W.u24 w who;
  W.u32 w view_id;
  W.bitmap w members;
  let written = 8 + ((n + 7) / 8) in
  let pad = flush_header_size n - written in
  if pad > 0 then W.bytes w (Bytes.make pad '\000')

let read_flush_header ~n r =
  (* tag already consumed *)
  let* who = R.u24 r in
  let* view_id = R.u32 r in
  let* members = R.bitmap r n in
  let consumed = 8 + ((n + 7) / 8) in
  let pad = flush_header_size n - consumed in
  let* _padding = R.bytes r (max 0 pad) in
  Ok (who, view_id, members)

let encode_body payload body =
  let w = W.create () in
  (match body with
  | Cb_wire.Data d -> write_data_fields payload w d
  | Cb_wire.Heartbeat { vt } ->
      W.u8 w tag_heartbeat;
      W.u24 w 0;
      write_vclock w vt
  | Cb_wire.Token { initiator; acc } ->
      W.u8 w tag_token;
      W.u24 w (Net.Node_id.to_int initiator);
      write_vclock w acc
  | Cb_wire.Stability { vt } ->
      W.u8 w tag_stability;
      W.u24 w 0;
      write_vclock w vt
  | Cb_wire.Suspect { suspect; reporter } ->
      W.u8 w tag_suspect;
      W.u24 w (Net.Node_id.to_int reporter);
      W.u32 w (Net.Node_id.to_int suspect)
  | Cb_wire.Flush_req { view_id; members; coordinator } ->
      write_flush_header w ~tag:tag_flush_req
        ~who:(Net.Node_id.to_int coordinator)
        ~view_id ~members
  | Cb_wire.Flush_unstable { view_id; sender; msgs } ->
      W.u8 w tag_flush_unstable;
      W.u24 w (Net.Node_id.to_int sender);
      W.u32 w view_id;
      write_msgs payload w msgs
  | Cb_wire.New_view { view_id; members; retransmit } ->
      write_flush_header w ~tag:tag_new_view ~who:0 ~view_id ~members;
      write_msgs payload w retransmit);
  let raw = W.contents w in
  let expected = Cb_wire.body_size body in
  if Bytes.length raw <> expected then
    invalid_arg
      (Printf.sprintf
         "Cb_codec: encoded %d bytes but the size model says %d (payload \
          encoding does not match payload_size?)"
         (Bytes.length raw) expected);
  raw

let decode_body payload ~n raw =
  let r = R.of_bytes raw in
  let* tag = R.u8 r in
  if tag = tag_data then begin
    let payload_len = Bytes.length raw - 8 - (4 * n) in
    if payload_len < 0 then Error "data: too short"
    else
      let* d = read_data_fields payload ~n ~payload_len r in
      let* () = R.expect_end r in
      Ok (Cb_wire.Data d)
  end
  else if tag = tag_heartbeat then begin
    let* _pad = R.u24 r in
    let* vt = read_vclock ~n r in
    let* () = R.expect_end r in
    Ok (Cb_wire.Heartbeat { vt })
  end
  else if tag = tag_token then begin
    let* initiator = R.u24 r in
    let* acc = read_vclock ~n r in
    let* () = R.expect_end r in
    Ok (Cb_wire.Token { initiator = Net.Node_id.of_int initiator; acc })
  end
  else if tag = tag_stability then begin
    let* _pad = R.u24 r in
    let* vt = read_vclock ~n r in
    let* () = R.expect_end r in
    Ok (Cb_wire.Stability { vt })
  end
  else if tag = tag_suspect then begin
    let* reporter = R.u24 r in
    let* suspect = R.u32 r in
    let* () = R.expect_end r in
    Ok
      (Cb_wire.Suspect
         {
           suspect = Net.Node_id.of_int suspect;
           reporter = Net.Node_id.of_int reporter;
         })
  end
  else if tag = tag_flush_req then begin
    let* who, view_id, members = read_flush_header ~n r in
    let* () = R.expect_end r in
    Ok
      (Cb_wire.Flush_req
         { view_id; members; coordinator = Net.Node_id.of_int who })
  end
  else if tag = tag_flush_unstable then begin
    let* sender = R.u24 r in
    let* view_id = R.u32 r in
    let* msgs = read_msgs payload ~n r in
    let* () = R.expect_end r in
    Ok
      (Cb_wire.Flush_unstable
         { view_id; sender = Net.Node_id.of_int sender; msgs })
  end
  else if tag = tag_new_view then begin
    let* _who, view_id, members = read_flush_header ~n r in
    let* retransmit = read_msgs payload ~n r in
    let* () = R.expect_end r in
    Ok (Cb_wire.New_view { view_id; members; retransmit })
  end
  else Error (Printf.sprintf "unknown cbcast tag %d" tag)
