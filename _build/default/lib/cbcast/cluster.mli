(** A CBCAST group bound to the simulator.

    CBCAST assumes a reliable transport underneath (the paper contrasts this
    with urcgc's independence from the transport), so the cluster mounts
    every PDU on the {!Net.Transport} entity with [h = ] "all destinations":
    copies are retransmitted until acknowledged.  Acknowledgement traffic is
    accounted separately from the protocol's own control messages. *)

type 'a delivery = {
  node : Net.Node_id.t;
  data : 'a Cb_wire.data;
  at : Sim.Ticks.t;
}

type view_change = {
  at_node : Net.Node_id.t;
  view_id : int;
  members : bool array;
  at : Sim.Ticks.t;
}

type 'a t

val create :
  ?tracer:Sim.Tracer.t ->
  n:int ->
  k:int ->
  engine:Sim.Engine.t ->
  fault:Net.Fault.t ->
  rng:Sim.Rng.t ->
  unit ->
  'a t

val start : 'a t -> unit

val submit : ?size:int -> 'a t -> Net.Node_id.t -> 'a -> unit

val member : 'a t -> Net.Node_id.t -> 'a Member.t
val members : 'a t -> 'a Member.t list

val on_round : 'a t -> (round:int -> unit) -> unit

val deliveries : 'a t -> 'a delivery list
val generations : 'a t -> (Net.Node_id.t * int * Sim.Ticks.t) list
(** (sender, seq, time) of every multicast data message. *)

val view_changes : 'a t -> view_change list
val flush_starts : 'a t -> (Net.Node_id.t * int * Sim.Ticks.t) list

val traffic : 'a t -> Net.Traffic.t

val subrun : 'a t -> int

val active_members : 'a t -> Net.Node_id.t list

val quiescent : 'a t -> bool
(** No SAP backlog or buffered messages at any active member, no flush in
    progress, and all active members agree on the delivered vector. *)
