(** Binary codec for the CBCAST PDUs.

    As with {!Urcgc.Wire_codec}, encoded lengths are exactly
    {!Cb_wire.body_size} — Table 1's headline comparison (CBCAST's constant
    [4(n+1)]-byte piggybacks vs its swollen flush messages) is measured from
    sizes these codecs realize byte for byte. *)

val encode_body : 'a Net.Bytebuf.codec -> 'a Cb_wire.body -> bytes
(** Raises [Invalid_argument] when a field exceeds its wire width or when a
    data payload's encoding is larger than 65535 bytes. *)

val decode_body :
  'a Net.Bytebuf.codec -> n:int -> bytes -> ('a Cb_wire.body, string) result
