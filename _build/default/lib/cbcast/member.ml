type reason = Excluded

type 'a action =
  | Multicast of 'a Cb_wire.body
  | Unicast of Net.Node_id.t * 'a Cb_wire.body
  | Delivered of 'a Cb_wire.data
  | View_installed of { view_id : int; members : bool array }
  | Flush_begun of int
  | Halted of reason

type 'a submission = { payload : 'a; size : int }

type 'a flush_state = {
  f_view : int;
  f_members : bool array;  (* proposed composition *)
  f_coordinator : Net.Node_id.t;
  f_collected : (int, 'a Cb_wire.data list) Hashtbl.t;  (* coordinator side *)
  mutable f_awaiting : Net.Node_id.Set.t;
  mutable f_deadline : int;  (* subrun at which this phase times out *)
}

type 'a phase = Normal | Flushing of 'a flush_state

type 'a t = {
  id : Net.Node_id.t;
  n : int;
  k : int;
  mutable view_id : int;
  members : bool array;
  vt : Vclock.t;  (* delivered vector *)
  mutable buffer : 'a Cb_wire.data list;
  history : (int * int, 'a Cb_wire.data) Hashtbl.t;  (* (sender, seq) *)
  stable : Vclock.t;
  last_heard : int array;  (* subrun we last heard from each member *)
  mutable suspects : Net.Node_id.Set.t;
  mutable token_in_flight : bool;
  mutable token_launched : int;  (* subrun the current token lap started *)
  sap : 'a submission Queue.t;
  mutable phase : 'a phase;
  mutable halted : bool;
  mutable last_data_subrun : int;  (* last subrun we multicast a data msg *)
  mutable last_heartbeat_subrun : int;
  default_payload_size : int;
}

let create ~n ~k id =
  if n <= 0 then invalid_arg "Member.create: n must be positive";
  if k <= 0 then invalid_arg "Member.create: k must be positive";
  {
    id;
    n;
    k;
    view_id = 0;
    members = Array.make n true;
    vt = Vclock.create ~n;
    buffer = [];
    history = Hashtbl.create 256;
    stable = Vclock.create ~n;
    last_heard = Array.make n 0;
    suspects = Net.Node_id.Set.empty;
    token_in_flight = false;
    token_launched = 0;
    sap = Queue.create ();
    phase = Normal;
    halted = false;
    last_data_subrun = -1;
    last_heartbeat_subrun = -1;
    default_payload_size = 64;
  }

let id t = t.id
let active t = not t.halted
let view_id t = t.view_id
let members t = Array.copy t.members
let flushing t = match t.phase with Normal -> false | Flushing _ -> true
let buffered t = List.length t.buffer
let unstable t = Hashtbl.length t.history
let delivered_vt t = Vclock.copy t.vt
let sap_backlog t = Queue.length t.sap

let submit ?size t payload =
  let size = Option.value size ~default:t.default_payload_size in
  Queue.push { payload; size } t.sap

let me t = Net.Node_id.to_int t.id

let alive_in_view t node =
  t.members.(Net.Node_id.to_int node)
  && not (Net.Node_id.Set.mem node t.suspects)

(* Lowest-id member of the view that is not suspected: the ranking rule ISIS
   uses to pick the flush coordinator and the token initiator. *)
let ranked_leader t =
  let rec scan i =
    if i >= t.n then None
    else
      let node = Net.Node_id.of_int i in
      if alive_in_view t node then Some node else scan (i + 1)
  in
  scan 0

let next_in_ring t =
  let rec scan step =
    if step > t.n then None
    else
      let i = (me t + step) mod t.n in
      let node = Net.Node_id.of_int i in
      if alive_in_view t node && i <> me t then Some node else scan (step + 1)
  in
  scan 1

(* -- delivery ---------------------------------------------------------- *)

let store_history t (d : 'a Cb_wire.data) =
  Hashtbl.replace t.history (Net.Node_id.to_int d.sender, Cb_wire.seq d) d

let gc_history t =
  let victims =
    Hashtbl.fold
      (fun (sender, seq) _ acc ->
        if seq <= Vclock.get t.stable (Net.Node_id.of_int sender) then
          (sender, seq) :: acc
        else acc)
      t.history []
  in
  List.iter (Hashtbl.remove t.history) victims

let deliver_one t d =
  assert (Cb_wire.seq d = Vclock.get t.vt d.Cb_wire.sender + 1);
  Vclock.tick t.vt d.Cb_wire.sender;
  store_history t d;
  Delivered d

let deliverable t d =
  Vclock.deliverable ~msg_vt:d.Cb_wire.vt ~from:d.Cb_wire.sender ~local:t.vt

let duplicate t d = Cb_wire.seq d <= Vclock.get t.vt d.Cb_wire.sender

(* Deliver everything in the buffer that the current vector admits, to a
   fixpoint, in deterministic (sender, seq) order. *)
let drain_buffer t =
  let actions = ref [] in
  let progress = ref true in
  while !progress do
    progress := false;
    t.buffer <- List.filter (fun d -> not (duplicate t d)) t.buffer;
    let ready, rest = List.partition (deliverable t) t.buffer in
    match
      List.sort
        (fun a b ->
          let c = Net.Node_id.compare a.Cb_wire.sender b.Cb_wire.sender in
          if c <> 0 then c else compare (Cb_wire.seq a) (Cb_wire.seq b))
        ready
    with
    | [] -> t.buffer <- rest
    | first :: others ->
        (* Deliver only the first, then re-check: one delivery can change
           what is deliverable. *)
        actions := deliver_one t first :: !actions;
        t.buffer <- others @ rest;
        progress := true
  done;
  List.rev !actions

(* Deliver [d] if possible, then drain the buffer. *)
let try_deliver t d =
  if duplicate t d then []
  else if not (deliverable t d) then begin
    if
      not
        (List.exists
           (fun b ->
             Net.Node_id.equal b.Cb_wire.sender d.Cb_wire.sender
             && Cb_wire.seq b = Cb_wire.seq d)
           t.buffer)
    then t.buffer <- d :: t.buffer;
    []
  end
  else begin
    (* Bind the head delivery first: OCaml evaluates [::] right to left, and
       draining the buffer before delivering [d] could deliver a buffered
       duplicate of [d] and double-tick the vector. *)
    let head = deliver_one t d in
    head :: drain_buffer t
  end

(* -- flush ------------------------------------------------------------- *)

let unstable_msgs t =
  Hashtbl.fold (fun _ d acc -> d :: acc) t.history []
  |> List.sort (fun a b ->
         let c = Net.Node_id.compare a.Cb_wire.sender b.Cb_wire.sender in
         if c <> 0 then c else compare (Cb_wire.seq a) (Cb_wire.seq b))

let proposed_members t =
  let proposal = Array.copy t.members in
  Net.Node_id.Set.iter
    (fun node -> proposal.(Net.Node_id.to_int node) <- false)
    t.suspects;
  proposal

let begin_flush t ~subrun =
  let view = t.view_id + 1 in
  let proposal = proposed_members t in
  let awaiting = ref Net.Node_id.Set.empty in
  Array.iteri
    (fun i member ->
      if member && i <> me t then
        awaiting := Net.Node_id.Set.add (Net.Node_id.of_int i) !awaiting)
    proposal;
  let flush =
    {
      f_view = view;
      f_members = proposal;
      f_coordinator = t.id;
      f_collected = Hashtbl.create 16;
      f_awaiting = !awaiting;
      f_deadline = subrun + t.k;
    }
  in
  Hashtbl.replace flush.f_collected (me t) (unstable_msgs t);
  t.phase <- Flushing flush;
  [
    Flush_begun view;
    Multicast
      (Cb_wire.Flush_req { view_id = view; members = proposal; coordinator = t.id });
  ]

let install_view t ~view_id ~members:new_members ~retransmit =
  t.view_id <- view_id;
  Array.blit new_members 0 t.members 0 t.n;
  t.suspects <- Net.Node_id.Set.empty;
  t.phase <- Normal;
  t.token_in_flight <- false;
  if not t.members.(me t) then begin
    t.halted <- true;
    [ Halted Excluded ]
  end
  else begin
    let installed = View_installed { view_id; members = Array.copy new_members } in
    (* Integrate the unstable messages the coordinator redistributed, then
       deliver everything that was buffered while processing was blocked. *)
    let delivered = List.concat_map (fun d -> try_deliver t d) retransmit in
    let drained = drain_buffer t in
    (installed :: delivered) @ drained
  end

let finish_flush t flush =
  let union = Hashtbl.create 64 in
  Hashtbl.iter
    (fun _ msgs ->
      List.iter
        (fun d ->
          Hashtbl.replace union (Net.Node_id.to_int d.Cb_wire.sender, Cb_wire.seq d) d)
        msgs)
    flush.f_collected;
  let retransmit = Hashtbl.fold (fun _ d acc -> d :: acc) union [] in
  let view_pdu =
    Cb_wire.New_view
      { view_id = flush.f_view; members = flush.f_members; retransmit }
  in
  let local =
    install_view t ~view_id:flush.f_view ~members:flush.f_members ~retransmit
  in
  Multicast view_pdu :: local

(* -- round hook -------------------------------------------------------- *)

let generate_data t ~subrun =
  match t.phase with
  | Flushing _ -> []
  | Normal ->
      if Queue.is_empty t.sap || t.halted then []
      else begin
        t.last_data_subrun <- subrun;
        let { payload; size } = Queue.pop t.sap in
        Vclock.tick t.vt t.id;
        let d =
          {
            Cb_wire.sender = t.id;
            view_id = t.view_id;
            vt = Vclock.copy t.vt;
            payload;
            payload_size = size;
          }
        in
        store_history t d;
        [ Multicast (Cb_wire.Data d); Delivered d ]
      end

let detect_failures t ~subrun =
  if subrun <= t.k then []
  else begin
    let newly = ref [] in
    Array.iteri
      (fun i member ->
        if member && i <> me t then begin
          let node = Net.Node_id.of_int i in
          if
            subrun - t.last_heard.(i) >= t.k
            && not (Net.Node_id.Set.mem node t.suspects)
          then begin
            t.suspects <- Net.Node_id.Set.add node t.suspects;
            newly := node :: !newly
          end
        end)
      t.members;
    !newly
  end

let heartbeat t ~subrun =
  (* Keep-alive: a process with no data traffic in the current subrun
     multicasts its delivery vector so peers' failure detectors keep
     advancing — also during a flush, where data traffic is suspended.
     The worst-case silence of a healthy process is then one subrun, safely
     below the K-subrun suspicion threshold. *)
  if t.last_data_subrun < subrun && t.last_heartbeat_subrun < subrun then begin
    t.last_heartbeat_subrun <- subrun;
    [ Multicast (Cb_wire.Heartbeat { vt = Vclock.copy t.vt }) ]
  end
  else []

let on_round t ~subrun =
  if t.halted then []
  else begin
    let newly_suspected =
      (* The flush protocol has its own coordinator timeout; the general
         detector is suspended while one is running. *)
      match t.phase with Normal -> detect_failures t ~subrun | Flushing _ -> []
    in
    match t.phase with
    | Normal ->
        let flush_actions =
          if not (Net.Node_id.Set.is_empty t.suspects) then
            match ranked_leader t with
            | Some leader when Net.Node_id.equal leader t.id ->
                begin_flush t ~subrun
            | Some leader ->
                List.map
                  (fun suspect ->
                    Unicast
                      (leader, Cb_wire.Suspect { suspect; reporter = t.id }))
                  newly_suspected
            | None -> []
          else []
        in
        let token_actions =
          match t.phase with
          | Flushing _ -> []
          | Normal -> (
              match ranked_leader t with
              | Some leader when Net.Node_id.equal leader t.id -> (
                  (* A lap that outlived n + K subruns died at a crashed hop:
                     relaunch it. *)
                  let lost =
                    t.token_in_flight && subrun - t.token_launched > t.n + t.k
                  in
                  if t.token_in_flight && not lost then []
                  else
                    match next_in_ring t with
                    | Some next ->
                        t.token_in_flight <- true;
                        t.token_launched <- subrun;
                        [
                          Unicast
                            ( next,
                              Cb_wire.Token
                                { initiator = t.id; acc = Vclock.copy t.vt } );
                        ]
                    | None -> [])
              | Some _ | None -> [])
        in
        flush_actions @ token_actions @ heartbeat t ~subrun
        @ generate_data t ~subrun
    | Flushing flush ->
        heartbeat t ~subrun
        @
        if Net.Node_id.equal flush.f_coordinator t.id then begin
          if subrun >= flush.f_deadline then begin
            (* Non-repliers are dropped from the proposal and the flush
               restarts — the paper's "(f+1)" factor. *)
            Net.Node_id.Set.iter
              (fun node -> t.suspects <- Net.Node_id.Set.add node t.suspects)
              flush.f_awaiting;
            begin_flush t ~subrun
          end
          else []
        end
        else if subrun >= flush.f_deadline then begin
          (* The coordinator went silent: suspect it; if I am now the ranked
             leader, take over and restart the flush. *)
          t.suspects <- Net.Node_id.Set.add flush.f_coordinator t.suspects;
          match ranked_leader t with
          | Some leader when Net.Node_id.equal leader t.id ->
              begin_flush t ~subrun
          | Some _ | None ->
              t.phase <-
                Flushing { flush with f_deadline = subrun + (2 * t.k) };
              []
        end
        else []
  end

(* -- PDU handler ------------------------------------------------------- *)

let note_heard t ~subrun node = t.last_heard.(Net.Node_id.to_int node) <- subrun

let handle t ~subrun ~from body =
  if t.halted then []
  else begin
    note_heard t ~subrun from;
    match body with
    | Cb_wire.Heartbeat _ -> []
    | Cb_wire.Data d -> (
        store_history t d;
        match t.phase with
        | Normal -> try_deliver t d
        | Flushing _ ->
            (* Processing is suspended during a flush; just buffer. *)
            if Cb_wire.seq d > Vclock.get t.vt d.Cb_wire.sender then
              t.buffer <- d :: t.buffer;
            [])
    | Cb_wire.Token { initiator; acc } ->
        if flushing t then []
        else begin
          Vclock.min_into acc t.vt;
          if Net.Node_id.equal initiator t.id then begin
            (* The token completed a lap: publish the stable cut. *)
            t.token_in_flight <- false;
            Vclock.merge t.stable acc;
            gc_history t;
            [ Multicast (Cb_wire.Stability { vt = acc }) ]
          end
          else
            match next_in_ring t with
            | Some next when not (Net.Node_id.equal next t.id) ->
                [ Unicast (next, Cb_wire.Token { initiator; acc }) ]
            | Some _ | None -> []
        end
    | Cb_wire.Stability { vt } ->
        Vclock.merge t.stable vt;
        gc_history t;
        []
    | Cb_wire.Suspect { suspect; _ } -> (
        t.suspects <- Net.Node_id.Set.add suspect t.suspects;
        match t.phase with
        | Flushing _ -> []
        | Normal -> (
            match ranked_leader t with
            | Some leader when Net.Node_id.equal leader t.id ->
                begin_flush t ~subrun
            | Some _ | None -> []))
    | Cb_wire.Flush_req { view_id; members = proposal; coordinator } ->
        if view_id <= t.view_id then []
        else begin
          let flush =
            {
              f_view = view_id;
              f_members = proposal;
              f_coordinator = coordinator;
              f_collected = Hashtbl.create 1;
              f_awaiting = Net.Node_id.Set.empty;
              f_deadline = subrun + (2 * t.k);
            }
          in
          t.phase <- Flushing flush;
          [
            Flush_begun view_id;
            Unicast
              ( coordinator,
                Cb_wire.Flush_unstable
                  { view_id; sender = t.id; msgs = unstable_msgs t } );
          ]
        end
    | Cb_wire.Flush_unstable { view_id; sender; msgs } -> (
        match t.phase with
        | Flushing flush
          when Net.Node_id.equal flush.f_coordinator t.id
               && view_id = flush.f_view ->
            Hashtbl.replace flush.f_collected (Net.Node_id.to_int sender) msgs;
            flush.f_awaiting <- Net.Node_id.Set.remove sender flush.f_awaiting;
            if Net.Node_id.Set.is_empty flush.f_awaiting then finish_flush t flush
            else []
        | Flushing _ | Normal -> [])
    | Cb_wire.New_view { view_id; members = new_members; retransmit } ->
        if view_id <= t.view_id then []
        else install_view t ~view_id ~members:new_members ~retransmit
  end

let buffer_contents t =
  List.map
    (fun d -> (Net.Node_id.to_int d.Cb_wire.sender, Cb_wire.seq d))
    t.buffer

let buffer_dump t =
  List.map
    (fun d ->
      Format.asprintf "%a#%d%a" Net.Node_id.pp d.Cb_wire.sender (Cb_wire.seq d)
        Vclock.pp d.Cb_wire.vt)
    (List.sort
       (fun a b ->
         let c = Net.Node_id.compare a.Cb_wire.sender b.Cb_wire.sender in
         if c <> 0 then c else compare (Cb_wire.seq a) (Cb_wire.seq b))
       t.buffer)
  |> String.concat "\n  "
