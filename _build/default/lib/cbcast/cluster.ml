type 'a delivery = {
  node : Net.Node_id.t;
  data : 'a Cb_wire.data;
  at : Sim.Ticks.t;
}

type view_change = {
  at_node : Net.Node_id.t;
  view_id : int;
  members : bool array;
  at : Sim.Ticks.t;
}

type 'a t = {
  n : int;
  transport : 'a Cb_wire.body Net.Transport.t;
  engine : Sim.Engine.t;
  fault : Net.Fault.t;
  tracer : Sim.Tracer.t;
  members : 'a Member.t array;
  mutable round : int;
  mutable started : bool;
  mutable round_callbacks : (round:int -> unit) list;
  mutable deliveries : 'a delivery list;
  mutable generations : (Net.Node_id.t * int * Sim.Ticks.t) list;
  mutable view_changes : view_change list;
  mutable flush_starts : (Net.Node_id.t * int * Sim.Ticks.t) list;
}

let now t = Sim.Engine.now t.engine

let crashed t node = Net.Fault.crashed t.fault ~now:(now t) node

let dsts_of t member =
  let self = Member.id member in
  let members = Member.members member in
  let dsts = ref [] in
  for i = t.n - 1 downto 0 do
    if members.(i) && i <> Net.Node_id.to_int self then
      dsts := Net.Node_id.of_int i :: !dsts
  done;
  !dsts

let send t member ~dsts body =
  match dsts with
  | [] -> ()
  | _ ->
      Net.Transport.request t.transport ~src:(Member.id member) ~dsts
        ~h:(List.length dsts) ~kind:(Cb_wire.kind body)
        ~size:(Cb_wire.body_size body)
        ~on_confirm:(fun ~acked:_ -> ())
        body

let rec execute t member action =
  let self = Member.id member in
  match action with
  | Member.Multicast body ->
      (match body with
      | Cb_wire.Data d ->
          t.generations <- (self, Cb_wire.seq d, now t) :: t.generations
      | Cb_wire.Heartbeat _ | Cb_wire.Token _ | Cb_wire.Stability _ | Cb_wire.Suspect _
      | Cb_wire.Flush_req _ | Cb_wire.Flush_unstable _ | Cb_wire.New_view _ ->
          ());
      send t member ~dsts:(dsts_of t member) body
  | Member.Unicast (dst, body) -> send t member ~dsts:[ dst ] body
  | Member.Delivered data ->
      t.deliveries <- { node = self; data; at = now t } :: t.deliveries
  | Member.View_installed { view_id; members } ->
      t.view_changes <-
        { at_node = self; view_id; members; at = now t } :: t.view_changes;
      Sim.Tracer.emitf t.tracer ~time:(now t)
        ~source:(Format.asprintf "%a" Net.Node_id.pp self)
        "installed view %d" view_id
  | Member.Flush_begun view_id ->
      t.flush_starts <- (self, view_id, now t) :: t.flush_starts;
      Sim.Tracer.emitf t.tracer ~time:(now t)
        ~source:(Format.asprintf "%a" Net.Node_id.pp self)
        "flush for view %d begun" view_id
  | Member.Halted _ ->
      Sim.Tracer.emitf t.tracer ~time:(now t)
        ~source:(Format.asprintf "%a" Net.Node_id.pp self)
        "halted (excluded from view)"

and execute_all t member actions = List.iter (execute t member) actions

let create ?(tracer = Sim.Tracer.null) ~n ~k ~engine ~fault ~rng () =
  let transport = Net.Transport.create engine ~fault ~rng () in
  let members = Array.init n (fun i -> Member.create ~n ~k (Net.Node_id.of_int i)) in
  let t =
    {
      n;
      transport;
      engine;
      fault;
      tracer;
      members;
      round = 0;
      started = false;
      round_callbacks = [];
      deliveries = [];
      generations = [];
      view_changes = [];
      flush_starts = [];
    }
  in
  Array.iter
    (fun member ->
      Net.Transport.attach transport (Member.id member) (fun ~src body ->
          if not (crashed t (Member.id member)) then
            execute_all t member
              (Member.handle member ~subrun:(t.round / 2) ~from:src body)))
    members;
  t

let run_round t =
  let subrun = t.round / 2 in
  Array.iter
    (fun member ->
      if not (crashed t (Member.id member)) then
        execute_all t member (Member.on_round member ~subrun))
    t.members;
  t.round <- t.round + 1;
  List.iter (fun callback -> callback ~round:(t.round - 1)) (List.rev t.round_callbacks)

let start t =
  if t.started then invalid_arg "Cluster.start: already started";
  t.started <- true;
  let rec tick () =
    run_round t;
    ignore (Sim.Engine.schedule_after t.engine ~delay:Sim.Ticks.round tick)
  in
  ignore (Sim.Engine.schedule_after t.engine ~delay:Sim.Ticks.zero tick)

let submit ?size t node payload =
  Member.submit ?size t.members.(Net.Node_id.to_int node) payload

let member t node = t.members.(Net.Node_id.to_int node)
let members t = Array.to_list t.members

let on_round t callback = t.round_callbacks <- callback :: t.round_callbacks

let deliveries t = List.rev t.deliveries
let generations t = List.rev t.generations
let view_changes t = List.rev t.view_changes
let flush_starts t = List.rev t.flush_starts

let traffic t = Net.Transport.traffic t.transport

let subrun t = t.round / 2

let active_members t =
  Array.to_list t.members
  |> List.filter_map (fun member ->
         let node = Member.id member in
         if Member.active member && not (crashed t node) then Some node
         else None)

let quiescent t =
  let actives =
    Array.to_list t.members
    |> List.filter (fun member ->
           Member.active member && not (crashed t (Member.id member)))
  in
  match actives with
  | [] -> true
  | first :: rest ->
      List.for_all
        (fun member ->
          Member.sap_backlog member = 0
          && Member.buffered member = 0
          && not (Member.flushing member))
        actives
      && List.for_all
           (fun member ->
             Vclock.equal (Member.delivered_vt member) (Member.delivered_vt first))
           rest
