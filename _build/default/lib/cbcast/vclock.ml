type t = int array

let create ~n =
  if n <= 0 then invalid_arg "Vclock.create: n must be positive";
  Array.make n 0

let of_array a = Array.copy a
let to_array t = Array.copy t
let copy = Array.copy

let n t = Array.length t

let get t node = t.(Net.Node_id.to_int node)
let set t node v = t.(Net.Node_id.to_int node) <- v

let tick t node =
  let i = Net.Node_id.to_int node in
  t.(i) <- t.(i) + 1

let merge t other =
  Array.iteri (fun i v -> if v > t.(i) then t.(i) <- v) other

let min_into t other =
  Array.iteri (fun i v -> if v < t.(i) then t.(i) <- v) other

let le a b =
  let ok = ref true in
  Array.iteri (fun i v -> if v > b.(i) then ok := false) a;
  !ok

let equal a b = a = b

let deliverable ~msg_vt ~from ~local =
  let sender = Net.Node_id.to_int from in
  let ok = ref (msg_vt.(sender) = local.(sender) + 1) in
  Array.iteri
    (fun i v -> if i <> sender && v > local.(i) then ok := false)
    msg_vt;
  !ok

let encoded_size t = 4 * Array.length t

let pp ppf t =
  Format.fprintf ppf "<%a>"
    (Format.pp_print_seq
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
       Format.pp_print_int)
    (Array.to_seq t)
