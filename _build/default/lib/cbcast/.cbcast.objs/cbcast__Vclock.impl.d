lib/cbcast/vclock.ml: Array Format Net
