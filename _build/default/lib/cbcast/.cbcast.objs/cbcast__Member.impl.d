lib/cbcast/member.ml: Array Cb_wire Format Hashtbl List Net Option Queue String Vclock
