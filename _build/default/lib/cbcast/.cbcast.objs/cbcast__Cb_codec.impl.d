lib/cbcast/cb_codec.ml: Array Bytes Cb_wire List Net Printf Vclock
