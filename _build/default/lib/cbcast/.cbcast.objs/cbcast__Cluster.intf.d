lib/cbcast/cluster.mli: Cb_wire Member Net Sim
