lib/cbcast/cb_wire.ml: Array Format List Net Vclock
