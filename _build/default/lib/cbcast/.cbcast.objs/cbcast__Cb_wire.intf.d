lib/cbcast/cb_wire.mli: Format Net Vclock
