lib/cbcast/cb_codec.mli: Cb_wire Net
