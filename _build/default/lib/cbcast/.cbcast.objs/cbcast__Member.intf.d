lib/cbcast/member.mli: Cb_wire Net Vclock
