lib/cbcast/cluster.ml: Array Cb_wire Format List Member Net Sim Vclock
