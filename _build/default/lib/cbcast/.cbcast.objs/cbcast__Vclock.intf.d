lib/cbcast/vclock.mli: Format Net
