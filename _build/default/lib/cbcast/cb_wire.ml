type 'a data = {
  sender : Net.Node_id.t;
  view_id : int;
  vt : Vclock.t;
  payload : 'a;
  payload_size : int;
}

type 'a body =
  | Data of 'a data
  | Heartbeat of { vt : Vclock.t }
  | Token of { initiator : Net.Node_id.t; acc : Vclock.t }
  | Stability of { vt : Vclock.t }
  | Suspect of { suspect : Net.Node_id.t; reporter : Net.Node_id.t }
  | Flush_req of {
      view_id : int;
      members : bool array;
      coordinator : Net.Node_id.t;
    }
  | Flush_unstable of {
      view_id : int;
      sender : Net.Node_id.t;
      msgs : 'a data list;
    }
  | New_view of { view_id : int; members : bool array; retransmit : 'a data list }

let seq (d : 'a data) = Vclock.get d.vt d.sender

let data_size d = 4 + 4 + Vclock.encoded_size d.vt + d.payload_size

(* The paper sizes flush messages at 4(n-1) bytes; the real fields (tag,
   ids, view number, membership bitmap) fit inside that for n >= 4 and the
   encoder pads up to it, so measured sizes match the paper's accounting. *)
let flush_header n = max (4 * (n - 1)) (8 + ((n + 7) / 8))

(* Retransmitted messages inside flush PDUs carry a 2-byte length prefix so
   the stream is self-delimiting, plus a 2-byte count. *)
let sum_msgs msgs =
  2 + List.fold_left (fun acc m -> acc + 2 + data_size m) 0 msgs

let body_size = function
  | Data d -> data_size d
  | Heartbeat { vt } -> 4 + Vclock.encoded_size vt
  | Token { acc; _ } -> 4 + Vclock.encoded_size acc
  | Stability { vt } -> 4 + Vclock.encoded_size vt
  | Suspect _ -> 8
  | Flush_req { members; _ } -> flush_header (Array.length members)
  | Flush_unstable { msgs; sender = _; view_id = _ } -> 8 + sum_msgs msgs
  | New_view { members; retransmit; _ } ->
      flush_header (Array.length members) + sum_msgs retransmit

let kind = function
  | Data _ -> Net.Traffic.Data
  | Heartbeat _ | Token _ | Stability _ | Suspect _ | Flush_req _
  | Flush_unstable _ | New_view _ ->
      Net.Traffic.Control

let pp_body ppf = function
  | Heartbeat { vt } -> Format.fprintf ppf "heartbeat %a" Vclock.pp vt
  | Data d ->
      Format.fprintf ppf "data %a#%d %a" Net.Node_id.pp d.sender (seq d)
        Vclock.pp d.vt
  | Token { initiator; acc } ->
      Format.fprintf ppf "token(init %a) %a" Net.Node_id.pp initiator Vclock.pp acc
  | Stability { vt } -> Format.fprintf ppf "stability %a" Vclock.pp vt
  | Suspect { suspect; reporter } ->
      Format.fprintf ppf "suspect %a (by %a)" Net.Node_id.pp suspect
        Net.Node_id.pp reporter
  | Flush_req { view_id; coordinator; _ } ->
      Format.fprintf ppf "flush-req view %d (coord %a)" view_id Net.Node_id.pp
        coordinator
  | Flush_unstable { view_id; sender; msgs } ->
      Format.fprintf ppf "flush-unstable view %d from %a (%d msgs)" view_id
        Net.Node_id.pp sender (List.length msgs)
  | New_view { view_id; retransmit; _ } ->
      Format.fprintf ppf "new-view %d (%d retransmitted)" view_id
        (List.length retransmit)
