(** Vector timestamps, as used by the ISIS CBCAST primitive [BSS91].

    Entry [j] counts the messages of process [j] that the owner has
    delivered (or, on a message, that causally precede it). *)

type t

val create : n:int -> t
(** All zero. *)

val of_array : int array -> t
val to_array : t -> int array
val copy : t -> t

val n : t -> int

val get : t -> Net.Node_id.t -> int
val set : t -> Net.Node_id.t -> int -> unit

val tick : t -> Net.Node_id.t -> unit
(** Increment one entry in place. *)

val merge : t -> t -> unit
(** Pointwise maximum, into the first argument. *)

val min_into : t -> t -> unit
(** Pointwise minimum, into the first argument — stability accumulation. *)

val le : t -> t -> bool
(** Pointwise [<=]. *)

val equal : t -> t -> bool

val deliverable : msg_vt:t -> from:Net.Node_id.t -> local:t -> bool
(** The CBCAST causal delivery condition at a process with delivery vector
    [local], for a message from [from] stamped [msg_vt]:
    [msg_vt(from) = local(from) + 1] and [msg_vt(k) <= local(k)] for every
    other [k]. *)

val encoded_size : t -> int
(** [4n] bytes. *)

val pp : Format.formatter -> t -> unit
