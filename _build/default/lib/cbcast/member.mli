(** Per-process CBCAST entity: vector-clock causal multicast with piggybacked
    stability (a circulating token) and a blocking view-change/flush protocol
    on failures — the comparison baseline of Sections 4 and 6.

    The contrast with urcgc that the paper draws:
    - under reliable conditions CBCAST is cheaper (no per-subrun agreement,
      just the token: [n+1] control messages of size [4(n+1)]);
    - on a crash it must run a specialized flush protocol during which "no
      message generation and processing is allowed", its messages grow with
      the unstable backlog, and every coordinator failure restarts it. *)

type reason = Excluded  (** removed from the view by a flush *)

type 'a action =
  | Multicast of 'a Cb_wire.body  (** to the other members of the view *)
  | Unicast of Net.Node_id.t * 'a Cb_wire.body
  | Delivered of 'a Cb_wire.data
  | View_installed of { view_id : int; members : bool array }
  | Flush_begun of int  (** view id being negotiated; processing blocks *)
  | Halted of reason

type 'a t

val create : n:int -> k:int -> Net.Node_id.t -> 'a t

val id : 'a t -> Net.Node_id.t
val active : 'a t -> bool
val view_id : 'a t -> int
val members : 'a t -> bool array
val flushing : 'a t -> bool
val buffered : 'a t -> int
(** Undeliverable messages currently buffered. *)

val unstable : 'a t -> int
(** Messages retained in the history (delivered but not yet stable) — the
    CBCAST analogue of the urcgc history length. *)

val delivered_vt : 'a t -> Vclock.t

val submit : ?size:int -> 'a t -> 'a -> unit
(** Queues a payload; one is multicast per round while no flush is active. *)

val sap_backlog : 'a t -> int

val on_round : 'a t -> subrun:int -> 'a action list
(** Fired every round (twice per subrun); [subrun] is the current subrun
    index used by the failure detector and flush timeouts. *)

val handle : 'a t -> subrun:int -> from:Net.Node_id.t -> 'a Cb_wire.body -> 'a action list

val buffer_contents : 'a t -> (int * int) list
(** (sender, seq) of each buffered message — diagnostics. *)

val buffer_dump : 'a t -> string
(** Sender, seq and full vector timestamp of each buffered message. *)
