(** PDUs of the CBCAST baseline (ISIS-style causal multicast [BSS91]).

    Sizes follow the paper's accounting: a vector timestamp costs [4n] bytes,
    piggyback/stability messages cost [4(n+1)] bytes, flush messages carry a
    [4(n-1)]-byte header and the retransmitted unstable messages, which is
    why CBCAST's control-message size grows under crashes (Table 1). *)

type 'a data = {
  sender : Net.Node_id.t;
  view_id : int;
  vt : Vclock.t;  (** [vt(sender)] is the message's sequence number *)
  payload : 'a;
  payload_size : int;
}

type 'a body =
  | Data of 'a data
  | Heartbeat of { vt : Vclock.t }
      (** stability/keep-alive message sent when a process has no data
          traffic in a subrun ("piggyback or, if needed, stability
          messages") *)
  | Token of { initiator : Net.Node_id.t; acc : Vclock.t }
      (** stability token circulating the ring, accumulating the pointwise
          minimum of delivery vectors *)
  | Stability of { vt : Vclock.t }
      (** broadcast stable cut: history below it can be discarded *)
  | Suspect of { suspect : Net.Node_id.t; reporter : Net.Node_id.t }
  | Flush_req of {
      view_id : int;
      members : bool array;
      coordinator : Net.Node_id.t;
    }
  | Flush_unstable of {
      view_id : int;
      sender : Net.Node_id.t;
      msgs : 'a data list;
    }
  | New_view of { view_id : int; members : bool array; retransmit : 'a data list }

val seq : 'a data -> int
(** The message's sequence number, [vt(sender)]. *)

val data_size : 'a data -> int
val body_size : 'a body -> int

val kind : 'a body -> Net.Traffic.kind
(** [Data] is data traffic; everything else is control traffic (flush
    retransmissions included, as in the paper's Table 1 accounting). *)

val pp_body : Format.formatter -> 'a body -> unit
