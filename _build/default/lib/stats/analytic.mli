(** Closed-form cost models stated in the paper (Section 6, Table 1,
    Figure 5).  These sit next to the measured values in the benchmark
    output so the shapes can be compared directly. *)

val urcgc_control_msgs_reliable : n:int -> int
(** Per subrun: [2(n-1)] — every process sends a request, the coordinator
    broadcasts a decision, even when no failures occur. *)

val urcgc_control_msgs_crash : n:int -> k:int -> f:int -> int
(** Over a whole crash-recovery episode: [2(2K+f)(n-1)]. *)

val cbcast_control_msgs_reliable : n:int -> int
(** Per stability round: [(n+1)] piggyback/stability messages. *)

val cbcast_control_msgs_crash : n:int -> k:int -> f:int -> int
(** Flush traffic per view change: [K((f+1)(2n-3)+1)]. *)

val cbcast_msg_size_reliable : n:int -> int
(** [4(n+1)] bytes: a vector timestamp plus sender/length words. *)

val cbcast_flush_size : n:int -> int
(** [4(n-1)] bytes per flush message. *)

val urcgc_recovery_time : k:int -> f:int -> int
(** Subruns (= rtds) needed to decide group composition and message
    stability after failures: [2K + f]. *)

val cbcast_recovery_time : k:int -> f:int -> int
(** Equivalent cost for CBCAST's view-change/flush: [K(5f+6)] rtds, during
    which message processing is suspended. *)

val urcgc_history_bound : n:int -> k:int -> f:int -> int
(** Worst-case messages resident in the history while an agreement is
    pending: [2(2K+f)n]. *)

val urcgc_history_bound_reliable : n:int -> int
(** Without failures no more than [2n] messages are stored. *)

val ip_min_datagram : int
(** 576 bytes: the paper's reference for "fits into a single IP datagram". *)

val ethernet_max_payload : int
(** 1500 bytes. *)
