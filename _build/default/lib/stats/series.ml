type t = { label : string; points : (float * float) list }

let make ~label points = { label; points }

let of_ints ~label points =
  { label; points = List.map (fun (x, y) -> (float_of_int x, float_of_int y)) points }

let length t = List.length t.points

let y_max t = List.fold_left (fun acc (_, y) -> Float.max acc y) 0.0 t.points

let y_at t x =
  List.find_map (fun (px, py) -> if px = x then Some py else None) t.points

let map_y t ~f = { t with points = List.map (fun (x, y) -> (x, f y)) t.points }

let pp ppf t =
  Format.fprintf ppf "@[<v 2>%s:@ %a@]" t.label
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf "@ ")
       (fun ppf (x, y) -> Format.fprintf ppf "(%.3g, %.3g)" x y))
    t.points

let xs_union series =
  List.concat_map (fun s -> List.map fst s.points) series
  |> List.sort_uniq Float.compare

let pp_table ppf series =
  let xs = xs_union series in
  Format.fprintf ppf "%12s" "x";
  List.iter (fun s -> Format.fprintf ppf " %14s" s.label) series;
  Format.pp_print_newline ppf ();
  List.iter
    (fun x ->
      Format.fprintf ppf "%12.4g" x;
      List.iter
        (fun s ->
          match y_at s x with
          | Some y -> Format.fprintf ppf " %14.4g" y
          | None -> Format.fprintf ppf " %14s" "-")
        series;
      Format.pp_print_newline ppf ())
    xs

let ascii_plot ?(width = 64) ?(height = 16) ppf series =
  let xs = xs_union series in
  match xs with
  | [] -> Format.fprintf ppf "(empty plot)@."
  | _ ->
      let x_min = List.hd xs and x_max = List.nth xs (List.length xs - 1) in
      let y_top =
        List.fold_left (fun acc s -> Float.max acc (y_max s)) 1e-9 series
      in
      let grid = Array.make_matrix height width ' ' in
      let marks = [| '*'; 'o'; '+'; 'x'; '#'; '@'; '%'; '&' |] in
      List.iteri
        (fun i s ->
          let mark = marks.(i mod Array.length marks) in
          List.iter
            (fun (x, y) ->
              let fx =
                if x_max = x_min then 0.0 else (x -. x_min) /. (x_max -. x_min)
              in
              let fy = y /. y_top in
              let col = min (width - 1) (int_of_float (fx *. float_of_int (width - 1))) in
              let row =
                height - 1
                - min (height - 1) (int_of_float (fy *. float_of_int (height - 1)))
              in
              grid.(row).(col) <- mark)
            s.points)
        series;
      Format.fprintf ppf "%8.3g +" y_top;
      Format.pp_print_newline ppf ();
      Array.iter
        (fun row ->
          Format.fprintf ppf "%8s |%s" "" (String.init width (Array.get row));
          Format.pp_print_newline ppf ())
        grid;
      Format.fprintf ppf "%8s +%s" "" (String.make width '-');
      Format.pp_print_newline ppf ();
      let x_min_label = Printf.sprintf "%.4g" x_min in
      let x_max_label = Printf.sprintf "%.4g" x_max in
      Format.fprintf ppf "%8s  %s%*s" "" x_min_label
        (max 1 (width - String.length x_min_label))
        x_max_label;
      Format.pp_print_newline ppf ();
      List.iteri
        (fun i s ->
          Format.fprintf ppf "%8s  %c = %s" "" marks.(i mod Array.length marks) s.label;
          Format.pp_print_newline ppf ())
        series
