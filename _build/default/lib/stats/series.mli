(** A labelled sequence of (x, y) points — one curve of a figure. *)

type t = { label : string; points : (float * float) list }

val make : label:string -> (float * float) list -> t

val of_ints : label:string -> (int * int) list -> t

val length : t -> int

val y_max : t -> float
(** 0 for an empty series. *)

val y_at : t -> float -> float option
(** Exact-x lookup. *)

val map_y : t -> f:(float -> float) -> t

val pp : Format.formatter -> t -> unit

val pp_table : Format.formatter -> t list -> unit
(** Renders several series sharing their x values as an aligned text table,
    one row per x (union of all x values), one column per series. *)

val ascii_plot :
  ?width:int -> ?height:int -> Format.formatter -> t list -> unit
(** Rough terminal plot of the curves, for eyeballing figure shapes. *)
