type t = {
  count : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  p50 : float;
  p95 : float;
  p99 : float;
}

let empty =
  { count = 0; mean = 0.; stddev = 0.; min = 0.; max = 0.; p50 = 0.; p95 = 0.; p99 = 0. }

let percentile sorted q =
  let n = Array.length sorted in
  if n = 0 then invalid_arg "Summary.percentile: empty sample";
  if q < 0.0 || q > 1.0 then invalid_arg "Summary.percentile: q out of range";
  if n = 1 then sorted.(0)
  else begin
    let rank = q *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor rank) in
    let hi = min (lo + 1) (n - 1) in
    let frac = rank -. float_of_int lo in
    (sorted.(lo) *. (1.0 -. frac)) +. (sorted.(hi) *. frac)
  end

let of_list samples =
  match samples with
  | [] -> empty
  | _ ->
      let sorted = Array.of_list samples in
      Array.sort Float.compare sorted;
      let count = Array.length sorted in
      let sum = Array.fold_left ( +. ) 0.0 sorted in
      let mean = sum /. float_of_int count in
      let var =
        Array.fold_left
          (fun acc x ->
            let d = x -. mean in
            acc +. (d *. d))
          0.0 sorted
        /. float_of_int count
      in
      {
        count;
        mean;
        stddev = sqrt var;
        min = sorted.(0);
        max = sorted.(count - 1);
        p50 = percentile sorted 0.5;
        p95 = percentile sorted 0.95;
        p99 = percentile sorted 0.99;
      }

let of_ints samples = of_list (List.map float_of_int samples)

let pp ppf t =
  Format.fprintf ppf
    "n=%d mean=%.3f sd=%.3f min=%.3f p50=%.3f p95=%.3f max=%.3f" t.count t.mean
    t.stddev t.min t.p50 t.p95 t.max
