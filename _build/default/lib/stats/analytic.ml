let urcgc_control_msgs_reliable ~n = 2 * (n - 1)

let urcgc_control_msgs_crash ~n ~k ~f = 2 * ((2 * k) + f) * (n - 1)

let cbcast_control_msgs_reliable ~n = n + 1

let cbcast_control_msgs_crash ~n ~k ~f = k * (((f + 1) * ((2 * n) - 3)) + 1)

let cbcast_msg_size_reliable ~n = 4 * (n + 1)

let cbcast_flush_size ~n = 4 * (n - 1)

let urcgc_recovery_time ~k ~f = (2 * k) + f

let cbcast_recovery_time ~k ~f = k * ((5 * f) + 6)

let urcgc_history_bound ~n ~k ~f = 2 * ((2 * k) + f) * n

let urcgc_history_bound_reliable ~n = 2 * n

let ip_min_datagram = 576

let ethernet_max_payload = 1500
