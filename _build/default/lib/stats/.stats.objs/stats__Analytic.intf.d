lib/stats/analytic.mli:
