lib/stats/series.mli: Format
