lib/stats/series.ml: Array Float Format List Printf String
