lib/stats/table.ml: Format List Printf String
