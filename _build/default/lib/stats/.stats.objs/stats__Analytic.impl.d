lib/stats/analytic.ml:
