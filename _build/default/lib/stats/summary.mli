(** Descriptive statistics over a sample of floats. *)

type t = {
  count : int;
  mean : float;
  stddev : float;  (** population standard deviation; 0 for count < 2 *)
  min : float;
  max : float;
  p50 : float;
  p95 : float;
  p99 : float;
}

val empty : t
(** All-zero summary of an empty sample. *)

val of_list : float list -> t

val of_ints : int list -> t

val percentile : float array -> float -> float
(** [percentile sorted q] with [q] in [0, 1], linear interpolation.  The
    array must be sorted ascending; raises [Invalid_argument] if empty or
    [q] out of range. *)

val pp : Format.formatter -> t -> unit
