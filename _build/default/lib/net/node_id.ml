module Id = struct
  type t = int

  let compare = Int.compare
end

type t = int

let of_int i =
  if i < 0 then invalid_arg "Node_id.of_int: negative" else i

let to_int t = t

let compare = Int.compare
let equal = Int.equal
let hash t = t

let pp ppf t = Format.fprintf ppf "p%d" t

let group n =
  if n <= 0 then invalid_arg "Node_id.group: n must be positive"
  else List.init n Fun.id

module Set = Set.Make (Id)
module Map = Map.Make (Id)
