(** Identity of a process/site in the group.

    Processes are numbered [0 .. n-1]; the paper writes them p_1 .. p_n.  The
    integer is also the index of the process in every per-group vector
    (history entries, [last_processed], decision fields, ...). *)

type t = private int

val of_int : int -> t
(** Raises [Invalid_argument] if negative. *)

val to_int : t -> int

val compare : t -> t -> int
val equal : t -> t -> bool
val hash : t -> int

val pp : Format.formatter -> t -> unit
(** Prints as [p3]. *)

val group : int -> t list
(** [group n] is [p0; ...; p(n-1)].  Raises [Invalid_argument] if [n <= 0]. *)

module Set : Set.S with type elt = t
module Map : Map.S with type key = t
