lib/net/fault.ml: Array Hashtbl List Node_id Sim
