lib/net/bytebuf.mli:
