lib/net/traffic.mli: Format
