lib/net/bytebuf.ml: Array Buffer Bytes Int32 Printf Result
