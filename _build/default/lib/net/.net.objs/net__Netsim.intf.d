lib/net/netsim.mli: Fault Node_id Sim Traffic
