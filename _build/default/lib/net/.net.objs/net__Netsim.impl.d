lib/net/netsim.ml: Fault Hashtbl List Node_id Sim Traffic
