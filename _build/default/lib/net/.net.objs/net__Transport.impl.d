lib/net/transport.ml: Array Fun Hashtbl List Netsim Node_id Option Sim Traffic
