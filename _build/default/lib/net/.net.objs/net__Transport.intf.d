lib/net/transport.mli: Fault Netsim Node_id Sim Traffic
