lib/net/traffic.ml: Array Format
