lib/net/node_id.ml: Format Fun Int List Map Set
