lib/net/fault.mli: Node_id Sim
