(** Byte-accurate accounting of the traffic a protocol offers to the network.

    Table 1 of the paper reports the *amount* and *size* of control messages;
    every packet handed to {!Netsim} is classified so the benchmark harness
    can reproduce that table from measurements rather than formulas. *)

type kind = Data | Control | Recovery | Ack

val kind_to_string : kind -> string

type t

val create : unit -> t

val record : t -> kind:kind -> size:int -> unit

val count : t -> kind -> int
(** Number of packets of that kind handed to the network. *)

val bytes : t -> kind -> int

val total_count : t -> int
val total_bytes : t -> int

val mean_size : t -> kind -> float
(** Mean packet size of a kind; 0 if none were sent. *)

val max_size : t -> kind -> int

val reset : t -> unit

val pp : Format.formatter -> t -> unit
