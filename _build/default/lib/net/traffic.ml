type kind = Data | Control | Recovery | Ack

let kind_to_string = function
  | Data -> "data"
  | Control -> "control"
  | Recovery -> "recovery"
  | Ack -> "ack"

let kind_index = function Data -> 0 | Control -> 1 | Recovery -> 2 | Ack -> 3

let kinds = [ Data; Control; Recovery; Ack ]

type t = { counts : int array; bytes : int array; max_sizes : int array }

let create () =
  { counts = Array.make 4 0; bytes = Array.make 4 0; max_sizes = Array.make 4 0 }

let record t ~kind ~size =
  let i = kind_index kind in
  t.counts.(i) <- t.counts.(i) + 1;
  t.bytes.(i) <- t.bytes.(i) + size;
  if size > t.max_sizes.(i) then t.max_sizes.(i) <- size

let count t kind = t.counts.(kind_index kind)
let bytes t kind = t.bytes.(kind_index kind)

let total_count t = Array.fold_left ( + ) 0 t.counts
let total_bytes t = Array.fold_left ( + ) 0 t.bytes

let mean_size t kind =
  let n = count t kind in
  if n = 0 then 0.0 else float_of_int (bytes t kind) /. float_of_int n

let max_size t kind = t.max_sizes.(kind_index kind)

let reset t =
  Array.fill t.counts 0 4 0;
  Array.fill t.bytes 0 4 0;
  Array.fill t.max_sizes 0 4 0

let pp ppf t =
  let pp_kind ppf kind =
    Format.fprintf ppf "%s: %d pkts / %d B" (kind_to_string kind) (count t kind)
      (bytes t kind)
  in
  Format.fprintf ppf "@[<v>%a@]" (Format.pp_print_list pp_kind) kinds
