type request = {
  sender : Net.Node_id.t;
  subrun : int;
  last_processed : int array;
  waiting : Causal.Mid.t option array;
  prev_decision : Decision.t;
}

type recover_request = {
  requester : Net.Node_id.t;
  origin : Net.Node_id.t;
  from_seq : int;
  to_seq : int;
}

type 'a recover_reply = {
  responder : Net.Node_id.t;
  messages : 'a Causal.Causal_msg.t list;
}

type 'a body =
  | Data of 'a Causal.Causal_msg.t
  | Request of request
  | Decision_pdu of Decision.t
  | Recover_req of recover_request
  | Recover_reply of 'a recover_reply

let request_size r =
  let n = Array.length r.last_processed in
  (* tag+sender + subrun + last_processed (4B each) + waiting seqs (4B each,
     origin implied by index) + piggybacked decision *)
  4 + 4 + (4 * n) + (4 * n) + Decision.encoded_size r.prev_decision

let body_size = function
  | Data msg -> Causal.Causal_msg.encoded_size msg
  | Request r -> request_size r
  | Decision_pdu d -> 4 + Decision.encoded_size d
  | Recover_req _ -> 4 + 4 + 4 + 4 + 4
  | Recover_reply { messages; _ } ->
      4
      + 4
      + List.fold_left
          (fun acc msg -> acc + Causal.Causal_msg.encoded_size msg)
          0 messages

let kind = function
  | Data _ -> Net.Traffic.Data
  | Request _ | Decision_pdu _ -> Net.Traffic.Control
  | Recover_req _ | Recover_reply _ -> Net.Traffic.Recovery

let pp_body ppf = function
  | Data msg -> Format.fprintf ppf "data %a" Causal.Causal_msg.pp msg
  | Request r ->
      Format.fprintf ppf "request from %a (subrun %d)" Net.Node_id.pp r.sender
        r.subrun
  | Decision_pdu d -> Format.fprintf ppf "decision subrun %d" d.Decision.subrun
  | Recover_req { requester; origin; from_seq; to_seq } ->
      Format.fprintf ppf "recover-req %a wants %a seq %d..%d" Net.Node_id.pp
        requester Net.Node_id.pp origin from_seq to_seq
  | Recover_reply { responder; messages } ->
      Format.fprintf ppf "recover-reply from %a (%d msgs)" Net.Node_id.pp
        responder (List.length messages)
