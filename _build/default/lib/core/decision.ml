type t = {
  subrun : int;
  coordinator : Net.Node_id.t;
  full_group : bool;
  stable : int array;
  max_processed : int array;
  most_updated : Net.Node_id.t array;
  min_waiting : int array;
  attempts : int array;
  alive : bool array;
  heard : bool array;
  acc_stable : int array;
  acc_min_waiting : int array;
}

let initial ~n =
  if n <= 0 then invalid_arg "Decision.initial: n must be positive";
  {
    subrun = -1;
    coordinator = Net.Node_id.of_int 0;
    full_group = false;
    stable = Array.make n 0;
    max_processed = Array.make n 0;
    most_updated = Array.init n Net.Node_id.of_int;
    min_waiting = Array.make n 0;
    attempts = Array.make n 0;
    alive = Array.make n true;
    heard = Array.make n false;
    acc_stable = Array.make n max_int;
    acc_min_waiting = Array.make n 0;
  }

let newer t ~than = t.subrun > than.subrun

let alive_members t =
  let ids = ref [] in
  for i = Array.length t.alive - 1 downto 0 do
    if t.alive.(i) then ids := Net.Node_id.of_int i :: !ids
  done;
  !ids

let encoded_size t =
  let n = Array.length t.stable in
  let bitmap = (n + 7) / 8 in
  (* subrun + coordinator + flags *)
  4 + 4 + 1
  (* stable, max_processed, most_updated, min_waiting, acc_stable,
     acc_min_waiting: 4B per origin each *)
  + (4 * n * 6)
  (* attempts: 2B each *)
  + (2 * n)
  (* alive + heard bitmaps *)
  + (2 * bitmap)

let pp ppf t =
  let pp_vec ppf v =
    Format.fprintf ppf "[%a]"
      (Format.pp_print_seq
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ";")
         Format.pp_print_int)
      (Array.to_seq v)
  in
  Format.fprintf ppf
    "@[<v 2>decision{subrun=%d; coord=%a; full=%b;@ stable=%a;@ max=%a;@ \
     min_wait=%a;@ attempts=%a;@ alive=%a}@]"
    t.subrun Net.Node_id.pp t.coordinator t.full_group pp_vec t.stable pp_vec
    t.max_processed pp_vec t.min_waiting pp_vec t.attempts
    (fun ppf alive ->
      Array.iter (fun a -> Format.pp_print_char ppf (if a then '1' else '0')) alive)
    t.alive
