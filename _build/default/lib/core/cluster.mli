(** A group of urcgc processes bound to the simulator and the network.

    The cluster schedules the global round clock (two rounds per subrun, one
    subrun per rtd), feeds each member its round hooks and incoming PDUs,
    executes the resulting actions, and records everything an experiment
    needs: processing events with timestamps, confirmations, discards and
    departures. *)

type 'a delivery = {
  node : Net.Node_id.t;  (** where the message was processed *)
  msg : 'a Causal.Causal_msg.t;
  at : Sim.Ticks.t;
}

type 'a generation = {
  mid : Causal.Mid.t;
  payload : 'a;
  sent_at : Sim.Ticks.t;
}

type departure = {
  who : Net.Node_id.t;
  why : Member.reason;
  when_ : Sim.Ticks.t;
}

type 'a t

val create :
  ?tracer:Sim.Tracer.t ->
  config:Config.t ->
  net:'a Wire.body Net.Netsim.t ->
  unit ->
  'a t
(** Creates the [config.n] members mounted directly on the datagram
    subnetwork — the paper's evaluated [h = 1] configuration.  Raises
    [Invalid_argument] if the network already has handlers on the group's
    ids. *)

val create_with_medium :
  ?tracer:Sim.Tracer.t -> config:Config.t -> medium:'a Medium.t -> unit -> 'a t
(** Same, over an arbitrary {!Medium} — in particular the Section 5
    transport entity with [h > 1] ({!Medium.of_transport}). *)

val medium : 'a t -> 'a Medium.t

val start : 'a t -> unit
(** Starts the round clock at the engine's current time.  Rounds are
    scheduled lazily, so the simulation ends when [Engine.run ~until] says
    so. *)

val config : 'a t -> Config.t
val member : 'a t -> Net.Node_id.t -> 'a Member.t
val members : 'a t -> 'a Member.t list

val submit :
  ?deps:Causal.Mid.t list -> ?size:int -> 'a t -> Net.Node_id.t -> 'a -> unit
(** [urcgc.data.Rq] at the given process. *)

val round : 'a t -> int
(** Rounds completed so far. *)

val subrun : 'a t -> int

val on_round : 'a t -> (round:int -> unit) -> unit
(** Registers a callback fired after every completed round — used by
    experiments to sample history lengths etc.  Callbacks run in
    registration order. *)

val on_delivery : 'a t -> ('a delivery -> unit) -> unit
(** Fired at every processing event, as it happens. *)

val on_confirm : 'a t -> (Net.Node_id.t -> Causal.Mid.t -> unit) -> unit
(** Fired when a process's own message is locally processed
    ([urcgc.data.Conf]). *)

val add_broadcast_targets : 'a t -> Net.Node_id.t list -> unit
(** Extends every member broadcast (data and decisions) to additional
    receivers outside the group — the diffusion-group configuration of
    Section 3, where messages are multicast "to the full set of server and
    client processes". *)

val deliveries : 'a t -> 'a delivery list
(** Every processing event, in simulation order. *)

val generations : 'a t -> 'a generation list
(** Every message generation (mid assignment + broadcast), in order. *)

val departures : 'a t -> departure list

val discards : 'a t -> (Net.Node_id.t * Causal.Mid.t list * Sim.Ticks.t) list

val active_members : 'a t -> Net.Node_id.t list
(** Members that have not crashed (per fault injection) and not left. *)

val quiescent : 'a t -> bool
(** All active members have empty SAP backlogs and waiting lists and agree on
    a common [last_processed] vector — nothing further will be processed if
    no new messages are submitted. *)
