(** The coordinator's decision (Figure 2).

    A decision is the coordinator's picture of the global state, broadcast at
    the end of each subrun and piggybacked by every process on its next
    request so that coordinator [c+1] is guaranteed to know the decision of
    coordinator [c] (resilience degree [(n-1)/2]).

    All per-origin vectors are indexed by node id.  Sequence number 0 means
    "nothing"; [min_waiting.(j) = 0] means no process reported a waiting
    message of origin [j]. *)

type t = {
  subrun : int;  (** subrun this decision was computed in *)
  coordinator : Net.Node_id.t;
  full_group : bool;
      (** the stability cycle closed: every process alive in this decision
          contributed its state since the previous full decision *)
  stable : int array;
      (** per-origin history cleaning point — the last seq processed by
          every active process; only advanced by full-group decisions *)
  max_processed : int array;
      (** per-origin seq processed by the most updated active process *)
  most_updated : Net.Node_id.t array;
      (** who holds [max_processed] for each origin — recovery target *)
  min_waiting : int array;
      (** per-origin oldest waiting seq reported by anyone (0 = none) *)
  attempts : int array;
      (** consecutive subruns each process failed to contact a coordinator *)
  alive : bool array;  (** the decided group composition ([process_state]) *)
  heard : bool array;
      (** processes that contributed since the last full-group decision —
          the accumulator that makes stability decisions possible even when
          each individual subrun only hears from a partial set *)
  acc_stable : int array;
      (** accumulated per-origin minimum over the processes in [heard] *)
  acc_min_waiting : int array;
      (** accumulator behind [min_waiting], over the same cycle as [heard] *)
}

val initial : n:int -> t
(** The decision every process starts with: subrun -1, everyone alive,
    nothing stable, coordinator [p0] by convention. *)

val newer : t -> than:t -> bool
(** Strictly more recent (higher subrun). *)

val alive_members : t -> Net.Node_id.t list

val encoded_size : t -> int
(** Wire size in bytes, computed from the field layout (4-byte sequence
    numbers and ids, 2-byte attempts, bit-packed booleans). *)

val pp : Format.formatter -> t -> unit
