(** The urcgc Service Access Point (Section 5).

    "The urcgc service is accessed through the user urcgc SAPs and is fully
    described by the primitives urcgc.data.Rq(), urcgc.data.Conf(),
    urcgc.data.Ind()."  A SAP wraps one process of a cluster with exactly
    that interface: requests are queued (one is labelled and multicast per
    round), the Confirm fires when the local entity has processed the
    message — the paper's user entity blocks on it — and Indications fire
    asynchronously as remote messages are processed here. *)

type 'a t

val attach : 'a Cluster.t -> Net.Node_id.t -> 'a t
(** One SAP per process; attaching twice to the same process is allowed and
    shares the underlying entity (the callbacks of both fire). *)

val id : 'a t -> Net.Node_id.t

val data_rq :
  ?deps:Causal.Mid.t list ->
  ?size:int ->
  ?on_conf:(Causal.Mid.t -> unit) ->
  'a t ->
  'a ->
  unit
(** [urcgc.data.Rq].  [deps] defaults to the sender's causal frontier;
    [on_conf] fires once, when the message has been labelled, broadcast and
    locally processed.  "In absence of failures, the urcgc service
    guarantees to process one message a round." *)

val on_data_ind :
  'a t -> (mid:Causal.Mid.t -> deps:Causal.Mid.t list -> 'a -> unit) -> unit
(** [urcgc.data.Ind]: fires for every message processed at this process,
    own messages included, in processing order. *)

val pending_confirms : 'a t -> int
(** Requests submitted and not yet confirmed. *)
