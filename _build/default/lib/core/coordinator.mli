(** Pure decision making of the rotating coordinator (Section 4).

    Given the previous decision and the requests received during a subrun,
    [compute] produces the new decision.  Keeping this a pure function makes
    the agreement logic unit- and property-testable without any network. *)

val rotation : alive:bool array -> subrun:int -> Net.Node_id.t
(** The coordinator of a subrun: node [subrun mod n], advanced past processes
    not alive in the given composition.  Every process applies this rule to
    its own latest decision, so processes with the same decision pick the
    same coordinator.  Raises [Invalid_argument] if no process is alive. *)

val compute :
  config:Config.t ->
  subrun:int ->
  coordinator:Net.Node_id.t ->
  prev:Decision.t ->
  requests:Wire.request list ->
  Decision.t
(** Decision of [coordinator] for [subrun].

    - [prev] must be the most recent decision known to the coordinator,
      i.e. the maximum over its own and the ones piggybacked on [requests];
      use {!merge_prev} to obtain it.
    - [attempts]: reset to 0 for senders, incremented for silent alive
      processes; a process reaching K attempts is declared crashed.
    - stability: per-origin minima of [last_processed] are accumulated over
      the processes heard since the last full-group decision; when that set
      covers every alive process the cleaning point [stable] advances and
      the cycle restarts.
    - [max_processed]/[most_updated]: per-origin maximum over contributors,
      kept monotone while the holder stays alive; recomputed from the current
      contributors when the holder is declared crashed.
    - [min_waiting]: per-origin minimum of the oldest waiting mids reported
      in this cycle (accumulated like stability so that full-group decisions
      reflect every active process). *)

val merge_prev : Decision.t -> Wire.request list -> Decision.t
(** Most recent decision among [prev] and the piggybacked ones. *)
