(** Protocol data units exchanged by urcgc entities.

    Sizes are computed from the field layout so that the network-load
    measurements of Table 1 are byte-accurate.  The urcgc protocol requires
    only a datagram service underneath; every PDU here fits the message-size
    assumption of Section 5. *)

type request = {
  sender : Net.Node_id.t;
  subrun : int;
  last_processed : int array;
      (** mid (seq) of the last processed message per origin *)
  waiting : Causal.Mid.t option array;
      (** oldest waiting mid per origin ([waiting_i]) *)
  prev_decision : Decision.t;
      (** the most recent decision the sender received — this piggyback is
          what circulates decisions between rotating coordinators *)
}

type recover_request = {
  requester : Net.Node_id.t;
  origin : Net.Node_id.t;
  from_seq : int;
  to_seq : int;
}

type 'a recover_reply = {
  responder : Net.Node_id.t;
  messages : 'a Causal.Causal_msg.t list;
}

type 'a body =
  | Data of 'a Causal.Causal_msg.t
  | Request of request
  | Decision_pdu of Decision.t
  | Recover_req of recover_request
  | Recover_reply of 'a recover_reply

val request_size : request -> int
val body_size : 'a body -> int

val kind : 'a body -> Net.Traffic.kind
(** Data PDUs are data traffic; requests and decisions are control traffic;
    recovery PDUs are recovery traffic. *)

val pp_body : Format.formatter -> 'a body -> unit
