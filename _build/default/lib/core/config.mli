(** Protocol parameters of the urcgc algorithm.

    - [n]: group cardinality.
    - [k]: the paper's K — a process has K subruns (retries) to deliver its
      view to K rotating coordinators before being declared crashed; a
      process that receives nothing for too long leaves autonomously.
    - [r]: the paper's R — unsuccessful recovery attempts before a process
      autonomously leaves the group.  Must satisfy [R > 2K + f] for the
      expected amount of coordinator crashes [f].
    - [flow_threshold]: local history length at which a process stops
      generating new messages ([8n] in the paper's simulations); [None]
      disables flow control.
    - [silence_limit]: consecutive subruns without receiving any coordinator
      decision after which a process autonomously leaves.  The paper says "K
      consecutive coordinators", counting coordinators that actually
      produced a decision; a deaf process cannot distinguish those from
      crashed coordinators, so the default is the conservative [2K]. *)

type t = private {
  n : int;
  k : int;
  r : int;
  flow_threshold : int option;
  silence_limit : int;
  payload_size : int;  (** default user payload size in bytes *)
}

val make :
  ?k:int ->
  ?r:int ->
  ?flow_threshold:int option ->
  ?silence_limit:int ->
  ?payload_size:int ->
  n:int ->
  unit ->
  t
(** Defaults: [k = 3], [r = 2k + 4], [flow_threshold = None],
    [silence_limit = 2k], [payload_size = 64].  Raises [Invalid_argument] on
    non-positive [n], [k], [r], [payload_size], or [r <= k]. *)

val resilience : t -> int
(** The paper's resilience degree [t = (n-1)/2]: the highest number of
    allowed failures per subrun that still guarantees decision circulation. *)

val pp : Format.formatter -> t -> unit
