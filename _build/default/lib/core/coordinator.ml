let rotation ~alive ~subrun =
  let n = Array.length alive in
  if not (Array.exists Fun.id alive) then
    invalid_arg "Coordinator.rotation: no process alive";
  let rec advance i steps =
    if steps > n then invalid_arg "Coordinator.rotation: no process alive"
    else if alive.(i) then Net.Node_id.of_int i
    else advance ((i + 1) mod n) (steps + 1)
  in
  advance (((subrun mod n) + n) mod n) 0

let merge_prev prev requests =
  List.fold_left
    (fun best (r : Wire.request) ->
      if Decision.newer r.prev_decision ~than:best then r.prev_decision else best)
    prev requests

(* Fold one request into the stability-cycle accumulators. *)
let contribute ~heard ~acc_stable ~acc_min_waiting (r : Wire.request) =
  let n = Array.length acc_stable in
  heard.(Net.Node_id.to_int r.sender) <- true;
  for j = 0 to n - 1 do
    if r.last_processed.(j) < acc_stable.(j) then
      acc_stable.(j) <- r.last_processed.(j);
    match r.waiting.(j) with
    | None -> ()
    | Some mid ->
        let seq = Causal.Mid.seq mid in
        if acc_min_waiting.(j) = 0 || seq < acc_min_waiting.(j) then
          acc_min_waiting.(j) <- seq
  done

let compute ~config ~subrun ~coordinator ~prev ~requests =
  let n = config.Config.n in
  let k = config.Config.k in
  let got_request = Array.make n false in
  List.iter
    (fun (r : Wire.request) -> got_request.(Net.Node_id.to_int r.sender) <- true)
    requests;
  (* Group composition: silent alive processes accumulate attempts; at K they
     are declared crashed and removed ("process_state = false"). *)
  let attempts = Array.copy prev.Decision.attempts in
  let alive = Array.copy prev.Decision.alive in
  for i = 0 to n - 1 do
    if alive.(i) then
      if got_request.(i) then attempts.(i) <- 0
      else begin
        attempts.(i) <- attempts.(i) + 1;
        if attempts.(i) >= k then alive.(i) <- false
      end
  done;
  (* Stability cycle: accumulate per-origin minima over the processes heard
     since the last full-group decision.  Each subrun typically hears only a
     partial set; the cycle closes when the heard set covers every alive
     process, and only then may histories be cleaned. *)
  let heard = Array.copy prev.Decision.heard in
  let acc_stable = Array.copy prev.Decision.acc_stable in
  let acc_min_waiting = Array.copy prev.Decision.acc_min_waiting in
  List.iter (contribute ~heard ~acc_stable ~acc_min_waiting) requests;
  let full_group =
    let covered = ref true in
    for i = 0 to n - 1 do
      if alive.(i) && not heard.(i) then covered := false
    done;
    !covered
  in
  (* Most updated process per origin.  Monotone while the holder is alive;
     when the holder is declared crashed the maximum is rebuilt from current
     contributors, which is what makes orphaned sequences detectable
     (min_waiting - max_processed > 1 on a later full-group decision). *)
  let max_processed = Array.copy prev.Decision.max_processed in
  let most_updated = Array.copy prev.Decision.most_updated in
  for j = 0 to n - 1 do
    if not alive.(Net.Node_id.to_int most_updated.(j)) then begin
      max_processed.(j) <- 0;
      most_updated.(j) <- coordinator
    end
  done;
  let consider (r : Wire.request) =
    for j = 0 to n - 1 do
      if r.Wire.last_processed.(j) > max_processed.(j) then begin
        max_processed.(j) <- r.Wire.last_processed.(j);
        most_updated.(j) <- r.Wire.sender
      end
    done
  in
  List.iter consider requests;
  if full_group then begin
    (* Publish the closed cycle... *)
    let stable = Array.copy prev.Decision.stable in
    for j = 0 to n - 1 do
      if acc_stable.(j) <> max_int && acc_stable.(j) > stable.(j) then
        stable.(j) <- acc_stable.(j)
    done;
    let min_waiting = Array.copy acc_min_waiting in
    (* ... and restart the accumulators empty: re-seeding them with this
       subrun's contributions would drag today's minima into the next
       cycle's cut and keep stability one subrun staler than necessary. *)
    let heard' = Array.make n false in
    let acc_stable' = Array.make n max_int in
    let acc_min_waiting' = Array.make n 0 in
    {
      Decision.subrun;
      coordinator;
      full_group = true;
      stable;
      max_processed;
      most_updated;
      min_waiting;
      attempts;
      alive;
      heard = heard';
      acc_stable = acc_stable';
      acc_min_waiting = acc_min_waiting';
    }
  end
  else
    {
      Decision.subrun;
      coordinator;
      full_group = false;
      stable = Array.copy prev.Decision.stable;
      max_processed;
      most_updated;
      min_waiting = Array.copy prev.Decision.min_waiting;
      attempts;
      alive;
      heard;
      acc_stable;
      acc_min_waiting;
    }
