type t = {
  n : int;
  k : int;
  r : int;
  flow_threshold : int option;
  silence_limit : int;
  payload_size : int;
}

let make ?(k = 3) ?r ?flow_threshold ?silence_limit ?(payload_size = 64) ~n () =
  let r = Option.value r ~default:((2 * k) + 4) in
  let silence_limit = Option.value silence_limit ~default:(2 * k) in
  let flow_threshold = Option.value flow_threshold ~default:None in
  if n <= 0 then invalid_arg "Config.make: n must be positive";
  if k <= 0 then invalid_arg "Config.make: k must be positive";
  if r <= k then invalid_arg "Config.make: r must exceed k";
  if payload_size < 0 then invalid_arg "Config.make: negative payload size";
  if silence_limit <= 0 then invalid_arg "Config.make: silence_limit must be positive";
  (match flow_threshold with
  | Some threshold when threshold <= 0 ->
      invalid_arg "Config.make: flow threshold must be positive"
  | Some _ | None -> ());
  { n; k; r; flow_threshold; silence_limit; payload_size }

let resilience t = (t.n - 1) / 2

let pp ppf t =
  Format.fprintf ppf "{n=%d; K=%d; R=%d; flow=%a; silence=%d}" t.n t.k t.r
    (Format.pp_print_option
       ~none:(fun ppf () -> Format.pp_print_string ppf "off")
       Format.pp_print_int)
    t.flow_threshold t.silence_limit
