lib/core/wire_codec.mli: Decision Net Wire
