lib/core/wire_codec.ml: Array Bytes Causal Decision List Net Printf Wire
