lib/core/coordinator.mli: Config Decision Net Wire
