lib/core/sap.mli: Causal Cluster Net
