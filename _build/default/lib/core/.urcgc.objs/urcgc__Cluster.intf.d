lib/core/cluster.mli: Causal Config Medium Member Net Sim Wire
