lib/core/medium.ml: Array Decision List Net Printf Sim Wire Wire_codec
