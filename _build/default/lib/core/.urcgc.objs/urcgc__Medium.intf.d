lib/core/medium.mli: Net Sim Wire
