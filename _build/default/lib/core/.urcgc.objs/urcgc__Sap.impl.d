lib/core/sap.ml: Causal Cluster List Net Queue
