lib/core/wire.ml: Array Causal Decision Format List Net
