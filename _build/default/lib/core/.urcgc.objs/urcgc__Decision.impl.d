lib/core/decision.ml: Array Format Net
