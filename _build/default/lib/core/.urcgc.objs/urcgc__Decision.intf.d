lib/core/decision.mli: Format Net
