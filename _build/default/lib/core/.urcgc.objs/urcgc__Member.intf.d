lib/core/member.mli: Causal Config Decision Net Wire
