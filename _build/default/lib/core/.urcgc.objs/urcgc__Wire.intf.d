lib/core/wire.mli: Causal Decision Format Net
