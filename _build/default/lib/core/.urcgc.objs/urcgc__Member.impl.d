lib/core/member.ml: Array Causal Config Coordinator Decision Format List Net Option Queue Wire
