lib/core/coordinator.ml: Array Causal Config Decision Fun List Net Wire
