lib/core/cluster.ml: Array Causal Config Format List Medium Member Net Sim Wire
