(* Figure 6: history length against simulation time (in rtd).

   a) n = 40, 480 messages, K = 1..4, reliable vs general-omission failures
      (1 crash + 1/500 omissions) injected during the first 5 rtd.  The
      paper's claims: without failures no more than ~2n messages are stored;
      with failures the peak grows with K (larger K = longer until the
      group composition is settled and histories can be cleaned).

   b) the same faulty scenario with the distributed flow-control policy:
      when the local history reaches 8n the process refrains from generating
      new messages.  The paper's claims: history (and the waiting list) stay
      bounded, at the price of a longer time to process all messages. *)

let n = 40
let messages = 480
let rate = 0.3 (* n * rate = 12 messages per round offered *)

let faulty_spec =
  Net.Fault.with_crashes
    [ (Net.Node_id.of_int 23, Sim.Ticks.of_int ((2 * Sim.Ticks.per_rtd) + 1)) ]
    (Net.Fault.omission_every 500)

let run_once ?(seed = 42) ?(rate = rate) ?(messages = messages) ~k ~fault
    ~flow () =
  let flow_threshold = if flow then Some (8 * n) else None in
  let config = Urcgc.Config.make ~k ?flow_threshold:(Some flow_threshold) ~n () in
  let load = Workload.Load.make ~rate ~total_messages:messages () in
  let scenario =
    Workload.Scenario.make
      ~name:(Printf.sprintf "fig6-k%d%s" k (if flow then "-flow" else ""))
      ~fault ~seed ~max_rtd:200.0 ~config ~load ()
  in
  let report = Workload.Runner.run scenario in
  if not (Workload.Checker.ok report.Workload.Runner.verdict) then
    Format.printf "  !! invariant violation at K=%d@." k;
  report

(* The peak is noisy for a single seed; average a few runs for the summary. *)
let mean_peak ~k ~fault ~flow =
  let seeds = [ 42; 43; 44; 45 ] in
  let total =
    List.fold_left
      (fun acc seed ->
        acc + (run_once ~seed ~k ~fault ~flow ()).Workload.Runner.history_peak)
      0 seeds
  in
  float_of_int total /. float_of_int (List.length seeds)

let history_series ~label (report : Workload.Runner.report) =
  (* Sample every other round so the table stays readable: x in rtd. *)
  let points =
    List.filter_map
      (fun (round, length) ->
        if round mod 4 = 0 then
          Some (float_of_int round /. 2.0, float_of_int length)
        else None)
      report.Workload.Runner.history_series
  in
  Stats.Series.make ~label points

let run_a () =
  Format.printf
    "@.== Figure 6 a): history length vs simulation time (rtd) ==@.";
  Format.printf "   (n = %d, %d messages, failures in the first 5 rtd)@.@." n
    messages;
  let reliable = run_once ~k:3 ~fault:Net.Fault.reliable ~flow:false () in
  let faulty =
    List.map
      (fun k -> (k, run_once ~k ~fault:faulty_spec ~flow:false ()))
      [ 1; 2; 3; 4 ]
  in
  let series =
    history_series ~label:"reliable K=3" reliable
    :: List.map
         (fun (k, r) ->
           history_series ~label:(Printf.sprintf "faulty K=%d" k) r)
         faulty
  in
  Stats.Series.pp_table Format.std_formatter series;
  Format.printf "@.";
  Stats.Series.ascii_plot ~width:60 ~height:14 Format.std_formatter series;
  Format.printf "@.peaks (mean over 4 seeds):@.";
  Format.printf "  reliable K=3: peak %d (paper bound ~2n = %d)@."
    reliable.Workload.Runner.history_peak
    (Stats.Analytic.urcgc_history_bound_reliable ~n);
  let peaks =
    List.map
      (fun k -> (k, mean_peak ~k ~fault:faulty_spec ~flow:false))
      [ 1; 2; 3; 4 ]
  in
  List.iter
    (fun (k, peak) ->
      Format.printf
        "  faulty  K=%d: peak %6.1f (worst-case bound 2(2K+f)n = %d)@." k peak
        (Stats.Analytic.urcgc_history_bound ~n ~k ~f:0))
    peaks;
  Format.printf "@.shape checks:@.";
  let peak k = List.assoc k peaks in
  Format.printf "  failure peaks grow with K (K=4 over K=1): %b@."
    (peak 4 > peak 1);
  Format.printf "  reliable peak below the mean failure peaks: %b@."
    (float_of_int reliable.Workload.Runner.history_peak <= peak 2);
  faulty

(* The reliable-bound experiment of a) uses the paper's light load; the
   flow-control demonstration needs a load under which the uncontrolled
   history would exceed the 8n threshold, so b) saturates the service (one
   message per process per round, as Section 5 allows). *)
let rate_b = 1.0

let messages_b = 960

let run_b _faulty_a =
  Format.printf
    "@.== Figure 6 b): saturating faulty runs, with and without the 8n \
     flow-control threshold (%d) ==@.@."
    (8 * n);
  let faulty =
    List.map
      (fun k ->
        ( k,
          run_once ~rate:rate_b ~messages:messages_b ~k ~fault:faulty_spec
            ~flow:false () ))
      [ 3; 4 ]
  in
  let flowed =
    List.map
      (fun k ->
        ( k,
          run_once ~rate:rate_b ~messages:messages_b ~k ~fault:faulty_spec
            ~flow:true () ))
      [ 3; 4 ]
  in
  let series =
    List.concat_map
      (fun (k, r) ->
        [
          history_series ~label:(Printf.sprintf "no flow K=%d" k)
            (List.assoc k faulty);
          history_series ~label:(Printf.sprintf "flow 8n K=%d" k) r;
        ])
      flowed
  in
  Stats.Series.pp_table Format.std_formatter series;
  Format.printf "@.";
  Stats.Series.ascii_plot ~width:60 ~height:14 Format.std_formatter series;
  Format.printf "@.bounds and completion times:@.";
  List.iter
    (fun (k, r) ->
      let unflowed : Workload.Runner.report = List.assoc k faulty in
      Format.printf
        "  K=%d: peak %d -> %d (threshold %d); waiting peak %d -> %d; \
         completion %.1f -> %.1f rtd@."
        k unflowed.Workload.Runner.history_peak r.Workload.Runner.history_peak
        (8 * n) unflowed.Workload.Runner.waiting_peak
        r.Workload.Runner.waiting_peak unflowed.Workload.Runner.completion_rtd
        r.Workload.Runner.completion_rtd)
    flowed;
  Format.printf "@.shape checks:@.";
  Format.printf "  flow control bounds the history near 8n (+ one subrun of \
                 slack): %b@."
    (List.for_all
       (fun (_, r) ->
         r.Workload.Runner.history_peak <= (8 * n) + (2 * n))
       flowed);
  Format.printf "  flow control costs completion time: %b@."
    (List.for_all
       (fun (k, r) ->
         let unflowed : Workload.Runner.report = List.assoc k faulty in
         r.Workload.Runner.completion_rtd
         >= unflowed.Workload.Runner.completion_rtd -. 0.5)
       flowed)

let run () =
  ignore (run_a ());
  run_b []

let run_a_only () = ignore (run_a ())

let run_b_only () = run_b []
