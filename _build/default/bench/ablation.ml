(* Ablations for the design choices DESIGN.md calls out.

   A) Mounting (Section 5): urcgc directly over the datagram subnetwork
      (h = 1, the paper's evaluated configuration) vs over the transport
      entity with h = n/2 and h = all.  The paper's claim: with a transport
      underneath "we only observe a different location of the retransmission
      function and, since messages are more likely to be correctly
      delivered, a reduced use of the recovery from history".

   B) Causality density (Definition 3.1): how much of the frontier a message
      explicitly depends on.  Denser labels serialize more (a lost message
      blocks everything after it); sparser labels keep independent sequences
      flowing — "the algorithm should maintain the specified concurrency". *)

let n = 15
let k = 3
let messages = 200

let omission = Net.Fault.omission_every 60

let run_mount ~mount label =
  let config = Urcgc.Config.make ~k ~n () in
  let load = Workload.Load.make ~rate:0.5 ~total_messages:messages () in
  let scenario =
    Workload.Scenario.make ~name:label ~fault:omission ~mount ~seed:42
      ~max_rtd:300.0 ~config ~load ()
  in
  (label, Workload.Runner.run scenario)

let run_deps ~deps_mode label =
  let config = Urcgc.Config.make ~k ~n () in
  let load =
    Workload.Load.make ~rate:0.5 ~total_messages:messages ~deps_mode ()
  in
  let scenario =
    Workload.Scenario.make ~name:label ~fault:omission ~seed:42 ~max_rtd:300.0
      ~config ~load ()
  in
  (label, Workload.Runner.run scenario)

let print_rows rows ~extra_header ~extra =
  let table =
    Stats.Table.create
      ~columns:
        [
          ("configuration", Stats.Table.Left);
          ("mean D (rtd)", Stats.Table.Right);
          ("p95 D", Stats.Table.Right);
          ("recovery msgs", Stats.Table.Right);
          ("waiting peak", Stats.Table.Right);
          (extra_header, Stats.Table.Right);
          ("invariants", Stats.Table.Left);
        ]
  in
  List.iter
    (fun (label, (r : Workload.Runner.report)) ->
      Stats.Table.add_row table
        [
          label;
          Stats.Table.cell_float ~decimals:3 (Workload.Runner.mean_delay_rtd r);
          Stats.Table.cell_float ~decimals:3 r.delay.Stats.Summary.p95;
          Stats.Table.cell_int r.recovery_msgs;
          Stats.Table.cell_int r.waiting_peak;
          extra r;
          (if Workload.Checker.ok r.verdict then "ok" else "VIOLATED");
        ])
    rows;
  Stats.Table.pp Format.std_formatter table

let run_mounting () =
  Format.printf
    "@.== Ablation A: datagram mounting vs the Section-5 transport entity ==@.";
  Format.printf "   (n = %d, K = %d, omission ~1/60 per copy)@.@." n k;
  let rows =
    [
      run_mount ~mount:Workload.Scenario.Datagram "datagram (h=1, paper)";
      run_mount
        ~mount:(Workload.Scenario.Transport (Urcgc.Medium.At_least (n / 2)))
        "transport h=n/2";
      run_mount
        ~mount:(Workload.Scenario.Transport Urcgc.Medium.All)
        "transport h=all";
    ]
  in
  print_rows rows ~extra_header:"ctl+ack msgs"
    ~extra:(fun (r : Workload.Runner.report) ->
      Stats.Table.cell_int (r.control_msgs + r.data_msgs));
  let recovery label =
    let r = List.assoc label rows in
    r.Workload.Runner.recovery_msgs
  in
  Format.printf "@.shape checks:@.";
  Format.printf
    "  h=all moves retransmission into the transport: recovery traffic \
     nearly vanishes: %b@."
    (recovery "transport h=all" * 10 < recovery "datagram (h=1, paper)");
  Format.printf
    "  h=n/2 changes little: the unacknowledged half still relies on \
     recovery from history: %b@."
    (let half = recovery "transport h=n/2" in
     let datagram = recovery "datagram (h=1, paper)" in
     half > datagram / 2 && half < datagram * 2)

let run_density () =
  Format.printf
    "@.== Ablation B: causal-label density (Definition 3.1's concurrency \
     knob) ==@.@.";
  let rows =
    [
      run_deps ~deps_mode:Workload.Load.Frontier "full frontier (densest)";
      run_deps
        ~deps_mode:(Workload.Load.Random_frontier 0.3)
        "30% of frontier";
      run_deps ~deps_mode:Workload.Load.Own_chain "own chain only (sparsest)";
    ]
  in
  print_rows rows ~extra_header:"p99 D"
    ~extra:(fun (r : Workload.Runner.report) ->
      Stats.Table.cell_float ~decimals:3 r.delay.Stats.Summary.p99);
  let p95 label =
    (List.assoc label rows).Workload.Runner.delay.Stats.Summary.p95
  in
  Format.printf "@.shape checks:@.";
  Format.printf
    "  sparser labels -> lower tail latency under loss (more concurrency \
     preserved): %b@."
    (p95 "own chain only (sparsest)" <= p95 "full frontier (densest)")

let run () =
  run_mounting ();
  run_density ()
