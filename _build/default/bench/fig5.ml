(* Figure 5: the time T (in rtd) that deciding the new group composition and
   message stability requires, against the number f of consecutive
   coordinator crashes.

   The paper's claims to reproduce:
   - urcgc needs 2K + f rtds: slope 1 in f, while messages keep flowing;
   - CBCAST needs K(5f+6) rtds of blocked processing: K-proportional slope,
     an order of magnitude worse and diverging with f.

   The urcgc side is measured by injecting f coordinator crashes in a row
   and watching for the first full-group decision that excludes all of them
   at every surviving member; the CBCAST side is measured from the crash to
   the last view installation (its simplified flush here restarts on a 2K
   timeout per takeover, so its measured slope is ~2K per coordinator crash
   against the paper's 5K — same shape, milder constant; both analytic
   curves are printed alongside). *)

let n = 15
let k = 3
let fs = [ 0; 1; 2; 3; 4; 5; 6 ]
let crash_subrun = 5

let crash_time i =
  Sim.Ticks.of_int ((crash_subrun * Sim.Ticks.per_rtd) + 1 + i)

(* f consecutive coordinators: subrun s is coordinated by node (s mod n), so
   crashing nodes crash_subrun .. crash_subrun + f - 1 right as subrun
   [crash_subrun] begins kills exactly the next f coordinators.  One more
   server crash (p14) triggers recovery work even when f = 0. *)
let urcgc_faults f =
  let coordinators =
    List.init f (fun i -> (Net.Node_id.of_int (crash_subrun + i), crash_time i))
  in
  Net.Fault.with_crashes
    ((Net.Node_id.of_int 14, crash_time 0) :: coordinators)
    Net.Fault.reliable

let measure_urcgc f =
  let config =
    (* silence_limit is raised so that f consecutive decision-less subruns
       do not make healthy processes leave during the experiment. *)
    Urcgc.Config.make ~k ~silence_limit:(max (2 * k) (2 * (f + 2))) ~n ()
  in
  let engine = Sim.Engine.create () in
  let rng = Sim.Rng.create ~seed:42 in
  let fault = Net.Fault.create (urcgc_faults f) ~rng:(Sim.Rng.split rng) in
  let net = Net.Netsim.create engine ~fault ~rng:(Sim.Rng.split rng) () in
  let cluster = Urcgc.Cluster.create ~config ~net () in
  (* Light background load so the group has messages to stabilize. *)
  let produced = ref 0 in
  Urcgc.Cluster.on_round cluster (fun ~round:_ ->
      if !produced < 200 then
        List.iter
          (fun node ->
            if Sim.Rng.bool rng 0.3 then begin
              incr produced;
              Urcgc.Cluster.submit cluster node !produced
            end)
          (Net.Node_id.group n));
  let crashed_ids = 14 :: List.init f (fun i -> crash_subrun + i) in
  let decided_at = ref None in
  Urcgc.Cluster.on_round cluster (fun ~round:_ ->
      if !decided_at = None then begin
        let now = Sim.Engine.now engine in
        if Sim.Ticks.(now >= crash_time 0) then begin
          let members =
            List.filter
              (fun m ->
                Urcgc.Member.active m
                && not
                     (List.mem
                        (Net.Node_id.to_int (Urcgc.Member.id m))
                        crashed_ids))
              (Urcgc.Cluster.members cluster)
          in
          let settled m =
            let d = Urcgc.Member.latest_decision m in
            d.Urcgc.Decision.full_group
            && List.for_all
                 (fun i -> not d.Urcgc.Decision.alive.(i))
                 crashed_ids
          in
          if members <> [] && List.for_all settled members then
            decided_at := Some now
        end
      end);
  Urcgc.Cluster.start cluster;
  Sim.Engine.run engine ~until:(Sim.Ticks.of_rtd 120.0);
  match !decided_at with
  | Some at -> Sim.Ticks.to_rtd (Sim.Ticks.diff at (crash_time 0))
  | None -> nan

(* CBCAST: p14 crashes to trigger the view change; the ranked flush
   coordinators p0, p1, ... are crashed one after the other, each shortly
   after it takes over, producing f coordinator failures during the flush. *)
let measure_cbcast f =
  let engine = Sim.Engine.create () in
  let rng = Sim.Rng.create ~seed:42 in
  let takeover_gap = 2 * k in
  let crashes =
    (Net.Node_id.of_int 14, crash_time 0)
    :: List.init f (fun i ->
           ( Net.Node_id.of_int i,
             Sim.Ticks.of_int
               (((crash_subrun + k + (i * takeover_gap)) * Sim.Ticks.per_rtd) + 1)
           ))
  in
  let fault =
    Net.Fault.create
      (Net.Fault.with_crashes crashes Net.Fault.reliable)
      ~rng:(Sim.Rng.split rng)
  in
  let cluster =
    Cbcast.Cluster.create ~n ~k ~engine ~fault ~rng:(Sim.Rng.split rng) ()
  in
  let produced = ref 0 in
  Cbcast.Cluster.on_round cluster (fun ~round:_ ->
      if !produced < 200 then
        List.iter
          (fun node ->
            if Sim.Rng.bool rng 0.3 then begin
              incr produced;
              Cbcast.Cluster.submit cluster node !produced
            end)
          (Net.Node_id.group n));
  Cbcast.Cluster.start cluster;
  Sim.Engine.run engine ~until:(Sim.Ticks.of_rtd 200.0);
  let crashed_ids = 14 :: List.init f (fun i -> i) in
  (* Completion: the view that excludes every crashed process is installed by
     all surviving actives. *)
  let installs =
    List.filter
      (fun (vc : Cbcast.Cluster.view_change) ->
        List.for_all
          (fun i -> not vc.members.(i))
          crashed_ids)
      (Cbcast.Cluster.view_changes cluster)
  in
  match installs with
  | [] -> nan
  | _ ->
      let last =
        List.fold_left
          (fun acc (vc : Cbcast.Cluster.view_change) ->
            Float.max acc (Sim.Ticks.to_rtd vc.at))
          0.0 installs
      in
      last -. Sim.Ticks.to_rtd (crash_time 0)

let run () =
  Format.printf
    "@.== Figure 5: recovery time T vs consecutive coordinator crashes f ==@.";
  Format.printf "   (n = %d, K = %d; T in rtd)@.@." n k;
  let urcgc_measured =
    Stats.Series.make ~label:"urcgc (meas)"
      (List.map (fun f -> (float_of_int f, measure_urcgc f)) fs)
  in
  let urcgc_paper =
    Stats.Series.make ~label:"urcgc 2K+f"
      (List.map
         (fun f ->
           (float_of_int f, float_of_int (Stats.Analytic.urcgc_recovery_time ~k ~f)))
         fs)
  in
  let cbcast_measured =
    Stats.Series.make ~label:"cbcast (meas)"
      (List.map (fun f -> (float_of_int f, measure_cbcast f)) fs)
  in
  let cbcast_paper =
    Stats.Series.make ~label:"cbcast K(5f+6)"
      (List.map
         (fun f ->
           ( float_of_int f,
             float_of_int (Stats.Analytic.cbcast_recovery_time ~k ~f) ))
         fs)
  in
  let series = [ urcgc_measured; urcgc_paper; cbcast_measured; cbcast_paper ] in
  Stats.Series.pp_table Format.std_formatter series;
  Format.printf "@.";
  Stats.Series.ascii_plot ~width:60 ~height:14 Format.std_formatter series;
  let at s f = Option.value ~default:nan (Stats.Series.y_at s (float_of_int f)) in
  Format.printf "@.shape checks:@.";
  Format.printf "  urcgc T grows ~1 rtd per extra coordinator crash: %b@."
    (let d = (at urcgc_measured 6 -. at urcgc_measured 0) /. 6.0 in
     d > 0.4 && d < 2.5);
  Format.printf "  cbcast T grows ~K-proportionally per crash: %b@."
    (let d = (at cbcast_measured 6 -. at cbcast_measured 0) /. 6.0 in
     d > float_of_int k);
  Format.printf "  cbcast much slower than urcgc at every f: %b@."
    (List.for_all (fun f -> at cbcast_measured f > at urcgc_measured f) fs)
