(* Figure 4: mean end-to-end delay D (in rtd) against the offered load of
   user messages, under reliable conditions, 4 crashes, and omission rates of
   1/500 and 1/100.

   The paper's claims to reproduce:
   - D >= 1/2 rtd always;
   - the reliable and crash curves coincide (urcgc copes with crashes
     without suspending normal processing);
   - omissions raise D (1/100 above 1/500), increasingly with load. *)

let n = 15
let k = 3
let messages = 300

let loads = [ 0.1; 0.25; 0.4; 0.55; 0.7; 0.85; 1.0 ]

type condition = { label : string; fault : Net.Fault.spec }

let conditions =
  let crash4 =
    (* Four server crashes spread over the run (none is a coordinator at its
       crash subrun, matching "the crash of a server process"). *)
    Net.Fault.with_crashes
      (List.map
         (fun (i, subrun) ->
           ( Net.Node_id.of_int i,
             Sim.Ticks.of_int ((subrun * Sim.Ticks.per_rtd) + 1) ))
         [ (9, 3); (11, 5); (12, 7); (14, 9) ])
      Net.Fault.reliable
  in
  [
    { label = "reliable"; fault = Net.Fault.reliable };
    { label = "4 crashes"; fault = crash4 };
    { label = "omission 1/500"; fault = Net.Fault.omission_every 500 };
    { label = "omission 1/100"; fault = Net.Fault.omission_every 100 };
  ]

let seeds = [ 42; 43; 44 ]

let measure condition load =
  let one seed =
    let config = Urcgc.Config.make ~k ~n () in
    let load_model =
      Workload.Load.make ~rate:load ~total_messages:messages ()
    in
    let scenario =
      Workload.Scenario.make
        ~name:(Printf.sprintf "fig4-%s-%.2f" condition.label load)
        ~fault:condition.fault ~seed ~max_rtd:400.0 ~config ~load:load_model ()
    in
    let report = Workload.Runner.run scenario in
    if not (Workload.Checker.ok report.Workload.Runner.verdict) then
      Format.printf "  !! invariant violation under %s load %.2f (seed %d)@."
        condition.label load seed;
    Workload.Runner.mean_delay_rtd report
  in
  List.fold_left (fun acc seed -> acc +. one seed) 0.0 seeds
  /. float_of_int (List.length seeds)

let run () =
  Format.printf "@.== Figure 4: mean end-to-end delay D vs offered load ==@.";
  Format.printf
    "   (n = %d, K = %d, %d messages per run, mean over 3 seeds;@." n k
    messages;
  Format.printf "    load = per-process submission@.";
  Format.printf "    probability per round; D in rtd units)@.@.";
  let series =
    List.map
      (fun condition ->
        let points =
          List.map (fun load -> (load, measure condition load)) loads
        in
        Stats.Series.make ~label:condition.label points)
      conditions
  in
  Stats.Series.pp_table Format.std_formatter series;
  Format.printf "@.";
  Stats.Series.ascii_plot ~width:60 ~height:14 Format.std_formatter series;
  (* Shape assertions the paper's figure makes. *)
  let reliable = List.nth series 0
  and crash = List.nth series 1
  and om500 = List.nth series 2
  and om100 = List.nth series 3 in
  let close a b = Float.abs (a -. b) < 0.05 in
  let at s load = Option.value ~default:nan (Stats.Series.y_at s load) in
  let all_loads p = List.for_all p loads in
  Format.printf "@.shape checks:@.";
  Format.printf "  D >= 1/2 rtd - epsilon everywhere: %b@."
    (List.for_all
       (fun s -> List.for_all (fun (_, y) -> y >= 0.42) s.Stats.Series.points)
       series);
  Format.printf "  reliable and crash curves coincide: %b@."
    (all_loads (fun l -> close (at reliable l) (at crash l)));
  Format.printf "  omission 1/100 above 1/500 above reliable (at high load): %b@."
    (at om100 1.0 > at om500 1.0 && at om500 1.0 > at reliable 1.0)
