(* The round-synchrony assumption, probed.

   The paper assumes the subrun is "as long as the round trip delay": a
   request sent at a round boundary reaches the coordinator before it
   computes, and the decision reaches everyone before the next subrun.  That
   holds while the one-way latency stays below half an rtd.  This sweep
   stretches the one-way latency across that boundary.

   What it shows: once requests arrive after the coordinator computes, every
   subrun looks like a mass omission — far beyond the resilience budget
   t = (n-1)/2 the algorithm's correctness rests on.  Mutual crash
   declarations follow and the group fragments into mutually exclusive
   views (split-brain).  That is the measured reason for the paper's sizing
   rule, "assuming the subrun as long as the round trip delay": the protocol
   has no quorum rule protecting group membership, so its failure budget
   must genuinely hold. *)

let n = 10
let k = 3
let messages = 120

let run_at ~base_ticks ~seed =
  let config = Urcgc.Config.make ~k ~silence_limit:(4 * k) ~n () in
  let load = Workload.Load.make ~rate:0.4 ~total_messages:messages () in
  let latency = { Net.Netsim.base = Sim.Ticks.of_int base_ticks; jitter = 10 } in
  let scenario =
    Workload.Scenario.make
      ~name:(Printf.sprintf "timing-%d" base_ticks)
      ~latency ~seed ~max_rtd:300.0 ~config ~load ()
  in
  Workload.Runner.run scenario

let run () =
  Format.printf
    "@.== Timing sweep: one-way latency vs the rtd/2 round boundary ==@.";
  Format.printf
    "   (n = %d, K = %d; a round is %d ticks; requests sent at round start)@.@."
    n k (Sim.Ticks.to_int Sim.Ticks.round);
  let table =
    Stats.Table.create
      ~columns:
        [
          ("one-way (ticks)", Stats.Table.Right);
          ("vs round", Stats.Table.Left);
          ("mean D (rtd)", Stats.Table.Right);
          ("history peak", Stats.Table.Right);
          ("group fragments", Stats.Table.Right);
          ("invariants", Stats.Table.Left);
        ]
  in
  let sweep = [ 25; 40; 48; 60; 80; 110 ] in
  let results =
    List.map
      (fun base_ticks ->
        let runs = List.map (fun seed -> run_at ~base_ticks ~seed) [ 42; 43 ] in
        let mean f =
          List.fold_left (fun acc r -> acc +. f r) 0.0 runs /. 2.0
        in
        let delay = mean Workload.Runner.mean_delay_rtd in
        let peak = mean (fun r -> float_of_int r.Workload.Runner.history_peak) in
        let fragments =
          mean (fun r -> float_of_int r.Workload.Runner.fragments)
        in
        let safe =
          List.for_all
            (fun r -> Workload.Checker.ok r.Workload.Runner.verdict)
            runs
        in
        let regime =
          if base_ticks + 10 <= (Sim.Ticks.to_int Sim.Ticks.round) then "within"
          else if base_ticks < Sim.Ticks.per_rtd then "late requests"
          else "beyond the rtd"
        in
        Stats.Table.add_row table
          [
            Stats.Table.cell_int base_ticks;
            regime;
            Stats.Table.cell_float ~decimals:3 delay;
            Stats.Table.cell_float ~decimals:0 peak;
            Stats.Table.cell_float ~decimals:1 fragments;
            (if safe then "ok" else "VIOLATED");
          ];
        (base_ticks, peak, fragments, safe))
      sweep
  in
  Stats.Table.pp Format.std_formatter table;
  Format.printf "@.shape checks:@.";
  let at t =
    match List.find_opt (fun (t', _, _, _) -> t' = t) results with
    | Some (_, p, f, _) -> (p, f)
    | None -> (nan, nan)
  in
  Format.printf
    "  within the round budget: one view, everything healthy: %b@."
    (List.for_all
       (fun (t, _, fragments, safe) -> t > 40 || (safe && fragments = 1.0))
       results);
  Format.printf
    "  past the boundary the group fragments (split-brain): %b@."
    (snd (at 60) > 1.0 && snd (at 110) > 1.0);
  Format.printf
    "  and history sits longer as coverage stalls: %b@."
    (fst (at 60) > fst (at 40))
