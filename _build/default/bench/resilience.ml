(* The resilience degree (Section 4): "If t = (n-1)/2 is the highest number
   of allowed failures (for both the network and the processes) per subrun
   then the current coordinator is guaranteed to receive at least one copy
   of the previous decision."

   We subject the group to an adversarial burst pattern: every subrun a
   fresh random set of s processes loses all its outgoing packets.  What
   this measures:

   - at small s the protocol absorbs the bursts as ordinary omissions:
     everything is delivered, all invariants hold, only the delay grows;
   - membership accuracy is guarded by K, not by t: one healthy process
     silenced K subruns in a row is *falsely* declared crashed, an event
     whose probability grows as (s/n)^K per window — so false declarations
     appear well inside the t budget once s is a sizable fraction of n;
   - and false declarations are exactly where the orphan purge's premise
     ("every holder of the message crashed") can be wrong: a falsely
     expelled process is alive, its messages may have been processed
     somewhere, and group-wide discards can then disagree with what
     individual survivors already processed.  The sweep shows invariant
     violations appearing only together with false declarations — the
     algorithm's failure envelope, not present in the paper's evaluated
     scenarios (real crashes and rare random omissions). *)

let n = 15
let k = 3
let messages = 150

let run_at ~silenced ~seed =
  let config = Urcgc.Config.make ~k ~silence_limit:(4 * k) ~n () in
  let load = Workload.Load.make ~rate:0.4 ~total_messages:messages () in
  let fault =
    if silenced = 0 then Net.Fault.reliable
    else Net.Fault.with_subrun_silence ~count:silenced ~population:n Net.Fault.reliable
  in
  let scenario =
    Workload.Scenario.make
      ~name:(Printf.sprintf "resilience-%d" silenced)
      ~fault ~seed ~max_rtd:150.0 ~config ~load ()
  in
  Workload.Runner.run scenario

let run () =
  let t = Urcgc.Config.resilience (Urcgc.Config.make ~k ~n ()) in
  Format.printf
    "@.== Resilience sweep: s processes silenced per subrun (t = (n-1)/2 = \
     %d) ==@."
    t;
  Format.printf "   (n = %d, K = %d, %d messages, mean of 3 seeds)@.@." n k
    messages;
  let table =
    Stats.Table.create
      ~columns:
        [
          ("silenced/subrun", Stats.Table.Right);
          ("false expulsions", Stats.Table.Right);
          ("discarded msgs", Stats.Table.Right);
          ("mean D (rtd)", Stats.Table.Right);
          ("delivered", Stats.Table.Right);
          ("safety", Stats.Table.Left);
        ]
  in
  let sweep = [ 0; 2; 4; 7; 9; 11 ] in
  let results =
    List.map
      (fun silenced ->
        let runs = List.map (fun seed -> run_at ~silenced ~seed) [ 42; 43; 44 ] in
        let mean f =
          List.fold_left (fun acc r -> acc +. f r) 0.0 runs /. 3.0
        in
        (* Nobody fail-stops in this sweep, so every departure is a healthy
           process expelled (suicide after being declared crashed, silence,
           or exhausted recovery) — the membership-accuracy cost. *)
        let departures = mean (fun r -> float_of_int (List.length r.Workload.Runner.departures)) in
        let discarded = mean (fun r -> float_of_int r.Workload.Runner.discarded) in
        let delay = mean Workload.Runner.mean_delay_rtd in
        let delivered = mean (fun r -> float_of_int r.Workload.Runner.delivered_remote) in
        let unsafe_seeds =
          List.length
            (List.filter
               (fun r -> not (Workload.Checker.ok r.Workload.Runner.verdict))
               runs)
        in
        Stats.Table.add_row table
          [
            Stats.Table.cell_int silenced;
            Stats.Table.cell_float ~decimals:1 departures;
            Stats.Table.cell_float ~decimals:1 discarded;
            Stats.Table.cell_float ~decimals:3 delay;
            Stats.Table.cell_float ~decimals:0 delivered;
            Printf.sprintf "%d/3 unsafe" unsafe_seeds;
          ];
        (silenced, departures, unsafe_seeds))
      sweep
  in
  Stats.Table.pp Format.std_formatter table;
  Format.printf "@.shape checks:@.";
  Format.printf
    "  small bursts (s <= 2) absorbed: no expulsions beyond noise, all      invariants hold: %b@."
    (List.for_all
       (fun (s, d, unsafe) -> s > 2 || (unsafe = 0 && d <= 1.0))
       results);
  Format.printf
    "  invariant violations appear only together with false declarations: %b@."
    (List.for_all (fun (_, d, unsafe) -> unsafe = 0 || d > 0.0) results);
  Format.printf
    "  degradation grows with the burst size (expulsions at s=11 > s=4): %b@."
    (let at s =
       match List.find_opt (fun (s', _, _) -> s' = s) results with
       | Some (_, d, _) -> d
       | None -> nan
     in
     at 11 > at 4)
