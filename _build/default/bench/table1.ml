(* Table 1: amount of generated control messages and their size in bytes,
   urcgc vs CBCAST, under reliable and crash conditions.

   The paper's claims to reproduce:
   - reliable: urcgc always pays its agreement (2(n-1) control messages per
     subrun) where CBCAST gets away with n+1 small piggyback/stability
     messages — CBCAST is cheaper when nothing fails;
   - crash: urcgc's message size stays constant (the same request/decision
     PDUs keep flowing) while CBCAST's flush messages grow with the unstable
     backlog; urcgc's count formula is 2(2K+f)(n-1) over the recovery
     window vs CBCAST's K((f+1)(2n-3)+1);
   - a urcgc control message for n = 15 fits a 576-byte IP datagram. *)

let n = 15
let k = 3
let messages = 200

let run_urcgc ~fault =
  let config = Urcgc.Config.make ~k ~n () in
  let load = Workload.Load.make ~rate:0.5 ~total_messages:messages () in
  let scenario =
    Workload.Scenario.make ~name:"table1-urcgc" ~fault ~seed:42 ~max_rtd:300.0
      ~config ~load ()
  in
  Workload.Runner.run scenario

let run_cbcast ~fault =
  let load = Workload.Load.make ~rate:0.5 ~total_messages:messages () in
  Workload.Runner_cbcast.run ~n ~k ~load ~fault ~seed:42 ~max_rtd:300.0 ()

let crash_fault =
  Net.Fault.with_crashes
    [ (Net.Node_id.of_int 9, Sim.Ticks.of_int ((4 * Sim.Ticks.per_rtd) + 1)) ]
    Net.Fault.reliable

let run () =
  Format.printf
    "@.== Table 1: control messages and sizes, urcgc vs CBCAST ==@.";
  Format.printf "   (n = %d, K = %d, f = 0, %d data messages per run)@.@." n k
    messages;
  let u_rel = run_urcgc ~fault:Net.Fault.reliable in
  let u_crash = run_urcgc ~fault:crash_fault in
  let c_rel = run_cbcast ~fault:Net.Fault.reliable in
  let c_crash = run_cbcast ~fault:crash_fault in
  let table =
    Stats.Table.create
      ~columns:
        [
          ("protocol / condition", Stats.Table.Left);
          ("ctl msgs/subrun (meas)", Stats.Table.Right);
          ("msgs (paper)", Stats.Table.Left);
          ("mean size B (meas)", Stats.Table.Right);
          ("max size B (meas)", Stats.Table.Right);
          ("size (paper)", Stats.Table.Left);
        ]
  in
  let urcgc_row label (r : Workload.Runner.report) paper_msgs paper_size =
    Stats.Table.add_row table
      [
        label;
        Stats.Table.cell_float (Workload.Runner.control_msgs_per_subrun r);
        paper_msgs;
        Stats.Table.cell_float ~decimals:0 r.Workload.Runner.control_mean_size;
        Stats.Table.cell_int r.Workload.Runner.control_max_size;
        paper_size;
      ]
  in
  let cbcast_row label (r : Workload.Runner_cbcast.report) paper_msgs paper_size
      =
    Stats.Table.add_row table
      [
        label;
        Stats.Table.cell_float
          (if r.Workload.Runner_cbcast.subruns = 0 then 0.0
           else
             float_of_int r.Workload.Runner_cbcast.control_msgs
             /. float_of_int r.Workload.Runner_cbcast.subruns);
        paper_msgs;
        Stats.Table.cell_float ~decimals:0
          r.Workload.Runner_cbcast.control_mean_size;
        Stats.Table.cell_int r.Workload.Runner_cbcast.control_max_size;
        paper_size;
      ]
  in
  urcgc_row "urcgc / reliable" u_rel
    (Printf.sprintf "2(n-1) = %d"
       (Stats.Analytic.urcgc_control_msgs_reliable ~n))
    "~n x 36 (const)";
  cbcast_row "cbcast / reliable" c_rel
    (Printf.sprintf "n+1 = %d" (Stats.Analytic.cbcast_control_msgs_reliable ~n))
    (Printf.sprintf "4(n+1) = %d" (Stats.Analytic.cbcast_msg_size_reliable ~n));
  Stats.Table.add_rule table;
  urcgc_row "urcgc / 1 crash" u_crash
    (Printf.sprintf "2(2K+f)(n-1) = %d over episode"
       (Stats.Analytic.urcgc_control_msgs_crash ~n ~k ~f:0))
    "unchanged";
  cbcast_row "cbcast / 1 crash" c_crash
    (Printf.sprintf "K((f+1)(2n-3)+1) = %d"
       (Stats.Analytic.cbcast_control_msgs_crash ~n ~k ~f:0))
    (Printf.sprintf "grows; flush hdr 4(n-1) = %d + data"
       (Stats.Analytic.cbcast_flush_size ~n));
  Stats.Table.pp Format.std_formatter table;
  Format.printf "@.shape checks:@.";
  Format.printf "  urcgc message size unchanged by the crash: %b@."
    (abs (u_crash.Workload.Runner.control_max_size
          - u_rel.Workload.Runner.control_max_size)
     <= 8);
  Format.printf "  cbcast flush messages grow well past its reliable size: %b@."
    (c_crash.Workload.Runner_cbcast.control_max_size
    > 4 * c_rel.Workload.Runner_cbcast.control_max_size);
  Format.printf "  urcgc control PDU fits a %dB IP datagram at n=%d: %b@."
    Stats.Analytic.ip_min_datagram n
    (u_rel.Workload.Runner.control_max_size <= Stats.Analytic.ip_min_datagram);
  Format.printf
    "  cbcast cheaper than urcgc per subrun when reliable (their win): %b@."
    (float_of_int c_rel.Workload.Runner_cbcast.control_msgs
     /. float_of_int (max 1 c_rel.Workload.Runner_cbcast.subruns)
    < Workload.Runner.control_msgs_per_subrun u_rel
    || Stats.Analytic.cbcast_control_msgs_reliable ~n
       < Stats.Analytic.urcgc_control_msgs_reliable ~n)
