(* Group-size scaling of the control plane.

   Section 6's sizing argument, extended into a sweep: "a message that urcgc
   generates for a group of 15 processes fits into a single IP datagram
   packet, by considering its minimum size of 576 bytes.  Processes in the
   group become 40 if the maximum allowed data field of an Ethernet packet
   is considered."  Control PDUs carry per-process vectors, so their size is
   Theta(n) and the per-subrun control load is Theta(n^2) bytes; the sweep
   measures both and marks where the PDUs outgrow the two datagram budgets
   the paper names. *)

let k = 3
let messages = 120

let run_at ~n =
  let config = Urcgc.Config.make ~k ~n () in
  let load = Workload.Load.make ~rate:0.3 ~total_messages:messages () in
  let scenario =
    Workload.Scenario.make
      ~name:(Printf.sprintf "scale-%d" n)
      ~seed:42 ~max_rtd:200.0 ~config ~load ()
  in
  Workload.Runner.run scenario

let run () =
  Format.printf "@.== Scale sweep: control-plane cost vs group size ==@.";
  Format.printf "   (K = %d, %d messages, reliable network)@.@." k messages;
  let table =
    Stats.Table.create
      ~columns:
        [
          ("n", Stats.Table.Right);
          ("ctl msgs/subrun", Stats.Table.Right);
          ("max ctl PDU (B)", Stats.Table.Right);
          ("ctl bytes/subrun", Stats.Table.Right);
          ("fits 576B IP", Stats.Table.Left);
          ("fits 1500B Ether", Stats.Table.Left);
          ("mean D (rtd)", Stats.Table.Right);
        ]
  in
  let sweep = [ 5; 10; 15; 25; 40; 60 ] in
  let results =
    List.map
      (fun n ->
        let r = run_at ~n in
        if not (Workload.Checker.ok r.Workload.Runner.verdict) then
          Format.printf "  !! invariant violation at n=%d@." n;
        let per_subrun = Workload.Runner.control_msgs_per_subrun r in
        let bytes_per_subrun =
          if r.Workload.Runner.subruns = 0 then 0.0
          else
            float_of_int r.Workload.Runner.control_bytes
            /. float_of_int r.Workload.Runner.subruns
        in
        let max_pdu = r.Workload.Runner.control_max_size in
        Stats.Table.add_row table
          [
            Stats.Table.cell_int n;
            Stats.Table.cell_float ~decimals:1 per_subrun;
            Stats.Table.cell_int max_pdu;
            Stats.Table.cell_float ~decimals:0 bytes_per_subrun;
            (if max_pdu <= Stats.Analytic.ip_min_datagram then "yes" else "no");
            (if max_pdu <= Stats.Analytic.ethernet_max_payload then "yes"
             else "NO");
            Stats.Table.cell_float ~decimals:3
              (Workload.Runner.mean_delay_rtd r);
          ];
        (n, per_subrun, max_pdu, bytes_per_subrun))
      sweep
  in
  Stats.Table.pp Format.std_formatter table;
  Format.printf "@.shape checks:@.";
  let at n =
    match List.find_opt (fun (n', _, _, _) -> n' = n) results with
    | Some (_, msgs, pdu, bytes) -> (msgs, pdu, bytes)
    | None -> (nan, 0, nan)
  in
  let pdu_at n = let _, p, _ = at n in p in
  let bytes_at n = let _, _, b = at n in b in
  Format.printf "  message count tracks 2(n-1): %b@."
    (List.for_all
       (fun (n, msgs, _, _) ->
         Float.abs (msgs -. float_of_int (2 * (n - 1)))
         /. float_of_int (2 * (n - 1))
         < 0.25)
       results);
  Format.printf "  PDU size grows linearly (n=40 about 2.6x n=15): %b@."
    (let ratio = float_of_int (pdu_at 40) /. float_of_int (pdu_at 15) in
     ratio > 2.2 && ratio < 3.2);
  Format.printf "  bytes/subrun superlinear (n^2-ish): %b@."
    (bytes_at 40 /. bytes_at 10 > 10.0);
  Format.printf "  the paper's datagram landmarks hold (n=15 in 576B, n=40 \
                 in 1500B): %b@."
    (pdu_at 15 <= Stats.Analytic.ip_min_datagram
    && pdu_at 40 <= Stats.Analytic.ethernet_max_payload);
  Format.printf
    "  (beyond n=40, Section 5's transport fragmentation applies — see the \
     net.fragmentation tests)@."

