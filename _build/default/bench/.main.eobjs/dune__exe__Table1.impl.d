bench/table1.ml: Format Net Printf Sim Stats Urcgc Workload
