bench/micro.ml: Analyze Array Bechamel Benchmark Causal Cbcast Format Hashtbl Instance List Measure Net Sim Staged Test Time Toolkit Urcgc
