bench/service.ml: Float Format List Net Sim Stats Urcgc
