bench/timing.ml: Format List Net Printf Sim Stats Urcgc Workload
