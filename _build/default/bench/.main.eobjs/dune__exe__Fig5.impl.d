bench/fig5.ml: Array Cbcast Float Format List Net Option Sim Stats Urcgc
