bench/ablation.ml: Format List Net Stats Urcgc Workload
