bench/fig6.ml: Format List Net Printf Sim Stats Urcgc Workload
