bench/ordering.ml: Float Format Hashtbl List Net Sim Stats Urcgc Urgc Workload
