bench/scale.ml: Float Format List Printf Stats Urcgc Workload
