bench/main.mli:
