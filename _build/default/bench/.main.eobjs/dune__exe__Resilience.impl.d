bench/resilience.ml: Format List Net Printf Stats Urcgc Workload
