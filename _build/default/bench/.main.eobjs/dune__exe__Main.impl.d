bench/main.ml: Ablation Array Fig4 Fig5 Fig6 Format List Micro Ordering Resilience Scale Service Sys Table1 Timing
