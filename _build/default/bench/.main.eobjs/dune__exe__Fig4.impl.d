bench/fig4.ml: Float Format List Net Option Printf Sim Stats Urcgc Workload
