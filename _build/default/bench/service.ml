(* The service rate (Section 5): "In absence of failures, the urcgc service
   guarantees to process one message a round.  This produces the maximum
   attainable service rate."

   The sweep offers each process a fixed number of submissions per round —
   below, at, and beyond that ceiling — and measures the achieved rate and
   the SAP backlog: throughput must clamp at exactly one message per process
   per round, with the excess queueing at the service access point. *)

let n = 8
let k = 3
let rounds = 40

let run_at ~per_round =
  let engine = Sim.Engine.create () in
  let rng = Sim.Rng.create ~seed:42 in
  let fault = Net.Fault.create Net.Fault.reliable ~rng:(Sim.Rng.split rng) in
  let net = Net.Netsim.create engine ~fault ~rng:(Sim.Rng.split rng) () in
  let config = Urcgc.Config.make ~k ~n () in
  let cluster = Urcgc.Cluster.create ~config ~net () in
  let submitted = ref 0 in
  Urcgc.Cluster.on_round cluster (fun ~round ->
      if round < rounds then
        List.iter
          (fun node ->
            for _ = 1 to per_round do
              incr submitted;
              Urcgc.Cluster.submit cluster node !submitted
            done)
          (Net.Node_id.group n));
  Urcgc.Cluster.start cluster;
  Sim.Engine.run engine ~until:(Sim.Ticks.of_rtd (float_of_int rounds /. 2.0));
  let generated = List.length (Urcgc.Cluster.generations cluster) in
  let backlog =
    List.fold_left
      (fun acc member -> acc + Urcgc.Member.sap_backlog member)
      0
      (Urcgc.Cluster.members cluster)
  in
  let per_process_per_round =
    float_of_int generated /. float_of_int n /. float_of_int rounds
  in
  (per_process_per_round, backlog, !submitted)

let run () =
  Format.printf
    "@.== Service-rate ceiling: one message per process per round ==@.";
  Format.printf "   (n = %d, %d rounds of submissions, reliable network)@.@." n
    rounds;
  let table =
    Stats.Table.create
      ~columns:
        [
          ("offered/round", Stats.Table.Right);
          ("achieved/round", Stats.Table.Right);
          ("SAP backlog at end", Stats.Table.Right);
          ("submitted", Stats.Table.Right);
        ]
  in
  let results =
    List.map
      (fun per_round ->
        let achieved, backlog, submitted = run_at ~per_round in
        Stats.Table.add_row table
          [
            Stats.Table.cell_int per_round;
            Stats.Table.cell_float ~decimals:3 achieved;
            Stats.Table.cell_int backlog;
            Stats.Table.cell_int submitted;
          ];
        (per_round, achieved, backlog))
      [ 1; 2; 3 ]
  in
  Stats.Table.pp Format.std_formatter table;
  Format.printf "@.shape checks:@.";
  let achieved_at p =
    match List.find_opt (fun (p', _, _) -> p' = p) results with
    | Some (_, a, _) -> a
    | None -> nan
  in
  let backlog_at p =
    match List.find_opt (fun (p', _, _) -> p' = p) results with
    | Some (_, _, b) -> b
    | None -> 0
  in
  Format.printf "  at offered = 1 the service keeps up (~1.0 achieved): %b@."
    (Float.abs (achieved_at 1 -. 1.0) < 0.05);
  Format.printf
    "  beyond the ceiling throughput clamps at ~1.0 per round: %b@."
    (Float.abs (achieved_at 2 -. 1.0) < 0.05
    && Float.abs (achieved_at 3 -. 1.0) < 0.05);
  Format.printf "  the excess queues at the SAP (backlog grows with load): %b@."
    (backlog_at 3 > backlog_at 2 && backlog_at 2 > backlog_at 1)
