(* Section 2, quantified: the service-time gap between total ordering (the
   authors' urgc, [APR93]) and causal ordering (urcgc, this paper).

   "Some applications need a multicast service that ensures a total ordering
   [...] and the order values are autonomously defined by the service
   provider.  Other applications need to specify their own ordering
   according to application dependent causal relations."  The price of the
   autonomous total order is an extra sequencing round: a message cannot be
   processed — not even by its sender — before a coordinator decision binds
   it to a global sequence number.  The causal service processes at
   reception. *)

let n = 15
let k = 3
let messages = 200

let loads = [ 0.2; 0.5; 1.0 ]

let measure_urcgc ~rate =
  let config = Urcgc.Config.make ~k ~n () in
  let load = Workload.Load.make ~rate ~total_messages:messages () in
  let scenario =
    Workload.Scenario.make ~name:"ordering-urcgc" ~seed:42 ~max_rtd:200.0
      ~config ~load ()
  in
  let r = Workload.Runner.run scenario in
  (Workload.Runner.mean_delay_rtd r, r.Workload.Runner.completion_rtd)

let measure_urgc ~rate =
  let engine = Sim.Engine.create () in
  let rng = Sim.Rng.create ~seed:42 in
  let fault = Net.Fault.create Net.Fault.reliable ~rng:(Sim.Rng.split rng) in
  let net = Net.Netsim.create engine ~fault ~rng:(Sim.Rng.split rng) () in
  let cluster = Urgc.Cluster.create ~n ~k ~net () in
  let produced = ref 0 in
  Urgc.Cluster.on_round cluster (fun ~round:_ ->
      List.iter
        (fun node ->
          if !produced < messages && Sim.Rng.bool rng rate then begin
            incr produced;
            Urgc.Cluster.submit cluster node !produced
          end)
        (Net.Node_id.group n));
  Urgc.Cluster.start cluster;
  let rtd = Sim.Ticks.of_int Sim.Ticks.per_rtd in
  let rec advance () =
    let now = Sim.Engine.now engine in
    if Sim.Ticks.to_rtd now >= 200.0 then ()
    else begin
      Sim.Engine.run engine ~until:(Sim.Ticks.add now rtd);
      if !produced >= messages && Urgc.Cluster.quiescent cluster then ()
      else advance ()
    end
  in
  advance ();
  if not (Urgc.Cluster.total_order_ok cluster) then
    Format.printf "  !! total-order violation at rate %.2f@." rate;
  let sent_at = Hashtbl.create 256 in
  List.iter
    (fun (mid, at) -> Hashtbl.replace sent_at mid at)
    (Urgc.Cluster.generations cluster);
  let delays = ref [] and completion = ref 0.0 in
  List.iter
    (fun { Urgc.Cluster.data; at; _ } ->
      completion := Float.max !completion (Sim.Ticks.to_rtd at);
      match Hashtbl.find_opt sent_at data.Urgc.Total_wire.mid with
      | Some t0 -> delays := Sim.Ticks.to_rtd (Sim.Ticks.diff at t0) :: !delays
      | None -> ())
    (Urgc.Cluster.deliveries cluster);
  let mean =
    match !delays with
    | [] -> 0.0
    | ds -> List.fold_left ( +. ) 0.0 ds /. float_of_int (List.length ds)
  in
  (mean, !completion)

let run () =
  Format.printf
    "@.== Ordering comparison: total (urgc) vs causal (urcgc) service ==@.";
  Format.printf "   (n = %d, K = %d, %d messages; D in rtd)@.@." n k messages;
  let table =
    Stats.Table.create
      ~columns:
        [
          ("load", Stats.Table.Right);
          ("urcgc mean D", Stats.Table.Right);
          ("urgc mean D", Stats.Table.Right);
          ("ratio", Stats.Table.Right);
          ("urcgc done", Stats.Table.Right);
          ("urgc done", Stats.Table.Right);
        ]
  in
  let ratios =
    List.map
      (fun rate ->
        let causal_d, causal_done = measure_urcgc ~rate in
        let total_d, total_done = measure_urgc ~rate in
        let ratio = total_d /. causal_d in
        Stats.Table.add_row table
          [
            Stats.Table.cell_float ~decimals:1 rate;
            Stats.Table.cell_float ~decimals:3 causal_d;
            Stats.Table.cell_float ~decimals:3 total_d;
            Stats.Table.cell_float ~decimals:2 ratio;
            Stats.Table.cell_float ~decimals:1 causal_done;
            Stats.Table.cell_float ~decimals:1 total_done;
          ];
        ratio)
      loads
  in
  Stats.Table.pp Format.std_formatter table;
  Format.printf "@.shape checks:@.";
  Format.printf
    "  total order costs >= ~2x the causal service time at every load: %b@."
    (List.for_all (fun ratio -> ratio > 1.8) ratios)
