(* Replicated log through the SAP primitives (Section 5's service interface).

   Run with:  dune exec examples/replicated_log.exe

   Each of four replicas appends entries to a shared log through
   urcgc.data.Rq and applies entries on urcgc.data.Ind.  Because indications
   respect causal order and urcgc is uniformly atomic, replicas that apply
   entries as they are indicated converge even while the network drops a
   packet copy every ~70 on average — without any extra coordination in the
   application. *)

let n = 4

type entry = { author : int; text : string }

let () =
  let engine = Sim.Engine.create () in
  let rng = Sim.Rng.create ~seed:99 in
  let fault =
    Net.Fault.create (Net.Fault.omission_every 70) ~rng:(Sim.Rng.split rng)
  in
  let net = Net.Netsim.create engine ~fault ~rng:(Sim.Rng.split rng) () in
  let config = Urcgc.Config.make ~n () in
  let cluster = Urcgc.Cluster.create ~config ~net () in

  (* One SAP and one log per replica; entries are applied on indication. *)
  let logs = Array.make n [] in
  let saps =
    List.map
      (fun node ->
        let sap = Urcgc.Sap.attach cluster node in
        Urcgc.Sap.on_data_ind sap (fun ~mid:_ ~deps:_ entry ->
            let i = Net.Node_id.to_int (Urcgc.Sap.id sap) in
            logs.(i) <- entry :: logs.(i));
        sap)
      (Net.Node_id.group n)
  in

  (* Each replica appends a few entries; replica 3's last entry reacts to
     what it has applied (its frontier is the causal label). *)
  let confirmed = ref 0 in
  let submit author text =
    Urcgc.Sap.data_rq
      (List.nth saps author)
      { author; text }
      ~on_conf:(fun _ -> incr confirmed)
  in
  Urcgc.Cluster.on_round cluster (fun ~round ->
      match round with
      | 0 ->
          submit 0 "open account #17";
          submit 1 "set limit 500"
      | 2 -> submit 2 "deposit 100"
      | 4 ->
          submit 0 "withdraw 30";
          submit 3 "audit: balance check"
      | _ -> ());
  Urcgc.Cluster.start cluster;
  Sim.Engine.run engine ~until:(Sim.Ticks.of_rtd 12.0);

  Format.printf "== replica logs (in application order) ==@.";
  Array.iteri
    (fun i log ->
      Format.printf "replica %d:@." i;
      List.iter
        (fun { author; text } -> Format.printf "   [r%d] %s@." author text)
        (List.rev log))
    logs;
  Format.printf "@.confirms received: %d of 5@." !confirmed;
  let canonical = List.rev logs.(0) in
  let converged =
    Array.for_all
      (fun log ->
        (* Same multiset of entries; causal prefixes agree, concurrent
           entries may interleave differently. *)
        List.sort compare (List.rev log) = List.sort compare canonical)
      logs
  in
  Format.printf "all replicas hold the same entry set: %b@." converged
