(* Whiteboard: a shared multimedia space (the application class Section 1
   motivates — "multimedia spaces for collaborative work and conferencing").

   Run with:  dune exec examples/whiteboard.exe

   Two artists draw concurrent stroke sequences; a moderator periodically
   annotates what it has seen.  Under the intermediate interpretation of
   causality (Definition 3.1), each artist's strokes form one sequence that
   everyone processes in order, the two artists' sequences stay concurrent
   (sites may interleave them differently), and moderator annotations are
   processed after every stroke they causally cite — even though the network
   loses a packet every ~80 on average. *)

let n = 6
let artist_a = Net.Node_id.of_int 1
let artist_b = Net.Node_id.of_int 2
let moderator = Net.Node_id.of_int 0

type event = Stroke of string | Note of string

let pp_event ppf = function
  | Stroke s -> Format.fprintf ppf "stroke %s" s
  | Note s -> Format.fprintf ppf "NOTE: %s" s

let () =
  let engine = Sim.Engine.create () in
  let rng = Sim.Rng.create ~seed:33 in
  let fault =
    Net.Fault.create (Net.Fault.omission_every 80) ~rng:(Sim.Rng.split rng)
  in
  let net = Net.Netsim.create engine ~fault ~rng:(Sim.Rng.split rng) () in
  let config = Urcgc.Config.make ~n () in
  let cluster = Urcgc.Cluster.create ~config ~net () in

  (* Drive the session: artists submit strokes with no cross dependencies
     (their own chain is implicit), the moderator annotates with its full
     frontier every few rounds. *)
  let strokes = [| "~~~"; "o"; "///"; "[]"; "-->"; "***" |] in
  let stroke_count = ref 0 in
  Urcgc.Cluster.on_round cluster (fun ~round ->
      if round < 24 then begin
        if round mod 2 = 0 then begin
          incr stroke_count;
          Urcgc.Cluster.submit ~deps:[] cluster artist_a
            (Stroke (Printf.sprintf "A%d%s" !stroke_count strokes.(round mod 6)))
        end;
        if round mod 3 = 0 then begin
          incr stroke_count;
          Urcgc.Cluster.submit ~deps:[] cluster artist_b
            (Stroke (Printf.sprintf "B%d%s" !stroke_count strokes.(round mod 6)))
        end;
        if round mod 8 = 7 then
          Urcgc.Cluster.submit cluster moderator
            (Note (Printf.sprintf "board state approved at round %d" round))
      end);
  Urcgc.Cluster.start cluster;
  Sim.Engine.run engine ~until:(Sim.Ticks.of_rtd 30.0);

  (* Show two sites' views: same per-artist order, possibly different
     interleaving, annotations always after the strokes they cite. *)
  let view_of site =
    List.filter_map
      (fun { Urcgc.Cluster.node; msg; _ } ->
        if Net.Node_id.equal node site then
          Some (msg.Causal.Causal_msg.mid, msg.payload)
        else None)
      (Urcgc.Cluster.deliveries cluster)
  in
  let show site =
    Format.printf "@.-- site %a sees --@." Net.Node_id.pp site;
    List.iter
      (fun (mid, event) ->
        Format.printf "  %a %a@." Causal.Mid.pp mid pp_event event)
      (view_of site)
  in
  show (Net.Node_id.of_int 3);
  show (Net.Node_id.of_int 4);

  (* Concurrency demonstrated: do any two sites interleave the artists
     differently? *)
  let interleaving site =
    List.filter_map
      (fun (mid, _) ->
        let origin = Causal.Mid.origin mid in
        if Net.Node_id.equal origin artist_a then Some 'A'
        else if Net.Node_id.equal origin artist_b then Some 'B'
        else None)
      (view_of site)
  in
  let patterns =
    List.map
      (fun i -> String.init (List.length (interleaving (Net.Node_id.of_int i)))
          (List.nth (interleaving (Net.Node_id.of_int i))))
      [ 3; 4; 5 ]
  in
  Format.printf "@.artist interleavings at three sites:@.";
  List.iteri (fun i p -> Format.printf "  site %d: %s@." (i + 3) p) patterns;
  (* Per-artist order is identical everywhere even if the merge differs. *)
  let per_artist site artist =
    List.filter_map
      (fun (mid, _) ->
        if Net.Node_id.equal (Causal.Mid.origin mid) artist then
          Some (Causal.Mid.seq mid)
        else None)
      (view_of site)
  in
  let consistent =
    List.for_all
      (fun artist ->
        let reference = per_artist (Net.Node_id.of_int 3) artist in
        List.for_all
          (fun i -> per_artist (Net.Node_id.of_int i) artist = reference)
          [ 4; 5 ])
      [ artist_a; artist_b ]
  in
  Format.printf "@.per-artist stroke order identical at all sites: %b@."
    consistent;
  let lost = Net.Netsim.dropped_count net in
  Format.printf "(the network dropped %d packet copies along the way)@." lost
