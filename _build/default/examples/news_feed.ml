(* News feed: a diffusion group (Section 3) with a client-server front end.

   Run with:  dune exec examples/news_feed.exe

   Five editors form the urcgc peer group.  Two reader terminals are
   diffusion clients: they receive every published item in causal order but
   never participate in the agreement.  A correspondent submits wire copy
   through the client-server interface: the story is accepted only once the
   editor group has uniformly processed it, and the correspondent's reply
   arrives exactly then — even though the first editor contacted crashes
   mid-session and the desk fails over. *)

let n = 5
let reader_a = Net.Node_id.of_int 20
let reader_b = Net.Node_id.of_int 21
let correspondent = Net.Node_id.of_int 30

let () =
  let engine = Sim.Engine.create () in
  let rng = Sim.Rng.create ~seed:77 in
  (* Editor p2 crashes a few subruns in. *)
  let fault_spec =
    Net.Fault.with_crashes
      [ (Net.Node_id.of_int 2, Sim.Ticks.of_int ((5 * Sim.Ticks.per_rtd) + 1)) ]
      (Net.Fault.omission_every 300)
  in
  let fault = Net.Fault.create fault_spec ~rng:(Sim.Rng.split rng) in
  let net = Net.Netsim.create engine ~fault ~rng:(Sim.Rng.split rng) () in
  let config = Urcgc.Config.make ~n () in
  let cluster = Urcgc.Cluster.create ~config ~net () in

  let diffusion =
    Groups.Diffusion.attach_clients cluster ~net
      ~client_ids:[ reader_a; reader_b ]
  in
  let service = Groups.Client_server.create cluster ~net () in
  let desk =
    Groups.Client_server.connect service ~client_id:correspondent
      ~retry_subruns:3
      ~server:(Net.Node_id.of_int 2) (* the editor that will crash *)
      ()
  in

  (* Editors publish their own items; the correspondent files two stories. *)
  Urcgc.Cluster.on_round cluster (fun ~round ->
      (match round with
      | 0 ->
          Urcgc.Cluster.submit cluster (Net.Node_id.of_int 0)
            { Groups.Client_server.client = Net.Node_id.of_int 0;
              request_id = 0; body = "ed0: markets open mixed" }
      | 2 ->
          Urcgc.Cluster.submit cluster (Net.Node_id.of_int 1)
            { Groups.Client_server.client = Net.Node_id.of_int 0;
              request_id = 0; body = "ed1: weather front moving in" }
      | _ -> ());
      if round = 4 then
        ignore (Groups.Client_server.submit desk "corr: quake felt offshore");
      if round = 14 then
        ignore (Groups.Client_server.submit desk "corr: aftershock update"));
  Urcgc.Cluster.start cluster;
  Sim.Engine.run engine ~until:(Sim.Ticks.of_rtd 30.0);

  Format.printf "== reader terminals ==@.";
  List.iter
    (fun reader ->
      let client = Groups.Diffusion.client diffusion reader in
      Format.printf "reader %a:@." Net.Node_id.pp reader;
      List.iter
        (fun (mid, item) ->
          Format.printf "   %a %s@." Causal.Mid.pp mid
            item.Groups.Client_server.body)
        (Groups.Diffusion.processed client))
    [ reader_a; reader_b ];

  Format.printf "@.== correspondent ==@.";
  Format.printf "replies: %d, failovers: %d@."
    (List.length (Groups.Client_server.replies desk))
    (Groups.Client_server.retries desk);
  List.iter
    (fun (id, server) ->
      Format.printf "   story #%d accepted, confirmed by editor %a@." id
        Net.Node_id.pp server)
    (Groups.Client_server.replies desk);
  let counts =
    List.map
      (fun reader ->
        Groups.Diffusion.processed_count (Groups.Diffusion.client diffusion reader))
      [ reader_a; reader_b ]
  in
  Format.printf "@.readers saw the same number of items: %b@."
    (match counts with [ a; b ] -> a = b | _ -> false)
