(* Comparison: urcgc against the CBCAST and Psync baselines on one scenario.

   Run with:  dune exec examples/comparison.exe

   The same workload (15 processes, 150 messages at half load) is pushed
   through all three protocols, first on a reliable network and then with a
   crash injected at subrun 4.  This is a miniature of the paper's Section 6
   argument in one screen: all three behave alike when nothing fails; under
   a crash, urcgc's delay does not move while CBCAST pays a blocking flush
   and Psync runs its mask_out agreement. *)

let n = 15
let k = 3
let messages = 150

let crash_fault =
  Net.Fault.with_crashes
    [ (Net.Node_id.of_int 9, Sim.Ticks.of_int ((4 * Sim.Ticks.per_rtd) + 1)) ]
    Net.Fault.reliable

let load () = Workload.Load.make ~rate:0.5 ~total_messages:messages ()

let urcgc_row ~fault label =
  let config = Urcgc.Config.make ~k ~n () in
  let scenario =
    Workload.Scenario.make ~name:label ~fault ~seed:42 ~max_rtd:300.0 ~config
      ~load:(load ()) ()
  in
  let r = Workload.Runner.run scenario in
  ( label,
    Workload.Runner.mean_delay_rtd r,
    r.Workload.Runner.delay.Stats.Summary.p95,
    r.Workload.Runner.completion_rtd,
    Printf.sprintf "%d ctl msgs, max %dB" r.Workload.Runner.control_msgs
      r.Workload.Runner.control_max_size,
    Workload.Checker.ok r.Workload.Runner.verdict )

let cbcast_row ~fault label =
  let r =
    Workload.Runner_cbcast.run ~name:label ~n ~k ~load:(load ()) ~fault
      ~seed:42 ~max_rtd:300.0 ()
  in
  ( label,
    Workload.Runner_cbcast.mean_delay_rtd r,
    r.Workload.Runner_cbcast.delay.Stats.Summary.p95,
    r.Workload.Runner_cbcast.completion_rtd,
    Printf.sprintf "%d ctl msgs, max %dB; %.1f rtd flushing"
      r.Workload.Runner_cbcast.control_msgs
      r.Workload.Runner_cbcast.control_max_size
      r.Workload.Runner_cbcast.flush_time_rtd,
    r.Workload.Runner_cbcast.causal_ok && r.Workload.Runner_cbcast.atomicity_ok
  )

let psync_row ~fault label =
  let r =
    Workload.Runner_psync.run ~name:label ~n ~k ~pending_bound:(8 * n)
      ~load:(load ()) ~fault ~seed:42 ~max_rtd:300.0 ()
  in
  ( label,
    Workload.Runner_psync.mean_delay_rtd r,
    r.Workload.Runner_psync.delay.Stats.Summary.p95,
    r.Workload.Runner_psync.completion_rtd,
    Printf.sprintf "%d ctl msgs; %d mask_out observations"
      r.Workload.Runner_psync.control_msgs r.Workload.Runner_psync.masked,
    r.Workload.Runner_psync.causal_ok )

let () =
  Format.printf
    "== one scenario, three protocols (n = %d, K = %d, %d messages) ==@.@." n
    k messages;
  let table =
    Stats.Table.create
      ~columns:
        [
          ("protocol / condition", Stats.Table.Left);
          ("mean D (rtd)", Stats.Table.Right);
          ("p95 D", Stats.Table.Right);
          ("done (rtd)", Stats.Table.Right);
          ("control traffic", Stats.Table.Left);
          ("invariants", Stats.Table.Left);
        ]
  in
  let add (label, mean, p95, completion, traffic, ok) =
    Stats.Table.add_row table
      [
        label;
        Stats.Table.cell_float ~decimals:3 mean;
        Stats.Table.cell_float ~decimals:3 p95;
        Stats.Table.cell_float ~decimals:1 completion;
        traffic;
        (if ok then "ok" else "VIOLATED");
      ]
  in
  add (urcgc_row ~fault:Net.Fault.reliable "urcgc / reliable");
  add (cbcast_row ~fault:Net.Fault.reliable "cbcast / reliable");
  add (psync_row ~fault:Net.Fault.reliable "psync / reliable");
  Stats.Table.add_rule table;
  add (urcgc_row ~fault:crash_fault "urcgc / crash@4");
  add (cbcast_row ~fault:crash_fault "cbcast / crash@4");
  add (psync_row ~fault:crash_fault "psync / crash@4");
  Stats.Table.pp Format.std_formatter table;
  Format.printf
    "@.read it as the paper does: under the crash, urcgc's delay column does@.";
  Format.printf
    "not move, CBCAST spends time flushing with swollen messages, and Psync@.";
  Format.printf "needs a mask_out agreement.@."
