examples/quickstart.mli:
