examples/control_room.ml: Array Causal Format Hashtbl List Net Option Printf Sim Urcgc
