examples/replicated_log.ml: Array Format List Net Sim Urcgc
