examples/comparison.mli:
