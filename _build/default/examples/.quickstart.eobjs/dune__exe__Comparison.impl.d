examples/comparison.ml: Format Net Printf Sim Stats Urcgc Workload
