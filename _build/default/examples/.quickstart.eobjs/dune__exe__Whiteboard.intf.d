examples/whiteboard.mli:
