examples/news_feed.mli:
