examples/control_room.mli:
