examples/quickstart.ml: Causal Format List Net Sim Urcgc
