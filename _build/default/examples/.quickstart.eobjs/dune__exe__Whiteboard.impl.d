examples/whiteboard.ml: Array Causal Format List Net Printf Sim String Urcgc
