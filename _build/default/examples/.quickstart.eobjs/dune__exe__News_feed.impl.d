examples/news_feed.ml: Causal Format Groups List Net Sim Urcgc
