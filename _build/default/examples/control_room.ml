(* Control room: real-time distributed control with a fail-stop failure (the
   other application class Section 1 motivates).

   Run with:  dune exec examples/control_room.exe

   Eight controllers multicast sensor readings and setpoint changes.  One of
   them crashes mid-run.  The example narrates what urcgc does about it:
   the rotating coordinators accumulate `attempts` against the silent
   process, declare it crashed after K subruns, remove it from the group
   view by agreement — all without ever pausing the processing of the
   survivors' messages — and the survivors end with identical processed
   prefixes (uniform atomicity). *)

let n = 8
let k = 3
let victim = Net.Node_id.of_int 5
let crash_subrun = 4

let () =
  let engine = Sim.Engine.create () in
  let rng = Sim.Rng.create ~seed:5 in
  let fault_spec =
    Net.Fault.with_crashes
      [ (victim, Sim.Ticks.of_int ((crash_subrun * Sim.Ticks.per_rtd) + 1)) ]
      Net.Fault.reliable
  in
  let fault = Net.Fault.create fault_spec ~rng:(Sim.Rng.split rng) in
  let net = Net.Netsim.create engine ~fault ~rng:(Sim.Rng.split rng) () in
  let config = Urcgc.Config.make ~k ~n () in
  let tracer = Sim.Tracer.create () in
  let cluster = Urcgc.Cluster.create ~tracer ~config ~net () in

  (* Steady telemetry from every controller, one reading every other round. *)
  let reading = ref 0 in
  Urcgc.Cluster.on_round cluster (fun ~round ->
      if round < 24 && round mod 2 = 0 then
        List.iter
          (fun node ->
            incr reading;
            Urcgc.Cluster.submit cluster node
              (Printf.sprintf "reading #%d from %s" !reading
                 (Format.asprintf "%a" Net.Node_id.pp node)))
          (Net.Node_id.group n));

  (* Narrate membership: watch the survivors' latest decisions. *)
  let declared = ref false in
  Urcgc.Cluster.on_round cluster (fun ~round ->
      if not !declared then begin
        let survivor = Urcgc.Cluster.member cluster (Net.Node_id.of_int 0) in
        let d = Urcgc.Member.latest_decision survivor in
        if not d.Urcgc.Decision.alive.(Net.Node_id.to_int victim) then begin
          declared := true;
          Format.printf
            "[subrun %2d] the group agreed: %a is crashed (declared by the \
             decision of subrun %d, %d subruns after the fail-stop)@."
            (round / 2) Net.Node_id.pp victim d.Urcgc.Decision.subrun
            (d.Urcgc.Decision.subrun - crash_subrun)
        end
      end);
  Urcgc.Cluster.start cluster;

  Format.printf "== timeline ==@.";
  Format.printf "[subrun %2d] %a fail-stops@." crash_subrun Net.Node_id.pp
    victim;
  Sim.Engine.run engine ~until:(Sim.Ticks.of_rtd 40.0);

  (* Survivors' state. *)
  Format.printf "@.== outcome ==@.";
  let survivors =
    List.filter
      (fun node -> not (Net.Node_id.equal node victim))
      (Net.Node_id.group n)
  in
  let processed node =
    Urcgc.Member.processed_count (Urcgc.Cluster.member cluster node)
  in
  let reference = processed (List.hd survivors) in
  Format.printf "every survivor processed %d messages: %b@." reference
    (List.for_all (fun node -> processed node = reference) survivors);
  let views_agree =
    List.for_all
      (fun node ->
        let view = Urcgc.Member.view (Urcgc.Cluster.member cluster node) in
        (not (Causal.Group_view.alive view victim))
        && Causal.Group_view.cardinal view = n - 1)
      survivors
  in
  Format.printf "every survivor's view excludes %a: %b@." Net.Node_id.pp victim
    views_agree;
  (* The headline property: processing never paused.  Count deliveries per
     subrun around the crash. *)
  Format.printf "@.deliveries per subrun around the crash:@.";
  let per_subrun = Hashtbl.create 16 in
  List.iter
    (fun { Urcgc.Cluster.at; _ } ->
      let s = Sim.Ticks.to_int at / Sim.Ticks.per_rtd in
      Hashtbl.replace per_subrun s
        (1 + Option.value ~default:0 (Hashtbl.find_opt per_subrun s)))
    (Urcgc.Cluster.deliveries cluster);
  for s = crash_subrun - 2 to crash_subrun + k + 1 do
    Format.printf "  subrun %2d: %3d messages processed%s@." s
      (Option.value ~default:0 (Hashtbl.find_opt per_subrun s))
      (if s = crash_subrun then "   <- crash happens here" else "")
  done;
  Format.printf
    "@.(the paper's point: no suspension — compare CBCAST, which blocks all@.";
  Format.printf " processing while its flush protocol reforms the view)@."
