(* Edge-case coverage that the main suites do not reach: the
   recovery-exhausted departure, coordinator-request handling corners,
   urgc's recovery path, and CBCAST's stability cut soundness. *)

let node n = Net.Node_id.of_int n
let mid o s = Causal.Mid.make ~origin:(node o) ~seq:s

let member_edge_tests =
  let config = Urcgc.Config.make ~n:3 ~k:2 ~r:3 () in
  [
    Alcotest.test_case
      "R failed recovery attempts make the process leave (Lemma 4.2)" `Quick
      (fun () ->
        let m : unit Urcgc.Member.t = Urcgc.Member.create config (node 1) in
        (* A decision says p2 processed 4 messages of p0 that we miss; our
           recovery requests go unanswered (we never feed replies). *)
        let d0 = Urcgc.Decision.initial ~n:3 in
        let d =
          {
            d0 with
            Urcgc.Decision.subrun = 0;
            max_processed = [| 4; 0; 0 |];
            most_updated = [| node 2; node 1; node 2 |];
          }
        in
        ignore (Urcgc.Member.handle m (Urcgc.Wire.Decision_pdu d));
        let left = ref None in
        (* Keep feeding fresh decisions so silence never triggers first. *)
        let s = ref 1 in
        while !left = None && !s < 12 do
          let actions = Urcgc.Member.begin_subrun m ~subrun:!s in
          List.iter
            (function
              | Urcgc.Member.Left why -> left := Some why
              | _ -> ())
            actions;
          ignore
            (Urcgc.Member.handle m
               (Urcgc.Wire.Decision_pdu { d with Urcgc.Decision.subrun = !s }));
          incr s
        done;
        match !left with
        | Some Urcgc.Member.Recovery_exhausted ->
            (* r = 3: gone by the 4th stalled attempt *)
            Alcotest.(check bool) "left within r+1 subruns" true (!s <= 6)
        | Some other ->
            Alcotest.failf "left for the wrong reason: %s"
              (Urcgc.Member.reason_to_string other)
        | None -> Alcotest.fail "never left");
    Alcotest.test_case "recovery progress resets the attempt counter" `Quick
      (fun () ->
        let m : string Urcgc.Member.t = Urcgc.Member.create config (node 1) in
        let d0 = Urcgc.Decision.initial ~n:3 in
        let d =
          {
            d0 with
            Urcgc.Decision.subrun = 0;
            max_processed = [| 3; 0; 0 |];
            most_updated = [| node 2; node 1; node 2 |];
          }
        in
        ignore (Urcgc.Member.handle m (Urcgc.Wire.Decision_pdu d));
        (* Two stalled subruns... *)
        ignore (Urcgc.Member.begin_subrun m ~subrun:1);
        ignore
          (Urcgc.Member.handle m
             (Urcgc.Wire.Decision_pdu { d with Urcgc.Decision.subrun = 1 }));
        ignore (Urcgc.Member.begin_subrun m ~subrun:2);
        ignore
          (Urcgc.Member.handle m
             (Urcgc.Wire.Decision_pdu { d with Urcgc.Decision.subrun = 2 }));
        (* ... then one message arrives: progress. *)
        ignore
          (Urcgc.Member.handle m
             (Urcgc.Wire.Data
                (Causal.Causal_msg.make ~mid:(mid 0 1) ~deps:[] ~payload_size:1
                   "a")));
        (* Two more stalled subruns must NOT reach r = 3 because the counter
           reset on progress. *)
        let left = ref false in
        for s = 3 to 4 do
          ignore
            (Urcgc.Member.handle m
               (Urcgc.Wire.Decision_pdu { d with Urcgc.Decision.subrun = s - 1 }));
          List.iter
            (function Urcgc.Member.Left _ -> left := true | _ -> ())
            (Urcgc.Member.begin_subrun m ~subrun:s)
        done;
        Alcotest.(check bool) "still in the group" false !left);
    Alcotest.test_case "requests for another subrun are ignored" `Quick
      (fun () ->
        let m : unit Urcgc.Member.t = Urcgc.Member.create config (node 0) in
        ignore (Urcgc.Member.begin_subrun m ~subrun:0);
        let stale =
          {
            Urcgc.Wire.sender = node 1;
            subrun = 99;
            last_processed = [| 0; 0; 0 |];
            waiting = [| None; None; None |];
            prev_decision = Urcgc.Decision.initial ~n:3;
          }
        in
        ignore (Urcgc.Member.handle m (Urcgc.Wire.Request stale));
        (* The decision computed at mid-subrun must not count p1 as heard:
           with K=2 it takes 2 silent subruns to declare, so check attempts. *)
        let actions = Urcgc.Member.mid_subrun m ~subrun:0 in
        let d =
          List.find_map
            (function
              | Urcgc.Member.Broadcast (Urcgc.Wire.Decision_pdu d) -> Some d
              | _ -> None)
            actions
        in
        match d with
        | Some d ->
            Alcotest.(check int) "p1 counted silent" 1
              d.Urcgc.Decision.attempts.(1)
        | None -> Alcotest.fail "no decision");
    Alcotest.test_case "duplicate requests from one sender count once" `Quick
      (fun () ->
        let m : unit Urcgc.Member.t = Urcgc.Member.create config (node 0) in
        ignore (Urcgc.Member.begin_subrun m ~subrun:0);
        let request =
          {
            Urcgc.Wire.sender = node 1;
            subrun = 0;
            last_processed = [| 0; 0; 0 |];
            waiting = [| None; None; None |];
            prev_decision = Urcgc.Decision.initial ~n:3;
          }
        in
        ignore (Urcgc.Member.handle m (Urcgc.Wire.Request request));
        ignore (Urcgc.Member.handle m (Urcgc.Wire.Request request));
        let actions = Urcgc.Member.mid_subrun m ~subrun:0 in
        match
          List.find_map
            (function
              | Urcgc.Member.Broadcast (Urcgc.Wire.Decision_pdu d) -> Some d
              | _ -> None)
            actions
        with
        | Some d ->
            Alcotest.(check int) "p1 heard once, attempts 0" 0
              d.Urcgc.Decision.attempts.(1)
        | None -> Alcotest.fail "no decision");
    Alcotest.test_case "non-coordinator mid_subrun emits no decision" `Quick
      (fun () ->
        let m : unit Urcgc.Member.t = Urcgc.Member.create config (node 1) in
        ignore (Urcgc.Member.begin_subrun m ~subrun:0);
        let actions = Urcgc.Member.mid_subrun m ~subrun:0 in
        Alcotest.(check bool) "no decision" true
          (not
             (List.exists
                (function
                  | Urcgc.Member.Broadcast (Urcgc.Wire.Decision_pdu _) -> true
                  | _ -> false)
                actions)));
  ]

let urgc_recovery_tests =
  [
    Alcotest.test_case
      "urgc: data lost to all but its origin is recovered via rotation" `Slow
      (fun () ->
        let engine = Sim.Engine.create () in
        let rng = Sim.Rng.create ~seed:5 in
        let fault =
          Net.Fault.create Net.Fault.reliable ~rng:(Sim.Rng.split rng)
        in
        let net = Net.Netsim.create engine ~fault ~rng:(Sim.Rng.split rng) () in
        let cluster = Urgc.Cluster.create ~n:4 ~k:2 ~net () in
        (* Lose every direct copy of (p3, 1); after its global sequence is
           assigned, p3 processes it alone, and the others must fetch it from
           history once p3 rotates into the coordinator role. *)
        Net.Netsim.set_filter net
          (Some
             (fun packet ->
               match packet.Net.Netsim.payload with
               | Urgc.Total_wire.Data data ->
                   not
                     (Causal.Mid.equal data.Urgc.Total_wire.mid
                        (Causal.Mid.make ~origin:(node 3) ~seq:1))
               | _ -> true));
        Urgc.Cluster.submit cluster (node 3) "precious";
        Urgc.Cluster.submit cluster (node 0) "other";
        Urgc.Cluster.start cluster;
        Sim.Engine.run engine ~until:(Sim.Ticks.of_rtd 30.0);
        Alcotest.(check bool) "total order holds" true
          (Urgc.Cluster.total_order_ok cluster);
        List.iter
          (fun member ->
            Alcotest.(check int) "both processed everywhere" 2
              (Urgc.Member.processed_upto member))
          (Urgc.Cluster.members cluster));
  ]

let cbcast_stability_tests =
  [
    Alcotest.test_case
      "the published stable cut never exceeds any member's delivered vector"
      `Slow (fun () ->
        let n = 6 and k = 3 in
        let engine = Sim.Engine.create () in
        let rng = Sim.Rng.create ~seed:23 in
        let fault =
          Net.Fault.create Net.Fault.reliable ~rng:(Sim.Rng.split rng)
        in
        let cluster =
          Cbcast.Cluster.create ~n ~k ~engine ~fault ~rng:(Sim.Rng.split rng) ()
        in
        let produced = ref 0 in
        Cbcast.Cluster.on_round cluster (fun ~round:_ ->
            List.iter
              (fun nd ->
                if !produced < 60 && Sim.Rng.bool rng 0.5 then begin
                  incr produced;
                  Cbcast.Cluster.submit cluster nd !produced
                end)
              (Net.Node_id.group n));
        (* Invariant sampled continuously: anything a member garbage-collects
           as stable must be delivered at every member.  Unstable counts can
           only shrink to zero at quiescence. *)
        Cbcast.Cluster.start cluster;
        Sim.Engine.run engine ~until:(Sim.Ticks.of_rtd 40.0);
        let members = Cbcast.Cluster.members cluster in
        Alcotest.(check bool) "all drained, history gc'd" true
          (List.for_all
             (fun member -> Cbcast.Member.unstable member <= 1 * n)
             members);
        let vts = List.map Cbcast.Member.delivered_vt members in
        match vts with
        | first :: rest ->
            Alcotest.(check bool) "vectors agree at quiescence" true
              (List.for_all (fun vt -> Cbcast.Vclock.equal vt first) rest)
        | [] -> ());
  ]

let suite =
  [
    ("urcgc.member_edge", member_edge_tests);
    ("urgc.recovery", urgc_recovery_tests);
    ("cbcast.stability", cbcast_stability_tests);
  ]
