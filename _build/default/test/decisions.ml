(* Shared helper: a fresh initial decision for test fixtures. *)

let initial n = Urcgc.Decision.initial ~n
