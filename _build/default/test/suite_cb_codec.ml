(* CBCAST codec tests: encoded length = Cb_wire.body_size (the measurement
   behind Table 1's CBCAST rows), lossless roundtrips, hostile input. *)

let node n = Net.Node_id.of_int n
let payload = Net.Bytebuf.string_codec

let vt arr = Cbcast.Vclock.of_array arr

let data ?(view = 0) sender vt_arr text =
  {
    Cbcast.Cb_wire.sender = node sender;
    view_id = view;
    vt = vt vt_arr;
    payload = text;
    payload_size = String.length text;
  }

let bodies : string Cbcast.Cb_wire.body list =
  [
    Cbcast.Cb_wire.Data (data 1 [| 0; 3; 0; 0; 2 |] "payload!");
    Cbcast.Cb_wire.Heartbeat { vt = vt [| 1; 2; 3; 4; 5 |] };
    Cbcast.Cb_wire.Token { initiator = node 2; acc = vt [| 9; 9; 9; 9; 9 |] };
    Cbcast.Cb_wire.Stability { vt = vt [| 4; 4; 4; 4; 4 |] };
    Cbcast.Cb_wire.Suspect { suspect = node 3; reporter = node 0 };
    Cbcast.Cb_wire.Flush_req
      {
        view_id = 2;
        members = [| true; true; false; true; true |];
        coordinator = node 0;
      };
    Cbcast.Cb_wire.Flush_unstable
      {
        view_id = 2;
        sender = node 4;
        msgs = [ data 4 [| 0; 0; 0; 0; 1 |] "a"; data 4 [| 0; 0; 0; 0; 2 |] "" ];
      };
    Cbcast.Cb_wire.Flush_unstable { view_id = 2; sender = node 4; msgs = [] };
    Cbcast.Cb_wire.New_view
      {
        view_id = 2;
        members = [| true; true; false; true; true |];
        retransmit = [ data 1 [| 0; 7; 0; 0; 0 |] "late one" ];
      };
  ]

let size_tests =
  [
    Alcotest.test_case "encoded length equals Cb_wire.body_size for every PDU"
      `Quick (fun () ->
        List.iter
          (fun body ->
            let raw = Cbcast.Cb_codec.encode_body payload body in
            Alcotest.(check int)
              (Format.asprintf "%a" Cbcast.Cb_wire.pp_body body)
              (Cbcast.Cb_wire.body_size body) (Bytes.length raw))
          bodies);
    Alcotest.test_case "heartbeat size is the paper's 4(n+1)" `Quick (fun () ->
        let hb =
          Cbcast.Cb_wire.Heartbeat { vt = Cbcast.Vclock.create ~n:15 }
        in
        Alcotest.(check int) "64" 64
          (Bytes.length (Cbcast.Cb_codec.encode_body payload hb)));
    Alcotest.test_case "flush header is the paper's 4(n-1) for usual n" `Quick
      (fun () ->
        let req =
          Cbcast.Cb_wire.Flush_req
            { view_id = 1; members = Array.make 15 true; coordinator = node 0 }
        in
        Alcotest.(check int) "56" 56
          (Bytes.length (Cbcast.Cb_codec.encode_body payload req)));
  ]

let roundtrip_tests =
  [
    Alcotest.test_case "every PDU kind roundtrips to identical bytes" `Quick
      (fun () ->
        List.iter
          (fun body ->
            let raw = Cbcast.Cb_codec.encode_body payload body in
            match Cbcast.Cb_codec.decode_body payload ~n:5 raw with
            | Error e ->
                Alcotest.failf "decode %a: %s" Cbcast.Cb_wire.pp_body body e
            | Ok decoded ->
                Alcotest.(check bool)
                  (Format.asprintf "%a" Cbcast.Cb_wire.pp_body body)
                  true
                  (Bytes.equal raw (Cbcast.Cb_codec.encode_body payload decoded)))
          bodies);
    Alcotest.test_case "flush payloads survive the roundtrip" `Quick (fun () ->
        let body =
          Cbcast.Cb_wire.Flush_unstable
            {
              view_id = 7;
              sender = node 3;
              msgs =
                [ data ~view:7 3 [| 1; 2; 3; 4; 5 |] "hello"; data 3 [| 0; 0; 0; 1; 0 |] "x" ];
            }
        in
        let raw = Cbcast.Cb_codec.encode_body payload body in
        match Cbcast.Cb_codec.decode_body payload ~n:5 raw with
        | Ok (Cbcast.Cb_wire.Flush_unstable { msgs; view_id; _ }) ->
            Alcotest.(check int) "view" 7 view_id;
            Alcotest.(check (list string)) "payloads" [ "hello"; "x" ]
              (List.map (fun (d : _ Cbcast.Cb_wire.data) -> d.payload) msgs)
        | Ok _ -> Alcotest.fail "wrong variant"
        | Error e -> Alcotest.fail e);
  ]

let hostile_tests =
  [
    Alcotest.test_case "truncated vclock is an error" `Quick (fun () ->
        let raw =
          Cbcast.Cb_codec.encode_body payload
            (Cbcast.Cb_wire.Heartbeat { vt = Cbcast.Vclock.create ~n:5 })
        in
        match
          Cbcast.Cb_codec.decode_body payload ~n:5
            (Bytes.sub raw 0 (Bytes.length raw - 2))
        with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "accepted truncated input");
    Alcotest.test_case "wrong group size is an error" `Quick (fun () ->
        let raw =
          Cbcast.Cb_codec.encode_body payload
            (Cbcast.Cb_wire.Heartbeat { vt = Cbcast.Vclock.create ~n:5 })
        in
        match Cbcast.Cb_codec.decode_body payload ~n:8 raw with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "accepted size mismatch");
    Alcotest.test_case "garbage tag is an error" `Quick (fun () ->
        match
          Cbcast.Cb_codec.decode_body payload ~n:5 (Bytes.make 24 '\xAB')
        with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "accepted garbage");
  ]

let suite =
  [
    ("cb_codec.sizes", size_tests);
    ("cb_codec.roundtrip", roundtrip_tests);
    ("cb_codec.hostile", hostile_tests);
  ]
