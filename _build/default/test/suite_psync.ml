(* Tests for the Psync baseline: the context graph and end-to-end runs. *)

let node n = Net.Node_id.of_int n
let mid s q = { Psync.Context_graph.sender = node s; seq = q }

let cg_node ?(preds = []) s q =
  { Psync.Context_graph.mid = mid s q; preds; payload = (s, q); payload_size = 4 }

let graph_tests =
  [
    Alcotest.test_case "attach a root message" `Quick (fun () ->
        let g = Psync.Context_graph.create () in
        (match Psync.Context_graph.attach g (cg_node 0 1) with
        | Ok [ n ] ->
            Alcotest.(check int) "the node itself" 1 n.Psync.Context_graph.mid.seq
        | Ok _ | Error _ -> Alcotest.fail "expected Ok [node]");
        Alcotest.(check int) "attached" 1 (Psync.Context_graph.attached g);
        Alcotest.(check int) "one leaf" 1
          (List.length (Psync.Context_graph.leaves g)));
    Alcotest.test_case "missing predecessor parks the node" `Quick (fun () ->
        let g = Psync.Context_graph.create () in
        (match Psync.Context_graph.attach g (cg_node ~preds:[ mid 0 1 ] 1 1) with
        | Error [ m ] -> Alcotest.(check int) "missing 0~1" 1 m.Psync.Context_graph.seq
        | Error _ | Ok _ -> Alcotest.fail "expected Error [mid]");
        Alcotest.(check int) "pending" 1 (Psync.Context_graph.pending g);
        (* Arrival of the predecessor unblocks it. *)
        match Psync.Context_graph.attach g (cg_node 0 1) with
        | Ok attached ->
            Alcotest.(check int) "both attached" 2 (List.length attached);
            Alcotest.(check int) "nothing pending" 0 (Psync.Context_graph.pending g)
        | Error _ -> Alcotest.fail "expected Ok");
    Alcotest.test_case "leaves replace their predecessors" `Quick (fun () ->
        let g = Psync.Context_graph.create () in
        ignore (Psync.Context_graph.attach g (cg_node 0 1));
        ignore (Psync.Context_graph.attach g (cg_node 1 1));
        Alcotest.(check int) "two leaves" 2
          (List.length (Psync.Context_graph.leaves g));
        ignore
          (Psync.Context_graph.attach g
             (cg_node ~preds:[ mid 0 1; mid 1 1 ] 2 1));
        let leaves = Psync.Context_graph.leaves g in
        Alcotest.(check int) "one leaf" 1 (List.length leaves);
        Alcotest.(check int) "it is 2~1" 2
          (Net.Node_id.to_int (List.hd leaves).Psync.Context_graph.sender));
    Alcotest.test_case "attach is idempotent" `Quick (fun () ->
        let g = Psync.Context_graph.create () in
        ignore (Psync.Context_graph.attach g (cg_node 0 1));
        (match Psync.Context_graph.attach g (cg_node 0 1) with
        | Ok [] -> ()
        | Ok _ | Error _ -> Alcotest.fail "duplicate should attach nothing");
        Alcotest.(check int) "still 1" 1 (Psync.Context_graph.attached g));
    Alcotest.test_case "flow control drops newest pending" `Quick (fun () ->
        let g = Psync.Context_graph.create () in
        List.iter
          (fun q ->
            ignore
              (Psync.Context_graph.attach g (cg_node ~preds:[ mid 0 99 ] 1 q)))
          [ 1; 2; 3; 4 ];
        let dropped = Psync.Context_graph.pending_drop_newest g 2 in
        Alcotest.(check int) "2 dropped" 2 (List.length dropped);
        Alcotest.(check int) "2 kept" 2 (Psync.Context_graph.pending g);
        (* The newest (highest-mid) ones go first. *)
        Alcotest.(check (list int)) "dropped 3,4" [ 3; 4 ]
          (List.sort compare
             (List.map (fun m -> m.Psync.Context_graph.seq) dropped)));
    Alcotest.test_case "find returns attached nodes only" `Quick (fun () ->
        let g = Psync.Context_graph.create () in
        ignore (Psync.Context_graph.attach g (cg_node 0 1));
        ignore (Psync.Context_graph.attach g (cg_node ~preds:[ mid 5 5 ] 1 1));
        Alcotest.(check bool) "attached found" true
          (Psync.Context_graph.find g (mid 0 1) <> None);
        Alcotest.(check bool) "pending not found" true
          (Psync.Context_graph.find g (mid 1 1) = None));
  ]

let run_ps ?(n = 8) ?(k = 3) ?(rate = 0.5) ?(messages = 60) ?pending_bound
    ?(fault = Net.Fault.reliable) ?(seed = 42) ?(max_rtd = 150.0) () =
  let load = Workload.Load.make ~rate ~total_messages:messages () in
  Workload.Runner_psync.run ~n ~k ?pending_bound ~load ~fault ~seed ~max_rtd ()

let e2e_tests =
  [
    Alcotest.test_case "reliable conversation delivers causally" `Slow
      (fun () ->
        let r = run_ps () in
        Alcotest.(check bool) "causal" true r.Workload.Runner_psync.causal_ok;
        Alcotest.(check int) "all delivered" (60 * 7)
          r.Workload.Runner_psync.delivered_remote;
        Alcotest.(check int) "no recovery needed" 0
          r.Workload.Runner_psync.recovery_msgs);
    Alcotest.test_case "losses repaired by retransmission requests" `Slow
      (fun () ->
        let r =
          run_ps ~fault:(Net.Fault.omission_every 150) ~messages:80
            ~max_rtd:80.0 ()
        in
        Alcotest.(check bool) "causal" true r.Workload.Runner_psync.causal_ok;
        Alcotest.(check bool) "recovery traffic" true
          (r.Workload.Runner_psync.recovery_msgs > 0));
    Alcotest.test_case "crash leads to mask_out" `Slow (fun () ->
        let fault =
          Net.Fault.with_crashes
            [ (node 2, Sim.Ticks.of_int 401) ]
            Net.Fault.reliable
        in
        let r = run_ps ~fault ~max_rtd:100.0 () in
        Alcotest.(check bool) "causal" true r.Workload.Runner_psync.causal_ok;
        Alcotest.(check bool) "masked out" true
          (r.Workload.Runner_psync.masked > 0));
    Alcotest.test_case "pending bound truncates (their flow control)" `Slow
      (fun () ->
        (* Heavy loss + a tiny pending bound: truncation must kick in
           without breaking causal order of what is delivered. *)
        let r =
          run_ps ~pending_bound:2
            ~fault:{ Net.Fault.reliable with link_loss = 0.15 }
            ~rate:1.0 ~messages:120 ~max_rtd:60.0 ()
        in
        Alcotest.(check bool) "causal" true r.Workload.Runner_psync.causal_ok;
        Alcotest.(check bool) "bounded pending" true
          (r.Workload.Runner_psync.pending_peak <= 2 + 8));
  ]

let suite = [ ("psync.graph", graph_tests); ("psync.e2e", e2e_tests) ]
