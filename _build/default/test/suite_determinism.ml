(* Determinism and ordering properties of the foundations that every
   experiment's reproducibility rests on. *)

let node n = Net.Node_id.of_int n

let engine_properties =
  [
    QCheck.Test.make ~name:"engine fires events in nondecreasing time order"
      ~count:200
      QCheck.(small_list small_nat)
      (fun times ->
        let engine = Sim.Engine.create () in
        let fired = ref [] in
        List.iter
          (fun t ->
            ignore
              (Sim.Engine.schedule engine ~at:(Sim.Ticks.of_int t) (fun () ->
                   fired := t :: !fired)))
          times;
        Sim.Engine.run engine;
        let fired = List.rev !fired in
        fired = List.stable_sort compare times);
    QCheck.Test.make
      ~name:"two engines fed the same schedule do the same thing" ~count:100
      QCheck.(small_list (pair small_nat small_nat))
      (fun jobs ->
        let run () =
          let engine = Sim.Engine.create () in
          let log = ref [] in
          List.iter
            (fun (t, v) ->
              ignore
                (Sim.Engine.schedule engine ~at:(Sim.Ticks.of_int t) (fun () ->
                     log := (t, v) :: !log)))
            jobs;
          Sim.Engine.run engine;
          List.rev !log
        in
        run () = run ());
  ]

(* CBCAST delivery condition: feeding a member the messages of two senders
   in ANY interleaving always delivers them in a causally consistent order
   (per-sender FIFO; cross-sender as stamped). *)
let cbcast_order_property =
  QCheck.Test.make
    ~name:"cbcast delivers any network interleaving in causal order"
    ~count:200
    QCheck.(small_list bool)
    (fun interleaving ->
      (* Build two causal chains: p0 sends a1 a2 a3; p1 receives them as
         they come and sends b1 b2 b3 stamped accordingly.  The receiver p2
         gets all six in the random interleaving. *)
      let vt a b = Cbcast.Vclock.of_array [| a; b; 0 |] in
      let msg sender vtv i =
        {
          Cbcast.Cb_wire.sender = node sender;
          view_id = 0;
          vt = vtv;
          payload = Printf.sprintf "%c%d" (if sender = 0 then 'a' else 'b') i;
          payload_size = 2;
        }
      in
      let a_chain = List.init 3 (fun i -> msg 0 (vt (i + 1) 0) (i + 1)) in
      (* b_i is stamped having seen a_1..a_{i-1}: vt = [i-1; i; 0] *)
      let b_chain = List.init 3 (fun i -> msg 1 (vt i (i + 1)) (i + 1)) in
      (* Deterministic interleaving from the generated booleans. *)
      let rec weave choices xs ys =
        match (choices, xs, ys) with
        | _, [], rest | _, rest, [] -> rest
        | [], x :: xs, ys -> x :: weave [] xs ys
        | true :: cs, x :: xs, ys -> x :: weave cs xs ys
        | false :: cs, xs, y :: ys -> y :: weave cs xs ys
      in
      let stream = weave interleaving a_chain b_chain in
      let receiver : string Cbcast.Member.t =
        Cbcast.Member.create ~n:3 ~k:3 (node 2)
      in
      let delivered = ref [] in
      List.iter
        (fun m ->
          List.iter
            (function
              | Cbcast.Member.Delivered d ->
                  delivered := d.Cbcast.Cb_wire.payload :: !delivered
              | _ -> ())
            (Cbcast.Member.handle receiver ~subrun:0
               ~from:m.Cbcast.Cb_wire.sender (Cbcast.Cb_wire.Data m)))
        stream;
      let delivered = List.rev !delivered in
      (* All six delivered, per-sender FIFO, and b_i after a_i. *)
      let index value =
        let rec find i = function
          | [] -> -1
          | x :: _ when x = value -> i
          | _ :: rest -> find (i + 1) rest
        in
        find 0 delivered
      in
      (* Causality here: per-sender FIFO, plus b2 after a1 and b3 after a2
         (b1 saw no a's and is concurrent with all of them). *)
      List.length delivered = 6
      && index "a1" < index "a2"
      && index "a2" < index "a3"
      && index "b1" < index "b2"
      && index "b2" < index "b3"
      && index "a1" < index "b2"
      && index "a2" < index "b3")

let tracer_tests =
  [
    Alcotest.test_case "dump renders every retained event" `Quick (fun () ->
        let tracer = Sim.Tracer.create () in
        Sim.Tracer.emit tracer ~time:(Sim.Ticks.of_int 5) ~source:"p0" "one";
        Sim.Tracer.emit tracer ~time:(Sim.Ticks.of_int 6) ~source:"p1" "two";
        let out = Format.asprintf "%a" Sim.Tracer.dump tracer in
        Alcotest.(check bool) "has one" true (Astring_contains.contains out "one");
        Alcotest.(check bool) "has two" true (Astring_contains.contains out "two");
        Alcotest.(check bool) "has source" true
          (Astring_contains.contains out "p1"));
  ]

let suite =
  [
    ( "determinism.engine",
      List.map QCheck_alcotest.to_alcotest engine_properties );
    ( "determinism.cbcast_order",
      [ QCheck_alcotest.to_alcotest cbcast_order_property ] );
    ("determinism.tracer", tracer_tests);
  ]
