(* Large-group stress under mixed faults: the paper's n = 40 setting with
   crashes, omissions and flow control all active at once, checked against
   every invariant.  One heavyweight scenario, marked Slow. *)

let node n = Net.Node_id.of_int n

let tests =
  [
    Alcotest.test_case "n = 40 mixed-fault campaign stays correct" `Slow
      (fun () ->
        let n = 40 in
        let config =
          Urcgc.Config.make ~k:3 ~flow_threshold:(Some (8 * n)) ~n ()
        in
        let load = Workload.Load.make ~rate:0.5 ~total_messages:600 () in
        let fault =
          Net.Fault.with_crashes
            [
              (node 7, Sim.Ticks.of_int ((3 * Sim.Ticks.per_rtd) + 1));
              (node 21, Sim.Ticks.of_int ((6 * Sim.Ticks.per_rtd) + 1));
              (* the coordinator of subrun 9 *)
              (node 9, Sim.Ticks.of_int ((9 * Sim.Ticks.per_rtd) + 1));
            ]
            (Net.Fault.omission_every 400)
        in
        let scenario =
          Workload.Scenario.make ~name:"stress-40" ~fault ~seed:2026
            ~max_rtd:300.0 ~config ~load ()
        in
        let report = Workload.Runner.run scenario in
        if not (Workload.Checker.ok report.Workload.Runner.verdict) then
          Alcotest.failf "invariants: %s"
            (String.concat "; "
               report.Workload.Runner.verdict.Workload.Checker.violations);
        (* A few submissions land in the SAP queues of processes that crash
           before the next round; everything accepted by a survivor must be
           labelled and broadcast. *)
        Alcotest.(check bool) "nearly all 600 generated" true
          (report.Workload.Runner.generated >= 550);
        Alcotest.(check int) "one group at the end" 1
          report.Workload.Runner.fragments;
        Alcotest.(check bool) "history stayed within the flow bound" true
          (report.Workload.Runner.history_peak <= (8 * n) + (2 * n));
        Alcotest.(check bool) "delay stayed causal-service-like" true
          (Workload.Runner.mean_delay_rtd report < 1.0);
        (* Only the three injected crashes may be out of the group. *)
        Alcotest.(check bool) "at most 3 departures (the crashed, learning)"
          true
          (List.length report.Workload.Runner.departures <= 3));
    Alcotest.test_case "determinism at scale: identical reruns" `Slow
      (fun () ->
        let run () =
          let config = Urcgc.Config.make ~k:3 ~n:20 () in
          let load = Workload.Load.make ~rate:0.6 ~total_messages:200 () in
          let fault =
            Net.Fault.with_crashes
              [ (node 5, Sim.Ticks.of_int 501) ]
              (Net.Fault.omission_every 250)
          in
          let scenario =
            Workload.Scenario.make ~name:"det" ~fault ~seed:7 ~max_rtd:200.0
              ~config ~load ()
          in
          let r = Workload.Runner.run scenario in
          ( r.Workload.Runner.delivered_remote,
            r.Workload.Runner.control_bytes,
            r.Workload.Runner.history_peak,
            r.Workload.Runner.completion_rtd )
        in
        let a = run () in
        let b = run () in
        Alcotest.(check bool) "bitwise identical reports" true (a = b));
  ]

let suite = [ ("stress", tests) ]
