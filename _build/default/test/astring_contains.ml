(* Tiny substring check used by the table-rendering tests. *)

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  if nn = 0 then true
  else begin
    let rec scan i =
      if i + nn > nh then false
      else if String.sub haystack i nn = needle then true
      else scan (i + 1)
    in
    scan 0
  end
