(* Deeper baseline coverage: CBCAST's flush takeover when the flush
   coordinator itself crashes, and Psync's recovery/mask handshakes at the
   member level. *)

let node n = Net.Node_id.of_int n

let cbcast_takeover_tests =
  [
    Alcotest.test_case
      "flush coordinator crash: next-ranked member takes over" `Slow (fun () ->
        let n = 8 and k = 2 in
        let engine = Sim.Engine.create () in
        let rng = Sim.Rng.create ~seed:11 in
        (* p7 crashes to trigger the view change; p0, the ranked flush
           coordinator, crashes shortly after starting the flush. *)
        let crashes =
          [
            (node 7, Sim.Ticks.of_int ((3 * Sim.Ticks.per_rtd) + 1));
            (node 0, Sim.Ticks.of_int ((3 + k) * Sim.Ticks.per_rtd + 10));
          ]
        in
        let fault =
          Net.Fault.create
            (Net.Fault.with_crashes crashes Net.Fault.reliable)
            ~rng:(Sim.Rng.split rng)
        in
        let cluster =
          Cbcast.Cluster.create ~n ~k ~engine ~fault ~rng:(Sim.Rng.split rng) ()
        in
        let produced = ref 0 in
        Cbcast.Cluster.on_round cluster (fun ~round:_ ->
            if !produced < 60 then
              List.iter
                (fun node ->
                  if Sim.Rng.bool rng 0.4 then begin
                    incr produced;
                    Cbcast.Cluster.submit cluster node !produced
                  end)
                (Net.Node_id.group n));
        Cbcast.Cluster.start cluster;
        Sim.Engine.run engine ~until:(Sim.Ticks.of_rtd 80.0);
        (* A view excluding both crashed processes must eventually install at
           every survivor. *)
        let survivors = List.init 6 (fun i -> i + 1) in
        let final_views =
          List.filter
            (fun (vc : Cbcast.Cluster.view_change) ->
              (not vc.members.(7)) && not vc.members.(0))
            (Cbcast.Cluster.view_changes cluster)
        in
        let installed_at =
          List.sort_uniq compare
            (List.map
               (fun (vc : Cbcast.Cluster.view_change) ->
                 Net.Node_id.to_int vc.at_node)
               final_views)
        in
        Alcotest.(check (list int)) "all survivors installed it" survivors
          installed_at;
        (* And the system recovered: survivors agree on delivered vectors. *)
        let vts =
          List.map
            (fun i ->
              Cbcast.Member.delivered_vt
                (Cbcast.Cluster.member cluster (node i)))
            survivors
        in
        match vts with
        | first :: rest ->
            Alcotest.(check bool) "vectors agree" true
              (List.for_all (fun vt -> Cbcast.Vclock.equal vt first) rest)
        | [] -> Alcotest.fail "no survivors");
  ]

let psync_member_tests =
  [
    Alcotest.test_case "missing predecessor triggers a retransmission request"
      `Quick (fun () ->
        let m : string Psync.Member.t =
          Psync.Member.create ~n:4 ~k:2 (node 1)
        in
        let dangling =
          {
            Psync.Context_graph.mid = { sender = node 2; seq = 2 };
            preds = [ { Psync.Context_graph.sender = node 2; seq = 1 } ];
            payload = "x";
            payload_size = 1;
          }
        in
        ignore (Psync.Member.handle m ~subrun:0 ~from:(node 2) (Psync.Wire.Msg dangling));
        Alcotest.(check int) "pending" 1 (Psync.Member.pending m);
        let actions = Psync.Member.on_round m ~subrun:1 in
        let req =
          List.find_map
            (function
              | Psync.Member.Unicast (dst, Psync.Wire.Retrans_req { wanted; _ })
                ->
                  Some (dst, wanted)
              | _ -> None)
            actions
        in
        match req with
        | Some (dst, wanted) ->
            Alcotest.(check int) "asks the sender" 2 (Net.Node_id.to_int dst);
            Alcotest.(check int) "for seq 1" 1 wanted.Psync.Context_graph.seq
        | None -> Alcotest.fail "no retransmission request");
    Alcotest.test_case "retransmission target rotates after K failures" `Quick
      (fun () ->
        let m : string Psync.Member.t =
          Psync.Member.create ~n:4 ~k:2 (node 1)
        in
        let dangling =
          {
            Psync.Context_graph.mid = { sender = node 2; seq = 2 };
            preds = [ { Psync.Context_graph.sender = node 2; seq = 1 } ];
            payload = "x";
            payload_size = 1;
          }
        in
        ignore (Psync.Member.handle m ~subrun:0 ~from:(node 2) (Psync.Wire.Msg dangling));
        let targets = ref [] in
        for s = 1 to 6 do
          List.iter
            (function
              | Psync.Member.Unicast (dst, Psync.Wire.Retrans_req _) ->
                  targets := Net.Node_id.to_int dst :: !targets
              | _ -> ())
            (Psync.Member.on_round m ~subrun:s)
        done;
        let distinct = List.sort_uniq compare !targets in
        Alcotest.(check bool) "asked more than one process" true
          (List.length distinct > 1));
    Alcotest.test_case "retrans_req answered from the graph" `Quick (fun () ->
        let m : string Psync.Member.t =
          Psync.Member.create ~n:4 ~k:2 (node 2)
        in
        Psync.Member.submit m "mine";
        ignore (Psync.Member.on_round m ~subrun:0);
        let actions =
          Psync.Member.handle m ~subrun:1 ~from:(node 1)
            (Psync.Wire.Retrans_req
               {
                 requester = node 1;
                 wanted = { Psync.Context_graph.sender = node 2; seq = 1 };
               })
        in
        Alcotest.(check bool) "replied" true
          (List.exists
             (function
               | Psync.Member.Unicast (dst, Psync.Wire.Retrans_reply _) ->
                   Net.Node_id.to_int dst = 1
               | _ -> false)
             actions));
    Alcotest.test_case "mask_out handshake excludes the target" `Quick
      (fun () ->
        let m : string Psync.Member.t =
          Psync.Member.create ~n:4 ~k:2 (node 1)
        in
        (* Initiator p0 announces the exclusion of p3. *)
        let actions =
          Psync.Member.handle m ~subrun:5 ~from:(node 0)
            (Psync.Wire.Mask_out { target = node 3; initiator = node 0 })
        in
        Alcotest.(check bool) "acked" true
          (List.exists
             (function
               | Psync.Member.Unicast (dst, Psync.Wire.Mask_ack _) ->
                   Net.Node_id.to_int dst = 0
               | _ -> false)
             actions);
        Alcotest.(check bool) "blocked while agreeing" true
          (Psync.Member.masking m);
        ignore
          (Psync.Member.handle m ~subrun:6 ~from:(node 0)
             (Psync.Wire.Mask_done { target = node 3 }));
        Alcotest.(check bool) "unblocked" false (Psync.Member.masking m);
        Alcotest.(check bool) "p3 out" false (Psync.Member.participants m).(3));
    Alcotest.test_case "being masked out halts the member" `Quick (fun () ->
        let m : string Psync.Member.t =
          Psync.Member.create ~n:4 ~k:2 (node 3)
        in
        ignore
          (Psync.Member.handle m ~subrun:5 ~from:(node 0)
             (Psync.Wire.Mask_out { target = node 3; initiator = node 0 }));
        Alcotest.(check bool) "inactive" false (Psync.Member.active m);
        Alcotest.(check int) "silent afterwards" 0
          (List.length (Psync.Member.on_round m ~subrun:6)));
  ]

let recover_cap_tests =
  [
    Alcotest.test_case "urcgc recover replies are capped per PDU" `Quick
      (fun () ->
        let config = Urcgc.Config.make ~n:3 ~k:2 () in
        let m : int Urcgc.Member.t = Urcgc.Member.create config (node 2) in
        for s = 1 to 100 do
          ignore
            (Urcgc.Member.handle m
               (Urcgc.Wire.Data
                  (Causal.Causal_msg.make
                     ~mid:(Causal.Mid.make ~origin:(node 0) ~seq:s)
                     ~deps:[] ~payload_size:8 s)))
        done;
        let actions =
          Urcgc.Member.handle m
            (Urcgc.Wire.Recover_req
               { requester = node 1; origin = node 0; from_seq = 1; to_seq = 100 })
        in
        match
          List.find_map
            (function
              | Urcgc.Member.Send (_, Urcgc.Wire.Recover_reply r) -> Some r
              | _ -> None)
            actions
        with
        | Some reply ->
            Alcotest.(check int) "64 messages max" 64
              (List.length reply.Urcgc.Wire.messages)
        | None -> Alcotest.fail "no reply");
  ]

let suite =
  [
    ("cbcast.takeover", cbcast_takeover_tests);
    ("psync.member", psync_member_tests);
    ("urcgc.recover_cap", recover_cap_tests);
  ]
