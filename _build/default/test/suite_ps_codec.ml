(* Psync codec tests: size model equality, roundtrips, fuzz. *)

let node n = Net.Node_id.of_int n
let payload = Net.Bytebuf.string_codec
let mid s q = { Psync.Context_graph.sender = node s; seq = q }

let cg ?(preds = []) s q text =
  {
    Psync.Context_graph.mid = mid s q;
    preds;
    payload = text;
    payload_size = String.length text;
  }

let bodies : string Psync.Wire.body list =
  [
    Psync.Wire.Msg (cg ~preds:[ mid 0 1; mid 2 4 ] 1 2 "stroke");
    Psync.Wire.Msg (cg 3 1 "");
    Psync.Wire.Retrans_req { requester = node 2; wanted = mid 0 9 };
    Psync.Wire.Retrans_reply (cg ~preds:[ mid 1 1 ] 0 2 "again");
    Psync.Wire.Keepalive;
    Psync.Wire.Mask_out { target = node 3; initiator = node 0 };
    Psync.Wire.Mask_ack { target = node 3 };
    Psync.Wire.Mask_done { target = node 3 };
  ]

let tests =
  [
    Alcotest.test_case "encoded length equals Wire.body_size" `Quick (fun () ->
        List.iter
          (fun body ->
            Alcotest.(check int)
              (Format.asprintf "%a" Psync.Wire.pp_body body)
              (Psync.Wire.body_size body)
              (Bytes.length (Psync.Ps_codec.encode_body payload body)))
          bodies);
    Alcotest.test_case "every PDU roundtrips to identical bytes" `Quick
      (fun () ->
        List.iter
          (fun body ->
            let raw = Psync.Ps_codec.encode_body payload body in
            match Psync.Ps_codec.decode_body payload raw with
            | Error e -> Alcotest.failf "decode: %s" e
            | Ok decoded ->
                Alcotest.(check bool)
                  (Format.asprintf "%a" Psync.Wire.pp_body body)
                  true
                  (Bytes.equal raw
                     (Psync.Ps_codec.encode_body payload decoded)))
          bodies);
    Alcotest.test_case "predecessors survive the roundtrip" `Quick (fun () ->
        let body = Psync.Wire.Msg (cg ~preds:[ mid 0 1; mid 2 4 ] 1 2 "s") in
        match
          Psync.Ps_codec.decode_body payload
            (Psync.Ps_codec.encode_body payload body)
        with
        | Ok (Psync.Wire.Msg node) ->
            Alcotest.(check int) "2 preds" 2
              (List.length node.Psync.Context_graph.preds)
        | Ok _ -> Alcotest.fail "wrong variant"
        | Error e -> Alcotest.fail e);
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"psync decoder never raises on garbage"
         ~count:500
         (QCheck.make
            ~print:(fun b -> Printf.sprintf "%d bytes" (Bytes.length b))
            QCheck.Gen.(map Bytes.of_string (string_size (int_bound 120))))
         (fun raw ->
           match Psync.Ps_codec.decode_body payload raw with
           | Ok _ | Error _ -> true));
  ]

let suite = [ ("ps_codec", tests) ]
