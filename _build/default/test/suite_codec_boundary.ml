(* The protocol running over its own wire format: every PDU is encoded to
   bytes and decoded again in flight.  A full scenario over this boundary
   must behave exactly like the direct run (the simulator is deterministic,
   so "exactly" means identical delivery logs). *)

let node n = Net.Node_id.of_int n

let run_cluster ~with_codec ~fault_spec ~seed =
  let n = 6 and k = 3 in
  let engine = Sim.Engine.create () in
  let rng = Sim.Rng.create ~seed in
  let fault = Net.Fault.create fault_spec ~rng:(Sim.Rng.split rng) in
  let net = Net.Netsim.create engine ~fault ~rng:(Sim.Rng.split rng) () in
  let medium =
    let base = Urcgc.Medium.of_netsim net in
    if with_codec then
      Urcgc.Medium.with_codec Urcgc.Wire_codec.string_payload base
    else base
  in
  let config = Urcgc.Config.make ~k ~n () in
  let cluster = Urcgc.Cluster.create_with_medium ~config ~medium () in
  let produced = ref 0 in
  Urcgc.Cluster.on_round cluster (fun ~round:_ ->
      List.iter
        (fun nd ->
          if !produced < 40 && Sim.Rng.bool rng 0.5 then begin
            incr produced;
            (* String payloads whose length always matches the declared
               payload size. *)
            let text = Printf.sprintf "message-%04d" !produced in
            Urcgc.Cluster.submit ~size:(String.length text) cluster nd text
          end)
        (Net.Node_id.group n));
  Urcgc.Cluster.start cluster;
  Sim.Engine.run engine ~until:(Sim.Ticks.of_rtd 40.0);
  List.map
    (fun { Urcgc.Cluster.node; msg; at } ->
      ( Net.Node_id.to_int node,
        Format.asprintf "%a" Causal.Mid.pp msg.Causal.Causal_msg.mid,
        msg.Causal.Causal_msg.payload,
        Sim.Ticks.to_int at ))
    (Urcgc.Cluster.deliveries cluster)

let tests =
  [
    Alcotest.test_case
      "a reliable run over the codec boundary is byte-for-byte identical"
      `Slow (fun () ->
        let direct =
          run_cluster ~with_codec:false ~fault_spec:Net.Fault.reliable ~seed:3
        in
        let boundary =
          run_cluster ~with_codec:true ~fault_spec:Net.Fault.reliable ~seed:3
        in
        Alcotest.(check int) "same delivery count" (List.length direct)
          (List.length boundary);
        Alcotest.(check bool) "identical logs" true (direct = boundary));
    Alcotest.test_case
      "a faulty run (crash + omission) over the codec boundary is identical"
      `Slow (fun () ->
        let fault_spec =
          Net.Fault.with_crashes
            [ (node 2, Sim.Ticks.of_int 401) ]
            (Net.Fault.omission_every 120)
        in
        let direct = run_cluster ~with_codec:false ~fault_spec ~seed:8 in
        let boundary = run_cluster ~with_codec:true ~fault_spec ~seed:8 in
        Alcotest.(check bool) "identical logs" true (direct = boundary);
        Alcotest.(check bool) "nontrivial run" true (List.length direct > 100));
  ]

let suite = [ ("codec.boundary", tests) ]
