(* Tests for the urgc total-order companion algorithm: the pure sequencing
   coordinator and end-to-end total-order runs. *)

let node n = Net.Node_id.of_int n
let mid o s = Causal.Mid.make ~origin:(node o) ~seq:s

let request ?(unsequenced = []) ?(processed = 0) ?prev ~sender ~subrun n =
  {
    Urgc.Total_wire.sender = node sender;
    subrun;
    unsequenced;
    processed_upto = processed;
    prev_decision = Option.value prev ~default:(Urgc.Total_decision.initial ~n);
  }

let coordinator_tests =
  [
    Alcotest.test_case "assigns reported mids in deterministic order" `Quick
      (fun () ->
        let d =
          Urgc.Total_coordinator.compute ~n:3 ~k:2 ~subrun:0
            ~coordinator:(node 0)
            ~prev:(Urgc.Total_decision.initial ~n:3)
            ~requests:
              [
                request ~sender:0 ~subrun:0 ~unsequenced:[ mid 2 1; mid 0 1 ] 3;
                request ~sender:1 ~subrun:0 ~unsequenced:[ mid 1 1; mid 2 1 ] 3;
              ]
        in
        Alcotest.(check int) "3 assigned" 4 d.Urgc.Total_decision.next_seq;
        let mids =
          Array.to_list d.Urgc.Total_decision.assignments
          |> List.map (fun m -> Net.Node_id.to_int (Causal.Mid.origin m))
        in
        (* Deduplicated and in mid order. *)
        Alcotest.(check (list int)) "mid order" [ 0; 1; 2 ] mids);
    Alcotest.test_case "already-assigned mids are not reassigned" `Quick
      (fun () ->
        let prev =
          Urgc.Total_coordinator.compute ~n:3 ~k:2 ~subrun:0
            ~coordinator:(node 0)
            ~prev:(Urgc.Total_decision.initial ~n:3)
            ~requests:[ request ~sender:0 ~subrun:0 ~unsequenced:[ mid 2 1 ] 3 ]
        in
        let d =
          Urgc.Total_coordinator.compute ~n:3 ~k:2 ~subrun:1
            ~coordinator:(node 1) ~prev
            ~requests:[ request ~sender:1 ~subrun:1 ~unsequenced:[ mid 2 1 ] 3 ]
        in
        Alcotest.(check int) "still one binding" 2 d.Urgc.Total_decision.next_seq);
    Alcotest.test_case "stability trims the window on full coverage" `Quick
      (fun () ->
        let prev =
          Urgc.Total_coordinator.compute ~n:2 ~k:2 ~subrun:0
            ~coordinator:(node 0)
            ~prev:(Urgc.Total_decision.initial ~n:2)
            ~requests:
              [
                request ~sender:0 ~subrun:0
                  ~unsequenced:[ mid 0 1; mid 1 1; mid 0 2 ]
                  2;
                request ~sender:1 ~subrun:0 2;
              ]
        in
        Alcotest.(check int) "window 3" 3
          (Array.length prev.Urgc.Total_decision.assignments);
        let d =
          Urgc.Total_coordinator.compute ~n:2 ~k:2 ~subrun:1
            ~coordinator:(node 1) ~prev
            ~requests:
              [
                request ~sender:0 ~subrun:1 ~processed:2 2;
                request ~sender:1 ~subrun:1 ~processed:3 2;
              ]
        in
        Alcotest.(check int) "stable 2" 2 d.Urgc.Total_decision.stable_seq;
        Alcotest.(check int) "window trimmed" 1
          (Array.length d.Urgc.Total_decision.assignments);
        Alcotest.(check int) "head at 3" 3 d.Urgc.Total_decision.first_assigned;
        Alcotest.(check (option unit)) "seq 3 still resolvable" (Some ())
          (Option.map (fun _ -> ()) (Urgc.Total_decision.assignment d 3));
        Alcotest.(check (option unit)) "seq 2 dropped" None
          (Option.map (fun _ -> ()) (Urgc.Total_decision.assignment d 2)));
    Alcotest.test_case "silent process is declared crashed after K" `Quick
      (fun () ->
        let prev = ref (Urgc.Total_decision.initial ~n:3) in
        for s = 0 to 1 do
          prev :=
            Urgc.Total_coordinator.compute ~n:3 ~k:2 ~subrun:s
              ~coordinator:(node 0) ~prev:!prev
              ~requests:
                [ request ~sender:0 ~subrun:s 3; request ~sender:1 ~subrun:s 3 ]
        done;
        Alcotest.(check bool) "p2 out" false !prev.Urgc.Total_decision.alive.(2));
  ]

(* -- end-to-end --------------------------------------------------------- *)

let run_urgc ?(n = 6) ?(k = 3) ?(rate = 0.5) ?(messages = 50)
    ?(fault = Net.Fault.reliable) ?(seed = 42) ?(max_rtd = 120.0) () =
  let engine = Sim.Engine.create () in
  let rng = Sim.Rng.create ~seed in
  let fault = Net.Fault.create fault ~rng:(Sim.Rng.split rng) in
  let net = Net.Netsim.create engine ~fault ~rng:(Sim.Rng.split rng) () in
  let cluster = Urgc.Cluster.create ~n ~k ~net () in
  let produced = ref 0 in
  Urgc.Cluster.on_round cluster (fun ~round:_ ->
      List.iter
        (fun node ->
          if !produced < messages && Sim.Rng.bool rng rate then begin
            incr produced;
            Urgc.Cluster.submit cluster node !produced
          end)
        (Net.Node_id.group n));
  Urgc.Cluster.start cluster;
  let max_ticks = Sim.Ticks.of_rtd max_rtd in
  let rtd = Sim.Ticks.of_int Sim.Ticks.per_rtd in
  let rec advance () =
    let now = Sim.Engine.now engine in
    if Sim.Ticks.(now >= max_ticks) then ()
    else begin
      Sim.Engine.run engine ~until:(Sim.Ticks.add now rtd);
      if !produced >= messages && Urgc.Cluster.quiescent cluster then ()
      else advance ()
    end
  in
  advance ();
  (engine, cluster)

let crash_spec crashes =
  Net.Fault.with_crashes
    (List.map
       (fun (i, subrun) ->
         (node i, Sim.Ticks.of_int ((subrun * Sim.Ticks.per_rtd) + 1)))
       crashes)
    Net.Fault.reliable

let e2e_tests =
  [
    Alcotest.test_case "reliable run: total order everywhere" `Slow (fun () ->
        let _, cluster = run_urgc () in
        Alcotest.(check bool) "total order" true
          (Urgc.Cluster.total_order_ok cluster);
        Alcotest.(check int) "everything processed everywhere" (50 * 6)
          (List.length (Urgc.Cluster.deliveries cluster)));
    Alcotest.test_case "total order survives omissions" `Slow (fun () ->
        let _, cluster =
          run_urgc ~fault:(Net.Fault.omission_every 100) ~messages:60 ()
        in
        Alcotest.(check bool) "total order" true
          (Urgc.Cluster.total_order_ok cluster));
    Alcotest.test_case "total order survives a crash" `Slow (fun () ->
        let _, cluster = run_urgc ~fault:(crash_spec [ (2, 4) ]) () in
        Alcotest.(check bool) "total order" true
          (Urgc.Cluster.total_order_ok cluster);
        (* survivors agree on the same processed count *)
        let actives = Urgc.Cluster.active_members cluster in
        let counts =
          List.map
            (fun node ->
              Urgc.Member.processed_upto (Urgc.Cluster.member cluster node))
            actives
        in
        match counts with
        | first :: rest ->
            Alcotest.(check bool) "agree" true
              (List.for_all (fun c -> c = first) rest)
        | [] -> Alcotest.fail "no actives");
    Alcotest.test_case
      "total order costs service time: urgc D exceeds urcgc D" `Slow
      (fun () ->
        (* Same workload through both algorithms; the causal service
           processes at reception (~0.45 rtd) while the total-order service
           must wait for the sequencing decision (>= ~1 rtd). *)
        let _, cluster = run_urgc ~seed:7 () in
        let sent_at = Hashtbl.create 64 in
        List.iter
          (fun (mid, at) -> Hashtbl.replace sent_at mid at)
          (Urgc.Cluster.generations cluster);
        let delays =
          List.filter_map
            (fun { Urgc.Cluster.data; at; _ } ->
              Option.map
                (fun t0 -> Sim.Ticks.to_rtd (Sim.Ticks.diff at t0))
                (Hashtbl.find_opt sent_at data.Urgc.Total_wire.mid))
            (Urgc.Cluster.deliveries cluster)
        in
        let urgc_mean =
          List.fold_left ( +. ) 0.0 delays /. float_of_int (List.length delays)
        in
        let config = Urcgc.Config.make ~k:3 ~n:6 () in
        let load = Workload.Load.make ~rate:0.5 ~total_messages:50 () in
        let scenario =
          Workload.Scenario.make ~name:"urcgc-cmp" ~seed:7 ~max_rtd:120.0
            ~config ~load ()
        in
        let urcgc_report = Workload.Runner.run scenario in
        let urcgc_mean = Workload.Runner.mean_delay_rtd urcgc_report in
        Alcotest.(check bool) "urgc at least 1.5x slower service" true
          (urgc_mean > 1.5 *. urcgc_mean));
  ]

(* Random scenarios: the total-order clause must hold across seeds, fault
   mixes and group sizes. *)
let e2e_property =
  QCheck.Test.make ~name:"urgc total order holds on random scenarios"
    ~count:10
    QCheck.(triple (int_range 3 7) (int_range 1 1_000_000) (int_bound 1))
    (fun (n, seed, faulty) ->
      let fault =
        if faulty = 1 then
          Net.Fault.with_crashes
            [ (node (n - 1), Sim.Ticks.of_int ((4 * Sim.Ticks.per_rtd) + 1)) ]
            (Net.Fault.omission_every 200)
        else Net.Fault.reliable
      in
      let _, cluster = run_urgc ~n ~fault ~seed ~messages:30 () in
      Urgc.Cluster.total_order_ok cluster)

let suite =
  [
    ("urgc.coordinator", coordinator_tests);
    ("urgc.e2e", e2e_tests @ [ QCheck_alcotest.to_alcotest e2e_property ]);
  ]
