(* Decoder fuzzing: arbitrary byte strings must never raise — hostile input
   yields [Error] and nothing else.  This is the property that lets a
   protocol entity sit directly on an untrusted datagram socket. *)

let payload = Net.Bytebuf.string_codec

let random_bytes =
  QCheck.Gen.(map Bytes.of_string (string_size (int_bound 200)))

let arbitrary_bytes =
  QCheck.make
    ~print:(fun b -> Printf.sprintf "%d bytes" (Bytes.length b))
    random_bytes

let never_raises name decode =
  QCheck.Test.make ~name ~count:500 arbitrary_bytes (fun raw ->
      match decode raw with Ok _ | Error _ -> true)

let urcgc_fuzz =
  never_raises "urcgc decoder never raises on garbage" (fun raw ->
      Urcgc.Wire_codec.decode_body payload ~n:7 raw)

let cbcast_fuzz =
  never_raises "cbcast decoder never raises on garbage" (fun raw ->
      Cbcast.Cb_codec.decode_body payload ~n:7 raw)

(* Mutation fuzzing: take a VALID encoding and flip one byte anywhere; the
   decoder must still never raise (it may accept a different valid value). *)
let mutation_gen =
  QCheck.Gen.(
    let body =
      Urcgc.Wire_codec.encode_body payload
        (Urcgc.Wire.Request
           {
             sender = Net.Node_id.of_int 2;
             subrun = 5;
             last_processed = Array.init 7 (fun i -> i);
             waiting = Array.make 7 None;
             prev_decision = Urcgc.Decision.initial ~n:7;
           })
    in
    map2
      (fun pos value ->
        let raw = Bytes.copy body in
        Bytes.set_uint8 raw (pos mod Bytes.length raw) value;
        raw)
      small_nat (int_bound 255))

let mutation_fuzz =
  QCheck.Test.make ~name:"urcgc decoder survives single-byte mutations"
    ~count:500
    (QCheck.make
       ~print:(fun b -> Printf.sprintf "%d bytes" (Bytes.length b))
       mutation_gen)
    (fun raw ->
      match Urcgc.Wire_codec.decode_body payload ~n:7 raw with
      | Ok _ | Error _ -> true)

let cb_mutation_gen =
  QCheck.Gen.(
    let body =
      Cbcast.Cb_codec.encode_body payload
        (Cbcast.Cb_wire.Flush_unstable
           {
             view_id = 3;
             sender = Net.Node_id.of_int 1;
             msgs =
               [
                 {
                   Cbcast.Cb_wire.sender = Net.Node_id.of_int 1;
                   view_id = 3;
                   vt = Cbcast.Vclock.of_array [| 1; 2; 3; 4; 5; 6; 7 |];
                   payload = "zzz";
                   payload_size = 3;
                 };
               ];
           })
    in
    map2
      (fun pos value ->
        let raw = Bytes.copy body in
        Bytes.set_uint8 raw (pos mod Bytes.length raw) value;
        raw)
      small_nat (int_bound 255))

let cb_mutation_fuzz =
  QCheck.Test.make ~name:"cbcast decoder survives single-byte mutations"
    ~count:500
    (QCheck.make
       ~print:(fun b -> Printf.sprintf "%d bytes" (Bytes.length b))
       cb_mutation_gen)
    (fun raw ->
      match Cbcast.Cb_codec.decode_body payload ~n:7 raw with
      | Ok _ | Error _ -> true)

let suite =
  [
    ( "fuzz.decoders",
      List.map QCheck_alcotest.to_alcotest
        [ urcgc_fuzz; cbcast_fuzz; mutation_fuzz; cb_mutation_fuzz ] );
  ]
