(* Tests for the Section 3 group structures: diffusion groups (passive
   clients fed by the servers' multicasts) and client-server groups (reply
   management on top of uniform processing). *)

let node n = Net.Node_id.of_int n

let build_cluster ?(n = 4) ?(k = 2) ?(fault = Net.Fault.reliable) ?(seed = 31)
    () =
  let engine = Sim.Engine.create () in
  let rng = Sim.Rng.create ~seed in
  let fault = Net.Fault.create fault ~rng:(Sim.Rng.split rng) in
  let net = Net.Netsim.create engine ~fault ~rng:(Sim.Rng.split rng) () in
  let config = Urcgc.Config.make ~k ~n () in
  let cluster = Urcgc.Cluster.create ~config ~net () in
  (engine, net, cluster)

let diffusion_tests =
  [
    Alcotest.test_case "clients receive the full stream in causal order"
      `Quick (fun () ->
        let engine, net, cluster = build_cluster () in
        let diffusion =
          Groups.Diffusion.attach_clients cluster ~net
            ~client_ids:[ node 10; node 11 ]
        in
        Urcgc.Cluster.start cluster;
        for i = 1 to 3 do
          Urcgc.Cluster.submit cluster (node 0) (Printf.sprintf "a%d" i);
          Urcgc.Cluster.submit cluster (node 1) (Printf.sprintf "b%d" i)
        done;
        Sim.Engine.run engine ~until:(Sim.Ticks.of_rtd 8.0);
        List.iter
          (fun client ->
            Alcotest.(check int) "all 6 processed" 6
              (Groups.Diffusion.processed_count client);
            (* per-origin order respected *)
            let seqs origin =
              List.filter_map
                (fun (mid, _) ->
                  if Net.Node_id.equal (Causal.Mid.origin mid) origin then
                    Some (Causal.Mid.seq mid)
                  else None)
                (Groups.Diffusion.processed client)
            in
            Alcotest.(check (list int)) "p0 in order" [ 1; 2; 3 ]
              (seqs (node 0));
            Alcotest.(check (list int)) "p1 in order" [ 1; 2; 3 ]
              (seqs (node 1)))
          (Groups.Diffusion.clients diffusion));
    Alcotest.test_case "clients recover losses from the servers' histories"
      `Quick (fun () ->
        let engine, net, cluster = build_cluster () in
        let diffusion =
          Groups.Diffusion.attach_clients cluster ~net ~client_ids:[ node 10 ]
        in
        (* Lose the first copy of everything sent to the client. *)
        let dropped = Hashtbl.create 16 in
        Net.Netsim.set_filter net
          (Some
             (fun packet ->
               match packet.Net.Netsim.payload with
               | Urcgc.Wire.Data msg
                 when Net.Node_id.to_int packet.dst = 10 ->
                   let key = msg.Causal.Causal_msg.mid in
                   if Hashtbl.mem dropped key then true
                   else begin
                     Hashtbl.replace dropped key ();
                     false
                   end
               | _ -> true));
        Urcgc.Cluster.start cluster;
        for i = 1 to 4 do
          Urcgc.Cluster.submit cluster (node 0) i
        done;
        Sim.Engine.run engine ~until:(Sim.Ticks.of_rtd 15.0);
        let client = Groups.Diffusion.client diffusion (node 10) in
        Alcotest.(check int) "recovered everything" 4
          (Groups.Diffusion.processed_count client);
        Alcotest.(check int) "nothing stuck waiting" 0
          (Groups.Diffusion.waiting_length client));
    Alcotest.test_case "client ids inside the group are rejected" `Quick
      (fun () ->
        let _, net, cluster = build_cluster () in
        Alcotest.(check bool) "raises" true
          (try
             ignore
               (Groups.Diffusion.attach_clients cluster ~net
                  ~client_ids:[ node 2 ]);
             false
           with Invalid_argument _ -> true));
    Alcotest.test_case "orphan purge reaches diffusion clients" `Slow
      (fun () ->
        (* Same staging as the member-level orphan test: m1 lost everywhere,
           p3 crashes; the client must discard m2 with the group. *)
        let fault =
          Net.Fault.with_crashes
            [ (node 3, Sim.Ticks.of_int 60) ]
            Net.Fault.reliable
        in
        let engine, net, cluster = build_cluster ~k:1 ~fault () in
        let diffusion =
          Groups.Diffusion.attach_clients cluster ~net ~client_ids:[ node 10 ]
        in
        Net.Netsim.set_filter net
          (Some
             (fun packet ->
               match packet.Net.Netsim.payload with
               | Urcgc.Wire.Data msg ->
                   not
                     (Causal.Mid.equal msg.Causal.Causal_msg.mid
                        (Causal.Mid.make ~origin:(node 3) ~seq:1))
               | _ -> true));
        Urcgc.Cluster.submit cluster (node 3) 1;
        Urcgc.Cluster.submit cluster (node 3) 2;
        Urcgc.Cluster.start cluster;
        Sim.Engine.run engine ~until:(Sim.Ticks.of_rtd 20.0);
        let client = Groups.Diffusion.client diffusion (node 10) in
        Alcotest.(check int) "client waiting list purged" 0
          (Groups.Diffusion.waiting_length client);
        Alcotest.(check int) "nothing of p3 processed" 0
          (Groups.Diffusion.last_processed client (node 3)));
  ]

let client_server_tests =
  [
    Alcotest.test_case "request -> group processing -> reply" `Quick (fun () ->
        let engine, net, cluster = build_cluster () in
        let service = Groups.Client_server.create cluster ~net () in
        let client =
          Groups.Client_server.connect service ~client_id:(node 20)
            ~server:(node 1) ()
        in
        Urcgc.Cluster.start cluster;
        let id1 = Groups.Client_server.submit client "credit 10" in
        let id2 = Groups.Client_server.submit client "debit 4" in
        Sim.Engine.run engine ~until:(Sim.Ticks.of_rtd 8.0);
        let replies = Groups.Client_server.replies client in
        (* Two requests fired in the same instant race on the edge network;
           both must be answered, but their mutual order is not promised. *)
        Alcotest.(check (list int)) "both replied" [ id1; id2 ]
          (List.sort compare (List.map fst replies));
        Alcotest.(check bool) "served by the contacted server" true
          (List.for_all (fun (_, s) -> Net.Node_id.to_int s = 1) replies);
        Alcotest.(check int) "nothing outstanding" 0
          (Groups.Client_server.outstanding client);
        (* The request reached every server (uniform processing). *)
        List.iter
          (fun member ->
            Alcotest.(check int) "2 requests processed" 2
              (Urcgc.Member.processed_count member))
          (Urcgc.Cluster.members cluster));
    Alcotest.test_case "server crash: client fails over and still gets a reply"
      `Slow (fun () ->
        (* p1 crashes immediately; the request times out at the client and is
           reissued to p2, which multicasts it and replies. *)
        let fault =
          Net.Fault.with_crashes [ (node 1, Sim.Ticks.of_int 10) ]
            Net.Fault.reliable
        in
        let engine, net, cluster = build_cluster ~fault () in
        let service = Groups.Client_server.create cluster ~net () in
        let client =
          Groups.Client_server.connect service ~client_id:(node 20)
            ~retry_subruns:3 ~server:(node 1) ()
        in
        Urcgc.Cluster.start cluster;
        let id = Groups.Client_server.submit client "important" in
        Sim.Engine.run engine ~until:(Sim.Ticks.of_rtd 25.0);
        Alcotest.(check bool) "retried" true
          (Groups.Client_server.retries client >= 1);
        Alcotest.(check (list int)) "replied after failover" [ id ]
          (List.map fst (Groups.Client_server.replies client));
        Alcotest.(check int) "nothing outstanding" 0
          (Groups.Client_server.outstanding client));
    Alcotest.test_case "duplicate reissue does not double-process" `Quick
      (fun () ->
        (* Slow reply (lost on the edge): client reissues to the same group;
           request id dedup means the group processes the body once. *)
        let engine, net, cluster = build_cluster () in
        let service = Groups.Client_server.create cluster ~net () in
        let client =
          Groups.Client_server.connect service ~client_id:(node 20)
            ~retry_subruns:2 ~server:(node 1) ()
        in
        Urcgc.Cluster.start cluster;
        ignore (Groups.Client_server.submit client "once");
        (* Let it complete, then reissue manually by submitting the same id?
           Not reachable through the API; instead check the group count under
           normal operation stays 1 per request even with a retry window so
           short that a retry fires while the first copy is in flight. *)
        Sim.Engine.run engine ~until:(Sim.Ticks.of_rtd 12.0);
        let counts =
          List.map Urcgc.Member.processed_count (Urcgc.Cluster.members cluster)
        in
        List.iter (fun c -> Alcotest.(check int) "processed once" 1 c) counts);
  ]

let suite =
  [
    ("groups.diffusion", diffusion_tests);
    ("groups.client_server", client_server_tests);
  ]
