(* Degenerate group sizes and flow-control hysteresis: the corners where
   vector-indexed protocols usually break. *)

let node n = Net.Node_id.of_int n

let run ?(n = 2) ?(k = 2) ?(rate = 0.6) ?(messages = 20) ?flow_threshold
    ?(fault = Net.Fault.reliable) ?(seed = 42) () =
  let config = Urcgc.Config.make ~k ?flow_threshold ~n () in
  let load = Workload.Load.make ~rate ~total_messages:messages () in
  let scenario =
    Workload.Scenario.make ~name:"small" ~fault ~seed ~max_rtd:120.0 ~config
      ~load ()
  in
  Workload.Runner.run scenario

let small_group_tests =
  [
    Alcotest.test_case "a singleton group talks to itself" `Quick (fun () ->
        let report = run ~n:1 ~k:1 ~messages:10 () in
        Alcotest.(check bool) "invariants" true
          (Workload.Checker.ok report.Workload.Runner.verdict);
        Alcotest.(check int) "generated all" 10 report.Workload.Runner.generated;
        (* Nothing is remote in a singleton group. *)
        Alcotest.(check int) "no remote deliveries" 0
          report.Workload.Runner.delivered_remote);
    Alcotest.test_case "a pair group works" `Quick (fun () ->
        let report = run ~n:2 () in
        Alcotest.(check bool) "invariants" true
          (Workload.Checker.ok report.Workload.Runner.verdict);
        Alcotest.(check int) "all cross-delivered" 20
          report.Workload.Runner.delivered_remote);
    Alcotest.test_case "a pair group survives one crash" `Quick (fun () ->
        let fault =
          Net.Fault.with_crashes
            [ (node 1, Sim.Ticks.of_int 401) ]
            Net.Fault.reliable
        in
        let report = run ~n:2 ~fault () in
        Alcotest.(check bool) "invariants" true
          (Workload.Checker.ok report.Workload.Runner.verdict);
        (* The survivor must keep making progress alone: its own later
           messages confirm and process locally. *)
        Alcotest.(check bool) "kept generating" true
          (report.Workload.Runner.generated > 5));
    Alcotest.test_case "n = 3 with omissions" `Quick (fun () ->
        let report =
          run ~n:3 ~fault:(Net.Fault.omission_every 60) ~messages:40 ()
        in
        Alcotest.(check bool) "invariants" true
          (Workload.Checker.ok report.Workload.Runner.verdict));
  ]

let flow_tests =
  [
    Alcotest.test_case "flow control resumes after the history is purged"
      `Quick (fun () ->
        (* Threshold 4 with a fast group: generation must block and unblock
           repeatedly, and still everything flows through. *)
        let report =
          run ~n:3 ~k:2 ~rate:1.0 ~messages:30 ~flow_threshold:(Some 4) ()
        in
        Alcotest.(check bool) "invariants" true
          (Workload.Checker.ok report.Workload.Runner.verdict);
        Alcotest.(check int) "everything eventually generated" 30
          report.Workload.Runner.generated;
        Alcotest.(check int) "everything delivered" 60
          report.Workload.Runner.delivered_remote;
        Alcotest.(check bool) "the bound held (with one subrun of slack)" true
          (report.Workload.Runner.history_peak <= 4 + 6));
    Alcotest.test_case "member flow flag toggles off below the threshold"
      `Quick (fun () ->
        let config = Urcgc.Config.make ~n:3 ~k:2 ~flow_threshold:(Some 2) () in
        let m : string Urcgc.Member.t =
          Urcgc.Member.create config (node 1)
        in
        let mid o s = Causal.Mid.make ~origin:(node o) ~seq:s in
        List.iter
          (fun s ->
            ignore
              (Urcgc.Member.handle m
                 (Urcgc.Wire.Data
                    (Causal.Causal_msg.make ~mid:(mid 0 s) ~deps:[]
                       ~payload_size:1 "x"))))
          [ 1; 2 ];
        Urcgc.Member.submit m "blocked";
        ignore (Urcgc.Member.begin_subrun m ~subrun:0);
        Alcotest.(check bool) "blocked at threshold" true
          (Urcgc.Member.flow_blocked m);
        (* A full-group decision purges the history; the next round must
           unblock and send. *)
        let d0 = Urcgc.Decision.initial ~n:3 in
        let d =
          {
            d0 with
            Urcgc.Decision.subrun = 0;
            full_group = true;
            stable = [| 2; 0; 0 |];
          }
        in
        ignore (Urcgc.Member.handle m (Urcgc.Wire.Decision_pdu d));
        let actions = Urcgc.Member.mid_subrun m ~subrun:0 in
        Alcotest.(check bool) "unblocked and sent" true
          (List.exists
             (function
               | Urcgc.Member.Broadcast (Urcgc.Wire.Data _) -> true
               | _ -> false)
             actions);
        Alcotest.(check bool) "flag cleared" false (Urcgc.Member.flow_blocked m));
  ]

let suite =
  [ ("urcgc.small_groups", small_group_tests); ("urcgc.flow", flow_tests) ]
