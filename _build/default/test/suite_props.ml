(* Property tests of the agreement core: the coordinator's decision function
   must maintain its invariants for arbitrary request sets, and the decision
   chain must behave monotonically across subruns. *)

let node n = Net.Node_id.of_int n

(* Generator: a batch of requests for an n-process group, with arbitrary
   last_processed vectors, waiting entries, and sender subsets. *)
let request_gen n =
  QCheck.Gen.(
    let vector = array_size (return n) (int_bound 20) in
    let waiting_entry = opt (int_range 1 20) in
    let waiting = array_size (return n) waiting_entry in
    let request sender =
      map2
        (fun last waiting ->
          {
            Urcgc.Wire.sender = node sender;
            subrun = 0;
            last_processed = last;
            waiting =
              Array.mapi
                (fun j w ->
                  Option.map (fun seq -> Causal.Mid.make ~origin:(node j) ~seq) w)
                waiting;
            prev_decision = Urcgc.Decision.initial ~n;
          })
        vector waiting
    in
    (* A random subset of senders, no duplicates. *)
    list_size (int_bound n) (int_bound (n - 1)) >>= fun senders ->
    let senders = List.sort_uniq compare senders in
    flatten_l (List.map request senders))

let arbitrary_requests n =
  QCheck.make
    ~print:(fun requests ->
      String.concat ", "
        (List.map
           (fun (r : Urcgc.Wire.request) ->
             Format.asprintf "%a" Net.Node_id.pp r.sender)
           requests))
    (request_gen n)

let n = 5
let config = Urcgc.Config.make ~n ~k:2 ()

let compute ?(prev = Urcgc.Decision.initial ~n) ?(subrun = 0) requests =
  Urcgc.Coordinator.compute ~config ~subrun ~coordinator:(node 0) ~prev
    ~requests

let coordinator_properties =
  [
    QCheck.Test.make ~name:"alive set never grows" ~count:300
      (arbitrary_requests n)
      (fun requests ->
        let prev = Urcgc.Decision.initial ~n in
        let d = compute ~prev requests in
        Array.for_all2
          (fun before after -> (not after) || before)
          prev.Urcgc.Decision.alive d.Urcgc.Decision.alive);
    QCheck.Test.make ~name:"attempts reset iff the process contributed"
      ~count:300 (arbitrary_requests n)
      (fun requests ->
        let d = compute requests in
        let contributed i =
          List.exists
            (fun (r : Urcgc.Wire.request) -> Net.Node_id.to_int r.sender = i)
            requests
        in
        Array.for_all Fun.id
          (Array.init n (fun i ->
               if contributed i then d.Urcgc.Decision.attempts.(i) = 0
               else d.Urcgc.Decision.attempts.(i) = 1)));
    QCheck.Test.make
      ~name:"stable never exceeds any contributor's last_processed" ~count:300
      (arbitrary_requests n)
      (fun requests ->
        let d = compute requests in
        (not d.Urcgc.Decision.full_group)
        || List.for_all
             (fun (r : Urcgc.Wire.request) ->
               Array.for_all Fun.id
                 (Array.init n (fun j ->
                      d.Urcgc.Decision.stable.(j) <= r.last_processed.(j))))
             requests);
    QCheck.Test.make ~name:"max_processed is the max over contributors"
      ~count:300 (arbitrary_requests n)
      (fun requests ->
        let d = compute requests in
        Array.for_all Fun.id
          (Array.init n (fun j ->
               let contributed_max =
                 List.fold_left
                   (fun acc (r : Urcgc.Wire.request) ->
                     max acc r.last_processed.(j))
                   0 requests
               in
               d.Urcgc.Decision.max_processed.(j) >= contributed_max)));
    QCheck.Test.make ~name:"most_updated's report backs max_processed"
      ~count:300 (arbitrary_requests n)
      (fun requests ->
        let d = compute requests in
        requests = []
        || Array.for_all Fun.id
             (Array.init n (fun j ->
                  let holder = d.Urcgc.Decision.most_updated.(j) in
                  match
                    List.find_opt
                      (fun (r : Urcgc.Wire.request) ->
                        Net.Node_id.equal r.sender holder)
                      requests
                  with
                  | Some r ->
                      r.last_processed.(j) = d.Urcgc.Decision.max_processed.(j)
                  | None ->
                      (* holder from a previous subrun; here only possible
                         when nothing was contributed for j *)
                      d.Urcgc.Decision.max_processed.(j) = 0)));
    QCheck.Test.make
      ~name:"min_waiting on full coverage is a reported waiting seq" ~count:300
      (arbitrary_requests n)
      (fun requests ->
        let d = compute requests in
        (not d.Urcgc.Decision.full_group)
        || Array.for_all Fun.id
             (Array.init n (fun j ->
                  d.Urcgc.Decision.min_waiting.(j) = 0
                  || List.exists
                       (fun (r : Urcgc.Wire.request) ->
                         match r.waiting.(j) with
                         | Some mid ->
                             Causal.Mid.seq mid
                             = d.Urcgc.Decision.min_waiting.(j)
                         | None -> false)
                       requests)));
    QCheck.Test.make ~name:"full_group iff heard covers the alive set"
      ~count:300 (arbitrary_requests n)
      (fun requests ->
        let d = compute requests in
        let contributed i =
          List.exists
            (fun (r : Urcgc.Wire.request) -> Net.Node_id.to_int r.sender = i)
            requests
        in
        d.Urcgc.Decision.full_group
        = Array.for_all Fun.id
            (Array.init n (fun i ->
                 (not d.Urcgc.Decision.alive.(i)) || contributed i)));
    QCheck.Test.make ~name:"stable is monotone across chained decisions"
      ~count:200
      QCheck.(pair (arbitrary_requests n) (arbitrary_requests n))
      (fun (first, second) ->
        let d1 = compute first in
        let second =
          List.map
            (fun (r : Urcgc.Wire.request) ->
              { r with Urcgc.Wire.subrun = 1; prev_decision = d1 })
            second
        in
        let d2 = compute ~prev:d1 ~subrun:1 second in
        Array.for_all2 ( <= ) d1.Urcgc.Decision.stable d2.Urcgc.Decision.stable);
  ]

(* Ticks roundtrip and arithmetic properties. *)
let ticks_properties =
  [
    QCheck.Test.make ~name:"ticks: of_int/to_int roundtrip" ~count:500
      QCheck.small_nat
      (fun x -> Sim.Ticks.to_int (Sim.Ticks.of_int x) = x);
    QCheck.Test.make ~name:"ticks: add is commutative and associative"
      ~count:500
      QCheck.(triple small_nat small_nat small_nat)
      (fun (a, b, c) ->
        let t = Sim.Ticks.of_int in
        let open Sim.Ticks in
        equal (add (t a) (t b)) (add (t b) (t a))
        && equal (add (t a) (add (t b) (t c))) (add (add (t a) (t b)) (t c)));
    QCheck.Test.make ~name:"ticks: diff inverts add" ~count:500
      QCheck.(pair small_nat small_nat)
      (fun (a, b) ->
        let open Sim.Ticks in
        equal (diff (add (of_int a) (of_int b)) (of_int b)) (of_int a));
  ]

(* Delivery-tracker properties. *)
let delivery_properties =
  [
    QCheck.Test.make
      ~name:"delivery: random mark order never violates the chain" ~count:200
      QCheck.(small_list (pair (int_bound 3) (int_range 1 6)))
      (fun attempts ->
        let d = Causal.Delivery.create ~n:4 in
        List.iter
          (fun (o, s) ->
            let s = max 1 s in
            let mid = Causal.Mid.make ~origin:(node o) ~seq:s in
            let next =
              Causal.Delivery.last_processed d (node o) + 1 = s
            in
            match Causal.Delivery.mark d mid with
            | () -> assert next
            | exception Invalid_argument _ -> assert (not next))
          attempts;
        true);
    QCheck.Test.make
      ~name:"delivery: processable implies missing is empty and vice versa"
      ~count:300
      QCheck.(pair (int_bound 3) (int_range 1 4))
      (fun (o, s) ->
        (* QCheck shrinking can step outside int_range; clamp. *)
        let s = max 1 s in
        let d = Causal.Delivery.create ~n:4 in
        (* advance some chains deterministically *)
        for i = 1 to 2 do
          Causal.Delivery.mark d (Causal.Mid.make ~origin:(node 0) ~seq:i)
        done;
        Causal.Delivery.mark d (Causal.Mid.make ~origin:(node 1) ~seq:1);
        let msg =
          Causal.Causal_msg.make
            ~mid:(Causal.Mid.make ~origin:(node o) ~seq:s)
            ~deps:
              (if o = 3 then [ Causal.Mid.make ~origin:(node 0) ~seq:2 ]
               else [])
            ~payload_size:0 ()
        in
        (* For an already-processed mid "missing" is trivially empty but the
           message is a duplicate, not processable; the equivalence holds
           for new messages only. *)
        Causal.Delivery.processed d msg.Causal.Causal_msg.mid
        || Causal.Delivery.processable d msg
           = (Causal.Delivery.missing d msg = []));
  ]

let to_alcotest tests = List.map QCheck_alcotest.to_alcotest tests

let suite =
  [
    ("props.coordinator", to_alcotest coordinator_properties);
    ("props.ticks", to_alcotest ticks_properties);
    ("props.delivery", to_alcotest delivery_properties);
  ]
