(* urgc codec tests: size model equality, roundtrips, fuzz. *)

let node n = Net.Node_id.of_int n
let payload = Net.Bytebuf.string_codec
let mid o s = Causal.Mid.make ~origin:(node o) ~seq:s

let data o s text =
  { Urgc.Total_wire.mid = mid o s; payload = text; payload_size = String.length text }

let sample_decision n =
  {
    Urgc.Total_decision.subrun = 4;
    coordinator = node 1;
    next_seq = 5;
    first_assigned = 2;
    assignments = [| mid 0 1; mid 2 1; mid 1 3 |];
    stable_seq = 1;
    full_group = true;
    attempts = Array.init n (fun i -> i mod 2);
    alive = Array.init n (fun i -> i <> 2);
    heard = Array.init n (fun i -> i mod 2 = 0);
    acc_processed = Array.init n (fun i -> if i = 0 then max_int else i);
  }

let bodies n : string Urgc.Total_wire.body list =
  [
    Urgc.Total_wire.Data (data 1 4 "entry");
    Urgc.Total_wire.Request
      {
        sender = node 2;
        subrun = 6;
        unsequenced = [ mid 0 2; mid 3 1 ];
        processed_upto = 3;
        prev_decision = sample_decision n;
      };
    Urgc.Total_wire.Decision_pdu (sample_decision n);
    Urgc.Total_wire.Recover_req { requester = node 0; from_seq = 2; to_seq = 9 };
    Urgc.Total_wire.Recover_reply
      { responder = node 1; messages = [ (2, data 0 1 "a"); (3, data 2 1 "") ] };
  ]

let tests =
  [
    Alcotest.test_case "encoded length equals Total_wire.body_size" `Quick
      (fun () ->
        List.iter
          (fun body ->
            Alcotest.(check int)
              (Format.asprintf "%a" Urgc.Total_wire.pp_body body)
              (Urgc.Total_wire.body_size body)
              (Bytes.length (Urgc.Tw_codec.encode_body payload body)))
          (bodies 5));
    Alcotest.test_case "every PDU roundtrips to identical bytes" `Quick
      (fun () ->
        List.iter
          (fun body ->
            let raw = Urgc.Tw_codec.encode_body payload body in
            match Urgc.Tw_codec.decode_body payload ~n:5 raw with
            | Error e -> Alcotest.failf "decode: %s" e
            | Ok decoded ->
                Alcotest.(check bool)
                  (Format.asprintf "%a" Urgc.Total_wire.pp_body body)
                  true
                  (Bytes.equal raw (Urgc.Tw_codec.encode_body payload decoded)))
          (bodies 5));
    Alcotest.test_case "the assignment window survives the roundtrip" `Quick
      (fun () ->
        let d = sample_decision 5 in
        let raw =
          Urgc.Tw_codec.encode_body payload (Urgc.Total_wire.Decision_pdu d)
        in
        match Urgc.Tw_codec.decode_body payload ~n:5 raw with
        | Ok (Urgc.Total_wire.Decision_pdu d') ->
            Alcotest.(check int) "window size" 3
              (Array.length d'.Urgc.Total_decision.assignments);
            Alcotest.(check (option unit)) "seq 3 binding" (Some ())
              (Option.map (fun _ -> ())
                 (Urgc.Total_decision.assignment d' 3));
            Alcotest.(check (array int)) "acc sentinel survives"
              d.Urgc.Total_decision.acc_processed
              d'.Urgc.Total_decision.acc_processed
        | Ok _ -> Alcotest.fail "wrong variant"
        | Error e -> Alcotest.fail e);
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"urgc decoder never raises on garbage" ~count:500
         (QCheck.make
            ~print:(fun b -> Printf.sprintf "%d bytes" (Bytes.length b))
            QCheck.Gen.(map Bytes.of_string (string_size (int_bound 150))))
         (fun raw ->
           match Urgc.Tw_codec.decode_body payload ~n:5 raw with
           | Ok _ | Error _ -> true));
  ]

let suite = [ ("tw_codec", tests) ]
