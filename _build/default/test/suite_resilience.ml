(* Tests for the adversarial burst fault mode and the membership behaviour
   around it. *)

let node n = Net.Node_id.of_int n

let fault_tests =
  [
    Alcotest.test_case "validation" `Quick (fun () ->
        Alcotest.check_raises "count = population"
          (Invalid_argument
             "Fault.with_subrun_silence: count must be in [0, population)")
          (fun () ->
            ignore
              (Net.Fault.with_subrun_silence ~count:4 ~population:4
                 Net.Fault.reliable)));
    Alcotest.test_case "exactly s processes are silenced each subrun" `Quick
      (fun () ->
        let spec =
          Net.Fault.with_subrun_silence ~count:3 ~population:10
            Net.Fault.reliable
        in
        let fault = Net.Fault.create spec ~rng:(Sim.Rng.create ~seed:8) in
        List.iter
          (fun subrun ->
            let now = Sim.Ticks.of_int (subrun * Sim.Ticks.per_rtd) in
            let silenced =
              List.filter
                (fun i -> Net.Fault.drop_on_send fault ~now (node i))
                (List.init 10 Fun.id)
            in
            Alcotest.(check int)
              (Printf.sprintf "subrun %d" subrun)
              3 (List.length silenced))
          [ 0; 1; 2; 3; 4 ]);
    Alcotest.test_case "the silenced set is stable within a subrun" `Quick
      (fun () ->
        let spec =
          Net.Fault.with_subrun_silence ~count:2 ~population:6
            Net.Fault.reliable
        in
        let fault = Net.Fault.create spec ~rng:(Sim.Rng.create ~seed:8) in
        let sample at =
          List.filter
            (fun i -> Net.Fault.drop_on_send fault ~now:(Sim.Ticks.of_int at) (node i))
            (List.init 6 Fun.id)
        in
        let early = sample 0 in
        let late = sample (Sim.Ticks.per_rtd - 1) in
        Alcotest.(check (list int)) "same set" early late);
    Alcotest.test_case "sets vary across subruns" `Quick (fun () ->
        let spec =
          Net.Fault.with_subrun_silence ~count:2 ~population:8
            Net.Fault.reliable
        in
        let fault = Net.Fault.create spec ~rng:(Sim.Rng.create ~seed:8) in
        let sample subrun =
          List.filter
            (fun i ->
              Net.Fault.drop_on_send fault
                ~now:(Sim.Ticks.of_int (subrun * Sim.Ticks.per_rtd))
                (node i))
            (List.init 8 Fun.id)
        in
        let sets = List.map sample [ 0; 1; 2; 3; 4; 5; 6; 7 ] in
        Alcotest.(check bool) "not all identical" true
          (List.exists (fun s -> s <> List.hd sets) sets);
        Alcotest.(check bool) "receive side untouched" false
          (Net.Fault.drop_on_recv fault ~now:Sim.Ticks.zero (node 0)));
  ]

let membership_tests =
  [
    Alcotest.test_case
      "bursts below the detection window cause no expulsions" `Slow (fun () ->
        (* s = 1 of 8, K = 3: a process would need 3 consecutive hits,
           p = (1/8)^3 per window — with ~20 subruns a run stays clean. *)
        let config = Urcgc.Config.make ~k:3 ~n:8 () in
        let load = Workload.Load.make ~rate:0.4 ~total_messages:60 () in
        let fault =
          Net.Fault.with_subrun_silence ~count:1 ~population:8
            Net.Fault.reliable
        in
        let scenario =
          Workload.Scenario.make ~name:"burst-light" ~fault ~seed:42
            ~max_rtd:200.0 ~config ~load ()
        in
        let report = Workload.Runner.run scenario in
        Alcotest.(check bool) "invariants" true
          (Workload.Checker.ok report.Workload.Runner.verdict);
        Alcotest.(check int) "no expulsions" 0
          (List.length report.Workload.Runner.departures);
        Alcotest.(check int) "everything delivered" (60 * 7)
          report.Workload.Runner.delivered_remote);
    Alcotest.test_case
      "a falsely declared process leaves by itself (silence timeout)" `Slow
      (fun () ->
        (* Silence p5's sends for K consecutive subruns with a scripted
           filter: the group declares it crashed; p5, cut off from further
           decisions, must leave autonomously via its silence limit. *)
        let engine = Sim.Engine.create () in
        let rng = Sim.Rng.create ~seed:9 in
        let fault = Net.Fault.create Net.Fault.reliable ~rng:(Sim.Rng.split rng) in
        let net = Net.Netsim.create engine ~fault ~rng:(Sim.Rng.split rng) () in
        let config = Urcgc.Config.make ~k:2 ~silence_limit:4 ~n:6 () in
        let cluster = Urcgc.Cluster.create ~config ~net () in
        Net.Netsim.set_filter net
          (Some
             (fun packet ->
               let from_p5 = Net.Node_id.to_int packet.Net.Netsim.src = 5 in
               let subrun =
                 Sim.Ticks.to_int (Sim.Engine.now engine) / Sim.Ticks.per_rtd
               in
               not (from_p5 && subrun >= 2 && subrun < 5)));
        Urcgc.Cluster.start cluster;
        Sim.Engine.run engine ~until:(Sim.Ticks.of_rtd 20.0);
        let departures = Urcgc.Cluster.departures cluster in
        Alcotest.(check int) "p5 left" 1 (List.length departures);
        (match departures with
        | [ { Urcgc.Cluster.who; why; _ } ] ->
            Alcotest.(check int) "it was p5" 5 (Net.Node_id.to_int who);
            Alcotest.(check bool) "by silence or suicide" true
              (why = Urcgc.Member.Decision_silence
              || why = Urcgc.Member.Declared_crashed)
        | _ -> Alcotest.fail "expected exactly one departure");
        (* Survivors agree that p5 is out. *)
        List.iter
          (fun member ->
            if Urcgc.Member.active member then
              Alcotest.(check bool) "view excludes p5" false
                (Causal.Group_view.alive (Urcgc.Member.view member) (node 5)))
          (Urcgc.Cluster.members cluster));
  ]

(* urgc sequencing properties. *)
let urgc_properties =
  let mid o s = Causal.Mid.make ~origin:(node o) ~seq:s in
  let request ~sender ~unsequenced ~processed prev =
    {
      Urgc.Total_wire.sender = node sender;
      subrun = 0;
      unsequenced;
      processed_upto = processed;
      prev_decision = prev;
    }
  in
  [
    QCheck.Test.make ~name:"urgc: assignments are gap-free and unique"
      ~count:200
      QCheck.(small_list (pair (int_bound 3) (int_range 1 9)))
      (fun raw ->
        let prev = Urgc.Total_decision.initial ~n:4 in
        let unsequenced =
          List.map (fun (o, s) -> mid o (max 1 s)) raw
          |> List.sort_uniq Causal.Mid.compare
        in
        let d =
          Urgc.Total_coordinator.compute ~n:4 ~k:2 ~subrun:0
            ~coordinator:(node 0) ~prev
            ~requests:[ request ~sender:0 ~unsequenced ~processed:0 prev ]
        in
        let count = Array.length d.Urgc.Total_decision.assignments in
        count = List.length unsequenced
        && d.Urgc.Total_decision.next_seq = count + 1
        && List.length
             (List.sort_uniq Causal.Mid.compare
                (Array.to_list d.Urgc.Total_decision.assignments))
           = count);
    QCheck.Test.make
      ~name:"urgc: stable_seq never exceeds any contributor's processed point"
      ~count:200
      QCheck.(pair (int_bound 8) (int_bound 8))
      (fun (a, b) ->
        let prev = Urgc.Total_decision.initial ~n:2 in
        (* Assign enough sequence numbers first so processed points exist. *)
        let seeded =
          Urgc.Total_coordinator.compute ~n:2 ~k:2 ~subrun:0
            ~coordinator:(node 0) ~prev
            ~requests:
              [
                request ~sender:0
                  ~unsequenced:(List.init 10 (fun i -> mid 0 (i + 1)))
                  ~processed:0 prev;
              ]
        in
        let d =
          Urgc.Total_coordinator.compute ~n:2 ~k:2 ~subrun:1
            ~coordinator:(node 1) ~prev:seeded
            ~requests:
              [
                request ~sender:0 ~unsequenced:[] ~processed:a seeded;
                request ~sender:1 ~unsequenced:[] ~processed:b seeded;
              ]
        in
        d.Urgc.Total_decision.stable_seq <= min a b);
  ]

let suite =
  [
    ("resilience.fault", fault_tests);
    ("resilience.membership", membership_tests);
    ("urgc.props", List.map QCheck_alcotest.to_alcotest urgc_properties);
  ]
