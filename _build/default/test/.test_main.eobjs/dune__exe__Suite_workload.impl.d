test/suite_workload.ml: Alcotest Astring_contains Format Fun List Net Sim Urcgc Workload
