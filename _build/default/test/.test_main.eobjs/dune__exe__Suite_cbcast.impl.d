test/suite_cbcast.ml: Alcotest Array Cbcast List Net QCheck QCheck_alcotest Sim Workload
