test/suite_small_groups.ml: Alcotest Causal List Net Sim Urcgc Workload
