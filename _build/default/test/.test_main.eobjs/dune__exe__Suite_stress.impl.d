test/suite_stress.ml: Alcotest List Net Sim String Urcgc Workload
