test/suite_ps_codec.ml: Alcotest Bytes Format List Net Printf Psync QCheck QCheck_alcotest String
