test/suite_determinism.ml: Alcotest Astring_contains Cbcast Format List Net Printf QCheck QCheck_alcotest Sim
