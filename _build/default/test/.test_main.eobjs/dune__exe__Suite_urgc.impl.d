test/suite_urgc.ml: Alcotest Array Causal Hashtbl List Net Option QCheck QCheck_alcotest Sim Urcgc Urgc Workload
