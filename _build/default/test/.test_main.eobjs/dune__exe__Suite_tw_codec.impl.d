test/suite_tw_codec.ml: Alcotest Array Bytes Causal Format List Net Option Printf QCheck QCheck_alcotest String Urgc
