test/suite_stats.ml: Alcotest Array Astring_contains Format List Net Stats String Urcgc
