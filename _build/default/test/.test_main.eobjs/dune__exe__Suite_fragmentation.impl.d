test/suite_fragmentation.ml: Alcotest Causal List Net Sim Urcgc
