test/suite_edge.ml: Alcotest Array Causal Cbcast List Net Sim Urcgc Urgc
