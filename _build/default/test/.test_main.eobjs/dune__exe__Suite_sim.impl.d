test/suite_sim.ml: Alcotest Array Float Fun List Option QCheck QCheck_alcotest Sim
