test/suite_resilience.ml: Alcotest Array Causal Fun List Net Printf QCheck QCheck_alcotest Sim Urcgc Urgc Workload
