test/suite_baselines2.ml: Alcotest Array Causal Cbcast List Net Psync Sim Urcgc
