test/suite_cb_codec.ml: Alcotest Array Bytes Cbcast Format List Net String
