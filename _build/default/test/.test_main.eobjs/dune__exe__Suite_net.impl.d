test/suite_net.ml: Alcotest Float List Net Sim
