test/suite_psync.ml: Alcotest List Net Psync Sim Workload
