test/suite_causal.ml: Alcotest Array Causal Hashtbl List Net QCheck QCheck_alcotest
