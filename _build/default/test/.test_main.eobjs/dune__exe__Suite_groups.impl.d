test/suite_groups.ml: Alcotest Causal Groups Hashtbl List Net Printf Sim Urcgc
