test/suite_fuzz.ml: Array Bytes Cbcast List Net Printf QCheck QCheck_alcotest Urcgc
