test/decisions.ml: Urcgc
