test/suite_urcgc2.ml: Alcotest Causal List Net Sim Urcgc Workload
