test/suite_codec_boundary.ml: Alcotest Causal Format List Net Printf Sim String Urcgc
