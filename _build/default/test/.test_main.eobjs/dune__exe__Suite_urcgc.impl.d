test/suite_urcgc.ml: Alcotest Array Causal Decisions Float Fun List Net QCheck QCheck_alcotest Sim Stats String Urcgc Workload
