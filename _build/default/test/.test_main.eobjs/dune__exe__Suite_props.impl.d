test/suite_props.ml: Array Causal Format Fun List Net Option QCheck QCheck_alcotest Sim String Urcgc
