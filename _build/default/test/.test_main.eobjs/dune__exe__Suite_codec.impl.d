test/suite_codec.ml: Alcotest Array Bytes Causal Format List Net Printf QCheck QCheck_alcotest String Urcgc
