(* Tests for the network substrate: node ids, fault injection, traffic
   accounting, the datagram simulator, and the transport entity. *)

let node n = Net.Node_id.of_int n

let node_id_tests =
  [
    Alcotest.test_case "roundtrip" `Quick (fun () ->
        Alcotest.(check int) "7" 7 (Net.Node_id.to_int (node 7)));
    Alcotest.test_case "rejects negatives" `Quick (fun () ->
        Alcotest.check_raises "neg" (Invalid_argument "Node_id.of_int: negative")
          (fun () -> ignore (node (-1))));
    Alcotest.test_case "group enumerates ids" `Quick (fun () ->
        Alcotest.(check (list int)) "0..3" [ 0; 1; 2; 3 ]
          (List.map Net.Node_id.to_int (Net.Node_id.group 4)));
    Alcotest.test_case "group rejects non-positive" `Quick (fun () ->
        Alcotest.check_raises "zero"
          (Invalid_argument "Node_id.group: n must be positive") (fun () ->
            ignore (Net.Node_id.group 0)));
    Alcotest.test_case "set and map modules work" `Quick (fun () ->
        let set = Net.Node_id.Set.of_list [ node 2; node 1; node 2 ] in
        Alcotest.(check int) "2 distinct" 2 (Net.Node_id.Set.cardinal set);
        let map = Net.Node_id.Map.singleton (node 5) "five" in
        Alcotest.(check (option string)) "found" (Some "five")
          (Net.Node_id.Map.find_opt (node 5) map));
  ]

let fault_tests =
  [
    Alcotest.test_case "reliable spec never drops" `Quick (fun () ->
        let fault =
          Net.Fault.create Net.Fault.reliable ~rng:(Sim.Rng.create ~seed:1)
        in
        for _ = 1 to 1000 do
          Alcotest.(check bool) "send" false
            (Net.Fault.drop_on_send fault ~now:Sim.Ticks.zero (node 0));
          Alcotest.(check bool) "recv" false
            (Net.Fault.drop_on_recv fault ~now:Sim.Ticks.zero (node 0));
          Alcotest.(check bool) "link" false (Net.Fault.drop_on_link fault)
        done);
    Alcotest.test_case "crash takes effect at its time" `Quick (fun () ->
        let spec =
          Net.Fault.with_crashes
            [ (node 2, Sim.Ticks.of_int 100) ]
            Net.Fault.reliable
        in
        let fault = Net.Fault.create spec ~rng:(Sim.Rng.create ~seed:1) in
        Alcotest.(check bool) "before" false
          (Net.Fault.crashed fault ~now:(Sim.Ticks.of_int 99) (node 2));
        Alcotest.(check bool) "at" true
          (Net.Fault.crashed fault ~now:(Sim.Ticks.of_int 100) (node 2));
        Alcotest.(check bool) "others fine" false
          (Net.Fault.crashed fault ~now:(Sim.Ticks.of_int 500) (node 1)));
    Alcotest.test_case "crashed node drops sends and receives" `Quick (fun () ->
        let spec =
          Net.Fault.with_crashes [ (node 0, Sim.Ticks.zero) ] Net.Fault.reliable
        in
        let fault = Net.Fault.create spec ~rng:(Sim.Rng.create ~seed:1) in
        Alcotest.(check bool) "send" true
          (Net.Fault.drop_on_send fault ~now:Sim.Ticks.zero (node 0));
        Alcotest.(check bool) "recv" true
          (Net.Fault.drop_on_recv fault ~now:Sim.Ticks.zero (node 0)));
    Alcotest.test_case "crash_now crashes dynamically" `Quick (fun () ->
        let fault =
          Net.Fault.create Net.Fault.reliable ~rng:(Sim.Rng.create ~seed:1)
        in
        Net.Fault.crash_now fault ~now:(Sim.Ticks.of_int 50) (node 3);
        Alcotest.(check bool) "after" true
          (Net.Fault.crashed fault ~now:(Sim.Ticks.of_int 50) (node 3));
        Alcotest.(check bool) "not before" false
          (Net.Fault.crashed fault ~now:(Sim.Ticks.of_int 49) (node 3)));
    Alcotest.test_case "omission_every rate is honored" `Quick (fun () ->
        let spec = Net.Fault.omission_every 100 in
        let fault = Net.Fault.create spec ~rng:(Sim.Rng.create ~seed:9) in
        let drops = ref 0 in
        let trials = 200_000 in
        for _ = 1 to trials do
          if Net.Fault.drop_on_send fault ~now:Sim.Ticks.zero (node 0) then
            incr drops;
          if Net.Fault.drop_on_recv fault ~now:Sim.Ticks.zero (node 0) then
            incr drops
        done;
        (* send + recv halves combine to ~1/100 per full packet trip *)
        let rate = float_of_int !drops /. float_of_int trials in
        Alcotest.(check bool) "close to 1%" true (Float.abs (rate -. 0.01) < 0.002));
    Alcotest.test_case "omission_every rejects non-positive" `Quick (fun () ->
        Alcotest.check_raises "zero"
          (Invalid_argument "Fault.omission_every: k must be positive")
          (fun () -> ignore (Net.Fault.omission_every 0)));
    Alcotest.test_case "alive filters crashed" `Quick (fun () ->
        let spec =
          Net.Fault.with_crashes [ (node 1, Sim.Ticks.zero) ] Net.Fault.reliable
        in
        let fault = Net.Fault.create spec ~rng:(Sim.Rng.create ~seed:1) in
        Alcotest.(check (list int)) "without p1" [ 0; 2 ]
          (List.map Net.Node_id.to_int
             (Net.Fault.alive fault ~now:Sim.Ticks.zero
                ~all:[ node 0; node 1; node 2 ])));
  ]

let traffic_tests =
  [
    Alcotest.test_case "records counts and bytes per kind" `Quick (fun () ->
        let t = Net.Traffic.create () in
        Net.Traffic.record t ~kind:Net.Traffic.Data ~size:100;
        Net.Traffic.record t ~kind:Net.Traffic.Data ~size:50;
        Net.Traffic.record t ~kind:Net.Traffic.Control ~size:30;
        Alcotest.(check int) "data count" 2 (Net.Traffic.count t Net.Traffic.Data);
        Alcotest.(check int) "data bytes" 150
          (Net.Traffic.bytes t Net.Traffic.Data);
        Alcotest.(check int) "control" 1 (Net.Traffic.count t Net.Traffic.Control);
        Alcotest.(check int) "total count" 3 (Net.Traffic.total_count t);
        Alcotest.(check int) "total bytes" 180 (Net.Traffic.total_bytes t));
    Alcotest.test_case "mean and max size" `Quick (fun () ->
        let t = Net.Traffic.create () in
        Net.Traffic.record t ~kind:Net.Traffic.Control ~size:10;
        Net.Traffic.record t ~kind:Net.Traffic.Control ~size:30;
        Alcotest.(check (float 1e-9)) "mean" 20.0
          (Net.Traffic.mean_size t Net.Traffic.Control);
        Alcotest.(check int) "max" 30 (Net.Traffic.max_size t Net.Traffic.Control);
        Alcotest.(check (float 1e-9)) "mean of empty kind" 0.0
          (Net.Traffic.mean_size t Net.Traffic.Ack));
    Alcotest.test_case "reset clears" `Quick (fun () ->
        let t = Net.Traffic.create () in
        Net.Traffic.record t ~kind:Net.Traffic.Recovery ~size:10;
        Net.Traffic.reset t;
        Alcotest.(check int) "zero" 0 (Net.Traffic.total_count t));
  ]

let make_net ?(spec = Net.Fault.reliable) ?latency ~seed () =
  let engine = Sim.Engine.create () in
  let rng = Sim.Rng.create ~seed in
  let fault = Net.Fault.create spec ~rng:(Sim.Rng.split rng) in
  let net = Net.Netsim.create ?latency engine ~fault ~rng:(Sim.Rng.split rng) () in
  (engine, net)

let netsim_tests =
  [
    Alcotest.test_case "delivers a packet with bounded latency" `Quick (fun () ->
        let engine, net = make_net ~seed:1 () in
        let received = ref [] in
        Net.Netsim.attach net (node 1) (fun packet ->
            received :=
              (packet.Net.Netsim.payload, Sim.Engine.now engine) :: !received);
        Net.Netsim.send net ~src:(node 0) ~dst:(node 1) ~kind:Net.Traffic.Data
          ~size:10 "hi";
        Sim.Engine.run engine;
        match !received with
        | [ ("hi", at) ] ->
            let t = Sim.Ticks.to_int at in
            Alcotest.(check bool) "within a round" true (t >= 40 && t < 50)
        | _ -> Alcotest.fail "expected exactly one delivery");
    Alcotest.test_case "multicast reaches all destinations" `Quick (fun () ->
        let engine, net = make_net ~seed:2 () in
        let got = ref [] in
        List.iter
          (fun i ->
            Net.Netsim.attach net (node i) (fun _ -> got := i :: !got))
          [ 1; 2; 3 ];
        Net.Netsim.multicast net ~src:(node 0) ~dsts:[ node 1; node 2; node 3 ]
          ~kind:Net.Traffic.Data ~size:10 ();
        Sim.Engine.run engine;
        Alcotest.(check (list int)) "all" [ 1; 2; 3 ] (List.sort compare !got));
    Alcotest.test_case "traffic counts offered packets even when dropped" `Quick
      (fun () ->
        let spec = { Net.Fault.reliable with link_loss = 1.0 } in
        let engine, net = make_net ~spec ~seed:3 () in
        Net.Netsim.attach net (node 1) (fun _ -> Alcotest.fail "dropped!");
        Net.Netsim.send net ~src:(node 0) ~dst:(node 1) ~kind:Net.Traffic.Data
          ~size:10 ();
        Sim.Engine.run engine;
        Alcotest.(check int) "offered" 1
          (Net.Traffic.count (Net.Netsim.traffic net) Net.Traffic.Data);
        Alcotest.(check int) "dropped" 1 (Net.Netsim.dropped_count net));
    Alcotest.test_case "crashed destination receives nothing" `Quick (fun () ->
        let spec =
          Net.Fault.with_crashes [ (node 1, Sim.Ticks.zero) ] Net.Fault.reliable
        in
        let engine, net = make_net ~spec ~seed:4 () in
        Net.Netsim.attach net (node 1) (fun _ -> Alcotest.fail "dead node got packet");
        Net.Netsim.send net ~src:(node 0) ~dst:(node 1) ~kind:Net.Traffic.Data
          ~size:10 ();
        Sim.Engine.run engine;
        Alcotest.(check int) "dropped" 1 (Net.Netsim.dropped_count net));
    Alcotest.test_case "crashed source sends nothing" `Quick (fun () ->
        let spec =
          Net.Fault.with_crashes [ (node 0, Sim.Ticks.zero) ] Net.Fault.reliable
        in
        let engine, net = make_net ~spec ~seed:5 () in
        Net.Netsim.attach net (node 1) (fun _ -> Alcotest.fail "got packet");
        Net.Netsim.send net ~src:(node 0) ~dst:(node 1) ~kind:Net.Traffic.Data
          ~size:10 ();
        Sim.Engine.run engine);
    Alcotest.test_case "attach rejects double registration" `Quick (fun () ->
        let _, net = make_net ~seed:6 () in
        Net.Netsim.attach net (node 1) (fun _ -> ());
        Alcotest.check_raises "dup"
          (Invalid_argument "Netsim.attach: node already attached") (fun () ->
            Net.Netsim.attach net (node 1) (fun (_ : unit Net.Netsim.packet) -> ())));
    Alcotest.test_case "link loss drops roughly the configured fraction" `Quick
      (fun () ->
        let spec = { Net.Fault.reliable with link_loss = 0.25 } in
        let engine, net = make_net ~spec ~seed:7 () in
        let got = ref 0 in
        Net.Netsim.attach net (node 1) (fun _ -> incr got);
        for _ = 1 to 4000 do
          Net.Netsim.send net ~src:(node 0) ~dst:(node 1) ~kind:Net.Traffic.Data
            ~size:1 ()
        done;
        Sim.Engine.run engine;
        let rate = float_of_int !got /. 4000.0 in
        Alcotest.(check bool) "~75% delivered" true (Float.abs (rate -. 0.75) < 0.03));
  ]

let make_transport ?(spec = Net.Fault.reliable) ?retry_interval ?max_retries
    ~seed () =
  let engine = Sim.Engine.create () in
  let rng = Sim.Rng.create ~seed in
  let fault = Net.Fault.create spec ~rng:(Sim.Rng.split rng) in
  let transport =
    Net.Transport.create ?retry_interval ?max_retries engine ~fault
      ~rng:(Sim.Rng.split rng) ()
  in
  (engine, transport)

let transport_tests =
  [
    Alcotest.test_case "delivers and confirms with h acks" `Quick (fun () ->
        let engine, transport = make_transport ~seed:1 () in
        let got = ref [] in
        Net.Transport.attach transport (node 0) (fun ~src:_ _ -> ());
        List.iter
          (fun i ->
            Net.Transport.attach transport (node i) (fun ~src:_ msg ->
                got := (i, msg) :: !got))
          [ 1; 2; 3 ];
        let confirmed = ref (-1) in
        Net.Transport.request transport ~src:(node 0)
          ~dsts:[ node 1; node 2; node 3 ] ~h:3 ~kind:Net.Traffic.Data ~size:10
          ~on_confirm:(fun ~acked -> confirmed := acked)
          "payload";
        Sim.Engine.run engine;
        Alcotest.(check int) "3 deliveries" 3 (List.length !got);
        Alcotest.(check int) "3 acks" 3 !confirmed);
    Alcotest.test_case "retransmits through losses" `Quick (fun () ->
        (* Heavy link loss: the transport must still get the message through
           within its retry budget most of the time. *)
        let spec = { Net.Fault.reliable with link_loss = 0.4 } in
        let engine, transport =
          make_transport ~spec ~max_retries:8 ~seed:2 ()
        in
        let got = ref 0 in
        Net.Transport.attach transport (node 0) (fun ~src:_ () -> ());
        Net.Transport.attach transport (node 1) (fun ~src:_ () -> incr got);
        let confirmed = ref 0 in
        for _ = 1 to 50 do
          Net.Transport.request transport ~src:(node 0) ~dsts:[ node 1 ] ~h:1
            ~kind:Net.Traffic.Data ~size:10
            ~on_confirm:(fun ~acked -> confirmed := !confirmed + acked)
            ()
        done;
        Sim.Engine.run engine;
        Alcotest.(check int) "all delivered despite loss" 50 !got;
        Alcotest.(check bool) "retransmissions happened" true
          (Net.Transport.retransmissions transport > 0));
    Alcotest.test_case "suppresses duplicate deliveries" `Quick (fun () ->
        (* Lose acks only: receiver gets several copies, delivers once. *)
        let spec = { Net.Fault.reliable with link_loss = 0.5 } in
        let engine, transport = make_transport ~spec ~max_retries:6 ~seed:3 () in
        let got = ref 0 in
        Net.Transport.attach transport (node 0) (fun ~src:_ () -> ());
        Net.Transport.attach transport (node 1) (fun ~src:_ () -> incr got);
        Net.Transport.request transport ~src:(node 0) ~dsts:[ node 1 ] ~h:1
          ~kind:Net.Traffic.Data ~size:10
          ~on_confirm:(fun ~acked:_ -> ())
          ();
        Sim.Engine.run engine;
        Alcotest.(check bool) "at most one delivery" true (!got <= 1));
    Alcotest.test_case "never fails: confirms with partial acks" `Quick
      (fun () ->
        let spec =
          Net.Fault.with_crashes [ (node 2, Sim.Ticks.zero) ] Net.Fault.reliable
        in
        let engine, transport = make_transport ~spec ~max_retries:2 ~seed:4 () in
        Net.Transport.attach transport (node 0) (fun ~src:_ () -> ());
        Net.Transport.attach transport (node 1) (fun ~src:_ () -> ());
        Net.Transport.attach transport (node 2) (fun ~src:_ () -> ());
        let confirmed = ref (-1) in
        Net.Transport.request transport ~src:(node 0) ~dsts:[ node 1; node 2 ]
          ~h:2 ~kind:Net.Traffic.Data ~size:10
          ~on_confirm:(fun ~acked -> confirmed := acked)
          ();
        Sim.Engine.run engine;
        Alcotest.(check int) "confirmed with 1 of 2" 1 !confirmed);
    Alcotest.test_case "validates h and dsts" `Quick (fun () ->
        let _, transport = make_transport ~seed:5 () in
        Alcotest.check_raises "empty"
          (Invalid_argument "Transport.request: empty destination set")
          (fun () ->
            Net.Transport.request transport ~src:(node 0) ~dsts:[] ~h:1
              ~kind:Net.Traffic.Data ~size:1
              ~on_confirm:(fun ~acked:_ -> ())
              ());
        Alcotest.check_raises "h too big"
          (Invalid_argument "Transport.request: h out of range") (fun () ->
            Net.Transport.request transport ~src:(node 0) ~dsts:[ node 1 ] ~h:2
              ~kind:Net.Traffic.Data ~size:1
              ~on_confirm:(fun ~acked:_ -> ())
              ()));
    Alcotest.test_case "acks are accounted as ack traffic" `Quick (fun () ->
        let engine, transport = make_transport ~seed:6 () in
        Net.Transport.attach transport (node 0) (fun ~src:_ () -> ());
        Net.Transport.attach transport (node 1) (fun ~src:_ () -> ());
        Net.Transport.request transport ~src:(node 0) ~dsts:[ node 1 ] ~h:1
          ~kind:Net.Traffic.Data ~size:10
          ~on_confirm:(fun ~acked:_ -> ())
          ();
        Sim.Engine.run engine;
        let traffic = Net.Transport.traffic transport in
        Alcotest.(check int) "1 data" 1 (Net.Traffic.count traffic Net.Traffic.Data);
        Alcotest.(check int) "1 ack" 1 (Net.Traffic.count traffic Net.Traffic.Ack));
  ]

let suite =
  [
    ("net.node_id", node_id_tests);
    ("net.fault", fault_tests);
    ("net.traffic", traffic_tests);
    ("net.netsim", netsim_tests);
    ("net.transport", transport_tests);
  ]
