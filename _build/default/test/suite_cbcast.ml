(* Tests for the CBCAST baseline: vector clocks, the member's delivery rule,
   the flush protocol, and end-to-end behaviour. *)

let node n = Net.Node_id.of_int n

let vclock_tests =
  [
    Alcotest.test_case "create is all zero" `Quick (fun () ->
        let v = Cbcast.Vclock.create ~n:4 in
        Alcotest.(check (array int)) "zero" [| 0; 0; 0; 0 |]
          (Cbcast.Vclock.to_array v));
    Alcotest.test_case "tick and get" `Quick (fun () ->
        let v = Cbcast.Vclock.create ~n:3 in
        Cbcast.Vclock.tick v (node 1);
        Cbcast.Vclock.tick v (node 1);
        Alcotest.(check int) "2" 2 (Cbcast.Vclock.get v (node 1)));
    Alcotest.test_case "merge is pointwise max" `Quick (fun () ->
        let a = Cbcast.Vclock.of_array [| 1; 5; 2 |] in
        let b = Cbcast.Vclock.of_array [| 3; 1; 2 |] in
        Cbcast.Vclock.merge a b;
        Alcotest.(check (array int)) "max" [| 3; 5; 2 |] (Cbcast.Vclock.to_array a));
    Alcotest.test_case "min_into is pointwise min" `Quick (fun () ->
        let a = Cbcast.Vclock.of_array [| 1; 5; 2 |] in
        let b = Cbcast.Vclock.of_array [| 3; 1; 2 |] in
        Cbcast.Vclock.min_into a b;
        Alcotest.(check (array int)) "min" [| 1; 1; 2 |] (Cbcast.Vclock.to_array a));
    Alcotest.test_case "le is pointwise" `Quick (fun () ->
        let a = Cbcast.Vclock.of_array [| 1; 2 |] in
        let b = Cbcast.Vclock.of_array [| 2; 2 |] in
        Alcotest.(check bool) "a<=b" true (Cbcast.Vclock.le a b);
        Alcotest.(check bool) "not b<=a" false (Cbcast.Vclock.le b a));
    Alcotest.test_case "deliverable: classic CBCAST rule" `Quick (fun () ->
        let local = Cbcast.Vclock.of_array [| 2; 3; 1 |] in
        (* from p0, its 3rd message, having seen p1's first 3 *)
        let ok = Cbcast.Vclock.of_array [| 3; 3; 0 |] in
        Alcotest.(check bool) "ok" true
          (Cbcast.Vclock.deliverable ~msg_vt:ok ~from:(node 0) ~local);
        (* gap in the sender's own sequence *)
        let gap = Cbcast.Vclock.of_array [| 4; 0; 0 |] in
        Alcotest.(check bool) "gap" false
          (Cbcast.Vclock.deliverable ~msg_vt:gap ~from:(node 0) ~local);
        (* depends on a message we have not seen *)
        let dep = Cbcast.Vclock.of_array [| 3; 4; 0 |] in
        Alcotest.(check bool) "missing dep" false
          (Cbcast.Vclock.deliverable ~msg_vt:dep ~from:(node 0) ~local));
    Alcotest.test_case "encoded size is 4n" `Quick (fun () ->
        Alcotest.(check int) "4n" 60
          (Cbcast.Vclock.encoded_size (Cbcast.Vclock.create ~n:15)));
  ]

(* qcheck: merge is the least upper bound w.r.t. le. *)
let vclock_lub_property =
  QCheck.Test.make ~name:"vclock merge is a least upper bound" ~count:300
    QCheck.(pair (array_of_size (QCheck.Gen.return 5) small_nat)
              (array_of_size (QCheck.Gen.return 5) small_nat))
    (fun (a_raw, b_raw) ->
      let a = Cbcast.Vclock.of_array a_raw in
      let b = Cbcast.Vclock.of_array b_raw in
      let m = Cbcast.Vclock.copy a in
      Cbcast.Vclock.merge m b;
      Cbcast.Vclock.le a m && Cbcast.Vclock.le b m
      &&
      (* minimality: m <= any other upper bound, here a pointwise max + 1
         would not be smaller, so check m equals pointwise max *)
      Array.for_all2 (fun x y -> x = y)
        (Cbcast.Vclock.to_array m)
        (Array.map2 max a_raw b_raw))

let member_tests =
  [
    Alcotest.test_case "generation ticks own entry and self-delivers" `Quick
      (fun () ->
        let m = Cbcast.Member.create ~n:3 ~k:2 (node 1) in
        Cbcast.Member.submit m "x";
        let actions = Cbcast.Member.on_round m ~subrun:0 in
        let data =
          List.find_map
            (function
              | Cbcast.Member.Multicast (Cbcast.Cb_wire.Data d) -> Some d
              | _ -> None)
            actions
        in
        (match data with
        | Some d -> Alcotest.(check int) "seq 1" 1 (Cbcast.Cb_wire.seq d)
        | None -> Alcotest.fail "no data multicast");
        Alcotest.(check bool) "self-delivered" true
          (List.exists
             (function Cbcast.Member.Delivered _ -> true | _ -> false)
             actions));
    Alcotest.test_case "out-of-order message buffers until deliverable" `Quick
      (fun () ->
        let receiver = Cbcast.Member.create ~n:3 ~k:2 (node 1) in
        let msg seqs seq_self =
          {
            Cbcast.Cb_wire.sender = node 0;
            view_id = 0;
            vt = Cbcast.Vclock.of_array [| seq_self; 0; 0 |];
            payload = seqs;
            payload_size = 4;
          }
        in
        (* receive #2 before #1 *)
        let a = Cbcast.Member.handle receiver ~subrun:0 ~from:(node 0) (Cbcast.Cb_wire.Data (msg "two" 2)) in
        Alcotest.(check int) "buffered" 1 (Cbcast.Member.buffered receiver);
        Alcotest.(check bool) "no delivery yet" true
          (not
             (List.exists
                (function Cbcast.Member.Delivered _ -> true | _ -> false)
                a));
        let b = Cbcast.Member.handle receiver ~subrun:0 ~from:(node 0) (Cbcast.Cb_wire.Data (msg "one" 1)) in
        let delivered =
          List.filter_map
            (function
              | Cbcast.Member.Delivered d -> Some d.Cbcast.Cb_wire.payload
              | _ -> None)
            b
        in
        Alcotest.(check (list string)) "in order" [ "one"; "two" ] delivered);
    Alcotest.test_case "flush request blocks generation and collects unstable"
      `Quick (fun () ->
        let m = Cbcast.Member.create ~n:3 ~k:2 (node 1) in
        Cbcast.Member.submit m "x";
        let actions =
          Cbcast.Member.handle m ~subrun:5 ~from:(node 0)
            (Cbcast.Cb_wire.Flush_req
               { view_id = 1; members = [| true; true; false |]; coordinator = node 0 })
        in
        Alcotest.(check bool) "flushing" true (Cbcast.Member.flushing m);
        Alcotest.(check bool) "replied unstable" true
          (List.exists
             (function
               | Cbcast.Member.Unicast (_, Cbcast.Cb_wire.Flush_unstable _) -> true
               | _ -> false)
             actions);
        let round = Cbcast.Member.on_round m ~subrun:5 in
        Alcotest.(check bool) "no data while flushing" true
          (not
             (List.exists
                (function
                  | Cbcast.Member.Multicast (Cbcast.Cb_wire.Data _) -> true
                  | _ -> false)
                round)));
    Alcotest.test_case "new view excluding us halts the member" `Quick
      (fun () ->
        let m : string Cbcast.Member.t = Cbcast.Member.create ~n:3 ~k:2 (node 2) in
        let actions =
          Cbcast.Member.handle m ~subrun:5 ~from:(node 0)
            (Cbcast.Cb_wire.New_view
               { view_id = 1; members = [| true; true; false |]; retransmit = [] })
        in
        Alcotest.(check bool) "halted" true
          (List.exists
             (function Cbcast.Member.Halted _ -> true | _ -> false)
             actions);
        Alcotest.(check bool) "inactive" false (Cbcast.Member.active m));
    Alcotest.test_case "stability gc drops delivered history" `Quick (fun () ->
        let m = Cbcast.Member.create ~n:2 ~k:2 (node 1) in
        for _ = 1 to 3 do
          Cbcast.Member.submit m "x";
          ignore (Cbcast.Member.on_round m ~subrun:0)
        done;
        Alcotest.(check int) "3 unstable" 3 (Cbcast.Member.unstable m);
        ignore
          (Cbcast.Member.handle m ~subrun:1 ~from:(node 0)
             (Cbcast.Cb_wire.Stability { vt = Cbcast.Vclock.of_array [| 0; 2 |] }));
        Alcotest.(check int) "1 left" 1 (Cbcast.Member.unstable m));
  ]

(* -- end-to-end -------------------------------------------------------- *)

let run_cb ?(n = 8) ?(k = 3) ?(rate = 0.5) ?(messages = 60) ?(crashes = [])
    ?(seed = 42) ?(max_rtd = 150.0) () =
  let load = Workload.Load.make ~rate ~total_messages:messages () in
  let fault =
    Net.Fault.with_crashes
      (List.map
         (fun (i, subrun) ->
           (node i, Sim.Ticks.of_int ((subrun * Sim.Ticks.per_rtd) + 1)))
         crashes)
      Net.Fault.reliable
  in
  Workload.Runner_cbcast.run ~n ~k ~load ~fault ~seed ~max_rtd ()

let e2e_tests =
  [
    Alcotest.test_case "reliable run is causal and atomic" `Slow (fun () ->
        let r = run_cb () in
        Alcotest.(check bool) "causal" true r.Workload.Runner_cbcast.causal_ok;
        Alcotest.(check bool) "atomic" true r.Workload.Runner_cbcast.atomicity_ok;
        Alcotest.(check int) "all delivered" (60 * 7)
          r.Workload.Runner_cbcast.delivered_remote;
        Alcotest.(check int) "no view change" 0
          r.Workload.Runner_cbcast.view_changes);
    Alcotest.test_case "crash triggers exactly one view change" `Slow (fun () ->
        let r = run_cb ~crashes:[ (2, 4) ] () in
        Alcotest.(check bool) "causal" true r.Workload.Runner_cbcast.causal_ok;
        Alcotest.(check bool) "atomic" true r.Workload.Runner_cbcast.atomicity_ok;
        Alcotest.(check int) "one view change" 1
          r.Workload.Runner_cbcast.view_changes;
        Alcotest.(check bool) "processing was blocked for a while" true
          (r.Workload.Runner_cbcast.flush_time_rtd > 0.0));
    Alcotest.test_case "crash grows the control message size (Table 1)" `Slow
      (fun () ->
        let reliable = run_cb () in
        let crashed = run_cb ~crashes:[ (2, 4) ] () in
        Alcotest.(check bool) "flush messages are bigger" true
          (crashed.Workload.Runner_cbcast.control_max_size
          > 4 * reliable.Workload.Runner_cbcast.control_max_size));
    Alcotest.test_case "deterministic across equal seeds" `Slow (fun () ->
        let a = run_cb ~seed:9 () and b = run_cb ~seed:9 () in
        Alcotest.(check int) "same control count"
          a.Workload.Runner_cbcast.control_msgs
          b.Workload.Runner_cbcast.control_msgs);
  ]

let suite =
  [
    ( "cbcast.vclock",
      vclock_tests @ [ QCheck_alcotest.to_alcotest vclock_lub_property ] );
    ("cbcast.member", member_tests);
    ("cbcast.e2e", e2e_tests);
  ]
