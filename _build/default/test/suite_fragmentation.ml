(* Transport fragmentation/assembly (Section 5's "fragmenting and assembling
   the urcgc data units to fit the network packet size"). *)

let node n = Net.Node_id.of_int n

let make_transport ?(spec = Net.Fault.reliable) ?mtu ?max_retries ~seed () =
  let engine = Sim.Engine.create () in
  let rng = Sim.Rng.create ~seed in
  let fault = Net.Fault.create spec ~rng:(Sim.Rng.split rng) in
  let transport =
    Net.Transport.create ?mtu ?max_retries engine ~fault
      ~rng:(Sim.Rng.split rng) ()
  in
  (engine, transport)

let tests =
  [
    Alcotest.test_case "a large request arrives in one piece" `Quick (fun () ->
        let engine, transport = make_transport ~mtu:576 ~seed:1 () in
        Net.Transport.attach transport (node 0) (fun ~src:_ _ -> ());
        let got = ref [] in
        Net.Transport.attach transport (node 1) (fun ~src msg ->
            got := (Net.Node_id.to_int src, msg) :: !got);
        let confirmed = ref (-1) in
        Net.Transport.request transport ~src:(node 0) ~dsts:[ node 1 ] ~h:1
          ~kind:Net.Traffic.Data ~size:2000
          ~on_confirm:(fun ~acked -> confirmed := acked)
          "big payload";
        Sim.Engine.run engine;
        Alcotest.(check (list (pair int string))) "delivered once"
          [ (0, "big payload") ]
          !got;
        Alcotest.(check int) "confirmed" 1 !confirmed;
        (* 2000 B at mtu 576 (568 per chunk + 8 header) is 4 fragments. *)
        Alcotest.(check int) "4 fragments" 4
          (Net.Transport.fragments_sent transport);
        let traffic = Net.Transport.traffic transport in
        Alcotest.(check int) "4 data packets" 4
          (Net.Traffic.count traffic Net.Traffic.Data);
        Alcotest.(check bool) "each packet within the mtu" true
          (Net.Traffic.max_size traffic Net.Traffic.Data <= 576);
        Alcotest.(check bool) "total bytes ~ size + headers" true
          (Net.Traffic.bytes traffic Net.Traffic.Data = 2000 + (4 * 8)));
    Alcotest.test_case "small requests are not fragmented" `Quick (fun () ->
        let engine, transport = make_transport ~mtu:576 ~seed:2 () in
        Net.Transport.attach transport (node 0) (fun ~src:_ _ -> ());
        Net.Transport.attach transport (node 1) (fun ~src:_ _ -> ());
        Net.Transport.request transport ~src:(node 0) ~dsts:[ node 1 ] ~h:1
          ~kind:Net.Traffic.Data ~size:500
          ~on_confirm:(fun ~acked:_ -> ())
          ();
        Sim.Engine.run engine;
        Alcotest.(check int) "no fragments" 0
          (Net.Transport.fragments_sent transport));
    Alcotest.test_case "lost fragments are retransmitted individually" `Quick
      (fun () ->
        let spec = { Net.Fault.reliable with link_loss = 0.3 } in
        let engine, transport =
          make_transport ~spec ~mtu:100 ~max_retries:10 ~seed:3 ()
        in
        Net.Transport.attach transport (node 0) (fun ~src:_ _ -> ());
        let got = ref 0 in
        Net.Transport.attach transport (node 1) (fun ~src:_ _ -> incr got);
        let confirmed = ref false in
        Net.Transport.request transport ~src:(node 0) ~dsts:[ node 1 ] ~h:1
          ~kind:Net.Traffic.Data ~size:900
          ~on_confirm:(fun ~acked:_ -> confirmed := true)
          ();
        Sim.Engine.run engine;
        Alcotest.(check int) "delivered exactly once despite loss" 1 !got;
        Alcotest.(check bool) "confirmed" true !confirmed;
        Alcotest.(check bool) "some retransmission happened" true
          (Net.Transport.retransmissions transport > 0));
    Alcotest.test_case "multicast fragmentation reaches every destination"
      `Quick (fun () ->
        let engine, transport = make_transport ~mtu:200 ~seed:4 () in
        Net.Transport.attach transport (node 0) (fun ~src:_ _ -> ());
        let got = ref [] in
        List.iter
          (fun i ->
            Net.Transport.attach transport (node i) (fun ~src:_ _ ->
                got := i :: !got))
          [ 1; 2; 3 ];
        let confirmed = ref (-1) in
        Net.Transport.request transport ~src:(node 0)
          ~dsts:[ node 1; node 2; node 3 ] ~h:3 ~kind:Net.Traffic.Control
          ~size:1000
          ~on_confirm:(fun ~acked -> confirmed := acked)
          ();
        Sim.Engine.run engine;
        Alcotest.(check (list int)) "all three" [ 1; 2; 3 ]
          (List.sort compare !got);
        Alcotest.(check int) "all acked" 3 !confirmed);
    Alcotest.test_case "tiny mtu is rejected" `Quick (fun () ->
        Alcotest.check_raises "mtu" (Invalid_argument "Transport.create: mtu too small")
          (fun () ->
            let engine = Sim.Engine.create () in
            let rng = Sim.Rng.create ~seed:5 in
            let fault = Net.Fault.create Net.Fault.reliable ~rng in
            ignore
              (Net.Transport.create ~mtu:8 engine ~fault ~rng () :
                unit Net.Transport.t)));
    Alcotest.test_case
      "urcgc at n = 60 over a 1500B-MTU transport: big PDUs still flow" `Slow
      (fun () ->
        (* The scale sweep showed the n = 60 decision exceeds an Ethernet
           payload; Section 5's answer is transport fragmentation. *)
        let n = 60 in
        let engine = Sim.Engine.create () in
        let rng = Sim.Rng.create ~seed:6 in
        let fault =
          Net.Fault.create Net.Fault.reliable ~rng:(Sim.Rng.split rng)
        in
        let transport =
          Net.Transport.create ~mtu:1500 engine ~fault ~rng:(Sim.Rng.split rng)
            ()
        in
        let medium = Urcgc.Medium.of_transport ~h:Urcgc.Medium.All transport in
        let config = Urcgc.Config.make ~k:3 ~n () in
        let cluster = Urcgc.Cluster.create_with_medium ~config ~medium () in
        List.iter
          (fun nd -> Urcgc.Cluster.submit cluster nd "hello")
          (Net.Node_id.group n);
        Urcgc.Cluster.start cluster;
        Sim.Engine.run engine ~until:(Sim.Ticks.of_rtd 10.0);
        Alcotest.(check int) "everything delivered everywhere" (60 * 59)
          (List.length
             (List.filter
                (fun { Urcgc.Cluster.node; msg; _ } ->
                  not
                    (Net.Node_id.equal node
                       (Causal.Mid.origin msg.Causal.Causal_msg.mid)))
                (Urcgc.Cluster.deliveries cluster)));
        Alcotest.(check bool) "fragmentation was exercised" true
          (Net.Transport.fragments_sent transport > 0);
        let traffic = Net.Transport.traffic transport in
        Alcotest.(check bool) "no packet exceeded the mtu" true
          (Net.Traffic.max_size traffic Net.Traffic.Control <= 1500));
  ]

let suite = [ ("net.fragmentation", tests) ]
