(* Command-line front end: run an ad-hoc urcgc scenario and print the report.

   Examples:
     urcgc_sim run -n 15 --rate 0.5 --messages 200
     urcgc_sim run -n 40 --crash 3@5 --crash 7@5 --omission 500 -K 4 --trace
*)

let parse_crash s =
  match String.split_on_char '@' s with
  | [ node; subrun ] -> (
      match (int_of_string_opt node, int_of_string_opt subrun) with
      | Some node, Some subrun when node >= 0 && subrun >= 0 ->
          Ok (Net.Node_id.of_int node, subrun)
      | _ -> Error (`Msg "crash must be <node>@<subrun>"))
  | _ -> Error (`Msg "crash must be <node>@<subrun>")

let crash_conv =
  Cmdliner.Arg.conv
    ( parse_crash,
      fun ppf (node, subrun) ->
        Format.fprintf ppf "%d@%d" (Net.Node_id.to_int node) subrun )

open Cmdliner

let n_arg =
  Arg.(value & opt int 15 & info [ "n"; "group-size" ] ~doc:"Group cardinality.")

let k_arg =
  Arg.(value & opt int 3 & info [ "K"; "retries" ] ~doc:"Crash-detection retries K.")

let rate_arg =
  Arg.(
    value
    & opt float 0.5
    & info [ "rate" ] ~doc:"Per-process submission probability per round.")

let messages_arg =
  Arg.(
    value
    & opt int 200
    & info [ "messages" ] ~doc:"Total messages to generate before draining.")

let omission_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "omission" ]
        ~doc:"Omission failure rate: one omission every $(docv) packets."
        ~docv:"N")

let crash_arg =
  Arg.(
    value
    & opt_all crash_conv []
    & info [ "crash" ] ~doc:"Fail-stop $(docv) (repeatable)." ~docv:"NODE@SUBRUN")

let flow_arg =
  Arg.(
    value
    & flag
    & info [ "flow-control" ] ~doc:"Enable the 8n history flow-control threshold.")

let seed_arg = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"PRNG seed.")

let trace_arg =
  Arg.(value & flag & info [ "trace" ] ~doc:"Dump the protocol trace.")

let codec_arg =
  Arg.(
    value
    & flag
    & info [ "codec" ]
        ~doc:"Run every PDU through the binary wire codec in flight.")

let max_rtd_arg =
  Arg.(value & opt float 400.0 & info [ "max-rtd" ] ~doc:"Simulated time cap.")

let metrics_arg =
  Arg.(
    value
    & flag
    & info [ "metrics" ]
        ~doc:"Record the run's metrics registry and include it in the output.")

let profile_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "profile" ]
        ~doc:
          "Profile the run: write the span-tree cost-attribution report \
           (JSON, schema in docs/PROFILE.md) to $(docv), the \
           deterministic structural report to $(docv).structural, and \
           folded stacks for flamegraph.pl/speedscope to $(docv).folded. \
           The human summary goes to standard error.  Profiled campaigns \
           run with a single worker.  The simulation outputs are \
           byte-identical with and without profiling."
        ~docv:"FILE")

let write_file_raw path contents =
  let oc = open_out path in
  output_string oc contents;
  close_out oc

let profile_enable = function None -> () | Some _ -> Sim.Prof.enable ()

(* Capture between the workload and the output path: serialization and
   printing stay outside the root span, so coverage measures the run. *)
let profile_finish = function
  | None -> ()
  | Some path ->
      let report = Sim.Prof.capture () in
      write_file_raw path (Sim.Prof.report_json report);
      write_file_raw (path ^ ".structural") (Sim.Prof.structural_json report);
      write_file_raw (path ^ ".folded") (Sim.Prof.folded report);
      Format.eprintf "%a@." Sim.Prof.pp_summary report

(* Spec validation failures (negative budget, silenced >= n, rate outside
   [0, 1], ...) surface as Invalid_argument from the library; report them as
   CLI usage errors rather than crashing. *)
let cli_guard f =
  match f () with
  | code -> code
  | exception Invalid_argument msg ->
      Format.eprintf "urcgc_sim: %s@." msg;
      2

let cli_scenario ~name n k rate messages omission crashes flow seed codec
    max_rtd =
  let flow_threshold = if flow then Some (Some (8 * n)) else None in
  let config = Urcgc.Config.make ~k ?flow_threshold ~n () in
  let load = Workload.Load.make ~rate ~total_messages:messages () in
  let fault =
    let base =
      match omission with
      | Some every -> Net.Fault.omission_every every
      | None -> Net.Fault.reliable
    in
    Net.Fault.with_crashes
      (List.map
         (fun (node, subrun) ->
           (node, Sim.Ticks.of_int ((subrun * Sim.Ticks.per_rtd) + 1)))
         crashes)
      base
  in
  Workload.Scenario.make ~name ~fault ~codec_boundary:codec ~seed ~max_rtd
    ~config ~load ()

let run_scenario n k rate messages omission crashes flow seed trace codec
    max_rtd =
  cli_guard @@ fun () ->
  let scenario =
    cli_scenario ~name:"cli" n k rate messages omission crashes flow seed codec
      max_rtd
  in
  let tracer = if trace then Sim.Tracer.create () else Sim.Tracer.null in
  let report = Workload.Runner.run ~tracer scenario in
  if trace then Sim.Tracer.dump Format.std_formatter tracer;
  Format.printf "%a@." Workload.Runner.pp_report report;
  if Workload.Checker.ok report.Workload.Runner.verdict then 0 else 1

let run_cmd =
  let term =
    Term.(
      const run_scenario $ n_arg $ k_arg $ rate_arg $ messages_arg
      $ omission_arg $ crash_arg $ flow_arg $ seed_arg $ trace_arg $ codec_arg
      $ max_rtd_arg)
  in
  Cmd.v (Cmd.info "run" ~doc:"Run a urcgc scenario and print its report.") term

(* ---- trace: typed JSONL export ---------------------------------------- *)

let trace_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "out" ]
        ~doc:"Write the JSONL trace to $(docv) instead of standard output."
        ~docv:"FILE")

let run_trace n k rate messages omission crashes flow seed codec max_rtd
    metrics profile out =
  cli_guard @@ fun () ->
  let scenario =
    cli_scenario ~name:"trace" n k rate messages omission crashes flow seed
      codec max_rtd
  in
  let trace = Sim.Trace.unbounded () in
  let registry = if metrics then Sim.Metrics.create () else Sim.Metrics.null in
  profile_enable profile;
  let report = Workload.Runner.run ~tracer:trace ~metrics:registry scenario in
  profile_finish profile;
  (* Byte-exact output path: no Format margins anywhere near the JSONL. *)
  let oc = match out with Some path -> open_out path | None -> stdout in
  Sim.Trace.iter trace ~f:(fun record ->
      output_string oc (Sim.Trace.json_of_record record);
      output_char oc '\n');
  if metrics then begin
    output_string oc "{\"metrics\":";
    output_string oc (Sim.Metrics.to_json registry);
    output_string oc "}\n"
  end;
  (match out with Some _ -> close_out oc | None -> flush stdout);
  Format.eprintf "%a@." Workload.Runner.pp_report report;
  if Workload.Checker.ok report.Workload.Runner.verdict then 0 else 1

let trace_cmd =
  let term =
    Term.(
      const run_trace $ n_arg $ k_arg $ rate_arg $ messages_arg $ omission_arg
      $ crash_arg $ flow_arg $ seed_arg $ codec_arg $ max_rtd_arg $ metrics_arg
      $ profile_arg $ trace_out_arg)
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Run a urcgc scenario and export its typed protocol trace as \
          deterministic JSONL (one event per line; schema in docs/TRACE.md). \
          With $(b,--metrics), a final line carries the metrics registry. \
          The human report goes to standard error.")
    term

(* ---- analyze: offline trace analysis ----------------------------------- *)

let read_lines path =
  let ic = open_in path in
  let rec go acc =
    match input_line ic with
    | line -> go (line :: acc)
    | exception End_of_file ->
        close_in ic;
        List.rev acc
  in
  go []

let write_file path contents =
  let oc = open_out path in
  output_string oc contents;
  output_char oc '\n';
  close_out oc

let analyze_file_arg =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~doc:"JSONL trace file (as produced by $(b,urcgc_sim trace))."
        ~docv:"TRACE")

let perfetto_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "perfetto" ]
        ~doc:
          "Also write a Chrome trace-event (Perfetto) timeline to $(docv); \
           load it in ui.perfetto.dev or chrome://tracing."
        ~docv:"FILE")

let run_analyze file out perfetto =
  cli_guard @@ fun () ->
  match read_lines file with
  | exception Sys_error msg ->
      Format.eprintf "urcgc_sim: %s@." msg;
      2
  | lines -> (
      match Sim.Analysis.parse_jsonl lines with
      | Error msg ->
          Format.eprintf "urcgc_sim: %s: %s@." file msg;
          2
      | Ok (records, metrics_json) ->
          let analysis = Sim.Analysis.analyze ?metrics_json records in
          let report = Sim.Analysis.report_json analysis in
          (match out with
          | Some path -> write_file path report
          | None ->
              print_string report;
              print_newline ());
          (match perfetto with
          | Some path -> write_file path (Sim.Analysis.perfetto_json records)
          | None -> ());
          Format.eprintf "%a@." Sim.Analysis.pp_summary analysis;
          if Sim.Analysis.verdict_ok analysis.Sim.Analysis.verdict then 0
          else 1)

let analyze_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "out" ]
        ~doc:
          "Write the JSON analysis report to $(docv) instead of standard \
           output."
        ~docv:"FILE")

let analyze_cmd =
  let term =
    Term.(const run_analyze $ analyze_file_arg $ analyze_out_arg $ perfetto_arg)
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:
         "Analyze a JSONL protocol trace offline: reconstruct per-message \
          lifecycles, re-check the causal/at-most-once/atomicity/no-zombie \
          invariants from events alone, and emit a deterministic JSON report \
          (plus, with $(b,--perfetto), a timeline for ui.perfetto.dev). The \
          human summary goes to standard error; the exit status is 0 when \
          the oracle found no violation, 1 otherwise, 2 on unreadable or \
          malformed input.")
    term

let run_cbcast n k rate messages crashes seed trace max_rtd =
  cli_guard @@ fun () ->
  let load = Workload.Load.make ~rate ~total_messages:messages () in
  let fault =
    Net.Fault.with_crashes
      (List.map
         (fun (node, subrun) ->
           (node, Sim.Ticks.of_int ((subrun * Sim.Ticks.per_rtd) + 1)))
         crashes)
      Net.Fault.reliable
  in
  let tracer = if trace then Sim.Tracer.create () else Sim.Tracer.null in
  let report =
    Workload.Runner_cbcast.run ~tracer ~n ~k ~load ~fault ~seed ~max_rtd ()
  in
  if trace then Sim.Tracer.dump Format.std_formatter tracer;
  Format.printf "%a@." Workload.Runner_cbcast.pp_report report;
  if
    report.Workload.Runner_cbcast.causal_ok
    && report.Workload.Runner_cbcast.atomicity_ok
  then 0
  else 1

let cbcast_cmd =
  let term =
    Term.(
      const run_cbcast $ n_arg $ k_arg $ rate_arg $ messages_arg $ crash_arg
      $ seed_arg $ trace_arg $ max_rtd_arg)
  in
  Cmd.v
    (Cmd.info "cbcast" ~doc:"Run the CBCAST baseline on the same scenario shape.")
    term

let run_psync n k rate messages omission crashes seed trace max_rtd =
  cli_guard @@ fun () ->
  let load = Workload.Load.make ~rate ~total_messages:messages () in
  let fault =
    let base =
      match omission with
      | Some every -> Net.Fault.omission_every every
      | None -> Net.Fault.reliable
    in
    Net.Fault.with_crashes
      (List.map
         (fun (node, subrun) ->
           (node, Sim.Ticks.of_int ((subrun * Sim.Ticks.per_rtd) + 1)))
         crashes)
      base
  in
  let tracer = if trace then Sim.Tracer.create () else Sim.Tracer.null in
  let report =
    Workload.Runner_psync.run ~tracer ~n ~k ~load ~fault ~seed ~max_rtd ()
  in
  if trace then Sim.Tracer.dump Format.std_formatter tracer;
  Format.printf "%a@." Workload.Runner_psync.pp_report report;
  if report.Workload.Runner_psync.causal_ok then 0 else 1

let psync_cmd =
  let term =
    Term.(
      const run_psync $ n_arg $ k_arg $ rate_arg $ messages_arg $ omission_arg
      $ crash_arg $ seed_arg $ trace_arg $ max_rtd_arg)
  in
  Cmd.v
    (Cmd.info "psync" ~doc:"Run the Psync baseline on the same scenario shape.")
    term

let run_urgc n k rate messages omission crashes seed max_rtd =
  cli_guard @@ fun () ->
  let engine = Sim.Engine.create () in
  let rng = Sim.Rng.create ~seed in
  let fault_spec =
    let base =
      match omission with
      | Some every -> Net.Fault.omission_every every
      | None -> Net.Fault.reliable
    in
    Net.Fault.with_crashes
      (List.map
         (fun (node, subrun) ->
           (node, Sim.Ticks.of_int ((subrun * Sim.Ticks.per_rtd) + 1)))
         crashes)
      base
  in
  let fault = Net.Fault.create fault_spec ~rng:(Sim.Rng.split rng) in
  let net = Net.Netsim.create engine ~fault ~rng:(Sim.Rng.split rng) () in
  let cluster = Urgc.Cluster.create ~n ~k ~net () in
  let produced = ref 0 in
  Urgc.Cluster.on_round cluster (fun ~round:_ ->
      List.iter
        (fun node ->
          if !produced < messages && Sim.Rng.bool rng rate then begin
            incr produced;
            Urgc.Cluster.submit cluster node !produced
          end)
        (Net.Node_id.group n));
  Urgc.Cluster.start cluster;
  let rtd = Sim.Ticks.of_int Sim.Ticks.per_rtd in
  let rec advance () =
    let now = Sim.Engine.now engine in
    if Sim.Ticks.to_rtd now >= max_rtd then ()
    else begin
      Sim.Engine.run engine ~until:(Sim.Ticks.add now rtd);
      if !produced >= messages && Urgc.Cluster.quiescent cluster then ()
      else advance ()
    end
  in
  advance ();
  let ok = Urgc.Cluster.total_order_ok cluster in
  Format.printf
    "urgc: generated=%d processed events=%d over %d subruns; total order: %b@."
    (List.length (Urgc.Cluster.generations cluster))
    (List.length (Urgc.Cluster.deliveries cluster))
    (Urgc.Cluster.subrun cluster) ok;
  if ok then 0 else 1

let urgc_cmd =
  let term =
    Term.(
      const run_urgc $ n_arg $ k_arg $ rate_arg $ messages_arg $ omission_arg
      $ crash_arg $ seed_arg $ max_rtd_arg)
  in
  Cmd.v
    (Cmd.info "urgc"
       ~doc:"Run the total-order companion algorithm on the same scenario shape.")
    term

(* ---- campaign: randomized fault sweep with shrinking ------------------ *)

let budget_arg =
  Arg.(
    value
    & opt int 100
    & info [ "budget" ] ~doc:"Number of randomized runs in the campaign.")

let over_budget_arg =
  Arg.(
    value
    & flag
    & info [ "over-budget" ]
        ~doc:
          "Force every run's silenced-per-subrun burst strictly beyond the \
           resilience bound t = (n-1)/2, searching for the failure envelope.")

let no_shrink_arg =
  Arg.(
    value
    & flag
    & info [ "no-shrink" ] ~doc:"Skip minimizing failing runs.")

let out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "out" ]
        ~doc:
          "Write the JSON report to $(docv) instead of standard output (the \
           human summary then goes to standard output instead of stderr)."
        ~docv:"FILE")

let jobs_arg =
  Arg.(
    value
    & opt int 1
    & info [ "j"; "jobs" ]
        ~doc:
          "Worker count for the parallel campaign phases (run execution and \
           speculative shrink candidates).  $(docv) = 0 means the detected \
           core count.  The JSON report is byte-identical at any job count; \
           on runtimes without domains (OCaml 4.x) execution is sequential \
           regardless."
        ~docv:"JOBS")

let campaign_analyze_arg =
  Arg.(
    value
    & flag
    & info [ "analyze" ]
        ~doc:
          "Trace every run, feed it through the offline trace oracle, and \
           embed the per-run analysis report plus the checker-vs-oracle \
           agreement bit in the JSON output.")

let run_campaign budget seed over_budget no_shrink with_metrics with_analysis
    jobs profile out =
  cli_guard @@ fun () ->
  Sim.Pool.reset_stats ();
  profile_enable profile;
  let campaign =
    Workload.Campaign.run ~over_budget ~shrink_failures:(not no_shrink)
      ~with_metrics ~with_analysis ~jobs ~budget ~seed ()
  in
  profile_finish profile;
  (* The pool's per-domain counters are wall-clock-dependent, so they go to
     the human (stderr), never into the byte-compared JSON report. *)
  if with_metrics then begin
    let pool_registry = Sim.Metrics.create () in
    Sim.Pool.record_metrics pool_registry;
    Format.eprintf "@[<v 2>pool:@ %a@]@." Sim.Metrics.pp pool_registry
  end;
  let json = Workload.Campaign.to_json campaign in
  (match out with
  | Some path ->
      let oc = open_out path in
      output_string oc json;
      output_char oc '\n';
      close_out oc;
      Format.printf "%a@." Workload.Campaign.pp_summary campaign
  | None ->
      print_string json;
      print_newline ();
      Format.eprintf "%a@." Workload.Campaign.pp_summary campaign);
  let disagreements =
    List.filter
      (fun r -> r.Workload.Campaign.oracle_agrees = Some false)
      campaign.Workload.Campaign.runs
  in
  List.iter
    (fun r ->
      Format.eprintf
        "run %d (seed %d): trace oracle disagrees with the live checker@."
        r.Workload.Campaign.index r.Workload.Campaign.seed)
    disagreements;
  if campaign.Workload.Campaign.failed = 0 && disagreements = [] then 0 else 1

let campaign_cmd =
  let term =
    Term.(
      const run_campaign $ budget_arg $ seed_arg $ over_budget_arg
      $ no_shrink_arg $ metrics_arg $ campaign_analyze_arg $ jobs_arg
      $ profile_arg $ out_arg)
  in
  Cmd.v
    (Cmd.info "campaign"
       ~doc:
         "Sweep randomized fault configurations, check every correctness and \
          liveness invariant, shrink failures to minimal reproducers, and \
          emit a deterministic JSON report.")
    term

(* ---- replay: re-run one campaign configuration ------------------------ *)

let send_omission_arg =
  Arg.(
    value
    & opt float 0.0
    & info [ "send-omission" ] ~doc:"Per-packet send-side drop probability.")

let recv_omission_arg =
  Arg.(
    value
    & opt float 0.0
    & info [ "recv-omission" ]
        ~doc:"Per-packet receive-side drop probability.")

let link_loss_arg =
  Arg.(
    value
    & opt float 0.0
    & info [ "link-loss" ] ~doc:"Per-packet subnetwork loss probability.")

let silenced_arg =
  Arg.(
    value
    & opt int 0
    & info [ "silenced" ]
        ~doc:"Processes silenced per subrun (adversarial bursts).")

let replay_analyze_arg =
  Arg.(
    value
    & flag
    & info [ "analyze" ]
        ~doc:
          "Trace the run, print the offline trace-oracle summary, and fail \
           if the oracle disagrees with the live checker.")

let run_replay n k rate messages send_omission recv_omission link_loss
    silenced crashes max_rtd seed trace metrics analyze profile =
  cli_guard @@ fun () ->
  let spec =
    {
      Workload.Campaign.n;
      k;
      rate;
      messages;
      send_omission;
      recv_omission;
      link_loss;
      silenced_per_subrun = silenced;
      crashes =
        List.map
          (fun (node, subrun) -> (Net.Node_id.to_int node, subrun))
          crashes;
      max_rtd;
    }
  in
  (* The analyzer needs the whole run, so --analyze upgrades the bounded
     default ring to an unbounded sink. *)
  let tracer =
    if analyze then Sim.Trace.unbounded ()
    else if trace then Sim.Tracer.create ()
    else Sim.Tracer.null
  in
  let registry = if metrics then Sim.Metrics.create () else Sim.Metrics.null in
  let scenario =
    Workload.Campaign.scenario_of_spec ~name:"replay" ~seed spec
  in
  profile_enable profile;
  let report = Workload.Runner.run ~tracer ~metrics:registry scenario in
  profile_finish profile;
  if trace then Sim.Tracer.dump Format.std_formatter tracer;
  let outcome = Workload.Campaign.evaluate spec report in
  Format.printf "%a@." Workload.Runner.pp_report report;
  Format.printf "spec: %a@." Workload.Campaign.pp_spec spec;
  if metrics then
    Format.printf "@[<v 2>metrics:@ %a@]@." Sim.Metrics.pp registry;
  let oracle_agrees =
    if not analyze then true
    else begin
      let analysis = Sim.Analysis.analyze ~n (Sim.Trace.records tracer) in
      Format.printf "@[<v 2>analysis:@ %a@]@." Sim.Analysis.pp_summary analysis;
      let agrees =
        Workload.Analyzer.agrees report.Workload.Runner.verdict
          analysis.Sim.Analysis.verdict
      in
      if not agrees then
        Format.printf "replay: trace oracle disagrees with the live checker@.";
      agrees
    end
  in
  if outcome.Workload.Campaign.ok then begin
    Format.printf "replay: ok@.";
    if oracle_agrees then 0 else 1
  end
  else begin
    List.iter
      (fun v -> Format.printf "replay violation: %s@." v)
      outcome.Workload.Campaign.violations;
    1
  end

let replay_cmd =
  let term =
    Term.(
      const run_replay $ n_arg $ k_arg $ rate_arg $ messages_arg
      $ send_omission_arg $ recv_omission_arg $ link_loss_arg $ silenced_arg
      $ crash_arg $ max_rtd_arg $ seed_arg $ trace_arg $ metrics_arg
      $ replay_analyze_arg $ profile_arg)
  in
  Cmd.v
    (Cmd.info "replay"
       ~doc:
         "Replay one campaign configuration (the repro command line a \
          campaign report emits) and print its full report and verdict.")
    term

(* ---- explore: bounded schedule exploration ---------------------------- *)

let explore_n_arg =
  Arg.(
    value & opt int 3 & info [ "n"; "group-size" ] ~doc:"Group cardinality.")

let explore_k_arg =
  Arg.(
    value & opt int 2 & info [ "K"; "retries" ] ~doc:"Crash-detection retries K.")

let explore_messages_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "messages" ]
        ~doc:
          "Message program size: message $(i,j) is submitted by node $(i,j) \
           mod n at subrun $(i,j) / n.  Defaults to n (one per node in \
           subrun 0); must fit the window (at most n * window)."
        ~docv:"M")

let window_arg =
  Arg.(
    value
    & opt int 1
    & info [ "window" ]
        ~doc:"Subruns with explored nondeterminism." ~docv:"SUBRUNS")

let horizon_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "horizon" ]
        ~doc:
          "Total run length in subruns (defaults to window + 2K + 4)."
        ~docv:"SUBRUNS")

let crash_choices_arg =
  Arg.(
    value
    & flag
    & info [ "crash-choices" ]
        ~doc:
          "Enumerate one optional fail-stop of any node before any round of \
           the window.")

let parse_fixed_crash s =
  match String.split_on_char '@' s with
  | [ node; round ] -> (
      match (int_of_string_opt node, int_of_string_opt round) with
      | Some node, Some round when node >= 0 && round >= 0 -> Ok (node, round)
      | _ -> Error (`Msg "fixed crash must be <node>@<round>"))
  | _ -> Error (`Msg "fixed crash must be <node>@<round>")

let fixed_crash_conv =
  Arg.conv
    ( parse_fixed_crash,
      fun ppf (node, round) -> Format.fprintf ppf "%d@%d" node round )

let fixed_crash_arg =
  Arg.(
    value
    & opt_all fixed_crash_conv []
    & info [ "fixed-crash" ]
        ~doc:
          "Always-applied fail-stop before protocol round $(i,ROUND) \
           (repeatable; two rounds per subrun)."
        ~docv:"NODE@ROUND")

let omission_choices_arg =
  Arg.(
    value
    & opt int 0
    & info [ "omission-choices" ]
        ~doc:
          "Enumerate losing one of the first $(docv) packet copies offered \
           to the network (0 disables omission branching)."
        ~docv:"COPIES")

let explore_silenced_arg =
  Arg.(
    value
    & opt int 0
    & info [ "silenced" ]
        ~doc:
          "Adversarial send-omission burst size; the silenced set of each \
           window subrun is an explored choice."
        ~docv:"S")

let silence_mode_arg =
  Arg.(
    value
    & opt
        (enum
           [
             ("window", Workload.Explore.Window);
             ("persistent", Workload.Explore.Persistent);
           ])
        Workload.Explore.Persistent
    & info [ "silence-mode" ]
        ~doc:
          "What happens to the silenced set beyond the window: \
           $(b,persistent) (default) keeps the last chosen set applying \
           until the horizon, $(b,window) ends the burst with the window \
           (the campaign-style per-subrun adversary, directly enumerable)."
        ~docv:"MODE")

let max_schedules_arg =
  Arg.(
    value
    & opt int 200_000
    & info [ "max-schedules" ]
        ~doc:"Schedule budget before the search reports truncation.")

let no_prune_arg =
  Arg.(
    value
    & flag
    & info [ "no-prune" ]
        ~doc:
          "Disable commutativity pruning and enumerate the raw choice tree \
           (brute force).")

let no_oracle_arg =
  Arg.(
    value
    & flag
    & info [ "no-oracle" ]
        ~doc:
          "Skip the per-schedule offline trace-oracle cross-check (faster).")

let replay_schedule_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "replay-schedule" ]
        ~doc:
          "Replay one schedule (comma-separated choice indices, or $(b,-) \
           for the empty schedule) instead of exploring, printing the \
           labelled decision log and the verdict."
        ~docv:"CSV")

let out_arg_explore =
  Arg.(
    value
    & opt (some string) None
    & info [ "out" ] ~doc:"Write the JSON report to $(docv)." ~docv:"FILE")

let explore_config n k messages window horizon crash_choices fixed_crashes
    omission_choices silenced silence_mode no_oracle =
  Workload.Explore.config ~k ?messages ~window_subruns:window
    ?horizon_subruns:horizon ~crash_choices ~fixed_crashes ~omission_choices
    ~silenced ~silence_mode ~with_oracle:(not no_oracle) ~n ()

let run_explore n k messages window horizon crash_choices fixed_crashes
    omission_choices silenced silence_mode max_schedules no_prune no_oracle
    replay_schedule profile out =
  cli_guard @@ fun () ->
  let config =
    explore_config n k messages window horizon crash_choices fixed_crashes
      omission_choices silenced silence_mode no_oracle
  in
  match replay_schedule with
  | Some csv ->
      let schedule =
        if csv = "-" || csv = "" then []
        else
          String.split_on_char ',' csv
          |> List.map (fun s ->
                 match int_of_string_opt (String.trim s) with
                 | Some i when i >= 0 -> i
                 | _ ->
                     invalid_arg
                       "explore: --replay-schedule wants comma-separated \
                        non-negative integers")
      in
      profile_enable profile;
      let result, steps = Workload.Explore.replay config ~schedule in
      profile_finish profile;
      List.iteri
        (fun i step ->
          Format.printf "%3d: %d/%d %s@." i step.Sim.Explore.chosen
            step.Sim.Explore.arity step.Sim.Explore.label)
        steps;
      Format.printf
        "replay: %d rounds, %d generated, %d remote processing events@."
        result.Workload.Explore.rounds result.Workload.Explore.generated
        result.Workload.Explore.delivered_remote;
      List.iter
        (fun (node, reason) ->
          Format.printf "replay: p%d left the group (%s)@." node reason)
        result.Workload.Explore.departures;
      if result.Workload.Explore.violations = [] then begin
        Format.printf "replay: ok@.";
        0
      end
      else begin
        List.iter
          (fun v -> Format.printf "replay violation: %s@." v)
          result.Workload.Explore.violations;
        1
      end
  | None ->
      profile_enable profile;
      let report =
        Workload.Explore.explore ~prune:(not no_prune) ~max_schedules config
      in
      profile_finish profile;
      let json = Workload.Explore.to_json report in
      (match out with
      | Some path ->
          let oc = open_out path in
          output_string oc json;
          output_char oc '\n';
          close_out oc;
          Format.printf "%a@." Workload.Explore.pp_report report
      | None ->
          print_string json;
          print_newline ();
          Format.eprintf "%a@." Workload.Explore.pp_report report);
      if Workload.Explore.ok report then 0 else 1

let explore_cmd =
  let term =
    Term.(
      const run_explore $ explore_n_arg $ explore_k_arg $ explore_messages_arg
      $ window_arg $ horizon_arg $ crash_choices_arg $ fixed_crash_arg
      $ omission_choices_arg $ explore_silenced_arg $ silence_mode_arg
      $ max_schedules_arg $ no_prune_arg $ no_oracle_arg $ replay_schedule_arg
      $ profile_arg $ out_arg_explore)
  in
  Cmd.v
    (Cmd.info "explore"
       ~doc:
         "Exhaustively enumerate crash timing, omission placement, \
          adversarial silencing and delivery interleavings of a small \
          configuration, judging every schedule with the correctness \
          checker and the trace oracle, and emit a deterministic JSON \
          report with state-space counts and a replayable counterexample.")
    term

let main_cmd =
  Cmd.group
    (Cmd.info "urcgc_sim" ~version:"1.0.0"
       ~doc:"Simulator for the urcgc causal reliable multicast protocol.")
    [
      run_cmd;
      trace_cmd;
      analyze_cmd;
      cbcast_cmd;
      psync_cmd;
      urgc_cmd;
      campaign_cmd;
      replay_cmd;
      explore_cmd;
    ]

let () = exit (Cmd.eval' main_cmd)
