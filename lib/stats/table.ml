type align = Left | Right

type row = Cells of string list | Rule

type t = { columns : (string * align) list; mutable rows : row list }

let create ~columns = { columns; rows = [] }

let add_row t cells =
  if List.length cells <> List.length t.columns then
    invalid_arg "Table.add_row: cell count mismatch";
  t.rows <- Cells cells :: t.rows

let add_rule t = t.rows <- Rule :: t.rows

let pp ppf t =
  let rows = List.rev t.rows in
  let widths =
    List.mapi
      (fun i (header, _) ->
        List.fold_left
          (fun acc row ->
            match row with
            | Rule -> acc
            | Cells cells -> max acc (String.length (List.nth cells i)))
          (String.length header) rows)
      t.columns
  in
  let pad align width s =
    let fill = width - String.length s in
    if fill <= 0 then s
    else
      match align with
      | Left -> s ^ String.make fill ' '
      | Right -> String.make fill ' ' ^ s
  in
  let print_cells cells =
    let parts =
      List.map2
        (fun (cell, (_, align)) width -> pad align width cell)
        (List.combine cells t.columns)
        widths
    in
    Format.fprintf ppf "| %s |" (String.concat " | " parts);
    Format.pp_print_newline ppf ()
  in
  let rule () =
    let parts = List.map (fun width -> String.make width '-') widths in
    Format.fprintf ppf "+-%s-+" (String.concat "-+-" parts);
    Format.pp_print_newline ppf ()
  in
  rule ();
  print_cells (List.map fst t.columns);
  rule ();
  List.iter (function Cells cells -> print_cells cells | Rule -> rule ()) rows;
  rule ()

let cell_int = string_of_int

let cell_float ?(decimals = 2) x = Printf.sprintf "%.*f" decimals x
let cell_pct x = Printf.sprintf "%.1f%%" (100.0 *. x)
