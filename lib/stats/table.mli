(** Aligned text tables for benchmark output. *)

type align = Left | Right

type t

val create : columns:(string * align) list -> t

val add_row : t -> string list -> unit
(** Raises [Invalid_argument] if the cell count does not match the columns. *)

val add_rule : t -> unit
(** Horizontal separator. *)

val pp : Format.formatter -> t -> unit

val cell_int : int -> string
val cell_float : ?decimals:int -> float -> string
val cell_pct : float -> string
(** [cell_pct f] renders the ratio [f] as a percentage, e.g. [0.98] as
    ["98.0%"]. *)
