(** Binary codec for the urcgc PDUs.

    The encoded length of every body is exactly {!Wire.body_size} — the
    byte accounting behind the paper's Table 1 measurements is checked
    against these codecs by property tests.  Decoding never raises: hostile
    or truncated input yields [Error].

    The group cardinality [n] is part of the channel contract (both sides
    know the group), so vectors are encoded without per-message length
    prefixes, as the size formulas assume. *)

type 'a payload = 'a Net.Bytebuf.codec = {
  encode : 'a -> bytes;
  decode : bytes -> ('a, string) result;
}

val string_payload : string payload
(** Identity codec for string payloads. *)

val encode_body : 'a payload -> 'a Wire.body -> bytes
(** Raises [Invalid_argument] if a data message's declared [payload_size]
    differs from the payload's actual encoded length (the size accounting
    would silently lie otherwise), or if a field exceeds its wire width. *)

val encode_body_into :
  Net.Bytebuf.Writer.t -> 'a payload -> 'a Wire.body -> bytes
(** [encode_body] writing into a caller-pooled writer (cleared first):
    encode-heavy loops reuse one grown buffer instead of allocating a
    fresh writer per PDU.  Produces exactly the bytes {!encode_body}
    would. *)

val decode_body : 'a payload -> n:int -> bytes -> ('a Wire.body, string) result

val encode_decision : Decision.t -> bytes
val decode_decision : n:int -> Net.Bytebuf.Reader.t -> (Decision.t, string) result
