type reason =
  | Declared_crashed
  | Decision_silence
  | Recovery_exhausted
  | Partitioned

let reason_to_string = function
  | Declared_crashed -> "declared crashed (suicide)"
  | Decision_silence -> "decision silence"
  | Recovery_exhausted -> "recovery exhausted"
  | Partitioned -> "partitioned (solo view)"

type 'a action =
  | Broadcast of 'a Wire.body
  | Send of Net.Node_id.t * 'a Wire.body
  | Processed of 'a Causal.Causal_msg.t
  | Confirmed of Causal.Mid.t
  | Discarded of Causal.Mid.t list
  | Queued of Causal.Mid.t * int
  | Left of reason

(* Actions are streamed into a sink as they happen instead of accumulated
   into a list and replayed: on the n >> 100 hot path the per-message cons
   cells and [List.rev]/[List.concat_map] plumbing dominated the allocation
   profile.  The emission order is exactly the order the old list API
   returned, and member state never depends on a sink callback's effects
   (callbacks may not call back into this member), so the two forms are
   observably equivalent — test/member_reference.ml pins this with a
   randomized equivalence suite. *)
type 'a sink = {
  emit_broadcast : 'a Wire.body -> unit;
  emit_send : Net.Node_id.t -> 'a Wire.body -> unit;
  emit_processed : 'a Causal.Causal_msg.t -> unit;
  emit_confirmed : Causal.Mid.t -> unit;
  emit_discarded : Causal.Mid.t list -> unit;
  emit_queued : Causal.Mid.t -> int -> unit;
  emit_left : reason -> unit;
}

let emit_action sink = function
  | Broadcast body -> sink.emit_broadcast body
  | Send (dst, body) -> sink.emit_send dst body
  | Processed msg -> sink.emit_processed msg
  | Confirmed mid -> sink.emit_confirmed mid
  | Discarded mids -> sink.emit_discarded mids
  | Queued (mid, depth) -> sink.emit_queued mid depth
  | Left reason -> sink.emit_left reason

type 'a submission = { payload : 'a; deps : Causal.Mid.t list option; size : int }

type 'a t = {
  id : Net.Node_id.t;
  config : Config.t;
  delivery : Causal.Delivery.t;
  history : 'a Causal.History.t;
  waiting : 'a Causal.Waiting_list.t;
  view : Causal.Group_view.t;
  sap : 'a submission Queue.t;
  mutable decision : Decision.t;
  mutable decision_seen_this_subrun : bool;
  mutable next_seq : int;
  mutable silence : int;
  mutable recovery_stalled : int;
  mutable recovery_baseline : int;
  mutable pending_requests : Wire.request list;
  mutable coordinator_for : int option;
  mutable left : reason option;
  mutable flow_blocked : bool;
  mutable subrun : int;
}

let create ?decision config id =
  let n = config.Config.n in
  (* Decisions are immutable once built ([Coordinator.compute] copies, never
     mutates), so a cluster can hand all its members one shared initial
     decision instead of n private copies of the same twelve arrays. *)
  let decision =
    match decision with Some d -> d | None -> Decision.initial ~n
  in
  {
    id;
    config;
    delivery = Causal.Delivery.create ~n;
    history = Causal.History.create ~n;
    waiting = Causal.Waiting_list.create ~n;
    view = Causal.Group_view.create ~n;
    sap = Queue.create ();
    decision;
    decision_seen_this_subrun = false;
    next_seq = 1;
    silence = 0;
    recovery_stalled = 0;
    recovery_baseline = 0;
    pending_requests = [];
    coordinator_for = None;
    left = None;
    flow_blocked = false;
    subrun = -1;
  }

let id t = t.id
let config t = t.config
let active t = t.left = None
let left_reason t = t.left
let view t = t.view
let latest_decision t = t.decision
let history_length t = Causal.History.length t.history
let waiting_length t = Causal.Waiting_list.length t.waiting
let processed_count t = Causal.Delivery.count t.delivery
let last_processed t origin = Causal.Delivery.last_processed t.delivery origin
let flow_blocked t = t.flow_blocked
let sap_backlog t = Queue.length t.sap

let submit ?deps ?size t payload =
  let size = Option.value size ~default:t.config.Config.payload_size in
  Queue.push { payload; deps; size } t.sap

let leave t sink reason =
  t.left <- Some reason;
  sink.emit_left reason

(* -- message processing ---------------------------------------------- *)

let process_one t sink msg =
  Causal.Delivery.mark t.delivery msg.Causal.Causal_msg.mid;
  Causal.History.store t.history msg;
  sink.emit_processed msg

(* Process [msg] then drain the waiting list: each processed message can make
   further waiting ones processable. *)
(* Top-level recursion so the per-delivery cascade allocates no closure. *)
let rec drain_waiting t sink =
  match Causal.Waiting_list.take_processable t.waiting t.delivery with
  | None -> ()
  | Some unblocked ->
      process_one t sink unblocked;
      drain_waiting t sink

let process_cascade t sink msg =
  process_one t sink msg;
  if !Sim.Prof.on then Sim.Prof.enter "member.drain";
  drain_waiting t sink;
  if !Sim.Prof.on then Sim.Prof.exit ()

let receive_data t sink msg =
  let mid = msg.Causal.Causal_msg.mid in
  if Causal.Delivery.processed t.delivery mid then ()
  else if Causal.Delivery.processable t.delivery msg then
    process_cascade t sink msg
  else begin
    Causal.Waiting_list.add t.waiting msg;
    sink.emit_queued mid (Causal.Waiting_list.length t.waiting)
  end

(* -- data generation --------------------------------------------------- *)

(* The sender's frontier, as an exact-size array sorted by [Mid.compare]
   (origins ascend, one dep per origin). *)
let frontier t =
  let n = t.config.Config.n in
  let self = Net.Node_id.to_int t.id in
  let count = ref 0 in
  for j = 0 to n - 1 do
    if j <> self && Causal.Delivery.last_processed t.delivery (Net.Node_id.of_int j) > 0
    then incr count
  done;
  let deps = ref [||] in
  let k = ref 0 in
  for j = 0 to n - 1 do
    if j <> self then begin
      let origin = Net.Node_id.of_int j in
      let seq = Causal.Delivery.last_processed t.delivery origin in
      if seq > 0 then begin
        let dep = Causal.Mid.make ~origin ~seq in
        if !k = 0 then deps := Array.make !count dep;
        !deps.(!k) <- dep;
        incr k
      end
    end
  done;
  !deps

let update_flow_control t =
  match t.config.Config.flow_threshold with
  | None -> ()
  | Some threshold -> t.flow_blocked <- Causal.History.length t.history >= threshold

let generate_data t sink =
  update_flow_control t;
  if t.flow_blocked || Queue.is_empty t.sap then ()
  else begin
    if !Sim.Prof.on then Sim.Prof.enter "member.submit";
    let { payload; deps; size } = Queue.pop t.sap in
    let mid = Causal.Mid.make ~origin:t.id ~seq:t.next_seq in
    t.next_seq <- t.next_seq + 1;
    let msg =
      match deps with
      | Some deps ->
          List.iter
            (fun dep ->
              if not (Causal.Delivery.processed t.delivery dep) then
                invalid_arg
                  (Format.asprintf
                     "Member.generate_data: explicit dependency %a not yet \
                      processed locally"
                     Causal.Mid.pp dep))
            deps;
          Causal.Causal_msg.make ~mid ~deps ~payload_size:size payload
      | None ->
          Causal.Causal_msg.of_sorted_deps ~mid ~deps:(frontier t)
            ~payload_size:size payload
    in
    (* Broadcast first, then the local processing cascade, then the
       confirmation — the order the old list API established.  The sender
       processes its own message immediately: its dependencies are all in
       its processed prefix by construction, and nothing the broadcast
       emission does reads the delivery state the cascade updates. *)
    sink.emit_broadcast (Wire.Data msg);
    process_cascade t sink msg;
    sink.emit_confirmed mid;
    if !Sim.Prof.on then Sim.Prof.exit ()
  end

(* -- decisions --------------------------------------------------------- *)

let purge_history t (d : Decision.t) =
  for j = 0 to t.config.Config.n - 1 do
    ignore
      (Causal.History.purge_upto t.history ~origin:(Net.Node_id.of_int j)
         ~seq:d.stable.(j))
  done

(* Orphaned sequences: all holders of message (j, max_processed(j)+1) crashed,
   so the gap between what anyone processed and the oldest waiting message can
   never be filled.  The group agreed (full-group decision) to destroy the
   waiting messages that depend on it. *)
let purge_orphans t sink (d : Decision.t) =
  if !Sim.Prof.on then Sim.Prof.enter "member.discard";
  (* Accumulated in reverse, reversed once at the end: origins ascending,
     each origin's mids in discard order. *)
  let discarded = ref [] in
  for j = 0 to t.config.Config.n - 1 do
    if
      (not d.alive.(j))
      && d.min_waiting.(j) > 0
      && d.min_waiting.(j) - d.max_processed.(j) > 1
    then begin
      let origin = Net.Node_id.of_int j in
      let mids =
        Causal.Waiting_list.discard_from t.waiting ~origin
          ~seq:(d.max_processed.(j) + 1)
      in
      discarded := List.rev_append mids !discarded
    end
  done;
  (match !discarded with
  | [] -> ()
  | mids -> sink.emit_discarded (List.rev mids));
  if !Sim.Prof.on then Sim.Prof.exit ()

(* [evidence] says whether adopting [d] proves some *other* process is still
   running: the decision was issued by another coordinator, or (when we
   coordinated it ourselves) it aggregated a request from at least one other
   member.  Only such decisions may feed the liveness machinery — a solo
   process's own decisions are not evidence of a live group, and treating
   them as such is what kept the expelled-but-silenced zombie of
   docs/EXPLORE.md alive forever.  Singleton groups are exempt: no other
   process exists whose evidence could ever arrive. *)
let adopt_decision t sink ~evidence d =
  if Decision.newer d ~than:t.decision then begin
    if !Sim.Prof.on then Sim.Prof.enter "member.adopt";
    t.decision <- d;
    if evidence || t.config.Config.n = 1 then begin
      t.decision_seen_this_subrun <- true;
      t.silence <- 0
    end;
    Causal.Group_view.set_alive_array t.view d.Decision.alive;
    if not d.Decision.alive.(Net.Node_id.to_int t.id) then
      (* "When an alive process notices it is supposed dead, it commits
         suicide." *)
      leave t sink Declared_crashed
    else if t.config.Config.n > 1 && Causal.Group_view.cardinal t.view <= 1
    then
      (* Primary-partition discipline: in a multi-process group a view that
         degenerates to {self} is indistinguishable from being partitioned
         away from a surviving majority, so the process departs instead of
         coordinating a group nobody else belongs to. *)
      leave t sink Partitioned
    else if d.Decision.full_group then begin
      purge_history t d;
      purge_orphans t sink d
    end;
    if !Sim.Prof.on then Sim.Prof.exit ()
  end

(* -- recovery ---------------------------------------------------------- *)

(* Known gaps against the decision's max_processed vector, without building
   the request PDUs: [count_recovery_gaps] feeds the stall tracker, and
   [emit_recovery_requests] (origins ascending, the old list order) builds
   the PDUs only when the process stays in the group. *)
let count_recovery_gaps t =
  let d = t.decision in
  let gaps = ref 0 in
  for j = 0 to t.config.Config.n - 1 do
    let origin = Net.Node_id.of_int j in
    let mine = Causal.Delivery.last_processed t.delivery origin in
    if
      d.Decision.max_processed.(j) > mine
      && not (Net.Node_id.equal d.Decision.most_updated.(j) t.id)
    then incr gaps
  done;
  !gaps

let emit_recovery_requests t sink =
  let d = t.decision in
  for j = 0 to t.config.Config.n - 1 do
    let origin = Net.Node_id.of_int j in
    let mine = Causal.Delivery.last_processed t.delivery origin in
    if d.Decision.max_processed.(j) > mine then begin
      let target = d.Decision.most_updated.(j) in
      if not (Net.Node_id.equal target t.id) then
        sink.emit_send target
          (Wire.Recover_req
             {
               requester = t.id;
               origin;
               from_seq = mine + 1;
               to_seq = d.Decision.max_processed.(j);
             })
    end
  done

(* Returns [true] when the process leaves (recovery exhausted): [gaps] many
   recovery requests are outstanding this subrun. *)
let track_recovery_progress t sink ~gaps =
  if gaps = 0 then begin
    t.recovery_stalled <- 0;
    t.recovery_baseline <- Causal.Delivery.count t.delivery;
    false
  end
  else begin
    let count = Causal.Delivery.count t.delivery in
    if count > t.recovery_baseline then t.recovery_stalled <- 0
    else t.recovery_stalled <- t.recovery_stalled + 1;
    t.recovery_baseline <- count;
    if t.recovery_stalled >= t.config.Config.r then begin
      leave t sink Recovery_exhausted;
      true
    end
    else false
  end

(* Collects a sink's emissions into a list (original API order).  Used by
   the public list wrappers, and by the coordinator path of mid_subrun
   where the decision broadcast must be emitted before the adoption's local
   actions even though adoption runs first. *)
let collecting f =
  let acc = ref [] in
  let push action = acc := action :: !acc in
  let sink =
    {
      emit_broadcast = (fun body -> push (Broadcast body));
      emit_send = (fun dst body -> push (Send (dst, body)));
      emit_processed = (fun msg -> push (Processed msg));
      emit_confirmed = (fun mid -> push (Confirmed mid));
      emit_discarded = (fun mids -> push (Discarded mids));
      emit_queued = (fun mid depth -> push (Queued (mid, depth)));
      emit_left = (fun reason -> push (Left reason));
    }
  in
  f sink;
  List.rev !acc

(* -- round hooks ------------------------------------------------------- *)

let my_request t ~subrun =
  {
    Wire.sender = t.id;
    subrun;
    last_processed = Causal.Delivery.vector t.delivery;
    waiting = Causal.Waiting_list.oldest_vector t.waiting;
    prev_decision = t.decision;
  }

let begin_subrun_into t sink ~subrun =
  if active t then begin
    (* Silence bookkeeping: a subrun elapsed without any decision. *)
    if t.subrun >= 0 && not t.decision_seen_this_subrun then
      t.silence <- t.silence + 1;
    t.subrun <- subrun;
    t.decision_seen_this_subrun <- false;
    if t.silence >= t.config.Config.silence_limit then
      leave t sink Decision_silence
    else begin
      let coordinator =
        (* [alive_raw]: rotation only reads the vector, no copy needed. *)
        Coordinator.rotation
          ~alive:(Causal.Group_view.alive_raw t.view)
          ~subrun
      in
      let request = my_request t ~subrun in
      let request_to =
        if Net.Node_id.equal coordinator t.id then begin
          t.coordinator_for <- Some subrun;
          t.pending_requests <- [ request ];
          None
        end
        else begin
          t.coordinator_for <- None;
          t.pending_requests <- [];
          Some coordinator
        end
      in
      (* The stall tracker must run — and may retire the process — before
         anything is emitted: the old list API dropped the request,
         recovery and data actions of the subrun that exhausted recovery. *)
      let gaps = count_recovery_gaps t in
      if not (track_recovery_progress t sink ~gaps) then begin
        (match request_to with
        | Some coordinator ->
            sink.emit_send coordinator (Wire.Request request)
        | None -> ());
        if gaps > 0 then emit_recovery_requests t sink;
        generate_data t sink
      end
    end
  end

let mid_subrun_into t sink ~subrun =
  if active t then begin
    (match t.coordinator_for with
    | Some s when s = subrun ->
        let requests = t.pending_requests in
        t.pending_requests <- [];
        t.coordinator_for <- None;
        if !Sim.Prof.on then Sim.Prof.enter "member.aggregate";
        let prev = Coordinator.merge_prev t.decision requests in
        let d =
          Coordinator.compute ~config:t.config ~subrun ~coordinator:t.id
            ~prev ~requests
        in
        if !Sim.Prof.on then Sim.Prof.exit ();
        let evidence =
          List.exists
            (fun (r : Wire.request) ->
              not (Net.Node_id.equal r.Wire.sender t.id))
            requests
        in
        (* The broadcast rides ahead of the local adoption effects, as in
           the old list order — but adoption must run first, since the
           broadcast's destination set is read from the adopted view, and a
           coordinator that adopts itself dead broadcasts nothing.  The
           (rare, at most one Left or Discarded) local actions are buffered
           and replayed after the broadcast. *)
        let local = collecting (fun s -> adopt_decision t s ~evidence d) in
        if active t then sink.emit_broadcast (Wire.Decision_pdu d);
        List.iter (emit_action sink) local
    | Some _ | None -> ());
    if active t then generate_data t sink
  end

(* -- PDU handler ------------------------------------------------------- *)

let handle_recover_req t sink { Wire.requester; origin; from_seq; to_seq } =
  (* Cap the reply so a single PDU stays within a sane datagram budget. *)
  let to_seq = min to_seq (from_seq + 63) in
  let messages = Causal.History.range t.history ~origin ~lo:from_seq ~hi:to_seq in
  if messages <> [] then
    sink.emit_send requester
      (Wire.Recover_reply { responder = t.id; messages })

let handle_into t sink body =
  if active t then
    match body with
    | Wire.Data msg -> receive_data t sink msg
    | Wire.Request r -> (
        match t.coordinator_for with
        | Some s when s = r.Wire.subrun ->
            let already =
              List.exists
                (fun (q : Wire.request) -> Net.Node_id.equal q.sender r.sender)
                t.pending_requests
            in
            if not already then t.pending_requests <- r :: t.pending_requests
        | Some _ | None -> ())
    | Wire.Decision_pdu d ->
        (* A decision arriving over the network was sent by its coordinator;
           it is evidence of another live process exactly when that
           coordinator is somebody else. *)
        adopt_decision t sink
          ~evidence:(not (Net.Node_id.equal d.Decision.coordinator t.id))
          d
    | Wire.Recover_req req -> handle_recover_req t sink req
    | Wire.Recover_reply { messages; _ } ->
        List.iter (receive_data t sink) messages

(* -- list compatibility wrappers ---------------------------------------

   The original API returned action lists; unit tests and the reference
   equivalence suite still consume that form. *)

let begin_subrun t ~subrun =
  collecting (fun sink -> begin_subrun_into t sink ~subrun)

let mid_subrun t ~subrun =
  collecting (fun sink -> mid_subrun_into t sink ~subrun)

let handle t body = collecting (fun sink -> handle_into t sink body)
