(** Where urcgc PDUs travel: directly over the datagram subnetwork, or over
    the transport entity of Section 5.

    The paper's protocol architecture leaves this choice open: with [h = 1]
    "the urcgc-entity [is mounted] directly on the top of a datagram
    subnetwork, thus avoiding the use of transport entities" — losses are
    then the protocol's to repair via recovery from history.  With a
    transport underneath and high [h], subnetwork losses are covered by
    transport retries instead, and "we only observe a different location of
    the retransmission function and a reduced use of the recovery from
    history".  Both configurations are measured in the ablation bench. *)

type 'a t

val of_netsim : 'a Wire.body Net.Netsim.t -> 'a t
(** The paper's evaluated configuration (h = 1, no transport entity). *)

type h_policy =
  | All  (** retransmit until every destination acknowledged *)
  | At_least of int  (** ... until [min h |dsts|] did *)

val of_transport : h:h_policy -> 'a Wire.body Net.Transport.t -> 'a t
(** Section 5's [t.data.Rq (m, h, v, d)] configuration.  Unicasts use
    [h = 1] (one acknowledgement) — they still benefit from transport
    retries. *)

val make :
  engine:Sim.Engine.t ->
  fault:Net.Fault.t ->
  traffic:(unit -> Net.Traffic.t) ->
  attach:(Net.Node_id.t -> ('a Wire.body -> unit) -> unit) ->
  send:(src:Net.Node_id.t -> dst:Net.Node_id.t -> 'a Wire.body -> unit) ->
  multicast:
    (src:Net.Node_id.t -> dsts:Net.Node_id.t array -> 'a Wire.body -> unit) ->
  'a t
(** A custom backend from its primitive operations — the hook the bounded
    schedule explorer ([Workload.Explore]) uses to mount the protocol stack
    on a controlled network whose delivery order is chosen by the search
    driver rather than by sampled latency. *)

val engine : 'a t -> Sim.Engine.t
val fault : 'a t -> Net.Fault.t

val traffic : 'a t -> Net.Traffic.t
(** For the transport mounting this includes retransmissions and acks. *)

val attach : 'a t -> Net.Node_id.t -> ('a Wire.body -> unit) -> unit

val send : 'a t -> src:Net.Node_id.t -> dst:Net.Node_id.t -> 'a Wire.body -> unit

val multicast :
  'a t -> src:Net.Node_id.t -> dsts:Net.Node_id.t array -> 'a Wire.body -> unit
(** [dsts] is an array (not retained past the call): the caller — one
    broadcast per member per round on the hot path — hands over an
    exact-size destination vector without list plumbing. *)

val with_codec : 'a Net.Bytebuf.codec -> 'a t -> 'a t
(** A serialization boundary: every PDU is encoded to bytes with
    {!Wire_codec} on send and decoded again before delivery, exactly as a
    real deployment over sockets would.  Raises [Invalid_argument] at send
    time if a PDU does not round-trip — protocol runs over this medium
    exercise the codecs under live traffic. *)
