module W = Net.Bytebuf.Writer
module R = Net.Bytebuf.Reader

let ( let* ) = Net.Bytebuf.( let* )

type 'a payload = 'a Net.Bytebuf.codec = {
  encode : 'a -> bytes;
  decode : bytes -> ('a, string) result;
}

let string_payload = Net.Bytebuf.string_codec

(* Body tags. *)
let tag_data = 1
let tag_request = 2
let tag_decision = 3
let tag_recover_req = 4
let tag_recover_reply = 5

(* The sentinel for accumulator entries still at [max_int]. *)
let u32_sentinel = 0xFFFFFFFF

(* -- mids ---------------------------------------------------------------- *)

let write_mid w mid =
  W.u32 w (Net.Node_id.to_int (Causal.Mid.origin mid));
  W.u32 w (Causal.Mid.seq mid)

let read_mid r =
  let* origin = R.u32 r in
  let* seq = R.u32 r in
  if seq < 1 then Error "mid: sequence number must be >= 1"
  else Ok (Causal.Mid.make ~origin:(Net.Node_id.of_int origin) ~seq)

(* [n] decoded values as an array, filled in place (no list accumulation:
   vector frames are decoded once per control PDU and were a steady source
   of [List.rev] garbage). *)
let read_vec r n read_one =
  if n = 0 then Ok [||]
  else
    let* first = read_one r in
    let arr = Array.make n first in
    let rec loop i =
      if i = n then Ok arr
      else
        let* v = read_one r in
        arr.(i) <- v;
        loop (i + 1)
    in
    loop 1

(* -- data messages --------------------------------------------------------

   Layout (= Causal_msg.header_size + 8 |deps| + payload):
     tag u8 | origin u24 | seq u32 | dep count u16 | payload length u16
     deps (8 bytes each) | payload bytes *)

let write_data payload w (msg : 'a Causal.Causal_msg.t) =
  let body = payload.encode msg.payload in
  if Bytes.length body <> msg.payload_size then
    invalid_arg
      (Printf.sprintf
         "Wire_codec: declared payload_size %d but the payload encodes to %d \
          bytes"
         msg.payload_size (Bytes.length body));
  W.u8 w tag_data;
  W.u24 w (Net.Node_id.to_int (Causal.Mid.origin msg.mid));
  W.u32 w (Causal.Mid.seq msg.mid);
  W.u16 w (Array.length msg.deps);
  W.u16 w (Bytes.length body);
  Array.iter (write_mid w) msg.deps;
  W.bytes w body

(* The tag has been consumed by the dispatcher. *)
let read_data payload r =
  let* origin = R.u24 r in
  let* seq = R.u32 r in
  let* dep_count = R.u16 r in
  let* payload_len = R.u16 r in
  if seq < 1 then Error "data: sequence number must be >= 1"
  else
    let* deps = read_vec r dep_count read_mid in
    let* raw = R.bytes r payload_len in
    let* value = payload.decode raw in
    (* [of_sorted_deps] rather than [make]: the encoder always writes deps
       sorted, so an out-of-order frame is a malformed frame and decodes to
       an error rather than being silently re-sorted. *)
    match
      Causal.Causal_msg.of_sorted_deps
        ~mid:(Causal.Mid.make ~origin:(Net.Node_id.of_int origin) ~seq)
        ~deps ~payload_size:payload_len value
    with
    | msg -> Ok msg
    | exception Invalid_argument reason -> Error reason

(* -- decisions ------------------------------------------------------------

   Layout (= Decision.encoded_size):
     subrun+1 u32 | coordinator u32 | flags u8
     stable, max_processed, most_updated, min_waiting, acc_stable,
       acc_min_waiting: n x u32 each (acc_stable uses the sentinel)
     attempts: n x u16 | alive bitmap | heard bitmap *)

let write_decision w (d : Decision.t) =
  W.u32 w (d.subrun + 1);
  W.u32 w (Net.Node_id.to_int d.coordinator);
  W.u8 w (if d.full_group then 1 else 0);
  Array.iter (W.u32 w) d.stable;
  Array.iter (W.u32 w) d.max_processed;
  Array.iter (fun node -> W.u32 w (Net.Node_id.to_int node)) d.most_updated;
  Array.iter (W.u32 w) d.min_waiting;
  Array.iter
    (fun v -> W.u32 w (if v = max_int then u32_sentinel else v))
    d.acc_stable;
  Array.iter (W.u32 w) d.acc_min_waiting;
  Array.iter (W.u16 w) d.attempts;
  W.bitmap w d.alive;
  W.bitmap w d.heard

let encode_decision d =
  let w = W.create () in
  write_decision w d;
  W.contents w

let decode_decision ~n r =
  let* subrun_plus1 = R.u32 r in
  let* coordinator = R.u32 r in
  let* flags = R.u8 r in
  let* stable = read_vec r n R.u32 in
  let* max_processed = read_vec r n R.u32 in
  let* most_updated_raw = read_vec r n R.u32 in
  let* min_waiting = read_vec r n R.u32 in
  let* acc_stable_raw = read_vec r n R.u32 in
  let* acc_min_waiting = read_vec r n R.u32 in
  let* attempts = read_vec r n R.u16 in
  let* alive = R.bitmap r n in
  let* heard = R.bitmap r n in
  Ok
    {
      Decision.subrun = subrun_plus1 - 1;
      coordinator = Net.Node_id.of_int coordinator;
      full_group = flags land 1 <> 0;
      stable;
      max_processed;
      most_updated = Array.map Net.Node_id.of_int most_updated_raw;
      min_waiting;
      attempts;
      alive;
      heard;
      acc_stable =
        Array.map (fun v -> if v = u32_sentinel then max_int else v)
          acc_stable_raw;
      acc_min_waiting;
    }

(* -- requests -------------------------------------------------------------

   Layout (= Wire.request_size):
     tag u8 | sender u16 | reserved u8 | subrun u32
     last_processed: n x u32 | waiting seqs: n x u32 (0 = none)
     piggybacked decision *)

let write_request w (r : Wire.request) =
  W.u8 w tag_request;
  W.u16 w (Net.Node_id.to_int r.sender);
  W.u8 w 0;
  W.u32 w r.subrun;
  Array.iter (W.u32 w) r.last_processed;
  Array.iter
    (fun waiting ->
      W.u32 w (match waiting with None -> 0 | Some mid -> Causal.Mid.seq mid))
    r.waiting;
  write_decision w r.prev_decision

let read_request ~n r =
  let* sender = R.u16 r in
  let* _reserved = R.u8 r in
  let* subrun = R.u32 r in
  let* last_processed = read_vec r n R.u32 in
  let* waiting_seqs = read_vec r n R.u32 in
  let* prev_decision = decode_decision ~n r in
  Ok
    {
      Wire.sender = Net.Node_id.of_int sender;
      subrun;
      last_processed;
      waiting =
        Array.mapi
          (fun origin seq ->
            if seq = 0 then None
            else Some (Causal.Mid.make ~origin:(Net.Node_id.of_int origin) ~seq))
          waiting_seqs;
      prev_decision;
    }

(* -- top level ------------------------------------------------------------ *)

let write_body payload w body =
  match body with
  | Wire.Data msg -> write_data payload w msg
  | Wire.Request r -> write_request w r
  | Wire.Decision_pdu d ->
      W.u8 w tag_decision;
      W.u24 w 0;
      write_decision w d
  | Wire.Recover_req { requester; origin; from_seq; to_seq } ->
      W.u8 w tag_recover_req;
      W.u24 w 0;
      W.u32 w (Net.Node_id.to_int requester);
      W.u32 w (Net.Node_id.to_int origin);
      W.u32 w from_seq;
      W.u32 w to_seq
  | Wire.Recover_reply { responder; messages } ->
      W.u8 w tag_recover_reply;
      (* Message count rides in the pad field.  Relying on the buffer end to
         delimit the list let a reply truncated at a message boundary decode
         Ok with fewer messages; an explicit count makes that an error. *)
      W.u24 w (List.length messages);
      W.u32 w (Net.Node_id.to_int responder);
      List.iter (write_data payload w) messages

let encode_body_into w payload body =
  W.clear w;
  write_body payload w body;
  W.contents w

let encode_body payload body =
  let w = W.create () in
  write_body payload w body;
  W.contents w

let decode_body payload ~n raw =
  let r = R.of_bytes raw in
  let* tag = R.u8 r in
  if tag = tag_data then
    let* msg = read_data payload r in
    let* () = R.expect_end r in
    Ok (Wire.Data msg)
  else if tag = tag_request then
    let* request = read_request ~n r in
    let* () = R.expect_end r in
    Ok (Wire.Request request)
  else if tag = tag_decision then
    let* _pad = R.u24 r in
    let* d = decode_decision ~n r in
    let* () = R.expect_end r in
    Ok (Wire.Decision_pdu d)
  else if tag = tag_recover_req then
    let* _pad = R.u24 r in
    let* requester = R.u32 r in
    let* origin = R.u32 r in
    let* from_seq = R.u32 r in
    let* to_seq = R.u32 r in
    let* () = R.expect_end r in
    Ok
      (Wire.Recover_req
         {
           requester = Net.Node_id.of_int requester;
           origin = Net.Node_id.of_int origin;
           from_seq;
           to_seq;
         })
  else if tag = tag_recover_reply then begin
    let* expected = R.u24 r in
    let* responder = R.u32 r in
    let rec read_messages k acc =
      if k = 0 then Ok (List.rev acc)
      else if R.remaining r = 0 then
        Error
          (Printf.sprintf
             "recover-reply: truncated; %d of %d messages missing" k expected)
      else
        let* inner_tag = R.u8 r in
        if inner_tag <> tag_data then Error "recover-reply: expected a data message"
        else
          let* msg = read_data payload r in
          read_messages (k - 1) (msg :: acc)
    in
    let* messages = read_messages expected [] in
    let* () = R.expect_end r in
    Ok
      (Wire.Recover_reply
         { responder = Net.Node_id.of_int responder; messages })
  end
  else Error (Printf.sprintf "unknown body tag %d" tag)
