type 'a t = {
  engine : Sim.Engine.t;
  fault : Net.Fault.t;
  traffic : unit -> Net.Traffic.t;
  attach : Net.Node_id.t -> ('a Wire.body -> unit) -> unit;
  send : src:Net.Node_id.t -> dst:Net.Node_id.t -> 'a Wire.body -> unit;
  multicast :
    src:Net.Node_id.t -> dsts:Net.Node_id.t array -> 'a Wire.body -> unit;
}

type h_policy = All | At_least of int

let of_netsim net =
  {
    engine = Net.Netsim.engine net;
    fault = Net.Netsim.fault net;
    traffic = (fun () -> Net.Netsim.traffic net);
    attach = (fun node handler -> Net.Netsim.attach_payload net node handler);
    send =
      (fun ~src ~dst body ->
        Net.Netsim.send net ~src ~dst ~kind:(Wire.kind body)
          ~size:(Wire.body_size body) body);
    multicast =
      (fun ~src ~dsts body ->
        Net.Netsim.multicast_array net ~src ~dsts ~kind:(Wire.kind body)
          ~size:(Wire.body_size body) body);
  }

let of_transport ~h transport =
  let request ~src ~dsts body =
    match dsts with
    | [] -> ()
    | _ ->
        let count =
          match h with
          | All -> List.length dsts
          | At_least h -> max 1 (min h (List.length dsts))
        in
        Net.Transport.request transport ~src ~dsts ~h:count
          ~kind:(Wire.kind body) ~size:(Wire.body_size body)
          ~on_confirm:(fun ~acked:_ -> ())
          body
  in
  {
    engine = Net.Transport.engine transport;
    fault = Net.Transport.fault transport;
    traffic = (fun () -> Net.Transport.traffic transport);
    attach =
      (fun node handler ->
        Net.Transport.attach transport node (fun ~src:_ body -> handler body));
    send = (fun ~src ~dst body -> request ~src ~dsts:[ dst ] body);
    multicast =
      (fun ~src ~dsts body -> request ~src ~dsts:(Array.to_list dsts) body);
  }

let make ~engine ~fault ~traffic ~attach ~send ~multicast =
  { engine; fault; traffic; attach; send; multicast }

let engine t = t.engine
let fault t = t.fault
let traffic t = t.traffic ()
let attach t node handler = t.attach node handler
let send t ~src ~dst body = t.send ~src ~dst body
let multicast t ~src ~dsts body = t.multicast ~src ~dsts body

let with_codec codec inner =
  (* One pooled writer per medium: its storage grows to the largest PDU and
     stays there.  Mediums are per-run (never shared across Pool domains)
     and [through] never reenters itself, so the writer has one user at a
     time. *)
  let writer = Net.Bytebuf.Writer.create () in
  let through body =
    if !Sim.Prof.on then Sim.Prof.enter "codec";
    let raw = Wire_codec.encode_body_into writer codec body in
    (* The group size is recoverable from the PDU itself only for some
       variants; thread it from the vectors we can see. *)
    let n =
      match body with
      | Wire.Request r -> Array.length r.last_processed
      | Wire.Decision_pdu d -> Array.length d.Decision.stable
      | Wire.Data _ | Wire.Recover_req _ | Wire.Recover_reply _ -> -1
    in
    let n =
      if n > 0 then n
      else
        (* Data/recovery PDUs carry no vectors; any positive n decodes them. *)
        1
    in
    let decoded =
      match Wire_codec.decode_body codec ~n raw with
      | Ok decoded -> decoded
      | Error reason ->
          invalid_arg
            (Printf.sprintf "Medium.with_codec: PDU does not round-trip: %s"
               reason)
    in
    if !Sim.Prof.on then Sim.Prof.exit ();
    decoded
  in
  {
    inner with
    send = (fun ~src ~dst body -> inner.send ~src ~dst (through body));
    multicast =
      (fun ~src ~dsts body -> inner.multicast ~src ~dsts (through body));
  }
