type 'a delivery = {
  node : Net.Node_id.t;
  msg : 'a Causal.Causal_msg.t;
  at : Sim.Ticks.t;
}

(* Delivery records are kept in fixed-size column chunks instead of a list
   of records: at n = 128 a subrun processes n*(n-1) messages, and a record
   plus list cell per delivery is most of the round's allocation.  The
   [delivery] records the public accessor returns are materialized on
   demand. *)
let dchunk_size = 512

type 'a dchunk = {
  d_nodes : int array;
  d_ats : int array;  (* Ticks, as raw ints *)
  d_msgs : 'a Causal.Causal_msg.t array;
}

type 'a generation = {
  mid : Causal.Mid.t;
  payload : 'a;
  sent_at : Sim.Ticks.t;
}

type departure = {
  who : Net.Node_id.t;
  why : Member.reason;
  when_ : Sim.Ticks.t;
}

type 'a t = {
  config : Config.t;
  medium : 'a Medium.t;
  tracer : Sim.Tracer.t;
  members : 'a Member.t array;
  (* One action sink per member, built once at creation: members stream
     their actions straight into the cluster's effects (sends, records,
     trace) with no per-round action lists. *)
  mutable sinks : 'a Member.sink array;
  mutable round : int;
  mutable started : bool;
  mutable round_callbacks : (round:int -> unit) list;
  mutable extra_broadcast_targets : Net.Node_id.t list;
  mutable delivery_callbacks : ('a delivery -> unit) list;
  mutable confirm_callbacks : (Net.Node_id.t -> Causal.Mid.t -> unit) list;
  mutable dchunks : 'a dchunk list;  (* newest chunk first *)
  mutable dfill : int;  (* occupied slots in the newest chunk *)
  mutable generations : 'a generation list;
  mutable departures : departure list;
  mutable discards : (Net.Node_id.t * Causal.Mid.t list * Sim.Ticks.t) list;
}

let engine t = Medium.engine t.medium
let now t = Sim.Engine.now (engine t)

(* -- typed trace emit points ------------------------------------------- *)

let trace_mid mid =
  {
    Sim.Trace.origin = Net.Node_id.to_int (Causal.Mid.origin mid);
    seq = Causal.Mid.seq mid;
  }

let trace_pdu (body : _ Wire.body) =
  match body with
  | Wire.Data msg ->
      Sim.Trace.Data
        {
          origin = Net.Node_id.to_int (Causal.Mid.origin msg.Causal.Causal_msg.mid);
          seq = Causal.Mid.seq msg.mid;
          deps = Array.length msg.deps;
          bytes = msg.payload_size;
        }
  | Wire.Request r ->
      Sim.Trace.Request
        { sender = Net.Node_id.to_int r.Wire.sender; subrun = r.subrun }
  | Wire.Decision_pdu d ->
      Sim.Trace.Decision
        {
          subrun = d.Decision.subrun;
          coordinator = Net.Node_id.to_int d.coordinator;
          full_group = d.full_group;
        }
  | Wire.Recover_req { requester; origin; from_seq; to_seq } ->
      Sim.Trace.Recover_req
        {
          requester = Net.Node_id.to_int requester;
          origin = Net.Node_id.to_int origin;
          from_seq;
          to_seq;
        }
  | Wire.Recover_reply { responder; messages } ->
      Sim.Trace.Recover_reply
        {
          responder = Net.Node_id.to_int responder;
          count = List.length messages;
        }

let emit t event = Sim.Trace.emit t.tracer ~time:(now t) event

let tracing t = Sim.Trace.enabled t.tracer

(* The destination set of a broadcast by [member]: every other process
   alive in its local view (ids ascending), plus the extra targets, as an
   exact-size array handed to the medium. *)
let broadcast_dsts t member =
  let self = Member.id member in
  let alive = Causal.Group_view.alive_raw (Member.view member) in
  let n = Array.length alive in
  let self_i = Net.Node_id.to_int self in
  let count = ref 0 in
  for j = 0 to n - 1 do
    if alive.(j) && j <> self_i then incr count
  done;
  let extra = t.extra_broadcast_targets in
  let total = !count + List.length extra in
  if total = 0 then [||]
  else begin
    let dsts = Array.make total self in
    let k = ref 0 in
    for j = 0 to n - 1 do
      if alive.(j) && j <> self_i then begin
        dsts.(!k) <- Net.Node_id.of_int j;
        incr k
      end
    done;
    List.iter
      (fun node ->
        dsts.(!k) <- node;
        incr k)
      extra;
    dsts
  end

let sink_of t member =
  let self = Member.id member in
  let self_i = Net.Node_id.to_int self in
  {
    Member.emit_broadcast =
      (fun body ->
        let dsts = broadcast_dsts t member in
        (match body with
        | Wire.Data msg ->
            t.generations <-
              {
                mid = msg.Causal.Causal_msg.mid;
                payload = msg.payload;
                sent_at = now t;
              }
              :: t.generations
        | Wire.Request _ | Wire.Decision_pdu _ | Wire.Recover_req _
        | Wire.Recover_reply _ ->
            ());
        if tracing t then
          emit t
            (Sim.Trace.Broadcast
               { src = self_i; dsts = Array.length dsts; pdu = trace_pdu body });
        Medium.multicast t.medium ~src:self ~dsts body);
    emit_send =
      (fun dst body ->
        if tracing t then
          emit t
            (Sim.Trace.Send
               {
                 src = self_i;
                 dst = Net.Node_id.to_int dst;
                 pdu = trace_pdu body;
               });
        Medium.send t.medium ~src:self ~dst body);
    emit_processed =
      (fun msg ->
        let at = now t in
        let chunk =
          match t.dchunks with
          | chunk :: _ when t.dfill < dchunk_size -> chunk
          | _ ->
              let chunk =
                {
                  d_nodes = Array.make dchunk_size 0;
                  d_ats = Array.make dchunk_size 0;
                  (* [msg] as the fill value: any slot past [dfill] is dead,
                     and seeding with a real message keeps the array boxed
                     without a sentinel. *)
                  d_msgs = Array.make dchunk_size msg;
                }
              in
              t.dchunks <- chunk :: t.dchunks;
              t.dfill <- 0;
              chunk
        in
        chunk.d_nodes.(t.dfill) <- self_i;
        chunk.d_ats.(t.dfill) <- (at : Sim.Ticks.t :> int);
        chunk.d_msgs.(t.dfill) <- msg;
        t.dfill <- t.dfill + 1;
        if tracing t then
          emit t
            (Sim.Trace.Deliver
               { node = self_i; mid = trace_mid msg.Causal.Causal_msg.mid });
        match t.delivery_callbacks with
        | [] -> ()
        | callbacks ->
            let record = { node = self; msg; at } in
            List.iter (fun callback -> callback record) (List.rev callbacks));
    emit_confirmed =
      (fun mid ->
        List.iter
          (fun callback -> callback self mid)
          (List.rev t.confirm_callbacks);
        if tracing t then
          emit t (Sim.Trace.Confirm { node = self_i; mid = trace_mid mid }));
    emit_queued =
      (fun mid depth ->
        if tracing t then
          emit t
            (Sim.Trace.Wait_add { node = self_i; mid = trace_mid mid; depth }));
    emit_discarded =
      (fun mids ->
        t.discards <- (self, mids, now t) :: t.discards;
        if tracing t then
          emit t
            (Sim.Trace.Wait_discard
               { node = self_i; mids = List.map trace_mid mids }));
    emit_left =
      (fun why ->
        t.departures <- { who = self; why; when_ = now t } :: t.departures;
        if tracing t then
          emit t
            (Sim.Trace.Left
               { node = self_i; reason = Member.reason_to_string why }));
  }

let sink t member = t.sinks.(Net.Node_id.to_int (Member.id member))

let crashed t node =
  Net.Fault.crashed (Medium.fault t.medium) ~now:(now t) node

let on_body t member body =
  if not (crashed t (Member.id member)) then begin
    if tracing t then
      emit t
        (Sim.Trace.Receive
           { node = Net.Node_id.to_int (Member.id member); pdu = trace_pdu body });
    Member.handle_into member (sink t member) body
  end

let create_with_medium ?(tracer = Sim.Tracer.null) ~config ~medium () =
  let initial_decision = Decision.initial ~n:config.Config.n in
  let members =
    Array.init config.Config.n (fun i ->
        Member.create ~decision:initial_decision config (Net.Node_id.of_int i))
  in
  let t =
    {
      config;
      medium;
      tracer;
      members;
      sinks = [||];
      round = 0;
      started = false;
      round_callbacks = [];
      extra_broadcast_targets = [];
      delivery_callbacks = [];
      confirm_callbacks = [];
      dchunks = [];
      dfill = 0;
      generations = [];
      departures = [];
      discards = [];
    }
  in
  t.sinks <- Array.map (fun member -> sink_of t member) members;
  Array.iter
    (fun member ->
      Medium.attach medium (Member.id member) (on_body t member))
    members;
  t

let create ?tracer ~config ~net () =
  create_with_medium ?tracer ~config ~medium:(Medium.of_netsim net) ()

let medium t = t.medium

let run_round t =
  let round = t.round in
  let subrun = round / 2 in
  if round mod 2 = 0 && tracing t then begin
    (* Coordinator rotation is a function of the (shared, eventually
       consistent) alive view; narrate it from the first active member's
       perspective once per subrun. *)
    let first_active =
      Array.to_list t.members
      |> List.find_opt (fun member ->
             Member.active member && not (crashed t (Member.id member)))
    in
    match first_active with
    | None -> ()
    | Some member ->
        let coordinator =
          Coordinator.rotation
            ~alive:(Causal.Group_view.alive_array (Member.view member))
            ~subrun
        in
        emit t
          (Sim.Trace.Rotate
             { subrun; coordinator = Net.Node_id.to_int coordinator })
  end;
  Array.iter
    (fun member ->
      if not (crashed t (Member.id member)) then
        if round mod 2 = 0 then
          Member.begin_subrun_into member (sink t member) ~subrun
        else Member.mid_subrun_into member (sink t member) ~subrun)
    t.members;
  t.round <- round + 1;
  List.iter (fun callback -> callback ~round) (List.rev t.round_callbacks)

let start t =
  if t.started then invalid_arg "Cluster.start: already started";
  t.started <- true;
  let engine = engine t in
  let rec tick () =
    run_round t;
    ignore
      (Sim.Engine.schedule_after ~label:"cluster.round" engine
         ~delay:Sim.Ticks.round tick)
  in
  ignore
    (Sim.Engine.schedule_after ~label:"cluster.round" engine
       ~delay:Sim.Ticks.zero tick)

let config t = t.config
let member t node = t.members.(Net.Node_id.to_int node)
let members t = Array.to_list t.members

let submit ?deps ?size t node payload =
  Member.submit ?deps ?size (member t node) payload

let round t = t.round
let subrun t = t.round / 2

let on_round t callback = t.round_callbacks <- callback :: t.round_callbacks

let on_delivery t callback =
  t.delivery_callbacks <- callback :: t.delivery_callbacks

let on_confirm t callback =
  t.confirm_callbacks <- callback :: t.confirm_callbacks

let add_broadcast_targets t targets =
  t.extra_broadcast_targets <- t.extra_broadcast_targets @ targets

let deliveries t =
  (* Chunks are newest-first; slots within a chunk are oldest-first.
     Walking newest chunk to oldest and prepending each chunk's slots in
     reverse yields the whole run oldest-first. *)
  let acc = ref [] in
  let fill = ref t.dfill in
  List.iter
    (fun chunk ->
      for i = !fill - 1 downto 0 do
        acc :=
          {
            node = Net.Node_id.of_int chunk.d_nodes.(i);
            msg = chunk.d_msgs.(i);
            at = Sim.Ticks.of_int chunk.d_ats.(i);
          }
          :: !acc
      done;
      fill := dchunk_size)
    t.dchunks;
  !acc
let generations t = List.rev t.generations
let departures t = List.rev t.departures
let discards t = List.rev t.discards

let active_members t =
  Array.to_list t.members
  |> List.filter_map (fun member ->
         let node = Member.id member in
         if Member.active member && not (crashed t node) then Some node
         else None)

let quiescent t =
  let actives =
    Array.to_list t.members
    |> List.filter (fun member ->
           Member.active member && not (crashed t (Member.id member)))
  in
  match actives with
  | [] -> true
  | first :: rest ->
      let vector member =
        List.init t.config.Config.n (fun j ->
            Member.last_processed member (Net.Node_id.of_int j))
      in
      let idle member =
        Member.sap_backlog member = 0
        && Member.waiting_length member = 0
        && not (Member.flow_blocked member)
      in
      List.for_all idle actives
      && List.for_all (fun member -> vector member = vector first) rest
      (* A process declared crashed but not yet aware of it is a zombie: the
         group no longer addresses it, and it will only leave after its
         decision-silence timeout.  The run is not settled until then. *)
      && List.for_all
           (fun member ->
             Causal.Group_view.equal (Member.view member) (Member.view first))
           rest
