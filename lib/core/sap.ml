type 'a t = {
  cluster : 'a Cluster.t;
  node : Net.Node_id.t;
  (* Confirm callbacks are consumed in submission order: mids are assigned
     in that order, so the head of the queue always matches the next
     Confirmed event of this process. *)
  awaiting_conf : (Causal.Mid.t -> unit) Queue.t;
  mutable ind_callbacks :
    (mid:Causal.Mid.t -> deps:Causal.Mid.t list -> 'a -> unit) list;
}

let attach cluster node =
  let t =
    { cluster; node; awaiting_conf = Queue.create (); ind_callbacks = [] }
  in
  Cluster.on_confirm cluster (fun who mid ->
      if Net.Node_id.equal who node && not (Queue.is_empty t.awaiting_conf) then
        (Queue.pop t.awaiting_conf) mid);
  Cluster.on_delivery cluster (fun { Cluster.node = at; msg; _ } ->
      if Net.Node_id.equal at node then
        match List.rev t.ind_callbacks with
        | [] -> ()
        | callbacks ->
            (* The callback API exposes deps as a list; convert once per
               delivery, and only when someone is listening. *)
            let deps = Array.to_list msg.Causal.Causal_msg.deps in
            List.iter
              (fun callback ->
                callback ~mid:msg.Causal.Causal_msg.mid ~deps
                  msg.Causal.Causal_msg.payload)
              callbacks);
  t

let id t = t.node

let data_rq ?deps ?size ?(on_conf = fun _ -> ()) t payload =
  Queue.push on_conf t.awaiting_conf;
  Cluster.submit ?deps ?size t.cluster t.node payload

let on_data_ind t callback = t.ind_callbacks <- callback :: t.ind_callbacks

let pending_confirms t = Queue.length t.awaiting_conf
