(** Per-process urcgc protocol entity.

    A member is a deterministic state machine: the two round hooks
    ({!begin_subrun}, {!mid_subrun}) and the PDU handler ({!handle}) each
    return the list of {!action}s the process takes, and the embedding
    ({!Node}) turns those into network sends and service indications.  This
    keeps the whole protocol logic testable without a simulator.

    Timeline of subrun [s] (one rtd):
    - round [2s] ({!begin_subrun}): send the request (state vectors + last
      received decision) to the coordinator of [s]; possibly broadcast one
      new data message; send recovery requests for known gaps.
    - round [2s+1] ({!mid_subrun}): the coordinator computes and broadcasts
      its decision; possibly broadcast one new data message. *)

type reason =
  | Declared_crashed  (** saw a decision with [alive.(self) = false]: suicide *)
  | Decision_silence
      (** no decision carrying evidence of another live process was received
          for [silence_limit] subruns.  A decision is evidence only when it
          was issued by another coordinator or aggregated a request from at
          least one other member: a process's own solo decisions never reset
          the counter (they would keep an expelled-but-silenced process alive
          forever). *)
  | Recovery_exhausted  (** R unsuccessful attempts to recover from history *)
  | Partitioned
      (** the adopted view degenerated to [{self}] while [Config.n > 1]:
          primary-partition discipline makes the process depart rather than
          coordinate a solo view nobody else holds *)

val reason_to_string : reason -> string

type 'a action =
  | Broadcast of 'a Wire.body
      (** send to every other process alive in the local view *)
  | Send of Net.Node_id.t * 'a Wire.body
  | Processed of 'a Causal.Causal_msg.t
      (** the message was processed here — [urcgc.data.Ind] *)
  | Confirmed of Causal.Mid.t
      (** own message locally processed — [urcgc.data.Conf] *)
  | Discarded of Causal.Mid.t list
      (** orphaned waiting messages destroyed by group agreement *)
  | Queued of Causal.Mid.t * int
      (** the message entered the waiting list (dependencies missing); the
          int is the waiting-list length after the add *)
  | Left of reason  (** the process left the group and stops participating *)

type 'a sink = {
  emit_broadcast : 'a Wire.body -> unit;
  emit_send : Net.Node_id.t -> 'a Wire.body -> unit;
  emit_processed : 'a Causal.Causal_msg.t -> unit;
  emit_confirmed : Causal.Mid.t -> unit;
  emit_discarded : Causal.Mid.t list -> unit;
  emit_queued : Causal.Mid.t -> int -> unit;
  emit_left : reason -> unit;
}
(** Streaming consumer of a member's actions: one callback per {!action}
    constructor, invoked in exactly the order the list API returns the
    actions.  The hot-path entry points ({!begin_subrun_into},
    {!mid_subrun_into}, {!handle_into}) emit into a sink as the actions
    happen instead of accumulating a list — the embedding ({!Cluster})
    allocates one sink per member for the whole run.  Sink callbacks must
    not call back into the emitting member. *)

type 'a t

val create : ?decision:Decision.t -> Config.t -> Net.Node_id.t -> 'a t
(** [?decision] seeds the member's adopted decision (defaults to a fresh
    [Decision.initial]).  Decisions are immutable after construction, so a
    cluster passes one shared initial decision to all its members rather
    than allocating n identical copies. *)

val id : 'a t -> Net.Node_id.t
val config : 'a t -> Config.t

val active : 'a t -> bool
(** False once the process has left the group. *)

val left_reason : 'a t -> reason option

val view : 'a t -> Causal.Group_view.t
val latest_decision : 'a t -> Decision.t
val history_length : 'a t -> int
val waiting_length : 'a t -> int
val processed_count : 'a t -> int
val last_processed : 'a t -> Net.Node_id.t -> int
val flow_blocked : 'a t -> bool
val sap_backlog : 'a t -> int

val submit : ?deps:Causal.Mid.t list -> ?size:int -> 'a t -> 'a -> unit
(** [urcgc.data.Rq]: queues a payload.  One queued message is labelled and
    broadcast per round (the paper's maximum service rate), subject to flow
    control.  [deps] are the explicit causal dependencies; they default to
    the sender's current frontier (the last processed message of every other
    origin), the densest labelling allowed by Definition 3.1's intermediate
    interpretation.  [size] defaults to the configured payload size. *)

val begin_subrun_into : 'a t -> 'a sink -> subrun:int -> unit

val mid_subrun_into : 'a t -> 'a sink -> subrun:int -> unit

val handle_into : 'a t -> 'a sink -> 'a Wire.body -> unit

val begin_subrun : 'a t -> subrun:int -> 'a action list
(** List form of {!begin_subrun_into} (collects the emissions). *)

val mid_subrun : 'a t -> subrun:int -> 'a action list

val handle : 'a t -> 'a Wire.body -> 'a action list
