(* Dependency-indexed waiting list.

   The pre-PR structure was a single [Mid.Map] rescanned to fixpoint:
   [take_processable] was O(W) per pop and [discard_from] an O(W^2)
   set-membership fixpoint.  This version stores messages in per-origin
   dense rings and indexes them by what blocks them, so the hot paths touch
   only the messages they affect:

   - Per origin, waiting messages live in a circular buffer keyed by
     contiguous seq (window [base, base+span), holes allowed), the same
     layout as [History]: membership, insert and removal are O(1), and the
     window is compressed at the front so the per-origin oldest mid — the
     [waiting_i] field of every Request — reads off the window base.
   - Each waiting entry records its unresolved blockers ([pending]): the
     chain predecessor [(origin, seq-1)] if unprocessed, plus each
     unprocessed explicit dependency.  A reverse index ([dependents]) maps a
     blocking mid to the entries it gates.
   - [seen] caches the last [Delivery] vector this list has observed.  On
     [take_processable] the list syncs against the live vector: every newly
     processed mid resolves its dependents in O(1) each, and entries whose
     pending set empties join [ready].
   - [ready] is exactly the set of processable entries.  An entry is ready
     iff its seq is [seen(origin)+1] and its deps are processed, so [ready]
     holds at most one mid per origin (<= n elements); popping its minimum
     reproduces the old scan's first-processable-in-mid-order choice
     bit-for-bit, at O(log n) worst case.
   - [discard_from] walks the dependency graph forward from the roots:
     per-origin tail sweeps cover the implicit chain and [dep_index]
     (explicit dep -> dependers, kept regardless of processed state) covers
     listed dependencies.  O(victims + edges) instead of a fixpoint.

   Entries whose chain position the group skipped past (decided orphan
   destruction) are never processable; they simply never enter [ready], but
   remain visible to [oldest]/[length]/[to_list] exactly like before.
   Index entries for removed messages are reclaimed lazily: every traversal
   re-checks liveness against the rings.

   Mids handed to [add] must have all origins (message and deps) in [0, n);
   the rest of the stack guarantees this. *)

type 'a entry = { msg : 'a Causal_msg.t; mutable pending : Mid.t list }

type 'a ring = {
  mutable buf : 'a entry option array;
  mutable head : int;  (* physical index of seq [base] *)
  mutable base : int;  (* lowest seq covered by the window *)
  mutable span : int;  (* seqs covered: [base, base + span) *)
  mutable count : int; (* occupied slots within the window *)
}

type 'a t = {
  n : int;
  mutable size : int;
  mutable rings : 'a ring option array;
      (* [||] until the first add, then lazily created per origin: an origin
         that never blocks costs one word.  Most lists never see a blocked
         message at all, so the per-origin arrays only exist once one does —
         a member allocates one waiting list per group member it simulates,
         and the empty-list footprint is what every fault-free run pays. *)
  mutable ready : Mid.Set.t;
  mutable seen : int array;  (* [||] until the first add *)
  mutable empty_vec : Mid.t option array;  (* shared all-[None] vector *)
  dependents : (Mid.t, Mid.t list ref) Hashtbl.t;
  dep_index : (Mid.t, Mid.t list ref) Hashtbl.t;
}

let create ~n =
  if n <= 0 then invalid_arg "Waiting_list.create: n must be positive";
  {
    n;
    size = 0;
    rings = [||];
    ready = Mid.Set.empty;
    seen = [||];
    empty_vec = [||];
    (* Small initial tables: kept eager (they are a handful of words). *)
    dependents = Hashtbl.create 8;
    dep_index = Hashtbl.create 8;
  }

(* Allocate the per-origin state on the first add.  [seen] starting at all
   zeros is exactly the eager behaviour: it only ever catches up inside
   [take_processable], which never runs while the list is empty. *)
let ensure t =
  if Array.length t.seen = 0 then begin
    t.rings <- Array.make t.n None;
    t.seen <- Array.make t.n 0
  end

(* -- per-origin rings ---------------------------------------------------- *)

let ring_of t o =
  match t.rings.(o) with
  | Some r -> r
  | None ->
      let r = { buf = [||]; head = 0; base = 0; span = 0; count = 0 } in
      t.rings.(o) <- Some r;
      r

let phys r i = (r.head + i) land (Array.length r.buf - 1)

let slot r seq =
  if r.span = 0 || seq < r.base || seq >= r.base + r.span then None
  else r.buf.(phys r (seq - r.base))

let find_entry t mid =
  if Array.length t.rings = 0 then None
  else
    match t.rings.(Net.Node_id.to_int (Mid.origin mid)) with
    | None -> None
    | Some r -> slot r (Mid.seq mid)

let rec next_pow2 n k = if k >= n then k else next_pow2 n (k * 2)

(* Re-house the window in a fresh buffer of at least [needed] slots, leaving
   [offset] empty slots below the current base (for downward extension). *)
let rehouse r ~needed ~offset =
  let ncap = next_pow2 needed 16 in
  let nbuf = Array.make ncap None in
  for i = 0 to r.span - 1 do
    nbuf.(offset + i) <- r.buf.(phys r i)
  done;
  r.buf <- nbuf;
  r.head <- 0

(* Make seq part of the window and store the entry there.  The caller has
   already checked the mid is not present, so the slot is a hole. *)
let ring_put r seq entry =
  if r.span = 0 then begin
    if Array.length r.buf = 0 then r.buf <- Array.make 16 None;
    r.head <- 0;
    r.base <- seq;
    r.span <- 1
  end
  else if seq >= r.base + r.span then begin
    let needed = seq - r.base + 1 in
    if needed > Array.length r.buf then rehouse r ~needed ~offset:0;
    r.span <- needed
  end
  else if seq < r.base then begin
    let delta = r.base - seq in
    let needed = r.span + delta in
    if needed > Array.length r.buf then rehouse r ~needed ~offset:delta
    else begin
      let cap = Array.length r.buf in
      r.head <- (r.head + cap - delta) land (cap - 1)
    end;
    r.base <- seq;
    r.span <- needed
  end;
  r.buf.(phys r (seq - r.base)) <- Some entry;
  r.count <- r.count + 1

(* Remove seq from the window, keeping the front compressed: when [count >
   0] the base slot is always occupied.  The hole-skipping scan amortizes to
   O(1) — each slot position is stepped over at most once per window pass. *)
let ring_remove r seq =
  r.buf.(phys r (seq - r.base)) <- None;
  r.count <- r.count - 1;
  if r.count = 0 then begin
    r.head <- 0;
    r.span <- 0
  end
  else if seq = r.base then begin
    let i = ref 1 in
    while Option.is_none r.buf.(phys r !i) do
      incr i
    done;
    r.head <- phys r !i;
    r.base <- r.base + !i;
    r.span <- r.span - !i
  end

(* -- public structure ---------------------------------------------------- *)

let register index key mid =
  match Hashtbl.find_opt index key with
  | Some l -> l := mid :: !l
  | None -> Hashtbl.add index key (ref [ mid ])

let add t msg =
  let mid = msg.Causal_msg.mid in
  match find_entry t mid with
  | Some _ -> () (* idempotent *)
  | None ->
      ensure t;
      let o = Net.Node_id.to_int (Mid.origin mid) in
      let s = Mid.seq mid in
      let pending = ref [] in
      if s - 1 > t.seen.(o) then
        pending := Mid.make ~origin:(Mid.origin mid) ~seq:(s - 1) :: !pending;
      Array.iter
        (fun dep ->
          if Mid.seq dep > t.seen.(Net.Node_id.to_int (Mid.origin dep)) then
            pending := dep :: !pending)
        msg.Causal_msg.deps;
      let entry = { msg; pending = !pending } in
      ring_put (ring_of t o) s entry;
      t.size <- t.size + 1;
      List.iter (fun b -> register t.dependents b mid) entry.pending;
      Array.iter (fun dep -> register t.dep_index dep mid) msg.Causal_msg.deps;
      (* Ready iff nothing blocks it and its chain position is still ahead
         of what this list has seen processed. *)
      if entry.pending = [] && s > t.seen.(o) then
        t.ready <- Mid.Set.add mid t.ready

let mem t mid = Option.is_some (find_entry t mid)

let remove t mid =
  match find_entry t mid with
  | None -> ()
  | Some _ ->
      ring_remove (ring_of t (Net.Node_id.to_int (Mid.origin mid))) (Mid.seq mid);
      t.size <- t.size - 1;
      t.ready <- Mid.Set.remove mid t.ready

let length t = t.size

let is_empty t = t.size = 0

let oldest t ~origin =
  let o = Net.Node_id.to_int origin in
  if o >= t.n || Array.length t.rings = 0 then None
  else
    match t.rings.(o) with
    | None -> None
    | Some r -> (
        if r.count = 0 then None
        else
          match r.buf.(r.head) with
          | Some entry -> Some entry.msg.Causal_msg.mid
          | None -> assert false (* front compression: base slot occupied *))

let oldest_vector t =
  if t.size = 0 then begin
    (* Every request of a member with nothing waiting carries an all-[None]
       vector; share one physical array per list instead of allocating n
       words per subrun.  Callers treat request vectors as read-only. *)
    if Array.length t.empty_vec < t.n then t.empty_vec <- Array.make t.n None;
    t.empty_vec
  end
  else Array.init t.n (fun i -> oldest t ~origin:(Net.Node_id.of_int i))

(* -- readiness sync ------------------------------------------------------ *)

(* A newly processed mid no longer blocks anything: wake its dependents. *)
let resolve t blocker =
  match Hashtbl.find_opt t.dependents blocker with
  | None -> ()
  | Some dependers ->
      Hashtbl.remove t.dependents blocker;
      List.iter
        (fun mid ->
          match find_entry t mid with
          | None -> () (* removed since registration *)
          | Some entry ->
              if List.exists (Mid.equal blocker) entry.pending then begin
                entry.pending <-
                  List.filter
                    (fun b -> not (Mid.equal b blocker))
                    entry.pending;
                if entry.pending = [] then begin
                  let eo = Net.Node_id.to_int (Mid.origin mid) in
                  (* Unblocked, but only processable if the group did not
                     skip past its chain position meanwhile. *)
                  if Mid.seq mid > t.seen.(eo) then
                    t.ready <- Mid.Set.add mid t.ready
                end
              end)
        !dependers

(* Catch [seen] up with the live delivery vector.  Cost: O(n) plus O(1) per
   newly processed mid — amortized constant per delivered message. *)
let sync t delivery =
  for o = 0 to t.n - 1 do
    let origin = Net.Node_id.of_int o in
    let last = Delivery.last_processed delivery origin in
    let prev = t.seen.(o) in
    if last > prev then begin
      (* The one entry of this origin that could sit in [ready] has seq
         [prev+1]; the group has now processed or skipped it elsewhere. *)
      let cand = Mid.make ~origin ~seq:(prev + 1) in
      t.ready <- Mid.Set.remove cand t.ready;
      t.seen.(o) <- last;
      for s = prev + 1 to last do
        resolve t (Mid.make ~origin ~seq:s)
      done
    end
  done

let take_processable t delivery =
  (* Empty-list fast path: the fault-free hot loop calls this once per
     processed message, and an O(n) sync there would make every delivery
     O(n) again.  Skipping the sync just lets [seen] lag, which is safe:
     blockers computed against a stale vector are conservative and resolve
     on the next non-empty sync. *)
  if t.size = 0 then None
  else begin
    sync t delivery;
    match Mid.Set.min_elt_opt t.ready with
  | None -> None
  | Some mid -> (
      match find_entry t mid with
      | None -> assert false (* ready entries are always live *)
      | Some entry ->
          remove t mid;
          Some entry.msg)
  end

(* -- discard cascade ----------------------------------------------------- *)

let discard_from t ~origin ~seq =
  if t.size = 0 then []
  else begin
  let victims = Hashtbl.create 16 in
  let queue = Queue.create () in
  (* Lowest seq from which each origin's waiting tail has been swept: sweeps
     of overlapping tails (one per same-origin victim) stay linear. *)
  let swept_from = Array.make t.n max_int in
  let add_victim mid =
    if mem t mid && not (Hashtbl.mem victims mid) then begin
      Hashtbl.add victims mid ();
      Queue.push mid queue
    end
  in
  (* Every waiting message of [o] with seq >= [from] depends on a victim
     through the implicit per-origin chain. *)
  let sweep_tail o from =
    if from < swept_from.(o) then begin
      let upto = swept_from.(o) in
      swept_from.(o) <- from;
      match t.rings.(o) with
      | None -> ()
      | Some r ->
          if r.span > 0 then begin
            let lo = max from r.base in
            let hi = min (upto - 1) (r.base + r.span - 1) in
            for s = lo to hi do
              match r.buf.(phys r (s - r.base)) with
              | Some entry -> add_victim entry.msg.Causal_msg.mid
              | None -> ()
            done
          end
    end
  in
  sweep_tail (Net.Node_id.to_int origin) seq;
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    sweep_tail (Net.Node_id.to_int (Mid.origin v)) (Mid.seq v + 1);
    match Hashtbl.find_opt t.dep_index v with
    | None -> ()
    | Some dependers ->
        (* Everything depending on a discarded message is itself discarded,
           so this key can never gate a survivor: drop it outright.  Index
           entries can be stale (a mid removed and later re-added under a
           different dependency set leaves its old registrations behind), so
           only a live entry that still lists [v] is a victim. *)
        Hashtbl.remove t.dep_index v;
        List.iter
          (fun d ->
            match find_entry t d with
            | Some entry
              when Array.exists (Mid.equal v) entry.msg.Causal_msg.deps ->
                add_victim d
            | Some _ | None -> ())
          !dependers
  done;
  let discarded =
    Hashtbl.fold (fun mid () acc -> mid :: acc) victims []
    |> List.sort Mid.compare
  in
  List.iter (remove t) discarded;
  discarded
  end

let to_list t =
  if Array.length t.rings = 0 then []
  else
  List.concat
    (List.init t.n (fun o ->
         match t.rings.(o) with
         | None -> []
         | Some r ->
             let acc = ref [] in
             for i = r.span - 1 downto 0 do
               match r.buf.(phys r i) with
               | Some entry -> acc := entry.msg :: !acc
               | None -> ()
             done;
             !acc))
