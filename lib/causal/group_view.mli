(** Local group view (Section 4, assumption 4).

    "A local group view describes the knowledge that each process has
    acquired about the whole system of processes."  The urcgc algorithm
    guarantees that all active processes converge on the same view; views
    only ever shrink (crashed processes are removed, recovery of crashed
    processes is out of scope for the paper). *)

type t

val create : n:int -> t
(** All [n] processes initially alive. *)

val n : t -> int
(** Size of the initial group (vector dimension), not the live count. *)

val alive : t -> Net.Node_id.t -> bool

val remove : t -> Net.Node_id.t -> unit
(** Idempotent. *)

val members : t -> Net.Node_id.t list
(** Alive processes, in id order. *)

val cardinal : t -> int
(** Number of alive processes. *)

val alive_array : t -> bool array
(** Copy, indexed by node id. *)

val alive_raw : t -> bool array
(** The view's own backing array, indexed by node id — read-only borrow for
    allocation-free hot paths; mutating it corrupts the view.  Stale after
    the next {!remove}/{!set_alive_array}. *)

val set_alive_array : t -> bool array -> unit
(** Adopts the [process_state] vector of a decision.  Only removals are
    applied: a view never resurrects a process. *)

val copy : t -> t

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
