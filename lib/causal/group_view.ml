type t = { alive : bool array }

let create ~n =
  if n <= 0 then invalid_arg "Group_view.create: n must be positive";
  { alive = Array.make n true }

let n t = Array.length t.alive

let alive t node = t.alive.(Net.Node_id.to_int node)

let remove t node = t.alive.(Net.Node_id.to_int node) <- false

let members t =
  let ids = ref [] in
  for i = Array.length t.alive - 1 downto 0 do
    if t.alive.(i) then ids := Net.Node_id.of_int i :: !ids
  done;
  !ids

let cardinal t =
  Array.fold_left (fun acc alive -> if alive then acc + 1 else acc) 0 t.alive

let alive_array t = Array.copy t.alive

let alive_raw t = t.alive

let set_alive_array t states =
  if Array.length states <> Array.length t.alive then
    invalid_arg "Group_view.set_alive_array: dimension mismatch";
  Array.iteri (fun i alive -> if not alive then t.alive.(i) <- false) states

let copy t = { alive = Array.copy t.alive }

let equal a b = a.alive = b.alive

let pp ppf t =
  Format.fprintf ppf "{%a}"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
       Net.Node_id.pp)
    (members t)
