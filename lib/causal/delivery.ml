type t = { last : int array }

let create ~n =
  if n <= 0 then invalid_arg "Delivery.create: n must be positive";
  { last = Array.make n 0 }

let n t = Array.length t.last

let last_processed t origin = t.last.(Net.Node_id.to_int origin)

let vector t = Array.copy t.last

let processed t mid = Mid.seq mid <= last_processed t (Mid.origin mid)

let missing t (msg : _ Causal_msg.t) =
  let mid = msg.mid in
  let origin = Mid.origin mid in
  let chain_gap =
    let next = last_processed t origin + 1 in
    if Mid.seq mid > next then [ Mid.make ~origin ~seq:next ] else []
  in
  let unprocessed_deps =
    Array.fold_right
      (fun dep acc -> if processed t dep then acc else dep :: acc)
      msg.deps []
  in
  chain_gap @ unprocessed_deps

(* Top-level recursion, not [Array.for_all (processed t)]: this runs once
   per received message and must allocate neither a closure nor a partial
   application. *)
let rec deps_processed t deps i =
  i >= Array.length deps || (processed t deps.(i) && deps_processed t deps (i + 1))

let processable t msg =
  let mid = msg.Causal_msg.mid in
  Mid.seq mid = last_processed t (Mid.origin mid) + 1
  && deps_processed t msg.Causal_msg.deps 0

let mark t mid =
  let i = Net.Node_id.to_int (Mid.origin mid) in
  if Mid.seq mid <> t.last.(i) + 1 then
    invalid_arg "Delivery.mark: out-of-order processing";
  t.last.(i) <- Mid.seq mid

let force_skip_to t ~origin ~seq =
  let i = Net.Node_id.to_int origin in
  if seq > t.last.(i) then t.last.(i) <- seq

let count t = Array.fold_left ( + ) 0 t.last

let pp ppf t =
  Format.fprintf ppf "[%a]"
    (Format.pp_print_seq
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ";")
       Format.pp_print_int)
    (Array.to_seq t.last)
