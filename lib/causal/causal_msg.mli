(** A user message together with its causal labelling.

    Besides the content, a message carries its [mid] and the mids which it
    causally depends on (Section 3).  Under the intermediate interpretation
    of Definition 3.1 used throughout the paper, each process roots a single
    sequence, so a message carries at most one dependency per origin and the
    dependency on the sender's own previous message is implied by the
    sequence number rather than listed.

    Dependencies are stored as a flat array sorted by [Mid.compare]: the
    delivery hot path scans them once per message, and the array form keeps
    a message's label a single block rather than a cons chain. *)

type 'a t = {
  mid : Mid.t;
  deps : Mid.t array;
      (** explicit causal dependencies, sorted by [Mid.compare], at most one
          per origin.  Treat as immutable. *)
  payload : 'a;
  payload_size : int;  (** bytes of user data carried *)
}

val make : mid:Mid.t -> deps:Mid.t list -> payload_size:int -> 'a -> 'a t
(** Normalizes [deps] (sorted, deduplicated).  Raises [Invalid_argument] if
    [payload_size < 0], if two dependencies share an origin, or if a
    dependency names the message itself or a later message of its origin
    (which would break the acyclic property of Definition 3.1). *)

val of_sorted_deps :
  mid:Mid.t -> deps:Mid.t array -> payload_size:int -> 'a -> 'a t
(** Like {!make} but adopts [deps] without copying or sorting: the array
    must already be sorted by [Mid.compare] and must not be mutated after
    the call.  Validation (distinctness, origin uniqueness, acyclicity) is
    still performed, in one allocation-free pass — this is the hot-path
    constructor. *)

val header_size : int
(** Fixed header bytes: mid + dependency count + payload length. *)

val encoded_size : 'a t -> int
(** [header_size + 8 * |deps| + payload_size]. *)

val depends_on : 'a t -> Mid.t -> bool
(** Direct dependency: [m] is listed in [deps], or is an earlier message of
    the same origin (implicit chain). *)

val pp : Format.formatter -> 'a t -> unit
