type 'a t = {
  mid : Mid.t;
  deps : Mid.t array;
  payload : 'a;
  payload_size : int;
}

let header_size = Mid.encoded_size + 2 + 2

(* [deps] must be sorted by [Mid.compare] with unique origins and no
   dependency on the message's own origin at or past [seq]; checked in one
   allocation-free pass. *)
let validate_deps mid deps =
  let n = Array.length deps in
  for i = 0 to n - 1 do
    let dep = deps.(i) in
    if i > 0 then begin
      if Mid.compare deps.(i - 1) dep >= 0 then
        invalid_arg "Causal_msg.make: dependencies not sorted and distinct";
      if Net.Node_id.equal (Mid.origin deps.(i - 1)) (Mid.origin dep) then
        invalid_arg "Causal_msg.make: two dependencies share an origin"
    end;
    if
      Net.Node_id.equal (Mid.origin dep) (Mid.origin mid)
      && Mid.seq dep >= Mid.seq mid
    then invalid_arg "Causal_msg.make: dependency on self or a later message"
  done

let of_sorted_deps ~mid ~deps ~payload_size payload =
  if payload_size < 0 then invalid_arg "Causal_msg.make: negative payload size";
  validate_deps mid deps;
  { mid; deps; payload; payload_size }

let make ~mid ~deps ~payload_size payload =
  let deps = Array.of_list (List.sort_uniq Mid.compare deps) in
  of_sorted_deps ~mid ~deps ~payload_size payload

let encoded_size t =
  header_size + (Mid.encoded_size * Array.length t.deps) + t.payload_size

let depends_on t m =
  Array.exists (Mid.equal m) t.deps
  || (Net.Node_id.equal (Mid.origin t.mid) (Mid.origin m)
     && Mid.seq m < Mid.seq t.mid)

let pp ppf t =
  Format.fprintf ppf "%a<-[%a]" Mid.pp t.mid
    (Format.pp_print_seq
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
       Mid.pp)
    (Array.to_seq t.deps)
