(* Per-origin storage is a dense circular buffer (ring) indexed by sequence
   number rather than a balanced map: the protocol stores each origin's
   messages in strictly increasing seq order and purges prefixes, so the live
   seqs of one origin always form a narrow window [base, base+span).  A slot
   inside the window can still be a hole — [force_skip_to] jumps and the
   test-suite's sparse stores leave gaps — hence slots are optional and a
   per-ring [count] tracks actual occupancy.  All hot operations ([store],
   [mem], [find], [max_seq]) are O(1); [purge_upto] and [range] are O(slots
   touched).

   Ring invariants:
   - capacity is a power of two (masking instead of mod);
   - every slot outside the window is [Empty];
   - when [span > 0] the top slot (seq [base+span-1]) is always [Stored],
     so [max_seq] needs no scan.  Only [purge_upto] removes entries and it
     eats from the bottom. *)

type 'a slot = Empty | Stored of 'a Causal_msg.t

type 'a ring = {
  mutable buf : 'a slot array;
  mutable head : int;  (* physical index of seq [base] *)
  mutable base : int;  (* lowest seq covered by the window *)
  mutable span : int;  (* seqs covered: [base, base + span) *)
  mutable count : int; (* [Stored] slots within the window *)
}

type 'a t = { rings : 'a ring array; mutable total : int }

let create ~n =
  if n <= 0 then invalid_arg "History.create: n must be positive";
  {
    rings =
      Array.init n (fun _ ->
          { buf = [||]; head = 0; base = 0; span = 0; count = 0 });
    total = 0;
  }

let ring t origin = t.rings.(Net.Node_id.to_int origin)

let phys r i = (r.head + i) land (Array.length r.buf - 1)

let get r seq =
  if r.span = 0 || seq < r.base || seq >= r.base + r.span then Empty
  else r.buf.(phys r (seq - r.base))

let rec next_pow2 n k = if k >= n then k else next_pow2 n (k * 2)

(* Initial ring capacity.  Kept small: a member holds one ring per origin
   and the steady-state window is a handful of messages (history is purged
   every full-group decision), so at n = 128 the difference between 4 and 16
   slots is ~200 kw of promoted heap per simulated cluster. *)
let initial_cap = 4

(* Re-house the window in a fresh buffer of at least [needed] slots, leaving
   [offset] empty slots below the current base (for downward extension). *)
let rehouse r ~needed ~offset =
  let ncap = next_pow2 needed (max initial_cap (2 * Array.length r.buf)) in
  let nbuf = Array.make ncap Empty in
  for i = 0 to r.span - 1 do
    nbuf.(offset + i) <- r.buf.(phys r i)
  done;
  r.buf <- nbuf;
  r.head <- 0

let store t msg =
  let mid = msg.Causal_msg.mid in
  let r = ring t (Mid.origin mid) in
  let seq = Mid.seq mid in
  if r.span = 0 then begin
    if Array.length r.buf = 0 then r.buf <- Array.make initial_cap Empty;
    r.head <- 0;
    r.base <- seq;
    r.span <- 1
  end
  else if seq >= r.base + r.span then begin
    let needed = seq - r.base + 1 in
    if needed > Array.length r.buf then rehouse r ~needed ~offset:0;
    r.span <- needed
  end
  else if seq < r.base then begin
    (* Below the window: only reachable by storing under an already-purged
       or not-yet-started prefix (exercised by tests, not the protocol). *)
    let delta = r.base - seq in
    let needed = r.span + delta in
    if needed > Array.length r.buf then rehouse r ~needed ~offset:delta
    else begin
      let cap = Array.length r.buf in
      r.head <- (r.head + cap - delta) land (cap - 1)
    end;
    r.base <- seq;
    r.span <- needed
  end;
  let i = phys r (seq - r.base) in
  match r.buf.(i) with
  | Stored _ -> () (* idempotent: keep the first copy *)
  | Empty ->
      r.buf.(i) <- Stored msg;
      r.count <- r.count + 1;
      t.total <- t.total + 1

let mem t mid =
  match get (ring t (Mid.origin mid)) (Mid.seq mid) with
  | Empty -> false
  | Stored _ -> true

let find t mid =
  match get (ring t (Mid.origin mid)) (Mid.seq mid) with
  | Empty -> None
  | Stored msg -> Some msg

let range t ~origin ~lo ~hi =
  let r = ring t origin in
  if r.span = 0 then []
  else begin
    let lo = max lo r.base and hi = min hi (r.base + r.span - 1) in
    let rec collect seq acc =
      if seq < lo then acc
      else
        let acc =
          match r.buf.(phys r (seq - r.base)) with
          | Stored msg -> msg :: acc
          | Empty -> acc
        in
        collect (seq - 1) acc
    in
    collect hi []
  end

let purge_upto t ~origin ~seq =
  let r = ring t origin in
  if r.span = 0 || seq < r.base then 0
  else begin
    let k = min (seq - r.base + 1) r.span in
    let removed = ref 0 in
    for i = 0 to k - 1 do
      let p = phys r i in
      (match r.buf.(p) with Stored _ -> incr removed | Empty -> ());
      r.buf.(p) <- Empty
    done;
    r.head <- phys r k;
    r.base <- r.base + k;
    r.span <- r.span - k;
    if r.span = 0 then r.head <- 0;
    r.count <- r.count - !removed;
    t.total <- t.total - !removed;
    !removed
  end

let length t = t.total

let entry_length t origin = (ring t origin).count

let max_seq t ~origin =
  let r = ring t origin in
  if r.span = 0 then 0 else r.base + r.span - 1

let fold t ~init ~f =
  Array.fold_left
    (fun acc r ->
      let acc = ref acc in
      for i = 0 to r.span - 1 do
        match r.buf.(phys r i) with
        | Stored msg -> acc := f !acc msg
        | Empty -> ()
      done;
      !acc)
    init t.rings
