(* Per-origin storage is a dense circular buffer (ring) indexed by sequence
   number rather than a balanced map: the protocol stores each origin's
   messages in strictly increasing seq order and purges prefixes, so the live
   seqs of one origin always form a narrow window [base, base+span).  A slot
   inside the window can still be a hole — [force_skip_to] jumps and the
   test-suite's sparse stores leave gaps.  All hot operations ([store],
   [mem], [find], [max_seq]) are O(1); [purge_upto] and [range] are O(slots
   touched).

   Representation notes, both driven by the allocation budget (docs/PERF.md):
   - The per-origin ring state lives in parallel arrays indexed by origin
     rather than one record per ring: creating a history is five arrays
     instead of n records, and a member allocates one history per group
     member it simulates.
   - Slots hold the message directly, with a physically-unique [hole]
     sentinel standing for emptiness, instead of an option/variant box:
     storing a message writes one pointer and allocates nothing.  The
     sentinel never escapes — every reader compares against it first.

   Ring invariants:
   - capacity is a power of two (masking instead of mod);
   - every slot outside the window is a hole;
   - when [span > 0] the top slot (seq [base+span-1]) is always occupied,
     so [max_seq] needs no scan.  Only [purge_upto] removes entries and it
     eats from the bottom. *)

(* The hole sentinel.  A boxed value with a private identity: no legitimate
   message can be physically equal to it, and [Array.make] on a boxed value
   always builds an ordinary (non-float) array.  [Causal_msg.t] values are
   records, hence boxed, so the magic never confuses the GC. *)
let hole : Obj.t = Obj.repr (ref "history-hole")

let hole_msg : 'a Causal_msg.t = Obj.magic hole

let is_hole (msg : 'a Causal_msg.t) = Obj.repr msg == hole

type 'a t = {
  bufs : 'a Causal_msg.t array array;  (* [||] until the first store *)
  head : int array;   (* physical index of seq [base] *)
  base : int array;   (* lowest seq covered by the window *)
  span : int array;   (* seqs covered: [base, base + span) *)
  count : int array;  (* occupied slots within the window *)
  mutable total : int;
}

let create ~n =
  if n <= 0 then invalid_arg "History.create: n must be positive";
  {
    bufs = Array.make n [||];
    head = Array.make n 0;
    base = Array.make n 0;
    span = Array.make n 0;
    count = Array.make n 0;
    total = 0;
  }

let phys t o i = (t.head.(o) + i) land (Array.length t.bufs.(o) - 1)

(* The slot for [seq], or the hole when outside the window. *)
let get t o seq =
  if t.span.(o) = 0 || seq < t.base.(o) || seq >= t.base.(o) + t.span.(o) then
    hole_msg
  else t.bufs.(o).(phys t o (seq - t.base.(o)))

let rec next_pow2 n k = if k >= n then k else next_pow2 n (k * 2)

(* Initial ring capacity.  Kept minimal: a member holds one ring per origin
   and the steady-state window is a couple of messages (history is purged
   every full-group decision), so at n = 128 every extra initial slot is
   ~16 kw of heap per simulated cluster. *)
let initial_cap = 2

(* Re-house the window in a fresh buffer of at least [needed] slots, leaving
   [offset] empty slots below the current base (for downward extension). *)
let rehouse t o ~needed ~offset =
  let ncap = next_pow2 needed (max initial_cap (2 * Array.length t.bufs.(o))) in
  let nbuf = Array.make ncap hole_msg in
  for i = 0 to t.span.(o) - 1 do
    nbuf.(offset + i) <- t.bufs.(o).(phys t o i)
  done;
  t.bufs.(o) <- nbuf;
  t.head.(o) <- 0

let store t msg =
  let mid = msg.Causal_msg.mid in
  let o = Net.Node_id.to_int (Mid.origin mid) in
  let seq = Mid.seq mid in
  if t.span.(o) = 0 then begin
    if Array.length t.bufs.(o) = 0 then
      t.bufs.(o) <- Array.make initial_cap hole_msg;
    t.head.(o) <- 0;
    t.base.(o) <- seq;
    t.span.(o) <- 1
  end
  else if seq >= t.base.(o) + t.span.(o) then begin
    let needed = seq - t.base.(o) + 1 in
    if needed > Array.length t.bufs.(o) then rehouse t o ~needed ~offset:0;
    t.span.(o) <- needed
  end
  else if seq < t.base.(o) then begin
    (* Below the window: only reachable by storing under an already-purged
       or not-yet-started prefix (exercised by tests, not the protocol). *)
    let delta = t.base.(o) - seq in
    let needed = t.span.(o) + delta in
    if needed > Array.length t.bufs.(o) then rehouse t o ~needed ~offset:delta
    else begin
      let cap = Array.length t.bufs.(o) in
      t.head.(o) <- (t.head.(o) + cap - delta) land (cap - 1)
    end;
    t.base.(o) <- seq;
    t.span.(o) <- needed
  end;
  let i = phys t o (seq - t.base.(o)) in
  if is_hole t.bufs.(o).(i) then begin
    t.bufs.(o).(i) <- msg;
    t.count.(o) <- t.count.(o) + 1;
    t.total <- t.total + 1
  end
  (* else idempotent: keep the first copy *)

let mem t mid =
  not (is_hole (get t (Net.Node_id.to_int (Mid.origin mid)) (Mid.seq mid)))

let find t mid =
  let msg = get t (Net.Node_id.to_int (Mid.origin mid)) (Mid.seq mid) in
  if is_hole msg then None else Some msg

let range t ~origin ~lo ~hi =
  let o = Net.Node_id.to_int origin in
  if t.span.(o) = 0 then []
  else begin
    let lo = max lo t.base.(o) and hi = min hi (t.base.(o) + t.span.(o) - 1) in
    let rec collect seq acc =
      if seq < lo then acc
      else
        let msg = t.bufs.(o).(phys t o (seq - t.base.(o))) in
        collect (seq - 1) (if is_hole msg then acc else msg :: acc)
    in
    collect hi []
  end

let purge_upto t ~origin ~seq =
  let o = Net.Node_id.to_int origin in
  if t.span.(o) = 0 || seq < t.base.(o) then 0
  else begin
    let k = min (seq - t.base.(o) + 1) t.span.(o) in
    let removed = ref 0 in
    for i = 0 to k - 1 do
      let p = phys t o i in
      if not (is_hole t.bufs.(o).(p)) then incr removed;
      t.bufs.(o).(p) <- hole_msg
    done;
    t.head.(o) <- phys t o k;
    t.base.(o) <- t.base.(o) + k;
    t.span.(o) <- t.span.(o) - k;
    if t.span.(o) = 0 then t.head.(o) <- 0;
    t.count.(o) <- t.count.(o) - !removed;
    t.total <- t.total - !removed;
    !removed
  end

let length t = t.total

let entry_length t origin = t.count.(Net.Node_id.to_int origin)

let max_seq t ~origin =
  let o = Net.Node_id.to_int origin in
  if t.span.(o) = 0 then 0 else t.base.(o) + t.span.(o) - 1

let fold t ~init ~f =
  let acc = ref init in
  for o = 0 to Array.length t.bufs - 1 do
    for i = 0 to t.span.(o) - 1 do
      let msg = t.bufs.(o).(phys t o i) in
      if not (is_hole msg) then acc := f !acc msg
    done
  done;
  !acc
