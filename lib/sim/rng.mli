(** Deterministic pseudo-random number generator (splitmix64).

    Every simulation component draws randomness from an [Rng.t] derived from
    the scenario seed, so a run is a pure function of its seed. *)

type t

val create : seed:int -> t

val split : t -> t
(** [split t] derives an independent generator; [t] advances. *)

val derive : seed:int -> int -> int
(** [derive ~seed index] mixes [seed] and [index] into a fresh non-negative
    seed, without consuming any generator state.  The campaign harness gives
    run [index] the stream [create ~seed:(derive ~seed index)], so runs are
    independent yet each is replayable from the campaign seed alone. *)

val int64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)].  Raises [Invalid_argument] if
    [bound <= 0]. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> float -> bool
(** [bool t p] is true with probability [p]. *)

val pick : t -> 'a array -> 'a
(** Uniform choice.  Raises [Invalid_argument] on an empty array. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val exponential : t -> mean:float -> float
(** Exponentially distributed sample with the given mean. *)

val geometric : t -> p:float -> int
(** Number of Bernoulli(p) failures before the first success; 0 if [p >= 1]. *)
