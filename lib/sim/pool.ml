let available = Pool_backend.available

let default_jobs () = Pool_backend.default_jobs ()

type domain_stat = Pool_backend.domain_stat = {
  tasks : int;
  steals : int;
  busy_ns : float;
  idle_ns : float;
}

(* Cross-call accumulator, indexed by worker slot (0 = calling domain).
   Workers write their private slot and the caller folds the array in
   after every join, so accumulation itself runs single-domain. *)
let acc : domain_stat array ref = ref [||]

let zero = { tasks = 0; steals = 0; busy_ns = 0.; idle_ns = 0. }

let reset_stats () = acc := [||]

let stats () = Array.copy !acc

let absorb per_call =
  let wanted = max (Array.length !acc) (Array.length per_call) in
  if Array.length !acc < wanted then begin
    let grown = Array.make wanted zero in
    Array.blit !acc 0 grown 0 (Array.length !acc);
    acc := grown
  end;
  Array.iteri
    (fun i (s : domain_stat) ->
      let a = !acc.(i) in
      !acc.(i) <-
        {
          tasks = a.tasks + s.tasks;
          steals = a.steals + s.steals;
          busy_ns = a.busy_ns +. s.busy_ns;
          idle_ns = a.idle_ns +. s.idle_ns;
        })
    per_call

let record_metrics m =
  Array.iteri
    (fun i (s : domain_stat) ->
      let name suffix = Printf.sprintf "pool.d%d.%s" i suffix in
      Metrics.incr ~by:s.tasks m (name "tasks");
      Metrics.incr ~by:s.steals m (name "steals");
      Metrics.incr ~by:(int_of_float s.busy_ns) m (name "busy_ns");
      Metrics.incr ~by:(int_of_float s.idle_ns) m (name "idle_ns"))
    !acc

let map ~jobs f tasks =
  if tasks < 0 then invalid_arg "Pool.map: negative task count";
  if jobs < 0 then invalid_arg "Pool.map: negative job count";
  let jobs = if jobs = 0 then default_jobs () else jobs in
  let jobs = min jobs (max tasks 1) in
  if tasks = 0 then [||]
  else if jobs <= 1 then begin
    (* In-order on the calling thread: no domain spawn cost, and the
       evaluation order matches what a plain loop would do. *)
    let t0 = Unix.gettimeofday () in
    let first = f 0 in
    let results = Array.make tasks first in
    for i = 1 to tasks - 1 do
      results.(i) <- f i
    done;
    let busy = (Unix.gettimeofday () -. t0) *. 1e9 in
    absorb [| { tasks; steals = 0; busy_ns = busy; idle_ns = 0. } |];
    results
  end
  else begin
    let results, per_call = Pool_backend.map ~jobs f tasks in
    absorb per_call;
    results
  end
