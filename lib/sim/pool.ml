let available = Pool_backend.available

let default_jobs () = Pool_backend.default_jobs ()

let map ~jobs f tasks =
  if tasks < 0 then invalid_arg "Pool.map: negative task count";
  if jobs < 0 then invalid_arg "Pool.map: negative job count";
  let jobs = if jobs = 0 then default_jobs () else jobs in
  let jobs = min jobs (max tasks 1) in
  if tasks = 0 then [||]
  else if jobs <= 1 then begin
    (* In-order on the calling thread: no domain spawn cost, and the
       evaluation order matches what a plain loop would do. *)
    let first = f 0 in
    let results = Array.make tasks first in
    for i = 1 to tasks - 1 do
      results.(i) <- f i
    done;
    results
  end
  else Pool_backend.map ~jobs f tasks
