(** Minimal strict JSON reader.

    The matching reader for the repo's hand-serialized, byte-deterministic
    JSON exports (the trace JSONL of [docs/TRACE.md] in particular).  Object
    fields keep their source order, so a consumer can enforce the documented
    fixed field layout; numbers parse to [Int] when the lexeme is integral
    and representable, [Float] otherwise. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list  (** fields in source order *)

val parse : string -> (t, string) result
(** Parse one complete JSON value.  Anything but trailing whitespace after
    the value — or any syntax error — yields [Error] with a byte offset and
    a one-line diagnosis. *)

val member : string -> t -> t option
(** Field lookup on an [Obj]; [None] on missing fields and non-objects. *)

val buf_string : Buffer.t -> string -> unit
(** Append [s] as a JSON string literal, escaped exactly like the repo's
    exporters (quote, backslash, newline and tab get named escapes; other
    control bytes render as [\u00XX]). *)
