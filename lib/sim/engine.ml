type event = {
  mutable cancelled : bool;
  label : string;
  callback : unit -> unit;
}

type handle = event

type t = {
  mutable now : Ticks.t;
  mutable next_seq : int;
  mutable stopped : bool;
  queue : event Heap.t;
}

let create () =
  { now = Ticks.zero; next_seq = 0; stopped = false; queue = Heap.create () }

let now t = t.now

let pending t = Heap.length t.queue

let schedule ?(label = "event") t ~at callback =
  if Ticks.compare at t.now < 0 then
    invalid_arg "Engine.schedule: event in the past";
  let event = { cancelled = false; label; callback } in
  Heap.push t.queue ~time:at ~seq:t.next_seq event;
  t.next_seq <- t.next_seq + 1;
  event

let schedule_after ?label t ~delay callback =
  schedule ?label t ~at:(Ticks.add t.now delay) callback

let cancel event = event.cancelled <- true

let step t =
  if Heap.is_empty t.queue then false
  else begin
    (* top_time/pop_top rather than [pop]: the option-tuple result would
       put ~6 minor words on every event of the run loop. *)
    let time = Heap.top_time t.queue in
    let event = Heap.pop_top t.queue in
    t.now <- time;
    if not event.cancelled then
      if !Prof.on then begin
        Prof.enter event.label;
        (try event.callback ()
         with e ->
           Prof.exit ();
           raise e);
        Prof.exit ()
      end
      else event.callback ();
    true
  end

let run ?until t =
  t.stopped <- false;
  let continue () =
    if t.stopped || Heap.is_empty t.queue then false
    else
      match until with
      | None -> true
      | Some limit -> Ticks.(Heap.top_time t.queue <= limit)
  in
  while continue () do
    ignore (step t)
  done;
  match until with
  | Some limit when (not t.stopped) && Ticks.(t.now < limit) -> t.now <- limit
  | Some _ | None -> ()

let stop t = t.stopped <- true
