(* Sequential stand-in for runtimes without domains (OCaml 4.14): the same
   interface as the domains backend, evaluated in index order on the
   calling thread.  Exceptions propagate directly from the failing task.
   The single stat entry tallies everything under worker 0 with no idle
   time and no steal attempts — there is no one to steal from. *)

type domain_stat = {
  tasks : int;
  steals : int;
  busy_ns : float;
  idle_ns : float;
}

let available = false

let default_jobs () = 1

let map ~jobs:_ f tasks =
  let t0 = Unix.gettimeofday () in
  let first = f 0 in
  let results = Array.make tasks first in
  for i = 1 to tasks - 1 do
    results.(i) <- f i
  done;
  let busy = (Unix.gettimeofday () -. t0) *. 1e9 in
  (results, [| { tasks; steals = 0; busy_ns = busy; idle_ns = 0. } |])
