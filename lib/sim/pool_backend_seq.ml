(* Sequential stand-in for runtimes without domains (OCaml 4.14): the same
   interface as the domains backend, evaluated in index order on the
   calling thread.  Exceptions propagate directly from the failing task. *)

let available = false

let default_jobs () = 1

let map ~jobs:_ f tasks =
  let first = f 0 in
  let results = Array.make tasks first in
  for i = 1 to tasks - 1 do
    results.(i) <- f i
  done;
  results
