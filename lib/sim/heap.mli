(** Binary min-heap keyed by [(Ticks.t, int)].

    The integer component is an insertion sequence number supplied by the
    caller; it breaks ties deterministically so that two events scheduled for
    the same instant fire in insertion order. *)

type 'a t

val create : unit -> 'a t

val length : 'a t -> int

val is_empty : 'a t -> bool

val push : 'a t -> time:Ticks.t -> seq:int -> 'a -> unit

val peek : 'a t -> (Ticks.t * int * 'a) option
(** Smallest element without removing it. *)

val pop : 'a t -> (Ticks.t * int * 'a) option
(** Removes and returns the smallest element. *)

val top_time : 'a t -> Ticks.t
(** Time of the smallest element, without allocating.  Raises
    [Invalid_argument] on an empty heap. *)

val pop_top : 'a t -> 'a
(** Removes the smallest element and returns its value, without
    allocating.  Raises [Invalid_argument] on an empty heap. *)

val clear : 'a t -> unit
(** Empties the heap, releasing every stored entry (nothing previously
    pushed stays reachable through the heap) while keeping the grown
    backing capacity, so push-after-clear does not re-pay the growth
    doublings. *)
