(* Domains backend (OCaml >= 5.0): a fixed crew of [jobs] workers — the
   calling domain plus [jobs - 1] spawned ones — pulls task indexes from a
   shared atomic counter and writes results into a slot array.  Reads of
   the slots happen only after every worker has been joined, so the
   publication is ordered by the join; no per-slot synchronization is
   needed because each index is claimed by exactly one worker.

   Each worker also keeps a private tally — tasks run, empty counter
   fetches (the closest thing this scheduler has to a failed steal), and
   busy/idle wall-clock — written into its own slot of a stats array and
   read only after the joins, under the same publication argument. *)

type domain_stat = {
  tasks : int;
  steals : int;
  busy_ns : float;
  idle_ns : float;
}

let available = true

let default_jobs () = Domain.recommended_domain_count ()

let map ~jobs f tasks =
  let results = Array.make tasks None in
  let stats =
    Array.make jobs { tasks = 0; steals = 0; busy_ns = 0.; idle_ns = 0. }
  in
  let next = Atomic.make 0 in
  let failure = Atomic.make None in
  let worker slot () =
    let start = Unix.gettimeofday () in
    let ran = ref 0 in
    let empty = ref 0 in
    let busy = ref 0. in
    let rec loop () =
      let i = Atomic.fetch_and_add next 1 in
      if i >= tasks then incr empty
      else if Atomic.get failure = None then begin
        let t0 = Unix.gettimeofday () in
        (match f i with
        | v -> results.(i) <- Some v
        | exception e ->
            (* First failure wins; the rest of the crew drains out at the
               next counter check instead of starting new tasks. *)
            ignore (Atomic.compare_and_set failure None (Some e)));
        busy := !busy +. ((Unix.gettimeofday () -. t0) *. 1e9);
        incr ran;
        loop ()
      end
    in
    loop ();
    let wall = (Unix.gettimeofday () -. start) *. 1e9 in
    stats.(slot) <-
      {
        tasks = !ran;
        steals = !empty;
        busy_ns = !busy;
        idle_ns = Float.max 0. (wall -. !busy);
      }
  in
  let crew = Array.init (jobs - 1) (fun k -> Domain.spawn (worker (k + 1))) in
  worker 0 ();
  Array.iter Domain.join crew;
  match Atomic.get failure with
  | Some e -> raise e
  | None ->
      ( Array.map
          (function
            | Some v -> v | None -> assert false (* every index claimed *))
          results,
        stats )
