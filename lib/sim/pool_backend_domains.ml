(* Domains backend (OCaml >= 5.0): a fixed crew of [jobs] workers — the
   calling domain plus [jobs - 1] spawned ones — pulls task indexes from a
   shared atomic counter and writes results into a slot array.  Reads of
   the slots happen only after every worker has been joined, so the
   publication is ordered by the join; no per-slot synchronization is
   needed because each index is claimed by exactly one worker. *)

let available = true

let default_jobs () = Domain.recommended_domain_count ()

let map ~jobs f tasks =
  let results = Array.make tasks None in
  let next = Atomic.make 0 in
  let failure = Atomic.make None in
  let worker () =
    let rec loop () =
      let i = Atomic.fetch_and_add next 1 in
      if i < tasks && Atomic.get failure = None then begin
        (match f i with
        | v -> results.(i) <- Some v
        | exception e ->
            (* First failure wins; the rest of the crew drains out at the
               next counter check instead of starting new tasks. *)
            ignore (Atomic.compare_and_set failure None (Some e)));
        loop ()
      end
    in
    loop ()
  in
  let crew = Array.init (jobs - 1) (fun _ -> Domain.spawn worker) in
  worker ();
  Array.iter Domain.join crew;
  match Atomic.get failure with
  | Some e -> raise e
  | None ->
      Array.map
        (function Some v -> v | None -> assert false (* every index claimed *))
        results
