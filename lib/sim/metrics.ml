(* %.12g keeps full double precision while printing integral values without
   a trailing ".0": the JSON is a pure function of the recorded samples. *)
let float_str = Printf.sprintf "%.12g"

type gauge = { mutable last : int; mutable peak : int }

type histogram = {
  mutable samples : float list;  (* newest first *)
  mutable h_count : int;
  mutable sum : float;
}

type registry = {
  counters : (string, int ref) Hashtbl.t;
  gauges : (string, gauge) Hashtbl.t;
  histograms : (string, histogram) Hashtbl.t;
}

type t = Null | Reg of registry

let null = Null

let create () =
  Reg
    {
      counters = Hashtbl.create 16;
      gauges = Hashtbl.create 16;
      histograms = Hashtbl.create 16;
    }

let enabled = function Null -> false | Reg _ -> true

let incr ?(by = 1) t name =
  match t with
  | Null -> ()
  | Reg r -> (
      match Hashtbl.find_opt r.counters name with
      | Some cell -> cell := !cell + by
      | None -> Hashtbl.replace r.counters name (ref by))

let set_gauge t name value =
  match t with
  | Null -> ()
  | Reg r -> (
      match Hashtbl.find_opt r.gauges name with
      | Some g ->
          g.last <- value;
          if value > g.peak then g.peak <- value
      | None -> Hashtbl.replace r.gauges name { last = value; peak = value })

let observe t name value =
  match t with
  | Null -> ()
  | Reg r -> (
      match Hashtbl.find_opt r.histograms name with
      | Some h ->
          h.samples <- value :: h.samples;
          h.h_count <- h.h_count + 1;
          h.sum <- h.sum +. value
      | None ->
          Hashtbl.replace r.histograms name
            { samples = [ value ]; h_count = 1; sum = value })

(* -- read-back (tests and reports) --------------------------------------- *)

let counter t name =
  match t with
  | Null -> 0
  | Reg r -> (
      match Hashtbl.find_opt r.counters name with Some c -> !c | None -> 0)

let gauge_last t name =
  match t with
  | Null -> None
  | Reg r -> Option.map (fun g -> g.last) (Hashtbl.find_opt r.gauges name)

let gauge_peak t name =
  match t with
  | Null -> None
  | Reg r -> Option.map (fun g -> g.peak) (Hashtbl.find_opt r.gauges name)

type summary = {
  count : int;
  mean : float;
  min : float;
  max : float;
  p50 : float;
  p95 : float;
}

let quantile sorted count q =
  (* Nearest-rank on the ascending sample array: deterministic and exact for
     the small sample counts a simulation run produces. *)
  let rank = int_of_float (Float.ceil (q *. float_of_int count)) in
  let rank = Stdlib.min count (Stdlib.max 1 rank) in
  sorted.(rank - 1)

let summarize h =
  let sorted = Array.of_list h.samples in
  Array.sort Float.compare sorted;
  let count = h.h_count in
  {
    count;
    mean = h.sum /. float_of_int count;
    min = sorted.(0);
    max = sorted.(count - 1);
    p50 = quantile sorted count 0.50;
    p95 = quantile sorted count 0.95;
  }

let histogram t name =
  match t with
  | Null -> None
  | Reg r ->
      Option.map summarize (Hashtbl.find_opt r.histograms name)

let sorted_names table =
  Hashtbl.fold (fun name _ acc -> name :: acc) table []
  |> List.sort String.compare

(* -- JSON ----------------------------------------------------------------- *)

let buf_json t buf =
  match t with
  | Null -> Buffer.add_string buf "{}"
  | Reg r ->
      Buffer.add_string buf "{\"counters\":{";
      List.iteri
        (fun i name ->
          if i > 0 then Buffer.add_char buf ',';
          Printf.bprintf buf "\"%s\":%d" name !(Hashtbl.find r.counters name))
        (sorted_names r.counters);
      Buffer.add_string buf "},\"gauges\":{";
      List.iteri
        (fun i name ->
          if i > 0 then Buffer.add_char buf ',';
          let g = Hashtbl.find r.gauges name in
          Printf.bprintf buf "\"%s\":{\"last\":%d,\"peak\":%d}" name g.last
            g.peak)
        (sorted_names r.gauges);
      Buffer.add_string buf "},\"histograms\":{";
      List.iteri
        (fun i name ->
          if i > 0 then Buffer.add_char buf ',';
          let s = summarize (Hashtbl.find r.histograms name) in
          Printf.bprintf buf
            "\"%s\":{\"count\":%d,\"mean\":%s,\"min\":%s,\"max\":%s,\"p50\":%s,\"p95\":%s}"
            name s.count (float_str s.mean) (float_str s.min) (float_str s.max)
            (float_str s.p50) (float_str s.p95))
        (sorted_names r.histograms);
      Buffer.add_string buf "}}"

let to_json t =
  let buf = Buffer.create 512 in
  buf_json t buf;
  Buffer.contents buf

(* -- human rendering ------------------------------------------------------ *)

let pp ppf t =
  match t with
  | Null -> Format.pp_print_string ppf "metrics disabled"
  | Reg r ->
      Format.fprintf ppf "@[<v>";
      List.iter
        (fun name ->
          Format.fprintf ppf "%-32s %d@," name !(Hashtbl.find r.counters name))
        (sorted_names r.counters);
      List.iter
        (fun name ->
          let g = Hashtbl.find r.gauges name in
          Format.fprintf ppf "%-32s last=%d peak=%d@," name g.last g.peak)
        (sorted_names r.gauges);
      List.iter
        (fun name ->
          let s = summarize (Hashtbl.find r.histograms name) in
          Format.fprintf ppf
            "%-32s count=%d mean=%.3f min=%.3f max=%.3f p50=%.3f p95=%.3f@,"
            name s.count s.mean s.min s.max s.p50 s.p95)
        (sorted_names r.histograms);
      Format.fprintf ppf "@]"
