(** Metrics registry.

    A small, dependency-free registry of named counters, gauges, and
    histograms that the workload runners populate during a simulation run.
    The JSON rendering is deterministic (names sorted, [%.12g] floats), so
    fixed-seed campaign reports that embed metrics stay byte-identical.

    The metric catalogue (names and units) is documented in
    [docs/TRACE.md]. *)

type t

val null : t
(** Discards everything; recording into it costs nothing and retains
    nothing. *)

val create : unit -> t

val enabled : t -> bool
(** [false] exactly for {!null}. *)

val incr : ?by:int -> t -> string -> unit
(** Add [by] (default 1) to a counter, creating it at zero first. *)

val set_gauge : t -> string -> int -> unit
(** Record an instantaneous level; the registry keeps the last and the peak
    value observed. *)

val observe : t -> string -> float -> unit
(** Record one histogram sample. *)

(** {2 Read-back} *)

val counter : t -> string -> int
(** Current counter value; 0 if never incremented (or on {!null}). *)

val gauge_last : t -> string -> int option
val gauge_peak : t -> string -> int option

type summary = {
  count : int;
  mean : float;
  min : float;
  max : float;
  p50 : float;
  p95 : float;
}

val histogram : t -> string -> summary option
(** Nearest-rank quantiles over the recorded samples. *)

val to_json : t -> string
(** One JSON object: [{"counters":{...},"gauges":{...},"histograms":{...}}],
    names in sorted order.  [{}] for {!null}. *)

val buf_json : t -> Buffer.t -> unit
(** Append {!to_json} output to a buffer (used by the campaign report
    writer). *)

val pp : Format.formatter -> t -> unit
(** Human-readable table (used by the bench and replay output). *)
