(** Offline trace analyzer.

    Reconstructs per-message lifecycles from a typed protocol trace (held in
    memory or parsed back from the JSONL export of [docs/TRACE.md]),
    re-checks the protocol invariants purely from events, and renders two
    deterministic exports: a canonical single-line JSON report and a Chrome
    trace-event (Perfetto) timeline.

    The analyzer sits below the protocol libraries, so nodes are integer
    indices and messages are [(origin, seq)] pairs, exactly as traced.  It
    tolerates bounded-ring truncation: when the trace is a suffix of the run
    it reports a coverage window and skips the checks a missing prefix would
    false-flag, instead of reporting spurious violations. *)

type dist = {
  count : int;
  mean : float;
  min : float;
  max : float;
  p50 : float;  (** nearest-rank, matching {!Metrics} *)
  p95 : float;
}
(** Summary of a sample distribution; all-zero when [count = 0]. *)

val dist_of_floats : float list -> dist
val dist_of_ticks : int list -> dist

type coverage = {
  complete : bool;
      (** whether the trace covers the run from tick 0 (a bounded ring keeps
          only the newest records, leaving a suffix window) *)
  first_tick : int;
  last_tick : int;
  events : int;
  pre_window_mids : int;
      (** messages referenced by events in the window whose broadcast
          happened before it *)
}

type span = {
  mid : Trace.mid;
  broadcast_tick : int;
  deps : int;
  bytes : int;
  dsts : int;
  recvs : int;
  duplicate_recvs : int;
  retransmissions : int;  (** relays and repeat sends of the same mid *)
  wait_adds : int;
  waiting_ticks : int;  (** total waiting-list residency across nodes *)
  deliveries : int;
  confirmed : bool;
  first_delivery_tick : int option;
  last_delivery_tick : int option;
  stable_tick : int option;
      (** tick at which every survivor had processed the message *)
  recover_requests : int;
      (** recovery requests whose seq range covers this message *)
  discards : int;
}
(** One message lifecycle: broadcast through per-node processing to
    group-wide stability. *)

type verdict = {
  causal_ok : bool;
  at_most_once_ok : bool;
  atomicity_ok : bool;
  zombie_ok : bool;
      (** no survivor processed a discarded mid, and no node processed
          anything at a tick strictly after its [left] event *)
  partition_ok : bool;
      (** no [left] event carries the solo-view (primary partition lost)
          reason; see docs/TRACE.md *)
  skipped : string list;
      (** checks suppressed because the window is truncated *)
  violations : string list;
}
(** Trace-level invariant oracle outcome.  The bits line up with
    [Workload.Checker.verdict] (minus view agreement, which is not derivable
    from the trace), which is what the cross-validation property test
    compares. *)

val verdict_ok : verdict -> bool

type t = {
  nodes : int;
  coverage : coverage;
  spans : span list;  (** sorted by [(origin, seq)] *)
  latency_ticks : dist;  (** broadcast-to-processing, remote deliveries *)
  stability_ticks : dist;  (** broadcast to group-wide stability *)
  waiting : dist;  (** waiting-list residency per stay *)
  rotations : (int * int) list;  (** coordinator node -> rotations led *)
  decisions : (int * int) list;  (** coordinator node -> decision PDUs *)
  recover_requests : int;
  recover_replies : int;
  recovered_messages : int;  (** total messages carried by replies *)
  drops_by_stage : (Trace.stage * int) list;
  drops_by_class : (Trace.Traffic_class.t * int) list;
  crashed : int list;
  left : int list;
  verdict : verdict;
  metrics_json : string option;
      (** the trailing metrics line of the JSONL input, verbatim, if any *)
}

val analyze :
  ?n:int -> ?complete:bool -> ?metrics_json:string -> Trace.record list -> t
(** Analyze a record sequence (oldest first, as produced by
    {!Trace.records}).

    [n] overrides the inferred group size (the default is one past the
    highest node index mentioned anywhere in the trace, which undercounts
    only if a member is completely silent).  [complete] overrides window
    autodetection — a complete urcgc trace starts with the subrun-0 rotation
    at tick 0; pass [~complete:true] for synthetic event lists that skip the
    preamble.  [metrics_json] is stored verbatim in the result. *)

val parse_line : string -> (Trace.record, string) result
(** Parse one JSONL line against the [docs/TRACE.md] schema.  Strict: the
    exact documented field names, order, and types are enforced, and unknown
    events, pdu kinds, drop kinds, or stages are errors. *)

val parse_jsonl :
  string list -> (Trace.record list * string option, string) result
(** Parse the lines of a trace file.  Blank lines are skipped; a trailing
    [{"metrics":...}] line (from [--metrics]) is returned verbatim as the
    second component; anything after it is an error.  Errors are prefixed
    with the 1-based line number. *)

val report_json : t -> string
(** Canonical single-line JSON analysis report: fixed field order, integers
    and [%.12g] floats only — byte-identical for identical traces.  Contains
    coverage, the oracle verdict, lifecycle aggregates (latency, stability
    and waiting distributions), per-coordinator load, recovery and drop
    tallies, fault sets, and the per-message span table.  The run metrics
    line, if any, is {e not} embedded; read it from [metrics_json]. *)

val perfetto_json : Trace.record list -> string
(** Chrome trace-event (Perfetto / chrome://tracing / ui.perfetto.dev) JSON
    timeline: one thread track per node plus "net" and "group" tracks;
    complete spans for message processing and waiting-list residency;
    instants for broadcasts, rotations, membership changes, crashes, drops,
    decisions, and recovery traffic.  One tick maps to one microsecond.
    Deterministic: events are emitted in record order. *)

val pp_summary : Format.formatter -> t -> unit
(** Multi-line human rendering of the headline numbers and the verdict. *)
