(** Discrete-event simulation engine.

    Callbacks are executed in nondecreasing time order; events scheduled for
    the same instant run in the order they were scheduled, which makes runs
    deterministic. *)

type t

type handle
(** A scheduled event that can be cancelled before it fires. *)

val create : unit -> t

val now : t -> Ticks.t

val pending : t -> int
(** Number of events still queued (including cancelled ones not yet popped). *)

val schedule : ?label:string -> t -> at:Ticks.t -> (unit -> unit) -> handle
(** Raises [Invalid_argument] if [at] is in the past.  [label] (default
    ["event"]) names the event class for profiling: when [Prof] is
    enabled, {!step} runs the callback inside a span of that name, so
    dispatch cost is attributed per event class.  Labels do not affect
    scheduling order or any simulation output. *)

val schedule_after : ?label:string -> t -> delay:Ticks.t -> (unit -> unit) -> handle

val cancel : handle -> unit
(** Cancelling an already-fired or cancelled event is a no-op. *)

val step : t -> bool
(** Runs the next event.  Returns [false] when the queue is empty. *)

val run : ?until:Ticks.t -> t -> unit
(** Runs events until the queue empties, or past [until] (events strictly
    later than [until] stay queued and the clock advances to [until]). *)

val stop : t -> unit
(** Makes the current [run] return after the executing event completes. *)
