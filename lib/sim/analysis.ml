(* Offline trace analyzer.

   Consumes the typed protocol trace (in memory, or parsed back from the
   JSONL export of docs/TRACE.md) and produces the three artifacts the
   evaluation and CI lean on:

   - per-message lifecycle spans: broadcast -> recv/wait -> deliver ->
     confirm -> group-wide stability, with latency, waiting-list residency,
     retransmission/recovery counts, coordinator decision load, and drop
     attribution;
   - a trace-level invariant oracle re-checking causal order, at-most-once
     delivery, uniform atomicity among survivors, and zombie processing
     purely from events — independently of the live Workload.Checker;
   - deterministic exports: a canonical single-line JSON report and a
     Chrome trace-event (Perfetto) timeline.

   Analysis happens below the protocol libraries, so nodes are integer
   indices and messages are (origin, seq) pairs, exactly as traced. *)

let float_str = Printf.sprintf "%.12g"

(* -- distributions -------------------------------------------------------- *)

type dist = {
  count : int;
  mean : float;
  min : float;
  max : float;
  p50 : float;
  p95 : float;
}

let empty_dist = { count = 0; mean = 0.0; min = 0.0; max = 0.0; p50 = 0.0; p95 = 0.0 }

let dist_of_floats samples =
  match samples with
  | [] -> empty_dist
  | _ ->
      let sorted = Array.of_list samples in
      Array.sort Float.compare sorted;
      let count = Array.length sorted in
      let sum = Array.fold_left ( +. ) 0.0 sorted in
      let quantile q =
        (* Nearest rank, matching Metrics. *)
        let rank = int_of_float (Float.ceil (q *. float_of_int count)) in
        sorted.(Stdlib.min count (Stdlib.max 1 rank) - 1)
      in
      {
        count;
        mean = sum /. float_of_int count;
        min = sorted.(0);
        max = sorted.(count - 1);
        p50 = quantile 0.50;
        p95 = quantile 0.95;
      }

let dist_of_ticks ticks = dist_of_floats (List.map float_of_int ticks)

let dist_scale k d =
  if d.count = 0 then d
  else
    {
      d with
      mean = d.mean *. k;
      min = d.min *. k;
      max = d.max *. k;
      p50 = d.p50 *. k;
      p95 = d.p95 *. k;
    }

(* -- result types --------------------------------------------------------- *)

type coverage = {
  complete : bool;
  first_tick : int;
  last_tick : int;
  events : int;
  pre_window_mids : int;
}

type span = {
  mid : Trace.mid;
  broadcast_tick : int;
  deps : int;
  bytes : int;
  dsts : int;
  recvs : int;
  duplicate_recvs : int;
  retransmissions : int;
  wait_adds : int;
  waiting_ticks : int;
  deliveries : int;
  confirmed : bool;
  first_delivery_tick : int option;
  last_delivery_tick : int option;
  stable_tick : int option;
  recover_requests : int;
  discards : int;
}

type verdict = {
  causal_ok : bool;
  at_most_once_ok : bool;
  atomicity_ok : bool;
  zombie_ok : bool;
  partition_ok : bool;
  skipped : string list;
  violations : string list;
}

let verdict_ok v =
  v.causal_ok && v.at_most_once_ok && v.atomicity_ok && v.zombie_ok
  && v.partition_ok

type t = {
  nodes : int;
  coverage : coverage;
  spans : span list;
  latency_ticks : dist;
  stability_ticks : dist;
  waiting : dist;
  rotations : (int * int) list;
  decisions : (int * int) list;
  recover_requests : int;
  recover_replies : int;
  recovered_messages : int;
  drops_by_stage : (Trace.stage * int) list;
  drops_by_class : (Trace.Traffic_class.t * int) list;
  crashed : int list;
  left : int list;
  verdict : verdict;
  metrics_json : string option;
}

(* -- analysis ------------------------------------------------------------- *)

module Mid_key = struct
  type t = int * int

  let compare = compare
end

module Mid_set = Set.Make (Mid_key)

(* Mutable per-message accumulator; frozen into a [span] at the end. *)
type acc = {
  a_mid : Trace.mid;
  a_broadcast_tick : int;
  (* The origin's delivery vector at the broadcast instant (last delivered
     seq per origin), and how many entries were nonzero.  When the traced
     [deps] count equals the nonzero count, the message was frontier-labelled
     and the vector IS its causal past; otherwise the deps are explicit and
     narrower, and the oracle falls back to origin-chain causality only. *)
  a_vector : int array;
  a_frontier : bool;
  a_deps : int;
  a_bytes : int;
  a_dsts : int;
  mutable a_recvs : int;
  mutable a_duplicate_recvs : int;
  mutable a_retransmissions : int;
  mutable a_wait_adds : int;
  mutable a_waiting_ticks : int;
  mutable a_deliveries : (int * int) list;  (* (node, tick), newest first *)
  mutable a_confirmed : bool;
  mutable a_discards : int;
}

let max_node_index records =
  let top = ref (-1) in
  let see i = if i > !top then top := i in
  let see_pdu = function
    | Trace.Data { origin; _ } -> see origin
    | Trace.Request { sender; _ } -> see sender
    | Trace.Decision { coordinator; _ } -> see coordinator
    | Trace.Recover_req { requester; origin; _ } ->
        see requester;
        see origin
    | Trace.Recover_reply { responder; _ } -> see responder
  in
  List.iter
    (fun { Trace.event; _ } ->
      match event with
      | Trace.Send { src; dst; pdu } ->
          see src;
          see dst;
          see_pdu pdu
      | Trace.Broadcast { src; pdu; _ } ->
          see src;
          see_pdu pdu
      | Trace.Receive { node; pdu } ->
          see node;
          see_pdu pdu
      | Trace.Deliver { node; mid } | Trace.Confirm { node; mid } ->
          see node;
          see mid.Trace.origin
      | Trace.Wait_add { node; mid; _ } ->
          see node;
          see mid.Trace.origin
      | Trace.Wait_discard { node; mids } ->
          see node;
          List.iter (fun m -> see m.Trace.origin) mids
      | Trace.Rotate { coordinator; _ } -> see coordinator
      | Trace.Left { node; _ } | Trace.Crash { node } -> see node
      | Trace.Drop { src; dst; _ } ->
          see src;
          see dst
      | Trace.Note _ -> ())
    records;
  !top + 1

(* A complete urcgc trace opens with the subrun-0 rotation at tick 0 (the
   first simulated round emits it before anything else).  Anything else is a
   bounded-ring suffix: the analyzer then reports a coverage window and
   suppresses the checks that a missing prefix would false-flag. *)
let looks_complete records =
  match records with
  | [] -> true
  | { Trace.time; event } :: _ -> (
      Ticks.to_int time = 0
      && match event with Trace.Rotate { subrun = 0; _ } -> true | _ -> false)

let analyze ?n ?(complete : bool option) ?metrics_json records =
  let n =
    match n with Some n -> Stdlib.max n (max_node_index records) | None -> max_node_index records
  in
  let complete =
    match complete with Some c -> c | None -> looks_complete records
  in
  let events = List.length records in
  let first_tick, last_tick =
    match records with
    | [] -> (0, 0)
    | first :: _ ->
        let last = List.fold_left (fun _ r -> r) first records in
        (Ticks.to_int first.Trace.time, Ticks.to_int last.Trace.time)
  in
  (* Per-node state. *)
  let vectors = Array.init n (fun _ -> Array.make (Stdlib.max n 1) 0) in
  let seen_chain = Hashtbl.create 64 in  (* (node, origin) -> last seq seen *)
  let delivered : Mid_set.t array = Array.make (Stdlib.max n 1) Mid_set.empty in
  let pending_waits = Hashtbl.create 64 in  (* (node, mid key) -> tick *)
  let accs : (Mid_key.t, acc) Hashtbl.t = Hashtbl.create 64 in
  let pre_window = Hashtbl.create 16 in
  let crashed = Hashtbl.create 8 in
  let left = Hashtbl.create 8 in
  (* Discards per discarding node: only the discards of nodes that turn out
     to be survivors witness group agreement (a departed member may have
     purged orphans under a solo decision nobody else holds). *)
  let discarded_by : (int, Mid_set.t) Hashtbl.t = Hashtbl.create 8 in
  let rotations = Array.make (Stdlib.max n 1) 0 in
  let decisions = Array.make (Stdlib.max n 1) 0 in
  let recover_reqs = ref [] in  (* (origin, from, to) *)
  let recover_req_count = ref 0 in
  let recover_replies = ref 0 in
  let recovered_messages = ref 0 in
  let drops_stage = Hashtbl.create 8 in
  let drops_class = Hashtbl.create 8 in
  let violations = ref [] in
  let causal_ok = ref true in
  let amo_ok = ref true in
  let zombie_ok = ref true in
  let partition_ok = ref true in
  let violation flag fmt =
    Printf.ksprintf
      (fun msg ->
        flag := false;
        violations := msg :: !violations)
      fmt
  in
  let key (m : Trace.mid) = (m.Trace.origin, m.Trace.seq) in
  let note_pre_window k =
    if not (Hashtbl.mem pre_window k) then Hashtbl.replace pre_window k () in
  let on_data_broadcast ~tick ~src (origin, seq) ~deps ~bytes ~dsts =
    let k = (origin, seq) in
    match Hashtbl.find_opt accs k with
    | Some acc ->
        (* Seen again: a relay or recovery rebroadcast, not a new lifecycle. *)
        acc.a_retransmissions <- acc.a_retransmissions + 1
    | None ->
        if src <> origin then
          (* A relayed copy of a message we never saw leave its origin: the
             lifecycle start is outside the window. *)
          note_pre_window k
        else begin
          let vector = Array.copy vectors.(src) in
          let nonzero = Array.fold_left (fun acc v -> if v > 0 then acc + 1 else acc) 0 vector in
          Hashtbl.replace accs k
            {
              a_mid = { Trace.origin; seq };
              a_broadcast_tick = tick;
              a_vector = vector;
              a_frontier = complete && nonzero = deps;
              a_deps = deps;
              a_bytes = bytes;
              a_dsts = dsts;
              a_recvs = 0;
              a_duplicate_recvs = 0;
              a_retransmissions = 0;
              a_wait_adds = 0;
              a_waiting_ticks = 0;
              a_deliveries = [];
              a_confirmed = false;
              a_discards = 0;
            }
        end
  in
  let seen_recv = Hashtbl.create 64 in  (* (node, mid key) -> unit *)
  let waiting_samples = ref [] in
  let deliver ~tick node (mid : Trace.mid) =
    let k = key mid in
    let origin = mid.Trace.origin in
    let seq = mid.Trace.seq in
    if node < 0 || node >= n || origin < 0 || origin >= n then
      violation causal_ok "node or origin out of range in deliver of (%d,%d)"
        origin seq
    else begin
      (* A departed process must not keep processing: same-tick events
         belong to the action batch that contained the departure, anything
         strictly later is zombie processing. *)
      (match Hashtbl.find_opt left node with
      | Some left_tick when tick > left_tick ->
          violation zombie_ok
            "zombie: node %d processed (%d,%d) at tick %d after leaving at \
             tick %d"
            node origin seq tick left_tick
      | _ -> ());
      (* At-most-once. *)
      if Mid_set.mem k delivered.(node) then
        violation amo_ok "node %d processed (%d,%d) more than once" node origin
          seq
      else begin
        delivered.(node) <- Mid_set.add k delivered.(node);
        (* Origin-chain contiguity (the per-origin FIFO half of causality). *)
        (match Hashtbl.find_opt seen_chain (node, origin) with
        | Some last ->
            if seq <> last + 1 then
              violation causal_ok
                "node %d processed (%d,%d) out of order (expected seq %d)"
                node origin seq (last + 1);
            Hashtbl.replace seen_chain (node, origin) (Stdlib.max last seq)
        | None ->
            if complete && seq <> 1 then
              violation causal_ok
                "node %d processed (%d,%d) before the start of its chain" node
                origin seq;
            Hashtbl.replace seen_chain (node, origin) seq);
        (* Cross-origin causal past, when the label was the full frontier. *)
        (match Hashtbl.find_opt accs k with
        | None -> note_pre_window k
        | Some acc ->
            if acc.a_frontier then
              Array.iteri
                (fun j need ->
                  if j <> origin && need > vectors.(node).(j) then
                    violation causal_ok
                      "node %d processed (%d,%d) before its causal \
                       predecessor (%d,%d)"
                      node origin seq j need)
                acc.a_vector;
            acc.a_deliveries <- (node, tick) :: acc.a_deliveries);
        if seq > vectors.(node).(origin) then vectors.(node).(origin) <- seq;
        (* Waiting-list residency ends at processing. *)
        match Hashtbl.find_opt pending_waits (node, k) with
        | None -> ()
        | Some wtick ->
            Hashtbl.remove pending_waits (node, k);
            let residency = tick - wtick in
            waiting_samples := residency :: !waiting_samples;
            (match Hashtbl.find_opt accs k with
            | Some acc -> acc.a_waiting_ticks <- acc.a_waiting_ticks + residency
            | None -> ())
      end
    end
  in
  List.iter
    (fun { Trace.time; event } ->
      let tick = Ticks.to_int time in
      match event with
      | Trace.Broadcast { src; dsts; pdu = Trace.Data { origin; seq; deps; bytes } } ->
          on_data_broadcast ~tick ~src (origin, seq) ~deps ~bytes ~dsts
      | Trace.Broadcast { src = _; pdu = Trace.Decision { coordinator; _ }; _ }
      | Trace.Send { src = _; pdu = Trace.Decision { coordinator; _ }; _ } ->
          if coordinator >= 0 && coordinator < n then
            decisions.(coordinator) <- decisions.(coordinator) + 1
      | Trace.Send { pdu = Trace.Data { origin; seq; _ }; _ } -> (
          match Hashtbl.find_opt accs (origin, seq) with
          | Some acc -> acc.a_retransmissions <- acc.a_retransmissions + 1
          | None -> note_pre_window (origin, seq))
      | Trace.Broadcast { pdu = Trace.Recover_req { origin; from_seq; to_seq; _ }; _ }
      | Trace.Send { pdu = Trace.Recover_req { origin; from_seq; to_seq; _ }; _ } ->
          incr recover_req_count;
          recover_reqs := (origin, from_seq, to_seq) :: !recover_reqs
      | Trace.Broadcast { pdu = Trace.Recover_reply { count; _ }; _ }
      | Trace.Send { pdu = Trace.Recover_reply { count; _ }; _ } ->
          incr recover_replies;
          recovered_messages := !recovered_messages + count
      | Trace.Broadcast _ | Trace.Send _ -> ()
      | Trace.Receive { node; pdu = Trace.Data { origin; seq; _ } } -> (
          let k = (origin, seq) in
          let dup = Hashtbl.mem seen_recv (node, k) in
          if not dup then Hashtbl.replace seen_recv (node, k) ();
          match Hashtbl.find_opt accs k with
          | Some acc ->
              acc.a_recvs <- acc.a_recvs + 1;
              if dup then acc.a_duplicate_recvs <- acc.a_duplicate_recvs + 1
          | None -> note_pre_window k)
      | Trace.Receive _ -> ()
      | Trace.Deliver { node; mid } -> deliver ~tick node mid
      | Trace.Confirm { node = _; mid } -> (
          match Hashtbl.find_opt accs (key mid) with
          | Some acc -> acc.a_confirmed <- true
          | None -> note_pre_window (key mid))
      | Trace.Wait_add { node; mid; depth = _ } -> (
          let k = key mid in
          if not (Hashtbl.mem pending_waits (node, k)) then
            Hashtbl.replace pending_waits (node, k) tick;
          match Hashtbl.find_opt accs k with
          | Some acc -> acc.a_wait_adds <- acc.a_wait_adds + 1
          | None -> note_pre_window k)
      | Trace.Wait_discard { node; mids } ->
          List.iter
            (fun mid ->
              let k = key mid in
              Hashtbl.replace discarded_by node
                (Mid_set.add k
                   (Option.value ~default:Mid_set.empty
                      (Hashtbl.find_opt discarded_by node)));
              Hashtbl.remove pending_waits (node, k);
              match Hashtbl.find_opt accs k with
              | Some acc -> acc.a_discards <- acc.a_discards + 1
              | None -> note_pre_window k)
            mids
      | Trace.Rotate { coordinator; _ } ->
          if coordinator >= 0 && coordinator < n then
            rotations.(coordinator) <- rotations.(coordinator) + 1
      | Trace.Left { node; reason } ->
          if not (Hashtbl.mem left node) then Hashtbl.replace left node tick;
          (* The reason string is the wire-stable rendering of
             [Urcgc.Member.reason_to_string] (docs/TRACE.md).  A solo-view
             departure means the group lost its primary partition — never
             legitimate within the fault budget. *)
          if reason = "partitioned (solo view)" then
            violation partition_ok
              "liveness: node %d left with a solo view at tick %d — the \
               group lost its primary partition"
              node tick
      | Trace.Crash { node } -> Hashtbl.replace crashed node ()
      | Trace.Drop { stage; kind; _ } ->
          let bump table k =
            Hashtbl.replace table k
              (1 + Option.value ~default:0 (Hashtbl.find_opt table k))
          in
          bump drops_stage stage;
          bump drops_class kind
      | Trace.Note _ -> ())
    records;
  (* Survivors: every index that neither crashed nor left. *)
  let survivors =
    List.filter
      (fun i -> not (Hashtbl.mem crashed i || Hashtbl.mem left i))
      (List.init n Fun.id)
  in
  let skipped = ref [] in
  (* Uniform atomicity among survivors (complete traces only: a missing
     prefix hides deliveries and would false-flag every survivor). *)
  let atomicity_ok = ref true in
  if not complete then
    skipped :=
      "atomicity: trace window is truncated, per-node delivery sets are \
       incomplete"
      :: !skipped
  else begin
    match survivors with
    | [] -> ()
    | first :: rest ->
        let reference = delivered.(first) in
        List.iter
          (fun node ->
            if not (Mid_set.equal delivered.(node) reference) then begin
              let only_ref = Mid_set.diff reference delivered.(node) in
              let only_node = Mid_set.diff delivered.(node) reference in
              violation atomicity_ok
                "atomicity: nodes %d and %d disagree (%d messages only at \
                 %d, %d only at %d)"
                first node
                (Mid_set.cardinal only_ref)
                first
                (Mid_set.cardinal only_node)
                node
            end)
          rest
  end;
  (* Zombie processing: survivors must not have processed a mid that a
     survivor discarded by group agreement. *)
  let discarded =
    List.fold_left
      (fun acc node ->
        match Hashtbl.find_opt discarded_by node with
        | Some set -> Mid_set.union acc set
        | None -> acc)
      Mid_set.empty survivors
  in
  List.iter
    (fun node ->
      Mid_set.iter
        (fun (origin, seq) ->
          if Mid_set.mem (origin, seq) delivered.(node) then
            violation zombie_ok
              "zombie: surviving node %d processed discarded message (%d,%d)"
              node origin seq)
        discarded)
    survivors;
  if not complete then
    skipped :=
      "causal: cross-origin dependency checks limited to the trace window"
      :: !skipped;
  (* Freeze spans. *)
  let spans =
    Hashtbl.fold (fun _ acc l -> acc :: l) accs []
    |> List.map (fun a ->
           let deliveries = List.rev a.a_deliveries in
           let ticks = List.map snd deliveries in
           let first_delivery_tick =
             match ticks with [] -> None | t :: rest -> Some (List.fold_left Stdlib.min t rest)
           in
           let last_delivery_tick =
             match ticks with [] -> None | t :: rest -> Some (List.fold_left Stdlib.max t rest)
           in
           let stable_tick =
             let delivered_at node =
               List.filter_map
                 (fun (d, t) -> if d = node then Some t else None)
                 deliveries
             in
             if survivors = [] then None
             else
               let rec stable acc = function
                 | [] -> Some acc
                 | node :: rest -> (
                     match delivered_at node with
                     | [] -> None
                     | t :: more ->
                         stable
                           (Stdlib.max acc (List.fold_left Stdlib.max t more))
                           rest)
               in
               stable 0 survivors
           in
           let recover_requests =
             List.length
               (List.filter
                  (fun (o, from_seq, to_seq) ->
                    o = a.a_mid.Trace.origin
                    && from_seq <= a.a_mid.Trace.seq
                    && a.a_mid.Trace.seq <= to_seq)
                  !recover_reqs)
           in
           {
             mid = a.a_mid;
             broadcast_tick = a.a_broadcast_tick;
             deps = a.a_deps;
             bytes = a.a_bytes;
             dsts = a.a_dsts;
             recvs = a.a_recvs;
             duplicate_recvs = a.a_duplicate_recvs;
             retransmissions = a.a_retransmissions;
             wait_adds = a.a_wait_adds;
             waiting_ticks = a.a_waiting_ticks;
             deliveries = List.length deliveries;
             confirmed = a.a_confirmed;
             first_delivery_tick;
             last_delivery_tick;
             stable_tick;
             recover_requests;
             discards = a.a_discards;
           })
    |> List.sort (fun a b ->
           compare (a.mid.Trace.origin, a.mid.Trace.seq)
             (b.mid.Trace.origin, b.mid.Trace.seq))
  in
  (* Aggregate distributions. *)
  let latency_samples = ref [] in
  let stability_samples = ref [] in
  Hashtbl.iter
    (fun _ a ->
      List.iter
        (fun (node, tick) ->
          if node <> a.a_mid.Trace.origin then
            latency_samples := (tick - a.a_broadcast_tick) :: !latency_samples)
        a.a_deliveries)
    accs;
  List.iter
    (fun span ->
      match span.stable_tick with
      | Some t -> stability_samples := (t - span.broadcast_tick) :: !stability_samples
      | None -> ())
    spans;
  let assoc_of_array arr =
    Array.to_list arr
    |> List.mapi (fun i v -> (i, v))
    |> List.filter (fun (_, v) -> v > 0)
  in
  {
    nodes = n;
    coverage =
      {
        complete;
        first_tick;
        last_tick;
        events;
        pre_window_mids = Hashtbl.length pre_window;
      };
    spans;
    latency_ticks = dist_of_ticks !latency_samples;
    stability_ticks = dist_of_ticks !stability_samples;
    waiting = dist_of_ticks !waiting_samples;
    rotations = assoc_of_array rotations;
    decisions = assoc_of_array decisions;
    recover_requests = !recover_req_count;
    recover_replies = !recover_replies;
    recovered_messages = !recovered_messages;
    drops_by_stage =
      List.filter_map
        (fun stage ->
          Option.map (fun c -> (stage, c)) (Hashtbl.find_opt drops_stage stage))
        [ Trace.On_send; Trace.On_link; Trace.On_recv; Trace.On_filter ];
    drops_by_class =
      List.filter_map
        (fun cls ->
          Option.map (fun c -> (cls, c)) (Hashtbl.find_opt drops_class cls))
        Trace.Traffic_class.all;
    crashed = List.sort compare (Hashtbl.fold (fun k () l -> k :: l) crashed []);
    left = List.sort compare (Hashtbl.fold (fun k _ l -> k :: l) left []);
    verdict =
      {
        causal_ok = !causal_ok;
        at_most_once_ok = !amo_ok;
        atomicity_ok = !atomicity_ok;
        zombie_ok = !zombie_ok;
        partition_ok = !partition_ok;
        skipped = List.rev !skipped;
        violations = List.rev !violations;
      };
    metrics_json;
  }

(* -- JSONL parsing --------------------------------------------------------

   Strict by design: the field layout of docs/TRACE.md is enforced exactly
   (names, order, and types), so schema drift between the exporter and this
   reader fails loudly instead of silently skewing statistics. *)

exception Parse of string

let fail fmt = Printf.ksprintf (fun msg -> raise (Parse msg)) fmt

let as_int name = function
  | Json.Int n -> n
  | _ -> fail "field %S must be an integer" name

let as_nat name v =
  let n = as_int name v in
  if n < 0 then fail "field %S must be non-negative" name else n

let as_string name = function
  | Json.Str s -> s
  | _ -> fail "field %S must be a string" name

let as_bool name = function
  | Json.Bool b -> b
  | _ -> fail "field %S must be a boolean" name

let check_layout what expected fields =
  let got = List.map fst fields in
  if got <> expected then
    fail "%s: expected fields [%s], found [%s]" what
      (String.concat "," expected)
      (String.concat "," got)

let pdu_of_json json =
  match json with
  | Json.Obj fields -> (
      let f name = List.assoc name fields in
      match Json.member "kind" json with
      | Some (Json.Str "data") ->
          check_layout "data pdu" [ "kind"; "origin"; "seq"; "deps"; "bytes" ]
            fields;
          Trace.Data
            {
              origin = as_nat "origin" (f "origin");
              seq = as_nat "seq" (f "seq");
              deps = as_nat "deps" (f "deps");
              bytes = as_nat "bytes" (f "bytes");
            }
      | Some (Json.Str "request") ->
          check_layout "request pdu" [ "kind"; "sender"; "subrun" ] fields;
          Trace.Request
            {
              sender = as_nat "sender" (f "sender");
              subrun = as_nat "subrun" (f "subrun");
            }
      | Some (Json.Str "decision") ->
          check_layout "decision pdu"
            [ "kind"; "subrun"; "coordinator"; "full_group" ]
            fields;
          Trace.Decision
            {
              subrun = as_nat "subrun" (f "subrun");
              coordinator = as_nat "coordinator" (f "coordinator");
              full_group = as_bool "full_group" (f "full_group");
            }
      | Some (Json.Str "recover_req") ->
          check_layout "recover_req pdu"
            [ "kind"; "requester"; "origin"; "from"; "to" ]
            fields;
          Trace.Recover_req
            {
              requester = as_nat "requester" (f "requester");
              origin = as_nat "origin" (f "origin");
              from_seq = as_nat "from" (f "from");
              to_seq = as_nat "to" (f "to");
            }
      | Some (Json.Str "recover_reply") ->
          check_layout "recover_reply pdu" [ "kind"; "responder"; "count" ]
            fields;
          Trace.Recover_reply
            {
              responder = as_nat "responder" (f "responder");
              count = as_nat "count" (f "count");
            }
      | Some (Json.Str other) -> fail "unknown pdu kind %S" other
      | Some _ -> fail "field \"kind\" must be a string"
      | None -> fail "pdu is missing the \"kind\" field")
  | _ -> fail "pdu must be an object"

let mid_of_json = function
  | Json.List [ Json.Int origin; Json.Int seq ] when origin >= 0 && seq >= 0 ->
      { Trace.origin; seq }
  | _ -> fail "mids entries must be [origin,seq] integer pairs"

let record_of_json json =
  match json with
  | Json.Obj ((("t", t) :: ("ev", Json.Str ev) :: _) as fields) ->
      let time = Ticks.of_int (as_nat "t" t) in
      let f name = List.assoc name fields in
      let layout extra = check_layout ev ("t" :: "ev" :: extra) fields in
      let event =
        match ev with
        | "send" ->
            layout [ "src"; "dst"; "pdu" ];
            Trace.Send
              {
                src = as_nat "src" (f "src");
                dst = as_nat "dst" (f "dst");
                pdu = pdu_of_json (f "pdu");
              }
        | "broadcast" ->
            layout [ "src"; "dsts"; "pdu" ];
            Trace.Broadcast
              {
                src = as_nat "src" (f "src");
                dsts = as_nat "dsts" (f "dsts");
                pdu = pdu_of_json (f "pdu");
              }
        | "recv" ->
            layout [ "node"; "pdu" ];
            Trace.Receive
              { node = as_nat "node" (f "node"); pdu = pdu_of_json (f "pdu") }
        | "deliver" ->
            layout [ "node"; "origin"; "seq" ];
            Trace.Deliver
              {
                node = as_nat "node" (f "node");
                mid =
                  {
                    Trace.origin = as_nat "origin" (f "origin");
                    seq = as_nat "seq" (f "seq");
                  };
              }
        | "confirm" ->
            layout [ "node"; "origin"; "seq" ];
            Trace.Confirm
              {
                node = as_nat "node" (f "node");
                mid =
                  {
                    Trace.origin = as_nat "origin" (f "origin");
                    seq = as_nat "seq" (f "seq");
                  };
              }
        | "wait_add" ->
            layout [ "node"; "origin"; "seq"; "depth" ];
            Trace.Wait_add
              {
                node = as_nat "node" (f "node");
                mid =
                  {
                    Trace.origin = as_nat "origin" (f "origin");
                    seq = as_nat "seq" (f "seq");
                  };
                depth = as_nat "depth" (f "depth");
              }
        | "wait_discard" ->
            layout [ "node"; "mids" ];
            let mids =
              match f "mids" with
              | Json.List entries -> List.map mid_of_json entries
              | _ -> fail "field \"mids\" must be an array"
            in
            Trace.Wait_discard { node = as_nat "node" (f "node"); mids }
        | "rotate" ->
            layout [ "subrun"; "coordinator" ];
            Trace.Rotate
              {
                subrun = as_nat "subrun" (f "subrun");
                coordinator = as_nat "coordinator" (f "coordinator");
              }
        | "left" ->
            layout [ "node"; "reason" ];
            Trace.Left
              {
                node = as_nat "node" (f "node");
                reason = as_string "reason" (f "reason");
              }
        | "crash" ->
            layout [ "node" ];
            Trace.Crash { node = as_nat "node" (f "node") }
        | "drop" ->
            layout [ "src"; "dst"; "kind"; "stage" ];
            let kind =
              let s = as_string "kind" (f "kind") in
              match Trace.Traffic_class.of_string s with
              | Some k -> k
              | None -> fail "unknown drop kind %S" s
            in
            let stage =
              let s = as_string "stage" (f "stage") in
              match Trace.stage_of_string s with
              | Some st -> st
              | None -> fail "unknown drop stage %S" s
            in
            Trace.Drop
              { src = as_nat "src" (f "src"); dst = as_nat "dst" (f "dst"); kind; stage }
        | "note" ->
            layout [ "source"; "message" ];
            Trace.Note
              {
                source = as_string "source" (f "source");
                message = as_string "message" (f "message");
              }
        | other -> fail "unknown event type %S" other
      in
      { Trace.time; event }
  | Json.Obj _ -> fail "record must start with \"t\" then \"ev\""
  | _ -> fail "record must be an object"

let parse_line line =
  match Json.parse line with
  | Result.Error e -> Result.Error e
  | Ok json -> ( try Ok (record_of_json json) with Parse msg -> Result.Error msg)

let parse_jsonl lines =
  let rec go lineno acc metrics = function
    | [] -> Ok (List.rev acc, metrics)
    | "" :: rest -> go (lineno + 1) acc metrics rest
    | line :: rest -> (
        if metrics <> None then
          Result.Error
            (Printf.sprintf "line %d: content after the metrics line" lineno)
        else
          match Json.parse line with
          | Result.Error e -> Result.Error (Printf.sprintf "line %d: %s" lineno e)
          | Ok (Json.Obj [ ("metrics", _) ]) ->
              go (lineno + 1) acc (Some line) rest
          | Ok json -> (
              match record_of_json json with
              | record -> go (lineno + 1) (record :: acc) metrics rest
              | exception Parse msg ->
                  Result.Error (Printf.sprintf "line %d: %s" lineno msg)))
  in
  go 1 [] None lines

(* -- canonical report export ---------------------------------------------- *)

let buf_dist buf d =
  if d.count = 0 then Buffer.add_string buf "{\"count\":0}"
  else
    Printf.bprintf buf
      "{\"count\":%d,\"mean\":%s,\"min\":%s,\"max\":%s,\"p50\":%s,\"p95\":%s}"
      d.count (float_str d.mean) (float_str d.min) (float_str d.max)
      (float_str d.p50) (float_str d.p95)

let buf_string_list buf items =
  Buffer.add_char buf '[';
  List.iteri
    (fun i s ->
      if i > 0 then Buffer.add_char buf ',';
      Json.buf_string buf s)
    items;
  Buffer.add_char buf ']'

let buf_int_list buf items =
  Buffer.add_char buf '[';
  List.iteri
    (fun i v ->
      if i > 0 then Buffer.add_char buf ',';
      Printf.bprintf buf "%d" v)
    items;
  Buffer.add_char buf ']'

let buf_opt_int buf = function
  | Some v -> Printf.bprintf buf "%d" v
  | None -> Buffer.add_string buf "null"

let coordinator_rows t =
  let nodes =
    List.sort_uniq compare (List.map fst t.rotations @ List.map fst t.decisions)
  in
  List.map
    (fun node ->
      ( node,
        Option.value ~default:0 (List.assoc_opt node t.rotations),
        Option.value ~default:0 (List.assoc_opt node t.decisions) ))
    nodes

let report_json t =
  let buf = Buffer.create 2048 in
  Printf.bprintf buf "{\"analysis\":{\"schema\":1,\"nodes\":%d}" t.nodes;
  Printf.bprintf buf
    ",\"coverage\":{\"complete\":%b,\"first_tick\":%d,\"last_tick\":%d,\"events\":%d,\"pre_window_mids\":%d}"
    t.coverage.complete t.coverage.first_tick t.coverage.last_tick
    t.coverage.events t.coverage.pre_window_mids;
  Printf.bprintf buf
    ",\"verdict\":{\"ok\":%b,\"causal_ok\":%b,\"at_most_once_ok\":%b,\"atomicity_ok\":%b,\"zombie_ok\":%b,\"partition_ok\":%b,\"checks_skipped\":"
    (verdict_ok t.verdict) t.verdict.causal_ok t.verdict.at_most_once_ok
    t.verdict.atomicity_ok t.verdict.zombie_ok t.verdict.partition_ok;
  buf_string_list buf t.verdict.skipped;
  Buffer.add_string buf ",\"violations\":";
  buf_string_list buf t.verdict.violations;
  Buffer.add_char buf '}';
  let confirmed =
    List.length (List.filter (fun s -> s.confirmed) t.spans)
  in
  let stable =
    List.length (List.filter (fun s -> s.stable_tick <> None) t.spans)
  in
  let undelivered =
    List.length (List.filter (fun s -> s.deliveries = 0) t.spans)
  in
  let sum f = List.fold_left (fun acc s -> acc + f s) 0 t.spans in
  Printf.bprintf buf
    ",\"lifecycle\":{\"messages\":%d,\"confirmed\":%d,\"group_stable\":%d,\"undelivered\":%d,\"wait_adds\":%d,\"retransmissions\":%d,\"duplicate_recvs\":%d,\"latency_ticks\":"
    (List.length t.spans) confirmed stable undelivered
    (sum (fun s -> s.wait_adds))
    (sum (fun s -> s.retransmissions))
    (sum (fun s -> s.duplicate_recvs));
  buf_dist buf t.latency_ticks;
  Buffer.add_string buf ",\"latency_rtd\":";
  buf_dist buf (dist_scale (1.0 /. float_of_int Ticks.per_rtd) t.latency_ticks);
  Buffer.add_string buf ",\"stability_ticks\":";
  buf_dist buf t.stability_ticks;
  Buffer.add_string buf ",\"waiting_ticks\":";
  buf_dist buf t.waiting;
  Buffer.add_char buf '}';
  Buffer.add_string buf ",\"coordinators\":[";
  List.iteri
    (fun i (node, rotations, decisions) ->
      if i > 0 then Buffer.add_char buf ',';
      Printf.bprintf buf
        "{\"node\":%d,\"rotations\":%d,\"decisions\":%d}" node rotations
        decisions)
    (coordinator_rows t);
  Buffer.add_char buf ']';
  Printf.bprintf buf
    ",\"recovery\":{\"requests\":%d,\"replies\":%d,\"messages_carried\":%d}"
    t.recover_requests t.recover_replies t.recovered_messages;
  let drops_total = List.fold_left (fun acc (_, c) -> acc + c) 0 t.drops_by_stage in
  Printf.bprintf buf ",\"drops\":{\"total\":%d,\"by_stage\":{" drops_total;
  List.iteri
    (fun i (stage, c) ->
      if i > 0 then Buffer.add_char buf ',';
      Printf.bprintf buf "\"%s\":%d" (Trace.stage_to_string stage) c)
    t.drops_by_stage;
  Buffer.add_string buf "},\"by_class\":{";
  List.iteri
    (fun i (cls, c) ->
      if i > 0 then Buffer.add_char buf ',';
      Printf.bprintf buf "\"%s\":%d" (Trace.Traffic_class.to_string cls) c)
    t.drops_by_class;
  Buffer.add_string buf "}}";
  Buffer.add_string buf ",\"faults\":{\"crashed\":";
  buf_int_list buf t.crashed;
  Buffer.add_string buf ",\"left\":";
  buf_int_list buf t.left;
  Buffer.add_char buf '}';
  Buffer.add_string buf ",\"per_message\":[";
  List.iteri
    (fun i s ->
      if i > 0 then Buffer.add_char buf ',';
      Printf.bprintf buf
        "{\"origin\":%d,\"seq\":%d,\"broadcast_tick\":%d,\"deps\":%d,\"bytes\":%d,\"dsts\":%d,\"recvs\":%d,\"duplicate_recvs\":%d,\"retransmissions\":%d,\"wait_adds\":%d,\"waiting_ticks\":%d,\"deliveries\":%d,\"confirmed\":%b,\"first_delivery_tick\":"
        s.mid.Trace.origin s.mid.Trace.seq s.broadcast_tick s.deps s.bytes
        s.dsts s.recvs s.duplicate_recvs s.retransmissions s.wait_adds
        s.waiting_ticks s.deliveries s.confirmed;
      buf_opt_int buf s.first_delivery_tick;
      Buffer.add_string buf ",\"last_delivery_tick\":";
      buf_opt_int buf s.last_delivery_tick;
      Buffer.add_string buf ",\"stable_tick\":";
      buf_opt_int buf s.stable_tick;
      Printf.bprintf buf ",\"recover_requests\":%d,\"discards\":%d}"
        s.recover_requests s.discards)
    t.spans;
  Buffer.add_string buf "]}";
  Buffer.contents buf

(* -- Perfetto (Chrome trace-event) export ---------------------------------

   One process, one thread track per node plus "net" and "group" tracks.
   Ticks map to microseconds 1:1.  Events are emitted in record order, so
   the export is as deterministic as the trace itself. *)

let perfetto_json records =
  let n = max_node_index records in
  let net_tid = n and group_tid = n + 1 in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"traceEvents\":[";
  let first = ref true in
  let sep () = if !first then first := false else Buffer.add_char buf ',' in
  let meta_args tid name =
    sep ();
    Printf.bprintf buf "{\"ph\":\"M\",\"pid\":0,\"tid\":%d,\"name\":\"thread_name\",\"args\":{\"name\":" tid;
    Json.buf_string buf name;
    Buffer.add_string buf "}}"
  in
  sep ();
  Buffer.add_string buf
    "{\"ph\":\"M\",\"pid\":0,\"name\":\"process_name\",\"args\":{\"name\":\"urcgc\"}}";
  for i = 0 to n - 1 do
    meta_args i (Printf.sprintf "node %d" i)
  done;
  meta_args net_tid "net";
  meta_args group_tid "group";
  let instant ~tid ~ts ~cat name =
    sep ();
    Printf.bprintf buf
      "{\"ph\":\"i\",\"pid\":0,\"tid\":%d,\"ts\":%d,\"s\":\"t\",\"cat\":\"%s\",\"name\":"
      tid ts cat;
    Json.buf_string buf name;
    Buffer.add_string buf "}"
  in
  let span ~tid ~ts ~dur ~cat name =
    sep ();
    Printf.bprintf buf
      "{\"ph\":\"X\",\"pid\":0,\"tid\":%d,\"ts\":%d,\"dur\":%d,\"cat\":\"%s\",\"name\":"
      tid ts dur cat;
    Json.buf_string buf name;
    Buffer.add_string buf "}"
  in
  let mid_name (origin, seq) = Printf.sprintf "n%d#%d" origin seq in
  let broadcast_tick = Hashtbl.create 32 in
  let first_recv = Hashtbl.create 64 in
  let wait_since = Hashtbl.create 32 in
  List.iter
    (fun { Trace.time; event } ->
      let tick = Ticks.to_int time in
      match event with
      | Trace.Broadcast { src; pdu = Trace.Data { origin; seq; _ }; _ }
        when src = origin && not (Hashtbl.mem broadcast_tick (origin, seq)) ->
          Hashtbl.replace broadcast_tick (origin, seq) tick;
          instant ~tid:src ~ts:tick ~cat:"broadcast"
            ("broadcast " ^ mid_name (origin, seq))
      | Trace.Broadcast { src; pdu = Trace.Decision { subrun; _ }; _ }
      | Trace.Send { src; pdu = Trace.Decision { subrun; _ }; _ } ->
          instant ~tid:src ~ts:tick ~cat:"control"
            (Printf.sprintf "decision subrun %d" subrun)
      | Trace.Broadcast
          { src; pdu = Trace.Recover_req { origin; from_seq; to_seq; _ }; _ }
      | Trace.Send
          { src; pdu = Trace.Recover_req { origin; from_seq; to_seq; _ }; _ } ->
          instant ~tid:src ~ts:tick ~cat:"recovery"
            (Printf.sprintf "recover-req n%d %d..%d" origin from_seq to_seq)
      | Trace.Broadcast { src; pdu = Trace.Recover_reply { count; _ }; _ }
      | Trace.Send { src; pdu = Trace.Recover_reply { count; _ }; _ } ->
          instant ~tid:src ~ts:tick ~cat:"recovery"
            (Printf.sprintf "recover-reply (%d)" count)
      | Trace.Broadcast _ | Trace.Send _ -> ()
      | Trace.Receive { node; pdu = Trace.Data { origin; seq; _ } } ->
          if not (Hashtbl.mem first_recv (node, (origin, seq))) then
            Hashtbl.replace first_recv (node, (origin, seq)) tick
      | Trace.Receive _ -> ()
      | Trace.Deliver { node; mid = { Trace.origin; seq } } ->
          let k = (origin, seq) in
          (match Hashtbl.find_opt wait_since (node, k) with
          | Some wt ->
              Hashtbl.remove wait_since (node, k);
              span ~tid:node ~ts:wt ~dur:(tick - wt) ~cat:"waiting"
                ("wait " ^ mid_name k)
          | None -> ());
          let start =
            match Hashtbl.find_opt first_recv (node, k) with
            | Some t -> t
            | None -> (
                match Hashtbl.find_opt broadcast_tick k with
                | Some t -> t
                | None -> tick)
          in
          span ~tid:node ~ts:start ~dur:(tick - start) ~cat:"message"
            (mid_name k)
      | Trace.Confirm _ -> ()
      | Trace.Wait_add { node; mid = { Trace.origin; seq }; _ } ->
          if not (Hashtbl.mem wait_since (node, (origin, seq))) then
            Hashtbl.replace wait_since (node, (origin, seq)) tick
      | Trace.Wait_discard { node; mids } ->
          List.iter
            (fun { Trace.origin; seq } ->
              let k = (origin, seq) in
              (match Hashtbl.find_opt wait_since (node, k) with
              | Some wt ->
                  Hashtbl.remove wait_since (node, k);
                  span ~tid:node ~ts:wt ~dur:(tick - wt) ~cat:"waiting"
                    ("wait " ^ mid_name k)
              | None -> ());
              instant ~tid:node ~ts:tick ~cat:"discard"
                ("discard " ^ mid_name k))
            mids
      | Trace.Rotate { subrun; coordinator } ->
          instant ~tid:group_tid ~ts:tick ~cat:"rotate"
            (Printf.sprintf "subrun %d: coordinator n%d" subrun coordinator)
      | Trace.Left { node; reason } ->
          instant ~tid:node ~ts:tick ~cat:"membership" ("left: " ^ reason)
      | Trace.Crash { node } -> instant ~tid:node ~ts:tick ~cat:"fault" "crash"
      | Trace.Drop { src; dst; kind; stage } ->
          instant ~tid:net_tid ~ts:tick ~cat:"drop"
            (Printf.sprintf "drop %s n%d->n%d (%s)"
               (Trace.Traffic_class.to_string kind)
               src dst
               (Trace.stage_to_string stage))
      | Trace.Note _ -> ())
    records;
  Buffer.add_string buf "],\"displayTimeUnit\":\"ms\"}";
  Buffer.contents buf

(* -- human summary -------------------------------------------------------- *)

let pp_summary ppf t =
  let rtd ticks = ticks /. float_of_int Ticks.per_rtd in
  Format.fprintf ppf "@[<v>";
  Format.fprintf ppf "trace: %d events, ticks %d..%d%s@,"
    t.coverage.events t.coverage.first_tick t.coverage.last_tick
    (if t.coverage.complete then ""
     else
       Printf.sprintf " (truncated window, %d pre-window messages)"
         t.coverage.pre_window_mids);
  Format.fprintf ppf "group: %d nodes; crashed %s; left %s@," t.nodes
    (Printf.sprintf "[%s]" (String.concat "," (List.map string_of_int t.crashed)))
    (Printf.sprintf "[%s]" (String.concat "," (List.map string_of_int t.left)));
  let confirmed = List.length (List.filter (fun s -> s.confirmed) t.spans) in
  let stable = List.length (List.filter (fun s -> s.stable_tick <> None) t.spans) in
  Format.fprintf ppf "messages: %d tracked, %d confirmed, %d group-stable@,"
    (List.length t.spans) confirmed stable;
  if t.latency_ticks.count > 0 then
    Format.fprintf ppf
      "latency: mean %.2f rtd, p95 %.2f rtd over %d remote deliveries@,"
      (rtd t.latency_ticks.mean) (rtd t.latency_ticks.p95)
      t.latency_ticks.count;
  if t.waiting.count > 0 then
    Format.fprintf ppf
      "waiting list: %d stays, mean %.2f rtd, max %.2f rtd@," t.waiting.count
      (rtd t.waiting.mean) (rtd t.waiting.max);
  List.iter
    (fun (node, rotations, decisions) ->
      Format.fprintf ppf "coordinator n%d: %d rotations, %d decisions@," node
        rotations decisions)
    (coordinator_rows t);
  if t.recover_requests > 0 || t.recover_replies > 0 then
    Format.fprintf ppf
      "recovery: %d requests, %d replies carrying %d messages@,"
      t.recover_requests t.recover_replies t.recovered_messages;
  let drops_total = List.fold_left (fun acc (_, c) -> acc + c) 0 t.drops_by_stage in
  if drops_total > 0 then
    Format.fprintf ppf "drops: %d (%s)@," drops_total
      (String.concat ", "
         (List.map
            (fun (stage, c) ->
              Printf.sprintf "%s %d" (Trace.stage_to_string stage) c)
            t.drops_by_stage));
  (if verdict_ok t.verdict then
     Format.fprintf ppf
       "oracle: OK (causal, at-most-once, atomicity, no-zombie)"
   else begin
     Format.fprintf ppf "oracle: VIOLATIONS";
     List.iter
       (fun v -> Format.fprintf ppf "@,  - %s" v)
       t.verdict.violations
   end);
  List.iter
    (fun s -> Format.fprintf ppf "@,  (skipped) %s" s)
    t.verdict.skipped;
  Format.fprintf ppf "@]"
