(* Hierarchical span profiler.  See prof.mli for the contract.

   One global mutable tree + an open-span stack.  The disabled-mode cost
   of a probe is a single [!on] branch; everything below the branch only
   runs while profiling.  Nothing here draws from any RNG, so enabling
   the profiler cannot change simulation outputs. *)

(* Growable float array for per-invocation latency samples: cheaper and
   flatter than consing a list per probe exit. *)
type samples = { mutable buf : float array; mutable len : int }

let samples_make () = { buf = [||]; len = 0 }

let samples_push s x =
  if s.len = Array.length s.buf then begin
    let cap = max 16 (2 * Array.length s.buf) in
    let buf = Array.make cap 0. in
    Array.blit s.buf 0 buf 0 s.len;
    s.buf <- buf
  end;
  s.buf.(s.len) <- x;
  s.len <- s.len + 1

let samples_list s =
  let rec go i acc = if i < 0 then acc else go (i - 1) (s.buf.(i) :: acc) in
  go (s.len - 1) []

type node = {
  name : string;
  mutable count : int;
  mutable total_ns : float;
  mutable minor_words : float;
  mutable major_words : float;
  mutable promoted_words : float;
  mutable minor_collections : int;
  mutable major_collections : int;
  lat : samples;
  node_counters : (string, int ref) Hashtbl.t;
  child_by_name : (string, node) Hashtbl.t;
  mutable children_rev : node list;  (* first-entered order, reversed *)
}

let node_make name =
  {
    name;
    count = 0;
    total_ns = 0.;
    minor_words = 0.;
    major_words = 0.;
    promoted_words = 0.;
    minor_collections = 0;
    major_collections = 0;
    lat = samples_make ();
    node_counters = Hashtbl.create 4;
    child_by_name = Hashtbl.create 8;
    children_rev = [];
  }

type frame = { node : node; t0 : float; g0 : Gc.stat }

let on = ref false
let stack : frame list ref = ref []
let root_node : node option ref = ref None

let enabled () = !on

let push_frame node =
  stack := { node; t0 = Unix.gettimeofday (); g0 = Gc.quick_stat () } :: !stack

let enable () =
  on := true;
  stack := [];
  let root = node_make "root" in
  root_node := Some root;
  push_frame root

let disable () =
  on := false;
  stack := [];
  root_node := None

let enter name =
  if !on then begin
    match !stack with
    | [] -> invalid_arg "Prof.enter: profiler enabled but no root span"
    | { node = parent; _ } :: _ ->
        let node =
          match Hashtbl.find_opt parent.child_by_name name with
          | Some n -> n
          | None ->
              let n = node_make name in
              Hashtbl.add parent.child_by_name name n;
              parent.children_rev <- n :: parent.children_rev;
              n
        in
        push_frame node
  end

let close_frame { node; t0; g0 } =
  let t1 = Unix.gettimeofday () in
  let g1 = Gc.quick_stat () in
  let ns = (t1 -. t0) *. 1e9 in
  node.count <- node.count + 1;
  node.total_ns <- node.total_ns +. ns;
  node.minor_words <- node.minor_words +. (g1.Gc.minor_words -. g0.Gc.minor_words);
  node.major_words <- node.major_words +. (g1.Gc.major_words -. g0.Gc.major_words);
  node.promoted_words <-
    node.promoted_words +. (g1.Gc.promoted_words -. g0.Gc.promoted_words);
  node.minor_collections <-
    node.minor_collections + (g1.Gc.minor_collections - g0.Gc.minor_collections);
  node.major_collections <-
    node.major_collections + (g1.Gc.major_collections - g0.Gc.major_collections);
  samples_push node.lat ns

let exit () =
  if !on then begin
    match !stack with
    | [] | [ _ ] -> invalid_arg "Prof.exit: no open span (unbalanced probe)"
    | frame :: rest ->
        close_frame frame;
        stack := rest
  end

let span name f =
  if not !on then f ()
  else begin
    enter name;
    match f () with
    | v ->
        exit ();
        v
    | exception e ->
        exit ();
        raise e
  end

let count ?(by = 1) name =
  if !on then begin
    match !stack with
    | [] -> invalid_arg "Prof.count: profiler enabled but no root span"
    | { node; _ } :: _ -> (
        match Hashtbl.find_opt node.node_counters name with
        | Some r -> r := !r + by
        | None -> Hashtbl.add node.node_counters name (ref by))
  end

(* ------------------------------------------------------------------ *)
(* Reports *)

type stat = {
  name : string;
  count : int;
  total_ns : float;
  self_ns : float;
  minor_words : float;
  major_words : float;
  promoted_words : float;
  self_minor_words : float;
  minor_collections : int;
  major_collections : int;
  latency : Stats.Summary.t;
  counters : (string * int) list;
  children : stat list;
}

type report = { root_stat : stat }

let rec stat_of_node (n : node) : stat =
  let children = List.rev_map stat_of_node n.children_rev in
  let child_ns = List.fold_left (fun a (c : stat) -> a +. c.total_ns) 0. children in
  let child_mw =
    List.fold_left (fun a (c : stat) -> a +. c.minor_words) 0. children
  in
  let counters =
    Hashtbl.fold (fun k r acc -> (k, !r) :: acc) n.node_counters []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  {
    name = n.name;
    count = n.count;
    total_ns = n.total_ns;
    self_ns = n.total_ns -. child_ns;
    minor_words = n.minor_words;
    major_words = n.major_words;
    promoted_words = n.promoted_words;
    self_minor_words = n.minor_words -. child_mw;
    minor_collections = n.minor_collections;
    major_collections = n.major_collections;
    latency = Stats.Summary.of_list (samples_list n.lat);
    counters;
    children;
  }

let capture () =
  if not !on then invalid_arg "Prof.capture: profiler is not enabled";
  (match !stack with
  | [ root_frame ] ->
      close_frame root_frame;
      stack := []
  | [] -> invalid_arg "Prof.capture: profiler enabled but no root span"
  | frames ->
      let open_spans =
        frames |> List.map (fun f -> f.node.name) |> List.rev |> String.concat " > "
      in
      invalid_arg
        (Printf.sprintf "Prof.capture: unbalanced spans still open: %s" open_spans));
  let root =
    match !root_node with
    | Some n -> n
    | None -> invalid_arg "Prof.capture: profiler enabled but no root span"
  in
  let report = { root_stat = stat_of_node root } in
  disable ();
  report

let root r = r.root_stat
let wall_ns r = r.root_stat.total_ns

let coverage r =
  let root = r.root_stat in
  if root.total_ns <= 0. then 1.
  else
    let c = 1. -. (root.self_ns /. root.total_ns) in
    if c < 0. then 0. else if c > 1. then 1. else c

(* ------------------------------------------------------------------ *)
(* JSON.  Hand-rolled like Metrics/Campaign: single line, fields in a
   fixed order, floats via %.12g, names escaped minimally. *)

let buf_escaped b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

let buf_float b f = Buffer.add_string b (Printf.sprintf "%.12g" f)

let buf_counters b counters =
  Buffer.add_char b '{';
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_char b ',';
      buf_escaped b k;
      Buffer.add_char b ':';
      Buffer.add_string b (string_of_int v))
    counters;
  Buffer.add_char b '}'

let rec buf_timed_node b (s : stat) =
  Buffer.add_string b "{\"name\":";
  buf_escaped b s.name;
  Buffer.add_string b ",\"count\":";
  Buffer.add_string b (string_of_int s.count);
  Buffer.add_string b ",\"total_ns\":";
  buf_float b s.total_ns;
  Buffer.add_string b ",\"self_ns\":";
  buf_float b s.self_ns;
  Buffer.add_string b ",\"minor_words\":";
  buf_float b s.minor_words;
  Buffer.add_string b ",\"major_words\":";
  buf_float b s.major_words;
  Buffer.add_string b ",\"promoted_words\":";
  buf_float b s.promoted_words;
  Buffer.add_string b ",\"self_minor_words\":";
  buf_float b s.self_minor_words;
  Buffer.add_string b ",\"minor_collections\":";
  Buffer.add_string b (string_of_int s.minor_collections);
  Buffer.add_string b ",\"major_collections\":";
  Buffer.add_string b (string_of_int s.major_collections);
  Buffer.add_string b ",\"latency_ns\":{\"count\":";
  Buffer.add_string b (string_of_int s.latency.Stats.Summary.count);
  Buffer.add_string b ",\"mean\":";
  buf_float b s.latency.Stats.Summary.mean;
  Buffer.add_string b ",\"p50\":";
  buf_float b s.latency.Stats.Summary.p50;
  Buffer.add_string b ",\"p95\":";
  buf_float b s.latency.Stats.Summary.p95;
  Buffer.add_string b ",\"max\":";
  buf_float b s.latency.Stats.Summary.max;
  Buffer.add_string b "},\"counters\":";
  buf_counters b s.counters;
  Buffer.add_string b ",\"children\":[";
  List.iteri
    (fun i c ->
      if i > 0 then Buffer.add_char b ',';
      buf_timed_node b c)
    s.children;
  Buffer.add_string b "]}"

let report_json r =
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\"schema\":\"urcgc.prof/1\",\"wall_ns\":";
  buf_float b (wall_ns r);
  Buffer.add_string b ",\"coverage\":";
  buf_float b (coverage r);
  Buffer.add_string b ",\"root\":";
  buf_timed_node b r.root_stat;
  Buffer.add_string b "}\n";
  Buffer.contents b

let rec buf_structural_node b (s : stat) =
  Buffer.add_string b "{\"name\":";
  buf_escaped b s.name;
  Buffer.add_string b ",\"count\":";
  Buffer.add_string b (string_of_int s.count);
  Buffer.add_string b ",\"counters\":";
  buf_counters b s.counters;
  Buffer.add_string b ",\"children\":[";
  List.iteri
    (fun i c ->
      if i > 0 then Buffer.add_char b ',';
      buf_structural_node b c)
    s.children;
  Buffer.add_string b "]}"

let structural_json r =
  let b = Buffer.create 1024 in
  Buffer.add_string b "{\"schema\":\"urcgc.prof.structural/1\",\"root\":";
  buf_structural_node b r.root_stat;
  Buffer.add_string b "}\n";
  Buffer.contents b

let folded r =
  let b = Buffer.create 1024 in
  let rec go path (s : stat) =
    let path = if path = "" then s.name else path ^ ";" ^ s.name in
    let self = int_of_float (Float.max 0. s.self_ns) in
    Buffer.add_string b path;
    Buffer.add_char b ' ';
    Buffer.add_string b (string_of_int self);
    Buffer.add_char b '\n';
    List.iter (go path) s.children
  in
  go "" r.root_stat;
  Buffer.contents b

let pp_summary ppf r =
  let spans = ref [] in
  let rec collect path (s : stat) =
    let path = if path = "" then s.name else path ^ ";" ^ s.name in
    if s.name <> "root" then spans := (path, s) :: !spans;
    List.iter (collect path) s.children
  in
  collect "" r.root_stat;
  let top =
    List.sort
      (fun (_, (a : stat)) (_, (b : stat)) -> compare b.self_ns a.self_ns)
      !spans
  in
  let rec take n = function
    | [] -> []
    | _ when n = 0 -> []
    | x :: tl -> x :: take (n - 1) tl
  in
  Format.fprintf ppf "profile: wall %.3f ms, coverage %.1f%%, %d spans@."
    (wall_ns r /. 1e6)
    (100. *. coverage r)
    (List.length !spans);
  Format.fprintf ppf "  %-40s %10s %12s %14s@." "span (top by self time)" "count"
    "self ms" "self minor wds";
  List.iter
    (fun (path, (s : stat)) ->
      Format.fprintf ppf "  %-40s %10d %12.3f %14.0f@." path s.count
        (s.self_ns /. 1e6) s.self_minor_words)
    (take 10 top)
