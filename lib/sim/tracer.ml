(* Compatibility shim: the string API now feeds Note events into the typed
   Trace layer, so a single sink collects both structured protocol events
   and free-form narration. *)

type t = Trace.t

type event = { time : Ticks.t; source : string; message : string }

let create ?capacity () = Trace.create ?capacity ()

let null = Trace.null

let emit t ~time ~source message =
  Trace.emit t ~time (Trace.Note { source; message })

let emitf t ~time ~source fmt =
  (* Skip formatting entirely on the null sink: emitf in a hot path must
     stay free when tracing is off. *)
  match t with
  | Trace.Null -> Format.ikfprintf ignore Format.str_formatter fmt
  | Trace.Sink _ ->
      Format.kasprintf (fun message -> emit t ~time ~source message) fmt

let render (r : Trace.record) =
  {
    time = r.Trace.time;
    source = Trace.event_source r.Trace.event;
    message = Trace.event_message r.Trace.event;
  }

let events t = List.map render (Trace.records t)

let count = Trace.count

let find t ~f =
  Option.map render
    (Trace.find t ~f:(fun r -> f (render r)))

let pp_event ppf { time; source; message } =
  Format.fprintf ppf "[%a] %-12s %s" Ticks.pp time source message

let dump ppf t =
  Trace.iter t ~f:(fun r -> Format.fprintf ppf "%a@." pp_event (render r))
