(** Bounded systematic schedule exploration.

    A generic stateless-search driver: the system under test is a function
    [f : Ctx.t -> 'a] that consults {!Ctx.choose} at every nondeterministic
    decision point.  {!explore} re-executes [f] from scratch once per
    schedule, replaying a recorded choice prefix and extending it
    depth-first, until the whole (bounded) choice tree is exhausted or the
    schedule budget runs out.  A schedule is the list of choices taken, so
    any execution — in particular a violating one — replays exactly with
    {!replay}.

    Pruning: a choice point may declare some alternatives equivalent to
    already-enumerated ones via the [allowed] predicate (DPOR-style
    commutativity arguments live in the caller, e.g. "two deliveries to the
    same node from causally unrelated senders need not be permuted").
    Disallowed alternatives are counted as pruned {e branches} — each cut
    branch stood for at least one schedule, so
    [total = explored + pruned] is a lower bound on the unreduced schedule
    count.  Pruning never drops a branch silently: the caller's [allowed]
    is consulted only when [prune] is on, and a brute-force run of the same
    tree ([prune:false]) must report the same violation set — the
    soundness property the test suite enforces.

    Everything here is deterministic: [f] must be a pure function of its
    choice sequence (same choices, same behavior — the driver checks that
    replayed choice points report a stable arity and raises
    [Invalid_argument] otherwise).  No wall-clock, no RNG, no hash-order
    dependence — byte-identical exploration on any compiler. *)

module Ctx : sig
  type t

  val choose :
    ?allowed:(int -> bool) -> arity:int -> label:(unit -> string) -> t -> int
  (** Take one decision with [arity] alternatives; returns the index in
      [\[0, arity)] this execution follows.  [allowed] (default: everything)
      marks the alternatives worth exploring; alternatives it rejects are
      pruned (never explored, counted in {!stats.pruned}) — it is the
      caller's obligation that every rejected branch is equivalent to an
      allowed one.  If [allowed] rejects everything, alternative [0] is
      explored anyway (over-approximation is sound).  [label] renders the
      decision for replay diagnostics; it is only forced under {!replay}.
      Raises [Invalid_argument] on [arity <= 0] or when a replayed choice
      point changes arity (the harness is not deterministic). *)
end

type stats = {
  explored : int;  (** complete schedules executed *)
  pruned : int;  (** branches cut by [allowed]; each held >= 1 schedule *)
  total : int;  (** [explored + pruned]: lower bound on the raw space *)
  max_depth : int;  (** longest choice sequence seen *)
  truncated : bool;  (** the schedule budget ran out before exhaustion *)
}

val explore :
  ?prune:bool ->
  ?max_schedules:int ->
  (Ctx.t -> 'a) ->
  on_schedule:(schedule:int list -> 'a -> unit) ->
  stats
(** Enumerate the choice tree of [f] depth-first.  [on_schedule] fires once
    per complete execution with the choice list (root first) and [f]'s
    result.  [prune] (default [true]) enables the [allowed] predicates;
    with [prune:false] every alternative of every choice point is explored
    (brute force) and [pruned] is 0.  [max_schedules] (default 1_000_000)
    bounds the number of executions; when it runs out, [truncated] is set
    and the remaining subtree is abandoned.  Raises [Invalid_argument] on a
    non-positive budget. *)

type step = { chosen : int; arity : int; label : string }
(** One replayed decision, with its rendered label. *)

val replay : (Ctx.t -> 'a) -> schedule:int list -> 'a * step list
(** Execute [f] once, following [schedule] exactly (ignoring [allowed] —
    a pruned-away schedule still replays).  Returns [f]'s result and the
    decision log.  Raises [Invalid_argument] if [f] asks for more choices
    than the schedule holds, or a scheduled choice is outside its arity. *)
