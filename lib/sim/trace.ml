type mid = { origin : int; seq : int }

(* Closed set of subnetwork traffic classes (mirrors [Net.Traffic.kind],
   which lives above this library).  Drop events carry one of these instead
   of a free-form string so consumers — the analyzer in particular — never
   string-match; the JSONL rendering is unchanged. *)
module Traffic_class = struct
  type t = Data | Control | Recovery | Ack

  let to_string = function
    | Data -> "data"
    | Control -> "control"
    | Recovery -> "recovery"
    | Ack -> "ack"

  let of_string = function
    | "data" -> Some Data
    | "control" -> Some Control
    | "recovery" -> Some Recovery
    | "ack" -> Some Ack
    | _ -> None

  let all = [ Data; Control; Recovery; Ack ]
end

type pdu =
  | Data of { origin : int; seq : int; deps : int; bytes : int }
  | Request of { sender : int; subrun : int }
  | Decision of { subrun : int; coordinator : int; full_group : bool }
  | Recover_req of { requester : int; origin : int; from_seq : int; to_seq : int }
  | Recover_reply of { responder : int; count : int }

type stage = On_send | On_link | On_recv | On_filter

let stage_to_string = function
  | On_send -> "send"
  | On_link -> "link"
  | On_recv -> "recv"
  | On_filter -> "filter"

let stage_of_string = function
  | "send" -> Some On_send
  | "link" -> Some On_link
  | "recv" -> Some On_recv
  | "filter" -> Some On_filter
  | _ -> None

type event =
  | Send of { src : int; dst : int; pdu : pdu }
  | Broadcast of { src : int; dsts : int; pdu : pdu }
  | Receive of { node : int; pdu : pdu }
  | Deliver of { node : int; mid : mid }
  | Confirm of { node : int; mid : mid }
  | Wait_add of { node : int; mid : mid; depth : int }
  | Wait_discard of { node : int; mids : mid list }
  | Rotate of { subrun : int; coordinator : int }
  | Left of { node : int; reason : string }
  | Crash of { node : int }
  | Drop of { src : int; dst : int; kind : Traffic_class.t; stage : stage }
  | Note of { source : string; message : string }

type record = { time : Ticks.t; event : event }

(* The null sink is an immutable constructor: copies of it share nothing
   mutable, and emitting to it neither allocates nor retains. *)
type t = Null | Sink of sink
and sink = { capacity : int; mutable total : int; queue : record Queue.t }

let null = Null

let create ?(capacity = 65536) () =
  if capacity < 1 then invalid_arg "Trace.create: capacity must be positive";
  Sink { capacity; total = 0; queue = Queue.create () }

let unbounded () = Sink { capacity = max_int; total = 0; queue = Queue.create () }

let enabled = function Null -> false | Sink _ -> true

let emit t ~time event =
  match t with
  | Null -> ()
  | Sink s ->
      s.total <- s.total + 1;
      Queue.push { time; event } s.queue;
      if Queue.length s.queue > s.capacity then ignore (Queue.pop s.queue)

let records = function
  | Null -> []
  | Sink s -> List.of_seq (Queue.to_seq s.queue)

let count = function Null -> 0 | Sink s -> s.total

let retained = function Null -> 0 | Sink s -> Queue.length s.queue

let find t ~f =
  match t with Null -> None | Sink s -> Seq.find f (Queue.to_seq s.queue)

let iter t ~f = match t with Null -> () | Sink s -> Queue.iter f s.queue

(* -- human rendering (the Tracer shim delegates here) -------------------- *)

let pp_pdu ppf = function
  | Data { origin; seq; deps; bytes } ->
      Format.fprintf ppf "data n%d#%d (%d deps, %d B)" origin seq deps bytes
  | Request { sender; subrun } ->
      Format.fprintf ppf "request from n%d (subrun %d)" sender subrun
  | Decision { subrun; coordinator; full_group } ->
      Format.fprintf ppf "decision subrun %d by n%d%s" subrun coordinator
        (if full_group then " (full group)" else "")
  | Recover_req { requester; origin; from_seq; to_seq } ->
      Format.fprintf ppf "recover-req n%d wants n%d seq %d..%d" requester
        origin from_seq to_seq
  | Recover_reply { responder; count } ->
      Format.fprintf ppf "recover-reply from n%d (%d msgs)" responder count

let event_source = function
  | Send { src; _ } | Broadcast { src; _ } -> Printf.sprintf "n%d" src
  | Receive { node; _ }
  | Deliver { node; _ }
  | Confirm { node; _ }
  | Wait_add { node; _ }
  | Wait_discard { node; _ }
  | Left { node; _ }
  | Crash { node; _ } ->
      Printf.sprintf "n%d" node
  | Rotate _ -> "group"
  | Drop _ -> "net"
  | Note { source; _ } -> source

let event_message event =
  match event with
  | Send { dst; pdu; _ } -> Format.asprintf "send to n%d: %a" dst pp_pdu pdu
  | Broadcast { dsts; pdu; _ } ->
      Format.asprintf "broadcast to %d peers: %a" dsts pp_pdu pdu
  | Receive { pdu; _ } -> Format.asprintf "receive %a" pp_pdu pdu
  | Deliver { mid; _ } -> Printf.sprintf "processed n%d#%d" mid.origin mid.seq
  | Confirm { mid; _ } -> Printf.sprintf "confirmed n%d#%d" mid.origin mid.seq
  | Wait_add { mid; depth; _ } ->
      Printf.sprintf "waiting for predecessors of n%d#%d (depth %d)" mid.origin
        mid.seq depth
  | Wait_discard { mids; _ } ->
      Printf.sprintf "discarded %d orphaned messages" (List.length mids)
  | Rotate { subrun; coordinator } ->
      Printf.sprintf "subrun %d coordinator is n%d" subrun coordinator
  | Left { reason; _ } -> Printf.sprintf "left the group: %s" reason
  | Crash { node } -> Printf.sprintf "fail-stop of n%d" node
  | Drop { src; dst; kind; stage } ->
      Printf.sprintf "dropped %s packet n%d->n%d (%s)"
        (Traffic_class.to_string kind)
        src dst (stage_to_string stage)
  | Note { message; _ } -> message

let pp_record ppf { time; event } =
  Format.fprintf ppf "[%a] %-12s %s" Ticks.pp time (event_source event)
    (event_message event)

(* -- JSONL export ---------------------------------------------------------

   One JSON object per line, fields in a fixed order, integers and
   double-quoted strings only: the export is a pure function of the record
   sequence, which the determinism guarantee relies on. *)

let buf_json_string buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let buf_pdu buf = function
  | Data { origin; seq; deps; bytes } ->
      Printf.bprintf buf
        "{\"kind\":\"data\",\"origin\":%d,\"seq\":%d,\"deps\":%d,\"bytes\":%d}"
        origin seq deps bytes
  | Request { sender; subrun } ->
      Printf.bprintf buf "{\"kind\":\"request\",\"sender\":%d,\"subrun\":%d}"
        sender subrun
  | Decision { subrun; coordinator; full_group } ->
      Printf.bprintf buf
        "{\"kind\":\"decision\",\"subrun\":%d,\"coordinator\":%d,\"full_group\":%b}"
        subrun coordinator full_group
  | Recover_req { requester; origin; from_seq; to_seq } ->
      Printf.bprintf buf
        "{\"kind\":\"recover_req\",\"requester\":%d,\"origin\":%d,\"from\":%d,\"to\":%d}"
        requester origin from_seq to_seq
  | Recover_reply { responder; count } ->
      Printf.bprintf buf
        "{\"kind\":\"recover_reply\",\"responder\":%d,\"count\":%d}" responder
        count

let buf_record buf { time; event } =
  Printf.bprintf buf "{\"t\":%d,\"ev\":" (Ticks.to_int time);
  (match event with
  | Send { src; dst; pdu } ->
      Printf.bprintf buf "\"send\",\"src\":%d,\"dst\":%d,\"pdu\":" src dst;
      buf_pdu buf pdu
  | Broadcast { src; dsts; pdu } ->
      Printf.bprintf buf "\"broadcast\",\"src\":%d,\"dsts\":%d,\"pdu\":" src
        dsts;
      buf_pdu buf pdu
  | Receive { node; pdu } ->
      Printf.bprintf buf "\"recv\",\"node\":%d,\"pdu\":" node;
      buf_pdu buf pdu
  | Deliver { node; mid } ->
      Printf.bprintf buf "\"deliver\",\"node\":%d,\"origin\":%d,\"seq\":%d"
        node mid.origin mid.seq
  | Confirm { node; mid } ->
      Printf.bprintf buf "\"confirm\",\"node\":%d,\"origin\":%d,\"seq\":%d"
        node mid.origin mid.seq
  | Wait_add { node; mid; depth } ->
      Printf.bprintf buf
        "\"wait_add\",\"node\":%d,\"origin\":%d,\"seq\":%d,\"depth\":%d" node
        mid.origin mid.seq depth
  | Wait_discard { node; mids } ->
      Printf.bprintf buf "\"wait_discard\",\"node\":%d,\"mids\":[" node;
      List.iteri
        (fun i m ->
          if i > 0 then Buffer.add_char buf ',';
          Printf.bprintf buf "[%d,%d]" m.origin m.seq)
        mids;
      Buffer.add_char buf ']'
  | Rotate { subrun; coordinator } ->
      Printf.bprintf buf "\"rotate\",\"subrun\":%d,\"coordinator\":%d" subrun
        coordinator
  | Left { node; reason } ->
      Printf.bprintf buf "\"left\",\"node\":%d,\"reason\":" node;
      buf_json_string buf reason
  | Crash { node } -> Printf.bprintf buf "\"crash\",\"node\":%d" node
  | Drop { src; dst; kind; stage } ->
      Printf.bprintf buf "\"drop\",\"src\":%d,\"dst\":%d,\"kind\":" src dst;
      buf_json_string buf (Traffic_class.to_string kind);
      Buffer.add_string buf ",\"stage\":";
      buf_json_string buf (stage_to_string stage)
  | Note { source; message } ->
      Buffer.add_string buf "\"note\",\"source\":";
      buf_json_string buf source;
      Buffer.add_string buf ",\"message\":";
      buf_json_string buf message);
  Buffer.add_char buf '}'

let json_of_record record =
  let buf = Buffer.create 128 in
  buf_record buf record;
  Buffer.contents buf

let pp_jsonl ppf t =
  iter t ~f:(fun record ->
      Format.fprintf ppf "%s@\n" (json_of_record record))
