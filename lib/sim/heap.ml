(* The heap is stored as three parallel arrays rather than an array of
   [{ time; seq; value }] records: a push into the record form allocated a
   5-word box per event, which on the simulation hot path (one push per
   network packet) was a measurable slice of the per-subrun minor-heap
   budget.  [Ticks.t] is a private int, so [times] is an unboxed int array
   at runtime and a push now allocates nothing.

   Slots at index >= [size] are dead.  Dead [values] slots are overwritten
   with [dummy] on pop/clear so nothing previously pushed stays reachable
   through the backing array.  [dummy] is the only unsafe cast in the
   library: it is never read at type ['a], only stored into dead slots. *)

type 'a t = {
  mutable times : Ticks.t array;
  mutable seqs : int array;
  mutable values : 'a array;
  mutable size : int;
}

let dummy : 'a. 'a = Obj.magic ()

let create () = { times = [||]; seqs = [||]; values = [||]; size = 0 }

let length t = t.size

let is_empty t = t.size = 0

(* Entry [i] sorts before entry [j]: earlier time, then lower seq. *)
let lt t i j =
  let c = Ticks.compare t.times.(i) t.times.(j) in
  if c <> 0 then c < 0 else t.seqs.(i) < t.seqs.(j)

let swap t i j =
  let tm = t.times.(i) in
  t.times.(i) <- t.times.(j);
  t.times.(j) <- tm;
  let sq = t.seqs.(i) in
  t.seqs.(i) <- t.seqs.(j);
  t.seqs.(j) <- sq;
  let v = t.values.(i) in
  t.values.(i) <- t.values.(j);
  t.values.(j) <- v

let grow t =
  let cap = Array.length t.times in
  let new_cap = if cap = 0 then 16 else cap * 2 in
  let times = Array.make new_cap Ticks.zero in
  Array.blit t.times 0 times 0 t.size;
  t.times <- times;
  let seqs = Array.make new_cap 0 in
  Array.blit t.seqs 0 seqs 0 t.size;
  t.seqs <- seqs;
  (* [Array.make] with an immediate dummy builds an ordinary (non-flat)
     array even when ['a] is [float]; the generic accessors handle boxed
     floats stored into it. *)
  let values = Array.make new_cap dummy in
  Array.blit t.values 0 values 0 t.size;
  t.values <- values

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if lt t i parent then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.size && lt t l !smallest then smallest := l;
  if r < t.size && lt t r !smallest then smallest := r;
  if !smallest <> i then begin
    swap t i !smallest;
    sift_down t !smallest
  end

let push t ~time ~seq value =
  if t.size = Array.length t.times then grow t;
  t.times.(t.size) <- time;
  t.seqs.(t.size) <- seq;
  t.values.(t.size) <- value;
  t.size <- t.size + 1;
  sift_up t (t.size - 1)

let top_time t =
  if t.size = 0 then invalid_arg "Heap.top_time: empty heap";
  t.times.(0)

let pop_top t =
  if t.size = 0 then invalid_arg "Heap.pop_top: empty heap";
  let v = t.values.(0) in
  t.size <- t.size - 1;
  t.times.(0) <- t.times.(t.size);
  t.seqs.(0) <- t.seqs.(t.size);
  t.values.(0) <- t.values.(t.size);
  t.values.(t.size) <- dummy;
  if t.size > 0 then sift_down t 0;
  v

let peek t =
  if t.size = 0 then None else Some (t.times.(0), t.seqs.(0), t.values.(0))

let pop t =
  if t.size = 0 then None
  else
    let time = t.times.(0) and seq = t.seqs.(0) in
    let v = pop_top t in
    Some (time, seq, v)

let clear t =
  (* Keep the grown capacity — an engine that drains and restarts would
     otherwise pay the re-growth doublings again — but drop every entry. *)
  Array.fill t.values 0 t.size dummy;
  t.size <- 0
