(* Slots below [size] are always [Entry]; [Empty] marks unused capacity, so
   clearing or popping never leaves a stale entry reachable through the
   backing array (a cleared heap must not keep its old values alive). *)
type 'a slot =
  | Empty
  | Entry of { time : Ticks.t; seq : int; value : 'a }

type 'a t = { mutable data : 'a slot array; mutable size : int }

let create () = { data = [||]; size = 0 }

let length t = t.size

let is_empty t = t.size = 0

let slot_lt a b =
  match (a, b) with
  | Entry a, Entry b ->
      let c = Ticks.compare a.time b.time in
      if c <> 0 then c < 0 else a.seq < b.seq
  | (Empty | Entry _), _ -> assert false

let grow t =
  let cap = Array.length t.data in
  let new_cap = if cap = 0 then 16 else cap * 2 in
  let data = Array.make new_cap Empty in
  Array.blit t.data 0 data 0 t.size;
  t.data <- data

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if slot_lt t.data.(i) t.data.(parent) then begin
      let tmp = t.data.(i) in
      t.data.(i) <- t.data.(parent);
      t.data.(parent) <- tmp;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.size && slot_lt t.data.(l) t.data.(!smallest) then smallest := l;
  if r < t.size && slot_lt t.data.(r) t.data.(!smallest) then smallest := r;
  if !smallest <> i then begin
    let tmp = t.data.(i) in
    t.data.(i) <- t.data.(!smallest);
    t.data.(!smallest) <- tmp;
    sift_down t !smallest
  end

let push t ~time ~seq value =
  if t.size = Array.length t.data then grow t;
  t.data.(t.size) <- Entry { time; seq; value };
  t.size <- t.size + 1;
  sift_up t (t.size - 1)

let peek t =
  if t.size = 0 then None
  else
    match t.data.(0) with
    | Entry e -> Some (e.time, e.seq, e.value)
    | Empty -> assert false

let pop t =
  if t.size = 0 then None
  else
    match t.data.(0) with
    | Empty -> assert false
    | Entry e ->
        t.size <- t.size - 1;
        t.data.(0) <- t.data.(t.size);
        t.data.(t.size) <- Empty;
        if t.size > 0 then sift_down t 0;
        Some (e.time, e.seq, e.value)

let clear t =
  (* Keep the grown capacity — an engine that drains and restarts would
     otherwise pay the re-growth doublings again — but drop every entry. *)
  Array.fill t.data 0 t.size Empty;
  t.size <- 0
