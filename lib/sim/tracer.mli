(** Structured trace of simulation events — string-oriented shim.

    This is the original free-form API, now implemented on top of the typed
    {!Trace} layer: [t] is an alias of {!Trace.t}, {!emit} wraps the message
    in a {!Trace.Note} event, and {!events} renders every retained record —
    typed or not — back to [(time, source, message)] strings.  Existing
    examples and tests keep compiling; new code should emit typed events via
    {!Trace} directly. *)

type t = Trace.t

type event = { time : Ticks.t; source : string; message : string }

val create : ?capacity:int -> unit -> t
(** [capacity] bounds the number of retained events (default 65536); older
    events are dropped first. *)

val null : t
(** A tracer that discards everything.  This is {!Trace.null}: stateless,
    allocation-free, and impossible to mutate — emitting to it retains
    nothing, and copies cannot alias a shared queue. *)

val emit : t -> time:Ticks.t -> source:string -> string -> unit

val emitf :
  t -> time:Ticks.t -> source:string -> ('a, Format.formatter, unit, unit) format4 -> 'a
(** Like {!emit} with a format string; on {!null} the message is never even
    formatted. *)

val events : t -> event list
(** Retained events, oldest first; typed records are rendered via
    {!Trace.event_source} / {!Trace.event_message}. *)

val count : t -> int
(** Total number of events emitted, including dropped ones. *)

val find : t -> f:(event -> bool) -> event option

val pp_event : Format.formatter -> event -> unit

val dump : Format.formatter -> t -> unit
