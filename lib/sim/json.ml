(* Minimal strict JSON reader for the offline trace analyzer.

   The repo's JSON exports (trace JSONL, campaign reports, the analysis
   report itself) are hand-serialized for byte determinism; this is the
   matching reader.  It is deliberately small and strict: the full value
   must parse with nothing but whitespace after it, objects keep their field
   order (the analyzer checks the documented fixed order), and malformed
   input yields a positioned error instead of a best-effort value. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

exception Error of int * string

let error pos fmt = Printf.ksprintf (fun msg -> raise (Error (pos, msg))) fmt

type state = { input : string; mutable pos : int }

let peek s = if s.pos < String.length s.input then Some s.input.[s.pos] else None

let advance s = s.pos <- s.pos + 1

let skip_ws s =
  let rec loop () =
    match peek s with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance s;
        loop ()
    | Some _ | None -> ()
  in
  loop ()

let expect s c =
  match peek s with
  | Some got when got = c -> advance s
  | Some got -> error s.pos "expected %C, found %C" c got
  | None -> error s.pos "expected %C, found end of input" c

let literal s word value =
  let len = String.length word in
  if
    s.pos + len <= String.length s.input
    && String.sub s.input s.pos len = word
  then begin
    s.pos <- s.pos + len;
    value
  end
  else error s.pos "invalid literal"

let utf8_add buf code =
  if code < 0x80 then Buffer.add_char buf (Char.chr code)
  else if code < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
  end

let hex4 s =
  let digit () =
    match peek s with
    | Some c ->
        advance s;
        (match c with
        | '0' .. '9' -> Char.code c - Char.code '0'
        | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
        | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
        | _ -> error (s.pos - 1) "invalid \\u escape")
    | None -> error s.pos "truncated \\u escape"
  in
  let a = digit () in
  let b = digit () in
  let c = digit () in
  let d = digit () in
  (a lsl 12) lor (b lsl 8) lor (c lsl 4) lor d

let parse_string s =
  expect s '"';
  let buf = Buffer.create 16 in
  let rec loop () =
    match peek s with
    | None -> error s.pos "unterminated string"
    | Some '"' -> advance s
    | Some '\\' ->
        advance s;
        (match peek s with
        | Some '"' -> advance s; Buffer.add_char buf '"'; loop ()
        | Some '\\' -> advance s; Buffer.add_char buf '\\'; loop ()
        | Some '/' -> advance s; Buffer.add_char buf '/'; loop ()
        | Some 'b' -> advance s; Buffer.add_char buf '\b'; loop ()
        | Some 'f' -> advance s; Buffer.add_char buf '\012'; loop ()
        | Some 'n' -> advance s; Buffer.add_char buf '\n'; loop ()
        | Some 'r' -> advance s; Buffer.add_char buf '\r'; loop ()
        | Some 't' -> advance s; Buffer.add_char buf '\t'; loop ()
        | Some 'u' ->
            advance s;
            let code = hex4 s in
            if code >= 0xD800 && code <= 0xDBFF then begin
              (* High surrogate: require the matching low half. *)
              expect s '\\';
              expect s 'u';
              let low = hex4 s in
              if low < 0xDC00 || low > 0xDFFF then
                error s.pos "unpaired surrogate"
              else
                let scalar =
                  0x10000 + (((code - 0xD800) lsl 10) lor (low - 0xDC00))
                in
                (* Four-byte UTF-8. *)
                Buffer.add_char buf (Char.chr (0xF0 lor (scalar lsr 18)));
                Buffer.add_char buf
                  (Char.chr (0x80 lor ((scalar lsr 12) land 0x3F)));
                Buffer.add_char buf
                  (Char.chr (0x80 lor ((scalar lsr 6) land 0x3F)));
                Buffer.add_char buf (Char.chr (0x80 lor (scalar land 0x3F)))
            end
            else if code >= 0xDC00 && code <= 0xDFFF then
              error s.pos "unpaired surrogate"
            else utf8_add buf code;
            loop ()
        | Some c -> error s.pos "invalid escape \\%C" c
        | None -> error s.pos "truncated escape")
    | Some c when Char.code c < 0x20 ->
        error s.pos "unescaped control character"
    | Some c ->
        advance s;
        Buffer.add_char buf c;
        loop ()
  in
  loop ();
  Buffer.contents buf

let parse_number s =
  let start = s.pos in
  let is_float = ref false in
  (match peek s with Some '-' -> advance s | _ -> ());
  let digits () =
    let seen = ref false in
    let rec loop () =
      match peek s with
      | Some '0' .. '9' ->
          seen := true;
          advance s;
          loop ()
      | _ -> ()
    in
    loop ();
    if not !seen then error s.pos "expected digit"
  in
  digits ();
  (match peek s with
  | Some '.' ->
      is_float := true;
      advance s;
      digits ()
  | _ -> ());
  (match peek s with
  | Some ('e' | 'E') ->
      is_float := true;
      advance s;
      (match peek s with Some ('+' | '-') -> advance s | _ -> ());
      digits ()
  | _ -> ());
  let lexeme = String.sub s.input start (s.pos - start) in
  if !is_float then Float (float_of_string lexeme)
  else
    match int_of_string_opt lexeme with
    | Some n -> Int n
    | None -> Float (float_of_string lexeme)

let rec parse_value s =
  skip_ws s;
  match peek s with
  | None -> error s.pos "unexpected end of input"
  | Some '{' ->
      advance s;
      skip_ws s;
      if peek s = Some '}' then begin
        advance s;
        Obj []
      end
      else begin
        let rec fields acc =
          skip_ws s;
          let name = parse_string s in
          skip_ws s;
          expect s ':';
          let value = parse_value s in
          let acc = (name, value) :: acc in
          skip_ws s;
          match peek s with
          | Some ',' ->
              advance s;
              fields acc
          | Some '}' ->
              advance s;
              List.rev acc
          | Some c -> error s.pos "expected ',' or '}', found %C" c
          | None -> error s.pos "unterminated object"
        in
        Obj (fields [])
      end
  | Some '[' ->
      advance s;
      skip_ws s;
      if peek s = Some ']' then begin
        advance s;
        List []
      end
      else begin
        let rec elements acc =
          let value = parse_value s in
          let acc = value :: acc in
          skip_ws s;
          match peek s with
          | Some ',' ->
              advance s;
              elements acc
          | Some ']' ->
              advance s;
              List.rev acc
          | Some c -> error s.pos "expected ',' or ']', found %C" c
          | None -> error s.pos "unterminated array"
        in
        List (elements [])
      end
  | Some '"' -> Str (parse_string s)
  | Some 't' -> literal s "true" (Bool true)
  | Some 'f' -> literal s "false" (Bool false)
  | Some 'n' -> literal s "null" Null
  | Some ('-' | '0' .. '9') -> parse_number s
  | Some c -> error s.pos "unexpected character %C" c

let parse input =
  let s = { input; pos = 0 } in
  match parse_value s with
  | value ->
      skip_ws s;
      if s.pos <> String.length input then
        Result.Error
          (Printf.sprintf "offset %d: trailing characters after value" s.pos)
      else Ok value
  | exception Error (pos, msg) ->
      Result.Error (Printf.sprintf "offset %d: %s" pos msg)

let member name = function
  | Obj fields -> List.assoc_opt name fields
  | _ -> None

(* -- serialization helper (shared escaping rules with the exporters) ----- *)

let buf_string buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'
