(** Typed protocol trace.

    The simulator components emit structured {!event}s into a {!t} sink;
    the string-oriented {!Tracer} API is a thin shim over this layer.  The
    sim library sits below the protocol libraries, so events refer to nodes
    by integer index and to messages by [(origin, seq)] pairs — exactly the
    representation the JSONL export uses.

    The event schema and the JSONL field layout are documented in
    [docs/TRACE.md]; the export is deterministic (fixed field order, fixed
    number formatting), so a fixed-seed run serializes byte-identically. *)

type mid = { origin : int; seq : int }

(** Closed set of subnetwork traffic classes (the sim-level mirror of
    [Net.Traffic.kind], which lives above this library).  {!event.Drop}
    carries one of these instead of a free-form string, so consumers match
    on constructors rather than strings; the JSONL rendering is exactly the
    lower-case constructor name and is byte-identical to the old free-form
    output. *)
module Traffic_class : sig
  type t = Data | Control | Recovery | Ack

  val to_string : t -> string

  val of_string : string -> t option
  (** Inverse of {!to_string}; [None] on anything else. *)

  val all : t list
  (** Every class, in rendering order. *)
end

type pdu =
  | Data of { origin : int; seq : int; deps : int; bytes : int }
  | Request of { sender : int; subrun : int }
  | Decision of { subrun : int; coordinator : int; full_group : bool }
  | Recover_req of { requester : int; origin : int; from_seq : int; to_seq : int }
  | Recover_reply of { responder : int; count : int }

type stage = On_send | On_link | On_recv | On_filter
(** Where in the network pipeline a packet was dropped. *)

val stage_to_string : stage -> string

val stage_of_string : string -> stage option
(** Inverse of {!stage_to_string}; [None] on anything else. *)

type event =
  | Send of { src : int; dst : int; pdu : pdu }  (** unicast PDU send *)
  | Broadcast of { src : int; dsts : int; pdu : pdu }
      (** one PDU offered to [dsts] destinations *)
  | Receive of { node : int; pdu : pdu }
  | Deliver of { node : int; mid : mid }
      (** the message was processed (causally delivered) at [node] *)
  | Confirm of { node : int; mid : mid }  (** own message locally processed *)
  | Wait_add of { node : int; mid : mid; depth : int }
      (** entered the waiting list; [depth] is the list length after the add *)
  | Wait_discard of { node : int; mids : mid list }
      (** orphaned waiting messages destroyed by group agreement *)
  | Rotate of { subrun : int; coordinator : int }  (** coordinator rotation *)
  | Left of { node : int; reason : string }
  | Crash of { node : int }  (** fault injection: scheduled fail-stop *)
  | Drop of { src : int; dst : int; kind : Traffic_class.t; stage : stage }
      (** fault injection: the subnetwork lost a packet *)
  | Note of { source : string; message : string }
      (** free-form, emitted via the {!Tracer} compatibility shim *)

type record = { time : Ticks.t; event : event }

type t = Null | Sink of sink
and sink = { capacity : int; mutable total : int; queue : record Queue.t }

val null : t
(** Discards everything.  [Null] is a plain constructor: it holds no state,
    so sharing or copying it cannot leak events between users, and emitting
    to it retains nothing. *)

val create : ?capacity:int -> unit -> t
(** [capacity] bounds the number of retained records (default 65536); once
    full, the ring drops the oldest record on every emit, so the sink always
    holds the newest [capacity] records — a contiguous {e suffix} of the
    run.  {!count} keeps reporting the total ever emitted (so
    [count t - retained t] is the number dropped), which is how the analyzer
    detects truncation and reports a coverage window.  Raises
    [Invalid_argument] if [capacity <= 0]. *)

val unbounded : unit -> t
(** A sink that never drops — used by the [urcgc_sim trace] export, where
    completeness matters more than bounded memory. *)

val enabled : t -> bool
(** [false] exactly for {!null}.  Emit points guard event construction with
    this so a disabled trace costs no allocation. *)

val emit : t -> time:Ticks.t -> event -> unit

val records : t -> record list
(** Retained records, oldest first. *)

val count : t -> int
(** Total number of events emitted, including dropped ones. *)

val retained : t -> int
(** Number of records currently held ([<= capacity]; [count] minus the
    records the ring dropped). *)

val find : t -> f:(record -> bool) -> record option

val iter : t -> f:(record -> unit) -> unit

val event_source : event -> string
(** Short component label ("n3", "net", "group", or the {!Note} source). *)

val event_message : event -> string
(** One-line human rendering (the {!Tracer} shim's message string). *)

val pp_pdu : Format.formatter -> pdu -> unit
val pp_record : Format.formatter -> record -> unit

val json_of_record : record -> string
(** One JSON object, no trailing newline.  Field order is fixed; see
    [docs/TRACE.md]. *)

val pp_jsonl : Format.formatter -> t -> unit
(** Every retained record as one JSON line. *)
