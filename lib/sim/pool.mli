(** Fork-join work scheduler for embarrassingly parallel index spaces.

    [map ~jobs f tasks] computes [[| f 0; ...; f (tasks - 1) |]].  The
    tasks are distributed over [jobs] workers and the results are merged
    back {e in index order}, so the output is independent of scheduling:
    callers that are pure functions of their index (the campaign harness
    derives every run from [Rng.derive ~seed index]) get byte-identical
    results at any job count.

    On OCaml 5 the workers are domains ([Pool_backend] is selected by a
    build rule on the compiler version); on 4.14 the same interface runs
    the tasks sequentially, so code written against [Pool] builds and
    behaves identically on both — only the wall-clock differs. *)

val available : bool
(** Whether the parallel (domains) backend is compiled in.  [false] means
    {!map} always runs sequentially regardless of [jobs]. *)

val default_jobs : unit -> int
(** The detected core count ([Domain.recommended_domain_count ()]), or [1]
    on the sequential backend. *)

val map : jobs:int -> (int -> 'a) -> int -> 'a array
(** [map ~jobs f tasks] evaluates [f] at each index in [[0, tasks)] with up
    to [jobs] workers and returns the results in index order.

    [jobs = 0] means {!default_jobs}; [jobs] larger than [tasks] is clamped;
    [jobs = 1] (or the sequential backend) evaluates [f 0], [f 1], ... in
    order on the calling thread.  [f] must be safe to call concurrently
    from several domains — it must not touch shared mutable state.

    If any [f i] raises, one of the raised exceptions is re-raised here
    after all workers have stopped (workers abandon unstarted tasks once a
    failure is recorded).

    Raises [Invalid_argument] when [tasks < 0] or [jobs < 0]. *)
