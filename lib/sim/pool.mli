(** Fork-join work scheduler for embarrassingly parallel index spaces.

    [map ~jobs f tasks] computes [[| f 0; ...; f (tasks - 1) |]].  The
    tasks are distributed over [jobs] workers and the results are merged
    back {e in index order}, so the output is independent of scheduling:
    callers that are pure functions of their index (the campaign harness
    derives every run from [Rng.derive ~seed index]) get byte-identical
    results at any job count.

    On OCaml 5 the workers are domains ([Pool_backend] is selected by a
    build rule on the compiler version); on 4.14 the same interface runs
    the tasks sequentially, so code written against [Pool] builds and
    behaves identically on both — only the wall-clock differs. *)

val available : bool
(** Whether the parallel (domains) backend is compiled in.  [false] means
    {!map} always runs sequentially regardless of [jobs]. *)

val default_jobs : unit -> int
(** The detected core count ([Domain.recommended_domain_count ()]), or [1]
    on the sequential backend. *)

type domain_stat = Pool_backend.domain_stat = {
  tasks : int;  (** tasks this worker executed *)
  steals : int;  (** work-counter fetches that found no task left *)
  busy_ns : float;  (** wall-clock spent inside task bodies *)
  idle_ns : float;  (** worker lifetime minus [busy_ns] *)
}

val reset_stats : unit -> unit
(** Zero the cross-call per-domain accumulator. *)

val stats : unit -> domain_stat array
(** Per-worker-slot totals accumulated over every {!map} since
    {!reset_stats} (or program start).  Index 0 is the calling domain;
    the array is as long as the widest crew seen.  The inline [jobs <= 1]
    path contributes to slot 0 with zero steals and zero idle.  Safe to
    read between {!map} calls only — workers write their own slot and the
    caller folds after the joins, so nothing here is cross-domain. *)

val record_metrics : Metrics.t -> unit
(** Increment [pool.d<i>.tasks] / [pool.d<i>.steals] / [pool.d<i>.busy_ns]
    / [pool.d<i>.idle_ns] counters from the current accumulator, one set
    per worker slot.  Times are truncated to integer nanoseconds.  Note
    these values are wall-clock-dependent: record them into a registry
    that is reported to a human (stderr, bench output), never into one
    embedded in a byte-compared report. *)

val map : jobs:int -> (int -> 'a) -> int -> 'a array
(** [map ~jobs f tasks] evaluates [f] at each index in [[0, tasks)] with up
    to [jobs] workers and returns the results in index order.

    [jobs = 0] means {!default_jobs}; [jobs] larger than [tasks] is clamped;
    [jobs = 1] (or the sequential backend) evaluates [f 0], [f 1], ... in
    order on the calling thread.  [f] must be safe to call concurrently
    from several domains — it must not touch shared mutable state.

    If any [f i] raises, one of the raised exceptions is re-raised here
    after all workers have stopped (workers abandon unstarted tasks once a
    failure is recorded).

    Raises [Invalid_argument] when [tasks < 0] or [jobs < 0]. *)
