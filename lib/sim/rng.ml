type t = { mutable state : int64 }

(* splitmix64: Steele, Lea & Flood, "Fast splittable pseudorandom number
   generators", OOPSLA 2014. *)

let golden_gamma = 0x9E3779B97F4A7C15L

let mix z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let create ~seed = { state = mix (Int64.of_int seed) }

let int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t = { state = int64 t }

let derive ~seed index =
  let z =
    mix
      Int64.(
        add
          (mix (of_int seed))
          (mul (of_int (index + 1)) golden_gamma))
  in
  Int64.to_int (Int64.shift_right_logical z 2)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  let mask = Int64.max_int in
  let rec draw () =
    let v = Int64.to_int (Int64.logand (int64 t) mask) in
    (* Rejection sampling to avoid modulo bias. *)
    let r = v mod bound in
    if v - r + (bound - 1) < 0 then draw () else r
  in
  draw ()

let float t bound =
  (* 53 random bits mapped to [0, 1). *)
  let bits = Int64.shift_right_logical (int64 t) 11 in
  Int64.to_float bits /. 9007199254740992.0 *. bound

let bool t p =
  if p <= 0.0 then false
  else if p >= 1.0 then true
  else float t 1.0 < p

let pick t arr =
  if Array.length arr = 0 then invalid_arg "Rng.pick: empty array";
  arr.(int t (Array.length arr))

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let exponential t ~mean =
  let u = float t 1.0 in
  (* 1 - u is in (0, 1], so log is finite. *)
  -.mean *. log (1.0 -. u)

let geometric t ~p =
  if p >= 1.0 then 0
  else if p <= 0.0 then invalid_arg "Rng.geometric: p must be positive"
  else
    let u = float t 1.0 in
    int_of_float (Float.floor (log (1.0 -. u) /. log (1.0 -. p)))
