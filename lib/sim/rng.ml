(* splitmix64: Steele, Lea & Flood, "Fast splittable pseudorandom number
   generators", OOPSLA 2014.

   The state and every intermediate of the mixing function are carried as
   two non-negative 32-bit halves in native ints rather than as [Int64]s:
   without flambda each [Int64] operation allocates a fresh box, which put
   ~25 minor words on every latency-jitter and fault draw — the single
   largest allocation on the n >> 100 simulation hot path.  The limb
   arithmetic below reproduces the 64-bit wraparound semantics bit for bit
   (xor/shift directly, multiplication via 16-bit limb columns), so the
   output stream is unchanged: test/suite_sim.ml drives it against a boxed
   Int64 reference implementation.

   The scratch output register lives in the generator record (not in module
   globals): each [t] is owned by one domain, so [Pool]-parallel campaigns
   stay race-free. *)

type t = {
  mutable hi : int;  (* state bits 32..63 *)
  mutable lo : int;  (* state bits 0..31 *)
  (* Result register of [next]/[mix64]: returning a pair would box it. *)
  mutable out_hi : int;
  mutable out_lo : int;
}

let mask32 = 0xFFFFFFFF

(* golden_gamma = 0x9E3779B97F4A7C15 *)
let gamma_hi = 0x9E3779B9
let gamma_lo = 0x7F4A7C15

(* mix multipliers: 0xBF58476D1CE4E5B9 and 0x94D049BB133111EB *)
let m1_hi = 0xBF58476D
let m1_lo = 0x1CE4E5B9
let m2_hi = 0x94D049BB
let m2_lo = 0x133111EB

(* out := low 64 bits of (ahi:alo) * (bhi:blo), via 16-bit limb columns.
   Every partial product is < 2^32 and every column sum < 2^34, so nothing
   approaches the 62-bit native-int range. *)
let mul64 t ahi alo bhi blo =
  let a0 = alo land 0xFFFF and a1 = alo lsr 16 in
  let a2 = ahi land 0xFFFF and a3 = ahi lsr 16 in
  let b0 = blo land 0xFFFF and b1 = blo lsr 16 in
  let b2 = bhi land 0xFFFF and b3 = bhi lsr 16 in
  let c0 = a0 * b0 in
  let c1 = (a0 * b1) + (a1 * b0) in
  let c2 = (a0 * b2) + (a1 * b1) + (a2 * b0) in
  let c3 = (a0 * b3) + (a1 * b2) + (a2 * b1) + (a3 * b0) in
  let t0 = c0 + ((c1 land 0xFFFF) lsl 16) in
  t.out_lo <- t0 land mask32;
  t.out_hi <-
    ((c1 lsr 16) + c2 + ((c3 land 0xFFFF) lsl 16) + (t0 lsr 32)) land mask32

(* out := z ^ (z >>> k) for 0 < k < 32, on limbs. *)
let xorshift64 t hi lo k =
  let shi = hi lsr k in
  let slo = ((hi lsl (32 - k)) lor (lo lsr k)) land mask32 in
  t.out_hi <- hi lxor shi;
  t.out_lo <- lo lxor slo

(* out := mix64 (hi:lo). *)
let mix64 t hi lo =
  xorshift64 t hi lo 30;
  mul64 t t.out_hi t.out_lo m1_hi m1_lo;
  xorshift64 t t.out_hi t.out_lo 27;
  mul64 t t.out_hi t.out_lo m2_hi m2_lo;
  xorshift64 t t.out_hi t.out_lo 31

let create ~seed =
  let t = { hi = 0; lo = 0; out_hi = 0; out_lo = 0 } in
  (* Int64.of_int sign-extends; asr replicates the same sign bits. *)
  mix64 t ((seed asr 32) land mask32) (seed land mask32);
  t.hi <- t.out_hi;
  t.lo <- t.out_lo;
  t

(* Advance the state by golden_gamma and leave mix(state) in out_hi/out_lo. *)
let next t =
  let s = t.lo + gamma_lo in
  let lo = s land mask32 in
  let hi = (t.hi + gamma_hi + (s lsr 32)) land mask32 in
  t.hi <- hi;
  t.lo <- lo;
  mix64 t hi lo

let int64 t =
  next t;
  Int64.logor
    (Int64.shift_left (Int64.of_int t.out_hi) 32)
    (Int64.of_int t.out_lo)

let split t =
  next t;
  { hi = t.out_hi; lo = t.out_lo; out_hi = 0; out_lo = 0 }

let derive ~seed index =
  (* Cold path (one call per campaign run): the boxed Int64 arithmetic of
     the original formulation is kept verbatim. *)
  let golden_gamma = 0x9E3779B97F4A7C15L in
  let mix z =
    let z =
      Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L)
    in
    let z =
      Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL)
    in
    Int64.(logxor z (shift_right_logical z 31))
  in
  let z =
    mix
      Int64.(
        add
          (mix (of_int seed))
          (mul (of_int (index + 1)) golden_gamma))
  in
  Int64.to_int (Int64.shift_right_logical z 2)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  let rec draw () =
    next t;
    (* Low 63 bits of the output, with the same wrap-to-negative behaviour
       as [Int64.to_int (Int64.logand out Int64.max_int)]: a value with
       bit 62 set comes out negative and is rejected below. *)
    let v = ((t.out_hi land 0x7FFFFFFF) lsl 32) lor t.out_lo in
    (* Rejection sampling to avoid modulo bias. *)
    let r = v mod bound in
    if v - r + (bound - 1) < 0 then draw () else r
  in
  draw ()

let float t bound =
  (* 53 random bits mapped to [0, 1). *)
  next t;
  let bits = (t.out_hi lsl 21) lor (t.out_lo lsr 11) in
  float_of_int bits /. 9007199254740992.0 *. bound

let bool t p =
  if p <= 0.0 then false
  else if p >= 1.0 then true
  else float t 1.0 < p

let pick t arr =
  if Array.length arr = 0 then invalid_arg "Rng.pick: empty array";
  arr.(int t (Array.length arr))

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let exponential t ~mean =
  let u = float t 1.0 in
  (* 1 - u is in (0, 1], so log is finite. *)
  -.mean *. log (1.0 -. u)

let geometric t ~p =
  if p >= 1.0 then 0
  else if p <= 0.0 then invalid_arg "Rng.geometric: p must be positive"
  else
    let u = float t 1.0 in
    int_of_float (Float.floor (log (1.0 -. u) /. log (1.0 -. p)))
