(* Stateless depth-first search over the choice tree of a deterministic
   harness.  Each execution replays the recorded choice prefix and extends
   it; backtracking advances the deepest frame that still has untried
   alternatives.  No state is saved between executions beyond the frame
   stack, so the driver works for any harness that is a pure function of
   its choice sequence. *)

type frame = {
  arity : int;
  mutable chosen : int;
  mutable untried : int list;  (* allowed alternatives not yet explored *)
}

type search_state = {
  frames : frame array ref;  (* slots [0, filled) are meaningful *)
  mutable live : int;  (* frames fixed by backtracking (replay prefix) *)
  mutable filled : int;  (* frames written during this execution *)
  prune : bool;
  mutable pruned : int;
}

type replay_state = {
  schedule : int array;
  mutable steps : (int * int * string) list;  (* reversed *)
}

type mode = Search of search_state | Replay of replay_state

module Ctx = struct
  type t = { mutable depth : int; mode : mode }

  let ensure_capacity frames needed =
    let current = Array.length !frames in
    if needed > current then begin
      let grown =
        Array.make
          (max (needed * 2) 16)
          { arity = 0; chosen = 0; untried = [] }
      in
      Array.blit !frames 0 grown 0 current;
      frames := grown
    end

  let choose ?allowed ~arity ~label t =
    if arity <= 0 then invalid_arg "Explore.choose: arity must be positive";
    let depth = t.depth in
    t.depth <- depth + 1;
    match t.mode with
    | Replay r ->
        if depth >= Array.length r.schedule then
          invalid_arg
            (Printf.sprintf
               "Explore.replay: schedule has %d choices but the harness asked \
                for more"
               (Array.length r.schedule));
        let chosen = r.schedule.(depth) in
        if chosen < 0 || chosen >= arity then
          invalid_arg
            (Printf.sprintf
               "Explore.replay: choice %d at depth %d is outside arity %d"
               chosen depth arity);
        r.steps <- (chosen, arity, label ()) :: r.steps;
        chosen
    | Search s ->
        if depth < s.live then begin
          (* Replaying the backtracked prefix: the tree must be stable. *)
          let frame = !(s.frames).(depth) in
          if frame.arity <> arity then
            invalid_arg
              (Printf.sprintf
                 "Explore: nondeterministic harness (arity %d became %d at \
                  depth %d)"
                 frame.arity arity depth);
          s.filled <- s.filled + 1;
          frame.chosen
        end
        else begin
          (* Fresh choice point: enumerate the allowed alternatives. *)
          let keep =
            match allowed with
            | Some keep when s.prune -> keep
            | Some _ | None -> fun _ -> true
          in
          let alternatives = ref [] in
          for i = arity - 1 downto 0 do
            if keep i then alternatives := i :: !alternatives
          done;
          (* An empty allowed set would lose the branch entirely; exploring
             alternative 0 over-approximates, which is sound. *)
          let alternatives =
            match !alternatives with [] -> [ 0 ] | l -> l
          in
          s.pruned <- s.pruned + (arity - List.length alternatives);
          let chosen = List.hd alternatives in
          ensure_capacity s.frames (depth + 1);
          !(s.frames).(depth) <-
            { arity; chosen; untried = List.tl alternatives };
          s.filled <- s.filled + 1;
          chosen
        end
end

type stats = {
  explored : int;
  pruned : int;
  total : int;
  max_depth : int;
  truncated : bool;
}

let explore ?(prune = true) ?(max_schedules = 1_000_000) f ~on_schedule =
  if max_schedules <= 0 then
    invalid_arg "Explore.explore: max_schedules must be positive";
  let s =
    { frames = ref [||]; live = 0; filled = 0; prune; pruned = 0 }
  in
  let mode = Search s in
  let explored = ref 0 in
  let max_depth = ref 0 in
  let truncated = ref false in
  let continue = ref true in
  while !continue do
    s.filled <- 0;
    let ctx = { Ctx.depth = 0; mode } in
    let result = f ctx in
    let schedule =
      List.init s.filled (fun i -> !(s.frames).(i).chosen)
    in
    incr explored;
    if s.filled > !max_depth then max_depth := s.filled;
    on_schedule ~schedule result;
    (* Backtrack: drop exhausted frames, advance the deepest live one. *)
    let live = ref s.filled in
    while !live > 0 && !(s.frames).(!live - 1).untried = [] do
      decr live
    done;
    if !live = 0 then continue := false
    else begin
      let frame = !(s.frames).(!live - 1) in
      (match frame.untried with
      | next :: rest ->
          frame.chosen <- next;
          frame.untried <- rest
      | [] -> assert false);
      s.live <- !live;
      if !explored >= max_schedules then begin
        truncated := true;
        continue := false
      end
    end
  done;
  {
    explored = !explored;
    pruned = s.pruned;
    total = !explored + s.pruned;
    max_depth = !max_depth;
    truncated = !truncated;
  }

type step = { chosen : int; arity : int; label : string }

let replay f ~schedule =
  let r = { schedule = Array.of_list schedule; steps = [] } in
  let mode = Replay r in
  let result = f { Ctx.depth = 0; mode } in
  let steps =
    List.rev_map
      (fun (chosen, arity, label) -> { chosen; arity; label })
      r.steps
  in
  (result, steps)
