(** Backend behind [Sim.Pool], selected at build time by a dune rule on the
    compiler version: [pool_backend_domains.ml] on OCaml >= 5.0,
    [pool_backend_seq.ml] otherwise.  Both satisfy this interface; [Pool]
    adds argument validation, job-count normalization, and cross-call stat
    accumulation on top. *)

type domain_stat = {
  tasks : int;  (** tasks this worker executed *)
  steals : int;  (** work-counter fetches that found no task left *)
  busy_ns : float;  (** wall-clock spent inside task bodies *)
  idle_ns : float;  (** worker lifetime minus [busy_ns] *)
}

val available : bool

val default_jobs : unit -> int

val map : jobs:int -> (int -> 'a) -> int -> 'a array * domain_stat array
(** Precondition (enforced by [Pool.map]): [tasks > 0] and
    [2 <= jobs <= tasks].  The returned stats have one entry per worker;
    index 0 is the calling domain. *)
