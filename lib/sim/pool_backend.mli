(** Backend behind [Sim.Pool], selected at build time by a dune rule on the
    compiler version: [pool_backend_domains.ml] on OCaml >= 5.0,
    [pool_backend_seq.ml] otherwise.  Both satisfy this interface; [Pool]
    adds argument validation and job-count normalization on top. *)

val available : bool

val default_jobs : unit -> int

val map : jobs:int -> (int -> 'a) -> int -> 'a array
(** Precondition (enforced by [Pool.map]): [tasks > 0] and
    [2 <= jobs <= tasks]. *)
