(** Hierarchical span profiler with wall-clock and GC cost attribution.

    [Prof] answers the question the benches cannot: {e which phase} of a
    run burns the time and allocates the words.  Code on the hot path is
    instrumented with {!enter}/{!exit} probes (or the exception-safe
    {!span} wrapper off the hot path); each (parent, name) pair becomes a
    node in a span tree that accumulates invocation counts, wall-clock
    time, and [Gc.quick_stat] deltas (minor/major/promoted words, minor
    and major collections).  A finished tree is captured as a {!report}
    and exported two ways: a canonical JSON cost-attribution report and a
    folded-stacks file directly consumable by [flamegraph.pl] or
    speedscope.

    {b Disabled mode is the default and costs one branch.}  The probes
    are guarded by a single global flag: with profiling off, {!enter} and
    {!exit} read one [bool ref] and return, so instrumenting a hot path
    does not perturb it (the [profile-overhead] bench pins this below a
    few percent on the committed hot-path scenarios).  Probes never touch
    any RNG, so enabling profiling cannot change a simulation's outputs.

    {b Single-domain.}  The profiler is one global mutable tree and is
    not safe to mutate from several domains.  Callers that fan work over
    [Pool] must run sequentially while profiling ([Workload.Campaign]
    forces [jobs = 1] when the profiler is enabled); [Pool]'s own
    per-domain counters are collected independently of the span stack and
    remain valid at any job count.

    {b Determinism.}  Span names, tree shape, invocation counts, and
    attached counters are pure functions of the instrumented program, so
    {!structural_json} is byte-comparable across runs, compilers, and
    machines.  Times and GC words vary; they appear only in
    {!report_json} and {!folded}. *)

(** {2 Probes (hot path)} *)

val enabled : unit -> bool
(** One global flag read; [false] unless {!enable} ran. *)

val on : bool ref
(** The raw flag behind {!enabled}.  Hot-path call sites guard probes
    with [if !Prof.on then ...] so the disabled cost is a load and a
    branch rather than a cross-module call.  Read-only for callers —
    flip it only through {!enable}/{!disable}. *)

val enter : string -> unit
(** Open a child span of the current span (creating the node on first
    entry).  No-op when disabled. *)

val exit : unit -> unit
(** Close the current span, folding its wall-clock and GC deltas into its
    node.  No-op when disabled.  Raises [Invalid_argument] when enabled
    and no span is open — an unbalanced probe is a bug worth crashing a
    profiled run over. *)

val span : string -> (unit -> 'a) -> 'a
(** [span name f] is {!enter}[ name; ]{!exit}[ ()] around [f ()],
    exception-safe ([f] raising still closes the span).  Allocates a
    closure at the call site even when disabled — use the raw probes on
    allocation-sensitive hot paths. *)

val count : ?by:int -> string -> unit
(** Add [by] (default 1) to a named counter on the {e current} span —
    deterministic attribution (pruning hits, cache misses) that rides the
    tree into both exports.  No-op when disabled. *)

(** {2 Lifecycle} *)

val enable : unit -> unit
(** Reset all state and start profiling: a fresh root span ([root])
    opens and the global flag flips on.  Idempotent only in the sense
    that calling it again discards the tree so far. *)

val disable : unit -> unit
(** Flip the flag off and discard all state.  No-op when disabled. *)

(** {2 Reports} *)

type report
(** An immutable snapshot of the finished span tree. *)

val capture : unit -> report
(** Close the root span and snapshot the tree; profiling is left
    disabled afterwards.  Raises [Invalid_argument] naming the open
    spans if any span other than the root is still open (unbalanced
    {!enter}), or if profiling is disabled. *)

type stat = {
  name : string;
  count : int;
  total_ns : float;  (** inclusive wall-clock *)
  self_ns : float;  (** [total_ns] minus the children's [total_ns] *)
  minor_words : float;
  major_words : float;
  promoted_words : float;
  self_minor_words : float;
  minor_collections : int;
  major_collections : int;
  latency : Stats.Summary.t;  (** per-invocation wall-clock, ns *)
  counters : (string * int) list;  (** sorted by name *)
  children : stat list;  (** first-entered order *)
}

val root : report -> stat

val wall_ns : report -> float
(** Total wall-clock of the root span. *)

val coverage : report -> float
(** Fraction of the root's wall-clock attributed to instrumented child
    spans: [1 - root self / root total].  1.0 when the root has no
    un-attributed time; the CI acceptance gate wants >= 0.9. *)

val report_json : report -> string
(** Canonical single-line JSON cost-attribution report (schema
    [urcgc.prof/1], documented in [docs/PROFILE.md]): the span tree with
    counts, total/self time, total/self allocation, GC collections,
    per-span latency summaries (p50/p95/max via [Stats.Summary]), and
    counters. *)

val structural_json : report -> string
(** The same tree stripped of every nondeterministic field (times, GC
    words, collections, latency): names, counts, and counters only
    (schema [urcgc.prof.structural/1]).  Byte-comparable across runs and
    compilers for a fixed-seed workload. *)

val folded : report -> string
(** Folded stacks, one line per span node:
    ["root;campaign.run;member.drain 1234"] where the value is the span's
    self-time in nanoseconds — feed to [flamegraph.pl] or paste into
    speedscope.  Lines in depth-first (first-entered) order. *)

val pp_summary : Format.formatter -> report -> unit
(** Human summary: wall-clock, coverage, and the top spans by self
    time. *)
